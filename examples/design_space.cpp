/**
 * @file
 * Example: design-space exploration with the public API. Sweeps the
 * two sizing knobs a DMDC implementer must pick — the number of YLA
 * registers and the checking-table size — on one benchmark, and prints
 * the resulting safe-store fraction, false-replay rate and slowdown so
 * the knee of each curve is visible.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "trace/spec_suite.hh"

using namespace dmdc;

int
main(int argc, char **argv)
{
    const std::string bench = argc > 1 ? argv[1] : "gcc";

    SimOptions opt;
    opt.benchmark = bench;
    opt.configLevel = 2;
    opt.warmupInsts = 30000;
    opt.runInsts = 200000;

    opt.scheme = "baseline";
    const SimResult base = runSimulation(opt);
    const double base_cpi =
        static_cast<double>(base.cycles) / base.instructions;

    std::printf("benchmark: %s (config 2)\n\n", bench.c_str());

    std::printf("--- YLA register sweep (table fixed at 2K) ---\n");
    std::printf("%8s %14s %18s %12s\n", "#YLA", "safe stores",
                "false replays/M", "slowdown");
    opt.scheme = "dmdc-global";
    for (unsigned regs : {1u, 2u, 4u, 8u, 16u, 32u}) {
        opt.numYlaQw = regs;
        const SimResult r = runSimulation(opt);
        const double cpi =
            static_cast<double>(r.cycles) / r.instructions;
        std::printf("%8u %13.1f%% %18.1f %11.2f%%\n", regs,
                    r.safeStoreFrac * 100,
                    r.perMInst(r.falseReplays()),
                    (cpi / base_cpi - 1.0) * 100);
    }

    std::printf("\n--- checking-table sweep (8 YLA registers) ---\n");
    std::printf("%8s %18s %12s\n", "entries", "false replays/M",
                "slowdown");
    opt.numYlaQw = 8;
    for (unsigned entries : {128u, 512u, 2048u, 8192u}) {
        opt.tableEntriesOverride = entries;
        const SimResult r = runSimulation(opt);
        const double cpi =
            static_cast<double>(r.cycles) / r.instructions;
        std::printf("%8u %18.1f %11.2f%%\n", entries,
                    r.perMInst(r.falseReplays()),
                    (cpi / base_cpi - 1.0) * 100);
    }

    std::printf("\nThe paper's choice (8 registers, 2K entries) sits "
                "at the knee of both curves.\n");
    return 0;
}
