/**
 * @file
 * Example: coherent DMDC under external invalidation traffic
 * (Sec. 4.3 / 6.2.4). Enables the second, line-interleaved YLA set and
 * the INV bit, then ramps the injected invalidation rate and reports
 * how checking activity and replays respond — the write-serialization
 * guarantee is enforced throughout by the simulator's built-in safety
 * checks.
 */

#include <cstdio>
#include <string>

#include "sim/simulator.hh"

using namespace dmdc;

int
main(int argc, char **argv)
{
    const std::string bench = argc > 1 ? argv[1] : "equake";

    SimOptions opt;
    opt.benchmark = bench;
    opt.configLevel = 2;
    opt.scheme = "dmdc-global";
    opt.coherence = true;
    opt.warmupInsts = 30000;
    opt.runInsts = 200000;

    std::printf("benchmark: %s, coherent DMDC (two YLA sets + INV "
                "bits), config 2\n\n", bench.c_str());
    std::printf("%12s %18s %16s %18s %10s\n", "inv/1k cyc",
                "% cycles checking", "window (insts)",
                "false replays/M", "IPC");

    double base_cpi = 0;
    for (double rate : {0.0, 1.0, 10.0, 100.0}) {
        opt.invalidationsPer1kCycles = rate;
        const SimResult r = runSimulation(opt);
        const double cpi =
            static_cast<double>(r.cycles) / r.instructions;
        if (rate == 0.0)
            base_cpi = cpi;
        std::printf("%12.0f %17.1f%% %16.1f %18.1f %10.2f\n", rate,
                    r.checkingCycleFrac * 100, r.windowInstrs,
                    r.perMInst(r.falseReplays()), r.ipc);
        if (rate == 100.0) {
            std::printf("\nslowdown at 100/1k cycles vs. quiet: "
                        "%.2f%%\n", (cpi / base_cpi - 1.0) * 100);
        }
    }

    std::printf("\nUp to ~10 invalidations per 1000 cycles the design "
                "absorbs the traffic; beyond that\n"
                "the paper recommends invalidation filtering "
                "(Sec. 6.2.4), as do we.\n");
    return 0;
}
