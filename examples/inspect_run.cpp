/**
 * @file
 * Diagnostic example: run one benchmark/scheme/config and dump every
 * statistic group of the pipeline, plus the energy breakdown. Useful
 * both as an API example and for studying simulator behaviour.
 */

#include <cstdio>
#include <cstring>
#include <iostream>

#include "energy/energy_model.hh"
#include "sim/simulator.hh"
#include "trace/spec_suite.hh"

int
main(int argc, char **argv)
{
    using namespace dmdc;

    SimOptions opt;
    opt.benchmark = "gzip";
    opt.scheme = "baseline";
    opt.warmupInsts = 50000;
    opt.runInsts = 300000;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--dmdc")
            opt.scheme = "dmdc-global";
        else if (a == "--dmdc-local")
            opt.scheme = "dmdc-local";
        else if (a == "--yla")
            opt.scheme = "yla";
        else if (a.rfind("--config=", 0) == 0)
            opt.configLevel = std::stoul(a.substr(9));
        else if (a.rfind("--insts=", 0) == 0)
            opt.runInsts = std::stoull(a.substr(8));
        else
            opt.benchmark = a;
    }

    Simulator sim(opt);
    const SimResult r = sim.run();

    std::printf("benchmark=%s scheme=%s config=%u\n",
                r.benchmark.c_str(), r.scheme.c_str(),
                r.configLevel);
    std::printf("insts=%llu cycles=%llu ipc=%.3f\n",
                static_cast<unsigned long long>(r.instructions),
                static_cast<unsigned long long>(r.cycles), r.ipc);

    sim.pipeline().statRoot().dump(std::cout);

    const EnergyBreakdown &e = r.energy;
    std::printf("\nenergy breakdown (arbitrary units):\n");
    auto row = [total = e.total()](const char *name, double v) {
        std::printf("  %-12s %14.0f  (%5.2f%%)\n", name, v,
                    total > 0 ? v / total * 100.0 : 0.0);
    };
    row("fetch", e.fetch);
    row("bpred", e.bpred);
    row("rename", e.rename);
    row("rob", e.rob);
    row("issue_queue", e.issueQueue);
    row("regfile", e.regfile);
    row("fu", e.fu);
    row("l1d", e.l1d);
    row("l2", e.l2);
    row("clock", e.clock);
    row("lq_cam", e.lqCam);
    row("sq", e.sq);
    row("yla", e.yla);
    row("checking", e.checking);
    std::printf("  %-12s %14.0f\n", "TOTAL", e.total());
    std::printf("  LQ-function share: %.2f%%\n",
                e.lqFunction() / e.total() * 100.0);
    return 0;
}
