/**
 * @file
 * Example: define a custom synthetic workload (rather than one of the
 * 26 SPEC stand-ins) and evaluate how its memory-dependence character
 * affects YLA filtering and DMDC. Builds a "pathological" pointer-
 * chasing workload with many late-resolving stores — the worst case
 * for age-based filtering — and a "friendly" streaming workload, and
 * compares both against the conventional LSQ.
 */

#include <cstdio>

#include "core/pipeline.hh"
#include "energy/energy_model.hh"
#include "sim/machine_config.hh"
#include "trace/synthetic.hh"

using namespace dmdc;

namespace
{

struct Outcome
{
    double ipc = 0;
    double safeStores = 0;
    double falseReplaysPerM = 0;
    double lqSavings = 0;
};

Outcome
evaluate(const WorkloadParams &wp)
{
    Outcome out;

    auto run_one = [&wp](const std::string &scheme, Pipeline **out_pipe,
                         SyntheticWorkload **out_wl) {
        CoreParams params = makeMachineConfig(2);
        applyScheme(params, scheme);
        auto *wl = new SyntheticWorkload(wp);
        auto *pipe = new Pipeline(params, *wl);
        pipe->run(50000);
        pipe->resetStats();
        pipe->run(250000);
        *out_pipe = pipe;
        *out_wl = wl;
    };

    Pipeline *base_pipe = nullptr;
    SyntheticWorkload *base_wl = nullptr;
    run_one("baseline", &base_pipe, &base_wl);

    Pipeline *dmdc_pipe = nullptr;
    SyntheticWorkload *dmdc_wl = nullptr;
    run_one("dmdc-global", &dmdc_pipe, &dmdc_wl);

    out.ipc = dmdc_pipe->ipc();

    const DmdcEngine *engine = dmdc_pipe->lsq().dmdc();
    const auto &ds = engine->stats();
    const double stores = static_cast<double>(
        ds.safeStores.value() + ds.unsafeStores.value());
    out.safeStores = stores
        ? static_cast<double>(ds.safeStores.value()) / stores : 0.0;
    const double false_replays = static_cast<double>(
        ds.replays.value() - ds.trueReplays.value());
    out.falseReplaysPerM = false_replays * 1e6 /
        static_cast<double>(dmdc_pipe->committed());

    EnergyModel em(dmdc_pipe->params());
    EnergyModel em_base(base_pipe->params());
    const double dmdc_lq = em.compute(*dmdc_pipe).lqFunction();
    const double base_lq = em_base.compute(*base_pipe).lqFunction();
    out.lqSavings = base_lq > 0 ? (1.0 - dmdc_lq / base_lq) : 0.0;

    delete base_pipe;
    delete base_wl;
    delete dmdc_pipe;
    delete dmdc_wl;
    return out;
}

} // namespace

int
main()
{
    // A memory-hostile workload: deep pointer chasing, stores whose
    // addresses depend on loads, large footprint.
    WorkloadParams hostile;
    hostile.name = "hostile";
    hostile.seed = 777;
    hostile.chaseFrac = 0.5;
    hostile.strideFrac = 0.2;
    hostile.footprintLog2 = 24;
    hostile.storeAddrFromLoadFrac = 0.45;
    hostile.storeAddrReadyFrac = 0.25;
    hostile.shareProb = 0.05;

    // A streaming, loop-dominated workload: the friendly case.
    WorkloadParams friendly;
    friendly.name = "friendly";
    friendly.seed = 778;
    friendly.fp = true;
    friendly.fpFrac = 0.5;
    friendly.chaseFrac = 0.01;
    friendly.strideFrac = 0.9;
    friendly.footprintLog2 = 20;
    friendly.storeAddrFromLoadFrac = 0.01;
    friendly.storeAddrReadyFrac = 0.9;
    friendly.blockLenMean = 12.0;
    friendly.loopTripMean = 40.0;
    friendly.biasedFrac = 0.85;
    friendly.patternedFrac = 0.10;

    std::printf("%-12s %8s %14s %18s %14s\n", "workload", "IPC",
                "safe stores", "false replays/M", "LQ savings");
    for (const WorkloadParams *wp : {&hostile, &friendly}) {
        const Outcome o = evaluate(*wp);
        std::printf("%-12s %8.2f %13.1f%% %18.1f %13.1f%%\n",
                    wp->name.c_str(), o.ipc, o.safeStores * 100,
                    o.falseReplaysPerM, o.lqSavings * 100);
    }
    std::printf("\nEven the hostile workload keeps most stores safe "
                "and most LQ energy saved; the\n"
                "friendly one approaches the paper's best cases.\n");
    return 0;
}
