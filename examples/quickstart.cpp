/**
 * @file
 * Quickstart: run one benchmark under the conventional LSQ and under
 * DMDC, and print the headline comparison the paper makes — LQ-energy
 * savings at negligible slowdown.
 */

#include <cstdio>

#include "sim/campaign.hh"
#include "sim/simulator.hh"
#include "trace/spec_suite.hh"

int
main(int argc, char **argv)
{
    using namespace dmdc;

    const std::string bench = argc > 1 ? argv[1] : "gzip";
    if (argc > 1) {
        bool known = false;
        for (const auto &n : specAllNames())
            known = known || n == bench;
        if (!known) {
            std::fprintf(stderr, "unknown benchmark '%s'\n",
                         bench.c_str());
            std::fprintf(stderr, "available:");
            for (const auto &n : specAllNames())
                std::fprintf(stderr, " %s", n.c_str());
            std::fprintf(stderr, "\n");
            return 1;
        }
    }

    SimOptions opt;
    opt.benchmark = bench;
    opt.configLevel = 2;
    opt.warmupInsts = 50000;
    opt.runInsts = 500000;

    std::printf("Running '%s' (config 2, %llu instructions)...\n",
                bench.c_str(),
                static_cast<unsigned long long>(opt.runInsts));

    opt.scheme = "baseline";
    const SimResult base = runSimulation(opt);

    opt.scheme = "dmdc-global";
    const SimResult dmdc_result = runSimulation(opt);

    const double base_cpi =
        static_cast<double>(base.cycles) / base.instructions;
    const double dmdc_cpi = static_cast<double>(dmdc_result.cycles) /
        dmdc_result.instructions;

    std::printf("\n%-28s %14s %14s\n", "", "baseline", "DMDC");
    std::printf("%-28s %14.3f %14.3f\n", "IPC", base.ipc,
                dmdc_result.ipc);
    std::printf("%-28s %14.0f %14.0f\n", "LQ-function energy",
                base.energy.lqFunction(),
                dmdc_result.energy.lqFunction());
    std::printf("%-28s %14.0f %14.0f\n", "total energy",
                base.energy.total(), dmdc_result.energy.total());
    std::printf("\n");
    std::printf("safe stores:        %s\n",
                pct(dmdc_result.safeStoreFrac).c_str());
    std::printf("safe loads:         %s\n",
                pct(dmdc_result.safeLoadFrac).c_str());
    std::printf("LQ energy savings:  %s\n",
                pct(1.0 - dmdc_result.energy.lqFunction() /
                              base.energy.lqFunction()).c_str());
    std::printf("net energy savings: %s\n",
                pct(1.0 - dmdc_result.energy.total() /
                              base.energy.total()).c_str());
    std::printf("slowdown:           %s\n",
                fmt((dmdc_cpi - base_cpi) / base_cpi * 100.0, 2).c_str());
    std::printf("false replays/Minst:%8.1f\n",
                dmdc_result.perMInst(dmdc_result.falseReplays()));
    return 0;
}
