/**
 * @file
 * Unit tests for the DMDC engine: safe/unsafe classification, checking
 * windows, end-check management (global vs. local), replay
 * classification and the coherence extension.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "lsq/dmdc.hh"

namespace dmdc
{
namespace
{

class DmdcTest : public ::testing::Test
{
  protected:
    DynInst *
    load(SeqNum seq, Addr addr, unsigned size = 8, bool safe = false)
    {
        auto inst = std::make_unique<DynInst>();
        inst->seq = seq;
        inst->op.cls = OpClass::Load;
        inst->op.effAddr = addr;
        inst->op.memSize = static_cast<std::uint8_t>(size);
        inst->safeLoad = safe;
        inst->loadIssued = true;
        insts.push_back(std::move(inst));
        return insts.back().get();
    }

    DynInst *
    store(SeqNum seq, Addr addr, unsigned size = 8)
    {
        auto inst = std::make_unique<DynInst>();
        inst->seq = seq;
        inst->op.cls = OpClass::Store;
        inst->op.effAddr = addr;
        inst->op.memSize = static_cast<std::uint8_t>(size);
        insts.push_back(std::move(inst));
        return insts.back().get();
    }

    DynInst *
    alu(SeqNum seq)
    {
        auto inst = std::make_unique<DynInst>();
        inst->seq = seq;
        inst->op.cls = OpClass::IntAlu;
        insts.push_back(std::move(inst));
        return insts.back().get();
    }

    std::vector<std::unique_ptr<DynInst>> insts;
};

TEST_F(DmdcTest, StoreWithNoYoungerLoadIsSafe)
{
    DmdcEngine eng{DmdcParams{}};
    eng.loadIssued(0x1000, 5);
    DynInst *st = store(10, 0x1000);
    eng.storeResolved(st, 1);
    EXPECT_TRUE(st->safeStore);
    EXPECT_EQ(eng.stats().safeStores.value(), 1u);
}

TEST_F(DmdcTest, StoreWithYoungerLoadInBankIsUnsafe)
{
    DmdcEngine eng{DmdcParams{}};
    eng.loadIssued(0x1000, 50);
    DynInst *st = store(10, 0x1000);
    eng.storeResolved(st, 1);
    EXPECT_FALSE(st->safeStore);
    EXPECT_EQ(st->capturedWindowEnd, 50u);
    EXPECT_EQ(eng.endCheck(), 50u);   // global variant pushes at issue
}

TEST_F(DmdcTest, BankingMakesDistantAddressSafe)
{
    DmdcEngine eng{DmdcParams{}};   // 8 quad-word banks
    eng.loadIssued(0x1000, 50);
    DynInst *st = store(10, 0x1008);   // next quad word, other bank
    eng.storeResolved(st, 1);
    EXPECT_TRUE(st->safeStore);
}

TEST_F(DmdcTest, WindowLifecycleAndReplay)
{
    DmdcEngine eng{DmdcParams{}};
    // Premature load at seq 50 to 0x1000, store seq 10 resolves late.
    eng.loadIssued(0x1000, 50);
    DynInst *st = store(10, 0x1000);
    st->doneCycle = 5;
    eng.storeResolved(st, 5);
    ASSERT_FALSE(st->safeStore);

    // Store commits: checking mode opens.
    EXPECT_FALSE(eng.checkingActive());
    ReplayClass rc = eng.commit(st, 10);
    EXPECT_FALSE(rc.replay);
    EXPECT_TRUE(eng.checkingActive());

    // Unrelated load passes.
    DynInst *ok = load(20, 0x2000);
    ok->memIssueCycle = 8;
    EXPECT_FALSE(eng.commit(ok, 11).replay);
    EXPECT_TRUE(eng.checkingActive());

    // The premature load replays.
    DynInst *victim = load(50, 0x1000);
    victim->memIssueCycle = 3;        // issued before store resolved
    victim->ghostViolation = true;    // ground truth agrees
    ReplayClass vrc = eng.commit(victim, 12);
    EXPECT_TRUE(vrc.replay);
    EXPECT_TRUE(vrc.trueViolation);

    // After a (re-executed, now safe) instruction at/past end-check
    // commits, the window closes.
    DynInst *past = alu(51);
    EXPECT_FALSE(eng.commit(past, 13).replay);
    EXPECT_FALSE(eng.checkingActive());
    EXPECT_EQ(eng.stats().windows.value(), 1u);
}

TEST_F(DmdcTest, SafeLoadSkipsChecking)
{
    DmdcEngine eng{DmdcParams{}};
    eng.loadIssued(0x1000, 50);
    DynInst *st = store(10, 0x1000);
    st->doneCycle = 5;
    eng.storeResolved(st, 5);
    eng.commit(st, 10);

    DynInst *safe_load = load(50, 0x1000, 8, /*safe=*/true);
    ReplayClass rc = eng.commit(safe_load, 11);
    EXPECT_FALSE(rc.replay);
    EXPECT_EQ(eng.stats().safeLoadsMarked.value(), 1u);
    EXPECT_EQ(eng.stats().tableReads.value(), 0u);
}

TEST_F(DmdcTest, SafeLoadCheckedWhenDetectionDisabled)
{
    DmdcParams params;
    params.safeLoads = false;
    DmdcEngine eng{params};
    eng.loadIssued(0x1000, 50);
    DynInst *st = store(10, 0x1000);
    st->doneCycle = 5;
    eng.storeResolved(st, 5);
    eng.commit(st, 10);

    DynInst *safe_load = load(50, 0x1000, 8, /*safe=*/true);
    ReplayClass rc = eng.commit(safe_load, 11);
    EXPECT_TRUE(rc.replay);   // the ablation pays with false replays
}

TEST_F(DmdcTest, SuppressReplayCommitsCleanly)
{
    DmdcEngine eng{DmdcParams{}};
    eng.loadIssued(0x1000, 50);
    DynInst *st = store(10, 0x1000);
    st->doneCycle = 5;
    eng.storeResolved(st, 5);
    eng.commit(st, 10);

    DynInst *victim = load(50, 0x1000);
    victim->memIssueCycle = 3;
    EXPECT_FALSE(eng.commit(victim, 12, true).replay);
}

TEST_F(DmdcTest, FalseReplayClassifiedAsHashConflict)
{
    DmdcParams params;
    params.tableEntries = 16;   // force aliasing
    DmdcEngine eng{params};

    // Find two quad words that alias in a 16-entry fold-XOR table.
    CheckingTable probe(16);
    GhostStoreRecord g;
    g.addr = 0x1000;
    g.size = 8;
    probe.markStore(0x1000, 8, g);
    Addr alias = 0;
    for (Addr a = 0x2000; a < 0x40000; a += 8) {
        if (probe.checkLoad(a, 8).wrtHit) {
            alias = a;
            break;
        }
    }
    ASSERT_NE(alias, 0u);

    eng.loadIssued(0x1000, 50);
    eng.loadIssued(alias, 60);
    DynInst *st = store(10, 0x1000);
    st->doneCycle = 5;
    eng.storeResolved(st, 5);
    eng.commit(st, 10);

    DynInst *aliased = load(60, alias);
    aliased->memIssueCycle = 3;
    ReplayClass rc = eng.commit(aliased, 12);
    EXPECT_TRUE(rc.replay);
    EXPECT_FALSE(rc.trueViolation);
    EXPECT_FALSE(rc.addrMatch);
    EXPECT_EQ(eng.stats().falseHashBefore.value() +
                  eng.stats().falseHashX.value() +
                  eng.stats().falseHashY.value(),
              1u);
}

TEST_F(DmdcTest, TimingFalseReplayClassifiedAddrMatch)
{
    DmdcEngine eng{DmdcParams{}};
    eng.loadIssued(0x1000, 50);
    DynInst *st = store(10, 0x1000);
    st->doneCycle = 5;
    eng.storeResolved(st, 5);
    eng.commit(st, 10);

    // Same address, but the load issued AFTER the store resolved: the
    // timing approximation causes a false replay (column X).
    DynInst *late = load(40, 0x1000);
    late->memIssueCycle = 9;
    ReplayClass rc = eng.commit(late, 12);
    EXPECT_TRUE(rc.replay);
    EXPECT_FALSE(rc.trueViolation);
    EXPECT_TRUE(rc.addrMatch);
    EXPECT_EQ(rc.timing, ReplayClass::Timing::InWindowX);
    EXPECT_EQ(eng.stats().falseAddrX.value(), 1u);
}

TEST_F(DmdcTest, LocalVariantDefersEndCheckToCommit)
{
    DmdcParams params;
    params.variant = DmdcVariant::Local;
    DmdcEngine eng{params};
    eng.loadIssued(0x1000, 50);
    DynInst *st = store(10, 0x1000);
    st->doneCycle = 5;
    eng.storeResolved(st, 5);
    EXPECT_EQ(eng.endCheck(), invalidSeqNum);   // not pushed at issue
    eng.commit(st, 10);
    EXPECT_EQ(eng.endCheck(), 50u);             // armed at commit
}

TEST_F(DmdcTest, BranchRecoveryClampsEndCheck)
{
    DmdcEngine eng{DmdcParams{}};
    eng.loadIssued(0x1000, 90);   // wrong-path load, very young
    DynInst *st = store(10, 0x1000);
    eng.storeResolved(st, 5);
    EXPECT_EQ(eng.endCheck(), 90u);
    eng.branchRecovery(60);
    EXPECT_EQ(eng.endCheck(), 60u);
}

TEST_F(DmdcTest, CoherenceInvalidationOpensWindowAndReplaysSecondLoad)
{
    DmdcParams params;
    params.coherence = true;
    DmdcEngine eng{params};

    eng.loadIssued(0x1000, 50);
    eng.invalidationArrived(0x1000, 5);
    EXPECT_TRUE(eng.checkingActive());

    // First same-line load: no replay, but promotes INV -> WRT.
    DynInst *l1 = load(20, 0x1000);
    l1->memIssueCycle = 2;
    EXPECT_FALSE(eng.commit(l1, 6).replay);
    // Second load to the same location replays (write serialization).
    DynInst *l2 = load(30, 0x1000);
    l2->memIssueCycle = 3;
    EXPECT_TRUE(eng.commit(l2, 7).replay);
}

TEST_F(DmdcTest, InvalidationWithNoCoveringLoadIsIgnored)
{
    DmdcParams params;
    params.coherence = true;
    DmdcEngine eng{params};
    eng.invalidationArrived(0x5000, 5);
    EXPECT_FALSE(eng.checkingActive());
}

TEST_F(DmdcTest, QueueVariantOverflowForcesReplay)
{
    DmdcParams params;
    params.useQueue = true;
    params.queueEntries = 1;
    DmdcEngine eng{params};

    eng.loadIssued(0x1000, 50);
    eng.loadIssued(0x2000, 51);
    DynInst *s1 = store(10, 0x1000);
    DynInst *s2 = store(11, 0x2000);
    eng.storeResolved(s1, 5);
    eng.storeResolved(s2, 5);
    eng.commit(s1, 10);
    eng.commit(s2, 10);   // overflows the 1-entry queue

    DynInst *innocent = load(20, 0x7000);
    innocent->memIssueCycle = 9;
    ReplayClass rc = eng.commit(innocent, 11);
    EXPECT_TRUE(rc.replay);
    EXPECT_TRUE(rc.queueOverflow);
    EXPECT_EQ(eng.stats().falseOverflow.value(), 1u);
}

TEST_F(DmdcTest, WindowStatsAccumulate)
{
    DmdcEngine eng{DmdcParams{}};
    eng.loadIssued(0x1000, 50);
    DynInst *st = store(10, 0x1000);
    st->doneCycle = 5;
    eng.storeResolved(st, 5);
    eng.commit(st, 10);
    eng.commit(alu(11), 11);
    DynInst *in_window = load(12, 0x4000);
    in_window->memIssueCycle = 9;
    eng.commit(in_window, 12);
    eng.commit(alu(51), 13);   // closes window (past end-check 50)

    const auto &s = eng.stats();
    EXPECT_EQ(s.windows.value(), 1u);
    EXPECT_EQ(s.windowsSingleStore.value(), 1u);
    // store + alu + load + closer = 4 committed in window.
    EXPECT_DOUBLE_EQ(s.windowInstrs.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.windowLoads.mean(), 1.0);
}

TEST_F(DmdcTest, CheckingCyclesCounted)
{
    DmdcEngine eng{DmdcParams{}};
    eng.tick();
    EXPECT_EQ(eng.stats().checkingCycles.value(), 0u);
    eng.loadIssued(0x1000, 50);
    DynInst *st = store(10, 0x1000);
    eng.storeResolved(st, 5);
    eng.commit(st, 10);
    eng.tick();
    eng.tick();
    EXPECT_EQ(eng.stats().checkingCycles.value(), 2u);
}

} // namespace
} // namespace dmdc
