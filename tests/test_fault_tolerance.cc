/**
 * @file
 * Tests of the fault-tolerance layer: structured errors and option
 * validation, the deterministic fault injector, per-run isolation and
 * retries in the campaign engine, watchdog timeouts, cache corruption
 * handling (quarantine + recompute), LRU eviction, and
 * checkpoint/resume with bit-identical journals.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>

#include "sim/campaign_runner.hh"
#include "sim/campaign_state.hh"
#include "sim/fault_injector.hh"
#include "sim/run_error.hh"
#include "sim/simulator.hh"

namespace dmdc
{
namespace
{

namespace fs = std::filesystem;

SimOptions
quickOptions(const std::string &bench, const std::string &scheme)
{
    SimOptions opt;
    opt.benchmark = bench;
    opt.scheme = scheme;
    opt.warmupInsts = 2000;
    opt.runInsts = 20000;
    return opt;
}

std::string
slurp(const fs::path &path)
{
    std::ifstream is(path);
    std::stringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

std::size_t
countFiles(const fs::path &dir, const char *ext = ".json")
{
    std::size_t n = 0;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(dir, ec)) {
        if (de.is_regular_file() && de.path().extension() == ext)
            ++n;
    }
    return n;
}

/** The single cache entry in @p dir (fails the test if not single). */
fs::path
soleCacheEntry(const fs::path &dir)
{
    fs::path found;
    for (const auto &de : fs::directory_iterator(dir)) {
        if (de.is_regular_file() && de.path().extension() == ".json") {
            EXPECT_TRUE(found.empty()) << "more than one cache entry";
            found = de.path();
        }
    }
    EXPECT_FALSE(found.empty()) << "no cache entry in " << dir;
    return found;
}

/**
 * Every test gets a scratch directory and leaves the process-global
 * injector and journal disabled behind it.
 */
class FaultTolerance : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        scratch_ = fs::temp_directory_path() /
            ("dmdc_ft_" + std::string(::testing::UnitTest::GetInstance()
                                          ->current_test_info()
                                          ->name()));
        fs::remove_all(scratch_);
        fs::create_directories(scratch_);
        FaultInjector::global().configure({});
    }

    void
    TearDown() override
    {
        FaultInjector::global().configure({});
        setCampaignJournal("");
        fs::remove_all(scratch_);
    }

    CampaignConfig
    cachedConfig() const
    {
        CampaignConfig cfg;
        cfg.cacheDir = (scratch_ / "cache").string();
        return cfg;
    }

    fs::path scratch_;
};

// ---- fault spec parsing ----------------------------------------------

TEST(FaultSpecParse, FullSpecification)
{
    const FaultSpec spec = parseFaultSpec(
        "cache-corrupt:p=0.1,run-throw:p=0.05,run-hang:p=0.01,seed=42");
    EXPECT_DOUBLE_EQ(spec.cacheCorruptP, 0.1);
    EXPECT_DOUBLE_EQ(spec.runThrowP, 0.05);
    EXPECT_DOUBLE_EQ(spec.runHangP, 0.01);
    EXPECT_EQ(spec.seed, 42u);
    EXPECT_TRUE(spec.any());
}

TEST(FaultSpecParse, EmptyDisables)
{
    EXPECT_FALSE(parseFaultSpec("").any());
}

TEST(FaultSpecParse, RejectsUnknownSite)
{
    try {
        (void)parseFaultSpec("disk-on-fire:p=0.5");
        FAIL() << "expected RunError";
    } catch (const RunError &e) {
        EXPECT_EQ(e.category(), RunErrorCategory::Config);
    }
}

TEST(FaultSpecParse, RejectsBadProbability)
{
    EXPECT_THROW((void)parseFaultSpec("run-throw:p=1.5"), RunError);
    EXPECT_THROW((void)parseFaultSpec("run-throw:p=-0.1"), RunError);
    EXPECT_THROW((void)parseFaultSpec("run-throw:p=banana"), RunError);
    EXPECT_THROW((void)parseFaultSpec("run-throw"), RunError);
}

// ---- injector determinism --------------------------------------------

TEST_F(FaultTolerance, InjectorDecisionsAreDeterministic)
{
    FaultSpec spec;
    spec.runThrowP = 0.5;
    spec.seed = 9;
    FaultInjector::global().configure(spec);
    const FaultInjector &inj = FaultInjector::global();

    // Same (key, attempt) -> same answer, every time.
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(inj.injectRunThrow("k1", 0),
                  inj.injectRunThrow("k1", 0));
        EXPECT_EQ(inj.injectRunHang("k1"), inj.injectRunHang("k1"));
    }
    // Decisions vary across keys/attempts at p=0.5 (not stuck).
    bool saw_true = false, saw_false = false;
    for (int i = 0; i < 64; ++i) {
        const bool d = inj.injectRunThrow("key" + std::to_string(i), 0);
        (d ? saw_true : saw_false) = true;
    }
    EXPECT_TRUE(saw_true);
    EXPECT_TRUE(saw_false);
}

TEST_F(FaultTolerance, InjectorProbabilityEndpoints)
{
    FaultSpec spec;
    spec.runThrowP = 1.0;
    FaultInjector::global().configure(spec);
    EXPECT_TRUE(FaultInjector::global().injectRunThrow("x", 0));
    EXPECT_FALSE(FaultInjector::global().injectRunHang("x"));
    spec.runThrowP = 0.0;
    FaultInjector::global().configure(spec);
    EXPECT_FALSE(FaultInjector::global().injectRunThrow("x", 0));
}

// ---- option validation -----------------------------------------------

TEST_F(FaultTolerance, ValidationRejectsBadOptions)
{
    auto expect_config_error = [](SimOptions opt, const char *what) {
        try {
            validateSimOptions(opt);
            FAIL() << "expected RunError for " << what;
        } catch (const RunError &e) {
            EXPECT_EQ(e.category(), RunErrorCategory::Config) << what;
            EXPECT_FALSE(e.transient()) << what;
        }
    };
    SimOptions good = quickOptions("gzip", "dmdc-global");
    EXPECT_NO_THROW(validateSimOptions(good));

    SimOptions opt = good;
    opt.benchmark = "no-such-bench";
    expect_config_error(opt, "unknown benchmark");
    opt = good;
    opt.scheme = "no-such-scheme";
    expect_config_error(opt, "unknown scheme");
    opt = good;
    opt.configLevel = 7;
    expect_config_error(opt, "bad config level");
    opt = good;
    opt.runInsts = 0;
    expect_config_error(opt, "zero instructions");
    opt = good;
    opt.numYlaQw = 3;
    expect_config_error(opt, "non-power-of-two YLA count");
    opt = good;
    opt.tableEntriesOverride = 100;
    expect_config_error(opt, "non-power-of-two table");
    opt = good;
    opt.queueEntries = 0;
    expect_config_error(opt, "zero queue entries");
    opt = good;
    opt.invalidationsPer1kCycles = -1.0;
    expect_config_error(opt, "negative invalidation rate");
    opt = good;
    opt.timeoutMs = -5.0;
    expect_config_error(opt, "negative timeout");
}

// ---- run isolation ---------------------------------------------------

TEST_F(FaultTolerance, RunCheckedCapturesFailuresWithoutAborting)
{
    FaultSpec spec;
    spec.runThrowP = 1.0;
    FaultInjector::global().configure(spec);

    CampaignConfig cfg = cachedConfig();
    cfg.useCache = false;
    cfg.maxRetries = 0;
    CampaignRunner runner(cfg);
    const std::vector<SimOptions> runs = {
        quickOptions("gzip", "baseline"),
        quickOptions("swim", "yla"),
    };
    const CampaignResult cr = runner.runChecked(runs);
    ASSERT_EQ(cr.outcomes.size(), 2u);
    EXPECT_FALSE(cr.allOk());
    for (const RunOutcome &oc : cr.outcomes) {
        EXPECT_EQ(oc.status, RunStatus::Failed);
        EXPECT_EQ(oc.category, RunErrorCategory::SimInvariant);
        EXPECT_EQ(oc.attempts, 1u);
        EXPECT_NE(oc.error.find("run-throw"), std::string::npos);
    }
    EXPECT_EQ(runner.lastStats().failed, 2u);
}

TEST_F(FaultTolerance, BadRunDegradesGoodCampaign)
{
    CampaignConfig cfg = cachedConfig();
    cfg.useCache = false;
    CampaignRunner runner(cfg);
    std::vector<SimOptions> runs = {
        quickOptions("gzip", "baseline"),
        quickOptions("gzip", "baseline"),
    };
    runs[1].configLevel = 9; // config error at Simulator construction
    const CampaignResult cr = runner.runChecked(runs);
    EXPECT_EQ(cr.outcomes[0].status, RunStatus::Ok);
    EXPECT_GT(cr.results[0].instructions, 0u);
    EXPECT_EQ(cr.outcomes[1].status, RunStatus::Failed);
    EXPECT_EQ(cr.outcomes[1].category, RunErrorCategory::Config);
    // Config errors are not transient: no retries burned.
    EXPECT_EQ(cr.outcomes[1].attempts, 1u);
}

TEST_F(FaultTolerance, TransientFailuresRetryPredictably)
{
    FaultSpec spec;
    spec.runThrowP = 0.5;
    spec.seed = 1234;
    FaultInjector::global().configure(spec);

    CampaignConfig cfg = cachedConfig();
    cfg.useCache = false;
    cfg.maxRetries = 4;
    CampaignRunner runner(cfg);
    const std::vector<SimOptions> runs = {
        quickOptions("gzip", "baseline"),
        quickOptions("swim", "baseline"),
        quickOptions("vpr", "baseline"),
        quickOptions("gcc", "baseline"),
    };
    const CampaignResult cr = runner.runChecked(runs);

    // The injector is a pure function, so the expected attempt count
    // of every run is computable up front.
    const FaultInjector &inj = FaultInjector::global();
    for (std::size_t i = 0; i < runs.size(); ++i) {
        unsigned expected_attempts = 0;
        bool expected_ok = false;
        for (unsigned a = 0; a <= cfg.maxRetries; ++a) {
            ++expected_attempts;
            if (!inj.injectRunThrow(runIdentity(runs[i]), a)) {
                expected_ok = true;
                break;
            }
        }
        EXPECT_EQ(cr.outcomes[i].attempts, expected_attempts);
        EXPECT_EQ(cr.outcomes[i].ok(), expected_ok);
    }
}

TEST_F(FaultTolerance, FailFastSkipsLaterRuns)
{
    FaultSpec spec;
    spec.runThrowP = 1.0;
    FaultInjector::global().configure(spec);

    CampaignConfig cfg = cachedConfig();
    cfg.useCache = false;
    cfg.maxRetries = 0;
    cfg.failFast = true;
    cfg.jobs = 1; // serial: deterministic skip set
    CampaignRunner runner(cfg);
    const std::vector<SimOptions> runs = {
        quickOptions("gzip", "baseline"),
        quickOptions("swim", "baseline"),
        quickOptions("vpr", "baseline"),
    };
    const CampaignResult cr = runner.runChecked(runs);
    EXPECT_EQ(cr.outcomes[0].status, RunStatus::Failed);
    EXPECT_EQ(cr.outcomes[1].status, RunStatus::Skipped);
    EXPECT_EQ(cr.outcomes[2].status, RunStatus::Skipped);
    EXPECT_EQ(runner.lastStats().skipped, 2u);
}

// ---- watchdogs -------------------------------------------------------

TEST_F(FaultTolerance, InjectedHangBecomesTimeout)
{
    FaultSpec spec;
    spec.runHangP = 1.0;
    FaultInjector::global().configure(spec);

    SimOptions opt = quickOptions("gzip", "baseline");
    opt.stallCycleLimit = 2000; // keep the spin cheap
    try {
        (void)runSimulation(opt);
        FAIL() << "expected RunError(Timeout)";
    } catch (const RunError &e) {
        EXPECT_EQ(e.category(), RunErrorCategory::Timeout);
        EXPECT_NE(std::string(e.what()).find("run-hang"),
                  std::string::npos);
    }
}

TEST_F(FaultTolerance, HangSurfacesAsTimedOutOutcome)
{
    FaultSpec spec;
    spec.runHangP = 1.0;
    FaultInjector::global().configure(spec);

    CampaignConfig cfg = cachedConfig();
    cfg.useCache = false;
    cfg.maxRetries = 0;
    CampaignRunner runner(cfg);
    SimOptions opt = quickOptions("gzip", "baseline");
    opt.stallCycleLimit = 2000;
    const CampaignResult cr = runner.runChecked({opt});
    EXPECT_EQ(cr.outcomes[0].status, RunStatus::TimedOut);
    EXPECT_EQ(cr.outcomes[0].category, RunErrorCategory::Timeout);
    EXPECT_EQ(runner.lastStats().timedOut, 1u);
}

TEST_F(FaultTolerance, WallClockDeadlineFires)
{
    SimOptions opt = quickOptions("gzip", "baseline");
    opt.runInsts = 5000000; // far more work than the budget allows
    opt.timeoutMs = 0.01;
    try {
        (void)runSimulation(opt);
        FAIL() << "expected RunError(Timeout)";
    } catch (const RunError &e) {
        EXPECT_EQ(e.category(), RunErrorCategory::Timeout);
        EXPECT_NE(std::string(e.what()).find("wall-clock"),
                  std::string::npos);
    }
}

// ---- cache robustness ------------------------------------------------

class CacheCorruption : public FaultTolerance
{
  protected:
    /**
     * Populate the cache with one entry, damage it with @p damage,
     * then re-run with a fresh runner (no in-process memo) and verify
     * quarantine + bit-identical recompute.
     */
    void
    roundTrip(const std::function<void(const fs::path &)> &damage)
    {
        const SimOptions opt = quickOptions("gzip", "dmdc-global");
        SimResult reference;
        {
            CampaignRunner runner(cachedConfig());
            reference = runner.runChecked({opt}).results.front();
        }
        const fs::path dir = scratch_ / "cache";
        const fs::path entry = soleCacheEntry(dir);
        damage(entry);

        CampaignRunner runner(cachedConfig());
        const CampaignResult cr = runner.runChecked({opt});
        ASSERT_TRUE(cr.allOk());
        EXPECT_EQ(runner.lastStats().quarantined, 1u);
        EXPECT_EQ(runner.lastStats().simulated, 1u); // recomputed
        EXPECT_EQ(cr.results.front().cycles, reference.cycles);
        EXPECT_EQ(cr.results.front().ipc, reference.ipc);
        // The bad bytes moved to quarantine/ and a good entry took
        // their place.
        EXPECT_EQ(countFiles(dir / "quarantine"), 1u);
        // The rewritten entry must now hit.
        CampaignRunner again(cachedConfig());
        (void)again.runChecked({opt});
        EXPECT_EQ(again.lastStats().diskHits, 1u);
    }
};

TEST_F(CacheCorruption, TruncatedEntryQuarantines)
{
    roundTrip([](const fs::path &entry) {
        const std::string text = slurp(entry);
        std::ofstream os(entry, std::ios::trunc);
        os << text.substr(0, text.size() / 2);
    });
}

TEST_F(CacheCorruption, BitFlipFailsChecksum)
{
    roundTrip([](const fs::path &entry) {
        std::string text = slurp(entry);
        ASSERT_GT(text.size(), 200u);
        // Flip a digit inside the payload, past the header line.
        const std::size_t pos = text.find('\n') + 50;
        text[pos] = text[pos] == '0' ? '1' : '0';
        std::ofstream os(entry, std::ios::trunc);
        os << text;
    });
}

TEST_F(CacheCorruption, WrongVersionQuarantines)
{
    roundTrip([](const fs::path &entry) {
        std::string text = slurp(entry);
        const std::string tag = "{\"dmdc_cache\":";
        ASSERT_EQ(text.rfind(tag, 0), 0u);
        text[tag.size()] = '1'; // pretend an old format version
        std::ofstream os(entry, std::ios::trunc);
        os << text;
    });
}

TEST_F(CacheCorruption, ZeroByteEntryQuarantines)
{
    roundTrip([](const fs::path &entry) {
        std::ofstream os(entry, std::ios::trunc);
    });
}

TEST_F(CacheCorruption, LegacyHeaderlessEntryQuarantines)
{
    roundTrip([](const fs::path &entry) {
        // v2 files were the bare payload with no CRC header.
        const std::string text = slurp(entry);
        std::ofstream os(entry, std::ios::trunc);
        os << text.substr(text.find('\n') + 1);
    });
}

TEST_F(FaultTolerance, InjectedCacheCorruptionHealsOnReload)
{
    FaultSpec spec;
    spec.cacheCorruptP = 1.0;
    FaultInjector::global().configure(spec);
    const SimOptions opt = quickOptions("swim", "baseline");
    {
        CampaignRunner runner(cachedConfig());
        ASSERT_TRUE(runner.runChecked({opt}).allOk());
    }
    FaultInjector::global().configure({});
    CampaignRunner runner(cachedConfig());
    ASSERT_TRUE(runner.runChecked({opt}).allOk());
    EXPECT_EQ(runner.lastStats().quarantined, 1u);
    EXPECT_EQ(runner.lastStats().simulated, 1u);
}

TEST_F(FaultTolerance, CacheCapEvictsLru)
{
    const std::vector<SimOptions> runs = {
        quickOptions("gzip", "baseline"),
        quickOptions("swim", "baseline"),
        quickOptions("vpr", "baseline"),
    };
    {
        CampaignRunner runner(cachedConfig());
        ASSERT_TRUE(runner.runChecked(runs).allOk());
    }
    const fs::path dir = scratch_ / "cache";
    EXPECT_EQ(countFiles(dir), 3u);

    CampaignConfig cfg = cachedConfig();
    cfg.cacheMaxBytes = 1; // evict everything written so far
    CampaignRunner capped(cfg);
    ASSERT_TRUE(capped.runChecked({runs[0]}).allOk());
    EXPECT_GE(capped.lastStats().evicted, 3u);
    EXPECT_EQ(countFiles(dir), 0u);
}

TEST_F(FaultTolerance, QuarantineCapAgesOutOldestFiles)
{
    const std::vector<SimOptions> runs = {
        quickOptions("gzip", "baseline"),
        quickOptions("swim", "baseline"),
        quickOptions("vpr", "baseline"),
    };
    {
        CampaignRunner runner(cachedConfig());
        ASSERT_TRUE(runner.runChecked(runs).allOk());
    }
    // Damage every cache entry so the next campaign quarantines all
    // three.
    const fs::path dir = scratch_ / "cache";
    for (const auto &de : fs::directory_iterator(dir)) {
        if (!de.is_regular_file() ||
            de.path().extension() != ".json")
            continue;
        std::ofstream os(de.path(), std::ios::trunc);
        os << "ruined";
    }

    CampaignConfig cfg = cachedConfig();
    cfg.quarantineMaxEntries = 1;
    CampaignRunner runner(cfg);
    ASSERT_TRUE(runner.runChecked(runs).allOk());
    EXPECT_EQ(runner.lastStats().quarantined, 3u);
    // The cap held: only the newest corpse survives, the rest aged
    // out oldest-first and were counted.
    EXPECT_LE(countFiles(dir / "quarantine"), 1u);
    EXPECT_GE(runner.lastStats().quarantineEvicted, 2u);

    // A byte cap of 1 clears even that last file on the next
    // quarantine event.
    for (const auto &de : fs::directory_iterator(dir)) {
        if (!de.is_regular_file() ||
            de.path().extension() != ".json")
            continue;
        std::ofstream os(de.path(), std::ios::trunc);
        os << "ruined again";
    }
    CampaignConfig tight = cachedConfig();
    tight.quarantineMaxBytes = 1;
    CampaignRunner again(tight);
    ASSERT_TRUE(again.runChecked(runs).allOk());
    EXPECT_EQ(countFiles(dir / "quarantine"), 0u);
    EXPECT_GE(again.lastStats().quarantineEvicted, 1u);
}

// ---- checkpoint / resume ---------------------------------------------

TEST_F(FaultTolerance, StateRoundTripsThroughDisk)
{
    CampaignState state;
    state.fingerprint = "00d1ce00facade00";
    CampaignStateEntry e;
    e.benchmark = "gzip";
    e.scheme = "dmdc-global";
    e.configLevel = 3;
    e.status = RunStatus::Failed;
    e.category = "sim-invariant";
    e.error = "it said \"boom\" and a back\\slash";
    e.attempts = 3;
    state.entries.push_back(e);
    e.status = RunStatus::Ok;
    e.category.clear();
    e.error.clear();
    e.attempts = 1;
    state.entries.push_back(e);

    const std::string path = (scratch_ / "state.json").string();
    ASSERT_TRUE(saveCampaignState(path, state));
    CampaignState loaded;
    std::string err;
    ASSERT_TRUE(loadCampaignState(path, loaded, err)) << err;
    ASSERT_EQ(loaded.entries.size(), 2u);
    EXPECT_EQ(loaded.fingerprint, state.fingerprint);
    EXPECT_EQ(loaded.entries[0].status, RunStatus::Failed);
    EXPECT_EQ(loaded.entries[0].error, state.entries[0].error);
    EXPECT_EQ(loaded.entries[0].attempts, 3u);
    EXPECT_EQ(loaded.entries[1].status, RunStatus::Ok);

    std::string bad_err;
    CampaignState missing;
    EXPECT_FALSE(loadCampaignState(
        (scratch_ / "nope.json").string(), missing, bad_err));
    EXPECT_FALSE(bad_err.empty());
}

TEST_F(FaultTolerance, ResumeMatchesUninterruptedRunBitForBit)
{
    const std::vector<SimOptions> runs = {
        quickOptions("gzip", "baseline"),
        quickOptions("gzip", "yla"),
        quickOptions("swim", "baseline"),
        quickOptions("swim", "yla"),
    };
    const std::string ref_path = (scratch_ / "ref.json").string();
    const std::string res_path = (scratch_ / "res.json").string();
    const std::string state = (scratch_ / "state.json").string();

    // Reference: uninterrupted serial campaign.
    {
        setCampaignJournal(ref_path, /*deterministic=*/true);
        CampaignConfig cfg;
        cfg.cacheDir = (scratch_ / "cache_ref").string();
        cfg.jobs = 1;
        CampaignRunner runner(cfg);
        ASSERT_TRUE(runner.runChecked(runs).allOk());
        flushCampaignJournal();
    }

    // Interrupted: chaos kills some runs mid-campaign.
    {
        setCampaignJournal("");
        FaultSpec spec;
        spec.runThrowP = 0.5;
        spec.seed = 5;
        FaultInjector::global().configure(spec);
        CampaignConfig cfg;
        cfg.cacheDir = (scratch_ / "cache_res").string();
        cfg.maxRetries = 0;
        cfg.statePath = state;
        CampaignRunner runner(cfg);
        const CampaignResult cr = runner.runChecked(runs);
        // A mixed outcome exercises both resume paths: served-from-
        // cache for the survivors, fresh execution for the casualties.
        std::size_t ok_runs = 0;
        for (const RunOutcome &oc : cr.outcomes)
            ok_runs += oc.ok();
        ASSERT_FALSE(cr.allOk()) << "chaos seed produced no failures; "
                                    "pick another seed";
        ASSERT_GT(ok_runs, 0u) << "chaos seed killed every run; "
                                  "pick another seed";
        FaultInjector::global().configure({});
    }

    // Resume: completed runs come from the cache, the rest execute.
    {
        setCampaignJournal(res_path, /*deterministic=*/true);
        CampaignConfig cfg;
        cfg.cacheDir = (scratch_ / "cache_res").string();
        cfg.statePath = state;
        cfg.resume = true;
        CampaignRunner runner(cfg);
        ASSERT_TRUE(runner.runChecked(runs).allOk());
        flushCampaignJournal();
    }

    const std::string ref = slurp(ref_path);
    const std::string res = slurp(res_path);
    ASSERT_FALSE(ref.empty());
    EXPECT_EQ(ref, res);

    // The manifest converged to all-ok.
    CampaignState final_state;
    std::string err;
    ASSERT_TRUE(loadCampaignState(state, final_state, err)) << err;
    for (const CampaignStateEntry &e : final_state.entries)
        EXPECT_EQ(e.status, RunStatus::Ok);
}

TEST_F(FaultTolerance, ResumeRejectsForeignManifest)
{
    const std::string state = (scratch_ / "state.json").string();
    const std::vector<SimOptions> first = {
        quickOptions("gzip", "baseline")};
    const std::vector<SimOptions> second = {
        quickOptions("swim", "yla")};
    {
        CampaignConfig cfg = cachedConfig();
        cfg.statePath = state;
        CampaignRunner runner(cfg);
        ASSERT_TRUE(runner.runChecked(first).allOk());
    }
    // A different campaign resuming the same path starts fresh
    // (fingerprint mismatch) and rewrites the manifest.
    CampaignConfig cfg = cachedConfig();
    cfg.statePath = state;
    cfg.resume = true;
    CampaignRunner runner(cfg);
    ASSERT_TRUE(runner.runChecked(second).allOk());

    CampaignState loaded;
    std::string err;
    ASSERT_TRUE(loadCampaignState(state, loaded, err)) << err;
    EXPECT_EQ(loaded.fingerprint, campaignFingerprint(second));
    ASSERT_EQ(loaded.entries.size(), 1u);
    EXPECT_EQ(loaded.entries[0].benchmark, "swim");
}

} // namespace
} // namespace dmdc
