/**
 * @file
 * Tests of the durable ticket log (sim/ticket_log.hh): lifecycle
 * round trips, pending-ticket recovery semantics, damage tolerance
 * (torn lines, bit flips, garbage), and compaction.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "sim/ticket_log.hh"

namespace dmdc
{
namespace
{

namespace fs = std::filesystem;

class TicketLogTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = "ticket_log_test_" +
               std::string(::testing::UnitTest::GetInstance()
                               ->current_test_info()
                               ->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void
    TearDown() override
    {
        fs::remove_all(dir_);
    }

    std::string
    readLog(const TicketLog &log) const
    {
        std::ifstream in(log.logPath());
        return std::string(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
    }

    void
    appendRaw(const TicketLog &log, const std::string &text) const
    {
        std::ofstream out(log.logPath(), std::ios::app);
        out << text;
    }

    std::string dir_;
};

TEST_F(TicketLogTest, LifecycleRoundTrips)
{
    TicketLog log(dir_);
    ASSERT_TRUE(log.enabled());
    log.appendSubmit("k1", "{\"benchmark\":\"gzip\"}");
    log.appendStart("k1");
    log.appendFinish("k1", "ok");
    log.appendSubmit("k2", "{\"benchmark\":\"swim\"}");
    log.appendStart("k2");
    log.appendSubmit("k3", "{\"benchmark\":\"applu\"}");

    const TicketLogReplay rep = log.replay();
    EXPECT_EQ(rep.finished, 1u);
    EXPECT_EQ(rep.corrupt, 0u);
    ASSERT_EQ(rep.pending.size(), 2u);
    // First-submit order is preserved so a recovered queue re-runs
    // roughly in the order clients asked.
    EXPECT_EQ(rep.pending[0].key, "k2");
    EXPECT_EQ(rep.pending[0].spec, "{\"benchmark\":\"swim\"}");
    EXPECT_TRUE(rep.pending[0].started);
    EXPECT_EQ(rep.pending[1].key, "k3");
    EXPECT_FALSE(rep.pending[1].started);
}

TEST_F(TicketLogTest, DisabledLogIsInert)
{
    TicketLog log("");
    EXPECT_FALSE(log.enabled());
    log.appendSubmit("k", "{}");
    const TicketLogReplay rep = log.replay();
    EXPECT_TRUE(rep.pending.empty());
    EXPECT_FALSE(log.compact({}));
}

TEST_F(TicketLogTest, SpecsWithQuotesSurvive)
{
    // Run specs are nested JSON: quotes, braces, and backslashes
    // must round-trip through the record encoding.
    const std::string spec =
        "{\"benchmark\":\"a\\\"b\",\"scheme\":\"x\",\"inv\":1.5}";
    TicketLog log(dir_);
    log.appendSubmit("k", spec);
    const TicketLogReplay rep = log.replay();
    ASSERT_EQ(rep.pending.size(), 1u);
    EXPECT_EQ(rep.pending[0].spec, spec);
}

TEST_F(TicketLogTest, ResubmitAfterFinishIsPendingAgain)
{
    TicketLog log(dir_);
    log.appendSubmit("k", "{\"v\":1}");
    log.appendStart("k");
    log.appendFinish("k", "cancelled");
    log.appendSubmit("k", "{\"v\":2}");

    const TicketLogReplay rep = log.replay();
    EXPECT_EQ(rep.finished, 1u);
    ASSERT_EQ(rep.pending.size(), 1u);
    EXPECT_EQ(rep.pending[0].spec, "{\"v\":2}"); // latest spec wins
    EXPECT_FALSE(rep.pending[0].started);
}

TEST_F(TicketLogTest, TornLastLineIsSkipped)
{
    TicketLog log(dir_);
    log.appendSubmit("k1", "{}");
    log.appendSubmit("k2", "{}");
    // Simulate a crash mid-append: truncate the file inside the last
    // record.
    std::string content = readLog(log);
    ASSERT_FALSE(content.empty());
    content.resize(content.size() - 10);
    {
        std::ofstream out(log.logPath(), std::ios::trunc);
        out << content;
    }
    const TicketLogReplay rep = log.replay();
    EXPECT_EQ(rep.corrupt, 1u);
    ASSERT_EQ(rep.pending.size(), 1u);
    EXPECT_EQ(rep.pending[0].key, "k1");
}

TEST_F(TicketLogTest, GarbageAndTamperedLinesAreSkipped)
{
    TicketLog log(dir_);
    log.appendSubmit("k1", "{}");
    appendRaw(log, "not json at all\n");
    appendRaw(log, "{\"v\":1,\"op\":\"submit\",\"key\":\"evil\","
                   "\"spec\":\"{}\",\"crc\":\"00000000\"}\n");
    log.appendSubmit("k2", "{}");

    // Flip one byte inside the k2 record's key.
    std::string content = readLog(log);
    const std::size_t pos = content.rfind("k2");
    ASSERT_NE(pos, std::string::npos);
    content[pos + 1] = '9';
    {
        std::ofstream out(log.logPath(), std::ios::trunc);
        out << content;
    }

    const TicketLogReplay rep = log.replay();
    EXPECT_EQ(rep.corrupt, 3u);
    ASSERT_EQ(rep.pending.size(), 1u);
    EXPECT_EQ(rep.pending[0].key, "k1");
}

TEST_F(TicketLogTest, FinishForUnknownKeyIsIgnored)
{
    TicketLog log(dir_);
    log.appendFinish("ghost", "ok");
    log.appendStart("ghost2");
    log.appendSubmit("real", "{}");
    const TicketLogReplay rep = log.replay();
    EXPECT_EQ(rep.corrupt, 0u);
    ASSERT_EQ(rep.pending.size(), 1u);
    EXPECT_EQ(rep.pending[0].key, "real");
}

TEST_F(TicketLogTest, CompactionKeepsOnlyPending)
{
    TicketLog log(dir_);
    for (int i = 0; i < 50; ++i) {
        const std::string key = "done" + std::to_string(i);
        log.appendSubmit(key, "{}");
        log.appendStart(key);
        log.appendFinish(key, "ok");
    }
    log.appendSubmit("live", "{\"benchmark\":\"gzip\"}");
    log.appendStart("live");

    TicketLogReplay rep = log.replay();
    ASSERT_EQ(rep.pending.size(), 1u);
    ASSERT_TRUE(log.compact(rep.pending));

    // The rewritten log holds exactly the pending ticket, with its
    // started marker, and nothing of the finished history.
    rep = log.replay();
    EXPECT_EQ(rep.finished, 0u);
    EXPECT_EQ(rep.corrupt, 0u);
    ASSERT_EQ(rep.pending.size(), 1u);
    EXPECT_EQ(rep.pending[0].key, "live");
    EXPECT_EQ(rep.pending[0].spec, "{\"benchmark\":\"gzip\"}");
    EXPECT_TRUE(rep.pending[0].started);
    EXPECT_LT(fs::file_size(log.logPath()), 400u);
}

TEST_F(TicketLogTest, CompactionPolicyWantsDominatedLogs)
{
    TicketLog log(dir_);
    EXPECT_FALSE(log.shouldCompact(10, 0));
    EXPECT_FALSE(log.shouldCompact(255, 0));
    EXPECT_TRUE(log.shouldCompact(256, 0));
    // A busy daemon whose log is mostly live work should not churn.
    EXPECT_FALSE(log.shouldCompact(300, 100));
    EXPECT_TRUE(log.shouldCompact(1000, 100));
    TicketLog disabled("");
    EXPECT_FALSE(disabled.shouldCompact(100000, 0));
}

} // namespace
} // namespace dmdc
