/**
 * @file
 * Trace-sink unit tests: ring wraparound/overwrite ordering, name
 * interning limits, concurrent writer/snapshot safety (the TSan job
 * builds this binary), Chrome exporter round-trip through the strict
 * JSON parser, and channel reconfiguration in lockstep with the
 * legacy trace() gate.
 *
 * Ordering matters inside this file: gtest runs tests in definition
 * order, and the interning-limit test deliberately exhausts the
 * process-wide name table (interned ids live for the process
 * lifetime), so it must stay last.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/trace_sink.hh"

using namespace dmdc;

namespace
{

TraceOptions
enabledOptions(const std::string &channels, std::uint64_t records)
{
    TraceOptions opt;
    opt.channels = channels;
    opt.outPath = "trace_sink_test_unused.json";
    opt.bufferRecords = records;
    return opt;
}

/** Export to a temp file, strict-parse it, and delete the file. */
JsonValue
exportAndParse()
{
    const std::string path = "trace_sink_test_export.json";
    std::string err;
    EXPECT_TRUE(traceExportChrome(path, err)) << err;
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good());
    std::ostringstream os;
    os << is.rdbuf();
    std::remove(path.c_str());
    JsonValue doc;
    EXPECT_TRUE(parseJson(os.str(), doc, err)) << err;
    return doc;
}

/** All exported events whose "name" equals @p name. */
std::vector<const JsonValue *>
eventsNamed(const JsonValue &doc, const std::string &name)
{
    std::vector<const JsonValue *> out;
    const JsonValue *list = doc.find("traceEvents");
    if (!list)
        return out;
    for (const JsonValue &e : list->items) {
        const JsonValue *n = e.find("name");
        if (n && n->text == name)
            out.push_back(&e);
    }
    return out;
}

std::uint64_t
argValue(const JsonValue &event)
{
    const JsonValue *args = event.find("args");
    if (!args)
        return 0;
    const JsonValue *v = args->find("v");
    return v ? std::stoull(v->text) : 0;
}

} // namespace

TEST(TraceSink, PathHelpers)
{
    EXPECT_EQ(tracePathWithTag("trace.json", ".supervisor"),
              "trace.supervisor.json");
    EXPECT_EQ(tracePathWithTag("out/trace.json", ".supervisor"),
              "out/trace.supervisor.json");
    EXPECT_EQ(tracePathWithTag("tracefile", ".supervisor"),
              "tracefile.supervisor");
    EXPECT_EQ(tracePathWithTag("a.b/tracefile", ".x"),
              "a.b/tracefile.x");
    EXPECT_EQ(traceShardPath("trace.json", 0, 2),
              "trace.shard0of2.json");
    EXPECT_EQ(traceShardPath("trace.json", 1, 2),
              "trace.shard1of2.json");
    EXPECT_EQ(traceShardPath("trace.json", 0, 1), "trace.json");
    EXPECT_EQ(traceShardPath("trace.json", 0, 0), "trace.json");
}

TEST(TraceSink, DisabledCategoryRecordsNothing)
{
    traceReset();
    traceConfigure(enabledOptions("somethingelse", 1024));
    TraceCategory &cat = traceCategory("ts-disabled");
    ASSERT_FALSE(cat.on());
    const std::uint64_t before = traceRecordsPublished();
    const std::uint16_t name = traceNameId("ts-disabled-evt");
    traceInstant(cat, name);
    traceInstantArg(cat, name, 7);
    traceCounter(cat, name, 9);
    { TraceSpan span(cat, name); }
    EXPECT_EQ(traceRecordsPublished(), before);
}

TEST(TraceSink, WraparoundKeepsNewestInOrder)
{
    traceReset();
    traceConfigure(enabledOptions("ts-wrap", 16));
    TraceCategory &cat = traceCategory("ts-wrap");
    ASSERT_TRUE(cat.on());
    const std::uint16_t name = traceNameId("ts-wrap-evt");
    const std::uint64_t total = 100;
    for (std::uint64_t i = 0; i < total; ++i)
        traceInstantArg(cat, name, i);

    const JsonValue doc = exportAndParse();
    const auto events = eventsNamed(doc, "ts-wrap-evt");
    // Overwrite-oldest: exactly one ring's worth survives, and it is
    // the newest contiguous suffix in publication order.
    ASSERT_EQ(events.size(), 16u);
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(argValue(*events[i]), total - 16 + i);
}

TEST(TraceSink, ExporterRoundTrip)
{
    traceReset();
    traceConfigure(enabledOptions("ts-export", 1024));
    traceSetThreadName("ts-export-main");
    TraceCategory &cat = traceCategory("ts-export");
    ASSERT_TRUE(cat.on());

    { TraceSpan span(cat, traceNameId("ts-export-span")); }
    traceInstantArg(cat, traceNameId("ts-export-inst"), 42);
    traceCounter(cat, traceNameId("ts-export-ctr"), 17);

    const JsonValue doc = exportAndParse();
    ASSERT_EQ(doc.kind, JsonValue::Kind::Object);
    const JsonValue *unit = doc.find("displayTimeUnit");
    ASSERT_NE(unit, nullptr);
    EXPECT_EQ(unit->text, "ms");
    const JsonValue *list = doc.find("traceEvents");
    ASSERT_NE(list, nullptr);
    ASSERT_EQ(list->kind, JsonValue::Kind::Array);

    // Every event carries the Chrome trace-event envelope, with this
    // process's pid.
    const std::string pid = std::to_string(getpid());
    for (const JsonValue &e : list->items) {
        ASSERT_EQ(e.kind, JsonValue::Kind::Object);
        const JsonValue *ph = e.find("ph");
        ASSERT_NE(ph, nullptr);
        EXPECT_EQ(ph->kind, JsonValue::Kind::String);
        const JsonValue *ts = e.find("ts");
        ASSERT_NE(ts, nullptr);
        EXPECT_EQ(ts->kind, JsonValue::Kind::Number);
        const JsonValue *p = e.find("pid");
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(p->text, pid);
        ASSERT_NE(e.find("tid"), nullptr);
        ASSERT_NE(e.find("name"), nullptr);
    }

    const auto spans = eventsNamed(doc, "ts-export-span");
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0]->find("ph")->text, "X");
    ASSERT_NE(spans[0]->find("dur"), nullptr);
    EXPECT_EQ(spans[0]->find("dur")->kind, JsonValue::Kind::Number);
    EXPECT_EQ(spans[0]->find("cat")->text, "ts-export");

    const auto insts = eventsNamed(doc, "ts-export-inst");
    ASSERT_EQ(insts.size(), 1u);
    EXPECT_EQ(insts[0]->find("ph")->text, "i");
    EXPECT_EQ(insts[0]->find("s")->text, "t");
    EXPECT_EQ(argValue(*insts[0]), 42u);

    const auto ctrs = eventsNamed(doc, "ts-export-ctr");
    ASSERT_EQ(ctrs.size(), 1u);
    EXPECT_EQ(ctrs[0]->find("ph")->text, "C");
    EXPECT_EQ(argValue(*ctrs[0]), 17u);

    // The named thread shows up as Chrome thread_name metadata.
    bool named = false;
    for (const JsonValue *m : eventsNamed(doc, "thread_name")) {
        const JsonValue *args = m->find("args");
        if (args && args->find("name") &&
            args->find("name")->text == "ts-export-main")
            named = true;
    }
    EXPECT_TRUE(named);
}

TEST(TraceSink, SpanCapturesEnablementAtConstruction)
{
    traceReset();
    traceConfigure(enabledOptions("ts-span", 1024));
    TraceCategory &cat = traceCategory("ts-span");
    ASSERT_TRUE(cat.on());
    const std::uint64_t before = traceRecordsPublished();
    {
        TraceSpan span(cat, traceNameId("ts-span-evt"));
        // Disabling mid-span must not lose the record: the span
        // latched the category when it started.
        traceConfigure(enabledOptions("other", 1024));
        ASSERT_FALSE(cat.on());
    }
    EXPECT_EQ(traceRecordsPublished(), before + 1);
}

TEST(TraceSink, ReconfigureFlipsCategoriesAndLegacyGate)
{
    traceReset();
    traceConfigure(enabledOptions("ts-recfg-a", 1024));
    TraceCategory &a = traceCategory("ts-recfg-a");
    TraceCategory &b = traceCategory("ts-recfg-b");
    EXPECT_TRUE(a.on());
    EXPECT_FALSE(b.on());
    // The legacy fprintf trace() gate follows the same channel set.
    EXPECT_TRUE(traceEnabled("ts-recfg-a"));
    EXPECT_FALSE(traceEnabled("ts-recfg-b"));

    traceConfigure(enabledOptions("ts-recfg-b", 1024));
    EXPECT_FALSE(a.on());
    EXPECT_TRUE(b.on());
    EXPECT_FALSE(traceEnabled("ts-recfg-a"));
    EXPECT_TRUE(traceEnabled("ts-recfg-b"));

    traceConfigure(enabledOptions("all", 1024));
    EXPECT_TRUE(a.on());
    EXPECT_TRUE(b.on());
    EXPECT_TRUE(traceEnabled("anything"));

    TraceOptions off;
    off.channels.clear();
    traceConfigure(off);
    EXPECT_FALSE(a.on());
    EXPECT_FALSE(b.on());
    EXPECT_FALSE(traceCaptureActive());
}

TEST(TraceSink, ConcurrentWritersAndSnapshots)
{
    traceReset();
    traceConfigure(enabledOptions("ts-stress", 256));
    TraceCategory &cat = traceCategory("ts-stress");
    ASSERT_TRUE(cat.on());
    const std::uint16_t name = traceNameId("ts-stress-evt");
    const std::uint64_t before = traceRecordsPublished();

    constexpr unsigned kWriters = 4;
    constexpr std::uint64_t kPerWriter = 20000;
    std::vector<std::thread> writers;
    for (unsigned w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
            traceSetThreadName("stress-" + std::to_string(w));
            for (std::uint64_t i = 0; i < kPerWriter; ++i)
                traceInstantArg(cat, name, i);
        });
    }
    // Snapshot concurrently with the writers: torn slots must be
    // skipped, not raced (the TSan job runs this binary).
    for (int round = 0; round < 20; ++round) {
        const std::string path = "trace_sink_test_stress.json";
        std::string err;
        ASSERT_TRUE(traceExportChrome(path, err)) << err;
        std::remove(path.c_str());
    }
    for (std::thread &t : writers)
        t.join();
    EXPECT_EQ(traceRecordsPublished(),
              before + kWriters * kPerWriter);

    // After the writers exited, their rings (and thread names) must
    // still be visible to the exporter.
    const JsonValue doc = exportAndParse();
    EXPECT_EQ(eventsNamed(doc, "ts-stress-evt").size(),
              kWriters * std::min<std::uint64_t>(kPerWriter, 256));
    bool sawWorker = false;
    for (const JsonValue *m : eventsNamed(doc, "thread_name")) {
        const JsonValue *args = m->find("args");
        if (args && args->find("name") &&
            args->find("name")->text.rfind("stress-", 0) == 0)
            sawWorker = true;
    }
    EXPECT_TRUE(sawWorker);
}

// Keep last: exhausts the process-wide name table (ids are interned
// for the process lifetime, traceReset() does not return them).
TEST(TraceSink, NameInterningOverflowsToIdZero)
{
    traceReset();
    traceConfigure(enabledOptions("ts-intern", 1024));

    const std::uint16_t first = traceNameId("ts-intern-first");
    EXPECT_NE(first, 0);
    EXPECT_EQ(traceNameId("ts-intern-first"), first);

    // Fill the table; past the cap every new name maps to the shared
    // "<overflow>" id 0 instead of growing without bound.
    std::uint16_t last = first;
    for (std::size_t i = 0; i < kTraceMaxNames + 16; ++i)
        last = traceNameId("ts-intern-" + std::to_string(i));
    EXPECT_EQ(last, 0);
    EXPECT_EQ(traceNameId("ts-intern-overflowing-more"), 0);
    // Already-interned names keep their ids.
    EXPECT_EQ(traceNameId("ts-intern-first"), first);

    // Overflow records still export, under the "<overflow>" name.
    TraceCategory &cat = traceCategory("ts-intern");
    ASSERT_TRUE(cat.on());
    traceInstantArg(cat, 0, 5);
    const JsonValue doc = exportAndParse();
    EXPECT_EQ(eventsNamed(doc, "<overflow>").size(), 1u);

    // Leave tracing off so the at-exit flush stays a no-op.
    TraceOptions off;
    off.channels.clear();
    traceConfigure(off);
}
