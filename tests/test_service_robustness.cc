/**
 * @file
 * Robustness tests for the campaign service layer: deadline-bounded
 * frame I/O under EINTR storms and stalled peers, a malformed-frame
 * corpus against a live daemon, overload admission control, orphaned
 * campaign reaping, durable-ticket crash recovery, stale-socket
 * reclaim, chaos fault sites (frame-truncate, client-stall), and the
 * client's bounded-backoff reconnect.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/build_info.hh"
#include "common/json.hh"
#include "sim/fault_injector.hh"
#include "sim/service.hh"
#include "sim/ticket_log.hh"

namespace dmdc
{
namespace
{

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

std::int64_t
elapsedMs(Clock::time_point since)
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               Clock::now() - since)
        .count();
}

// ---- shared harness --------------------------------------------------

/** A ServiceDaemon running its serve() loop on a helper thread. */
struct DaemonHarness
{
    explicit DaemonHarness(ServiceOptions o) : daemon(std::move(o)) {}

    ~DaemonHarness() { stop(); }

    bool
    start(std::string &err)
    {
        if (!daemon.start(err))
            return false;
        server = std::thread([this] { daemon.serve(); });
        return true;
    }

    void
    stop()
    {
        daemon.requestStop();
        if (server.joinable())
            server.join();
    }

    ServiceDaemon daemon;
    std::thread server;
};

int
rawConnect(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                  path.c_str());
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

SimOptions
quickRun(const std::string &bench, const std::string &scheme)
{
    SimOptions opt;
    opt.benchmark = bench;
    opt.scheme = scheme;
    opt.warmupInsts = 2000;
    opt.runInsts = 20000;
    return opt;
}

std::string
submitRequest(const std::vector<SimOptions> &runs)
{
    std::string req = "{\"op\":\"submit\",\"runs\":[";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        if (i)
            req += ',';
        req += serviceRunSpecJson(runs[i]);
    }
    req += "]}";
    return req;
}

std::uint64_t
statField(const JsonValue &reply, const char *name)
{
    const JsonValue *f = reply.find(name);
    return f ? std::strtoull(f->text.c_str(), nullptr, 10) : 0;
}

/** Poll the stats op until @p field reaches @p want (or time out). */
bool
waitForStat(ServiceClient &client, const char *field,
            std::uint64_t want, int timeoutMs)
{
    const Clock::time_point start = Clock::now();
    JsonValue reply;
    std::string err;
    while (elapsedMs(start) < timeoutMs) {
        if (client.request("{\"op\":\"stats\"}", reply, err) &&
            statField(reply, field) >= want)
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
}

/** Resets the global fault injector on scope exit so chaos from one
 *  test cannot leak into the next. */
struct FaultGuard
{
    ~FaultGuard() { FaultInjector::global().configure(FaultSpec{}); }
};

// ---- deadline-bounded frame I/O --------------------------------------

class TimedFramePair : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
        // Shrink both buffers so a few kilobytes of backlog already
        // exert backpressure on the writer.
        const int tiny = 4096;
        ::setsockopt(fds_[0], SOL_SOCKET, SO_SNDBUF, &tiny,
                     sizeof(tiny));
        ::setsockopt(fds_[1], SOL_SOCKET, SO_RCVBUF, &tiny,
                     sizeof(tiny));
    }

    void
    TearDown() override
    {
        if (fds_[0] >= 0)
            ::close(fds_[0]);
        if (fds_[1] >= 0)
            ::close(fds_[1]);
    }

    int fds_[2] = {-1, -1};
};

TEST_F(TimedFramePair, WriteTimesOutOnStalledPeer)
{
    // The peer never reads: an 8 MB frame cannot fit any socket
    // buffer, so the deadline must fire instead of blocking forever.
    const std::string big(8u << 20, 'x');
    std::string err;
    const Clock::time_point start = Clock::now();
    EXPECT_FALSE(writeFrameTimed(fds_[0], big, 300, err));
    EXPECT_NE(err.find("timed out"), std::string::npos) << err;
    const std::int64_t ms = elapsedMs(start);
    EXPECT_GE(ms, 250);
    EXPECT_LT(ms, 5000);
}

TEST_F(TimedFramePair, BackpressuredWriteCompletesWithinDeadline)
{
    // A slow-but-alive reader: the writer makes progress in bounded
    // non-blocking rounds and finishes well before the deadline.
    const std::string big(2u << 20, 'y');
    std::thread reader([&] {
        std::string out, err;
        ASSERT_TRUE(readFrame(fds_[1], out, err)) << err;
        EXPECT_EQ(out.size(), big.size());
        EXPECT_EQ(out, big);
    });
    std::string err;
    EXPECT_TRUE(writeFrameTimed(fds_[0], big, 30000, err)) << err;
    reader.join();
}

TEST_F(TimedFramePair, ReadHeaderDeadlineFiresOnSilentPeer)
{
    std::string out, err;
    const Clock::time_point start = Clock::now();
    EXPECT_FALSE(readFrameTimed(fds_[1], out, 200, 200, err));
    EXPECT_NE(err.find("timed out"), std::string::npos) << err;
    EXPECT_GE(elapsedMs(start), 150);
}

TEST_F(TimedFramePair, ReadBodyDeadlineFiresOnTricklingPeer)
{
    // A peer that starts a frame but never finishes it must be cut
    // off by the body deadline even though the header deadline is
    // infinite (mirrors the daemon's per-connection read).
    const unsigned char header[4] = {0, 0, 0, 100};
    ASSERT_EQ(::write(fds_[0], header, 4), 4);
    ASSERT_EQ(::write(fds_[0], "abc", 3), 3);
    std::string out, err;
    const Clock::time_point start = Clock::now();
    EXPECT_FALSE(readFrameTimed(fds_[1], out, 0, 250, err));
    EXPECT_NE(err.find("timed out"), std::string::npos) << err;
    EXPECT_GE(elapsedMs(start), 200);
}

// ---- EINTR torture ---------------------------------------------------

std::atomic<int> g_alarms{0};

extern "C" void
onTortureAlarm(int)
{
    g_alarms.fetch_add(1, std::memory_order_relaxed);
}

/** Rains SIGALRM on the process every 2 ms without SA_RESTART, so
 *  every blocking syscall in scope keeps getting EINTR. */
class AlarmTorture
{
  public:
    AlarmTorture()
    {
        g_alarms.store(0);
        struct sigaction sa{};
        sa.sa_handler = onTortureAlarm;
        sa.sa_flags = 0; // deliberately no SA_RESTART
        sigaction(SIGALRM, &sa, &old_);
        itimerval it{};
        it.it_interval.tv_usec = 2000;
        it.it_value.tv_usec = 2000;
        setitimer(ITIMER_REAL, &it, nullptr);
    }

    ~AlarmTorture()
    {
        itimerval off{};
        setitimer(ITIMER_REAL, &off, nullptr);
        sigaction(SIGALRM, &old_, nullptr);
    }

  private:
    struct sigaction old_{};
};

TEST_F(TimedFramePair, FrameIoSurvivesEintrStorm)
{
    // Large frames across a tiny-buffered socketpair while SIGALRM
    // fires every 2 ms: both the blocking and the deadline-bounded
    // paths must retry EINTR (in poll and in send/recv) and deliver
    // the payload intact.
    AlarmTorture torture;
    const std::string big(8u << 20, 'z');

    std::thread writer([&] {
        std::string err;
        ASSERT_TRUE(writeFrame(fds_[0], big, err)) << err;
        ASSERT_TRUE(writeFrameTimed(fds_[0], big, 60000, err)) << err;
    });
    std::string out, err;
    ASSERT_TRUE(readFrame(fds_[1], out, err)) << err;
    EXPECT_EQ(out, big);
    out.clear();
    ASSERT_TRUE(readFrameTimed(fds_[1], out, 60000, 60000, err))
        << err;
    EXPECT_EQ(out, big);
    writer.join();
    // ~16 MB through 4 KB buffers takes long enough that the storm
    // must have interrupted something; if not, the torture harness
    // itself is broken and the test proves nothing.
    EXPECT_GT(g_alarms.load(), 0);
}

// ---- malformed-frame corpus against a live daemon --------------------

TEST(ServiceRobustness, MalformedFrameCorpusKeepsDaemonServing)
{
    const std::string sock = "svc_corpus.sock";
    ServiceOptions opts;
    opts.socketPath = sock;
    opts.workers = 1;
    opts.campaign.useCache = false;
    opts.ioTimeoutMs = 2000;

    DaemonHarness h(opts);
    std::string err;
    ASSERT_TRUE(h.start(err)) << err;

    // Each corpus item is thrown at its own connection; none may
    // crash or wedge the daemon.
    struct Item
    {
        const char *name;
        std::string bytes;   ///< raw bytes, no framing applied
        bool expectReply;    ///< daemon can still answer in-band
    };
    const std::string nul = std::string("{\"op\":\"sta") +
                            std::string(1, '\0') + "ts\"}";
    auto framed = [](const std::string &payload) {
        std::string raw;
        raw.push_back(
            static_cast<char>((payload.size() >> 24) & 0xff));
        raw.push_back(
            static_cast<char>((payload.size() >> 16) & 0xff));
        raw.push_back(static_cast<char>((payload.size() >> 8) & 0xff));
        raw.push_back(static_cast<char>(payload.size() & 0xff));
        raw += payload;
        return raw;
    };
    const std::vector<Item> corpus = {
        {"truncated length prefix", std::string("\x00\x00", 2), false},
        {"oversize length",
         std::string("\xff\xff\xff\xff", 4), true},
        {"zero-length frame", framed(""), true},
        {"non-JSON payload", framed("hello there general"), true},
        {"embedded NUL", framed(nul), true},
        {"handshake garbage",
         framed("{\"op\":\"hello\",\"protocol\":\"banana\"}"), true},
        {"no op field", framed("{\"ok\":true}"), true},
        {"unknown op", framed("{\"op\":\"frobnicate\"}"), true},
    };

    for (const Item &item : corpus) {
        const int fd = rawConnect(sock);
        ASSERT_GE(fd, 0) << item.name;
        ASSERT_EQ(::write(fd, item.bytes.data(), item.bytes.size()),
                  static_cast<ssize_t>(item.bytes.size()))
            << item.name;
        if (item.expectReply) {
            // The daemon answers in-band (an ok:false protocol error
            // or, for handshake garbage, a normal hello) instead of
            // dying or going silent.
            std::string out, rerr;
            ASSERT_TRUE(
                readFrameTimed(fd, out, 5000, 5000, rerr))
                << item.name << ": " << rerr;
            JsonValue reply;
            EXPECT_TRUE(parseJson(out, reply, rerr))
                << item.name << ": " << rerr;
        }
        ::close(fd);
    }

    // After the whole corpus the daemon still serves healthy clients
    // and accounted the garbage as protocol errors, not crashes.
    ServiceClient client;
    ASSERT_TRUE(client.connect(sock, err)) << err;
    JsonValue reply;
    ASSERT_TRUE(client.request("{\"op\":\"stats\"}", reply, err))
        << err;
    EXPECT_GE(statField(reply, "protocol_errors"), 4u);

    // A connection that sent garbage earlier in its stream can still
    // be used once the frame itself was well-formed JSON-or-not.
    {
        const int fd = rawConnect(sock);
        ASSERT_GE(fd, 0);
        std::string raw = framed("not json");
        ASSERT_EQ(::write(fd, raw.data(), raw.size()),
                  static_cast<ssize_t>(raw.size()));
        std::string out, rerr;
        ASSERT_TRUE(readFrameTimed(fd, out, 5000, 5000, rerr)) << rerr;
        JsonValue bad;
        ASSERT_TRUE(parseJson(out, bad, rerr)) << rerr;
        const JsonValue *code = bad.find("code");
        ASSERT_NE(code, nullptr);
        EXPECT_EQ(code->text, "protocol");

        raw = framed("{\"op\":\"stats\"}");
        ASSERT_EQ(::write(fd, raw.data(), raw.size()),
                  static_cast<ssize_t>(raw.size()));
        ASSERT_TRUE(readFrameTimed(fd, out, 5000, 5000, rerr)) << rerr;
        JsonValue good;
        ASSERT_TRUE(parseJson(out, good, rerr)) << rerr;
        const JsonValue *ok = good.find("ok");
        ASSERT_NE(ok, nullptr);
        EXPECT_EQ(ok->kind, JsonValue::Kind::Bool);
        EXPECT_TRUE(ok->boolean);
        ::close(fd);
    }
}

// ---- overload admission ----------------------------------------------

TEST(ServiceRobustness, OverCapConnectionGetsRetryableRefusal)
{
    const std::string sock = "svc_conncap.sock";
    ServiceOptions opts;
    opts.socketPath = sock;
    opts.workers = 1;
    opts.campaign.useCache = false;
    opts.maxConnections = 1;

    DaemonHarness h(opts);
    std::string err;
    ASSERT_TRUE(h.start(err)) << err;

    ServiceClient holder;
    ASSERT_TRUE(holder.connect(sock, err)) << err;

    // The over-cap connection is told why before being closed: one
    // structured `overloaded` frame, retryable with a backoff hint.
    const int fd = rawConnect(sock);
    ASSERT_GE(fd, 0);
    std::string out, rerr;
    ASSERT_TRUE(readFrameTimed(fd, out, 5000, 5000, rerr)) << rerr;
    ::close(fd);
    JsonValue reply;
    ASSERT_TRUE(parseJson(out, reply, rerr)) << rerr;
    ASSERT_NE(reply.find("code"), nullptr);
    EXPECT_EQ(reply.find("code")->text, "overloaded");
    const JsonValue *retryable = reply.find("retryable");
    ASSERT_NE(retryable, nullptr);
    EXPECT_EQ(retryable->kind, JsonValue::Kind::Bool);
    EXPECT_TRUE(retryable->boolean);
    EXPECT_GT(statField(reply, "retry_after_ms"), 0u);

    // The admitted client is unaffected, and the refusal is counted.
    ASSERT_TRUE(holder.request("{\"op\":\"stats\"}", reply, err))
        << err;
    EXPECT_GE(statField(reply, "overloaded"), 1u);

    // Dropping the held connection frees the slot for a newcomer.
    holder.close();
    ServiceClient next;
    ASSERT_TRUE(next.connectWithRetry(sock, 10, 50, err)) << err;
}

TEST(ServiceRobustness, OverCapSubmitIsRefusedWhole)
{
    const std::string sock = "svc_queuecap.sock";
    ServiceOptions opts;
    opts.socketPath = sock;
    opts.workers = 1;
    opts.campaign.useCache = false;
    opts.maxQueuedTickets = 1;

    DaemonHarness h(opts);
    std::string err;
    ASSERT_TRUE(h.start(err)) << err;

    ServiceClient client;
    ASSERT_TRUE(client.connect(sock, err)) << err;

    // Two fresh runs against a cap of one: the submit must be refused
    // atomically (no half-accepted campaign) with a retryable code.
    JsonValue reply;
    EXPECT_FALSE(client.request(
        submitRequest({quickRun("gzip", "baseline"),
                       quickRun("swim", "baseline")}),
        reply, err));
    EXPECT_EQ(client.lastErrorCode(), "overloaded") << err;
    EXPECT_GT(client.retryAfterMs(), 0);
    EXPECT_TRUE(client.connected());

    ASSERT_TRUE(client.request("{\"op\":\"stats\"}", reply, err))
        << err;
    EXPECT_EQ(statField(reply, "campaigns"), 0u);
    EXPECT_GE(statField(reply, "overloaded"), 1u);

    // A submit that fits the cap proceeds normally on the same
    // connection.
    ASSERT_TRUE(client.request(
        submitRequest({quickRun("gzip", "baseline")}), reply, err))
        << err;
    const JsonValue *cid = reply.find("campaign");
    ASSERT_NE(cid, nullptr);
    ASSERT_TRUE(client.request("{\"op\":\"results\",\"campaign\":\"" +
                                   cid->text + "\",\"wait\":true}",
                               reply, err))
        << err;
    EXPECT_EQ(reply.find("state")->text, "done");
}

// ---- stalled clients -------------------------------------------------

TEST(ServiceRobustness, StalledClientIsDroppedNotWaitedOn)
{
    const std::string sock = "svc_stall.sock";
    ServiceOptions opts;
    opts.socketPath = sock;
    opts.workers = 1;
    opts.campaign.useCache = false;
    opts.ioTimeoutMs = 1000;

    DaemonHarness h(opts);
    std::string err;
    ASSERT_TRUE(h.start(err)) << err;

    // A client that starts a frame and goes silent mid-body. Its
    // connection thread is parked on the body deadline.
    const int stalled = rawConnect(sock);
    ASSERT_GE(stalled, 0);
    const unsigned char header[4] = {0, 0, 0, 100};
    ASSERT_EQ(::write(stalled, header, 4), 4);
    ASSERT_EQ(::write(stalled, "stuck", 5), 5);

    // A healthy client served concurrently must not queue behind the
    // stalled one: its round trip stays far under the 1 s I/O
    // deadline the stalled connection is burning.
    ServiceClient healthy;
    ASSERT_TRUE(healthy.connect(sock, err)) << err;
    JsonValue reply;
    const Clock::time_point start = Clock::now();
    ASSERT_TRUE(healthy.request("{\"op\":\"stats\"}", reply, err))
        << err;
    EXPECT_LT(elapsedMs(start), 500);

    // The stalled connection is eventually dropped and accounted.
    EXPECT_TRUE(waitForStat(healthy, "io_timeouts", 1, 10000));
    char byte;
    EXPECT_EQ(::read(stalled, &byte, 1), 0)
        << "daemon should have closed the stalled connection";
    ::close(stalled);
}

// ---- orphaned campaigns ----------------------------------------------

TEST(ServiceRobustness, OrphanedCampaignIsCancelledAfterGrace)
{
    const std::string sock = "svc_orphan.sock";
    ServiceOptions opts;
    opts.socketPath = sock;
    opts.workers = 1;
    opts.campaign.useCache = false;
    opts.orphanGraceMs = 250;

    DaemonHarness h(opts);
    std::string err;
    ASSERT_TRUE(h.start(err)) << err;

    // A held campaign with one long run keeps the single worker busy
    // so the orphan's tickets stay queued past the grace period.
    ServiceClient holder;
    ASSERT_TRUE(holder.connect(sock, err)) << err;
    SimOptions longRun = quickRun("gzip", "baseline");
    longRun.runInsts = 20000000;
    JsonValue reply;
    ASSERT_TRUE(holder.request(submitRequest({longRun}), reply, err))
        << err;

    // The orphan-to-be submits queued work and vanishes.
    std::string orphanId;
    {
        ServiceClient doomed;
        ASSERT_TRUE(doomed.connect(sock, err)) << err;
        ASSERT_TRUE(doomed.request(
            submitRequest({quickRun("swim", "yla")}), reply, err))
            << err;
        orphanId = reply.find("campaign")->text;
    }

    // The reaper cancels it once the grace period passes, freeing the
    // queued ticket instead of simulating for a client that is gone.
    ASSERT_TRUE(waitForStat(holder, "orphaned", 1, 30000));
    if (holder.request("{\"op\":\"status\",\"campaign\":\"" +
                           orphanId + "\"}",
                       reply, err)) {
        // Still inside the post-cancel grace: the record reports why.
        EXPECT_EQ(reply.find("state")->text, "cancelled");
    } else {
        // Already garbage-collected; the id was never durable.
        EXPECT_NE(err.find("unknown"), std::string::npos) << err;
    }

    // The held campaign is untouched by the reaper.
    ASSERT_TRUE(holder.request("{\"op\":\"stats\"}", reply, err))
        << err;
    EXPECT_EQ(statField(reply, "orphaned"), 1u);
}

// ---- durable tickets -------------------------------------------------

TEST(ServiceRobustness, ReplaysUnfinishedTicketsOnStart)
{
    const std::string sock = "svc_recover.sock";
    const std::string cache = "svc_recover_cache";
    fs::remove_all(cache);

    // Fabricate the log a killed daemon would leave behind: one
    // ticket fully finished, one accepted (and even started) but
    // never completed.
    {
        TicketLog log(cache);
        log.appendSubmit("k-done",
                         serviceRunSpecJson(quickRun("swim", "yla")));
        log.appendFinish("k-done", "ok");
        log.appendSubmit(
            "k-pending",
            serviceRunSpecJson(quickRun("gzip", "baseline")));
        log.appendStart("k-pending");
    }

    ServiceOptions opts;
    opts.socketPath = sock;
    opts.workers = 1;
    opts.campaign.cacheDir = cache;

    {
        DaemonHarness h(opts);
        std::string err;
        ASSERT_TRUE(h.start(err)) << err;

        // The unfinished ticket is re-queued and executes without any
        // client asking for it again.
        ServiceClient client;
        ASSERT_TRUE(client.connect(sock, err)) << err;
        JsonValue reply;
        ASSERT_TRUE(client.request("{\"op\":\"stats\"}", reply, err))
            << err;
        EXPECT_EQ(statField(reply, "recovered"), 1u);
        ASSERT_TRUE(waitForStat(client, "executed", 1, 60000));
        ASSERT_TRUE(client.request("{\"op\":\"shutdown\"}", reply,
                                   err))
            << err;
    }

    // After the clean exit the log holds no pending work: the next
    // daemon starts with nothing to replay.
    TicketLog log(cache);
    const TicketLogReplay rep = log.replay();
    EXPECT_EQ(rep.corrupt, 0u);
    EXPECT_TRUE(rep.pending.empty())
        << rep.pending.size() << " tickets still pending";
    fs::remove_all(cache);
}

// ---- socket lifecycle ------------------------------------------------

TEST(ServiceRobustness, ReclaimsStaleSocketRefusesLiveOrForeign)
{
    const std::string sock = "svc_stale.sock";
    fs::remove(sock);

    // A non-socket at the path is somebody else's file: refuse.
    {
        std::ofstream(sock) << "precious data";
        ServiceOptions opts;
        opts.socketPath = sock;
        opts.workers = 1;
        opts.campaign.useCache = false;
        ServiceDaemon daemon(opts);
        std::string err;
        EXPECT_FALSE(daemon.start(err));
        EXPECT_NE(err.find("not a socket"), std::string::npos) << err;
        EXPECT_TRUE(fs::exists(sock)) << "must not unlink user files";
        fs::remove(sock);
    }

    // A socket whose owner died without unlinking is stale: probe,
    // reclaim, serve.
    {
        const int dead = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(dead, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                      sock.c_str());
        ASSERT_EQ(::bind(dead, reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)),
                  0);
        ::close(dead); // no unlink: simulates SIGKILL

        ServiceOptions opts;
        opts.socketPath = sock;
        opts.workers = 1;
        opts.campaign.useCache = false;
        DaemonHarness h(opts);
        std::string err;
        ASSERT_TRUE(h.start(err)) << err;

        // A *live* daemon's socket must not be hijacked by a second
        // daemon: that would silently split clients across two queues.
        ServiceOptions opts2 = opts;
        ServiceDaemon second(opts2);
        EXPECT_FALSE(second.start(err));
        EXPECT_NE(err.find("live daemon"), std::string::npos) << err;

        ServiceClient client;
        ASSERT_TRUE(client.connect(sock, err)) << err;
    }
    EXPECT_FALSE(fs::exists(sock)) << "socket not unlinked on exit";
}

// ---- chaos sites -----------------------------------------------------

TEST(ServiceChaos, FrameTruncateTearsRepliesDeterministically)
{
    FaultGuard guard;
    const std::string sock = "svc_truncate.sock";
    ServiceOptions opts;
    opts.socketPath = sock;
    opts.workers = 1;
    opts.campaign.useCache = false;

    DaemonHarness h(opts);
    std::string err;
    ASSERT_TRUE(h.start(err)) << err;

    FaultSpec spec;
    spec.frameTruncateP = 1.0;
    spec.seed = 3;
    FaultInjector::global().configure(spec);

    // Every reply is torn mid-frame: the client sees the mid-frame
    // EOF as a transport failure, never a half-parsed reply.
    ServiceClient victim;
    ASSERT_TRUE(victim.connectRaw(sock, err)) << err;
    JsonValue reply;
    EXPECT_FALSE(victim.request("{\"op\":\"stats\"}", reply, err));
    EXPECT_EQ(victim.lastErrorCode(), "io") << err;

    // Chaos off: the daemon itself took no damage.
    FaultInjector::global().configure(FaultSpec{});
    ServiceClient after;
    ASSERT_TRUE(after.connect(sock, err)) << err;
    ASSERT_TRUE(after.request("{\"op\":\"stats\"}", reply, err))
        << err;
}

TEST(ServiceChaos, ClientStallDelaysButCompletes)
{
    FaultGuard guard;
    const std::string sock = "svc_clientstall.sock";
    ServiceOptions opts;
    opts.socketPath = sock;
    opts.workers = 1;
    opts.campaign.useCache = false;

    DaemonHarness h(opts);
    std::string err;
    ASSERT_TRUE(h.start(err)) << err;

    ServiceClient client;
    ASSERT_TRUE(client.connect(sock, err)) << err;

    FaultSpec spec;
    spec.clientStallP = 1.0;
    spec.seed = 5;
    FaultInjector::global().configure(spec);

    // The stall happens between request and reply; the daemon's
    // bounded reply write rides it out and the request still
    // succeeds, just late.
    JsonValue reply;
    const Clock::time_point start = Clock::now();
    ASSERT_TRUE(client.request("{\"op\":\"stats\"}", reply, err))
        << err;
    EXPECT_GE(elapsedMs(start), 200);
}

TEST(ServiceChaos, InjectionDecisionsAreDeterministic)
{
    FaultGuard guard;
    FaultSpec spec;
    spec.frameTruncateP = 0.5;
    spec.clientStallP = 0.5;
    spec.serveCrashP = 0.5;
    spec.seed = 7;
    FaultInjector::global().configure(spec);
    const FaultInjector &inj = FaultInjector::global();

    int truncated = 0;
    for (unsigned i = 0; i < 64; ++i) {
        const std::string id = "req-" + std::to_string(i);
        const bool a = inj.injectFrameTruncate(id, i % 4);
        EXPECT_EQ(a, inj.injectFrameTruncate(id, i % 4))
            << "decision must be replayable";
        EXPECT_EQ(inj.injectClientStall(id),
                  inj.injectClientStall(id));
        EXPECT_EQ(inj.injectServeCrash(id), inj.injectServeCrash(id));
        truncated += a ? 1 : 0;
    }
    // p=0.5 over 64 identities: both outcomes must actually occur.
    EXPECT_GT(truncated, 0);
    EXPECT_LT(truncated, 64);
}

// ---- client reconnect ------------------------------------------------

TEST(ClientRetry, ConnectWithRetryOutlastsSlowDaemonStart)
{
    const std::string sock = "svc_retrywait.sock";
    fs::remove(sock);

    ServiceOptions opts;
    opts.socketPath = sock;
    opts.workers = 1;
    opts.campaign.useCache = false;
    DaemonHarness h(opts);

    // The daemon appears ~300 ms after the client starts dialing —
    // the restart window a crashed daemon's clients live through.
    std::thread late([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        std::string serr;
        ASSERT_TRUE(h.start(serr)) << serr;
    });

    ServiceClient client;
    std::string err;
    EXPECT_TRUE(client.connectWithRetry(sock, 30, 50, err)) << err;
    late.join();
}

/** A daemon look-alike that answers every hello with a foreign
 *  commit, counting connections it serves. */
class MismatchDaemon
{
  public:
    MismatchDaemon()
    {
        const ServiceIdentity self = localServiceIdentity();
        reply_ = "{\"ok\":true,\"server\":\"dmdc_serve\","
                 "\"protocol\":" +
                 std::to_string(kServiceProtocolVersion) +
                 ",\"commit\":\"deadbeef\",\"cache_format\":" +
                 std::to_string(self.cacheFormat) +
                 ",\"policy_revision\":\"" + self.policyRevision +
                 "\",\"pid\":1}";
        path_ = "svc_mismatch_" + std::to_string(::getpid()) + ".sock";
        fs::remove(path_);
        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                      path_.c_str());
        bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
             sizeof(addr));
        listen(listenFd_, 4);
        thread_ = std::thread([this] {
            for (;;) {
                const int fd = ::accept(listenFd_, nullptr, nullptr);
                if (fd < 0 || stop_.load()) {
                    if (fd >= 0)
                        ::close(fd);
                    return;
                }
                ++accepts_;
                std::string err, req;
                if (readFrame(fd, req, err))
                    writeFrame(fd, reply_, err);
                ::close(fd);
            }
        });
    }

    ~MismatchDaemon()
    {
        stop_.store(true);
        const int poke = rawConnect(path_); // unblock accept()
        if (poke >= 0)
            ::close(poke);
        thread_.join();
        ::close(listenFd_);
        fs::remove(path_);
    }

    const std::string &path() const { return path_; }
    int accepts() const { return accepts_.load(); }

  private:
    std::string reply_;
    std::string path_;
    int listenFd_ = -1;
    std::atomic<bool> stop_{false};
    std::atomic<int> accepts_{0};
    std::thread thread_;
};

TEST(ClientRetry, IdentityMismatchFailsFastWithoutRetries)
{
    MismatchDaemon fake;
    ServiceClient client;
    std::string err;
    // Waiting cannot make an incompatible daemon compatible: despite
    // a generous retry budget the client must give up on the first
    // handshake refusal.
    EXPECT_FALSE(client.connectWithRetry(fake.path(), 10, 10, err));
    EXPECT_EQ(client.lastErrorCode(), "mismatch");
    EXPECT_NE(err.find("commit"), std::string::npos) << err;
    EXPECT_EQ(fake.accepts(), 1);
}

} // namespace
} // namespace dmdc
