/**
 * @file
 * Tests of the energy model: per-scheme structural invariants that the
 * paper's arithmetic depends on.
 */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"
#include "sim/simulator.hh"
#include "trace/spec_suite.hh"

namespace dmdc
{
namespace
{

SimResult
runScheme(const char *bench, const std::string &scheme, unsigned config = 2)
{
    SimOptions opt;
    opt.benchmark = bench;
    opt.scheme = scheme;
    opt.configLevel = config;
    opt.warmupInsts = 5000;
    opt.runInsts = 50000;
    return runSimulation(opt);
}

TEST(Energy, BreakdownComponentsNonNegativeAndSum)
{
    const SimResult r = runScheme("gzip", "baseline");
    const EnergyBreakdown &e = r.energy;
    for (double v : {e.fetch, e.bpred, e.rename, e.rob, e.issueQueue,
                     e.regfile, e.fu, e.l1d, e.l2, e.clock, e.lqCam,
                     e.sq, e.yla, e.checking}) {
        EXPECT_GE(v, 0.0);
    }
    const double sum = e.fetch + e.bpred + e.rename + e.rob +
        e.issueQueue + e.regfile + e.fu + e.l1d + e.l2 + e.clock +
        e.lqCam + e.sq + e.yla + e.checking;
    EXPECT_DOUBLE_EQ(sum, e.total());
}

TEST(Energy, BaselineUsesCamDmdcDoesNot)
{
    const SimResult base = runScheme("gzip", "baseline");
    EXPECT_GT(base.energy.lqCam, 0.0);
    EXPECT_EQ(base.energy.checking, 0.0);

    const SimResult dm = runScheme("gzip", "dmdc-global");
    EXPECT_EQ(dm.energy.lqCam, 0.0);
    EXPECT_GT(dm.energy.checking, 0.0);
    EXPECT_GT(dm.energy.yla, 0.0);
}

TEST(Energy, DmdcLqFunctionFarBelowBaseline)
{
    const SimResult base = runScheme("bzip2", "baseline");
    const SimResult dm = runScheme("bzip2", "dmdc-global");
    // The headline claim's direction, with generous slack.
    EXPECT_LT(dm.energy.lqFunction(),
              base.energy.lqFunction() * 0.35);
}

TEST(Energy, YlaOnlyBetweenBaselineAndDmdc)
{
    const SimResult base = runScheme("gap", "baseline");
    const SimResult yla = runScheme("gap", "yla");
    const SimResult dm = runScheme("gap", "dmdc-global");
    EXPECT_LT(yla.energy.lqFunction(), base.energy.lqFunction());
    EXPECT_LT(dm.energy.lqFunction(), yla.energy.lqFunction());
}

TEST(Energy, LqShareInPaperRange)
{
    // The baseline LQ must be a few percent of core energy (the paper
    // reports 3-8% NET savings after removing ~95% of it).
    for (unsigned config : {1u, 2u, 3u}) {
        const SimResult r = runScheme("gzip", "baseline",
                                      config);
        const double share =
            r.energy.lqFunction() / r.energy.total();
        EXPECT_GT(share, 0.015) << "config " << config;
        EXPECT_LT(share, 0.15) << "config " << config;
    }
}

TEST(Energy, AgeTableCostsMoreThanDmdcChecking)
{
    const SimResult age = runScheme("gcc", "age-table");
    const SimResult dm = runScheme("gcc", "dmdc-global");
    // Same entry count, but the age table is written by every load
    // and read by every store, with age-wide entries.
    EXPECT_GT(age.energy.checking, dm.energy.checking);
}

TEST(Energy, NonLqComponentsSchemeInsensitive)
{
    // Fetch/branch-predictor energy should barely depend on the LSQ
    // scheme (identical traces; only replay timing differs).
    const SimResult base = runScheme("mesa", "baseline");
    const SimResult dm = runScheme("mesa", "dmdc-global");
    EXPECT_NEAR(dm.energy.fetch / base.energy.fetch, 1.0, 0.1);
    EXPECT_NEAR(dm.energy.bpred / base.energy.bpred, 1.0, 0.1);
}

} // namespace
} // namespace dmdc
