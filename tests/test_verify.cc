/**
 * @file
 * Ordering-oracle and litmus-harness tests.
 *
 * Three layers:
 *  - unit tests drive the OrderingOracle hooks directly with
 *    fabricated instructions and assert each rule (local program
 *    order, external write serialization, claim cross-checks, retire
 *    monotonicity) fires exactly when it should;
 *  - integration sweeps run the real simulator under --check=oracle
 *    across every registered scheme and randomized invalidation
 *    traffic and assert zero forbidden outcomes (the pipeline is
 *    correct), plus the full litmus corpus;
 *  - a mutation test injects the lsq-corrupt fault (silently dropping
 *    detected violations and commit-time replays) and asserts the
 *    oracle always catches the resulting miscompare — proof the
 *    harness would detect a real checking bug.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.hh"
#include "core/inst.hh"
#include "lsq/policy/registry.hh"
#include "sim/fault_injector.hh"
#include "sim/run_error.hh"
#include "sim/simulator.hh"
#include "verify/coherence_agent.hh"
#include "verify/litmus.hh"
#include "verify/ordering_oracle.hh"

namespace dmdc
{
namespace
{

DynInst
makeMem(SeqNum seq, OpClass cls, Addr addr, unsigned size)
{
    DynInst inst;
    inst.seq = seq;
    inst.op.cls = cls;
    inst.op.effAddr = addr;
    inst.op.memSize = static_cast<std::uint8_t>(size);
    if (cls == OpClass::Load)
        inst.loadIssued = true;
    return inst;
}

OrderingOracle::Params
oracleParams(bool enforce_external = false,
             bool exempt_safe_loads = false)
{
    OrderingOracle::Params p;
    p.lineBytes = 64;
    p.enforceExternal = enforce_external;
    p.exemptSafeLoads = exempt_safe_loads;
    return p;
}

// ---------------------------------------------------------------
// unit: local rule
// ---------------------------------------------------------------

TEST(OrderingOracleUnit, CleanStoreLoadSequencePasses)
{
    OrderingOracle oracle(oracleParams());
    DynInst st = makeMem(10, OpClass::Store, 0x1000, 8);
    DynInst ld = makeMem(20, OpClass::Load, 0x1000, 8);
    oracle.storeCommitted(&st);
    oracle.loadObserved(&ld);   // sees st as every byte's writer
    oracle.loadCommitted(&ld, false);
    EXPECT_FALSE(oracle.failed()) << oracle.firstFailure();
    EXPECT_EQ(oracle.counters().loadsChecked, 1u);
    EXPECT_EQ(oracle.counters().forbiddenLocal, 0u);
}

TEST(OrderingOracleUnit, LocalRuleCatchesSkippedReplay)
{
    OrderingOracle oracle(oracleParams());
    DynInst ld = makeMem(20, OpClass::Load, 0x1000, 4);
    DynInst st = makeMem(10, OpClass::Store, 0x1000, 4);
    oracle.loadObserved(&ld);   // premature: observes pre-store memory
    oracle.storeCommitted(&st); // older store commits first (in order)
    oracle.loadCommitted(&ld, false);
    EXPECT_TRUE(oracle.failed());
    EXPECT_EQ(oracle.counters().forbiddenLocal, 1u);
    EXPECT_NE(oracle.firstFailure().find("forbidden local"),
              std::string::npos);
}

TEST(OrderingOracleUnit, PartialByteOverlapIsCaught)
{
    OrderingOracle oracle(oracleParams());
    DynInst ld = makeMem(20, OpClass::Load, 0x1000, 8);
    DynInst st = makeMem(10, OpClass::Store, 0x1004, 2);
    oracle.loadObserved(&ld);
    oracle.storeCommitted(&st); // clobbers bytes 4-5 of the load
    oracle.loadCommitted(&ld, false);
    EXPECT_TRUE(oracle.failed());
    EXPECT_EQ(oracle.counters().forbiddenLocal, 1u);
}

TEST(OrderingOracleUnit, ForwardedLoadFromYoungestOlderStorePasses)
{
    OrderingOracle oracle(oracleParams());
    DynInst st = makeMem(10, OpClass::Store, 0x2000, 8);
    DynInst ld = makeMem(20, OpClass::Load, 0x2000, 8);
    ld.forwardedFrom = 10;
    oracle.loadObserved(&ld);   // snapshot irrelevant: forwarded
    oracle.storeCommitted(&st);
    oracle.loadCommitted(&ld, false);
    EXPECT_FALSE(oracle.failed()) << oracle.firstFailure();
}

TEST(OrderingOracleUnit, ForwardedLoadFromStaleStoreIsCaught)
{
    OrderingOracle oracle(oracleParams());
    DynInst st1 = makeMem(10, OpClass::Store, 0x2000, 8);
    DynInst st2 = makeMem(15, OpClass::Store, 0x2000, 8);
    DynInst ld = makeMem(20, OpClass::Load, 0x2000, 8);
    ld.forwardedFrom = 10;      // forwarded past the younger st2
    oracle.loadObserved(&ld);
    oracle.storeCommitted(&st1);
    oracle.storeCommitted(&st2);
    oracle.loadCommitted(&ld, false);
    EXPECT_TRUE(oracle.failed());
    EXPECT_EQ(oracle.counters().forbiddenLocal, 1u);
}

TEST(OrderingOracleUnit, CommitWithoutObservationIsCaught)
{
    OrderingOracle oracle(oracleParams());
    DynInst ld = makeMem(20, OpClass::Load, 0x1000, 4);
    oracle.loadCommitted(&ld, false);
    EXPECT_TRUE(oracle.failed());
    EXPECT_NE(oracle.firstFailure().find("without an observed value"),
              std::string::npos);
}

TEST(OrderingOracleUnit, SquashedRecordIsReplacedCleanly)
{
    OrderingOracle oracle(oracleParams());
    DynInst wrong = makeMem(20, OpClass::Load, 0x1000, 4);
    oracle.loadObserved(&wrong);
    oracle.squashFrom(20);
    DynInst st = makeMem(10, OpClass::Store, 0x1000, 4);
    oracle.storeCommitted(&st);
    DynInst redo = makeMem(20, OpClass::Load, 0x1000, 4);
    oracle.loadObserved(&redo); // refetched path observes the store
    oracle.loadCommitted(&redo, false);
    EXPECT_FALSE(oracle.failed()) << oracle.firstFailure();
}

// ---------------------------------------------------------------
// unit: external rule
// ---------------------------------------------------------------

TEST(OrderingOracleUnit, StaleCommitCountedButAllowedOncePerVersion)
{
    OrderingOracle oracle(oracleParams(true, false));
    DynInst a = makeMem(10, OpClass::Load, 0x3000, 4);
    DynInst b = makeMem(12, OpClass::Load, 0x3000, 4);
    oracle.loadObserved(&a);
    oracle.loadObserved(&b);
    oracle.invalidationDelivered(0x3000);
    oracle.loadCommitted(&a, false); // one stale commit: permitted
    EXPECT_FALSE(oracle.failed()) << oracle.firstFailure();
    EXPECT_EQ(oracle.counters().staleCommits, 1u);
    oracle.loadCommitted(&b, false); // second on the same chunk+version
    EXPECT_TRUE(oracle.failed());
    EXPECT_EQ(oracle.counters().staleCommits, 2u);
    EXPECT_EQ(oracle.counters().forbiddenExternal, 1u);
}

TEST(OrderingOracleUnit, FreshDeliveryRearmsTheAllowance)
{
    OrderingOracle oracle(oracleParams(true, false));
    DynInst a = makeMem(10, OpClass::Load, 0x3000, 4);
    oracle.loadObserved(&a);
    oracle.invalidationDelivered(0x3000);
    oracle.loadCommitted(&a, false);
    // A second delivery starts a new version: one more stale commit
    // is permitted on the same chunk.
    DynInst b = makeMem(12, OpClass::Load, 0x3000, 4);
    oracle.loadObserved(&b);
    oracle.invalidationDelivered(0x3000);
    oracle.loadCommitted(&b, false);
    EXPECT_FALSE(oracle.failed()) << oracle.firstFailure();
    EXPECT_EQ(oracle.counters().staleCommits, 2u);
}

TEST(OrderingOracleUnit, DistinctChunksHaveIndependentAllowances)
{
    OrderingOracle oracle(oracleParams(true, false));
    DynInst a = makeMem(10, OpClass::Load, 0x3000, 2);
    DynInst b = makeMem(12, OpClass::Load, 0x3008, 2);
    oracle.loadObserved(&a);
    oracle.loadObserved(&b);
    oracle.invalidationDelivered(0x3000); // same line, both chunks
    oracle.loadCommitted(&a, false);
    oracle.loadCommitted(&b, false);
    EXPECT_FALSE(oracle.failed()) << oracle.firstFailure();
    EXPECT_EQ(oracle.counters().staleCommits, 2u);
}

TEST(OrderingOracleUnit, SafeLoadExemptWhenPolicyExempts)
{
    OrderingOracle oracle(oracleParams(true, true));
    DynInst a = makeMem(10, OpClass::Load, 0x3000, 4);
    DynInst b = makeMem(12, OpClass::Load, 0x3000, 4);
    a.safeLoad = b.safeLoad = true;
    oracle.loadObserved(&a);
    oracle.loadObserved(&b);
    oracle.invalidationDelivered(0x3000);
    oracle.loadCommitted(&a, false);
    oracle.loadCommitted(&b, false); // both exempt: never forbidden
    EXPECT_FALSE(oracle.failed()) << oracle.firstFailure();
    EXPECT_EQ(oracle.counters().staleCommits, 2u);
    EXPECT_EQ(oracle.counters().exemptStale, 2u);
}

TEST(OrderingOracleUnit, NonEnforcingContractOnlyCounts)
{
    OrderingOracle oracle(oracleParams(false, false));
    DynInst a = makeMem(10, OpClass::Load, 0x3000, 4);
    DynInst b = makeMem(12, OpClass::Load, 0x3000, 4);
    oracle.loadObserved(&a);
    oracle.loadObserved(&b);
    oracle.invalidationDelivered(0x3000);
    oracle.loadCommitted(&a, false);
    oracle.loadCommitted(&b, false);
    EXPECT_FALSE(oracle.failed()) << oracle.firstFailure();
    EXPECT_EQ(oracle.counters().staleCommits, 2u);
    EXPECT_EQ(oracle.counters().forbiddenExternal, 0u);
}

// ---------------------------------------------------------------
// unit: claim cross-checks and retire order
// ---------------------------------------------------------------

TEST(OrderingOracleUnit, GroundTruthBackedClaimPasses)
{
    OrderingOracle oracle(oracleParams());
    DynInst ld = makeMem(20, OpClass::Load, 0x1000, 4);
    oracle.groundTruthViolation(20, 10);
    oracle.policyClaimedViolation(&ld);
    EXPECT_FALSE(oracle.failed()) << oracle.firstFailure();
    EXPECT_EQ(oracle.counters().claimsChecked, 1u);
    EXPECT_EQ(oracle.counters().bogusClaims, 0u);
}

TEST(OrderingOracleUnit, BogusCommitTimeClaimIsCaught)
{
    OrderingOracle oracle(oracleParams());
    DynInst ld = makeMem(20, OpClass::Load, 0x1000, 4);
    oracle.policyClaimedViolation(&ld);
    EXPECT_TRUE(oracle.failed());
    EXPECT_EQ(oracle.counters().bogusClaims, 1u);
}

TEST(OrderingOracleUnit, StructuralClaimChecksAgeAndOverlap)
{
    OrderingOracle oracle(oracleParams());
    DynInst ld = makeMem(20, OpClass::Load, 0x1000, 4);
    DynInst older = makeMem(10, OpClass::Store, 0x1002, 2);
    oracle.policyClaimedViolation(&ld, &older);
    EXPECT_FALSE(oracle.failed()) << oracle.firstFailure();

    DynInst younger = makeMem(30, OpClass::Store, 0x1000, 4);
    oracle.policyClaimedViolation(&ld, &younger);
    EXPECT_TRUE(oracle.failed());
    EXPECT_EQ(oracle.counters().bogusClaims, 1u);
}

TEST(OrderingOracleUnit, StructuralClaimRejectsDisjointRanges)
{
    OrderingOracle oracle(oracleParams());
    DynInst ld = makeMem(20, OpClass::Load, 0x1000, 4);
    DynInst st = makeMem(10, OpClass::Store, 0x1004, 4);
    oracle.policyClaimedViolation(&ld, &st);
    EXPECT_TRUE(oracle.failed());
}

TEST(OrderingOracleUnit, OutOfOrderRetireIsCaught)
{
    OrderingOracle oracle(oracleParams());
    DynInst a = makeMem(10, OpClass::Load, 0x1000, 4);
    DynInst b = makeMem(9, OpClass::Load, 0x1000, 4);
    oracle.retired(a);
    EXPECT_FALSE(oracle.failed());
    oracle.retired(b);
    EXPECT_TRUE(oracle.failed());
    EXPECT_NE(oracle.firstFailure().find("out-of-order retire"),
              std::string::npos);
}

// ---------------------------------------------------------------
// coherence agent
// ---------------------------------------------------------------

TEST(CoherenceAgentTest, SpecValidationAcceptsAndRejects)
{
    std::string err;
    EXPECT_TRUE(CoherenceAgent::validateSpec("mixed", &err));
    EXPECT_TRUE(CoherenceAgent::validateSpec("producer-consumer", &err));
    EXPECT_TRUE(
        CoherenceAgent::validateSpec("lock-handoff:period=200", &err));
    EXPECT_FALSE(CoherenceAgent::validateSpec("tso", &err));
    EXPECT_FALSE(CoherenceAgent::validateSpec("mixed:period=0", &err));
    EXPECT_FALSE(CoherenceAgent::validateSpec("mixed:period=x", &err));
    EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------------
// integration: the real pipeline never commits a forbidden outcome
// ---------------------------------------------------------------

SimOptions
checkedOptions(const std::string &bench, const std::string &scheme)
{
    SimOptions opt;
    opt.benchmark = bench;
    opt.scheme = scheme;
    opt.warmupInsts = 10000;
    opt.runInsts = 60000;
    opt.check = CheckMode::Oracle;
    return opt;
}

TEST(OracleIntegration, EverySchemeCleanUnderRandomInvalidations)
{
    for (const std::string &scheme :
         DependencePolicyRegistry::instance().names()) {
        SimOptions opt = checkedOptions("gzip", scheme);
        opt.coherence = true;
        opt.invalidationsPer1kCycles = 20.0;
        Simulator sim(opt);
        SimResult r;
        ASSERT_NO_THROW(r = sim.run()) << "scheme " << scheme;
        EXPECT_GT(r.oracleLoadsChecked, 0u) << "scheme " << scheme;
        EXPECT_EQ(r.oracleForbidden, 0u) << "scheme " << scheme;
        EXPECT_EQ(r.checkMode, "oracle");
    }
}

TEST(OracleIntegration, RandomizedWorkloadSweepIsClean)
{
    // Brute-force reference replays: random (benchmark, scheme, rate,
    // knob) points, each run under the oracle's sequential replay of
    // program and coherence order.
    const std::vector<std::string> schemes =
        DependencePolicyRegistry::instance().names();
    const std::vector<std::string> benches = {"gzip", "vortex", "gcc",
                                              "perlbmk", "mcf"};
    Rng rng(0xdeadbeef);
    for (unsigned i = 0; i < 10; ++i) {
        SimOptions opt = checkedOptions(
            benches[rng.range(benches.size())],
            schemes[rng.range(schemes.size())]);
        opt.coherence = rng.chance(0.5);
        opt.safeLoads = rng.chance(0.5);
        opt.invalidationsPer1kCycles =
            rng.chance(0.5) ? 50.0 : 5.0;
        opt.configLevel = 1 + rng.range(3);
        SCOPED_TRACE(opt.benchmark + "/" + opt.scheme + "/cfg" +
                     std::to_string(opt.configLevel));
        Simulator sim(opt);
        SimResult r;
        ASSERT_NO_THROW(r = sim.run());
        EXPECT_EQ(r.oracleForbidden, 0u);
        EXPECT_GT(r.oracleLoadsChecked, 0u);
    }
}

TEST(OracleIntegration, CheckOffAttachesNothing)
{
    SimOptions opt = checkedOptions("gzip", "dmdc-global");
    opt.check = CheckMode::Off;
    Simulator sim(opt);
    EXPECT_EQ(sim.oracle(), nullptr);
    const SimResult r = sim.run();
    EXPECT_EQ(r.checkMode, "off");
    EXPECT_EQ(r.oracleLoadsChecked, 0u);
    EXPECT_EQ(r.oracleForbidden, 0u);
}

TEST(OracleIntegration, CheckedRunMatchesUncheckedTiming)
{
    // The oracle observes; it must never perturb the simulation.
    SimOptions opt = checkedOptions("vortex", "dmdc-global");
    opt.coherence = true;
    opt.invalidationsPer1kCycles = 10.0;
    const SimResult checked = runSimulation(opt);
    opt.check = CheckMode::Off;
    const SimResult plain = runSimulation(opt);
    EXPECT_EQ(checked.cycles, plain.cycles);
    EXPECT_EQ(checked.ipc, plain.ipc);
    EXPECT_EQ(checked.dmdcReplays, plain.dmdcReplays);
    EXPECT_EQ(checked.trueViolations, plain.trueViolations);
}

// ---------------------------------------------------------------
// litmus corpus
// ---------------------------------------------------------------

TEST(LitmusSuite, CorpusHasNoForbiddenOutcomes)
{
    const std::vector<LitmusOutcome> outcomes = runLitmusSuite();
    ASSERT_FALSE(outcomes.empty());
    for (const LitmusOutcome &o : outcomes) {
        EXPECT_TRUE(o.passed)
            << o.name << ": " << o.message;
        EXPECT_GT(o.deliveries, 0u) << o.name;
        EXPECT_GT(o.loadsChecked, 0u) << o.name;
        EXPECT_EQ(o.forbidden, 0u) << o.name;
    }
}

TEST(LitmusSuite, ScriptedFamiliesAreDeterministic)
{
    LitmusCase c;
    c.name = "det";
    c.benchmark = "gzip";
    c.scheme = "dmdc-global";
    c.agent = "producer-consumer";
    const LitmusOutcome a = runLitmusCase(c);
    const LitmusOutcome b = runLitmusCase(c);
    EXPECT_TRUE(a.passed) << a.message;
    EXPECT_EQ(a.deliveries, b.deliveries);
    EXPECT_EQ(a.staleCommits, b.staleCommits);
    EXPECT_EQ(a.loadsChecked, b.loadsChecked);
}

// ---------------------------------------------------------------
// mutation: the oracle must catch an injected checking bug
// ---------------------------------------------------------------

class LsqCorruptMutation : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        saved_ = FaultInjector::global().spec();
        FaultSpec spec;
        spec.lsqCorruptP = 1.0;
        FaultInjector::global().configure(spec);
    }
    void TearDown() override
    {
        FaultInjector::global().configure(saved_);
    }

  private:
    FaultSpec saved_;
};

void
expectOracleCatches(const std::string &scheme)
{
    SimOptions opt;
    opt.benchmark = "gzip"; // reliably has true violations
    opt.scheme = scheme;
    opt.warmupInsts = 20000;
    opt.runInsts = 120000;
    opt.check = CheckMode::Oracle;
    try {
        runSimulation(opt);
        FAIL() << scheme
               << ": corrupted checking went undetected by the oracle";
    } catch (const RunError &e) {
        EXPECT_EQ(e.category(), RunErrorCategory::SimInvariant)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("ordering oracle"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(LsqCorruptMutation, OracleCatchesCorruptResolveTimeChecking)
{
    // baseline detects violations at store resolve; the corruption
    // swallows the detection, so the victim commits a stale value.
    expectOracleCatches("baseline");
}

TEST_F(LsqCorruptMutation, OracleCatchesCorruptCommitTimeChecking)
{
    // dmdc replays at commit; the corruption swallows the replay and
    // the ghost flag, blinding the pipeline's own panic check.
    expectOracleCatches("dmdc-global");
}

TEST_F(LsqCorruptMutation, UncorruptedRunStillPassesUnderOtherSpec)
{
    // Same spec object, but a scheme without violations in the window
    // must not produce false oracle failures just because the
    // corruption flag is armed.
    SimOptions opt;
    opt.benchmark = "mcf"; // no premature loads in this window
    opt.scheme = "baseline";
    opt.warmupInsts = 10000;
    opt.runInsts = 60000;
    opt.check = CheckMode::Oracle;
    SimResult r;
    ASSERT_NO_THROW(r = runSimulation(opt));
    EXPECT_EQ(r.oracleForbidden, 0u);
}

} // namespace
} // namespace dmdc
