/**
 * @file
 * Unit tests for the core structures: ROB, rename, issue queue, FU
 * pool, register-file activity.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/fu_pool.hh"
#include "core/issue_queue.hh"
#include "core/regfile.hh"
#include "core/rename.hh"
#include "core/rob.hh"

namespace dmdc
{
namespace
{

std::unique_ptr<DynInst>
makeInst(SeqNum seq, OpClass cls = OpClass::IntAlu,
         RegIndex dst = noReg, RegIndex src1 = noReg,
         RegIndex src2 = noReg)
{
    auto inst = std::make_unique<DynInst>();
    inst->seq = seq;
    inst->op.cls = cls;
    inst->op.dst = dst;
    inst->op.src1 = src1;
    inst->op.src2 = src2;
    return inst;
}

DynInst *
poolInst(DynInstPool &pool, SeqNum seq)
{
    DynInst *inst = pool.acquire();
    inst->seq = seq;
    return inst;
}

TEST(Rob, FifoOrderAndCapacity)
{
    DynInstPool pool(4);
    Rob rob(4, pool);
    EXPECT_TRUE(rob.empty());
    for (SeqNum s = 1; s <= 4; ++s)
        rob.allocate(poolInst(pool, s));
    EXPECT_TRUE(rob.full());
    EXPECT_EQ(rob.head()->seq, 1u);
    EXPECT_EQ(rob.tail()->seq, 4u);
    rob.retireHead();
    EXPECT_EQ(rob.head()->seq, 2u);
    EXPECT_FALSE(rob.full());
    EXPECT_EQ(pool.liveCount(), 3u);
}

TEST(Rob, SquashFromRemovesSuffixYoungestFirst)
{
    DynInstPool pool(8);
    Rob rob(8, pool);
    for (SeqNum s = 1; s <= 6; ++s)
        rob.allocate(poolInst(pool, s));
    std::vector<SeqNum> squashed;
    rob.squashFrom(4, [&](DynInst *inst) {
        squashed.push_back(inst->seq);
        EXPECT_EQ(inst->stage, InstStage::Squashed);
    });
    ASSERT_EQ(squashed.size(), 3u);
    EXPECT_EQ(squashed[0], 6u);
    EXPECT_EQ(squashed[1], 5u);
    EXPECT_EQ(squashed[2], 4u);
    EXPECT_EQ(rob.tail()->seq, 3u);
    EXPECT_EQ(pool.liveCount(), 3u);
}

TEST(Rob, OutOfOrderAllocationPanics)
{
    DynInstPool pool(8);
    Rob rob(8, pool);
    rob.allocate(poolInst(pool, 5));
    EXPECT_DEATH(rob.allocate(poolInst(pool, 3)), ".*age order.*");
}

TEST(Rename, BindsProducersAndTracksFreeRegs)
{
    RenameState rs(40, 40);   // 8 free in each file
    EXPECT_EQ(rs.freeIntRegs(), 8u);

    auto p = makeInst(1, OpClass::IntAlu, 5);
    rs.rename(p.get());
    EXPECT_EQ(rs.freeIntRegs(), 7u);

    auto c = makeInst(2, OpClass::IntAlu, 6, 5);
    rs.rename(c.get());
    EXPECT_EQ(c->src1Producer, p.get());
    EXPECT_EQ(c->src1ProducerSeq, 1u);

    // A consumer of an unwritten register has no producer.
    auto d = makeInst(3, OpClass::IntAlu, 7, 12);
    rs.rename(d.get());
    EXPECT_EQ(d->src1Producer, nullptr);
}

TEST(Rename, ReleaseClearsMapAndFreesReg)
{
    RenameState rs(40, 40);
    auto p = makeInst(1, OpClass::IntAlu, 5);
    rs.rename(p.get());
    rs.release(p.get());
    EXPECT_EQ(rs.freeIntRegs(), 8u);
    auto c = makeInst(2, OpClass::IntAlu, 6, 5);
    rs.rename(c.get());
    EXPECT_EQ(c->src1Producer, nullptr);   // value is architectural
}

TEST(Rename, SquashRestoresPreviousMapping)
{
    RenameState rs(40, 40);
    auto p1 = makeInst(1, OpClass::IntAlu, 5);
    auto p2 = makeInst(2, OpClass::IntAlu, 5);
    rs.rename(p1.get());
    rs.rename(p2.get());
    rs.squash(p2.get(), 1);   // oldest active = 1: p1 still in flight
    auto c = makeInst(3, OpClass::IntAlu, 6, 5);
    rs.rename(c.get());
    EXPECT_EQ(c->src1Producer, p1.get());
}

TEST(Rename, SquashDropsCommittedPrevMapping)
{
    RenameState rs(40, 40);
    auto p1 = makeInst(1, OpClass::IntAlu, 5);
    auto p2 = makeInst(2, OpClass::IntAlu, 5);
    rs.rename(p1.get());
    rs.rename(p2.get());
    rs.release(p1.get());      // p1 commits
    rs.squash(p2.get(), 3);    // oldest active seq is now 3
    auto c = makeInst(3, OpClass::IntAlu, 6, 5);
    rs.rename(c.get());
    EXPECT_EQ(c->src1Producer, nullptr);
}

TEST(Rename, FpAndIntFilesIndependent)
{
    RenameState rs(33, 34);
    EXPECT_EQ(rs.freeIntRegs(), 1u);
    EXPECT_EQ(rs.freeFpRegs(), 2u);
    auto p = makeInst(1, OpClass::IntAlu, 3);
    EXPECT_TRUE(rs.canRename(p->op));
    rs.rename(p.get());
    auto q = makeInst(2, OpClass::IntAlu, 4);
    EXPECT_FALSE(rs.canRename(q->op));
    auto f = makeInst(3, OpClass::FpAdd, firstFpReg + 2);
    EXPECT_TRUE(rs.canRename(f->op));
}

TEST(IssueQueue, InsertRemoveSquash)
{
    IssueQueue iq(4);
    auto a = makeInst(1);
    auto b = makeInst(2);
    auto c = makeInst(3);
    iq.insert(a.get());
    iq.insert(b.get());
    iq.insert(c.get());
    EXPECT_TRUE(a->inIssueQueue);
    iq.remove(b.get());
    EXPECT_FALSE(b->inIssueQueue);
    EXPECT_EQ(iq.size(), 2u);
    iq.squashFrom(3);
    EXPECT_EQ(iq.size(), 1u);
    EXPECT_FALSE(c->inIssueQueue);
    EXPECT_EQ(iq.entries().front(), a.get());
}

TEST(FuPool, PerCycleBandwidth)
{
    FuPoolParams p;
    p.intAlu = 2;
    FuPool pool(p);
    pool.tick(1);
    unsigned lat = 0;
    EXPECT_TRUE(pool.tryIssue(OpClass::IntAlu, lat));
    EXPECT_EQ(lat, 1u);
    EXPECT_TRUE(pool.tryIssue(OpClass::Branch, lat));
    EXPECT_FALSE(pool.tryIssue(OpClass::IntAlu, lat));
    pool.tick(2);
    EXPECT_TRUE(pool.tryIssue(OpClass::IntAlu, lat));
}

TEST(FuPool, DividerIsUnpipelined)
{
    FuPoolParams p;
    FuPool pool(p);
    pool.tick(1);
    unsigned lat = 0;
    EXPECT_TRUE(pool.tryIssue(OpClass::IntDiv, lat));
    EXPECT_EQ(lat, p.intDivLat);
    pool.tick(2);
    EXPECT_FALSE(pool.tryIssue(OpClass::IntDiv, lat));
    pool.tick(1 + p.intDivLat);
    EXPECT_TRUE(pool.tryIssue(OpClass::IntDiv, lat));
}

TEST(FuPool, ClassLatencies)
{
    FuPoolParams p;
    FuPool pool(p);
    pool.tick(1);
    unsigned lat = 0;
    EXPECT_TRUE(pool.tryIssue(OpClass::IntMult, lat));
    EXPECT_EQ(lat, p.intMultLat);
    EXPECT_TRUE(pool.tryIssue(OpClass::FpAdd, lat));
    EXPECT_EQ(lat, p.fpAddLat);
    EXPECT_TRUE(pool.tryIssue(OpClass::FpMult, lat));
    EXPECT_EQ(lat, p.fpMultLat);
    EXPECT_TRUE(pool.tryIssue(OpClass::Load, lat));
    EXPECT_EQ(lat, p.intAluLat);
}

TEST(RegFileActivity, CountsByFile)
{
    RegFileActivity rf;
    auto inst = makeInst(1, OpClass::IntAlu, 3, 4, firstFpReg + 1);
    rf.noteIssueReads(inst.get());
    rf.noteWriteback(inst.get());
    EXPECT_EQ(rf.intReads(), 1u);
    EXPECT_EQ(rf.fpReads(), 1u);
    EXPECT_EQ(rf.intWrites(), 1u);
    EXPECT_EQ(rf.fpWrites(), 0u);
}

} // namespace
} // namespace dmdc
