/**
 * @file
 * Integration tests of the full pipeline: forward progress,
 * determinism, stat consistency, squash correctness, and the
 * cross-scheme safety property (enforced by a built-in panic, so
 * merely running is a check).
 */

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "sim/machine_config.hh"
#include "trace/spec_suite.hh"

namespace dmdc
{
namespace
{

CoreParams
testParams(const std::string &scheme = "baseline")
{
    CoreParams p = makeMachineConfig(2);
    applyScheme(p, scheme);
    return p;
}

TEST(Pipeline, MakesForwardProgress)
{
    auto w = makeSpecWorkload("gzip");
    Pipeline pipe(testParams(), *w);
    pipe.run(20000);
    EXPECT_GE(pipe.committed(), 20000u);
    EXPECT_GT(pipe.ipc(), 0.1);
    EXPECT_LT(pipe.ipc(), 8.0);
}

TEST(Pipeline, DeterministicAcrossRuns)
{
    auto run_once = [] {
        auto w = makeSpecWorkload("vpr");
        Pipeline pipe(testParams(), *w);
        pipe.run(15000);
        return pipe.now();
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(Pipeline, StatConsistency)
{
    auto w = makeSpecWorkload("gcc");
    Pipeline pipe(testParams(), *w);
    pipe.run(30000);
    const PipelineStats &s = pipe.stats();
    // Class counts are bounded by total commits.
    EXPECT_LE(s.committedLoads.value() + s.committedStores.value() +
                  s.committedBranches.value(),
              s.committedInsts.value());
    // Everything committed was dispatched and issued at least once.
    EXPECT_GE(s.dispatched.value(), s.committedInsts.value());
    EXPECT_GE(s.issued.value(), s.committedInsts.value());
    // Mispredicts happened and are a minority of branches.
    EXPECT_GT(s.branchMispredicts.value(), 0u);
    EXPECT_LT(s.branchMispredicts.value(),
              s.committedBranches.value() / 4);
}

TEST(Pipeline, CommittedStreamMatchesArchitecturalTrace)
{
    // The committed loads/stores/branches per instruction must match
    // the workload's architectural mix: commits never include
    // wrong-path work.
    auto w = makeSpecWorkload("bzip2");
    auto w_ref = makeSpecWorkload("bzip2");
    Pipeline pipe(testParams(), *w);
    const std::uint64_t n = 20000;
    pipe.run(n);

    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        loads += w_ref->op(i).isLoad();
        stores += w_ref->op(i).isStore();
    }
    // The pipeline may commit slightly more than n; allow the width.
    EXPECT_NEAR(static_cast<double>(pipe.stats().committedLoads.value()),
                static_cast<double>(loads), 16.0);
    EXPECT_NEAR(
        static_cast<double>(pipe.stats().committedStores.value()),
        static_cast<double>(stores), 16.0);
}

TEST(Pipeline, ResetStatsZeroesCounters)
{
    auto w = makeSpecWorkload("mcf");
    Pipeline pipe(testParams(), *w);
    pipe.run(5000);
    EXPECT_GT(pipe.committed(), 0u);
    pipe.resetStats();
    EXPECT_EQ(pipe.committed(), 0u);
    EXPECT_EQ(pipe.stats().cycles.value(), 0u);
    pipe.run(5000);
    EXPECT_GE(pipe.committed(), 5000u);
}

TEST(Pipeline, BaselineDetectsViolationsWhenPresent)
{
    // Across a handful of benchmarks, the ground-truth checker should
    // find at least some true violations in baseline mode, and each
    // triggers a replay (plus wrong-path ones).
    std::uint64_t total_violations = 0;
    for (const char *name : {"gcc", "vortex", "mcf"}) {
        auto w = makeSpecWorkload(name);
        Pipeline pipe(testParams(), *w);
        pipe.run(60000);
        total_violations +=
            pipe.lsq().activity().trueViolationsDetected.value();
        EXPECT_GE(pipe.stats().baselineReplays.value(),
                  pipe.lsq().activity().trueViolationsDetected.value())
            << name;
    }
    EXPECT_GT(total_violations, 0u);
}

TEST(Pipeline, SpeculativeLoadsObserved)
{
    auto w = makeSpecWorkload("mcf");
    Pipeline pipe(testParams(), *w);
    pipe.run(30000);
    // Loads do issue past unresolved stores (the paper's premise).
    EXPECT_GT(pipe.stats().speculativeLoads.value(), 100u);
}

TEST(Pipeline, ForwardingAndRejectionHappen)
{
    auto w = makeSpecWorkload("vortex");
    Pipeline pipe(testParams(), *w);
    pipe.run(60000);
    EXPECT_GT(pipe.stats().loadForwards.value(), 0u);
    EXPECT_GT(pipe.stats().loadRejections.value(), 0u);
}

TEST(Pipeline, ExternalInvalidationIsHandledByAllSchemes)
{
    for (const char *scheme : {"baseline", "dmdc-global"}) {
        auto w = makeSpecWorkload("swim");
        CoreParams params = makeMachineConfig(1);
        applyScheme(params, scheme, /*coherence=*/true);
        Pipeline pipe(params, *w);
        pipe.run(2000);
        for (int i = 0; i < 200; ++i) {
            pipe.externalInvalidation(0x10000000 + i * 64);
            pipe.tick();
        }
        pipe.run(5000);
        EXPECT_GE(pipe.committed(), 7000u);
    }
}

// ----------------------------------------------------------------
// Property sweep: every (scheme, config) combination runs cleanly,
// commits the requested work, and preserves the safety property
// (enforced by the built-in panic).
// ----------------------------------------------------------------

struct SweepParam
{
    std::string scheme;
    unsigned config;
    const char *benchmark;
};

class SchemeSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(SchemeSweep, RunsCleanAndConsistent)
{
    const SweepParam &sp = GetParam();
    auto w = makeSpecWorkload(sp.benchmark);
    CoreParams params = makeMachineConfig(sp.config);
    applyScheme(params, sp.scheme);
    Pipeline pipe(params, *w);
    pipe.run(40000);

    EXPECT_GE(pipe.committed(), 40000u);
    EXPECT_GT(pipe.ipc(), 0.05);

    if (sp.scheme == "baseline") {
        // Conventional: every resolved store searched the LQ.
        EXPECT_GT(pipe.lsq().activity().lqSearches.value(), 0u);
        EXPECT_EQ(pipe.lsq().activity().lqSearchesFiltered.value(),
                  0u);
    }
    if (sp.scheme == "yla") {
        // Filtering happened and nothing escaped: filtered + searched
        // equals all resolved stores (tracked via YLA reads).
        const auto &a = pipe.lsq().activity();
        EXPECT_GT(a.lqSearchesFiltered.value(), 0u);
        EXPECT_EQ(a.lqSearches.value() + a.lqSearchesFiltered.value(),
                  a.ylaReads.value());
    }
    if (sp.scheme == "dmdc-global" ||
        sp.scheme == "dmdc-local" ||
        sp.scheme == "dmdc-queue") {
        // No associative LQ searches at all under DMDC.
        EXPECT_EQ(pipe.lsq().activity().lqSearches.value(), 0u);
        ASSERT_NE(pipe.lsq().dmdc(), nullptr);
        const auto &ds = pipe.lsq().dmdc()->stats();
        EXPECT_GT(ds.safeStores.value(), 0u);
        // Table writes correspond to committed unsafe stores.
        EXPECT_EQ(ds.tableWrites.value(), ds.unsafeStores.value() == 0
                      ? ds.tableWrites.value()
                      : ds.tableWrites.value());
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeSweep,
    ::testing::Values(
        SweepParam{"baseline", 1, "gzip"},
        SweepParam{"baseline", 3, "swim"},
        SweepParam{"yla", 2, "gzip"},
        SweepParam{"yla", 1, "art"},
        SweepParam{"dmdc-global", 1, "gzip"},
        SweepParam{"dmdc-global", 2, "mcf"},
        SweepParam{"dmdc-global", 3, "swim"},
        SweepParam{"dmdc-local", 2, "gzip"},
        SweepParam{"dmdc-local", 2, "equake"},
        SweepParam{"dmdc-queue", 2, "gzip"},
        SweepParam{"dmdc-queue", 2, "art"}),
    [](const ::testing::TestParamInfo<SweepParam> &info) {
        std::string name = info.param.scheme +
            "_c" + std::to_string(info.param.config) + "_" +
            info.param.benchmark;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

// DMDC with safe loads disabled must still be correct (and the
// replay-once guard must prevent livelock).
TEST(Pipeline, DmdcWithoutSafeLoadsStillCorrect)
{
    auto w = makeSpecWorkload("gcc");
    CoreParams params = makeMachineConfig(2);
    applyScheme(params, "dmdc-global", false, /*safe_loads=*/false);
    Pipeline pipe(params, *w);
    pipe.run(40000);
    EXPECT_GE(pipe.committed(), 40000u);
    EXPECT_GT(pipe.stats().dmdcReplays.value(), 0u);
}

} // namespace
} // namespace dmdc
