/**
 * @file
 * Unit tests for the synthetic workload layer: address streams, branch
 * behaviour models, workload determinism and mix calibration.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/address_stream.hh"
#include "trace/branch_model.hh"
#include "trace/spec_suite.hh"
#include "trace/synthetic.hh"

namespace dmdc
{
namespace
{

TEST(StridedStream, WalksAndWraps)
{
    StridedStream s(0x1000, 64, 16);
    EXPECT_EQ(s.next(), 0x1000u);
    EXPECT_EQ(s.next(), 0x1010u);
    EXPECT_EQ(s.next(), 0x1020u);
    EXPECT_EQ(s.next(), 0x1030u);
    EXPECT_EQ(s.next(), 0x1000u);   // wrapped
}

TEST(StridedStream, RestartStaysInRegion)
{
    Rng rng(3);
    StridedStream s(0x2000, 256, 8);
    for (int i = 0; i < 100; ++i) {
        s.restart(rng);
        const Addr a = s.next();
        EXPECT_GE(a, 0x2000u);
        EXPECT_LT(a, 0x2000u + 256);
        EXPECT_EQ(a % 8, 0u);
    }
}

TEST(PointerChaseStream, StaysInRegionAndIsDeterministic)
{
    PointerChaseStream a(0x10000, 4096, 77);
    PointerChaseStream b(0x10000, 4096, 77);
    std::set<Addr> seen;
    for (int i = 0; i < 500; ++i) {
        const Addr x = a.next();
        EXPECT_EQ(x, b.next());
        EXPECT_GE(x, 0x10000u);
        EXPECT_LT(x, 0x10000u + 4096);
        EXPECT_EQ(x % 8, 0u);
        seen.insert(x);
    }
    // A real walk visits many distinct nodes.
    EXPECT_GT(seen.size(), 100u);
}

TEST(HotRegion, BoundsRespected)
{
    Rng rng(5);
    HotRegion h(0x7fff0000, 4096);
    for (int i = 0; i < 1000; ++i) {
        const Addr a = h.next(rng);
        EXPECT_GE(a, 0x7fff0000u);
        EXPECT_LT(a, 0x7fff0000u + 4096);
    }
}

TEST(RecentStoreBuffer, SampleReturnsPushedAddresses)
{
    Rng rng(9);
    RecentStoreBuffer buf(8);
    EXPECT_TRUE(buf.empty());
    unsigned size = 0;
    EXPECT_EQ(buf.sample(rng, size), invalidAddr);

    std::set<Addr> pushed;
    for (Addr a = 0x100; a < 0x100 + 16 * 8; a += 8) {
        buf.push(a, 4);
        pushed.insert(a);
    }
    for (int i = 0; i < 200; ++i) {
        const Addr a = buf.sample(rng, size);
        EXPECT_TRUE(pushed.count(a));
        EXPECT_EQ(size, 4u);
    }
}

TEST(BranchModel, LoopBackPattern)
{
    StaticBranchState b(BranchBehavior::LoopBack, 1, 4, 0.9);
    // taken 3 times, then not taken, repeating.
    for (int rep = 0; rep < 3; ++rep) {
        EXPECT_TRUE(b.nextOutcome());
        EXPECT_TRUE(b.nextOutcome());
        EXPECT_TRUE(b.nextOutcome());
        EXPECT_FALSE(b.nextOutcome());
    }
}

TEST(BranchModel, BiasedRates)
{
    StaticBranchState taken(BranchBehavior::BiasedTaken, 2, 4, 0.9);
    StaticBranchState not_taken(BranchBehavior::BiasedNotTaken, 3, 4,
                                0.9);
    int t1 = 0;
    int t2 = 0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) {
        t1 += taken.nextOutcome();
        t2 += not_taken.nextOutcome();
    }
    EXPECT_NEAR(t1 / double(n), 0.9, 0.02);
    EXPECT_NEAR(t2 / double(n), 0.1, 0.02);
}

TEST(BranchModel, PatternedIsPeriodic)
{
    StaticBranchState b(BranchBehavior::Patterned, 4, 6, 0.9);
    std::vector<bool> first;
    for (int i = 0; i < 6; ++i)
        first.push_back(b.nextOutcome());
    for (int rep = 0; rep < 5; ++rep) {
        for (int i = 0; i < 6; ++i)
            EXPECT_EQ(b.nextOutcome(), first[i]);
    }
}

TEST(SpecSuite, Has26NamedBenchmarks)
{
    EXPECT_EQ(specIntNames().size(), 12u);
    EXPECT_EQ(specFpNames().size(), 14u);
    EXPECT_EQ(specAllNames().size(), 26u);
    for (const auto &n : specIntNames())
        EXPECT_FALSE(specIsFp(n));
    for (const auto &n : specFpNames())
        EXPECT_TRUE(specIsFp(n));
}

TEST(SpecSuite, DistinctSeeds)
{
    std::set<std::uint64_t> seeds;
    for (const auto &n : specAllNames())
        seeds.insert(specParams(n).seed);
    EXPECT_EQ(seeds.size(), specAllNames().size());
}

TEST(SyntheticWorkload, TraceIsDeterministicAndReReadable)
{
    auto w1 = makeSpecWorkload("gzip");
    auto w2 = makeSpecWorkload("gzip");
    for (std::uint64_t i = 0; i < 5000; ++i) {
        const MicroOp &a = w1->op(i);
        const MicroOp &b = w2->op(i);
        EXPECT_EQ(a.pc, b.pc);
        EXPECT_EQ(static_cast<int>(a.cls), static_cast<int>(b.cls));
        EXPECT_EQ(a.effAddr, b.effAddr);
        EXPECT_EQ(a.nextPc, b.nextPc);
    }
    // Re-reading an index inside the retained window is stable.
    const Addr pc_100 = w1->op(100).pc;
    (void)w1->op(4000);
    EXPECT_EQ(w1->op(100).pc, pc_100);
}

TEST(SyntheticWorkload, ControlFlowIsConsistent)
{
    auto w = makeSpecWorkload("gcc");
    for (std::uint64_t i = 0; i + 1 < 20000; ++i) {
        const MicroOp op = w->op(i);
        const MicroOp &next = w->op(i + 1);
        EXPECT_EQ(next.pc, op.nextPc)
            << "discontinuity at index " << i;
        if (!op.isBranch())
            EXPECT_EQ(op.nextPc, op.pc + 4);
        if (op.isBranch() && op.taken)
            EXPECT_EQ(op.nextPc, op.targetPc);
    }
}

TEST(SyntheticWorkload, MemoryOpsAreAlignedAndSized)
{
    auto w = makeSpecWorkload("swim");
    for (std::uint64_t i = 0; i < 30000; ++i) {
        const MicroOp op = w->op(i);
        if (!op.isMem())
            continue;
        EXPECT_TRUE(op.memSize == 1 || op.memSize == 2 ||
                    op.memSize == 4 || op.memSize == 8);
        EXPECT_EQ(op.effAddr % op.memSize, 0u)
            << "unaligned access at index " << i;
        EXPECT_NE(op.effAddr, invalidAddr);
        if (op.isStore())
            EXPECT_NE(op.src3, noReg);
    }
}

TEST(SyntheticWorkload, MixRoughlyMatchesParams)
{
    for (const char *name : {"gzip", "swim"}) {
        auto w = makeSpecWorkload(name);
        const WorkloadParams p = specParams(name);
        std::map<OpClass, unsigned> counts;
        constexpr unsigned n = 60000;
        for (std::uint64_t i = 0; i < n; ++i)
            ++counts[w->op(i).cls];
        const double load_frac = counts[OpClass::Load] / double(n);
        const double store_frac = counts[OpClass::Store] / double(n);
        // Branch slots dilute body fractions; allow generous slack.
        EXPECT_NEAR(load_frac, p.loadFrac * 0.88, 0.06) << name;
        EXPECT_NEAR(store_frac, p.storeFrac * 0.88, 0.04) << name;
        EXPECT_GT(counts[OpClass::Branch], n / 25) << name;
    }
}

TEST(SyntheticWorkload, FpBenchmarkUsesFpUnits)
{
    auto w = makeSpecWorkload("mgrid");
    unsigned fp_ops = 0;
    for (std::uint64_t i = 0; i < 30000; ++i)
        fp_ops += w->op(i).isFp();
    EXPECT_GT(fp_ops, 3000u);

    auto wi = makeSpecWorkload("bzip2");
    fp_ops = 0;
    for (std::uint64_t i = 0; i < 30000; ++i)
        fp_ops += wi->op(i).isFp();
    EXPECT_LT(fp_ops, 3000u);
}

TEST(SyntheticWorkload, WrongPathIsDeterministicPerPcAndSalt)
{
    auto w = makeSpecWorkload("vpr");
    const Addr pc = w->codeBase() + 4 * 17;
    const MicroOp a = w->wrongPathOp(pc, 5);
    const MicroOp b = w->wrongPathOp(pc, 5);
    EXPECT_EQ(a.effAddr, b.effAddr);
    EXPECT_EQ(a.dst, b.dst);
    const MicroOp c = w->wrongPathOp(pc, 6);
    // Same static slot: same class.
    EXPECT_EQ(static_cast<int>(a.cls), static_cast<int>(c.cls));
}

TEST(SyntheticWorkload, DiscardBeforePreventsOldReads)
{
    auto w = makeSpecWorkload("gap");
    (void)w->op(1000);
    w->discardBefore(500);
    EXPECT_EQ(w->op(500).pc, w->op(500).pc);   // still readable
    EXPECT_DEATH((void)w->op(100), ".*");
}

TEST(SyntheticWorkload, UnknownBenchmarkIsFatal)
{
    EXPECT_EXIT((void)makeSpecWorkload("quake3"),
                ::testing::ExitedWithCode(1), ".*unknown.*");
}

} // namespace
} // namespace dmdc
