/**
 * @file
 * Tests of the campaign layer: suite running, comparison helpers and
 * formatting utilities the benches rely on.
 */

#include <gtest/gtest.h>

#include "sim/campaign.hh"
#include "sim/campaign_runner.hh"
#include "trace/spec_suite.hh"

namespace dmdc
{
namespace
{

// Keep these tests hermetic: never serve suite runs from a cache
// left in the working directory by an earlier build.
const bool disableCache = [] {
    CampaignConfig cfg;
    cfg.useCache = false;
    CampaignRunner::configureGlobal(cfg);
    return true;
}();

TEST(Campaign, RunSuiteProducesOneResultPerBenchmark)
{
    SimOptions opt;
    opt.warmupInsts = 2000;
    opt.runInsts = 15000;
    opt.scheme = "baseline";
    const std::vector<std::string> names{"gzip", "swim"};
    const auto results = runSuite(opt, names, /*verbose=*/false);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].benchmark, "gzip");
    EXPECT_FALSE(results[0].fp);
    EXPECT_EQ(results[1].benchmark, "swim");
    EXPECT_TRUE(results[1].fp);
}

TEST(Campaign, SlowdownRangeIsZeroAgainstItself)
{
    SimOptions opt;
    opt.warmupInsts = 2000;
    opt.runInsts = 15000;
    const auto results = runSuite(opt, {"gzip", "crafty"}, false);
    const Range r = slowdownRange(results, results, false);
    EXPECT_EQ(r.n, 2u);
    EXPECT_DOUBLE_EQ(r.mean, 0.0);
    EXPECT_DOUBLE_EQ(r.min, 0.0);
    EXPECT_DOUBLE_EQ(r.max, 0.0);
}

TEST(Campaign, SavingRangeComputesRelativeDifference)
{
    std::vector<SimResult> base(1);
    base[0].benchmark = "x";
    base[0].fp = false;
    base[0].energy.lqCam = 100.0;
    std::vector<SimResult> test = base;
    test[0].energy.lqCam = 25.0;
    const Range r = savingRange(base, test, false,
        [](const SimResult &s) { return s.energy.lqCam; });
    EXPECT_DOUBLE_EQ(r.mean, 75.0);
}

TEST(Campaign, FindResultFatalOnMissing)
{
    std::vector<SimResult> results(1);
    results[0].benchmark = "gzip";
    EXPECT_EQ(&findResult(results, "gzip"), &results[0]);
    EXPECT_EXIT((void)findResult(results, "nope"),
                ::testing::ExitedWithCode(1), ".*");
}

TEST(Campaign, FormattingHelpers)
{
    EXPECT_EQ(fmt(12.345, 1), "12.3");
    EXPECT_EQ(fmt(12.345, 0), "12");
    EXPECT_EQ(pct(0.5), "50.0%");
    const Range r{1.0, 2.0, 3.0, 3};
    EXPECT_EQ(rangeStr(r), "2.0 [1.0, 3.0]");
}

TEST(Campaign, RangeOverFiltersByGroup)
{
    std::vector<SimResult> results(3);
    results[0].fp = false;
    results[0].ipc = 1.0;
    results[1].fp = true;
    results[1].ipc = 2.0;
    results[2].fp = false;
    results[2].ipc = 3.0;
    const Range int_r = rangeOver(results, false,
        [](const SimResult &r) { return r.ipc; });
    EXPECT_EQ(int_r.n, 2u);
    EXPECT_DOUBLE_EQ(int_r.mean, 2.0);
    const Range fp_r = rangeOver(results, true,
        [](const SimResult &r) { return r.ipc; });
    EXPECT_EQ(fp_r.n, 1u);
    EXPECT_DOUBLE_EQ(fp_r.mean, 2.0);
}

TEST(Campaign, PerMInstNormalization)
{
    SimResult r;
    r.instructions = 2000000;
    EXPECT_DOUBLE_EQ(r.perMInst(4.0), 2.0);
    SimResult empty;
    EXPECT_DOUBLE_EQ(empty.perMInst(4.0), 0.0);
}

} // namespace
} // namespace dmdc
