/**
 * @file
 * Unit tests for the cache and memory-hierarchy models.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/hierarchy.hh"

namespace dmdc
{
namespace
{

CacheParams
smallCache()
{
    CacheParams p;
    p.name = "test";
    p.sizeBytes = 1024;   // 16 lines
    p.assoc = 2;          // 8 sets
    p.lineBytes = 64;
    p.latency = 2;
    return p;
}

TEST(Cache, MissThenHitSameLine)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1030, false));   // same 64B line
    EXPECT_FALSE(c.access(0x1040, false));  // next line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruReplacementWithinSet)
{
    Cache c(smallCache());
    // Three addresses in the same set (set stride = 8 sets * 64B).
    const Addr a = 0x0;
    const Addr b = a + 8 * 64;
    const Addr d = b + 8 * 64;
    c.access(a, false);
    c.access(b, false);
    c.access(a, false);        // a most recent
    c.access(d, false);        // evicts b
    EXPECT_TRUE(c.probe(a));
    EXPECT_TRUE(c.probe(d));
    EXPECT_FALSE(c.probe(b));
}

TEST(Cache, DirtyEvictionCountsWriteback)
{
    Cache c(smallCache());
    const Addr a = 0x0;
    const Addr b = a + 8 * 64;
    const Addr d = b + 8 * 64;
    c.access(a, true);         // dirty
    c.access(b, false);
    c.access(d, false);        // evicts a (LRU), dirty
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c(smallCache());
    c.access(0x2000, false);
    EXPECT_TRUE(c.probe(0x2000));
    EXPECT_TRUE(c.invalidate(0x2000));
    EXPECT_FALSE(c.probe(0x2000));
    EXPECT_FALSE(c.invalidate(0x2000));   // already gone
}

TEST(Cache, ProbeHasNoSideEffects)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.probe(0x3000));
    EXPECT_FALSE(c.probe(0x3000));
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_EQ(c.misses(), 0u);
}

TEST(Hierarchy, LatenciesCompose)
{
    HierarchyParams p;   // table-1 defaults: 2 / 15 / 120
    MemoryHierarchy mem(p);
    // Cold: L1 miss + L2 miss + memory.
    EXPECT_EQ(mem.accessData(0x5000, false), 2u + 15u + 120u);
    // Now in both caches.
    EXPECT_EQ(mem.accessData(0x5000, false), 2u);
    // Evicted from nothing: another line, same behaviour for ifetch.
    EXPECT_EQ(mem.accessInst(0x400000), 2u + 15u + 120u);
    EXPECT_EQ(mem.accessInst(0x400000), 2u);
}

TEST(Hierarchy, L2HitAfterL1Invalidate)
{
    HierarchyParams p;
    MemoryHierarchy mem(p);
    (void)mem.accessData(0x6000, false);
    // Drop only the L1 copy via a direct L1-sized conflict sweep is
    // complex; use invalidateLine (drops L1 + L2) then refill L2 only.
    mem.invalidateLine(0x6000);
    EXPECT_EQ(mem.accessData(0x6000, false), 2u + 15u + 120u);
    EXPECT_EQ(mem.accessData(0x6000, false), 2u);
}

TEST(Hierarchy, InvalidationDropsBothLevels)
{
    HierarchyParams p;
    MemoryHierarchy mem(p);
    (void)mem.accessData(0x7000, true);
    mem.invalidateLine(0x7000);
    EXPECT_FALSE(mem.l1d().probe(0x7000));
    EXPECT_FALSE(mem.l2().probe(0x7000));
}

TEST(Hierarchy, Table1GeometryDefaults)
{
    HierarchyParams p;
    EXPECT_EQ(p.l1i.sizeBytes, 64u * 1024);
    EXPECT_EQ(p.l1i.assoc, 1u);
    EXPECT_EQ(p.l1d.sizeBytes, 32u * 1024);
    EXPECT_EQ(p.l1d.assoc, 2u);
    EXPECT_EQ(p.l2.sizeBytes, 1024u * 1024);
    EXPECT_EQ(p.l2.assoc, 8u);
    EXPECT_EQ(p.l2.lineBytes, 128u);
    EXPECT_EQ(p.memLatency, 120u);
}

} // namespace
} // namespace dmdc
