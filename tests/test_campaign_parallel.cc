/**
 * @file
 * Tests of the parallel campaign engine: determinism of parallel
 * execution versus serial, memoized run-cache behavior (in-process
 * and on-disk), and the cache-bypass rules for observer/tweak runs.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <vector>

#include "lsq/lsq_unit.hh"
#include "sim/campaign.hh"
#include "sim/campaign_runner.hh"
#include "sim/thread_pool.hh"

namespace dmdc
{
namespace
{

namespace fs = std::filesystem;

/** Fresh on-disk cache directory per test, removed on teardown. */
class CampaignParallel : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        cacheDir_ = fs::path(::testing::TempDir()) /
            ("dmdc_cache_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
        fs::remove_all(cacheDir_);
    }

    void TearDown() override { fs::remove_all(cacheDir_); }

    CampaignConfig
    config(unsigned jobs, bool use_cache) const
    {
        CampaignConfig cfg;
        cfg.jobs = jobs;
        cfg.useCache = use_cache;
        cfg.cacheDir = cacheDir_.string();
        return cfg;
    }

    fs::path cacheDir_;
};

/** The 6-benchmark x 3-scheme matrix the determinism tests run. */
std::vector<SimOptions>
matrix()
{
    const std::vector<std::string> benches{"gzip", "mcf",    "crafty",
                                           "swim", "ammp", "art"};
    const std::vector<std::string> schemes{"baseline",
                                      "dmdc-global",
                                      "age-table"};
    std::vector<SimOptions> runs;
    for (const std::string &s : schemes) {
        for (const std::string &b : benches) {
            SimOptions opt;
            opt.benchmark = b;
            opt.scheme = s;
            opt.warmupInsts = 2000;
            opt.runInsts = 12000;
            runs.push_back(opt);
        }
    }
    return runs;
}

/** Every field the benches consume must match bit-for-bit. */
void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.fp, b.fp);
    EXPECT_EQ(a.configLevel, b.configLevel);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.lqSearches, b.lqSearches);
    EXPECT_EQ(a.lqSearchesFiltered, b.lqSearchesFiltered);
    EXPECT_EQ(a.sqSearches, b.sqSearches);
    EXPECT_EQ(a.sqSearchesFiltered, b.sqSearchesFiltered);
    EXPECT_EQ(a.ageTableReplays, b.ageTableReplays);
    EXPECT_EQ(a.loadsOlderThanAllStores, b.loadsOlderThanAllStores);
    EXPECT_EQ(a.committedLoads, b.committedLoads);
    EXPECT_EQ(a.committedStores, b.committedStores);
    EXPECT_EQ(a.safeStoreFrac, b.safeStoreFrac);
    EXPECT_EQ(a.safeLoadFrac, b.safeLoadFrac);
    EXPECT_EQ(a.checkingCycleFrac, b.checkingCycleFrac);
    EXPECT_EQ(a.windowInstrs, b.windowInstrs);
    EXPECT_EQ(a.windowLoads, b.windowLoads);
    EXPECT_EQ(a.windowSafeLoads, b.windowSafeLoads);
    EXPECT_EQ(a.windowSingleStoreFrac, b.windowSingleStoreFrac);
    EXPECT_EQ(a.windowMarkedEntries, b.windowMarkedEntries);
    EXPECT_EQ(a.dmdcReplays, b.dmdcReplays);
    EXPECT_EQ(a.baselineReplays, b.baselineReplays);
    EXPECT_EQ(a.trueViolations, b.trueViolations);
    EXPECT_EQ(a.trueReplays, b.trueReplays);
    EXPECT_EQ(a.falseAddrX, b.falseAddrX);
    EXPECT_EQ(a.falseAddrY, b.falseAddrY);
    EXPECT_EQ(a.falseHashBefore, b.falseHashBefore);
    EXPECT_EQ(a.falseHashX, b.falseHashX);
    EXPECT_EQ(a.falseHashY, b.falseHashY);
    EXPECT_EQ(a.falseOverflow, b.falseOverflow);
    EXPECT_EQ(a.energy.fetch, b.energy.fetch);
    EXPECT_EQ(a.energy.bpred, b.energy.bpred);
    EXPECT_EQ(a.energy.rename, b.energy.rename);
    EXPECT_EQ(a.energy.rob, b.energy.rob);
    EXPECT_EQ(a.energy.issueQueue, b.energy.issueQueue);
    EXPECT_EQ(a.energy.regfile, b.energy.regfile);
    EXPECT_EQ(a.energy.fu, b.energy.fu);
    EXPECT_EQ(a.energy.l1d, b.energy.l1d);
    EXPECT_EQ(a.energy.l2, b.energy.l2);
    EXPECT_EQ(a.energy.clock, b.energy.clock);
    EXPECT_EQ(a.energy.lqCam, b.energy.lqCam);
    EXPECT_EQ(a.energy.sq, b.energy.sq);
    EXPECT_EQ(a.energy.yla, b.energy.yla);
    EXPECT_EQ(a.energy.checking, b.energy.checking);
}

TEST_F(CampaignParallel, ParallelMatchesSerialElementwise)
{
    const std::vector<SimOptions> runs = matrix();

    CampaignRunner serial(config(/*jobs=*/1, /*use_cache=*/false));
    CampaignRunner parallel(
        config(ThreadPool::defaultConcurrency(), false));

    const auto serial_res = serial.runChecked(runs).results;
    const auto parallel_res = parallel.runChecked(runs).results;

    ASSERT_EQ(serial_res.size(), runs.size());
    ASSERT_EQ(parallel_res.size(), runs.size());
    EXPECT_EQ(serial.lastStats().simulated, runs.size());
    EXPECT_EQ(parallel.lastStats().simulated, runs.size());
    for (std::size_t i = 0; i < runs.size(); ++i) {
        SCOPED_TRACE(runs[i].benchmark + "/" +
                     runs[i].scheme.c_str());
        // Order must be preserved exactly.
        EXPECT_EQ(parallel_res[i].benchmark, runs[i].benchmark);
        expectIdentical(serial_res[i], parallel_res[i]);
    }
}

TEST_F(CampaignParallel, CacheHitsSkipSimulationAndMatch)
{
    const std::vector<SimOptions> runs = matrix();

    CampaignRunner runner(config(0, /*use_cache=*/true));
    const auto cold = runner.runChecked(runs).results;
    EXPECT_EQ(runner.lastStats().simulated, runs.size());
    EXPECT_EQ(runner.totalSimulated(), runs.size());

    // Second pass: served from the in-process map, zero simulations.
    const auto warm = runner.runChecked(runs).results;
    EXPECT_EQ(runner.lastStats().simulated, 0u);
    EXPECT_EQ(runner.lastStats().memoryHits, runs.size());
    EXPECT_EQ(runner.totalSimulated(), runs.size());
    for (std::size_t i = 0; i < runs.size(); ++i)
        expectIdentical(cold[i], warm[i]);

    // Fresh runner, same cache dir: served from disk (JSON
    // round-trip), still zero simulations and bit-identical.
    CampaignRunner fresh(config(0, true));
    const auto disk = fresh.runChecked(runs).results;
    EXPECT_EQ(fresh.lastStats().simulated, 0u);
    EXPECT_EQ(fresh.lastStats().diskHits, runs.size());
    for (std::size_t i = 0; i < runs.size(); ++i) {
        SCOPED_TRACE(runs[i].benchmark + "/" +
                     runs[i].scheme.c_str());
        expectIdentical(cold[i], disk[i]);
    }
}

TEST_F(CampaignParallel, DuplicateRunsSimulateOnce)
{
    SimOptions opt;
    opt.warmupInsts = 2000;
    opt.runInsts = 12000;
    std::vector<SimOptions> runs{opt, opt, opt};

    CampaignRunner runner(config(0, true));
    const auto res = runner.runChecked(runs).results;
    EXPECT_EQ(runner.lastStats().simulated, 1u);
    expectIdentical(res[0], res[1]);
    expectIdentical(res[0], res[2]);
}

TEST_F(CampaignParallel, TweakRunsBypassCache)
{
    SimOptions opt;
    opt.warmupInsts = 2000;
    opt.runInsts = 12000;
    opt.tweak = [](CoreParams &) {};

    EXPECT_FALSE(cacheableOptions(opt));

    CampaignRunner runner(config(0, true));
    runner.runOne(opt);
    EXPECT_EQ(runner.lastStats().simulated, 1u);
    EXPECT_EQ(runner.lastStats().uncacheable, 1u);
    runner.runOne(opt);
    // Re-simulated, never served from cache.
    EXPECT_EQ(runner.lastStats().simulated, 1u);
    EXPECT_EQ(runner.totalSimulated(), 2u);
    EXPECT_TRUE(!fs::exists(cacheDir_) || fs::is_empty(cacheDir_));
}

TEST_F(CampaignParallel, ObserverRunsBypassCache)
{
    YlaObserver obs("yla-8", 8, quadWordBytes);
    SimOptions opt;
    opt.warmupInsts = 2000;
    opt.runInsts = 12000;
    opt.observers.push_back(&obs);

    EXPECT_FALSE(cacheableOptions(opt));

    CampaignRunner runner(config(0, true));
    runner.runOne(opt);
    const std::uint64_t stores_first = obs.storesObserved();
    EXPECT_GT(stores_first, 0u);
    EXPECT_EQ(runner.lastStats().uncacheable, 1u);

    runner.runOne(opt);
    EXPECT_EQ(runner.lastStats().simulated, 1u);
    EXPECT_EQ(runner.totalSimulated(), 2u);
    // The observer really saw the second simulation too.
    EXPECT_EQ(obs.storesObserved(), 2 * stores_first);
}

TEST_F(CampaignParallel, CacheKeyCoversKnobs)
{
    SimOptions a;
    SimOptions b = a;
    EXPECT_EQ(cacheKey(a), cacheKey(b));

    b.numYlaQw = 4;
    EXPECT_NE(cacheKey(a), cacheKey(b));
    b = a;
    b.scheme = "dmdc-local";
    EXPECT_NE(cacheKey(a), cacheKey(b));
    b = a;
    b.runInsts += 1;
    EXPECT_NE(cacheKey(a), cacheKey(b));
    b = a;
    b.invalidationsPer1kCycles = 0.5;
    EXPECT_NE(cacheKey(a), cacheKey(b));
    b = a;
    b.safeLoads = !b.safeLoads;
    EXPECT_NE(cacheKey(a), cacheKey(b));
}

TEST_F(CampaignParallel, RunSuiteOrderingMatchesNames)
{
    // runSuite() goes through the global runner; make sure its
    // configuration hooks work and ordering follows the name list.
    CampaignConfig cfg = config(0, false);
    CampaignRunner::configureGlobal(cfg);

    SimOptions base;
    base.warmupInsts = 2000;
    base.runInsts = 12000;
    const std::vector<std::string> names{"swim", "gzip", "art"};
    const auto results = runSuite(base, names, /*verbose=*/false);
    ASSERT_EQ(results.size(), names.size());
    for (std::size_t i = 0; i < names.size(); ++i)
        EXPECT_EQ(results[i].benchmark, names[i]);

    // Restore defaults for any test running after us in-process.
    CampaignRunner::configureGlobal(CampaignConfig{});
}

} // namespace
} // namespace dmdc
