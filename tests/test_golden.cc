/**
 * @file
 * Golden-value regression test: every pre-existing scheme must produce
 * bit-identical SimResults across refactors of the dispatch machinery.
 *
 * The expected values below were captured from the seed implementation
 * (per-scheme switch dispatch inside LsqUnit) before the policy layer
 * existed; the policy-based implementation must reproduce them
 * exactly. Integer counters are compared exactly; IPC and energy are
 * doubles and compared to 1e-9 relative tolerance only to stay robust
 * against compiler FMA-contraction differences, not against behaviour
 * changes.
 *
 * If a deliberate behaviour change invalidates these values, recapture
 * them AND bump the changed scheme's SchemeInfo::revision so stale
 * run-cache entries self-invalidate.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"

namespace dmdc
{
namespace
{

struct GoldenRun
{
    const char *benchmark;
    const char *scheme;
    std::uint64_t instructions;
    std::uint64_t cycles;
    std::uint64_t lqSearches;
    std::uint64_t lqSearchesFiltered;
    std::uint64_t sqSearches;
    std::uint64_t dmdcReplays;
    std::uint64_t baselineReplays;
    std::uint64_t trueViolations;
    std::uint64_t ageTableReplays;
    double ipc;
    double energyLqCam;
    double energyYla;
    double energyChecking;
};

// Captured at the seed (commit 9eeac7a), config 2, warmup 10000,
// run 60000.
const GoldenRun kGolden[] = {
    {"gzip", "baseline", 60000ull, 90253ull, 5909ull, 0ull, 15842ull,
     0ull, 5ull, 5ull, 0ull,
     0.66479784605497882, 3059977.3081568582, 5776.192, 0},
    {"gzip", "yla", 60000ull, 90253ull, 359ull, 5550ull, 15842ull,
     0ull, 5ull, 5ull, 0ull,
     0.66479784605497882, 1759329.3830294567, 30933.311999999998, 0},
    {"gzip", "dmdc-global", 60000ull, 90171ull, 0ull, 0ull, 15949ull,
     4ull, 0ull, 4ull, 0ull,
     0.66540240210267154, 0, 31099.583999999999, 219495.44342289196},
    {"gzip", "dmdc-local", 60000ull, 90171ull, 0ull, 0ull, 15949ull,
     4ull, 0ull, 4ull, 0ull,
     0.66540240210267154, 0, 31099.583999999999, 218964.99606289197},
    {"gzip", "dmdc-queue", 60000ull, 90171ull, 0ull, 0ull, 15949ull,
     4ull, 0ull, 4ull, 0ull,
     0.66540240210267154, 0, 31099.583999999999, 178362.60470289196},
    {"gzip", "age-table", 60000ull, 90150ull, 0ull, 0ull, 15894ull,
     0ull, 0ull, 4ull, 11ull,
     0.66555740432612309, 0, 5769.6000000000004, 1963886.6863999995},
    {"swim", "baseline", 60000ull, 82151ull, 4945ull, 0ull, 27239ull,
     0ull, 11ull, 11ull, 0ull,
     0.73036238146827182, 2867914.2464785054, 5257.6639999999998, 0},
    {"swim", "yla", 60000ull, 82151ull, 228ull, 4717ull, 27239ull,
     0ull, 11ull, 11ull, 0ull,
     0.73036238146827182, 1762480.6856089644, 32182.464, 0},
    {"swim", "dmdc-global", 60000ull, 82132ull, 0ull, 0ull, 27401ull,
     14ull, 0ull, 11ull, 0ull,
     0.73053133979447715, 0, 32533.248, 239829.63808602825},
    {"swim", "dmdc-local", 60000ull, 82181ull, 0ull, 0ull, 27413ull,
     13ull, 0ull, 11ull, 0ull,
     0.73009576422774125, 0, 32500.543999999998, 238559.08153802337},
    {"swim", "dmdc-queue", 60000ull, 82155ull, 0ull, 0ull, 27355ull,
     11ull, 0ull, 11ull, 0ull,
     0.73032682125251047, 0, 32408, 207618.91960763338},
    {"swim", "age-table", 60000ull, 82075ull, 0ull, 0ull, 27292ull,
     0ull, 0ull, 10ull, 13ull,
     0.73103868413036854, 0, 5252.8000000000002, 2114217.8479999993},
    // bloom-yla captured later (pre-kernel-refactor tree) so every
    // registered scheme is pinned; same config/warmup/run as above.
    {"gzip", "bloom-yla", 60000ull, 90253ull, 36ull, 5873ull, 15842ull,
     0ull, 5ull, 5ull, 0ull,
     0.66479784605497882, 1683634.0172968169, 30933.311999999998,
     583551.09279999998},
    {"swim", "bloom-yla", 60000ull, 82151ull, 43ull, 4902ull, 27239ull,
     0ull, 11ull, 11ull, 0ull,
     0.73036238146827182, 1719125.7547713844, 32182.464,
     597412.10528000002},
};

class GoldenValues : public ::testing::TestWithParam<GoldenRun>
{
};

TEST_P(GoldenValues, MatchesSeedCapture)
{
    const GoldenRun &g = GetParam();
    SimOptions opt;
    opt.benchmark = g.benchmark;
    opt.scheme = g.scheme;
    opt.configLevel = 2;
    opt.warmupInsts = 10000;
    opt.runInsts = 60000;
    const SimResult r = runSimulation(opt);

    EXPECT_EQ(r.scheme, g.scheme);
    EXPECT_EQ(r.instructions, g.instructions);
    EXPECT_EQ(r.cycles, g.cycles);
    EXPECT_EQ(r.lqSearches, g.lqSearches);
    EXPECT_EQ(r.lqSearchesFiltered, g.lqSearchesFiltered);
    EXPECT_EQ(r.sqSearches, g.sqSearches);
    EXPECT_EQ(r.dmdcReplays, g.dmdcReplays);
    EXPECT_EQ(r.baselineReplays, g.baselineReplays);
    EXPECT_EQ(r.trueViolations, g.trueViolations);
    EXPECT_EQ(r.ageTableReplays, g.ageTableReplays);

    auto near = [](double expected, double actual) {
        const double tol = 1e-9 * std::max(1.0, std::abs(expected));
        EXPECT_NEAR(actual, expected, tol);
    };
    near(g.ipc, r.ipc);
    near(g.energyLqCam, r.energy.lqCam);
    near(g.energyYla, r.energy.yla);
    near(g.energyChecking, r.energy.checking);
}

INSTANTIATE_TEST_SUITE_P(
    SeedCapture, GoldenValues, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<GoldenRun> &info) {
        std::string name = std::string(info.param.benchmark) + "_" +
            info.param.scheme;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace dmdc
