/**
 * @file
 * Tests of the supervised shard launcher: heartbeat file round-trips,
 * the clock-agnostic staleness monitor, worker-fault spec parsing, and
 * end-to-end supervision through the real dmdc_sim / campaign_launch
 * binaries — crash -> restart -> resume convergence to the serial
 * journal, SIGTERM draining to a resumable manifest, and retry
 * exhaustion.
 *
 * The integration tests receive the binary locations from CMake via
 * the DMDC_SIM_BIN / CAMPAIGN_LAUNCH_BIN compile definitions.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "sim/cli_options.hh"
#include "sim/fault_injector.hh"
#include "sim/heartbeat.hh"
#include "sim/supervisor.hh"

namespace dmdc
{
namespace
{

namespace fs = std::filesystem;

std::string
slurp(const fs::path &path)
{
    std::ifstream is(path);
    std::stringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

/** Run @p cmd through the shell; returns the exit code (or -1). */
int
shell(const std::string &cmd)
{
    const int rc = std::system(cmd.c_str());
    if (rc == -1)
        return -1;
    if (WIFEXITED(rc))
        return WEXITSTATUS(rc);
    return 128 + (WIFSIGNALED(rc) ? WTERMSIG(rc) : 0);
}

// ---- heartbeat records -----------------------------------------------

TEST(HeartbeatRecordIO, PhaseNamesRoundTrip)
{
    for (HeartbeatPhase phase :
         {HeartbeatPhase::Starting, HeartbeatPhase::Running,
          HeartbeatPhase::Interrupted, HeartbeatPhase::Done}) {
        HeartbeatPhase parsed;
        ASSERT_TRUE(parseHeartbeatPhase(heartbeatPhaseName(phase),
                                        parsed));
        EXPECT_EQ(parsed, phase);
    }
    HeartbeatPhase parsed;
    EXPECT_FALSE(parseHeartbeatPhase("sleeping", parsed));
    EXPECT_FALSE(parseHeartbeatPhase("", parsed));
}

TEST(HeartbeatRecordIO, WriteReadRoundTrip)
{
    const fs::path dir =
        fs::temp_directory_path() / "dmdc_hb_roundtrip";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string path = (dir / "heartbeat.json").string();

    HeartbeatRecord rec;
    rec.counter = 41;
    rec.completed = 7;
    rec.runsTotal = 12;
    rec.pid = 4242;
    rec.phase = HeartbeatPhase::Running;
    ASSERT_TRUE(writeHeartbeat(path, rec));

    HeartbeatRecord out;
    std::string err;
    ASSERT_TRUE(readHeartbeat(path, out, err)) << err;
    EXPECT_EQ(out.counter, 41u);
    EXPECT_EQ(out.completed, 7u);
    EXPECT_EQ(out.runsTotal, 12u);
    EXPECT_EQ(out.pid, 4242);
    EXPECT_EQ(out.phase, HeartbeatPhase::Running);

    // No stale temp file may survive the atomic publish.
    std::size_t files = 0;
    for (const auto &de : fs::directory_iterator(dir)) {
        (void)de;
        ++files;
    }
    EXPECT_EQ(files, 1u);
    fs::remove_all(dir);
}

TEST(HeartbeatRecordIO, MissingAndMalformedFilesFail)
{
    const fs::path dir =
        fs::temp_directory_path() / "dmdc_hb_malformed";
    fs::remove_all(dir);
    fs::create_directories(dir);

    HeartbeatRecord out;
    std::string err;
    EXPECT_FALSE(
        readHeartbeat((dir / "absent.json").string(), out, err));
    EXPECT_FALSE(err.empty());

    const struct
    {
        const char *name;
        const char *body;
    } bad[] = {
        {"empty.json", ""},
        {"truncated.json", "{\"version\":1,\"pid\":12"},
        {"not_json.json", "counter 12"},
        {"bad_phase.json",
         "{\"version\":1,\"pid\":1,\"counter\":2,\"completed\":0,"
         "\"runs_total\":4,\"phase\":\"zombie\"}"},
        {"bad_version.json",
         "{\"version\":99,\"pid\":1,\"counter\":2,\"completed\":0,"
         "\"runs_total\":4,\"phase\":\"running\"}"},
    };
    for (const auto &b : bad) {
        const fs::path p = dir / b.name;
        std::ofstream(p) << b.body;
        err.clear();
        EXPECT_FALSE(readHeartbeat(p.string(), out, err)) << b.name;
        EXPECT_FALSE(err.empty()) << b.name;
    }
    fs::remove_all(dir);
}

// ---- staleness monitor (fake clock) ----------------------------------

TEST(HeartbeatMonitorTest, DetectsStalenessWithFakeClock)
{
    HeartbeatMonitor mon(1000.0);
    mon.track(0, 0.0);

    // Fresh tracking: silent but not yet beyond the deadline.
    EXPECT_DOUBLE_EQ(mon.silentMs(0, 400.0), 400.0);
    EXPECT_FALSE(mon.hung(0, 999.0));
    EXPECT_FALSE(mon.hung(0, 1000.0));
    EXPECT_TRUE(mon.hung(0, 1000.1));

    // An advancing counter restarts the window.
    mon.observe(0, 1, 500.0);
    EXPECT_FALSE(mon.hung(0, 1400.0));
    EXPECT_TRUE(mon.hung(0, 1600.0));

    // The same counter re-observed is NOT progress.
    mon.observe(0, 1, 1400.0);
    EXPECT_TRUE(mon.hung(0, 1600.0));
}

TEST(HeartbeatMonitorTest, CounterResetCountsAsProgress)
{
    HeartbeatMonitor mon(1000.0);
    mon.track(0, 0.0);
    mon.observe(0, 57, 100.0);
    // A restarted worker publishes a smaller counter; that is a live
    // process and must reset the staleness window.
    mon.observe(0, 1, 900.0);
    EXPECT_FALSE(mon.hung(0, 1800.0));
    EXPECT_TRUE(mon.hung(0, 1901.0));
}

TEST(HeartbeatMonitorTest, TrackRearmsAndForgetStopsTracking)
{
    HeartbeatMonitor mon(500.0);
    mon.track(3, 0.0);
    EXPECT_TRUE(mon.hung(3, 2000.0));
    // Re-track at respawn: the predecessor's silence is forgiven.
    mon.track(3, 2000.0);
    EXPECT_FALSE(mon.hung(3, 2400.0));

    mon.forget(3);
    EXPECT_FALSE(mon.hung(3, 99999.0));
    EXPECT_DOUBLE_EQ(mon.silentMs(3, 99999.0), 0.0);
}

TEST(HeartbeatMonitorTest, UntrackedOrZeroDeadlineNeverHung)
{
    HeartbeatMonitor strict(100.0);
    EXPECT_FALSE(strict.hung(9, 1e9));

    HeartbeatMonitor disabled(0.0);
    disabled.track(0, 0.0);
    EXPECT_FALSE(disabled.hung(0, 1e9));
}

// ---- worker fault sites ----------------------------------------------

TEST(WorkerFaultSpec, ParsesWorkerSites)
{
    const FaultSpec spec =
        parseFaultSpec("worker-crash:p=0.25,worker-hang:p=0.5,seed=9");
    EXPECT_DOUBLE_EQ(spec.workerCrashP, 0.25);
    EXPECT_DOUBLE_EQ(spec.workerHangP, 0.5);
    EXPECT_EQ(spec.seed, 9u);
    EXPECT_TRUE(spec.any());

    FaultInjector inj;
    inj.configure(spec);
    // p=1 always fires, p=0 never does, and decisions are pure in
    // (site, key, attempt).
    FaultSpec certain;
    certain.workerCrashP = 1.0;
    inj.configure(certain);
    EXPECT_TRUE(inj.injectWorkerCrash("run-a", 0));
    EXPECT_FALSE(inj.injectWorkerHang("run-a", 0));
    inj.configure({});
    EXPECT_FALSE(inj.injectWorkerCrash("run-a", 0));
}

// ---- end-to-end supervision ------------------------------------------

/**
 * Drives the real binaries. Each test gets a scratch directory; the
 * campaign is small (4 runs: 2 benches x 2 schemes) so even the chaos
 * variants finish in seconds.
 */
class SupervisedLaunch : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        scratch_ = fs::temp_directory_path() /
            ("dmdc_sup_" + std::string(::testing::UnitTest::GetInstance()
                                           ->current_test_info()
                                           ->name()));
        fs::remove_all(scratch_);
        fs::create_directories(scratch_);
    }

    void
    TearDown() override
    {
        fs::remove_all(scratch_);
    }

    std::string
    campaignArgs() const
    {
        return "--bench=gzip,swim --scheme=baseline,yla "
               "--insts=20000 --warmup=2000";
    }

    /** Serial --json-deterministic reference journal. */
    std::string
    serialJournal()
    {
        const fs::path out = scratch_ / "serial.json";
        const std::string cmd = std::string(DMDC_SIM_BIN) + " " +
            campaignArgs() +
            " --cache-dir=" + (scratch_ / "serial_cache").string() +
            " --json-deterministic --json=" + out.string() +
            " > /dev/null 2>&1";
        EXPECT_EQ(shell(cmd), 0);
        return slurp(out);
    }

    /** campaign_launch command line (shared cache + launch dir per
     *  fixture, so sequential invocations resume each other). */
    std::string
    launchCmd(const std::string &extra) const
    {
        return std::string(CAMPAIGN_LAUNCH_BIN) +
            " --procs=2 --heartbeat-interval=50" +
            " --launch-dir=" + (scratch_ / "launch").string() +
            " --out=" + (scratch_ / "merged.json").string() + " " +
            extra + " " + campaignArgs() +
            " --cache-dir=" + (scratch_ / "chaos_cache").string() +
            " --jobs=2";
    }

    fs::path scratch_;
};

TEST_F(SupervisedLaunch, CrashedWorkersRestartAndConverge)
{
    const std::string serial = serialJournal();
    ASSERT_FALSE(serial.empty());

    // p=1: every worker SIGKILLs itself after each freshly simulated
    // run (which has already been cached), so each 2-run shard needs
    // two restarts before a final all-cached pass completes it.
    const int rc = shell("DMDC_FAULT='worker-crash:p=1,seed=3' " +
                         launchCmd("--shard-retries=8") +
                         " > /dev/null 2>&1");
    EXPECT_EQ(rc, 0);
    EXPECT_EQ(slurp(scratch_ / "merged.json"), serial);
}

TEST_F(SupervisedLaunch, RetryExhaustionFailsWithManifestIntact)
{
    const int rc = shell("DMDC_FAULT='worker-crash:p=1,seed=3' " +
                         launchCmd("--shard-retries=0") +
                         " > /dev/null 2>&1");
    EXPECT_EQ(rc, kExitFailure);
    EXPECT_FALSE(fs::exists(scratch_ / "merged.json"));

    // Both shards checkpointed before dying: their manifests survive
    // for a later --resume.
    for (const char *name :
         {"state.shard0of2.json", "state.shard1of2.json"}) {
        EXPECT_TRUE(fs::exists(scratch_ / "launch" / name)) << name;
    }

    // And a resumed chaos-free launch converges from them.
    const std::string serial = serialJournal();
    EXPECT_EQ(shell(launchCmd("--shard-retries=0 --resume") +
                    " > /dev/null 2>&1"),
              0);
    EXPECT_EQ(slurp(scratch_ / "merged.json"), serial);
}

TEST_F(SupervisedLaunch, SigtermDrainsToResumableManifest)
{
    const std::string serial = serialJournal();
    ASSERT_FALSE(serial.empty());

    // Launch under worker-hang-free conditions, interrupt it early.
    std::vector<std::string> argStrings;
    {
        std::istringstream is(launchCmd("--shard-retries=2"));
        for (std::string tok; is >> tok;)
            argStrings.push_back(tok);
    }
    std::vector<char *> argvv;
    for (auto &s : argStrings)
        argvv.push_back(s.data());
    argvv.push_back(nullptr);

    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        const int null = ::open("/dev/null", O_WRONLY);
        if (null >= 0) {
            ::dup2(null, 1);
            ::dup2(null, 2);
        }
        ::execv(argvv[0], argvv.data());
        ::_exit(127);
    }

    // Give the launcher time to spawn workers and start simulating,
    // then request a graceful stop.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    ASSERT_EQ(::kill(pid, SIGTERM), 0);

    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    const int rc = WEXITSTATUS(status);
    // Exit 0 means the campaign won the race and finished before the
    // signal landed — legal, and the merged journal must already be
    // serial-identical. Otherwise the launch reports interruption.
    if (rc != 0) {
        EXPECT_EQ(rc, kExitInterrupted);
    }

    // A --resume relaunch completes the campaign either way, without
    // losing the work the drained workers checkpointed.
    EXPECT_EQ(shell(launchCmd("--shard-retries=2 --resume") +
                    " > /dev/null 2>&1"),
              0);
    EXPECT_EQ(slurp(scratch_ / "merged.json"), serial);
}

} // namespace
} // namespace dmdc
