/**
 * @file
 * Unit tests for the branch prediction subsystem.
 */

#include <gtest/gtest.h>

#include "branch/bimodal.hh"
#include "branch/btb.hh"
#include "branch/gshare.hh"
#include "branch/predictor.hh"
#include "branch/ras.hh"

namespace dmdc
{
namespace
{

TEST(Bimodal, LearnsDirection)
{
    BimodalPredictor p(1024);
    const Addr pc = 0x400100;
    // Initial state is weakly not-taken.
    EXPECT_FALSE(p.lookup(pc));
    p.update(pc, true);
    p.update(pc, true);
    EXPECT_TRUE(p.lookup(pc));
    // Hysteresis: one opposite outcome does not flip it.
    p.update(pc, false);
    EXPECT_TRUE(p.lookup(pc));
    p.update(pc, false);
    p.update(pc, false);
    EXPECT_FALSE(p.lookup(pc));
}

TEST(Bimodal, SaturationDoesNotOverflow)
{
    BimodalPredictor p(64);
    const Addr pc = 0x400004;
    for (int i = 0; i < 100; ++i)
        p.update(pc, true);
    EXPECT_TRUE(p.lookup(pc));
    for (int i = 0; i < 3; ++i)
        p.update(pc, false);
    EXPECT_FALSE(p.lookup(pc));
}

TEST(Gshare, HistorySpeculationAndRestore)
{
    GsharePredictor p(4096, 8);
    EXPECT_EQ(p.history(), 0u);
    p.speculate(true);
    p.speculate(false);
    p.speculate(true);
    EXPECT_EQ(p.history(), 0b101u);
    const std::uint64_t snapshot = p.history();
    p.speculate(true);
    p.restoreHistory(snapshot);
    EXPECT_EQ(p.history(), 0b101u);
}

TEST(Gshare, HistoryIsBounded)
{
    GsharePredictor p(4096, 6);
    for (int i = 0; i < 100; ++i)
        p.speculate(true);
    EXPECT_LT(p.history(), 1u << 6);
}

TEST(Gshare, LearnsAlternatingPatternUnderCleanHistory)
{
    GsharePredictor p(4096, 8);
    const Addr pc = 0x400200;
    // Train an alternating branch; history disambiguates phases.
    bool outcome = false;
    for (int i = 0; i < 200; ++i) {
        outcome = !outcome;
        p.update(pc, p.history(), outcome);
        p.speculate(outcome);
    }
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        outcome = !outcome;
        correct += p.lookup(pc) == outcome;
        p.update(pc, p.history(), outcome);
        p.speculate(outcome);
    }
    EXPECT_GT(correct, 95);
}

TEST(Btb, MissThenHit)
{
    Btb btb(256, 4);
    Addr target = 0;
    EXPECT_FALSE(btb.lookup(0x400100, target));
    btb.update(0x400100, 0x400800);
    EXPECT_TRUE(btb.lookup(0x400100, target));
    EXPECT_EQ(target, 0x400800u);
    // Update overwrites the target in place.
    btb.update(0x400100, 0x400900);
    EXPECT_TRUE(btb.lookup(0x400100, target));
    EXPECT_EQ(target, 0x400900u);
}

TEST(Btb, LruEvictsWithinSet)
{
    Btb btb(8, 2);   // 4 sets x 2 ways
    // Three PCs mapping to the same set (stride = 4 * numSets).
    const Addr a = 0x400000;
    const Addr b = a + 4 * 4;
    const Addr c = b + 4 * 4;
    btb.update(a, 1);
    btb.update(b, 2);
    Addr t = 0;
    EXPECT_TRUE(btb.lookup(a, t));
    btb.update(c, 3);          // evicts b (LRU; a was just touched)
    EXPECT_TRUE(btb.lookup(a, t));
    EXPECT_TRUE(btb.lookup(c, t));
    EXPECT_FALSE(btb.lookup(b, t));
}

TEST(Ras, PushPopNesting)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_EQ(ras.pop(), 0u);   // empty
}

TEST(Ras, CheckpointRestore)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    const auto cp = ras.checkpoint();
    ras.push(0x200);
    ras.pop();
    ras.pop();
    ras.restore(cp);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, OverflowWrapsLosingOldest)
{
    ReturnAddressStack ras(2);
    ras.push(0x1);
    ras.push(0x2);
    ras.push(0x3);
    EXPECT_EQ(ras.pop(), 0x3u);
    EXPECT_EQ(ras.pop(), 0x2u);
    EXPECT_EQ(ras.pop(), 0u);   // 0x1 was overwritten
}

class PredictorTest : public ::testing::Test
{
  protected:
    BranchPredictorParams params;
    BranchPredictor pred{params};
};

TEST_F(PredictorTest, CondTrainingConverges)
{
    const Addr pc = 0x400300;
    // Strongly-taken branch with a BTB-known target.
    int correct = 0;
    for (int i = 0; i < 200; ++i) {
        BranchPrediction p =
            pred.predict(pc, BranchKind::Cond, pc + 4);
        const bool actual = true;
        if (p.taken != actual) {
            pred.recover(pc, BranchKind::Cond, p, actual, pc + 4);
        }
        pred.update(pc, BranchKind::Cond, p, actual, 0x400500);
        if (i >= 100)
            correct += p.taken == actual && p.target == 0x400500;
    }
    EXPECT_GT(correct, 95);
}

TEST_F(PredictorTest, ReturnUsesRas)
{
    const Addr call_pc = 0x400400;
    const Addr ret_pc = 0x400800;
    BranchPrediction cp =
        pred.predict(call_pc, BranchKind::Call, call_pc + 4);
    (void)cp;
    BranchPrediction rp =
        pred.predict(ret_pc, BranchKind::Return, ret_pc + 4);
    EXPECT_TRUE(rp.usedRas);
    EXPECT_TRUE(rp.taken);
    EXPECT_EQ(rp.target, call_pc + 4);
}

TEST_F(PredictorTest, RecoverRestoresSpeculativeState)
{
    const Addr pc = 0x400404;
    BranchPrediction p1 = pred.predict(pc, BranchKind::Cond, pc + 4);
    const std::uint64_t hist_before = p1.historyBefore;
    // Mispredict: recover re-applies the actual outcome.
    pred.recover(pc, BranchKind::Cond, p1, !p1.taken, pc + 4);
    BranchPrediction p2 =
        pred.predict(pc + 8, BranchKind::Cond, pc + 12);
    EXPECT_EQ(p2.historyBefore,
              ((hist_before << 1) | (!p1.taken ? 1 : 0)) &
                  ((1u << 13) - 1));
}

TEST_F(PredictorTest, UncondPredictedOnceBtbWarm)
{
    const Addr pc = 0x400500;
    BranchPrediction p = pred.predict(pc, BranchKind::Uncond, pc + 4);
    EXPECT_FALSE(p.taken);   // cold BTB: falls through (mispredict)
    pred.update(pc, BranchKind::Uncond, p, true, 0x400900);
    p = pred.predict(pc, BranchKind::Uncond, pc + 4);
    EXPECT_TRUE(p.taken);
    EXPECT_EQ(p.target, 0x400900u);
}

} // namespace
} // namespace dmdc
