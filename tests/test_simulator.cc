/**
 * @file
 * Tests of the top-level simulation API, machine configurations, the
 * energy model and the invalidation injector.
 */

#include <gtest/gtest.h>

#include "energy/array_model.hh"
#include "sim/campaign.hh"
#include "sim/invalidation.hh"
#include "sim/run_error.hh"
#include "sim/simulator.hh"
#include "trace/spec_suite.hh"

namespace dmdc
{
namespace
{

SimOptions
quickOptions(const std::string &bench, const std::string &scheme)
{
    SimOptions opt;
    opt.benchmark = bench;
    opt.scheme = scheme;
    opt.warmupInsts = 5000;
    opt.runInsts = 40000;
    return opt;
}

TEST(MachineConfig, Table1Presets)
{
    const CoreParams c1 = makeMachineConfig(1);
    const CoreParams c2 = makeMachineConfig(2);
    const CoreParams c3 = makeMachineConfig(3);
    EXPECT_EQ(c1.robSize, 128u);
    EXPECT_EQ(c2.robSize, 256u);
    EXPECT_EQ(c3.robSize, 512u);
    EXPECT_EQ(c1.lsq.lqSize, 48u);
    EXPECT_EQ(c2.lsq.lqSize, 96u);
    EXPECT_EQ(c3.lsq.lqSize, 192u);
    EXPECT_EQ(c1.lsq.sqSize, 32u);
    EXPECT_EQ(c3.lsq.sqSize, 64u);
    EXPECT_EQ(c1.lsq.dmdc.tableEntries, 1024u);
    EXPECT_EQ(c2.lsq.dmdc.tableEntries, 2048u);
    EXPECT_EQ(c3.lsq.dmdc.tableEntries, 4096u);
    EXPECT_EQ(c2.intRegs, 200u);
    EXPECT_EQ(c2.fetchWidth, 8u);
}

TEST(MachineConfig, InvalidLevelThrowsStructuredError)
{
    try {
        (void)makeMachineConfig(4);
        FAIL() << "expected RunError";
    } catch (const RunError &e) {
        EXPECT_EQ(e.category(), RunErrorCategory::Config);
        EXPECT_FALSE(e.transient());
    }
}

TEST(MachineConfig, SchemeApplication)
{
    CoreParams p = makeMachineConfig(2);
    applyScheme(p, "dmdc-local");
    EXPECT_EQ(p.lsq.policy, "dmdc-local");
    EXPECT_EQ(p.lsq.dmdc.variant, DmdcVariant::Local);
    applyScheme(p, "dmdc-queue");
    EXPECT_TRUE(p.lsq.dmdc.useQueue);
    applyScheme(p, "yla");
    EXPECT_EQ(p.lsq.policy, "yla");
    // Aliases resolve to the canonical name.
    applyScheme(p, "dmdc");
    EXPECT_EQ(p.lsq.policy, "dmdc-global");
}

TEST(Simulator, RunProducesConsistentResult)
{
    const SimResult r =
        runSimulation(quickOptions("gzip", "dmdc-global"));
    EXPECT_GE(r.instructions, 40000u);
    EXPECT_GT(r.cycles, r.instructions / 8);
    EXPECT_GT(r.safeStoreFrac, 0.3);
    EXPECT_LT(r.safeStoreFrac, 1.0);
    EXPECT_GT(r.safeLoadFrac, 0.3);
    EXPECT_LE(r.windowSingleStoreFrac, 1.0);
    EXPECT_GT(r.energy.total(), 0.0);
    EXPECT_GT(r.energy.lqFunction(), 0.0);
}

TEST(Simulator, DeterministicResults)
{
    const SimResult a =
        runSimulation(quickOptions("crafty", "baseline"));
    const SimResult b =
        runSimulation(quickOptions("crafty", "baseline"));
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.lqSearches, b.lqSearches);
    EXPECT_EQ(a.baselineReplays, b.baselineReplays);
}

TEST(Simulator, DmdcSavesLqEnergyAtSmallSlowdown)
{
    // The paper's headline claim, as a coarse sanity bound.
    const SimResult base =
        runSimulation(quickOptions("gzip", "baseline"));
    const SimResult dm =
        runSimulation(quickOptions("gzip", "dmdc-global"));
    EXPECT_LT(dm.energy.lqFunction(), base.energy.lqFunction() * 0.5);
    const double slowdown =
        (static_cast<double>(dm.cycles) / dm.instructions) /
            (static_cast<double>(base.cycles) / base.instructions) -
        1.0;
    EXPECT_LT(slowdown, 0.08);
}

TEST(Simulator, YlaOnlyNeverSlowsDown)
{
    const SimResult base =
        runSimulation(quickOptions("vpr", "baseline"));
    const SimResult yla =
        runSimulation(quickOptions("vpr", "yla"));
    // Filtering is timing-neutral: identical cycle counts.
    EXPECT_EQ(base.cycles, yla.cycles);
    EXPECT_GT(yla.lqSearchesFiltered, 0u);
    EXPECT_LT(yla.energy.lqFunction(), base.energy.lqFunction());
}

TEST(Simulator, ObserversAttachAndCount)
{
    YlaObserver obs("qw-8", 8, quadWordBytes);
    SimOptions opt = quickOptions("gzip", "baseline");
    opt.observers.push_back(&obs);
    (void)runSimulation(opt);
    EXPECT_GT(obs.storesObserved(), 1000u);
    EXPECT_GT(obs.filteredFraction(), 0.4);
    EXPECT_LE(obs.filteredFraction(), 1.0);
}

TEST(Simulator, TweakHookOverridesParams)
{
    SimOptions opt = quickOptions("gzip", "baseline");
    opt.tweak = [](CoreParams &p) { p.robSize = 32; };
    Simulator sim(opt);
    EXPECT_EQ(sim.coreParams().robSize, 32u);
    const SimResult r = sim.run();
    EXPECT_GE(r.instructions, opt.runInsts);
}

TEST(Results, RangeAggregation)
{
    const Range r = makeRange({1.0, 5.0, 3.0});
    EXPECT_DOUBLE_EQ(r.min, 1.0);
    EXPECT_DOUBLE_EQ(r.max, 5.0);
    EXPECT_DOUBLE_EQ(r.mean, 3.0);
    EXPECT_EQ(r.n, 3u);
    const Range empty = makeRange({});
    EXPECT_EQ(empty.n, 0u);
}

TEST(Energy, ArrayModelScalesSanely)
{
    using namespace array_model;
    // CAM search grows with rows and tag width.
    EXPECT_GT(camSearch(96, 40), camSearch(48, 40));
    EXPECT_GT(camSearch(96, 40), camSearch(96, 15));
    // RAM reads grow with geometry and are far cheaper than CAM
    // searches of the same entry count.
    EXPECT_GT(ramRead(2048, 8), ramRead(256, 8));
    EXPECT_LT(ramRead(96, 15), camSearch(96, 40));
    EXPECT_GT(registerAccess(16), 0.0);
}

TEST(Energy, LqShareGrowsWithMachineSize)
{
    // The LQ's share of core energy must grow from config 1 to 3 (the
    // premise behind the paper's 3-8% net-savings span).
    double shares[2];
    int i = 0;
    for (unsigned level : {1u, 3u}) {
        SimOptions opt = quickOptions("gzip", "baseline");
        opt.configLevel = level;
        const SimResult r = runSimulation(opt);
        shares[i++] =
            r.energy.lqFunction() / r.energy.total();
    }
    EXPECT_GT(shares[1], shares[0]);
}

TEST(Invalidation, InjectorRateIsApproximatelyRespected)
{
    auto w = makeSpecWorkload("swim");
    CoreParams params = makeMachineConfig(1);
    applyScheme(params, "dmdc-global", /*coherence=*/true);
    Pipeline pipe(params, *w);
    InvalidationInjector inj(10.0, 0x10000000, 1 << 20, 64, 7);
    for (int i = 0; i < 20000; ++i) {
        pipe.tick();
        inj.tick(pipe);
    }
    // 10 per 1000 cycles over 20000 cycles ~ 200.
    EXPECT_NEAR(static_cast<double>(inj.injected()), 200.0, 60.0);
}

TEST(Invalidation, ZeroRateInjectsNothing)
{
    auto w = makeSpecWorkload("swim");
    CoreParams params = makeMachineConfig(1);
    applyScheme(params, "dmdc-global", true);
    Pipeline pipe(params, *w);
    InvalidationInjector inj(0.0, 0x10000000, 1 << 20, 64, 7);
    for (int i = 0; i < 5000; ++i) {
        pipe.tick();
        inj.tick(pipe);
    }
    EXPECT_EQ(inj.injected(), 0u);
}

TEST(Invalidation, CoherentDmdcSlowsGracefullyUnderTraffic)
{
    SimOptions base = quickOptions("swim", "dmdc-global");
    base.coherence = true;
    const SimResult quiet = runSimulation(base);
    base.invalidationsPer1kCycles = 100.0;
    const SimResult noisy = runSimulation(base);
    // More invalidations -> more checking. Cycle counts can jitter a
    // little at this run length; allow small slack.
    EXPECT_GE(noisy.checkingCycleFrac, quiet.checkingCycleFrac);
    EXPECT_GE(static_cast<double>(noisy.cycles),
              static_cast<double>(quiet.cycles) * 0.97);
}

// Parameterized sweep over YLA counts: monotone filtering.
class YlaCountSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(YlaCountSweep, MoreRegistersFilterMore)
{
    const unsigned regs = GetParam();
    YlaObserver small("small", regs, quadWordBytes);
    YlaObserver big("big", regs * 2, quadWordBytes);
    SimOptions opt = quickOptions("gcc", "baseline");
    opt.observers = {&small, &big};
    (void)runSimulation(opt);
    EXPECT_GE(big.filteredFraction() + 0.005,
              small.filteredFraction());
}

INSTANTIATE_TEST_SUITE_P(Counts, YlaCountSweep,
                         ::testing::Values(1u, 2u, 4u, 8u));

// Parameterized sweep over checking-table sizes: larger tables never
// produce more hashing-conflict false replays.
class TableSizeSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TableSizeSweep, RunsCleanlyAndBoundsFalseReplays)
{
    SimOptions opt = quickOptions("gcc", "dmdc-global");
    opt.tableEntriesOverride = GetParam();
    const SimResult r = runSimulation(opt);
    EXPECT_GE(r.instructions, opt.runInsts);
    // False replays are bounded (well under 1% of instructions).
    EXPECT_LT(r.falseReplays(),
              static_cast<double>(r.instructions) / 100.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TableSizeSweep,
                         ::testing::Values(64u, 256u, 1024u, 4096u));

} // namespace
} // namespace dmdc
