/**
 * @file
 * Randomized differential tests: the optimized LSQ structures are
 * checked operation-by-operation against naive reference
 * implementations under long random operation streams. This is the
 * strongest guard against subtle CAM-search or age-ordering bugs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/random.hh"
#include "lsq/load_queue.hh"
#include "lsq/store_queue.hh"
#include "lsq/yla.hh"

namespace dmdc
{
namespace
{

/** Naive reference of the store queue's load check. */
struct RefStore
{
    SeqNum seq;
    Addr addr;
    unsigned size;
    bool addrReady;
    bool dataReady;
};

SqCheck
refCheckLoad(const std::vector<RefStore> &stores, SeqNum load_seq,
             Addr addr, unsigned size, bool *unresolved_older)
{
    *unresolved_older = false;
    // Youngest-first among older stores.
    const RefStore *best = nullptr;
    for (const RefStore &s : stores) {
        if (s.seq >= load_seq)
            continue;
        if (!s.addrReady) {
            *unresolved_older = true;
            continue;
        }
        if (!rangesOverlap(addr, size, s.addr, s.size))
            continue;
        if (!best || s.seq > best->seq)
            best = &s;
    }
    if (!best)
        return SqCheck::NoMatch;
    const bool contains =
        best->addr <= addr && addr + size <= best->addr + best->size;
    return (contains && best->dataReady) ? SqCheck::Forward
                                         : SqCheck::Reject;
}

TEST(Oracle, StoreQueueMatchesReferenceUnderRandomStreams)
{
    Rng rng(2024);
    for (int round = 0; round < 20; ++round) {
        StoreQueue sq(16);
        std::vector<std::unique_ptr<DynInst>> owned;
        std::vector<RefStore> ref;
        SeqNum seq = 0;

        for (int op = 0; op < 2000; ++op) {
            const double r = rng.uniform();
            if (r < 0.35 && !sq.full()) {
                // Allocate a store.
                auto inst = std::make_unique<DynInst>();
                inst->seq = ++seq;
                inst->op.cls = OpClass::Store;
                const unsigned size = 1u << rng.range(4);
                inst->op.memSize =
                    static_cast<std::uint8_t>(size);
                inst->op.effAddr =
                    (rng.range(1 << 10)) & ~Addr{size - 1};
                sq.allocate(inst.get());
                ref.push_back(RefStore{inst->seq, inst->op.effAddr,
                                       size, false, false});
                owned.push_back(std::move(inst));
            } else if (r < 0.50) {
                // Resolve a random unresolved store.
                for (auto &s : ref) {
                    if (!s.addrReady && rng.chance(0.5)) {
                        s.addrReady = true;
                        for (auto &inst : owned) {
                            if (inst->seq == s.seq)
                                sq.setAddress(inst.get());
                        }
                        break;
                    }
                }
            } else if (r < 0.62) {
                // Data-ready a random store.
                for (auto &s : ref) {
                    if (s.addrReady && !s.dataReady &&
                        rng.chance(0.5)) {
                        s.dataReady = true;
                        for (auto &inst : owned) {
                            if (inst->seq == s.seq)
                                inst->sqDataReady = true;
                        }
                        break;
                    }
                }
            } else if (r < 0.72 && !ref.empty()) {
                // Commit the head store if fully ready.
                if (ref.front().addrReady && ref.front().dataReady) {
                    for (auto &inst : owned) {
                        if (inst->seq == ref.front().seq)
                            sq.releaseHead(inst.get());
                    }
                    ref.erase(ref.begin());
                }
            } else if (r < 0.78 && !ref.empty()) {
                // Squash a random young suffix.
                const SeqNum from =
                    ref[rng.range(ref.size())].seq;
                sq.squashFrom(from);
                std::erase_if(ref, [from](const RefStore &s) {
                    return s.seq >= from;
                });
            } else {
                // Random load check: compare against the reference.
                const SeqNum load_seq = seq + 1 + rng.range(4);
                const unsigned size = 1u << rng.range(4);
                const Addr addr =
                    (rng.range(1 << 10)) & ~Addr{size - 1};
                bool ref_unresolved = false;
                const SqCheck expect = refCheckLoad(
                    ref, load_seq, addr, size, &ref_unresolved);
                const SqCheckResult got =
                    sq.checkLoad(load_seq, addr, size);
                ASSERT_EQ(static_cast<int>(got.outcome),
                          static_cast<int>(expect))
                    << "round " << round << " op " << op;
                if (got.outcome == SqCheck::NoMatch) {
                    ASSERT_EQ(got.sawUnresolvedOlder, ref_unresolved);
                }
            }
        }
    }
}

/** Naive reference of the LQ violation search. */
struct RefLoad
{
    SeqNum seq;
    Addr addr;
    unsigned size;
    bool issued;
    SeqNum fwd;
};

const RefLoad *
refViolation(const std::vector<RefLoad> &loads, SeqNum store_seq,
             Addr addr, unsigned size)
{
    const RefLoad *oldest = nullptr;
    for (const RefLoad &l : loads) {
        if (l.seq <= store_seq || !l.issued)
            continue;
        if (!rangesOverlap(addr, size, l.addr, l.size))
            continue;
        if (l.fwd != invalidSeqNum && l.fwd > store_seq)
            continue;
        if (!oldest || l.seq < oldest->seq)
            oldest = &l;
    }
    return oldest;
}

TEST(Oracle, LoadQueueViolationSearchMatchesReference)
{
    Rng rng(777);
    for (int round = 0; round < 20; ++round) {
        LoadQueue lq(24);
        std::vector<std::unique_ptr<DynInst>> owned;
        std::vector<RefLoad> ref;
        SeqNum seq = 0;

        for (int op = 0; op < 2000; ++op) {
            const double r = rng.uniform();
            if (r < 0.4 && !lq.full()) {
                auto inst = std::make_unique<DynInst>();
                inst->seq = ++seq;
                inst->op.cls = OpClass::Load;
                const unsigned size = 1u << rng.range(4);
                inst->op.memSize =
                    static_cast<std::uint8_t>(size);
                inst->op.effAddr =
                    (rng.range(1 << 10)) & ~Addr{size - 1};
                lq.allocate(inst.get());
                ref.push_back(RefLoad{inst->seq, inst->op.effAddr,
                                      size, false, invalidSeqNum});
                owned.push_back(std::move(inst));
            } else if (r < 0.60 && !ref.empty()) {
                // Issue a random unissued load, sometimes forwarded.
                for (std::size_t k = 0; k < ref.size(); ++k) {
                    auto &l = ref[k];
                    if (!l.issued && rng.chance(0.5)) {
                        l.issued = true;
                        if (rng.chance(0.3))
                            l.fwd = l.seq > 4 ? l.seq - rng.range(4)
                                              : invalidSeqNum;
                        for (auto &inst : owned) {
                            if (inst->seq == l.seq) {
                                inst->loadIssued = true;
                                inst->forwardedFrom = l.fwd;
                            }
                        }
                        break;
                    }
                }
            } else if (r < 0.70 && !ref.empty()) {
                // Commit the head load (only if issued).
                if (ref.front().issued) {
                    for (auto &inst : owned) {
                        if (inst->seq == ref.front().seq)
                            lq.releaseHead(inst.get());
                    }
                    ref.erase(ref.begin());
                }
            } else if (r < 0.76 && !ref.empty()) {
                const SeqNum from = ref[rng.range(ref.size())].seq;
                lq.squashFrom(from);
                std::erase_if(ref, [from](const RefLoad &l) {
                    return l.seq >= from;
                });
            } else {
                // Store-side violation search vs. reference.
                const SeqNum store_seq =
                    seq > 8 ? seq - rng.range(8) : 0;
                const unsigned size = 1u << rng.range(4);
                const Addr addr =
                    (rng.range(1 << 10)) & ~Addr{size - 1};
                const RefLoad *expect =
                    refViolation(ref, store_seq, addr, size);
                DynInst *got =
                    lq.searchViolation(store_seq, addr, size);
                if (expect == nullptr) {
                    ASSERT_EQ(got, nullptr)
                        << "round " << round << " op " << op;
                } else {
                    ASSERT_NE(got, nullptr);
                    ASSERT_EQ(got->seq, expect->seq)
                        << "round " << round << " op " << op;
                }
            }
        }
    }
}

TEST(Oracle, YlaAgreesWithExhaustiveTracking)
{
    // YLA banks must always record exactly the max issued-load seq of
    // their bank.
    Rng rng(31);
    for (unsigned regs : {1u, 4u, 16u}) {
        YlaFile yla(regs, quadWordBytes);
        std::vector<SeqNum> expect(regs, invalidSeqNum);
        SeqNum seq = 0;
        for (int op = 0; op < 30000; ++op) {
            if (rng.chance(0.7)) {
                const Addr addr = rng.range(1 << 12) & ~Addr{7};
                ++seq;
                yla.loadIssued(addr, seq);
                const unsigned bank =
                    static_cast<unsigned>((addr / 8) % regs);
                expect[bank] = std::max(expect[bank], seq);
            } else if (rng.chance(0.1)) {
                const SeqNum clamp = seq > 20 ? seq - 20 : 0;
                yla.branchRecovery(clamp);
                for (auto &e : expect)
                    e = std::min(e, clamp);
            } else {
                const Addr addr = rng.range(1 << 12) & ~Addr{7};
                const unsigned bank =
                    static_cast<unsigned>((addr / 8) % regs);
                ASSERT_EQ(yla.lookup(addr), expect[bank]);
            }
        }
    }
}

} // namespace
} // namespace dmdc
