/**
 * @file
 * Parameterized sweep over all 26 SPEC stand-ins: every benchmark must
 * run cleanly under baseline and DMDC, preserve the safety property
 * (built-in panic) and land within broad plausibility bounds. This is
 * the coverage test that catches workload-generator regressions.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "trace/spec_suite.hh"

namespace dmdc
{
namespace
{

class SuiteSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SuiteSweep, BaselineAndDmdcRunClean)
{
    const std::string bench = GetParam();

    SimOptions opt;
    opt.benchmark = bench;
    opt.warmupInsts = 4000;
    opt.runInsts = 30000;

    opt.scheme = "baseline";
    const SimResult base = runSimulation(opt);
    EXPECT_GE(base.instructions, opt.runInsts);
    EXPECT_GT(base.ipc, 0.02);
    EXPECT_LT(base.ipc, 8.0);
    // Memory instructions present in sane proportions.
    const double load_frac = static_cast<double>(base.committedLoads) /
        static_cast<double>(base.instructions);
    EXPECT_GT(load_frac, 0.08) << bench;
    EXPECT_LT(load_frac, 0.45) << bench;

    opt.scheme = "dmdc-global";
    const SimResult dm = runSimulation(opt);
    EXPECT_GE(dm.instructions, opt.runInsts);

    // YLA filtering effective on every benchmark (8 registers).
    EXPECT_GT(dm.safeStoreFrac, 0.55) << bench;
    // Safe loads are the common case.
    EXPECT_GT(dm.safeLoadFrac, 0.4) << bench;
    // False replays stay rare (well below 0.5% of instructions).
    EXPECT_LT(dm.perMInst(dm.falseReplays()), 5000.0) << bench;

    // Slowdown within a loose band (can be negative).
    const double base_cpi = static_cast<double>(base.cycles) /
        static_cast<double>(base.instructions);
    const double dm_cpi = static_cast<double>(dm.cycles) /
        static_cast<double>(dm.instructions);
    EXPECT_LT((dm_cpi - base_cpi) / base_cpi, 0.10) << bench;

    // Energy: DMDC always reduces LQ-function energy.
    EXPECT_LT(dm.energy.lqFunction(), base.energy.lqFunction())
        << bench;
}

INSTANTIATE_TEST_SUITE_P(
    All26, SuiteSweep, ::testing::ValuesIn(specAllNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace dmdc
