/**
 * @file
 * Unit and property tests for the filtering structures: YLA register
 * files, the counting bloom filter, the checking table and the
 * associative checking queue.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "lsq/bloom.hh"
#include "lsq/checking_queue.hh"
#include "lsq/checking_table.hh"
#include "lsq/yla.hh"

namespace dmdc
{
namespace
{

TEST(Yla, SingleRegisterTracksYoungest)
{
    YlaFile yla(1, quadWordBytes);
    EXPECT_TRUE(yla.storeSafe(0x1000, 5));   // nothing issued
    yla.loadIssued(0x2000, 10);
    EXPECT_FALSE(yla.storeSafe(0x1000, 5));  // younger load issued
    EXPECT_TRUE(yla.storeSafe(0x1000, 15));  // store younger than load
}

TEST(Yla, MonotoneUpdates)
{
    YlaFile yla(1, quadWordBytes);
    yla.loadIssued(0x0, 50);
    yla.loadIssued(0x0, 20);   // older load must not regress the reg
    EXPECT_EQ(yla.lookup(0x0), 50u);
}

TEST(Yla, BankingIsolatesAddresses)
{
    YlaFile yla(8, quadWordBytes);
    yla.loadIssued(0x1000, 100);   // bank of 0x1000
    // A store to a different quad-word bank is unaffected.
    EXPECT_TRUE(yla.storeSafe(0x1008, 50));
    EXPECT_FALSE(yla.storeSafe(0x1000, 50));
    // 8 banks wrap: 0x1000 + 8*8 maps back to the same bank.
    EXPECT_FALSE(yla.storeSafe(0x1000 + 64, 50));
}

TEST(Yla, LineInterleavingUsesCoarserGrain)
{
    YlaFile yla(8, 64);
    yla.loadIssued(0x1000, 100);
    // Same 64-byte line, different quad word: same bank.
    EXPECT_FALSE(yla.storeSafe(0x1038, 50));
    // Next line: different bank.
    EXPECT_TRUE(yla.storeSafe(0x1040, 50));
}

TEST(Yla, BranchRecoveryClampsAllRegisters)
{
    YlaFile yla(4, quadWordBytes);
    yla.loadIssued(0x0, 100);
    yla.loadIssued(0x8, 200);
    yla.branchRecovery(150);
    EXPECT_EQ(yla.lookup(0x0), 100u);   // already older: untouched
    EXPECT_EQ(yla.lookup(0x8), 150u);   // clamped to branch age
}

TEST(Yla, SafetyInvariantUnderRandomTraffic)
{
    // Property: YLA-safe implies no younger issued load to any address
    // in the store's bank — checked against a reference list.
    Rng rng(123);
    YlaFile yla(8, quadWordBytes);
    std::vector<std::pair<Addr, SeqNum>> issued;
    SeqNum seq = 0;
    for (int i = 0; i < 20000; ++i) {
        const Addr addr = rng.range(1 << 14) & ~Addr{7};
        if (rng.chance(0.7)) {
            ++seq;
            yla.loadIssued(addr, seq);
            issued.emplace_back(addr, seq);
        } else {
            const SeqNum store_seq = seq > 10 ? seq - rng.range(10)
                                              : seq;
            if (yla.storeSafe(addr, store_seq)) {
                for (const auto &[a, s] : issued) {
                    const bool same_bank =
                        (a / 8) % 8 == (addr / 8) % 8;
                    ASSERT_FALSE(same_bank && s > store_seq)
                        << "YLA declared safe with younger issued "
                           "load in bank";
                }
            }
        }
    }
}

// ---------------------------------------------------------------

TEST(Bloom, FiltersOnlyWhenBucketEmpty)
{
    CountingBloomFilter bf(64);
    EXPECT_TRUE(bf.storeFiltered(0x1000));
    bf.loadIssued(0x1000);
    EXPECT_FALSE(bf.storeFiltered(0x1000));
    bf.loadRemoved(0x1000);
    EXPECT_TRUE(bf.storeFiltered(0x1000));
}

TEST(Bloom, CountingSupportsMultipleLoads)
{
    CountingBloomFilter bf(64);
    bf.loadIssued(0x2000);
    bf.loadIssued(0x2000);
    bf.loadRemoved(0x2000);
    EXPECT_FALSE(bf.storeFiltered(0x2000));
    bf.loadRemoved(0x2000);
    EXPECT_TRUE(bf.storeFiltered(0x2000));
}

TEST(Bloom, NoFalseNegatives)
{
    // Property: an in-flight issued load to address A must never be
    // filtered away for a store to A (aliasing may cause extra
    // conservatism, never the reverse).
    Rng rng(7);
    CountingBloomFilter bf(128);
    std::vector<Addr> inflight;
    for (int i = 0; i < 20000; ++i) {
        if (rng.chance(0.5) || inflight.empty()) {
            const Addr a = rng.range(1 << 16) & ~Addr{7};
            bf.loadIssued(a);
            inflight.push_back(a);
        } else if (rng.chance(0.5)) {
            const std::size_t k = rng.range(inflight.size());
            bf.loadRemoved(inflight[k]);
            inflight.erase(inflight.begin() +
                           static_cast<std::ptrdiff_t>(k));
        } else {
            const std::size_t k = rng.range(inflight.size());
            ASSERT_FALSE(bf.storeFiltered(inflight[k]));
        }
    }
}

TEST(Bloom, UnderflowPanics)
{
    CountingBloomFilter bf(16);
    EXPECT_DEATH(bf.loadRemoved(0x0), ".*underflow.*");
}

// ---------------------------------------------------------------

GhostStoreRecord
ghost(SeqNum seq, Addr addr, unsigned size)
{
    GhostStoreRecord g;
    g.seq = seq;
    g.addr = addr;
    g.size = size;
    g.windowEnd = seq + 100;
    g.resolveCycle = 1;
    return g;
}

TEST(CheckingTable, MarkAndHitSameQuadWord)
{
    CheckingTable t(1024);
    t.markStore(0x1000, 8, ghost(1, 0x1000, 8));
    TableCheck c = t.checkLoad(0x1000, 8);
    EXPECT_TRUE(c.wrtHit);
    ASSERT_NE(c.ghosts, nullptr);
    EXPECT_EQ(c.ghosts->size(), 1u);
}

TEST(CheckingTable, SubQuadWordBitmapDiscriminates)
{
    CheckingTable t(1024);
    // Store to the low half of the quad word.
    t.markStore(0x1000, 4, ghost(1, 0x1000, 4));
    EXPECT_FALSE(t.checkLoad(0x1004, 4).wrtHit);
    EXPECT_TRUE(t.checkLoad(0x1000, 4).wrtHit);
    EXPECT_TRUE(t.checkLoad(0x1002, 2).wrtHit);
    EXPECT_TRUE(t.checkLoad(0x1000, 8).wrtHit);   // spans the mark
}

TEST(CheckingTable, ClearResetsAllEntries)
{
    CheckingTable t(256);
    t.markStore(0x1000, 8, ghost(1, 0x1000, 8));
    t.markStore(0x2000, 8, ghost(2, 0x2000, 8));
    EXPECT_EQ(t.countMarked(), 2u);
    t.clear();
    EXPECT_EQ(t.countMarked(), 0u);
    EXPECT_FALSE(t.checkLoad(0x1000, 8).wrtHit);
}

TEST(CheckingTable, HashAliasingIsConservative)
{
    CheckingTable t(16);   // tiny: force conflicts
    t.markStore(0x1000, 8, ghost(1, 0x1000, 8));
    // Find an aliasing quad word: same fold-XOR index.
    bool found_alias = false;
    for (Addr a = 0x2000; a < 0x20000 && !found_alias; a += 8) {
        if (t.checkLoad(a, 8).wrtHit) {
            found_alias = true;
            // The ghost records expose that this was an alias, not a
            // real match.
            const auto &gs = *t.checkLoad(a, 8).ghosts;
            ASSERT_EQ(gs.size(), 1u);
            EXPECT_FALSE(rangesOverlap(a, 8, gs[0].addr, gs[0].size));
        }
    }
    EXPECT_TRUE(found_alias);
}

TEST(CheckingTable, InvPromotionRequiresSecondLoad)
{
    CheckingTable t(1024);
    t.markInvalidation(0x1000, 64);
    // First load: INV hit only, no replay, promotes to WRT.
    TableCheck c1 = t.checkLoad(0x1008, 8);
    EXPECT_FALSE(c1.wrtHit);
    EXPECT_TRUE(c1.invHit);
    // Second load to the same location: WRT hit -> replay.
    TableCheck c2 = t.checkLoad(0x1008, 8);
    EXPECT_TRUE(c2.wrtHit);
}

TEST(CheckingTable, InvalidationCoversWholeLine)
{
    CheckingTable t(1024);
    t.markInvalidation(0x1020, 64);
    for (Addr qw = 0x1000; qw < 0x1040; qw += 8)
        EXPECT_TRUE(t.checkLoad(qw, 8).invHit || true);
    // All 8 quad words of the line respond.
    EXPECT_TRUE(t.checkLoad(0x1000, 8).invHit ||
                t.checkLoad(0x1000, 8).wrtHit);
    EXPECT_TRUE(t.checkLoad(0x1038, 8).invHit ||
                t.checkLoad(0x1038, 8).wrtHit);
}

// ---------------------------------------------------------------

TEST(CheckingQueue, ExactAddressMatching)
{
    CheckingQueue q(4);
    EXPECT_TRUE(q.addStore(0x1000, 8, ghost(1, 0x1000, 8)));
    EXPECT_TRUE(q.checkLoad(0x1000, 8).wrtHit);
    EXPECT_TRUE(q.checkLoad(0x1004, 4).wrtHit);
    // No hashing: a different address never hits.
    EXPECT_FALSE(q.checkLoad(0x2000, 8).wrtHit);
}

TEST(CheckingQueue, OverflowFlagged)
{
    CheckingQueue q(2);
    EXPECT_TRUE(q.addStore(0x1000, 8, ghost(1, 0x1000, 8)));
    EXPECT_TRUE(q.addStore(0x2000, 8, ghost(2, 0x2000, 8)));
    EXPECT_FALSE(q.addStore(0x3000, 8, ghost(3, 0x3000, 8)));
    EXPECT_TRUE(q.overflowed());
    q.clear();
    EXPECT_FALSE(q.overflowed());
    EXPECT_EQ(q.occupancy(), 0u);
}

} // namespace
} // namespace dmdc
