/**
 * @file
 * Tests for the fast-kernel refactor: the DynInst object pool and
 * ring buffer, the store queue's incrementally-maintained unresolved
 * counter (checked against a brute-force oracle), and equivalence of
 * the event-driven idle skip with cycle-by-cycle ticking.
 */

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/object_pool.hh"
#include "common/random.hh"
#include "core/pipeline.hh"
#include "lsq/dmdc.hh"
#include "lsq/store_queue.hh"
#include "sim/machine_config.hh"
#include "trace/spec_suite.hh"

namespace dmdc
{
namespace
{

// ---- object pool ----------------------------------------------------

TEST(ObjectPoolTest, LifoReuseAndReset)
{
    ObjectPool<DynInst> pool(4);
    DynInst *a = pool.acquire();
    a->seq = 42;
    a->sqAddrReady = true;
    EXPECT_EQ(pool.liveCount(), 1u);
    pool.release(a);
    EXPECT_EQ(pool.liveCount(), 0u);

    // LIFO freelist: the released object comes back first, reset to
    // its default-constructed state.
    DynInst *b = pool.acquire();
    EXPECT_EQ(b, a);
    EXPECT_EQ(b->seq, DynInst{}.seq);
    EXPECT_FALSE(b->sqAddrReady);
    pool.release(b);
}

TEST(ObjectPoolTest, FreshSlabHandsOutAddressOrder)
{
    ObjectPool<int> pool(8, 8);
    int *prev = pool.acquire();
    for (int i = 1; i < 8; ++i) {
        int *next = pool.acquire();
        EXPECT_LT(prev, next);
        prev = next;
    }
}

TEST(ObjectPoolTest, BoundedPoolExhaustion)
{
    ObjectPool<int> pool(2, 4);
    std::vector<int *> live;
    for (int i = 0; i < 4; ++i) {
        int *obj = pool.tryAcquire();
        ASSERT_NE(obj, nullptr);
        live.push_back(obj);
    }
    EXPECT_EQ(pool.liveCount(), 4u);
    EXPECT_EQ(pool.capacity(), 4u);
    EXPECT_EQ(pool.tryAcquire(), nullptr);

    pool.release(live.back());
    live.pop_back();
    EXPECT_NE(pool.tryAcquire(), nullptr);
}

TEST(ObjectPoolTest, UnboundedPoolGrowsInSlabs)
{
    ObjectPool<int> pool(2);
    std::vector<int *> live;
    for (int i = 0; i < 5; ++i)
        live.push_back(pool.acquire());
    EXPECT_EQ(pool.liveCount(), 5u);
    EXPECT_GE(pool.capacity(), 5u);
    for (int *obj : live)
        pool.release(obj);
    EXPECT_EQ(pool.liveCount(), 0u);
}

// ---- ring buffer ----------------------------------------------------

TEST(RingBufferTest, WrapAroundKeepsOldestFirstOrder)
{
    RingBuffer<int> rb(4);
    EXPECT_TRUE(rb.empty());
    EXPECT_EQ(rb.capacity(), 4u);

    rb.push_back(1);
    rb.push_back(2);
    rb.push_back(3);
    rb.pop_front();
    rb.pop_front();
    // head has advanced; these pushes wrap physically.
    rb.push_back(4);
    rb.push_back(5);
    rb.push_back(6);
    EXPECT_TRUE(rb.full());
    EXPECT_EQ(rb.size(), 4u);
    EXPECT_EQ(rb.front(), 3);
    EXPECT_EQ(rb.back(), 6);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(rb[static_cast<std::size_t>(i)], 3 + i);
}

TEST(RingBufferTest, PopBackAndClear)
{
    RingBuffer<int> rb(3);
    rb.push_back(7);
    rb.push_back(8);
    rb.pop_back();
    EXPECT_EQ(rb.back(), 7);
    EXPECT_EQ(rb.size(), 1u);
    rb.clear();
    EXPECT_TRUE(rb.empty());
    rb.push_back(9);
    EXPECT_EQ(rb.front(), 9);
}

// ---- SQ incremental unresolved tracking vs. brute force -------------

/** Brute-force reference over a mirror of the queue contents. */
struct SqOracle
{
    unsigned unresolved = 0;
    SeqNum oldestUnresolved = invalidSeqNum;

    explicit SqOracle(const std::deque<DynInst *> &mirror)
    {
        for (const DynInst *store : mirror) {
            if (!store->sqAddrReady) {
                ++unresolved;
                if (oldestUnresolved == invalidSeqNum)
                    oldestUnresolved = store->seq;
            }
        }
    }

    bool
    allOlderResolved(const std::deque<DynInst *> &mirror,
                     SeqNum load_seq) const
    {
        for (const DynInst *store : mirror)
            if (store->seq < load_seq && !store->sqAddrReady)
                return false;
        return true;
    }
};

TEST(StoreQueueIncrementalTest, RandomizedAgainstOracle)
{
    constexpr unsigned capacity = 16;
    StoreQueue sq(capacity);
    std::deque<DynInst *> mirror;
    std::vector<std::unique_ptr<DynInst>> owned;
    Rng rng(0xd31c0de);
    SeqNum next_seq = 1;

    for (int step = 0; step < 4000; ++step) {
        const std::uint64_t op = rng.range(10);
        if (op < 5 && mirror.size() < capacity) {
            auto inst = std::make_unique<DynInst>();
            inst->seq = next_seq++;
            inst->op.cls = OpClass::Store;
            inst->op.memSize = 8;
            if (rng.range(2)) {
                inst->op.effAddr = rng.range(1 << 16) & ~Addr{7};
                inst->sqAddrReady = true;
                inst->sqDataReady = rng.range(2) != 0;
            }
            sq.allocate(inst.get());
            mirror.push_back(inst.get());
            owned.push_back(std::move(inst));
        } else if (op < 7 && !mirror.empty()) {
            // Resolve a random (possibly already-resolved) store.
            DynInst *store = mirror[rng.range(mirror.size())];
            if (!store->sqAddrReady)
                store->op.effAddr = rng.range(1 << 16) & ~Addr{7};
            sq.setAddress(store);
        } else if (op < 8 && !mirror.empty()) {
            sq.releaseHead(mirror.front());
            mirror.pop_front();
        } else if (op < 9 && !mirror.empty()) {
            // Squash a random suffix.
            const SeqNum from =
                mirror[rng.range(mirror.size())]->seq;
            sq.squashFrom(from);
            while (!mirror.empty() && mirror.back()->seq >= from)
                mirror.pop_back();
        }

        const SqOracle oracle(mirror);
        ASSERT_EQ(sq.unresolvedCount(), oracle.unresolved)
            << "step " << step;
        ASSERT_EQ(sq.oldestUnresolvedSeq(), oracle.oldestUnresolved)
            << "step " << step;
        // Probe allOlderResolved at the interesting seq boundaries.
        for (SeqNum probe :
             {SeqNum{1}, next_seq / 2, next_seq, next_seq + 5}) {
            ASSERT_EQ(sq.allOlderResolved(probe),
                      oracle.allOlderResolved(mirror, probe))
                << "step " << step << " probe " << probe;
        }
    }
}

TEST(StoreQueueIncrementalTest, CheckLoadMatchesLinearReference)
{
    constexpr unsigned capacity = 12;
    StoreQueue sq(capacity);
    std::deque<DynInst *> mirror;
    std::vector<std::unique_ptr<DynInst>> owned;
    Rng rng(0xf00dfeed);
    SeqNum next_seq = 1;

    // Seed-style reference: walk youngest-first, skipping younger
    // stores one by one.
    auto reference = [&](SeqNum load_seq, Addr addr, unsigned size) {
        SqCheckResult r;
        for (auto it = mirror.rbegin(); it != mirror.rend(); ++it) {
            DynInst *store = *it;
            if (store->seq >= load_seq)
                continue;
            if (!store->sqAddrReady) {
                r.sawUnresolvedOlder = true;
                continue;
            }
            if (!rangesOverlap(addr, size, store->op.effAddr,
                               store->op.memSize))
                continue;
            const bool contains = store->op.effAddr <= addr &&
                addr + size <= store->op.effAddr + store->op.memSize;
            if (contains && store->sqDataReady)
                r.outcome = SqCheck::Forward;
            else
                r.outcome = SqCheck::Reject;
            r.producer = store;
            return r;
        }
        return r;
    };

    for (int step = 0; step < 3000; ++step) {
        if (mirror.size() == capacity ||
            (!mirror.empty() && rng.range(4) == 0)) {
            sq.releaseHead(mirror.front());
            mirror.pop_front();
        } else {
            auto inst = std::make_unique<DynInst>();
            inst->seq = next_seq++;
            inst->op.cls = OpClass::Store;
            // Small address space to force overlaps.
            inst->op.effAddr = rng.range(64) * 4;
            inst->op.memSize =
                static_cast<std::uint8_t>(4u << rng.range(2));
            inst->sqAddrReady = rng.range(4) != 0;
            inst->sqDataReady =
                inst->sqAddrReady && rng.range(2) != 0;
            sq.allocate(inst.get());
            mirror.push_back(inst.get());
            owned.push_back(std::move(inst));
        }

        const SeqNum load_seq = 1 + rng.range(next_seq + 4);
        const Addr addr = rng.range(64) * 4;
        const unsigned size = 4u << rng.range(2);
        const SqCheckResult got = sq.checkLoad(load_seq, addr, size);
        const SqCheckResult want = reference(load_seq, addr, size);
        ASSERT_EQ(got.outcome, want.outcome) << "step " << step;
        ASSERT_EQ(got.producer, want.producer) << "step " << step;
        ASSERT_EQ(got.sawUnresolvedOlder, want.sawUnresolvedOlder)
            << "step " << step;
    }
}

// ---- idle-skip equivalence ------------------------------------------

/**
 * The event-driven skip must be invisible: a pipeline driven by the
 * skip loop commits the same instructions at the same cycles with the
 * same stats as one ticked every cycle.
 */
void
expectSkipEquivalence(const std::string &scheme)
{
    CoreParams p = makeMachineConfig(2);
    applyScheme(p, scheme);

    auto w_tick = makeSpecWorkload("gzip");
    auto w_skip = makeSpecWorkload("gzip");
    Pipeline ticked(p, *w_tick);
    Pipeline skipped(p, *w_skip);

    constexpr std::uint64_t target = 3000;
    std::uint64_t guard = 0;
    while (ticked.committed() < target) {
        ticked.tick();
        ASSERT_LT(++guard, 10000000u) << "ticked pipeline wedged";
    }
    guard = 0;
    while (skipped.committed() < target) {
        const unsigned progress = skipped.tick();
        if (progress == 0 && skipped.committed() < target) {
            const Cycle wake = skipped.nextEventCycle();
            ASSERT_NE(wake, 0u) << "idle with no wake event";
            if (wake > skipped.now() + 1)
                skipped.skipIdleCycles(wake - skipped.now() - 1);
        }
        ASSERT_LT(++guard, 10000000u) << "skipped pipeline wedged";
    }

    EXPECT_EQ(ticked.now(), skipped.now()) << scheme;
    const PipelineStats &a = ticked.stats();
    const PipelineStats &b = skipped.stats();
    EXPECT_EQ(a.cycles.value(), b.cycles.value()) << scheme;
    EXPECT_EQ(a.committedInsts.value(), b.committedInsts.value());
    EXPECT_EQ(a.committedLoads.value(), b.committedLoads.value());
    EXPECT_EQ(a.committedStores.value(), b.committedStores.value());
    EXPECT_EQ(a.committedBranches.value(),
              b.committedBranches.value());
    EXPECT_EQ(a.dispatched.value(), b.dispatched.value());
    EXPECT_EQ(a.issued.value(), b.issued.value());
    EXPECT_EQ(a.branchMispredicts.value(),
              b.branchMispredicts.value());
    EXPECT_EQ(a.baselineReplays.value(), b.baselineReplays.value());
    EXPECT_EQ(a.dmdcReplays.value(), b.dmdcReplays.value());
    EXPECT_EQ(a.ageTableReplays.value(), b.ageTableReplays.value());
    EXPECT_EQ(a.loadRejections.value(), b.loadRejections.value());
    EXPECT_EQ(a.loadForwards.value(), b.loadForwards.value());
    EXPECT_EQ(a.speculativeLoads.value(), b.speculativeLoads.value());
    EXPECT_EQ(ticked.fetch().icacheStallCycles.value(),
              skipped.fetch().icacheStallCycles.value())
        << scheme;
    EXPECT_EQ(ticked.fetch().fetchedTotal.value(),
              skipped.fetch().fetchedTotal.value());
    const auto &act_a = ticked.lsq().activity();
    const auto &act_b = skipped.lsq().activity();
    EXPECT_EQ(act_a.lqSearches.value(), act_b.lqSearches.value());
    EXPECT_EQ(act_a.sqSearches.value(), act_b.sqSearches.value());
    if (const DmdcEngine *ea = ticked.lsq().dmdc()) {
        const DmdcEngine *eb = skipped.lsq().dmdc();
        ASSERT_NE(eb, nullptr);
        // checkingCycles is the one stat idle skipping touches
        // directly (skipIdleCycles forwards bulk cycles to the
        // policy), so it is the sharpest equivalence probe.
        EXPECT_EQ(ea->stats().checkingCycles.value(),
                  eb->stats().checkingCycles.value())
            << scheme;
    }
}

TEST(IdleSkipEquivalenceTest, Baseline)
{
    expectSkipEquivalence("baseline");
}

TEST(IdleSkipEquivalenceTest, Yla)
{
    expectSkipEquivalence("yla");
}

TEST(IdleSkipEquivalenceTest, DmdcGlobal)
{
    expectSkipEquivalence("dmdc-global");
}

} // namespace
} // namespace dmdc
