/**
 * @file
 * Tests of campaign sharding: shard-spec parsing, the deterministic
 * partition function, per-shard state-file naming, and the journal
 * merger — including the central guarantee that N shard processes'
 * journals merge into a file byte-identical to an uninterrupted
 * single-process campaign, and that a chaos-interrupted shard
 * converges on resume.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#include "sim/campaign_runner.hh"
#include "sim/campaign_shard.hh"
#include "sim/fault_injector.hh"

namespace dmdc
{
namespace
{

namespace fs = std::filesystem;

std::string
slurp(const fs::path &path)
{
    std::ifstream is(path);
    std::stringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

SimOptions
quickOptions(const std::string &bench, const std::string &scheme)
{
    SimOptions opt;
    opt.benchmark = bench;
    opt.scheme = scheme;
    opt.warmupInsts = 2000;
    opt.runInsts = 20000;
    return opt;
}

/** The small campaign the merge tests run: 3 benches x 2 schemes. */
std::vector<SimOptions>
smallCampaign()
{
    std::vector<SimOptions> runs;
    for (const char *bench : {"gzip", "swim", "mcf"}) {
        for (const char *scheme : {"baseline", "yla"})
            runs.push_back(quickOptions(bench, scheme));
    }
    return runs;
}

// ---- shard spec ------------------------------------------------------

TEST(ShardSpec, ParsesValidSpecs)
{
    ShardSpec spec;
    std::string err;
    ASSERT_TRUE(parseShardSpec("0/2", spec, err)) << err;
    EXPECT_EQ(spec.index, 0u);
    EXPECT_EQ(spec.count, 2u);
    EXPECT_TRUE(spec.active());
    EXPECT_EQ(shardSpecName(spec), "0/2");

    ASSERT_TRUE(parseShardSpec("7/8", spec, err)) << err;
    EXPECT_EQ(spec.index, 7u);
    EXPECT_EQ(spec.count, 8u);

    // 0/1 is legal and means "the whole campaign".
    ASSERT_TRUE(parseShardSpec("0/1", spec, err)) << err;
    EXPECT_FALSE(spec.active());
}

TEST(ShardSpec, RejectsMalformedSpecs)
{
    ShardSpec spec;
    std::string err;
    for (const char *bad : {"", "2", "/2", "0/", "2/2", "5/2", "a/2",
                            "0/b", "-1/2", "0/0", "1.5/2", "0/2/3",
                            "9999999/9999999"}) {
        EXPECT_FALSE(parseShardSpec(bad, spec, err)) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

TEST(ShardSpec, StatePathNaming)
{
    const ShardSpec spec{1, 4};
    EXPECT_EQ(shardStatePath("state.json", spec),
              "state.shard1of4.json");
    EXPECT_EQ(shardStatePath("out/campaign.state.json", spec),
              "out/campaign.state.shard1of4.json");
    EXPECT_EQ(shardStatePath("no_extension", spec),
              "no_extension.shard1of4");
    // A dot only in a directory component is not an extension.
    EXPECT_EQ(shardStatePath("out.d/state", spec),
              "out.d/state.shard1of4");
    // Inactive spec / empty path pass through untouched.
    EXPECT_EQ(shardStatePath("state.json", ShardSpec{0, 1}),
              "state.json");
    EXPECT_EQ(shardStatePath("", spec), "");
}

// ---- partition -------------------------------------------------------

TEST(ShardAssignment, DeterministicCompleteAndBalanced)
{
    std::vector<SimOptions> runs;
    for (const char *bench :
         {"gzip", "swim", "mcf", "art", "vpr", "gcc", "ammp",
          "crafty"}) {
        for (const char *scheme : {"baseline", "yla", "dmdc-global"})
            runs.push_back(quickOptions(bench, scheme));
    }

    for (const unsigned n : {2u, 3u, 8u}) {
        const std::vector<unsigned> a = shardAssignment(runs, n);
        ASSERT_EQ(a.size(), runs.size());
        // Pure function of the inputs.
        EXPECT_EQ(a, shardAssignment(runs, n));
        // Complete: every run owned, every index in range; with more
        // groups than shards every shard gets work.
        std::vector<std::size_t> perShard(n, 0);
        for (const unsigned s : a) {
            ASSERT_LT(s, n);
            ++perShard[s];
        }
        for (unsigned s = 0; s < n; ++s)
            EXPECT_GT(perShard[s], 0u) << "empty shard " << s << "/"
                                       << n;
        // Balanced: all runs cost the same here, so LPT must land
        // within one group of even.
        const std::size_t lo =
            *std::min_element(perShard.begin(), perShard.end());
        const std::size_t hi =
            *std::max_element(perShard.begin(), perShard.end());
        EXPECT_LE(hi - lo, 1u) << "imbalanced " << n << "-way split";
    }
}

TEST(ShardAssignment, EqualIdentitiesColocate)
{
    // table3-style campaign: the same (benchmark, scheme, config)
    // triple under different hidden knobs. All copies must land on
    // one shard or the merger's disjointness invariant breaks.
    std::vector<SimOptions> runs;
    for (const char *bench : {"gzip", "swim", "mcf", "art"}) {
        SimOptions a = quickOptions(bench, "dmdc-global");
        SimOptions b = a;
        b.safeLoads = false;
        SimOptions c = a;
        c.sqFilter = true;
        runs.push_back(a);
        runs.push_back(b);
        runs.push_back(c);
    }
    for (const unsigned n : {2u, 3u, 8u}) {
        const std::vector<unsigned> a = shardAssignment(runs, n);
        for (std::size_t i = 0; i < runs.size(); i += 3) {
            EXPECT_EQ(a[i], a[i + 1]);
            EXPECT_EQ(a[i], a[i + 2]);
        }
    }
}

TEST(ShardAssignment, SingleShardOwnsEverything)
{
    const std::vector<SimOptions> runs = smallCampaign();
    for (const unsigned owner : shardAssignment(runs, 1))
        EXPECT_EQ(owner, 0u);
}

// ---- sharded execution + merge ---------------------------------------

/**
 * Runs campaigns through the process-global journal; resets the
 * journal and fault injector around each test.
 */
class CampaignShard : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        scratch_ = fs::temp_directory_path() /
            ("dmdc_shard_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
        fs::remove_all(scratch_);
        fs::create_directories(scratch_);
        FaultInjector::global().configure({});
        setCampaignJournal("");
    }

    void
    TearDown() override
    {
        FaultInjector::global().configure({});
        setCampaignJournal("");
        fs::remove_all(scratch_);
    }

    /**
     * Execute @p runs as shard @p index of @p count — the in-process
     * equivalent of one `--shard=index/count --json=<returned path>`
     * process — and return the journal path.
     */
    fs::path
    runShard(const std::vector<SimOptions> &runs, unsigned index,
             unsigned count, const fs::path &cacheDir,
             const std::string &statePath = "", bool resume = false)
    {
        const fs::path journal =
            scratch_ / ("shard" + std::to_string(index) + "of" +
                        std::to_string(count) + ".json");
        setCampaignJournal(journal.string(), /*deterministic=*/true);
        CampaignConfig cfg;
        cfg.cacheDir = cacheDir.string();
        cfg.shard = ShardSpec{index, count};
        cfg.maxRetries = 0;
        cfg.statePath = statePath;
        cfg.resume = resume;
        CampaignRunner runner(cfg);
        (void)runner.runChecked(runs);
        flushCampaignJournal();
        setCampaignJournal("");
        return journal;
    }

    /** Serial single-process deterministic journal for @p runs. */
    std::string
    serialJournal(const std::vector<SimOptions> &runs,
                  const fs::path &cacheDir)
    {
        const fs::path path = scratch_ / "serial.json";
        setCampaignJournal(path.string(), /*deterministic=*/true);
        CampaignConfig cfg;
        cfg.cacheDir = cacheDir.string();
        CampaignRunner runner(cfg);
        EXPECT_TRUE(runner.runChecked(runs).allOk());
        flushCampaignJournal();
        setCampaignJournal("");
        return slurp(path);
    }

    fs::path scratch_;
};

TEST_F(CampaignShard, OutOfShardRunsAreNotExecuted)
{
    const std::vector<SimOptions> runs = smallCampaign();
    const std::vector<unsigned> owner = shardAssignment(runs, 2);

    setCampaignJournal((scratch_ / "s0.json").string(), true);
    CampaignConfig cfg;
    cfg.cacheDir = (scratch_ / "cache").string();
    cfg.shard = ShardSpec{0, 2};
    CampaignRunner runner(cfg);
    const CampaignResult cr = runner.runChecked(runs);
    flushCampaignJournal();

    std::size_t in_shard = 0;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const RunOutcome &oc = cr.outcomes[i];
        EXPECT_EQ(oc.shard, owner[i]);
        if (owner[i] == 0) {
            ++in_shard;
            EXPECT_TRUE(oc.ok());
            EXPECT_TRUE(oc.inShard());
            EXPECT_GT(cr.results[i].instructions, 0u);
            EXPECT_TRUE(cr.results[i].valid);
        } else {
            EXPECT_EQ(oc.status, RunStatus::OutOfShard);
            EXPECT_FALSE(oc.inShard());
            EXPECT_EQ(oc.attempts, 0u);
        }
    }
    EXPECT_EQ(runner.lastStats().simulated, in_shard);
    EXPECT_EQ(runner.lastStats().outOfShard, runs.size() - in_shard);
    // allOk() ignores out-of-shard runs: this slice fully succeeded.
    EXPECT_TRUE(cr.allOk());
    EXPECT_EQ(cr.degradedRuns(), 0u);

    // The journal holds only this shard's records, plus the header
    // the merger needs.
    ShardJournal parsed;
    std::string err;
    ASSERT_TRUE(
        loadShardJournal((scratch_ / "s0.json").string(), parsed, err))
        << err;
    EXPECT_TRUE(parsed.sharded);
    EXPECT_EQ(parsed.shardIndex, 0u);
    EXPECT_EQ(parsed.shardCount, 2u);
    EXPECT_EQ(parsed.runsTotal, runs.size());
    EXPECT_EQ(parsed.entries.size(), in_shard);
}

TEST_F(CampaignShard, MergedJournalsMatchSerialBitForBit)
{
    const std::vector<SimOptions> runs = smallCampaign();
    // One shared cache across the serial run and every sharded rerun:
    // exactly like N processes pointing --cache-dir at one directory.
    const fs::path cache = scratch_ / "cache";
    const std::string serial = serialJournal(runs, cache);
    ASSERT_FALSE(serial.empty());

    for (const unsigned n : {2u, 3u, 8u}) {
        std::vector<ShardJournal> shards(n);
        std::string err;
        for (unsigned i = 0; i < n; ++i) {
            const fs::path path = runShard(runs, i, n, cache);
            ASSERT_TRUE(loadShardJournal(path.string(), shards[i], err))
                << err;
        }
        ShardJournal merged;
        ASSERT_TRUE(mergeShardJournals(shards, merged, err))
            << n << "-way: " << err;
        std::ostringstream out;
        writeMergedJournal(out, merged);
        EXPECT_EQ(out.str(), serial) << n << "-way merge differs";
    }
}

TEST_F(CampaignShard, MergerRejectsBadShardSets)
{
    const std::vector<SimOptions> runs = smallCampaign();
    const fs::path cache = scratch_ / "cache";
    std::vector<ShardJournal> shards(2);
    std::string err;
    for (unsigned i = 0; i < 2; ++i) {
        const fs::path path = runShard(runs, i, 2, cache);
        ASSERT_TRUE(loadShardJournal(path.string(), shards[i], err))
            << err;
    }
    ShardJournal merged;

    // Incomplete set: the message must name the absent slice, not
    // just count journals.
    EXPECT_FALSE(mergeShardJournals({shards[0]}, merged, err));
    EXPECT_NE(err.find("incomplete"), std::string::npos) << err;
    EXPECT_NE(err.find("missing shard 1/2"), std::string::npos) << err;

    // Duplicate shard, named by its coordinates.
    EXPECT_FALSE(
        mergeShardJournals({shards[0], shards[0]}, merged, err));
    EXPECT_NE(err.find("duplicate"), std::string::npos) << err;
    EXPECT_NE(err.find("shard 0/2"), std::string::npos) << err;

    // Foreign campaign fingerprint.
    {
        std::vector<ShardJournal> bad = shards;
        bad[1].campaign = "feedfacefeedface";
        EXPECT_FALSE(mergeShardJournals(bad, merged, err));
        EXPECT_NE(err.find("foreign campaign"), std::string::npos)
            << err;
    }

    // Different build commit.
    {
        std::vector<ShardJournal> bad = shards;
        bad[1].commit = "0000000";
        EXPECT_FALSE(mergeShardJournals(bad, merged, err));
        EXPECT_NE(err.find("different build"), std::string::npos)
            << err;
    }

    // Overlapping slices: shard 1 also claims one of shard 0's runs.
    {
        std::vector<ShardJournal> bad = shards;
        ASSERT_FALSE(bad[0].entries.empty());
        bad[1].entries.push_back(bad[0].entries.front());
        EXPECT_FALSE(mergeShardJournals(bad, merged, err));
        EXPECT_NE(err.find("overlapping"), std::string::npos) << err;
    }

    // Lost records: the union no longer covers the campaign, and the
    // per-shard breakdown fingers the short slice (a crashed worker's
    // partial journal shows up exactly like this).
    {
        std::vector<ShardJournal> bad = shards;
        ASSERT_FALSE(bad[1].entries.empty());
        bad[1].entries.pop_back();
        EXPECT_FALSE(mergeShardJournals(bad, merged, err));
        EXPECT_NE(err.find("incomplete or over-complete"),
                  std::string::npos)
            << err;
        EXPECT_NE(err.find("shard 0: " +
                           std::to_string(bad[0].entries.size())),
                  std::string::npos)
            << err;
        EXPECT_NE(err.find("shard 1: " +
                           std::to_string(bad[1].entries.size())),
                  std::string::npos)
            << err;
    }

    // A serial (unsharded) journal is not mergeable input.
    {
        const std::string serial = serialJournal(runs, cache);
        ShardJournal plain;
        ASSERT_TRUE(parseShardJournal(serial, plain, err)) << err;
        EXPECT_FALSE(
            mergeShardJournals({shards[0], plain}, merged, err));
        EXPECT_NE(err.find("no shard header"), std::string::npos)
            << err;
    }
}

TEST_F(CampaignShard, ChaosShardConvergesOnResume)
{
    const std::vector<SimOptions> runs = smallCampaign();
    const fs::path cache = scratch_ / "cache"; // cold: faults can fire
    const std::string state = (scratch_ / "state.json").string();

    // Pass 1: both shards run under injected chaos with no retries;
    // each writes its own checkpoint manifest.
    FaultSpec spec;
    spec.runThrowP = 0.5;
    spec.seed = 11;
    FaultInjector::global().configure(spec);
    std::size_t failures = 0;
    for (unsigned i = 0; i < 2; ++i) {
        setCampaignJournal("");
        CampaignConfig cfg;
        cfg.cacheDir = cache.string();
        cfg.shard = ShardSpec{i, 2};
        cfg.maxRetries = 0;
        cfg.statePath = state;
        CampaignRunner runner(cfg);
        failures += runner.runChecked(runs).degradedRuns();
    }
    ASSERT_GT(failures, 0u)
        << "chaos seed produced no failures; pick another seed";
    FaultInjector::global().configure({});

    // Shard manifests must not collide on one path.
    EXPECT_TRUE(fs::exists(
        shardStatePath(state, ShardSpec{0, 2})));
    EXPECT_TRUE(fs::exists(
        shardStatePath(state, ShardSpec{1, 2})));

    // Pass 2: resume both shards with faults off. Survivors come from
    // the shared cache, casualties re-execute; the merged journal is
    // byte-identical to an undisturbed serial campaign.
    std::vector<ShardJournal> shards(2);
    std::string err;
    for (unsigned i = 0; i < 2; ++i) {
        const fs::path path =
            runShard(runs, i, 2, cache, state, /*resume=*/true);
        ASSERT_TRUE(loadShardJournal(path.string(), shards[i], err))
            << err;
    }
    ShardJournal merged;
    ASSERT_TRUE(mergeShardJournals(shards, merged, err)) << err;
    for (const JournalEntry &e : merged.entries)
        EXPECT_EQ(e.status, RunStatus::Ok) << e.benchmark;

    const std::string serial = serialJournal(runs, cache);
    std::ostringstream out;
    writeMergedJournal(out, merged);
    EXPECT_EQ(out.str(), serial);
}

} // namespace
} // namespace dmdc
