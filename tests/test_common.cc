/**
 * @file
 * Unit tests for the common infrastructure: bit utilities, RNG,
 * statistics and logging counters.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include <unistd.h>

#include "common/append_log.hh"
#include "common/atomic_file.hh"
#include "common/bitutils.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace dmdc
{
namespace
{

TEST(BitUtils, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
}

TEST(BitUtils, FloorCeilLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(BitUtils, BitsAndMask)
{
    EXPECT_EQ(bits(0xff00, 15, 8), 0xffull);
    EXPECT_EQ(bits(0xabcd, 3, 0), 0xdull);
    EXPECT_EQ(mask(0), 0ull);
    EXPECT_EQ(mask(8), 0xffull);
    EXPECT_EQ(mask(64), ~0ull);
}

TEST(BitUtils, FoldXorCoversWidth)
{
    // Folding must stay within the requested width.
    for (unsigned width = 3; width <= 16; ++width) {
        for (std::uint64_t v : {0ull, 1ull, 0xdeadbeefcafeull,
                                ~0ull}) {
            EXPECT_LT(foldXor(v, width), 1ull << width);
        }
    }
    // Values differing only above the fold width still hash
    // differently in general.
    EXPECT_NE(foldXor(0x1000, 8), foldXor(0x2000, 8));
}

TEST(RangesOverlap, Basic)
{
    EXPECT_TRUE(rangesOverlap(0, 4, 0, 4));
    EXPECT_TRUE(rangesOverlap(0, 8, 4, 4));
    EXPECT_TRUE(rangesOverlap(4, 4, 0, 8));
    EXPECT_FALSE(rangesOverlap(0, 4, 4, 4));
    EXPECT_FALSE(rangesOverlap(8, 8, 0, 8));
    EXPECT_TRUE(rangesOverlap(7, 1, 0, 8));
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, RangeBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.range(17), 17u);
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.between(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, UniformIsInUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, GeometricMeanApproximation)
{
    Rng rng(13);
    double sum = 0;
    constexpr int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.geometric(8.0);
    EXPECT_NEAR(sum / n, 8.0, 1.0);
    // Mean <= 1 degenerates to the constant 1.
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.geometric(0.5), 1u);
}

TEST(Rng, MixHashIsStable)
{
    EXPECT_EQ(mixHash(12345), mixHash(12345));
    EXPECT_NE(mixHash(12345), mixHash(12346));
}

TEST(Stats, CounterBasics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 10;
    EXPECT_EQ(c.value(), 11u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AverageTracksMinMaxMean)
{
    Average a;
    a.sample(2.0);
    a.sample(4.0);
    a.sample(9.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Stats, HistogramBuckets)
{
    Histogram h(4, 10.0);
    h.sample(0.0);
    h.sample(9.9);
    h.sample(10.0);
    h.sample(35.0);
    h.sample(1000.0);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.count(), 5u);
}

TEST(Stats, GroupResetAndDump)
{
    StatGroup root("root");
    StatGroup child("child");
    Counter c;
    Average a;
    root.regCounter("events", &c, "test counter");
    child.regAverage("metric", &a);
    root.addChild(&child);

    c += 5;
    a.sample(1.0);
    root.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(a.count(), 0u);

    c += 3;
    std::ostringstream os;
    root.dump(os);
    EXPECT_NE(os.str().find("events"), std::string::npos);
    EXPECT_NE(os.str().find("metric"), std::string::npos);

    EXPECT_EQ(root.findCounter("events"), &c);
    EXPECT_EQ(root.findCounter("nope"), nullptr);
}

TEST(Logging, WarnCountsMessages)
{
    const auto before = loggedMessageCount(LogLevel::Warn);
    warn("test warning %d", 1);
    EXPECT_EQ(loggedMessageCount(LogLevel::Warn), before + 1);
}

// ---- durability layer (atomic_file / append_log) ---------------------

/** Restores the durable-sync knob however the test exits. */
class DurabilityTest : public ::testing::Test
{
  protected:
    void SetUp() override { was_ = durableSyncEnabled(); }
    void TearDown() override { setDurableSync(was_); }

    static std::string
    tmpPath(const char *leaf)
    {
        return (std::filesystem::temp_directory_path() /
                (std::string("dmdc_durability_") + leaf +
                 std::to_string(::getpid())))
            .string();
    }

  private:
    bool was_ = true;
};

TEST_F(DurabilityTest, AtomicWriteFsyncsFileAndDirectory)
{
    const std::string path = tmpPath("atomic");
    setDurableSync(true);
    const std::uint64_t before = durableSyncCount();
    ASSERT_TRUE(writeFileAtomic(path, "payload"));
    // One fsync for the temp file's data, one for the parent
    // directory's rename entry.
    EXPECT_GE(durableSyncCount(), before + 2);

    std::ifstream is(path);
    std::string content;
    std::getline(is, content);
    EXPECT_EQ(content, "payload");
    std::filesystem::remove(path);
}

TEST_F(DurabilityTest, AppendLogFsyncsTheRecord)
{
    const std::string log = tmpPath("log");
    const std::string lock = log + ".lock";
    setDurableSync(true);
    const std::uint64_t before = durableSyncCount();
    ASSERT_TRUE(appendLogLine(log, lock, "record-1\n"));
    EXPECT_GE(durableSyncCount(), before + 1);
    std::filesystem::remove(log);
    std::filesystem::remove(lock);
}

TEST_F(DurabilityTest, OptOutSkipsEveryFsync)
{
    const std::string path = tmpPath("optout");
    const std::string log = tmpPath("optout_log");
    const std::string lock = log + ".lock";
    setDurableSync(false);
    const std::uint64_t before = durableSyncCount();
    ASSERT_TRUE(writeFileAtomic(path, "fast"));
    ASSERT_TRUE(appendLogLine(log, lock, "fast-record\n"));
    // Writes still land and renames still publish atomically; only
    // the fsyncs are skipped.
    EXPECT_EQ(durableSyncCount(), before);
    std::ifstream is(path);
    std::string content;
    std::getline(is, content);
    EXPECT_EQ(content, "fast");
    std::filesystem::remove(path);
    std::filesystem::remove(log);
    std::filesystem::remove(lock);
}

} // namespace
} // namespace dmdc
