/**
 * @file
 * Conformance suite for the dependence-policy layer: every policy in
 * the registry — including out-of-tree additions — must satisfy the
 * same contracts. Tests are parameterized over the registry, so
 * registering a new scheme automatically subjects it to the suite.
 *
 * Contracts checked:
 *  - construction/attachment through the registry (by name and alias)
 *  - ghost-violation safety: a full run on violation-prone workloads
 *    completes without tripping the built-in escape/filter panics
 *  - determinism: identical options give bit-identical results
 *  - branch-recovery idempotence: recovering the same branch twice is
 *    observably equivalent to recovering it once
 *  - stats sanity: fractions in [0,1], energy terms non-negative
 *  - registry error paths: unknown names die with the available list
 */

#include <gtest/gtest.h>

#include "core/inst.hh"
#include "lsq/policy/registry.hh"
#include "sim/simulator.hh"

namespace dmdc
{
namespace
{

std::vector<std::string>
allSchemes()
{
    return DependencePolicyRegistry::instance().names();
}

class PolicyConformance : public ::testing::TestWithParam<std::string>
{
  protected:
    SimOptions
    quickOptions(const char *bench) const
    {
        SimOptions opt;
        opt.benchmark = bench;
        opt.scheme = GetParam();
        opt.warmupInsts = 5000;
        opt.runInsts = 30000;
        return opt;
    }
};

TEST_P(PolicyConformance, CreatesThroughRegistryWithCorrectName)
{
    LsqParams params;
    params.policy = GetParam();
    LsqUnit lsq(params);
    EXPECT_EQ(lsq.policy().name(), GetParam());
}

TEST_P(PolicyConformance, GhostViolationSafetyOnVolatileWorkloads)
{
    // gcc/mcf produce true memory-order violations; the pipeline
    // panics if one escapes the scheme, and the filtering policies
    // panic if they filter a store with a real violation. Completing
    // the run IS the safety check.
    for (const char *bench : {"gcc", "mcf"}) {
        const SimResult r = runSimulation(quickOptions(bench));
        EXPECT_GE(r.instructions, 30000u) << bench;
        EXPECT_GT(r.ipc, 0.05) << bench;
        EXPECT_LT(r.ipc, 8.0) << bench;
    }
}

TEST_P(PolicyConformance, DeterministicAcrossRuns)
{
    const SimResult a = runSimulation(quickOptions("vortex"));
    const SimResult b = runSimulation(quickOptions("vortex"));
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.lqSearches, b.lqSearches);
    EXPECT_EQ(a.lqSearchesFiltered, b.lqSearchesFiltered);
    EXPECT_EQ(a.trueViolations, b.trueViolations);
    EXPECT_EQ(a.ipc, b.ipc);   // bit-identical, not just close
}

TEST_P(PolicyConformance, BranchRecoveryIsIdempotent)
{
    // Drive two identical LSQ units through the same sequence; one
    // recovers the branch once, the other three times. Their
    // observable store-resolve behaviour must match.
    auto drive = [this](unsigned recoveries) {
        LsqParams params;
        params.policy = GetParam();
        LsqUnit lsq(params);

        std::vector<std::unique_ptr<DynInst>> insts;
        auto make = [&insts](SeqNum seq, OpClass cls, Addr addr) {
            auto inst = std::make_unique<DynInst>();
            inst->seq = seq;
            inst->op.cls = cls;
            inst->op.effAddr = addr;
            inst->op.memSize = 8;
            insts.push_back(std::move(inst));
            return insts.back().get();
        };

        // A store with an unresolved address, then a younger load
        // that issues past it (the premature-load pattern).
        DynInst *store = make(10, OpClass::Store, 0x1000);
        lsq.dispatchStore(store);
        DynInst *wrong_path = make(30, OpClass::Load, 0x1000);
        lsq.dispatchLoad(wrong_path);
        lsq.loadComplete(wrong_path, 1, invalidSeqNum);

        // A mispredicted branch at seq 20 squashes the load...
        lsq.squashFrom(21);
        for (unsigned i = 0; i < recoveries; ++i)
            lsq.branchRecovery(20);

        // ...so the store must now resolve clean.
        store->sqAddrReady = true;
        const StoreResolveResult r = lsq.storeResolve(store, 5);
        return std::make_pair(r.violatingLoad == nullptr,
                              r.replayAllYounger);
    };
    EXPECT_EQ(drive(1), drive(3));
}

TEST_P(PolicyConformance, StatsSane)
{
    const SimResult r = runSimulation(quickOptions("gzip"));
    EXPECT_GE(r.safeStoreFrac, 0.0);
    EXPECT_LE(r.safeStoreFrac, 1.0);
    EXPECT_GE(r.safeLoadFrac, 0.0);
    EXPECT_LE(r.safeLoadFrac, 1.0);
    EXPECT_GE(r.checkingCycleFrac, 0.0);
    EXPECT_LE(r.checkingCycleFrac, 1.0);
    EXPECT_GE(r.energy.lqCam, 0.0);
    EXPECT_GE(r.energy.yla, 0.0);
    EXPECT_GE(r.energy.checking, 0.0);
    EXPECT_GT(r.energy.total(), 0.0);
    EXPECT_GT(r.energy.lqFunction(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredSchemes, PolicyConformance,
    ::testing::ValuesIn(allSchemes()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

// ---- registry error paths ----

TEST(PolicyRegistry, UnknownSchemeDiesWithAvailableList)
{
    LsqParams params;
    params.policy = "no-such-scheme";
    EXPECT_EXIT({ LsqUnit lsq(params); },
                ::testing::ExitedWithCode(1),
                "unknown dependence-checking scheme 'no-such-scheme'"
                ".*available schemes.*baseline.*bloom-yla");
}

TEST(PolicyRegistry, UnknownSchemeInApplySchemeDies)
{
    EXPECT_EXIT(
        {
            CoreParams p = makeMachineConfig(2);
            applyScheme(p, "typo");
        },
        ::testing::ExitedWithCode(1), "available schemes");
}

TEST(PolicyRegistry, FindAndLookupAgree)
{
    const DependencePolicyRegistry &reg =
        DependencePolicyRegistry::instance();
    EXPECT_EQ(reg.find("no-such-scheme"), nullptr);
    const SchemeInfo *global = reg.find("dmdc-global");
    ASSERT_NE(global, nullptr);
    EXPECT_EQ(reg.find("dmdc"), global);   // alias
    for (const std::string &name : reg.names())
        EXPECT_EQ(reg.lookup(name).name, name);
}

TEST(PolicyRegistry, VersionStringCoversEveryScheme)
{
    const DependencePolicyRegistry &reg =
        DependencePolicyRegistry::instance();
    const std::string v = reg.versionString();
    EXPECT_NE(v.find("policy-api-"), std::string::npos);
    for (const std::string &name : reg.names())
        EXPECT_NE(v.find(name + "@"), std::string::npos) << name;
}

TEST(PolicyRegistry, BloomYlaIsRegistered)
{
    // The new scheme must be reachable purely through the registry.
    const SchemeInfo *info =
        DependencePolicyRegistry::instance().find("bloom-yla");
    ASSERT_NE(info, nullptr);
    EXPECT_TRUE(info->hasFilterStats);
}

} // namespace
} // namespace dmdc
