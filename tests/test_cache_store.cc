/**
 * @file
 * Tests of the cache storage engine (sim/cache_store.hh): index-log
 * accounting (running byte totals, no per-operation directory scans),
 * LRU eviction, index rebuild and compaction, and — the part that
 * cannot be faked in-process — two real processes sharing one store:
 * simultaneous same-key writers and a reader racing a compaction must
 * lose no entries and quarantine nothing that isn't corrupt.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include <sys/wait.h>
#include <unistd.h>

#include "sim/cache_store.hh"

namespace dmdc
{
namespace
{

namespace fs = std::filesystem;

std::size_t
countEntries(const std::string &dir)
{
    std::size_t n = 0;
    if (!fs::exists(dir))
        return 0;
    for (const auto &e : fs::directory_iterator(dir)) {
        if (e.path().extension() == ".json")
            ++n;
    }
    return n;
}

CacheStoreConfig
storeConfig(const std::string &dir, std::uint64_t maxBytes = 0)
{
    CacheStoreConfig cfg;
    cfg.dir = dir;
    cfg.maxBytes = maxBytes;
    return cfg;
}

class CacheStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::string("cache_store_test_") +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()->name();
        fs::remove_all(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string dir_;
};

TEST_F(CacheStoreTest, StoreLoadRoundTrip)
{
    CacheStore store(storeConfig(dir_));
    const std::string payload = "{\"v\":1,\"data\":\"hello\"}";
    store.store("key-a", payload);

    std::string out;
    EXPECT_EQ(store.load("key-a", out), CacheStore::Load::Hit);
    EXPECT_EQ(out, payload);
    EXPECT_EQ(store.load("key-b", out), CacheStore::Load::Miss);
    EXPECT_EQ(store.stats().hits, 1u);
    EXPECT_EQ(store.stats().misses, 1u);
    EXPECT_EQ(store.liveEntries(), 1u);
}

TEST_F(CacheStoreTest, RunningByteTotalMatchesDirectory)
{
    CacheStore store(storeConfig(dir_));
    for (int i = 0; i < 5; ++i)
        store.store("key-" + std::to_string(i),
                    std::string(100 + i, 'x'));

    std::uintmax_t on_disk = 0;
    for (const auto &e : fs::directory_iterator(dir_)) {
        if (e.path().extension() == ".json")
            on_disk += fs::file_size(e.path());
    }
    EXPECT_EQ(store.liveBytes(), on_disk);
    EXPECT_EQ(store.liveEntries(), 5u);
}

TEST_F(CacheStoreTest, EvictionUsesIndexNotDirectoryScans)
{
    CacheStore store(storeConfig(dir_, /*maxBytes=*/1));
    for (int i = 0; i < 4; ++i)
        store.store("key-" + std::to_string(i),
                    std::string(64, 'p'));

    // A 1-byte cap can hold nothing: every store evicts eagerly and
    // the running totals must agree with the (empty) directory.
    EXPECT_EQ(countEntries(dir_), 0u);
    EXPECT_EQ(store.liveBytes(), 0u);
    EXPECT_GE(store.stats().evicted, 3u);
}

TEST_F(CacheStoreTest, LruEvictsOldestFirst)
{
    CacheStore store(storeConfig(dir_));
    store.store("old", std::string(64, 'a'));
    store.store("mid", std::string(64, 'b'));
    store.store("new", std::string(64, 'c'));

    // Touch "old" so "mid" becomes the least recently used entry.
    // Touch records are only appended under a byte cap, so rebuild a
    // capped store over the same directory first. Each entry file is
    // 107 bytes (43-byte CRC header + 64-byte payload); a 250-byte
    // cap holds two of the three.
    CacheStore capped(storeConfig(dir_, /*maxBytes=*/250));
    std::string out;
    EXPECT_EQ(capped.load("old", out), CacheStore::Load::Hit);
    capped.evictToCap();

    EXPECT_EQ(capped.load("old", out), CacheStore::Load::Hit);
    EXPECT_EQ(capped.load("mid", out), CacheStore::Load::Miss);
}

TEST_F(CacheStoreTest, IndexRebuiltAfterDeletion)
{
    {
        CacheStore store(storeConfig(dir_));
        store.store("key-a", "payload-a");
        store.store("key-b", "payload-b");
    }
    fs::remove(fs::path(dir_) / "index.log");

    CacheStore fresh(storeConfig(dir_));
    std::string out;
    EXPECT_EQ(fresh.load("key-a", out), CacheStore::Load::Hit);
    EXPECT_EQ(out, "payload-a");
    EXPECT_EQ(fresh.liveEntries(), 2u);
    EXPECT_EQ(fresh.stats().indexRebuilds, 1u);
}

TEST_F(CacheStoreTest, CompactionPreservesEntries)
{
    CacheStore store(storeConfig(dir_));
    for (int i = 0; i < 10; ++i)
        store.store("key-" + std::to_string(i),
                    "payload-" + std::to_string(i));
    const auto before = fs::file_size(fs::path(dir_) / "index.log");
    ASSERT_TRUE(store.compact());
    EXPECT_LE(fs::file_size(fs::path(dir_) / "index.log"), before);

    CacheStore fresh(storeConfig(dir_));
    EXPECT_EQ(fresh.liveEntries(), 10u);
    std::string out;
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(fresh.load("key-" + std::to_string(i), out),
                  CacheStore::Load::Hit);
        EXPECT_EQ(out, "payload-" + std::to_string(i));
    }
}

TEST_F(CacheStoreTest, SiblingInstanceSeesStores)
{
    // Two in-process instances model two processes politely taking
    // turns: writes through one must become visible to the other via
    // the index log, with no directory rescans.
    CacheStore a(storeConfig(dir_));
    CacheStore b(storeConfig(dir_));
    a.store("key-a", "payload-a");

    std::string out;
    EXPECT_EQ(b.load("key-a", out), CacheStore::Load::Hit);
    EXPECT_EQ(out, "payload-a");
    b.store("key-b", "payload-b");
    EXPECT_EQ(a.load("key-b", out), CacheStore::Load::Hit);
    EXPECT_EQ(a.liveEntries(), 2u);
    EXPECT_EQ(b.liveEntries(), 2u);
}

TEST_F(CacheStoreTest, DamagedEntryQuarantined)
{
    CacheStore store(storeConfig(dir_));
    store.store("key-a", "{\"v\":1,\"data\":\"abcdefgh\"}");

    // Damage the entry in place (flip payload bytes, keep the size).
    fs::path victim;
    for (const auto &e : fs::directory_iterator(dir_)) {
        if (e.path().extension() == ".json")
            victim = e.path();
    }
    ASSERT_FALSE(victim.empty());
    std::fstream f(victim,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-4, std::ios::end);
    f.write("!!!!", 4);
    f.close();

    CacheStore fresh(storeConfig(dir_));
    std::string out;
    EXPECT_EQ(fresh.load("key-a", out), CacheStore::Load::Corrupt);
    EXPECT_EQ(fresh.stats().quarantined, 1u);
    EXPECT_EQ(countEntries(dir_), 0u);
    EXPECT_TRUE(fs::exists(fs::path(dir_) / "quarantine"));
    // Quarantined means forgotten: the next probe is a clean miss.
    EXPECT_EQ(fresh.load("key-a", out), CacheStore::Load::Miss);
}

// ---- real multi-process concurrency ----------------------------------

/** Run @p child in a forked process; return its exit status (-1 on
 *  infrastructure failure). The child must _exit(), never return
 *  through gtest. */
template <typename Fn>
int
runForked(Fn child)
{
    const pid_t pid = fork();
    if (pid < 0)
        return -1;
    if (pid == 0)
        child(); // must _exit()
    int status = 0;
    if (waitpid(pid, &status, 0) != pid)
        return -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST_F(CacheStoreTest, TwoProcessSameKeyWriters)
{
    // Parent and child both hammer the same keys with identical
    // payloads (the only legal concurrent-writer case: cache entries
    // are deterministic functions of their key). No load on either
    // side may ever see a torn entry, and nothing may be quarantined.
    const std::string dir = dir_;
    constexpr int kIters = 60;
    auto payloadOf = [](int i) {
        return "{\"v\":1,\"data\":\"" + std::string(20 + i % 7, 'd') +
               "\"}";
    };
    auto hammer = [&](CacheStore &store) -> int {
        std::string out;
        for (int i = 0; i < kIters; ++i) {
            const std::string key = "key-" + std::to_string(i % 3);
            const std::string payload = payloadOf(i % 3);
            store.store(key, payload);
            const CacheStore::Load r = store.load(key, out);
            if (r == CacheStore::Load::Corrupt)
                return 2;
            if (r == CacheStore::Load::Hit && out != payload)
                return 3;
        }
        return store.stats().quarantined == 0 ? 0 : 4;
    };

    const int child_status = runForked([&] {
        CacheStore store(storeConfig(dir));
        _exit(hammer(store));
    });
    CacheStore store(storeConfig(dir));
    const int parent_status = hammer(store);

    EXPECT_EQ(child_status, 0);
    EXPECT_EQ(parent_status, 0);

    CacheStore fresh(storeConfig(dir));
    std::string out;
    for (int k = 0; k < 3; ++k) {
        EXPECT_EQ(fresh.load("key-" + std::to_string(k), out),
                  CacheStore::Load::Hit)
            << "entry " << k << " lost";
        EXPECT_EQ(out, payloadOf(k));
    }
    EXPECT_EQ(fresh.stats().quarantined, 0u);
}

TEST_F(CacheStoreTest, ReaderSurvivesConcurrentCompaction)
{
    // Child compacts the index in a loop while the parent keeps
    // storing and loading: every key must stay readable throughout
    // (never Corrupt, and at the end, no entry lost).
    const std::string dir = dir_;
    constexpr int kKeys = 16;
    auto keyOf = [](int i) { return "key-" + std::to_string(i); };
    auto payloadOf = [](int i) {
        return "payload-" + std::to_string(i);
    };
    {
        CacheStore store(storeConfig(dir));
        for (int i = 0; i < kKeys; ++i)
            store.store(keyOf(i), payloadOf(i));
    }

    const int child_status = runForked([&] {
        CacheStore store(storeConfig(dir));
        std::string out;
        for (int iter = 0; iter < 40; ++iter) {
            store.compact();
            for (int i = 0; i < kKeys; ++i) {
                if (store.load(keyOf(i), out) ==
                    CacheStore::Load::Corrupt)
                    _exit(2);
            }
        }
        _exit(0);
    });

    CacheStore store(storeConfig(dir));
    std::string out;
    for (int iter = 0; iter < 40; ++iter) {
        store.store(keyOf(iter % kKeys), payloadOf(iter % kKeys));
        for (int i = 0; i < kKeys; ++i) {
            EXPECT_NE(store.load(keyOf(i), out),
                      CacheStore::Load::Corrupt);
        }
    }
    EXPECT_EQ(child_status, 0);

    CacheStore fresh(storeConfig(dir));
    EXPECT_EQ(fresh.liveEntries(),
              static_cast<std::size_t>(kKeys));
    for (int i = 0; i < kKeys; ++i) {
        EXPECT_EQ(fresh.load(keyOf(i), out), CacheStore::Load::Hit)
            << "entry " << i << " lost";
        EXPECT_EQ(out, payloadOf(i));
    }
    EXPECT_EQ(fresh.stats().quarantined, 0u);
}

} // namespace
} // namespace dmdc
