/**
 * @file
 * Unit tests for the store queue and load queue: forwarding, rejection,
 * partial matches, violation search, squash behaviour.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "lsq/load_queue.hh"
#include "lsq/store_queue.hh"

namespace dmdc
{
namespace
{

/** Test fixture building DynInsts by hand. */
class LsqQueueTest : public ::testing::Test
{
  protected:
    DynInst *
    makeStore(SeqNum seq, Addr addr = invalidAddr, unsigned size = 8,
              bool addr_ready = false, bool data_ready = false)
    {
        auto inst = std::make_unique<DynInst>();
        inst->seq = seq;
        inst->op.cls = OpClass::Store;
        inst->op.effAddr = addr;
        inst->op.memSize = static_cast<std::uint8_t>(size);
        inst->sqAddrReady = addr_ready;
        inst->sqDataReady = data_ready;
        insts.push_back(std::move(inst));
        return insts.back().get();
    }

    DynInst *
    makeLoad(SeqNum seq, Addr addr, unsigned size = 8,
             bool issued = false, SeqNum fwd = invalidSeqNum)
    {
        auto inst = std::make_unique<DynInst>();
        inst->seq = seq;
        inst->op.cls = OpClass::Load;
        inst->op.effAddr = addr;
        inst->op.memSize = static_cast<std::uint8_t>(size);
        inst->loadIssued = issued;
        inst->forwardedFrom = fwd;
        insts.push_back(std::move(inst));
        return insts.back().get();
    }

    std::vector<std::unique_ptr<DynInst>> insts;
};

TEST_F(LsqQueueTest, ForwardFromYoungestMatchingOlderStore)
{
    StoreQueue sq(8);
    DynInst *s1 = makeStore(10, 0x1000, 8, true, true);
    DynInst *s2 = makeStore(20, 0x1000, 8, true, true);
    sq.allocate(s1);
    sq.allocate(s2);

    SqCheckResult r = sq.checkLoad(30, 0x1000, 8);
    EXPECT_EQ(r.outcome, SqCheck::Forward);
    EXPECT_EQ(r.producer, s2);   // youngest older match wins
}

TEST_F(LsqQueueTest, RejectWhenDataNotReady)
{
    StoreQueue sq(8);
    sq.allocate(makeStore(10, 0x1000, 8, true, false));
    SqCheckResult r = sq.checkLoad(30, 0x1000, 8);
    EXPECT_EQ(r.outcome, SqCheck::Reject);
}

TEST_F(LsqQueueTest, RejectOnPartialOverlap)
{
    StoreQueue sq(8);
    // 4-byte store at 0x1004 (data ready); 8-byte load at 0x1000
    // overlaps but is not contained.
    sq.allocate(makeStore(10, 0x1004, 4, true, true));
    SqCheckResult r = sq.checkLoad(30, 0x1000, 8);
    EXPECT_EQ(r.outcome, SqCheck::Reject);
}

TEST_F(LsqQueueTest, ContainedNarrowLoadForwards)
{
    StoreQueue sq(8);
    DynInst *s = makeStore(10, 0x1000, 8, true, true);
    sq.allocate(s);
    SqCheckResult r = sq.checkLoad(30, 0x1004, 4);
    EXPECT_EQ(r.outcome, SqCheck::Forward);
    EXPECT_EQ(r.producer, s);
}

TEST_F(LsqQueueTest, UnresolvedOlderStoreFlagsSpeculation)
{
    StoreQueue sq(8);
    sq.allocate(makeStore(10));   // unresolved address
    SqCheckResult r = sq.checkLoad(30, 0x2000, 8);
    EXPECT_EQ(r.outcome, SqCheck::NoMatch);
    EXPECT_TRUE(r.sawUnresolvedOlder);
    EXPECT_FALSE(sq.allOlderResolved(30));
}

TEST_F(LsqQueueTest, YoungerStoresDoNotAffectLoad)
{
    StoreQueue sq(8);
    sq.allocate(makeStore(40, 0x3000, 8, true, true));
    SqCheckResult r = sq.checkLoad(30, 0x3000, 8);
    EXPECT_EQ(r.outcome, SqCheck::NoMatch);
    EXPECT_FALSE(r.sawUnresolvedOlder);
    EXPECT_TRUE(sq.allOlderResolved(30));
}

TEST_F(LsqQueueTest, OldestStoreSeqForSec3Filter)
{
    StoreQueue sq(8);
    EXPECT_EQ(sq.oldestStoreSeq(), invalidSeqNum);
    sq.allocate(makeStore(10, 0x1000, 8, true, true));
    sq.allocate(makeStore(20, 0x2000, 8, true, true));
    EXPECT_EQ(sq.oldestStoreSeq(), 10u);
}

TEST_F(LsqQueueTest, SquashRemovesYoungSuffix)
{
    StoreQueue sq(8);
    DynInst *s1 = makeStore(10, 0x1000, 8, true, true);
    sq.allocate(s1);
    sq.allocate(makeStore(20, 0x1000, 8, true, true));
    sq.allocate(makeStore(30, 0x1000, 8, true, true));
    sq.squashFrom(20);
    EXPECT_EQ(sq.size(), 1u);
    SqCheckResult r = sq.checkLoad(40, 0x1000, 8);
    EXPECT_EQ(r.producer, s1);
}

TEST_F(LsqQueueTest, ReleaseHeadInOrder)
{
    StoreQueue sq(4);
    DynInst *s1 = makeStore(10, 0x1000, 8, true, true);
    DynInst *s2 = makeStore(20, 0x2000, 8, true, true);
    sq.allocate(s1);
    sq.allocate(s2);
    sq.releaseHead(s1);
    EXPECT_EQ(sq.oldestStoreSeq(), 20u);
}

// ---------------------------------------------------------------

TEST_F(LsqQueueTest, ViolationFindsPrematureYoungerLoad)
{
    LoadQueue lq(8);
    DynInst *premature = makeLoad(30, 0x1000, 8, true);
    lq.allocate(premature);
    EXPECT_EQ(lq.searchViolation(10, 0x1000, 8), premature);
}

TEST_F(LsqQueueTest, NoViolationForUnissuedLoad)
{
    LoadQueue lq(8);
    lq.allocate(makeLoad(30, 0x1000, 8, false));
    EXPECT_EQ(lq.searchViolation(10, 0x1000, 8), nullptr);
}

TEST_F(LsqQueueTest, NoViolationForOlderLoad)
{
    LoadQueue lq(8);
    lq.allocate(makeLoad(5, 0x1000, 8, true));
    EXPECT_EQ(lq.searchViolation(10, 0x1000, 8), nullptr);
}

TEST_F(LsqQueueTest, NoViolationWhenForwardedFromYoungerStore)
{
    LoadQueue lq(8);
    // Load got its data from store seq 20 (younger than the resolving
    // store seq 10): its value is already correct.
    lq.allocate(makeLoad(30, 0x1000, 8, true, 20));
    EXPECT_EQ(lq.searchViolation(10, 0x1000, 8), nullptr);
}

TEST_F(LsqQueueTest, ViolationWhenForwardedFromOlderStore)
{
    LoadQueue lq(8);
    // Load forwarded from store seq 5, which the resolving store seq
    // 10 overwrites: stale data.
    DynInst *victim = makeLoad(30, 0x1000, 8, true, 5);
    lq.allocate(victim);
    EXPECT_EQ(lq.searchViolation(10, 0x1000, 8), victim);
}

TEST_F(LsqQueueTest, ViolationReturnsOldestOffender)
{
    LoadQueue lq(8);
    DynInst *first = makeLoad(30, 0x1000, 8, true);
    DynInst *second = makeLoad(40, 0x1004, 4, true);
    lq.allocate(first);
    lq.allocate(second);
    EXPECT_EQ(lq.searchViolation(10, 0x1000, 8), first);
}

TEST_F(LsqQueueTest, PartialOverlapIsAViolation)
{
    LoadQueue lq(8);
    DynInst *victim = makeLoad(30, 0x1004, 4, true);
    lq.allocate(victim);
    // 8-byte store covering 0x1000-0x1007 overlaps the 4-byte load.
    EXPECT_EQ(lq.searchViolation(10, 0x1000, 8), victim);
    // Disjoint store does not.
    EXPECT_EQ(lq.searchViolation(10, 0x1008, 8), nullptr);
}

TEST_F(LsqQueueTest, LoadQueueSquashAndRelease)
{
    LoadQueue lq(8);
    DynInst *l1 = makeLoad(10, 0x1000, 8, true);
    lq.allocate(l1);
    lq.allocate(makeLoad(20, 0x2000, 8, true));
    lq.squashFrom(20);
    EXPECT_EQ(lq.size(), 1u);
    lq.releaseHead(l1);
    EXPECT_EQ(lq.size(), 0u);
}

} // namespace
} // namespace dmdc
