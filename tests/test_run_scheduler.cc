/**
 * @file
 * Tests of the pluggable run scheduler (sim/run_scheduler.hh): the
 * exactly-once claim contract under real thread contention, journal-
 * identity co-location, StaticLpt's drained-bin behavior, and
 * submit-after-seed (the dmdc_serve ingestion path).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "sim/run_scheduler.hh"

namespace dmdc
{
namespace
{

std::vector<ScheduledRun>
makeRuns(std::size_t n, std::size_t identities)
{
    std::vector<ScheduledRun> runs;
    for (std::size_t i = 0; i < n; ++i) {
        ScheduledRun r;
        r.index = i;
        r.identity = "id-" + std::to_string(i % identities);
        r.cost = 1000.0 + 100.0 * static_cast<double>(i % 5);
        runs.push_back(r);
    }
    return runs;
}

/** Drain the scheduler from @p workers real threads; return every
 *  claimed index (with duplicates preserved, so the exactly-once
 *  check can see double claims). */
std::vector<std::size_t>
drainConcurrently(RunScheduler &sched, unsigned workers)
{
    std::mutex m;
    std::vector<std::size_t> claimed;
    std::vector<std::thread> threads;
    for (unsigned w = 0; w < workers; ++w) {
        threads.emplace_back([&, w] {
            ScheduledRun item;
            while (sched.next(w, item)) {
                std::lock_guard<std::mutex> guard(m);
                claimed.push_back(item.index);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    return claimed;
}

TEST(RunScheduler, WorkStealingClaimsEachRunExactlyOnce)
{
    for (int round = 0; round < 20; ++round) {
        auto sched = makeRunScheduler(SchedulerKind::WorkStealing);
        const std::size_t n = 64;
        sched->seed(makeRuns(n, 16), 4);
        auto claimed = drainConcurrently(*sched, 4);

        ASSERT_EQ(claimed.size(), n) << "round " << round;
        std::sort(claimed.begin(), claimed.end());
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(claimed[i], i)
                << "round " << round << ": run " << i
                << " lost or double-claimed";
    }
}

TEST(RunScheduler, StaticLptWorkerStopsWhenItsBinDrains)
{
    auto sched = makeRunScheduler(SchedulerKind::StaticLpt);
    sched->seed(makeRuns(6, 6), 8);

    // More workers than groups: some bins are empty, and those
    // workers must see "no work" immediately rather than stealing.
    std::set<std::size_t> claimed;
    for (unsigned w = 0; w < 8; ++w) {
        ScheduledRun item;
        while (sched->next(w, item))
            EXPECT_TRUE(claimed.insert(item.index).second)
                << "run " << item.index << " claimed twice";
    }
    EXPECT_EQ(claimed.size(), 6u);

    ScheduledRun item;
    EXPECT_FALSE(sched->next(0, item));
}

TEST(RunScheduler, StaticLptColocatesEqualIdentities)
{
    auto sched = makeRunScheduler(SchedulerKind::StaticLpt);
    sched->seed(makeRuns(24, 4), 3);

    std::map<std::string, std::set<unsigned>> workersByIdentity;
    std::map<std::size_t, std::string> identityOf;
    for (const auto &r : makeRuns(24, 4))
        identityOf[r.index] = r.identity;

    for (unsigned w = 0; w < 3; ++w) {
        ScheduledRun item;
        while (sched->next(w, item))
            workersByIdentity[identityOf[item.index]].insert(w);
    }
    ASSERT_EQ(workersByIdentity.size(), 4u);
    for (const auto &kv : workersByIdentity)
        EXPECT_EQ(kv.second.size(), 1u)
            << "identity " << kv.first << " split across workers";
}

TEST(RunScheduler, WorkStealingAcceptsSubmitAfterSeed)
{
    // The daemon's shape: seed an empty pool, then submit runs while
    // workers are already draining. Everything submitted must come
    // back exactly once.
    auto sched = makeRunScheduler(SchedulerKind::WorkStealing);
    sched->seed({}, 3);

    const std::size_t n = 30;
    std::atomic<std::size_t> submitted{0};
    std::thread producer([&] {
        auto runs = makeRuns(n, 5);
        for (auto &r : runs) {
            sched->submit(r);
            submitted.fetch_add(1);
        }
    });

    // Consumers poll until the producer is done and the queues drain.
    std::mutex m;
    std::set<std::size_t> claimed;
    std::vector<std::thread> consumers;
    for (unsigned w = 0; w < 3; ++w) {
        consumers.emplace_back([&, w] {
            ScheduledRun item;
            while (true) {
                if (sched->next(w, item)) {
                    std::lock_guard<std::mutex> guard(m);
                    EXPECT_TRUE(claimed.insert(item.index).second);
                } else if (submitted.load() == n) {
                    // One last sweep after the producer finished: a
                    // false next() now means genuinely empty.
                    if (!sched->next(w, item))
                        break;
                    std::lock_guard<std::mutex> guard(m);
                    EXPECT_TRUE(claimed.insert(item.index).second);
                } else {
                    std::this_thread::yield();
                }
            }
        });
    }
    producer.join();
    for (auto &t : consumers)
        t.join();
    EXPECT_EQ(claimed.size(), n);
}

TEST(RunScheduler, KindNamesRoundTrip)
{
    SchedulerKind kind;
    std::string err;
    ASSERT_TRUE(parseSchedulerKind("work-stealing", kind, err));
    EXPECT_EQ(kind, SchedulerKind::WorkStealing);
    ASSERT_TRUE(parseSchedulerKind("static-lpt", kind, err));
    EXPECT_EQ(kind, SchedulerKind::StaticLpt);
    EXPECT_FALSE(parseSchedulerKind("fifo", kind, err));
    EXPECT_FALSE(err.empty());

    EXPECT_STREQ(schedulerKindName(SchedulerKind::WorkStealing),
                 "work-stealing");
    EXPECT_STREQ(schedulerKindName(SchedulerKind::StaticLpt),
                 "static-lpt");
}

TEST(RunScheduler, LptAssignmentIsDeterministic)
{
    const auto runs = makeRuns(40, 10);
    std::vector<SimOptions> opts;
    for (const auto &r : runs) {
        SimOptions o;
        o.benchmark = r.identity;
        o.runInsts = 20000;
        opts.push_back(o);
    }
    const auto groups = groupRunsByIdentity(opts);
    ASSERT_EQ(groups.size(), 10u);
    const auto a = lptAssignGroups(groups, 4);
    const auto b = lptAssignGroups(groups, 4);
    EXPECT_EQ(a, b);
    for (unsigned bin : a)
        EXPECT_LT(bin, 4u);
}

} // namespace
} // namespace dmdc
