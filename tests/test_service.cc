/**
 * @file
 * Tests of the campaign service layer (sim/service.hh): frame I/O on
 * a real socketpair, run-spec and JSON-string round trips, the
 * version handshake's refusal path against a fake daemon, and a full
 * in-process daemon serving two overlapping client campaigns with
 * exactly-once dedup and canonical journals.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/build_info.hh"
#include "common/json.hh"
#include "sim/campaign_shard.hh"
#include "sim/service.hh"

namespace dmdc
{
namespace
{

namespace fs = std::filesystem;

// ---- frame I/O -------------------------------------------------------

class FramePair : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
    }

    void
    TearDown() override
    {
        if (fds_[0] >= 0)
            ::close(fds_[0]);
        if (fds_[1] >= 0)
            ::close(fds_[1]);
    }

    int fds_[2] = {-1, -1};
};

TEST_F(FramePair, RoundTripsPayloads)
{
    std::string err, out;
    for (const std::string &payload :
         {std::string("{\"op\":\"hello\"}"), std::string(""),
          std::string(4096, 'x')}) {
        ASSERT_TRUE(writeFrame(fds_[0], payload, err)) << err;
        ASSERT_TRUE(readFrame(fds_[1], out, err)) << err;
        EXPECT_EQ(out, payload);
    }
}

TEST_F(FramePair, CleanEofIsSilent)
{
    ::close(fds_[0]);
    fds_[0] = -1;
    std::string err = "sentinel", out;
    EXPECT_FALSE(readFrame(fds_[1], out, err));
    EXPECT_TRUE(err.empty()) << "clean EOF must not report: " << err;
}

TEST_F(FramePair, RejectsOversizedLength)
{
    const unsigned char huge[4] = {0xff, 0xff, 0xff, 0xff};
    ASSERT_EQ(::write(fds_[0], huge, 4), 4);
    std::string err, out;
    EXPECT_FALSE(readFrame(fds_[1], out, err));
    EXPECT_FALSE(err.empty());
}

TEST_F(FramePair, TornFrameReportsError)
{
    const unsigned char prefix[4] = {0, 0, 0, 100};
    ASSERT_EQ(::write(fds_[0], prefix, 4), 4);
    ASSERT_EQ(::write(fds_[0], "short", 5), 5);
    ::close(fds_[0]);
    fds_[0] = -1;
    std::string err, out;
    EXPECT_FALSE(readFrame(fds_[1], out, err));
    EXPECT_FALSE(err.empty());
}

// ---- serialization round trips ---------------------------------------

TEST(ServiceJson, EscapedStringsSurviveParsing)
{
    const std::string nasty =
        "line1\nline2\ttab \"quoted\" back\\slash \x01 control";
    const std::string doc = "{\"s\":\"" + jsonEscapeString(nasty) +
                            "\"}";
    JsonValue root;
    std::string err;
    ASSERT_TRUE(parseJson(doc, root, err)) << err;
    const JsonValue *s = root.find("s");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->text, nasty);
}

TEST(ServiceJson, RunSpecRoundTrips)
{
    SimOptions opt;
    opt.benchmark = "swim";
    opt.scheme = "yla";
    opt.configLevel = 3;
    opt.warmupInsts = 2000;
    opt.runInsts = 20000;
    opt.invalidationsPer1kCycles = 1.5;
    opt.coherence = true;
    opt.safeLoads = false;
    opt.sqFilter = true;
    opt.numYlaQw = 16;
    opt.tableEntriesOverride = 64;
    opt.queueEntries = 32;

    JsonValue spec;
    std::string err;
    ASSERT_TRUE(parseJson(serviceRunSpecJson(opt), spec, err)) << err;
    SimOptions back;
    ASSERT_TRUE(parseServiceRunSpec(spec, back, err)) << err;

    EXPECT_EQ(back.benchmark, opt.benchmark);
    EXPECT_EQ(back.scheme, opt.scheme);
    EXPECT_EQ(back.configLevel, opt.configLevel);
    EXPECT_EQ(back.warmupInsts, opt.warmupInsts);
    EXPECT_EQ(back.runInsts, opt.runInsts);
    EXPECT_DOUBLE_EQ(back.invalidationsPer1kCycles,
                     opt.invalidationsPer1kCycles);
    EXPECT_EQ(back.coherence, opt.coherence);
    EXPECT_EQ(back.safeLoads, opt.safeLoads);
    EXPECT_EQ(back.sqFilter, opt.sqFilter);
    EXPECT_EQ(back.numYlaQw, opt.numYlaQw);
    EXPECT_EQ(back.tableEntriesOverride, opt.tableEntriesOverride);
    EXPECT_EQ(back.queueEntries, opt.queueEntries);
}

TEST(ServiceJson, RunSpecRequiresBenchmarkAndScheme)
{
    JsonValue spec;
    std::string err;
    ASSERT_TRUE(parseJson("{\"scheme\":\"yla\"}", spec, err));
    SimOptions out;
    EXPECT_FALSE(parseServiceRunSpec(spec, out, err));
    EXPECT_FALSE(err.empty());
}

// ---- handshake refusal -----------------------------------------------

/** A minimal fake daemon: accepts one connection, answers the hello
 *  with a configurable identity, then hangs up. */
class FakeDaemon
{
  public:
    explicit FakeDaemon(std::string helloReply)
        : reply_(std::move(helloReply))
    {
        path_ = "fake_daemon_" + std::to_string(::getpid()) + ".sock";
        fs::remove(path_);
        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                      path_.c_str());
        bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
             sizeof(addr));
        listen(listenFd_, 1);
        thread_ = std::thread([this] {
            const int fd = ::accept(listenFd_, nullptr, nullptr);
            if (fd < 0)
                return;
            std::string err, req;
            if (readFrame(fd, req, err))
                writeFrame(fd, reply_, err);
            ::close(fd);
        });
    }

    ~FakeDaemon()
    {
        ::close(listenFd_);
        thread_.join();
        fs::remove(path_);
    }

    const std::string &path() const { return path_; }

  private:
    std::string reply_;
    std::string path_;
    int listenFd_ = -1;
    std::thread thread_;
};

TEST(ServiceHandshake, RefusesMismatchedCommit)
{
    const ServiceIdentity self = localServiceIdentity();
    FakeDaemon fake("{\"ok\":true,\"server\":\"dmdc_serve\","
                    "\"protocol\":" +
                    std::to_string(kServiceProtocolVersion) +
                    ",\"commit\":\"deadbeef\",\"cache_format\":" +
                    std::to_string(self.cacheFormat) +
                    ",\"policy_revision\":\"" + self.policyRevision +
                    "\",\"pid\":1}");
    ServiceClient client;
    std::string err;
    EXPECT_FALSE(client.connect(fake.path(), err));
    EXPECT_NE(err.find("commit"), std::string::npos) << err;
    EXPECT_FALSE(client.connected());
}

TEST(ServiceHandshake, RefusesMismatchedProtocol)
{
    FakeDaemon fake("{\"ok\":true,\"server\":\"dmdc_serve\","
                    "\"protocol\":9999,\"commit\":\"x\","
                    "\"cache_format\":1,"
                    "\"policy_revision\":\"y\",\"pid\":1}");
    ServiceClient client;
    std::string err;
    EXPECT_FALSE(client.connect(fake.path(), err));
    EXPECT_NE(err.find("protocol"), std::string::npos) << err;
}

// ---- end-to-end daemon -----------------------------------------------

SimOptions
quickRun(const std::string &bench, const std::string &scheme)
{
    SimOptions opt;
    opt.benchmark = bench;
    opt.scheme = scheme;
    opt.warmupInsts = 2000;
    opt.runInsts = 20000;
    return opt;
}

std::string
submitRequest(const std::vector<SimOptions> &runs)
{
    std::string req = "{\"op\":\"submit\",\"runs\":[";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        if (i)
            req += ',';
        req += serviceRunSpecJson(runs[i]);
    }
    req += "]}";
    return req;
}

TEST(ServiceDaemonTest, OverlappingCampaignsDedupAndJournal)
{
    const std::string sock = "svc_e2e.sock";
    const std::string cache = "svc_e2e_cache";
    fs::remove_all(cache);

    ServiceOptions opts;
    opts.socketPath = sock;
    opts.workers = 2;
    opts.campaign.cacheDir = cache;

    ServiceDaemon daemon(opts);
    std::string err;
    ASSERT_TRUE(daemon.start(err)) << err;
    std::thread server([&] { daemon.serve(); });

    {
        ServiceClient a, b;
        ASSERT_TRUE(a.connect(sock, err)) << err;
        ASSERT_TRUE(b.connect(sock, err)) << err;
        EXPECT_EQ(a.daemonIdentity().commit, buildCommit());

        // Campaign A and B overlap on (swim, baseline): that triple
        // must be simulated exactly once and journal in both.
        const std::vector<SimOptions> runsA = {
            quickRun("gzip", "baseline"), quickRun("swim", "baseline")};
        const std::vector<SimOptions> runsB = {
            quickRun("swim", "baseline"), quickRun("applu", "yla")};

        JsonValue reply;
        ASSERT_TRUE(a.request(submitRequest(runsA), reply, err))
            << err;
        const JsonValue *cid = reply.find("campaign");
        ASSERT_NE(cid, nullptr);
        const std::string campaignA = cid->text;
        ASSERT_TRUE(b.request(submitRequest(runsB), reply, err))
            << err;
        ASSERT_NE(reply.find("campaign"), nullptr);
        const std::string campaignB = reply.find("campaign")->text;
        EXPECT_NE(campaignA, campaignB);

        // Blocking results retrieval; both journals must parse as
        // canonical merged journals of this binary's commit.
        for (const auto &pair :
             {std::make_pair(&a, std::make_pair(campaignA, runsA)),
              std::make_pair(&b, std::make_pair(campaignB, runsB))}) {
            ServiceClient &client = *pair.first;
            ASSERT_TRUE(client.request(
                "{\"op\":\"results\",\"campaign\":\"" +
                    pair.second.first + "\",\"wait\":true}",
                reply, err))
                << err;
            const JsonValue *state = reply.find("state");
            ASSERT_NE(state, nullptr);
            EXPECT_EQ(state->text, "done");
            const JsonValue *journal = reply.find("journal");
            ASSERT_NE(journal, nullptr);

            ShardJournal parsed;
            ASSERT_TRUE(
                parseShardJournal(journal->text, parsed, err))
                << err;
            EXPECT_EQ(parsed.commit, buildCommit());
            EXPECT_FALSE(parsed.sharded);
            ASSERT_EQ(parsed.entries.size(),
                      pair.second.second.size());
            std::multiset<std::string> expected, got;
            for (const auto &r : pair.second.second)
                expected.insert(r.benchmark + "/" + r.scheme);
            for (const auto &e : parsed.entries) {
                got.insert(e.benchmark + "/" + e.scheme);
                EXPECT_EQ(e.status, RunStatus::Ok)
                    << e.benchmark << ": " << e.error;
            }
            EXPECT_EQ(got, expected);
        }

        // Exactly-once: 4 submits, 3 unique triples, 1 dedup fold.
        ASSERT_TRUE(a.request("{\"op\":\"stats\"}", reply, err))
            << err;
        EXPECT_EQ(reply.find("campaigns")->text, "2");
        EXPECT_EQ(reply.find("submitted")->text, "4");
        EXPECT_EQ(reply.find("unique")->text, "3");
        EXPECT_EQ(reply.find("dedup_hits")->text, "1");
        EXPECT_EQ(reply.find("executed")->text, "3");

        // Status of a finished campaign.
        ASSERT_TRUE(a.request("{\"op\":\"status\",\"campaign\":\"" +
                                  campaignA + "\"}",
                              reply, err))
            << err;
        EXPECT_EQ(reply.find("state")->text, "done");

        // Unknown ops and campaigns produce ok:false, not hangups.
        EXPECT_FALSE(a.request("{\"op\":\"frobnicate\"}", reply, err));
        EXPECT_TRUE(a.connected());
        EXPECT_FALSE(a.request(
            "{\"op\":\"status\",\"campaign\":\"c999\"}", reply, err));
        EXPECT_TRUE(a.connected());

        ASSERT_TRUE(a.request("{\"op\":\"shutdown\"}", reply, err))
            << err;
    }

    server.join();
    EXPECT_FALSE(fs::exists(sock)) << "socket not unlinked on exit";
    const ServiceStats stats = daemon.statsSnapshot();
    EXPECT_EQ(stats.campaigns, 2u);
    EXPECT_EQ(stats.unique, 3u);
    EXPECT_EQ(stats.dedupHits, 1u);
    EXPECT_EQ(stats.executed, 3u);
    fs::remove_all(cache);
}

TEST(ServiceDaemonTest, CancelSkipsQueuedWork)
{
    const std::string sock = "svc_cancel.sock";
    const std::string cache = "svc_cancel_cache";
    fs::remove_all(cache);

    ServiceOptions opts;
    opts.socketPath = sock;
    opts.workers = 1;
    opts.campaign.cacheDir = cache;

    ServiceDaemon daemon(opts);
    std::string err;
    ASSERT_TRUE(daemon.start(err)) << err;
    std::thread server([&] { daemon.serve(); });

    {
        ServiceClient c;
        ASSERT_TRUE(c.connect(sock, err)) << err;
        JsonValue reply;
        ASSERT_TRUE(c.request(
            submitRequest({quickRun("gzip", "baseline"),
                           quickRun("swim", "yla")}),
            reply, err))
            << err;
        const std::string campaign = reply.find("campaign")->text;
        ASSERT_TRUE(c.request("{\"op\":\"cancel\",\"campaign\":\"" +
                                  campaign + "\"}",
                              reply, err))
            << err;

        // A cancelled campaign still resolves: a waiting results call
        // must return promptly with an ok:false "cancelled" reply, not
        // block forever on runs that will never execute.
        EXPECT_FALSE(
            c.request("{\"op\":\"results\",\"campaign\":\"" +
                          campaign + "\",\"wait\":true}",
                      reply, err));
        EXPECT_NE(err.find("cancelled"), std::string::npos) << err;
        EXPECT_TRUE(c.connected());

        ASSERT_TRUE(c.request("{\"op\":\"status\",\"campaign\":\"" +
                                  campaign + "\"}",
                              reply, err))
            << err;
        EXPECT_EQ(reply.find("state")->text, "cancelled");

        ASSERT_TRUE(c.request("{\"op\":\"shutdown\"}", reply, err))
            << err;
    }
    server.join();
    fs::remove_all(cache);
}

} // namespace
} // namespace dmdc
