/**
 * @file
 * Tests of the extensions beyond the paper's evaluated design: the
 * Sec. 3 SQ-side age filter (implemented here although the paper left
 * it as future work) and the Sec. 7 related-work age-table scheme
 * (Garg et al.), plus the age-table unit itself.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "lsq/age_table.hh"
#include "sim/simulator.hh"
#include "trace/spec_suite.hh"

namespace dmdc
{
namespace
{

TEST(AgeTableUnit, TracksYoungestPerEntry)
{
    AgeTable t(1024);
    EXPECT_FALSE(t.storeNeedsReplay(0x1000, 50));
    t.loadIssued(0x1000, 100);
    EXPECT_TRUE(t.storeNeedsReplay(0x1000, 50));
    EXPECT_FALSE(t.storeNeedsReplay(0x1000, 150));
    // Older loads never regress an entry.
    t.loadIssued(0x1000, 30);
    EXPECT_EQ(t.lookup(0x1000), 100u);
}

TEST(AgeTableUnit, AliasingIsConservative)
{
    AgeTable t(16);
    t.loadIssued(0x1000, 100);
    // Some other quad word must alias in a 16-entry table; the check
    // for it is conservative (replay), never unsafe.
    bool found = false;
    for (Addr a = 0x2000; a < 0x40000 && !found; a += 8)
        found = t.storeNeedsReplay(a, 50);
    EXPECT_TRUE(found);
}

TEST(AgeTableUnit, BranchRecoveryClamps)
{
    AgeTable t(64);
    t.loadIssued(0x1000, 200);
    t.branchRecovery(120);
    EXPECT_EQ(t.lookup(0x1000), 120u);
    t.reset();
    EXPECT_EQ(t.lookup(0x1000), invalidSeqNum);
}

TEST(AgeTableScheme, RunsCleanAndDetectsViolations)
{
    SimOptions opt;
    opt.benchmark = "gcc";
    opt.scheme = "age-table";
    opt.warmupInsts = 5000;
    opt.runInsts = 50000;
    const SimResult r = runSimulation(opt);
    EXPECT_GE(r.instructions, 50000u);
    // Every true violation must trigger a replay (superset property);
    // the built-in safety panic already guards the other direction.
    EXPECT_GE(r.ageTableReplays, r.trueViolations);
}

TEST(AgeTableScheme, MoreReplaysThanDmdc)
{
    // The paper's Sec. 7 claim: DMDC's decoupled design replays less
    // than the fused age table at the same entry count.
    double age_replays = 0;
    double dmdc_replays = 0;
    for (const char *bench : {"gcc", "vortex", "swim"}) {
        SimOptions opt;
        opt.benchmark = bench;
        opt.warmupInsts = 5000;
        opt.runInsts = 60000;
        opt.scheme = "age-table";
        age_replays += static_cast<double>(
            runSimulation(opt).ageTableReplays);
        opt.scheme = "dmdc-global";
        dmdc_replays +=
            static_cast<double>(runSimulation(opt).dmdcReplays);
    }
    EXPECT_GE(age_replays, dmdc_replays);
}

TEST(SqFilter, ExactAndTimingNeutralWhenDisabled)
{
    SimOptions opt;
    opt.benchmark = "crafty";
    opt.scheme = "baseline";
    opt.warmupInsts = 5000;
    opt.runInsts = 50000;
    const SimResult off = runSimulation(opt);
    opt.sqFilter = true;
    const SimResult on = runSimulation(opt);

    // The filter only skips searches that provably have no older
    // store: identical timing.
    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_GT(on.sqSearchesFiltered, 0u);
    EXPECT_EQ(off.sqSearches,
              on.sqSearches + on.sqSearchesFiltered);
    // Energy strictly improves in the SQ component.
    EXPECT_LT(on.energy.sq, off.energy.sq);
}

TEST(SqFilter, ComposesWithDmdc)
{
    SimOptions opt;
    opt.benchmark = "swim";
    opt.scheme = "dmdc-global";
    opt.sqFilter = true;
    opt.warmupInsts = 5000;
    opt.runInsts = 50000;
    const SimResult r = runSimulation(opt);
    EXPECT_GE(r.instructions, 50000u);
    // Filtered loads are trivially safe loads.
    EXPECT_GT(r.safeLoadFrac, 0.3);
}

} // namespace
} // namespace dmdc
