/**
 * @file
 * Memory hierarchy implementation.
 */

#include "mem/hierarchy.hh"

namespace dmdc
{

MemoryHierarchy::MemoryHierarchy(const HierarchyParams &params)
    : l1i_(params.l1i), l1d_(params.l1d), l2_(params.l2),
      memLatency_(params.memLatency)
{
}

unsigned
MemoryHierarchy::accessData(Addr addr, bool write)
{
    unsigned latency = l1d_.latency();
    if (l1d_.access(addr, write))
        return latency;
    latency += l2_.latency();
    if (l2_.access(addr, write))
        return latency;
    return latency + memLatency_;
}

unsigned
MemoryHierarchy::accessInst(Addr pc)
{
    unsigned latency = l1i_.latency();
    if (l1i_.access(pc, false))
        return latency;
    latency += l2_.latency();
    if (l2_.access(pc, false))
        return latency;
    return latency + memLatency_;
}

void
MemoryHierarchy::invalidateLine(Addr addr)
{
    l1d_.invalidate(addr);
    l2_.invalidate(addr);
}

void
MemoryHierarchy::regStats(StatGroup &parent)
{
    l1i_.regStats(parent);
    l1d_.regStats(parent);
    l2_.regStats(parent);
}

} // namespace dmdc
