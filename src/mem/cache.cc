/**
 * @file
 * Cache model implementation.
 */

#include "mem/cache.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace dmdc
{

Cache::Cache(const CacheParams &params)
    : params_(params), stats_(params.name)
{
    if (params_.assoc == 0 || params_.lineBytes == 0 ||
        !isPowerOf2(params_.lineBytes)) {
        fatal("cache '%s': invalid geometry", params_.name.c_str());
    }
    const std::uint64_t num_lines =
        params_.sizeBytes / params_.lineBytes;
    if (num_lines == 0 || num_lines % params_.assoc != 0)
        fatal("cache '%s': size/assoc mismatch", params_.name.c_str());
    numSets_ = static_cast<unsigned>(num_lines / params_.assoc);
    if (!isPowerOf2(numSets_))
        fatal("cache '%s': set count must be a power of two",
              params_.name.c_str());
    lines_.resize(num_lines);

    stats_.regCounter("hits", &hits_);
    stats_.regCounter("misses", &misses_);
    stats_.regCounter("writebacks", &writebacks_, "dirty evictions");
}

void
Cache::regStats(StatGroup &parent)
{
    parent.addChild(&stats_);
}

unsigned
Cache::setIndex(Addr addr) const
{
    return static_cast<unsigned>(
        (addr / params_.lineBytes) & (numSets_ - 1));
}

Addr
Cache::tagOf(Addr addr) const
{
    return (addr / params_.lineBytes) / numSets_;
}

bool
Cache::access(Addr addr, bool write)
{
    const unsigned base = setIndex(addr) * params_.assoc;
    const Addr tag = tagOf(addr);

    Line *victim = &lines_[base];
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = lines_[base + w];
        if (line.valid && line.tag == tag) {
            line.lru = ++lruClock_;
            line.dirty = line.dirty || write;
            ++hits_;
            return true;
        }
        if (!victim->valid)
            continue;
        if (!line.valid || line.lru < victim->lru)
            victim = &line;
    }

    ++misses_;
    if (victim->valid && victim->dirty)
        ++writebacks_;
    victim->valid = true;
    victim->dirty = write;
    victim->tag = tag;
    victim->lru = ++lruClock_;
    return false;
}

bool
Cache::probe(Addr addr) const
{
    const unsigned base = setIndex(addr) * params_.assoc;
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < params_.assoc; ++w) {
        const Line &line = lines_[base + w];
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

bool
Cache::invalidate(Addr addr)
{
    const unsigned base = setIndex(addr) * params_.assoc;
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = lines_[base + w];
        if (line.valid && line.tag == tag) {
            line.valid = false;
            line.dirty = false;
            return true;
        }
    }
    return false;
}

} // namespace dmdc
