/**
 * @file
 * Two-level memory hierarchy (L1I, L1D, unified L2, flat memory)
 * matching the paper's Table 1.
 */

#ifndef DMDC_MEM_HIERARCHY_HH
#define DMDC_MEM_HIERARCHY_HH

#include "common/stats.hh"
#include "mem/cache.hh"

namespace dmdc
{

/** Hierarchy-wide parameters. */
struct HierarchyParams
{
    CacheParams l1i{"l1i", 64 * 1024, 1, 64, 2};
    CacheParams l1d{"l1d", 32 * 1024, 2, 64, 2};
    CacheParams l2{"l2", 1024 * 1024, 8, 128, 15};
    unsigned memLatency = 120;
};

/**
 * Timing-only hierarchy: each access returns its total latency in
 * cycles. Misses are overlapped freely (an idealized non-blocking
 * hierarchy); port contention is modeled by the pipeline, which limits
 * L1D accesses per cycle.
 */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const HierarchyParams &params);

    /** Data access at @p addr. @return total latency in cycles. */
    unsigned accessData(Addr addr, bool write);

    /** Instruction fetch at @p pc. @return total latency in cycles. */
    unsigned accessInst(Addr pc);

    /**
     * External coherence invalidation of the line at @p addr:
     * removed from L1D and L2.
     */
    void invalidateLine(Addr addr);

    const Cache &l1d() const { return l1d_; }
    const Cache &l1i() const { return l1i_; }
    const Cache &l2() const { return l2_; }
    unsigned l1dLineBytes() const { return l1d_.lineBytes(); }

    void regStats(StatGroup &parent);

  private:
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    unsigned memLatency_;
};

} // namespace dmdc

#endif // DMDC_MEM_HIERARCHY_HH
