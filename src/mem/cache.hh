/**
 * @file
 * Single-level set-associative cache timing model.
 */

#ifndef DMDC_MEM_CACHE_HH
#define DMDC_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace dmdc
{

/** Geometry and latency of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 2;
    unsigned lineBytes = 64;
    unsigned latency = 2;       ///< hit latency in cycles
};

/**
 * Write-back, write-allocate, true-LRU set-associative cache. Purely a
 * hit/miss tag model: no data storage (the simulator is timing-only).
 */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Access the line containing @p addr; allocates on miss.
     * @param write marks the line dirty on hit/fill
     * @return true on hit
     */
    bool access(Addr addr, bool write);

    /** Tag check without side effects. */
    bool probe(Addr addr) const;

    /**
     * Invalidate the line containing @p addr (coherence).
     * @return true if a valid line was present
     */
    bool invalidate(Addr addr);

    unsigned latency() const { return params_.latency; }
    unsigned lineBytes() const { return params_.lineBytes; }
    const CacheParams &params() const { return params_; }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t writebacks() const { return writebacks_.value(); }

    /** Register this cache's statistics under @p parent. */
    void regStats(StatGroup &parent);

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lru = 0;
    };

    unsigned setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheParams params_;
    std::vector<Line> lines_;
    unsigned numSets_;
    std::uint64_t lruClock_ = 0;

    Counter hits_;
    Counter misses_;
    Counter writebacks_;
    StatGroup stats_;
};

} // namespace dmdc

#endif // DMDC_MEM_CACHE_HH
