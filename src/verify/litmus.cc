/**
 * @file
 * Litmus corpus construction and execution.
 */

#include "verify/litmus.hh"

#include "lsq/policy/registry.hh"
#include "sim/run_error.hh"
#include "sim/simulator.hh"
#include "verify/ordering_oracle.hh"

namespace dmdc
{

namespace
{

LitmusCase
makeCase(const std::string &benchmark, const std::string &scheme,
         const std::string &agent, bool coherence)
{
    LitmusCase c;
    c.name = scheme + "/" + agent +
        (coherence ? "" : "/no-coherence");
    c.benchmark = benchmark;
    c.scheme = scheme;
    c.agent = agent;
    c.coherence = coherence;
    return c;
}

} // namespace

std::vector<LitmusCase>
litmusCorpus()
{
    std::vector<LitmusCase> cases;
    // Every registered scheme against the mixed rotation: the broad
    // no-forbidden-outcome sweep.
    for (const std::string &scheme :
         DependencePolicyRegistry::instance().names())
        cases.push_back(makeCase("gzip", scheme, "mixed", true));
    // Each pure synchronization idiom against the coherence-enforcing
    // checking paths (table and queue variants) and the conventional
    // baseline, on a second benchmark for access-pattern diversity.
    const char *families[] = {"producer-consumer", "lock-handoff",
                              "false-sharing"};
    for (const char *family : families) {
        cases.push_back(makeCase("mcf", "baseline", family, true));
        cases.push_back(makeCase("mcf", "dmdc-global", family, true));
        cases.push_back(makeCase("mcf", "dmdc-queue", family, true));
    }
    // The coherence extension off: stale commits are merely counted,
    // never forbidden — the contract half of the oracle's external
    // rule.
    cases.push_back(makeCase("gzip", "dmdc-global",
                             "false-sharing", false));
    return cases;
}

LitmusOutcome
runLitmusCase(const LitmusCase &c)
{
    LitmusOutcome out;
    out.name = c.name;
    SimOptions opt;
    opt.benchmark = c.benchmark;
    opt.scheme = c.scheme;
    opt.coherence = c.coherence;
    opt.warmupInsts = c.warmupInsts;
    opt.runInsts = c.runInsts;
    opt.check = CheckMode::Litmus;
    opt.coherenceAgent = c.agent;
    try {
        Simulator sim(opt);
        SimResult r = sim.run();
        out.loadsChecked = r.oracleLoadsChecked;
        out.staleCommits = r.oracleStaleCommits;
        out.forbidden = r.oracleForbidden;
        out.deliveries = r.agentInvalidations;
        if (out.deliveries == 0) {
            out.message = "vacuous run: the coherence agent injected "
                          "no invalidations";
        } else if (out.loadsChecked == 0) {
            out.message = "vacuous run: the oracle checked no loads";
        } else {
            out.passed = true;
        }
    } catch (const RunError &e) {
        // Forbidden outcomes surface as RunError(SimInvariant); keep
        // whatever counters made it into the message.
        out.message = e.what();
    }
    return out;
}

std::vector<LitmusOutcome>
runLitmusSuite(const std::vector<LitmusCase> &cases,
               void (*on_outcome)(const LitmusOutcome &))
{
    const std::vector<LitmusCase> &corpus =
        cases.empty() ? litmusCorpus() : cases;
    std::vector<LitmusOutcome> outcomes;
    outcomes.reserve(corpus.size());
    for (const LitmusCase &c : corpus) {
        outcomes.push_back(runLitmusCase(c));
        if (on_outcome)
            on_outcome(outcomes.back());
    }
    return outcomes;
}

} // namespace dmdc
