/**
 * @file
 * CoherenceAgent — a scripted remote sharer.
 *
 * Replaces the random invalidation injector with deterministic
 * synchronization-idiom traffic (the interesting patterns named by
 * Louvre, arXiv 1710.10746): a producer-consumer handoff, a contended
 * lock handoff, and false sharing on one hot line. The agent only
 * generates invalidation deliveries — the protocol side effects a
 * remote writer has on this core — aimed at lines inside the
 * workload's data footprint so they actually collide with in-flight
 * loads.
 *
 * The interface mirrors InvalidationInjector so the simulator's run
 * loop (including bulk idle-cycle skipping) treats either source
 * uniformly.
 */

#ifndef DMDC_VERIFY_COHERENCE_AGENT_HH
#define DMDC_VERIFY_COHERENCE_AGENT_HH

#include <cstdint>
#include <string>

#include "common/random.hh"
#include "common/types.hh"

namespace dmdc
{

class Pipeline;

/** The scripted workload family an agent runs. */
enum class AgentFamily
{
    ProducerConsumer, ///< payload lines then a flag line, each period
    LockHandoff,      ///< bursts of contended writes to one lock line
    FalseSharing,     ///< steady writes to one hot shared line
    Mixed,            ///< rotate through the three families
};

/** The scripted coherence agent. */
class CoherenceAgent
{
  public:
    /**
     * Validate an --agent= spec ("family" or "family:period=N").
     * @return false (with @p error filled) when malformed.
     */
    static bool validateSpec(const std::string &spec,
                             std::string *error = nullptr);

    /**
     * @param spec family name, optionally ":period=<cycles>"
     * @param data_base base of the workload's data footprint
     * @param data_size footprint size in bytes (power of two)
     * @param line_bytes cache line granularity
     */
    CoherenceAgent(const std::string &spec, Addr data_base,
                   Addr data_size, unsigned line_bytes,
                   std::uint64_t seed = 12345);

    /** Call once per simulated cycle. */
    void tick(Pipeline &pipe);

    /** A constructed agent always generates traffic. */
    bool active() const { return true; }

    std::uint64_t injected() const { return injected_; }
    AgentFamily family() const { return family_; }

  private:
    Addr line(Addr index) const;
    void deliver(Pipeline &pipe, Addr addr);
    void tickFamily(Pipeline &pipe, AgentFamily family, Cycle phase);

    AgentFamily family_;
    Addr base_ = 0;
    Addr sizeMask_ = 0;
    unsigned lineBytes_ = 64;
    std::uint64_t period_ = 0;
    Cycle cycle_ = 0;
    std::uint64_t iteration_ = 0;
    Rng rng_;
    std::uint64_t injected_ = 0;
};

} // namespace dmdc

#endif // DMDC_VERIFY_COHERENCE_AGENT_HH
