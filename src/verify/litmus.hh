/**
 * @file
 * Litmus harness: a corpus of scripted coherence-traffic scenarios
 * (producer-consumer handoff, contended lock handoff, false sharing)
 * run under the ordering oracle against every dependence-checking
 * scheme. A case passes when the run completes without the oracle
 * reporting a forbidden outcome; the harness additionally checks that
 * the scripted traffic actually landed (deliveries were injected), so
 * a silently inert agent cannot produce a vacuous pass.
 */

#ifndef DMDC_VERIFY_LITMUS_HH
#define DMDC_VERIFY_LITMUS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dmdc
{

/** One scripted scenario. */
struct LitmusCase
{
    std::string name;      ///< "scheme/family" display identity
    std::string benchmark; ///< SPEC stand-in driving the core
    std::string scheme;    ///< dependence-checking scheme under test
    std::string agent;     ///< coherence-agent spec
    bool coherence = true; ///< scheme's coherence extension
    std::uint64_t warmupInsts = 20000;
    std::uint64_t runInsts = 120000;
};

/** Outcome of one case. */
struct LitmusOutcome
{
    std::string name;
    bool passed = false;
    std::string message;            ///< failure detail ("" on pass)
    std::uint64_t loadsChecked = 0;
    std::uint64_t staleCommits = 0;
    std::uint64_t forbidden = 0;
    std::uint64_t deliveries = 0;   ///< agent invalidations injected
};

/**
 * The built-in corpus: every registered scheme against the mixed
 * rotation, plus each pure family against the coherence-enforcing
 * DMDC variants and the conventional baseline.
 */
std::vector<LitmusCase> litmusCorpus();

/** Run one case; never throws (failures land in the outcome). */
LitmusOutcome runLitmusCase(const LitmusCase &c);

/**
 * Run @p cases (the full corpus when empty) and return the outcomes;
 * @p on_outcome, when set, is called after each case (progress
 * reporting).
 */
std::vector<LitmusOutcome> runLitmusSuite(
    const std::vector<LitmusCase> &cases = {},
    void (*on_outcome)(const LitmusOutcome &) = nullptr);

} // namespace dmdc

#endif // DMDC_VERIFY_LITMUS_HH
