/**
 * @file
 * OrderingOracle implementation.
 */

#include "verify/ordering_oracle.hh"

#include <sstream>

#include "core/inst.hh"

namespace dmdc
{

namespace
{

unsigned
log2Floor(unsigned v)
{
    unsigned s = 0;
    while ((1u << (s + 1)) <= v)
        ++s;
    return s;
}

} // namespace

OrderingOracle::OrderingOracle(const Params &params)
    : params_(params),
      lineShift_(log2Floor(params.lineBytes ? params.lineBytes : 64))
{
}

void
OrderingOracle::setContract(bool enforce_external,
                            bool exempt_safe_loads)
{
    params_.enforceExternal = enforce_external;
    params_.exemptSafeLoads = exempt_safe_loads;
}

SeqNum
OrderingOracle::shadowByte(Addr addr) const
{
    auto it = shadow_.find(addr >> 3);
    if (it == shadow_.end())
        return invalidSeqNum;
    return it->second[addr & 7];
}

std::uint64_t
OrderingOracle::lineVersion(Addr addr) const
{
    auto it = lineVersion_.find(addr >> lineShift_);
    return it == lineVersion_.end() ? 0 : it->second;
}

unsigned
OrderingOracle::clampedSize(const DynInst *inst) const
{
    unsigned size = inst->op.memSize;
    if (size < 1)
        size = 1;
    if (size > kMaxBytes)
        size = kMaxBytes;
    return size;
}

void
OrderingOracle::fail(const std::string &message)
{
    if (firstFailure_.empty())
        firstFailure_ = message;
}

void
OrderingOracle::loadObserved(const DynInst *load)
{
    const Addr addr = load->op.effAddr;
    const unsigned size = clampedSize(load);

    LoadRecord rec;
    for (unsigned i = 0; i < size; ++i)
        rec.snapshot[i] = shadowByte(addr + i);
    for (unsigned i = size; i < kMaxBytes; ++i)
        rec.snapshot[i] = invalidSeqNum;
    rec.verFirst = lineVersion(addr);
    rec.verLast = lineVersion(addr + size - 1);
    inflight_[load->seq] = rec;
}

void
OrderingOracle::storeCommitted(const DynInst *store)
{
    const Addr addr = store->op.effAddr;
    const unsigned size = clampedSize(store);
    for (unsigned i = 0; i < size; ++i) {
        const Addr b = addr + i;
        auto &chunk =
            shadow_.try_emplace(b >> 3,
                                std::array<SeqNum, quadWordBytes>{})
                .first->second;
        chunk[b & 7] = store->seq;
    }
    ++counters_.storesApplied;
}

void
OrderingOracle::loadCommitted(const DynInst *load, bool exempt_replay)
{
    groundTruth_.erase(load->seq);

    auto it = inflight_.find(load->seq);
    if (it == inflight_.end()) {
        ++counters_.forbiddenLocal;
        std::ostringstream os;
        os << "oracle: load seq " << load->seq
           << " committed without an observed value";
        fail(os.str());
        return;
    }
    const LoadRecord rec = it->second;
    inflight_.erase(it);
    ++counters_.loadsChecked;

    const Addr addr = load->op.effAddr;
    const unsigned size = clampedSize(load);
    const bool forwarded = load->forwardedFrom != invalidSeqNum;

    // ---- local rule: value source vs committed program order ----
    // Commit is in order, so the shadow now holds the youngest older
    // committed writer of every byte; the load's value must have come
    // from exactly that writer (no exemptions — a replay-guard
    // re-commit re-read memory with every older store already
    // committed, so it too must match).
    for (unsigned i = 0; i < size; ++i) {
        const SeqNum expect = shadowByte(addr + i);
        const SeqNum got = forwarded ? load->forwardedFrom
                                     : rec.snapshot[i];
        if (expect != got) {
            ++counters_.forbiddenLocal;
            std::ostringstream os;
            os << "oracle: forbidden local outcome: load seq "
               << load->seq << " addr 0x" << std::hex << addr
               << std::dec << "+" << i << " committed value from "
               << (forwarded ? "forwarding store " : "writer ")
               << got << " but program order requires writer "
               << expect;
            fail(os.str());
            return;
        }
    }

    // ---- external rule: version-stamped coherence order ----
    // Forwarded loads took their value from this core's own store
    // stream, so external staleness does not apply.
    if (forwarded)
        return;
    const std::uint64_t cur_first = lineVersion(addr);
    const std::uint64_t cur_last = lineVersion(addr + size - 1);
    const bool stale =
        rec.verFirst < cur_first || rec.verLast < cur_last;
    if (!stale)
        return;
    ++counters_.staleCommits;

    const bool exempt =
        exempt_replay || (params_.exemptSafeLoads && load->safeLoad);
    if (exempt) {
        ++counters_.exemptStale;
        return;
    }
    if (!params_.enforceExternal)
        return;

    // Write serialization (paper Sec. 4.3): each delivered
    // invalidation re-arms every 2-byte chunk of the line for exactly
    // one stale commit (the INV->WRT promotion); a second stale commit
    // on a consumed chunk would have hit a WRT bit and replayed.
    bool over_budget = false;
    for (Addr c = addr >> 1; c <= (addr + size - 1) >> 1; ++c) {
        const Addr caddr = c << 1;
        const std::uint64_t cur = lineVersion(caddr);
        const std::uint64_t seen =
            (caddr >> lineShift_) == (addr >> lineShift_)
                ? rec.verFirst : rec.verLast;
        if (seen >= cur)
            continue;  // this chunk's line was not stale
        auto consumed = staleConsumed_.find(c);
        if (consumed != staleConsumed_.end() && consumed->second == cur)
            over_budget = true;
        else
            staleConsumed_[c] = cur;
    }
    if (over_budget) {
        ++counters_.forbiddenExternal;
        std::ostringstream os;
        os << "oracle: forbidden external outcome: load seq "
           << load->seq << " addr 0x" << std::hex << addr << std::dec
           << " committed a second stale value for its line version"
           << " (write serialization requires a replay)";
        fail(os.str());
    }
}

void
OrderingOracle::retired(const DynInst &inst)
{
    if (inst.seq <= lastRetired_) {
        ++counters_.forbiddenLocal;
        std::ostringstream os;
        os << "oracle: out-of-order retire: seq " << inst.seq
           << " after seq " << lastRetired_;
        fail(os.str());
    }
    lastRetired_ = inst.seq;
}

void
OrderingOracle::squashFrom(SeqNum from_seq)
{
    inflight_.erase(inflight_.lower_bound(from_seq), inflight_.end());
    groundTruth_.erase(groundTruth_.lower_bound(from_seq),
                       groundTruth_.end());
}

void
OrderingOracle::invalidationDelivered(Addr addr)
{
    ++lineVersion_[addr >> lineShift_];
    ++counters_.invalidations;
}

void
OrderingOracle::groundTruthViolation(SeqNum victim_seq,
                                     SeqNum store_seq)
{
    groundTruth_[victim_seq] = store_seq;
}

void
OrderingOracle::policyClaimedViolation(const DynInst *victim)
{
    ++counters_.claimsChecked;
    if (groundTruth_.count(victim->seq))
        return;
    ++counters_.bogusClaims;
    std::ostringstream os;
    os << "oracle: policy claimed a true violation for load seq "
       << victim->seq << " with no ghost ground truth";
    fail(os.str());
}

void
OrderingOracle::policyClaimedViolation(const DynInst *victim,
                                       const DynInst *store)
{
    ++counters_.claimsChecked;
    if (store->seq < victim->seq && victim->loadIssued &&
        rangesOverlap(victim->op.effAddr, victim->op.memSize,
                      store->op.effAddr, store->op.memSize))
        return;
    ++counters_.bogusClaims;
    std::ostringstream os;
    os << "oracle: policy claimed load seq " << victim->seq
       << " violated store seq " << store->seq
       << " but the pair is structurally impossible";
    fail(os.str());
}

} // namespace dmdc
