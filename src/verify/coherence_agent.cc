/**
 * @file
 * CoherenceAgent implementation.
 */

#include "verify/coherence_agent.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "core/pipeline.hh"

namespace dmdc
{

namespace
{

/** Cycles each family runs before Mixed rotates to the next. */
constexpr Cycle kMixedSlice = 4096;

bool
parseSpec(const std::string &spec, AgentFamily &family,
          std::uint64_t &period, std::string *error)
{
    std::string name = spec;
    period = 0;
    const std::string::size_type colon = spec.find(':');
    if (colon != std::string::npos) {
        name = spec.substr(0, colon);
        const std::string opt = spec.substr(colon + 1);
        const std::string key = "period=";
        if (opt.compare(0, key.size(), key) != 0) {
            if (error)
                *error = "unknown agent option '" + opt +
                         "' (expected period=<cycles>)";
            return false;
        }
        char *end = nullptr;
        const unsigned long long v =
            std::strtoull(opt.c_str() + key.size(), &end, 10);
        if (end == opt.c_str() + key.size() || *end != '\0' || v == 0) {
            if (error)
                *error = "bad agent period '" + opt + "'";
            return false;
        }
        period = v;
    }

    if (name == "producer-consumer") {
        family = AgentFamily::ProducerConsumer;
    } else if (name == "lock-handoff") {
        family = AgentFamily::LockHandoff;
    } else if (name == "false-sharing") {
        family = AgentFamily::FalseSharing;
    } else if (name == "mixed") {
        family = AgentFamily::Mixed;
    } else {
        if (error)
            *error = "unknown coherence agent '" + name +
                     "' (choose producer-consumer, lock-handoff, "
                     "false-sharing or mixed)";
        return false;
    }
    return true;
}

std::uint64_t
defaultPeriod(AgentFamily family)
{
    switch (family) {
      case AgentFamily::ProducerConsumer: return 400;
      case AgentFamily::LockHandoff:      return 600;
      case AgentFamily::FalseSharing:     return 64;
      case AgentFamily::Mixed:            return 0; // per-family
    }
    return 400;
}

} // namespace

bool
CoherenceAgent::validateSpec(const std::string &spec,
                             std::string *error)
{
    AgentFamily family;
    std::uint64_t period;
    return parseSpec(spec, family, period, error);
}

CoherenceAgent::CoherenceAgent(const std::string &spec, Addr data_base,
                               Addr data_size, unsigned line_bytes,
                               std::uint64_t seed)
    : base_(data_base), lineBytes_(line_bytes), rng_(seed)
{
    std::string error;
    if (!parseSpec(spec, family_, period_, &error))
        fatal("--agent=%s: %s", spec.c_str(), error.c_str());
    sizeMask_ = (data_size ? data_size : lineBytes_) - 1;
}

Addr
CoherenceAgent::line(Addr index) const
{
    return base_ + ((index * lineBytes_) & sizeMask_ &
                    ~Addr{lineBytes_ - 1});
}

void
CoherenceAgent::deliver(Pipeline &pipe, Addr addr)
{
    pipe.externalInvalidation(addr);
    ++injected_;
}

void
CoherenceAgent::tickFamily(Pipeline &pipe, AgentFamily family,
                           Cycle phase)
{
    switch (family) {
      case AgentFamily::ProducerConsumer: {
        // The remote producer writes a payload block, then publishes a
        // flag; the consumer (this core) sees the payload lines
        // invalidated first and the flag line last.
        if (phase == 0)
            ++iteration_;
        const Addr group = iteration_ * 5;  // rotate payload block
        if (phase == 0 || phase == 8 || phase == 16 || phase == 24)
            deliver(pipe, line(group + phase / 8));
        else if (phase == 48)
            deliver(pipe, line(group + 4));  // the flag
        break;
      }
      case AgentFamily::LockHandoff: {
        // A contended lock: a burst of remote acquire/release writes
        // to one lock line, then a quiet critical section.
        if (phase < 32 && phase % 4 == 0)
            deliver(pipe, line(0));
        break;
      }
      case AgentFamily::FalseSharing: {
        // Two cores ping-pong disjoint variables in one hot line:
        // steady invalidations of the same line, forever.
        if (phase == 0)
            deliver(pipe, line(1));
        break;
      }
      case AgentFamily::Mixed:
        break;  // handled by the rotation in tick()
    }
}

void
CoherenceAgent::tick(Pipeline &pipe)
{
    AgentFamily family = family_;
    if (family == AgentFamily::Mixed) {
        switch ((cycle_ / kMixedSlice) % 3) {
          case 0: family = AgentFamily::ProducerConsumer; break;
          case 1: family = AgentFamily::LockHandoff; break;
          default: family = AgentFamily::FalseSharing; break;
        }
    }
    const std::uint64_t period =
        period_ ? period_ : defaultPeriod(family);
    tickFamily(pipe, family, cycle_ % period);
    ++cycle_;
}

} // namespace dmdc
