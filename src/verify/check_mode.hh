/**
 * @file
 * CheckMode — the --check= verification switch.
 *
 * Lives in its own tiny header so sim-layer option structs can name the
 * mode without pulling in the oracle implementation.
 */

#ifndef DMDC_VERIFY_CHECK_MODE_HH
#define DMDC_VERIFY_CHECK_MODE_HH

#include <string>

namespace dmdc
{

/** Commit-time verification mode for a run. */
enum class CheckMode
{
    Off,    ///< no oracle; zero overhead (the default)
    Oracle, ///< ordering oracle attached, workload unchanged
    /** Oracle attached and the random invalidation injector replaced
     *  by a scripted coherence agent (default family "mixed"). */
    Litmus,
};

/** Stable lower-case name, as used by --check= and journals. */
inline const char *
checkModeName(CheckMode m)
{
    switch (m) {
      case CheckMode::Off:    return "off";
      case CheckMode::Oracle: return "oracle";
      case CheckMode::Litmus: return "litmus";
    }
    return "?";
}

/** Parse a checkModeName() spelling; false when unrecognized. */
inline bool
parseCheckMode(const std::string &text, CheckMode &out)
{
    for (CheckMode m : {CheckMode::Off, CheckMode::Oracle,
                        CheckMode::Litmus}) {
        if (text == checkModeName(m)) {
            out = m;
            return true;
        }
    }
    return false;
}

} // namespace dmdc

#endif // DMDC_VERIFY_CHECK_MODE_HH
