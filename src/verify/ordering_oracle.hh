/**
 * @file
 * OrderingOracle — a commit-time memory-ordering checker.
 *
 * The oracle keeps a Louvre-style version-stamped shadow memory
 * (arXiv 1710.10746): a per-byte record of the youngest committed
 * store, plus a per-cache-line external version bumped at every
 * delivered invalidation. Each load snapshots, at the cycle it obtains
 * its value, the shadow writer of every byte it reads and the external
 * version of the line(s) it touches. When the load later commits, the
 * oracle replays program order against the snapshot:
 *
 *  - **Local rule** (all policies, hard): the value source the load
 *    committed with — the forwarding store, or the per-byte snapshot —
 *    must equal the youngest older committed store for every byte.
 *    Commit is in order, so at load commit the shadow holds exactly
 *    that; any mismatch means the pipeline retired a load that raced
 *    an older overlapping store without replaying it.
 *
 *  - **External rule** (coherence-enforcing policies): a load whose
 *    observed line version is behind the commit-time version committed
 *    stale data. DMDC's write-serialization rule (paper Sec. 4.3)
 *    permits exactly one such commit per 2-byte chunk per delivered
 *    invalidation (the INV->WRT promotion); safe loads (when the
 *    policy exempts them) and replay-guard re-commits are also
 *    permitted. Anything beyond that is a forbidden outcome: the real
 *    mechanism would have replayed it, so its commit proves the
 *    checking path is broken.
 *
 * Every hook sits behind a null-pointer gate in the LSQ/pipeline, so a
 * run with --check=off pays nothing.
 */

#ifndef DMDC_VERIFY_ORDERING_ORACLE_HH
#define DMDC_VERIFY_ORDERING_ORACLE_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

#include "common/types.hh"
#include "core/rob.hh"

namespace dmdc
{

/** Aggregate verdict counters, surfaced in results and journals. */
struct OracleCounters
{
    std::uint64_t loadsChecked = 0;    ///< committed loads verified
    std::uint64_t storesApplied = 0;   ///< committed stores shadowed
    std::uint64_t invalidations = 0;   ///< external deliveries seen
    /** Committed loads observing a stale external line version
     *  (counted for every policy; forbidden only past the permitted
     *  write-serialization allowance on enforcing policies). */
    std::uint64_t staleCommits = 0;
    std::uint64_t exemptStale = 0;     ///< safe-load / replay-guard
    std::uint64_t forbiddenLocal = 0;  ///< program-order violations
    std::uint64_t forbiddenExternal = 0; ///< write-serialization breaks
    std::uint64_t claimsChecked = 0;   ///< policy-claimed violations
    std::uint64_t bogusClaims = 0;     ///< claims with no ground truth

    std::uint64_t forbidden() const
    {
        return forbiddenLocal + forbiddenExternal + bogusClaims;
    }
};

/** The commit-time ordering oracle. */
class OrderingOracle : public RetireObserver
{
  public:
    struct Params
    {
        unsigned lineBytes = 64;
        /** Policy contract: stale loads past the write-serialization
         *  allowance must have been replayed (dmdc-* with coherence). */
        bool enforceExternal = false;
        /** Policy contract: safe loads skip the commit probe, so their
         *  stale commits are architecturally permitted. */
        bool exemptSafeLoads = false;
    };

    explicit OrderingOracle(const Params &params);

    /** Adjust the policy contract after the policy is attached. */
    void setContract(bool enforce_external, bool exempt_safe_loads);

    // ---- pipeline/LSQ hooks (all O(bytes) or O(log inflight)) ----

    /** A load obtained its value this cycle (LsqUnit::loadComplete). */
    void loadObserved(const DynInst *load);

    /** A store committed and is about to write memory. */
    void storeCommitted(const DynInst *store);

    /**
     * A load committed without replay. @p exempt_replay mirrors the
     * pipeline's replay guard (suppress_replay): the load was already
     * replayed once and the policy's probe is suppressed.
     */
    void loadCommitted(const DynInst *load, bool exempt_replay);

    /** Squash: drop records of every instruction >= @p from_seq. */
    void squashFrom(SeqNum from_seq);

    /**
     * ROB retire hook (RetireObserver): asserts commit is a strictly
     * age-ordered sequence — the premise the local rule rests on.
     */
    void retired(const DynInst &inst) override;

    /** An external invalidation was delivered for @p addr's line. */
    void invalidationDelivered(Addr addr);

    /**
     * Ground truth from ghostCheck: @p victim_seq prematurely read
     * data a resolving older store @p store_seq will overwrite.
     */
    void groundTruthViolation(SeqNum victim_seq, SeqNum store_seq);

    /**
     * Cross-check a commit-time claimed true violation (dmdc-style
     * ReplayClass::trueViolation) against the ghost ground truth
     * recorded via groundTruthViolation().
     */
    void policyClaimedViolation(const DynInst *victim);

    /**
     * Cross-check a resolve-time claimed violation (an LQ search hit
     * naming @p victim against the resolving @p store) structurally:
     * the store must be older, overlapping, and the load issued.
     */
    void policyClaimedViolation(const DynInst *victim,
                                const DynInst *store);

    // ---- verdict ----

    const OracleCounters &counters() const { return counters_; }
    bool failed() const { return !firstFailure_.empty(); }
    const std::string &firstFailure() const { return firstFailure_; }

  private:
    /** Largest access the snapshot covers (quad word). */
    static constexpr unsigned kMaxBytes = quadWordBytes;

    struct LoadRecord
    {
        std::array<SeqNum, kMaxBytes> snapshot;
        std::uint64_t verFirst = 0; ///< line version, first byte
        std::uint64_t verLast = 0;  ///< line version, last byte
    };

    SeqNum shadowByte(Addr addr) const;
    std::uint64_t lineVersion(Addr addr) const;
    unsigned clampedSize(const DynInst *inst) const;
    void fail(const std::string &message);

    Params params_;
    unsigned lineShift_;

    /** Per-byte youngest committed writer, chunked by quad word. */
    std::unordered_map<Addr, std::array<SeqNum, quadWordBytes>> shadow_;
    /** External version per cache line (bumped per delivery). */
    std::unordered_map<Addr, std::uint64_t> lineVersion_;
    /** Write-serialization allowance: line version at which a 2-byte
     *  chunk's single stale commit was consumed. */
    std::unordered_map<Addr, std::uint64_t> staleConsumed_;
    /** In-flight observed loads, keyed by seq (squash = erase tail). */
    std::map<SeqNum, LoadRecord> inflight_;
    /** Ghost ground truth: victim seq -> violating store seq. */
    std::map<SeqNum, SeqNum> groundTruth_;

    SeqNum lastRetired_ = invalidSeqNum;
    OracleCounters counters_;
    std::string firstFailure_;
};

} // namespace dmdc

#endif // DMDC_VERIFY_ORDERING_ORACLE_HH
