/**
 * @file
 * Slab/freelist object pool and a fixed-capacity ring buffer — the
 * allocation-free building blocks of the simulator hot loop.
 *
 * ObjectPool hands out default-initialized objects from pre-allocated
 * slabs and recycles released ones LIFO, so the per-instruction
 * make_unique/delete churn of the seed implementation disappears from
 * fetch/retire. RingBuffer replaces std::deque in the fetch queue and
 * ROB: contiguous storage, no node allocation, O(1) push/pop at both
 * ends.
 *
 * Recycling safety: the pipeline already treats pointers to retired
 * instructions as dangling and guards every dereference with the
 * paired sequence number (see DynInst::src*ProducerSeq and
 * Pipeline::producerDone). A recycled slot is reused only for a
 * strictly younger instruction, so a guard that passes proves the
 * pointee is the live original — pooling is exactly as safe as the
 * seed's free-after-retire discipline.
 */

#ifndef DMDC_COMMON_OBJECT_POOL_HH
#define DMDC_COMMON_OBJECT_POOL_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "common/logging.hh"

namespace dmdc
{

/**
 * Slab allocator with a LIFO freelist. Objects are reset to their
 * default-constructed state on acquire, so callers never observe
 * stale fields from a previous life.
 *
 * @tparam T default-constructible, copy-assignable object type.
 */
template <typename T>
class ObjectPool
{
  public:
    /**
     * @param initial_capacity objects pre-allocated up front
     * @param max_objects hard cap on total objects (0 = grow on
     *        demand in slabs of the initial capacity)
     */
    explicit ObjectPool(std::size_t initial_capacity,
                        std::size_t max_objects = 0)
        : slabSize_(initial_capacity ? initial_capacity : 1),
          max_(max_objects)
    {
        addSlab(slabSize_);
    }

    ObjectPool(const ObjectPool &) = delete;
    ObjectPool &operator=(const ObjectPool &) = delete;

    /** Objects currently handed out. */
    std::size_t liveCount() const { return total_ - free_.size(); }
    /** Objects allocated across all slabs. */
    std::size_t capacity() const { return total_; }

    /**
     * Acquire a freshly-reset object; nullptr when a bounded pool is
     * exhausted.
     */
    T *
    tryAcquire()
    {
        if (free_.empty()) {
            if (max_ && total_ >= max_)
                return nullptr;
            std::size_t grow = slabSize_;
            if (max_ && total_ + grow > max_)
                grow = max_ - total_;
            addSlab(grow);
        }
        T *obj = free_.back();
        free_.pop_back();
        *obj = T{};
        return obj;
    }

    /** Acquire a freshly-reset object; panics on exhaustion. */
    T *
    acquire()
    {
        T *obj = tryAcquire();
        if (!obj)
            panic("object pool exhausted (%zu objects live)", total_);
        return obj;
    }

    /** Return an object to the pool. It must come from this pool. */
    void
    release(T *obj)
    {
        free_.push_back(obj);
    }

  private:
    void
    addSlab(std::size_t count)
    {
        slabs_.push_back(std::make_unique<T[]>(count));
        T *base = slabs_.back().get();
        free_.reserve(free_.size() + count);
        // Pushed in reverse so the LIFO freelist hands out slab
        // objects in address order initially (cache-friendly).
        for (std::size_t i = count; i-- > 0;)
            free_.push_back(base + i);
        total_ += count;
    }

    std::vector<std::unique_ptr<T[]>> slabs_;
    std::vector<T *> free_;
    std::size_t slabSize_;
    std::size_t total_ = 0;
    std::size_t max_;
};

/**
 * Fixed-capacity circular queue. Indexing is oldest-first:
 * operator[](0) == front(). Push/pop at either end is O(1) with no
 * allocation after construction.
 */
template <typename T>
class RingBuffer
{
  public:
    explicit RingBuffer(std::size_t capacity) : buf_(capacity) {}

    bool empty() const { return size_ == 0; }
    bool full() const { return size_ >= buf_.size(); }
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return buf_.size(); }

    T &front() { return buf_[head_]; }
    const T &front() const { return buf_[head_]; }
    T &back() { return buf_[wrap(size_ - 1)]; }
    const T &back() const { return buf_[wrap(size_ - 1)]; }

    /** @p i counts from the oldest element (0 == front). */
    T &operator[](std::size_t i) { return buf_[wrap(i)]; }
    const T &operator[](std::size_t i) const { return buf_[wrap(i)]; }

    void
    push_back(const T &v)
    {
        if (full())
            panic("ring buffer overflow (capacity %zu)", buf_.size());
        buf_[wrap(size_)] = v;
        ++size_;
    }

    void
    pop_front()
    {
        if (empty())
            panic("ring buffer pop_front on empty buffer");
        head_ = head_ + 1 == buf_.size() ? 0 : head_ + 1;
        --size_;
    }

    void
    pop_back()
    {
        if (empty())
            panic("ring buffer pop_back on empty buffer");
        --size_;
    }

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

  private:
    std::size_t
    wrap(std::size_t i) const
    {
        i += head_;
        return i >= buf_.size() ? i - buf_.size() : i;
    }

    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace dmdc

#endif // DMDC_COMMON_OBJECT_POOL_HH
