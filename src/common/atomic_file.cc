#include "common/atomic_file.hh"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <thread>

#include <fcntl.h>
#include <unistd.h>

namespace dmdc
{

namespace
{

std::atomic<std::uint64_t> g_fsyncs{0};

bool
durableSyncDefault()
{
    const char *env = std::getenv("DMDC_NO_FSYNC");
    return !(env && env[0] == '1' && env[1] == '\0');
}

std::atomic<bool> g_durable{durableSyncDefault()};

/** fsync @p fd, counting the call. False on failure (EINTR retried). */
bool
syncFd(int fd)
{
    g_fsyncs.fetch_add(1, std::memory_order_relaxed);
    int rc;
    do {
        rc = ::fsync(fd);
    } while (rc < 0 && errno == EINTR);
    return rc == 0;
}

/**
 * fsync the directory containing @p path so the rename's directory
 * entry itself is on disk. Best-effort: some filesystems refuse
 * directory fsync (EINVAL) and the file is already visible either
 * way.
 */
void
syncParentDir(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    const int fd = ::open(dir.empty() ? "/" : dir.c_str(),
                          O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0)
        return;
    syncFd(fd);
    ::close(fd);
}

/** Full write() loop: EINTR retries, partial writes continued. */
bool
writeAll(int fd, const char *data, std::size_t size)
{
    while (size > 0) {
        const ssize_t rc = ::write(fd, data, size);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += rc;
        size -= static_cast<std::size_t>(rc);
    }
    return true;
}

} // namespace

void
setDurableSync(bool enabled)
{
    g_durable.store(enabled, std::memory_order_relaxed);
}

bool
durableSyncEnabled()
{
    return g_durable.load(std::memory_order_relaxed);
}

std::uint64_t
durableSyncCount()
{
    return g_fsyncs.load(std::memory_order_relaxed);
}

bool
durableSyncFd(int fd)
{
    if (!durableSyncEnabled())
        return true;
    return syncFd(fd);
}

bool
writeFileAtomic(const std::string &path, const std::string &content)
{
    namespace fs = std::filesystem;
    std::ostringstream tmp_name;
    // pid + thread id: thread ids alone can collide *across*
    // processes (every process's main thread may share one), and
    // cache/heartbeat directories are shared between processes.
    tmp_name << path << ".tmp." << ::getpid() << '.'
             << std::this_thread::get_id();
    const std::string tmp = tmp_name.str();

    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                          0644);
    if (fd < 0)
        return false;
    bool ok = writeAll(fd, content.data(), content.size());
    // Data blocks must reach disk *before* the rename publishes the
    // name, or a power cut can leave the new name pointing at a
    // zero-length or garbage file.
    if (ok && durableSyncEnabled())
        ok = syncFd(fd);
    if (::close(fd) != 0)
        ok = false;
    std::error_code ec;
    if (!ok) {
        fs::remove(tmp, ec);
        return false;
    }

    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }
    // And the directory entry after: the rename itself is metadata in
    // the parent directory.
    if (durableSyncEnabled())
        syncParentDir(path);
    return true;
}

} // namespace dmdc
