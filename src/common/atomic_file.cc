#include "common/atomic_file.hh"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <unistd.h>

namespace dmdc
{

bool
writeFileAtomic(const std::string &path, const std::string &content)
{
    namespace fs = std::filesystem;
    std::ostringstream tmp_name;
    // pid + thread id: thread ids alone can collide *across*
    // processes (every process's main thread may share one), and
    // cache/heartbeat directories are shared between processes.
    tmp_name << path << ".tmp." << ::getpid() << '.'
             << std::this_thread::get_id();
    const std::string tmp = tmp_name.str();
    {
        std::ofstream os(tmp, std::ios::binary);
        if (!os)
            return false;
        os << content;
        os.flush();
        if (!os)
            return false;
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

} // namespace dmdc
