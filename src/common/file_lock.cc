#include "common/file_lock.hh"

#include <cerrno>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

namespace dmdc
{

FileLock::FileLock(const std::string &path, Mode mode, bool block)
{
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC,
                          0644);
    if (fd < 0)
        return;
    int op = mode == Mode::Exclusive ? LOCK_EX : LOCK_SH;
    if (!block)
        op |= LOCK_NB;
    int rc;
    do {
        rc = ::flock(fd, op);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        ::close(fd);
        return;
    }
    fd_ = fd;
}

FileLock::~FileLock()
{
    release();
}

FileLock::FileLock(FileLock &&other) noexcept : fd_(other.fd_)
{
    other.fd_ = -1;
}

FileLock &
FileLock::operator=(FileLock &&other) noexcept
{
    if (this != &other) {
        release();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void
FileLock::release()
{
    if (fd_ >= 0) {
        // close() drops the flock; no explicit LOCK_UN needed.
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace dmdc
