/**
 * @file
 * Low-overhead campaign tracing: per-thread lock-free ring buffers
 * feeding a Chrome trace-event (chrome://tracing / Perfetto) exporter.
 *
 * The legacy trace() channels in common/logging.hh print one stderr
 * line per event through stdio — fine for debugging a single run,
 * unusably slow at campaign scale and invisible to tools. This sink
 * records ~32-byte POD events into a fixed-capacity per-thread ring
 * (overwrite-oldest, sequence-stamped) and defers all formatting to
 * export time, so a traced campaign keeps its parallel throughput and
 * an untraced one pays a single relaxed atomic load per call site.
 *
 * Vocabulary: duration spans (TraceSpan, exported as Chrome "X"
 * complete events), instants ("i") and counters ("C"). Category and
 * event names are interned once into 16-bit ids; the hot path never
 * touches a string.
 *
 * Concurrency model: each ring has exactly one writer (the owning
 * thread, via a thread_local handle) and any thread may snapshot it.
 * Every slot carries a seqlock-style stamp — odd while the writer is
 * mid-copy, 2*(seq+1) once published — and the payload words are
 * relaxed atomics, so a concurrent snapshot simply discards torn or
 * overwritten slots instead of racing (TSan-clean by construction).
 * Rings are registered with the process-wide sink as shared_ptrs and
 * survive thread exit, so the at-exit exporter still sees records
 * from campaign workers that have already been joined.
 *
 * Multi-process campaigns: each process writes its own trace file
 * (shard workers derive "trace.shard0of2.json" from the base path the
 * way checkpoint manifests do) and tools/trace_merge combines them —
 * process ids keep the streams apart inside one merged timeline.
 */

#ifndef DMDC_COMMON_TRACE_SINK_HH
#define DMDC_COMMON_TRACE_SINK_HH

#include <atomic>
#include <cstdint>
#include <string>

namespace dmdc
{

/**
 * Process-wide tracing configuration, normally parsed from
 * --trace=<channels|all> / --trace-out=<path> by sim/cli_options.
 * Diagnostics only: never part of a run-cache key, never affects
 * simulation results or deterministic journals.
 */
struct TraceOptions
{
    /** Comma-separated channel/category list, or "all"; empty = off. */
    std::string channels;
    /** Chrome trace-event JSON written at exit (or traceFlush()). */
    std::string outPath = "trace.json";
    /** Per-thread ring capacity in records (rounded up to 2^k). */
    std::uint64_t bufferRecords = 65536;

    bool enabled() const { return !channels.empty(); }
};

/** Event kinds; values are the Chrome trace-event "ph" letters. */
enum class TraceEventKind : std::uint8_t
{
    Complete = 'X', ///< span with duration (TraceSpan)
    Instant  = 'i',
    Counter  = 'C',
};

/**
 * One interned trace category ("kernel", "runner", ...). Stable
 * address for the process lifetime; the hot-path enablement test is
 * one relaxed atomic load.
 */
class TraceCategory
{
  public:
    bool on() const { return enabled_.load(std::memory_order_relaxed); }
    const std::string &name() const { return name_; }
    std::uint16_t id() const { return id_; }

  private:
    friend class TraceSink;
    TraceCategory(std::string name, std::uint16_t id)
        : name_(std::move(name)), id_(id)
    {}

    std::string name_;
    std::uint16_t id_;
    std::atomic<bool> enabled_{false};
};

/** A decoded trace record (the in-ring form packs this into 5 u64s). */
struct TraceRecord
{
    std::uint64_t seq = 0;   ///< per-ring publication order
    std::uint64_t tsNs = 0;  ///< ns since the process trace epoch
    std::uint64_t arg = 0;   ///< duration ns (Complete) / value
    std::uint16_t category = 0;
    std::uint16_t name = 0;
    TraceEventKind kind = TraceEventKind::Instant;
    bool hasArg = false;
};

/**
 * Intern @p name, returning a stable category with process lifetime.
 * Safe from any thread, any time (including before configuration);
 * a freshly interned category immediately reflects the active channel
 * set. Beyond the table cap every name maps to the shared "overflow"
 * category.
 */
TraceCategory &traceCategory(const char *name);

/**
 * Intern an event name into a 16-bit id. Call sites intern once into
 * a local static (or emit per-run identities such as
 * "gzip|dmdc|cfg3"); beyond the cap (kTraceMaxNames) the shared
 * "<overflow>" id 0 is returned.
 */
std::uint16_t traceNameId(const std::string &name);
constexpr std::size_t kTraceMaxNames = 4096;

/**
 * (Re)configure process-wide tracing: sets the active channel set
 * (also mirrored into the legacy trace() channel gate so fprintf
 * channels and sink categories never disagree), the output path, and
 * the per-thread ring capacity, and arms an at-exit export. Empty
 * channels disables capture. Callable repeatedly — the daemon and
 * tests reconfigure without re-exec; rings created under an old
 * capacity are retired (generation bump) rather than resized.
 */
void traceConfigure(const TraceOptions &options);

/** Whether a configure() with non-empty channels is in effect. */
bool traceCaptureActive();

/** The currently configured options (defaults when unconfigured). */
TraceOptions traceCurrentOptions();

/** Monotonic ns since the process trace epoch (first-use anchored). */
std::uint64_t traceNowNs();

/**
 * Name the calling thread in the exported trace (Chrome thread_name
 * metadata); campaign workers call this once at thread start.
 */
void traceSetThreadName(const std::string &name);

/** Record an instant event; no-op unless @p cat is enabled. */
void traceInstant(TraceCategory &cat, std::uint16_t name);
/** Instant with one numeric argument (exported as args.v). */
void traceInstantArg(TraceCategory &cat, std::uint16_t name,
                     std::uint64_t arg);
/** Record a counter sample (exported as a Chrome "C" event). */
void traceCounter(TraceCategory &cat, std::uint16_t name,
                  std::uint64_t value);

/**
 * RAII duration span: captures the start timestamp when constructed
 * on an enabled category and publishes ONE Complete record (with
 * duration) at destruction — half the record volume of begin/end
 * pairs and no unbalanced-span failure mode.
 */
class TraceSpan
{
  public:
    TraceSpan(TraceCategory &cat, std::uint16_t name)
        : cat_(cat.on() ? &cat : nullptr), name_(name),
          startNs_(cat_ ? traceNowNs() : 0)
    {}
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    TraceCategory *cat_;
    std::uint16_t name_;
    std::uint64_t startNs_;
};

/**
 * Merge every per-thread ring (including rings of exited threads)
 * and write one Chrome trace-event JSON file to @p path. Records are
 * globally ordered by timestamp; torn or mid-overwrite slots are
 * skipped. Returns false + @p err on I/O failure. Exports even when
 * capture is inactive (the file then holds only metadata events).
 */
bool traceExportChrome(const std::string &path, std::string &err);

/** Export to the configured outPath now (no-op when unconfigured). */
void traceFlush();

/**
 * Drop all buffered records and thread registrations (generation
 * bump; live threads re-register on their next event). Test hook.
 */
void traceReset();

/** Number of records published since process start (test hook). */
std::uint64_t traceRecordsPublished();

/**
 * Insert @p tag before the filename extension: ("trace.json",
 * ".supervisor") -> "trace.supervisor.json"; appended when the file
 * has no extension. Used to keep cooperating processes from
 * colliding on one trace file.
 */
std::string tracePathWithTag(const std::string &path,
                             const std::string &tag);

/**
 * Derive the per-process trace path for shard @p index of @p count:
 * "trace.json" -> "trace.shard0of2.json" (unchanged when count <= 1).
 * Mirrors shardStatePath() so multi-process campaigns never collide
 * on one output file.
 */
std::string traceShardPath(const std::string &path, unsigned index,
                           unsigned count);

} // namespace dmdc

#endif // DMDC_COMMON_TRACE_SINK_HH
