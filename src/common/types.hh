/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef DMDC_COMMON_TYPES_HH
#define DMDC_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace dmdc
{

/** Byte address in the simulated virtual address space. */
using Addr = std::uint64_t;

/** Simulation time, in core clock cycles. */
using Cycle = std::uint64_t;

/**
 * Global dynamic-instruction age. Monotonically increasing across the
 * whole run (never recycled), so comparing two SeqNums always gives
 * correct relative program order, even across squashes. This models the
 * "ROB ID with some simple extension" the paper uses for YLA contents.
 */
using SeqNum = std::uint64_t;

/** Sentinel meaning "no instruction" / "older than everything". */
constexpr SeqNum invalidSeqNum = 0;

/** Sentinel for an invalid/unknown address. */
constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/** Number of bytes in a quad word (the checking-table granularity). */
constexpr unsigned quadWordBytes = 8;

/**
 * Test whether two byte ranges [a, a+asize) and [b, b+bsize) overlap.
 * Used for all memory-dependence address checks.
 */
inline bool
rangesOverlap(Addr a, unsigned asize, Addr b, unsigned bsize)
{
    return a < b + bsize && b < a + asize;
}

} // namespace dmdc

#endif // DMDC_COMMON_TYPES_HH
