#include "common/append_log.hh"

#include <cerrno>

#include <fcntl.h>
#include <unistd.h>

#include "common/atomic_file.hh"
#include "common/file_lock.hh"

namespace dmdc
{

bool
appendLogLine(const std::string &logPath, const std::string &lockPath,
              const std::string &line)
{
    FileLock lock(lockPath, FileLock::Mode::Shared);
    const int fd = ::open(logPath.c_str(),
                          O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                          0644);
    if (fd < 0)
        return false;
    // One write() per record: O_APPEND makes it land as an unsplit
    // unit even with concurrent appenders. A short write (full disk)
    // leaves a torn line the readers' CRC check will skip.
    ssize_t rc;
    do {
        rc = ::write(fd, line.data(), line.size());
    } while (rc < 0 && errno == EINTR);
    bool ok = rc == static_cast<ssize_t>(line.size());
    // The record only counts as durable once it's on disk: a ticket
    // or index entry that evaporates with the page cache defeats the
    // crash-recovery replay it exists for. (No-op under
    // setDurableSync(false)/DMDC_NO_FSYNC=1.)
    if (ok && !durableSyncFd(fd))
        ok = false;
    ::close(fd);
    return ok;
}

} // namespace dmdc
