/**
 * @file
 * Advisory cross-process file locking (flock) behind an RAII guard.
 *
 * The cache storage engine coordinates index compaction between
 * processes sharing one `.dmdc_cache/` directory: appenders hold the
 * lock shared while they add a record to the index log, the compactor
 * holds it exclusive while it rewrites the log. flock() is used rather
 * than a create-exclusive lock file because the kernel releases it
 * automatically when the holder dies, so a crashed compactor can never
 * wedge every future writer.
 *
 * The lock file itself is a zero-byte sibling that is never renamed or
 * deleted; locking the *log* fd would silently stop coordinating the
 * moment compaction renames a fresh log into place.
 */

#ifndef DMDC_COMMON_FILE_LOCK_HH
#define DMDC_COMMON_FILE_LOCK_HH

#include <string>

namespace dmdc
{

/** One acquired (or failed) advisory lock; releases on destruction. */
class FileLock
{
  public:
    enum class Mode
    {
        Shared,    ///< many holders (index appenders)
        Exclusive, ///< sole holder (index compaction / rebuild)
    };

    FileLock() = default;

    /** Acquire @p path in @p mode. @p block false = try-lock: held()
     *  is false when another process holds a conflicting lock. The
     *  lock file is created on demand (0644). */
    FileLock(const std::string &path, Mode mode, bool block = true);

    ~FileLock();

    FileLock(FileLock &&other) noexcept;
    FileLock &operator=(FileLock &&other) noexcept;
    FileLock(const FileLock &) = delete;
    FileLock &operator=(const FileLock &) = delete;

    /** True when the lock was acquired and is still held. */
    bool held() const { return fd_ >= 0; }

    /** Release early (idempotent). */
    void release();

  private:
    int fd_ = -1;
};

} // namespace dmdc

#endif // DMDC_COMMON_FILE_LOCK_HH
