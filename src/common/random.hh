/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything stochastic in the simulator (synthetic workloads,
 * wrong-path synthesis, invalidation injection) draws from Rng so runs
 * are exactly reproducible given a seed.
 */

#ifndef DMDC_COMMON_RANDOM_HH
#define DMDC_COMMON_RANDOM_HH

#include <cstddef>
#include <cstdint>

namespace dmdc
{

/**
 * A small, fast, seedable PRNG (xoshiro256** variant). Deterministic
 * across platforms; not suitable for cryptography, ideal for simulation.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Re-seed, returning the generator to a known state. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t range(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t between(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability @p p of true. */
    bool chance(double p);

    /**
     * Sample a geometric-ish distance >= 1 with mean roughly @p mean.
     * Used for dependence-distance and burst-length modeling.
     */
    unsigned geometric(double mean);

  private:
    std::uint64_t s[4];
};

/** splitmix64 step, also usable as a stateless integer hash. */
std::uint64_t splitmix64(std::uint64_t &state);

/** Stateless mixing hash of a 64-bit value (for per-PC determinism). */
std::uint64_t mixHash(std::uint64_t v);

/**
 * Stateless hash of a byte string (FNV-1a folded through splitmix64).
 * Used for cache fingerprints; deterministic across platforms and
 * runs, unlike std::hash.
 */
std::uint64_t hashBytes(const void *data, std::size_t len,
                        std::uint64_t seed = 0);

} // namespace dmdc

#endif // DMDC_COMMON_RANDOM_HH
