/**
 * @file
 * Shared append-only log-line idiom for crash-safe sidecar logs.
 *
 * Both the cache index (`.dmdc_cache/index.log`) and the service
 * ticket log (`tickets.log`) persist state as newline-terminated,
 * self-validating records appended by concurrent writers. The safety
 * argument is identical for both and lives here:
 *
 *  - the appender holds the sibling lock file *shared* (flock), which
 *    excludes a concurrent compaction (exclusive holder) from renaming
 *    the log away between the open and the write;
 *  - the record is written with a single write() on an O_APPEND fd,
 *    so concurrent appenders interleave whole records, never bytes;
 *  - readers CRC-check every record and skip torn or damaged lines,
 *    so a crash mid-append costs at most the record being written;
 *  - the fd is fsynced after the write (see atomic_file.hh's
 *    durability knob), so an acknowledged record survives power loss,
 *    not merely process death.
 */

#ifndef DMDC_COMMON_APPEND_LOG_HH
#define DMDC_COMMON_APPEND_LOG_HH

#include <string>

namespace dmdc
{

/**
 * Append @p line (which must already be newline-terminated) to the
 * log at @p logPath while holding @p lockPath shared. The log file is
 * created on demand (0644). Returns false when the log cannot be
 * opened or the write fails — callers treat that as a lost record,
 * never as fatal (append-only logs are accounting, not content).
 */
bool appendLogLine(const std::string &logPath,
                   const std::string &lockPath,
                   const std::string &line);

} // namespace dmdc

#endif // DMDC_COMMON_APPEND_LOG_HH
