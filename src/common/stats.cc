/**
 * @file
 * Statistics infrastructure implementation.
 */

#include "common/stats.hh"

#include <algorithm>
#include <iomanip>

#include "common/logging.hh"

namespace dmdc
{

void
Average::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
}

void
Average::reset()
{
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

Histogram::Histogram(unsigned num_buckets, double bucket_width)
    : buckets_(num_buckets, 0), bucketWidth_(bucket_width)
{
    if (num_buckets == 0 || bucket_width <= 0.0)
        panic("Histogram requires positive bucket count and width");
}

void
Histogram::sample(double v)
{
    ++count_;
    sum_ += v;
    if (v < 0.0) {
        ++buckets_.front();
        return;
    }
    const auto idx = static_cast<std::size_t>(v / bucketWidth_);
    if (idx >= buckets_.size())
        ++overflow_;
    else
        ++buckets_[idx];
}

std::uint64_t
Histogram::bucket(unsigned i) const
{
    if (i >= buckets_.size())
        panic("Histogram bucket %u out of range", i);
    return buckets_[i];
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = overflow_ = 0;
    sum_ = 0.0;
}

StatGroup::StatGroup(std::string name) : name_(std::move(name))
{
}

void
StatGroup::regCounter(const std::string &name, Counter *c,
                      const std::string &desc)
{
    entries_[name] = Entry{desc, c, nullptr, nullptr};
}

void
StatGroup::regAverage(const std::string &name, Average *a,
                      const std::string &desc)
{
    entries_[name] = Entry{desc, nullptr, a, nullptr};
}

void
StatGroup::regHistogram(const std::string &name, Histogram *h,
                        const std::string &desc)
{
    entries_[name] = Entry{desc, nullptr, nullptr, h};
}

void
StatGroup::addChild(StatGroup *child)
{
    children_.push_back(child);
}

void
StatGroup::resetAll()
{
    for (auto &[name, e] : entries_) {
        if (e.counter)
            e.counter->reset();
        if (e.average)
            e.average->reset();
        if (e.histogram)
            e.histogram->reset();
    }
    for (auto *child : children_)
        child->resetAll();
}

void
StatGroup::dump(std::ostream &os, const std::string &indent) const
{
    if (!name_.empty())
        os << indent << "[" << name_ << "]\n";
    const std::string inner = indent + "  ";
    for (const auto &[name, e] : entries_) {
        os << inner << std::left << std::setw(32) << name << " ";
        if (e.counter) {
            os << e.counter->value();
        } else if (e.average) {
            os << "mean=" << e.average->mean()
               << " min=" << e.average->min()
               << " max=" << e.average->max()
               << " n=" << e.average->count();
        } else if (e.histogram) {
            os << "mean=" << e.histogram->mean()
               << " n=" << e.histogram->count();
        }
        if (!e.desc.empty())
            os << "   # " << e.desc;
        os << "\n";
    }
    for (const auto *child : children_)
        child->dump(os, inner);
}

const Counter *
StatGroup::findCounter(const std::string &name) const
{
    auto it = entries_.find(name);
    if (it != entries_.end() && it->second.counter)
        return it->second.counter;
    for (const auto *child : children_) {
        if (const auto *c = child->findCounter(name))
            return c;
    }
    return nullptr;
}

} // namespace dmdc
