/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte
 * strings. Used to checksum on-disk run-cache entries so truncated or
 * bit-flipped files are detected instead of trusted.
 */

#ifndef DMDC_COMMON_CRC32_HH
#define DMDC_COMMON_CRC32_HH

#include <cstddef>
#include <cstdint>

namespace dmdc
{

/**
 * CRC-32 of @p len bytes at @p data. @p seed allows incremental
 * computation: pass the previous call's return value to continue a
 * running checksum (0 starts a fresh one).
 */
std::uint32_t crc32(const void *data, std::size_t len,
                    std::uint32_t seed = 0);

} // namespace dmdc

#endif // DMDC_COMMON_CRC32_HH
