/**
 * @file
 * Atomic whole-file publication: write-to-temp + fsync + rename.
 *
 * Several subsystems publish small state files that other processes
 * read concurrently and that must survive a kill at any instant —
 * checkpoint manifests, run-cache entries, campaign journals,
 * heartbeats. POSIX rename() within one filesystem is atomic, so a
 * reader either sees the previous complete file or the new complete
 * file, never a torn one. This helper centralizes the pattern so no
 * caller hand-rolls it with a plain std::ofstream again.
 *
 * Durability: rename alone survives SIGKILL but not power loss — the
 * kernel may reorder the rename's metadata ahead of the temp file's
 * data blocks, so a crash can leave the *new* name pointing at
 * garbage. writeFileAtomic() therefore fsyncs the temp file before
 * the rename and the parent directory after it, and appendLogLine()
 * (append_log.hh) fsyncs the log fd after each record. Tests that
 * hammer these paths thousands of times can opt out with
 * setDurableSync(false) (or DMDC_NO_FSYNC=1); production callers
 * never should.
 */

#ifndef DMDC_COMMON_ATOMIC_FILE_HH
#define DMDC_COMMON_ATOMIC_FILE_HH

#include <cstdint>
#include <string>

namespace dmdc
{

/**
 * Process-wide durability knob. Enabled by default; the environment
 * variable DMDC_NO_FSYNC=1 (read once, at first use) or an explicit
 * setDurableSync(false) disables the fsync calls — the write-to-temp
 * + rename atomicity is unaffected, only power-loss durability is
 * traded away. Meant for tests and throwaway sandboxes.
 */
void setDurableSync(bool enabled);
bool durableSyncEnabled();

/**
 * Number of fsync()/fdatasync() calls this layer has issued (temp
 * files, parent directories, append logs). Monotonic, process-wide;
 * tests diff it across an operation to assert the durability path
 * actually ran.
 */
std::uint64_t durableSyncCount();

/**
 * fsync @p fd through the durability layer: counts toward
 * durableSyncCount(), retries EINTR, and is a successful no-op when
 * durable sync is disabled. For callers holding a raw fd (the
 * append-log); writeFileAtomic() handles its own files.
 */
bool durableSyncFd(int fd);

/**
 * Write @p content to a temp file next to @p path and rename it into
 * place. The temp name embeds the caller's pid and thread id, so
 * concurrent writers (threads or processes sharing a directory) never
 * collide on the temp file and the last rename wins cleanly. With
 * durable sync enabled (the default) the temp file is fsynced before
 * the rename and the parent directory after it, so the publication
 * survives power loss, not just SIGKILL.
 *
 * Returns false when the temp file cannot be created/written/synced
 * or the rename fails (the temp file is removed in that case). A
 * failed *directory* fsync after a successful rename still returns
 * true — the file is visible and complete; only its crash-ordering
 * guarantee is weakened. Never throws; callers that treat publication
 * as best-effort can ignore the result.
 */
bool writeFileAtomic(const std::string &path,
                     const std::string &content);

} // namespace dmdc

#endif // DMDC_COMMON_ATOMIC_FILE_HH
