/**
 * @file
 * Atomic whole-file publication: write-to-temp + rename.
 *
 * Several subsystems publish small state files that other processes
 * read concurrently and that must survive a kill at any instant —
 * checkpoint manifests, run-cache entries, campaign journals,
 * heartbeats. POSIX rename() within one filesystem is atomic, so a
 * reader either sees the previous complete file or the new complete
 * file, never a torn one. This helper centralizes the pattern so no
 * caller hand-rolls it with a plain std::ofstream again.
 */

#ifndef DMDC_COMMON_ATOMIC_FILE_HH
#define DMDC_COMMON_ATOMIC_FILE_HH

#include <string>

namespace dmdc
{

/**
 * Write @p content to a temp file next to @p path and rename it into
 * place. The temp name embeds the caller's pid and thread id, so
 * concurrent writers (threads or processes sharing a directory) never
 * collide on the temp file and the last rename wins cleanly.
 *
 * Returns false when the temp file cannot be created/written or the
 * rename fails (the temp file is removed in that case). Never throws;
 * callers that treat publication as best-effort can ignore the result.
 */
bool writeFileAtomic(const std::string &path,
                     const std::string &content);

} // namespace dmdc

#endif // DMDC_COMMON_ATOMIC_FILE_HH
