/**
 * @file
 * Build provenance: the configure-time git commit hash.
 *
 * Journals record the commit that produced them, journal_merge refuses
 * to merge shard journals from different builds, and the dmdc_serve
 * handshake refuses clients built from different sources. Centralized
 * here so exactly one translation unit carries the DMDC_GIT_COMMIT
 * compile definition and every consumer (runner, daemon, client,
 * --version) reports the same string.
 */

#ifndef DMDC_COMMON_BUILD_INFO_HH
#define DMDC_COMMON_BUILD_INFO_HH

namespace dmdc
{

/** Short git commit hash of this build ("unknown" outside a repo). */
const char *buildCommit();

} // namespace dmdc

#endif // DMDC_COMMON_BUILD_INFO_HH
