/**
 * @file
 * Implementation of the gem5-style logging helpers.
 */

#include "common/logging.hh"

#include <array>
#include <cstdio>
#include <cstdlib>

namespace dmdc
{

namespace
{

std::array<std::uint64_t, 4> messageCounts{};

const char *
levelPrefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

} // namespace

namespace detail
{

void
logMessage(LogLevel level, const char *fmt, ...)
{
    ++messageCounts[static_cast<unsigned>(level)];

    std::fprintf(stderr, "%s: ", levelPrefix(level));
    std::va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);

    if (level == LogLevel::Panic)
        std::abort();
    if (level == LogLevel::Fatal)
        std::exit(1);
}

} // namespace detail

std::uint64_t
loggedMessageCount(LogLevel level)
{
    return messageCounts[static_cast<unsigned>(level)];
}

} // namespace dmdc
