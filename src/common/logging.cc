/**
 * @file
 * Implementation of the gem5-style logging helpers.
 */

#include "common/logging.hh"

#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace dmdc
{

namespace
{

// Simulations run concurrently under the campaign engine; counts are
// atomic and each message is formatted into a private buffer and
// written with one stdio call so lines never interleave across
// threads (stdio itself locks per call).
std::array<std::atomic<std::uint64_t>, 5> messageCounts{};

const char *
levelPrefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
      case LogLevel::Trace:  return "trace";
    }
    return "?";
}

/** One immutable channel set; swapped wholesale on reconfigure. */
struct TraceConfig
{
    bool all = false;
    std::vector<std::string> channels;

    void
    parse(const std::string &spec)
    {
        std::size_t start = 0;
        while (start <= spec.size()) {
            std::size_t comma = spec.find(',', start);
            if (comma == std::string::npos)
                comma = spec.size();
            std::string name = spec.substr(start, comma - start);
            if (name == "all")
                all = true;
            else if (!name.empty())
                channels.push_back(std::move(name));
            start = comma + 1;
        }
    }

    bool
    enabled(const char *channel) const
    {
        if (all)
            return true;
        for (const std::string &name : channels) {
            if (name == channel)
                return true;
        }
        return false;
    }
};

/**
 * The active channel set. setTraceChannels() installs a fresh
 * TraceConfig with an atomic pointer swap; superseded configs are
 * intentionally leaked because a concurrent traceEnabled() may still
 * be reading one (reconfiguration is rare and bounded, so the leak
 * is too).
 */
std::atomic<const TraceConfig *> activeTraceConfig{nullptr};

/** Warn (once per process) when the deprecated env spelling is set. */
void
warnDeprecatedTraceEnvOnce()
{
    static const bool warned = [] {
        if (std::getenv("DMDC_TRACE") ||
            std::getenv("DMDC_DEBUG_VIOLATIONS")) {
            detail::logMessage(LogLevel::Warn,
                "DMDC_TRACE / DMDC_DEBUG_VIOLATIONS are deprecated; "
                "use --trace=<channels|all> (and --trace-out=<path> "
                "for the Chrome trace)");
        }
        return true;
    }();
    (void)warned;
}

/**
 * Channel set seeded from the deprecated environment variables; used
 * only until the first setTraceChannels() call.
 */
const TraceConfig &
envTraceConfig()
{
    static const TraceConfig *config = [] {
        auto *seeded = new TraceConfig;
        if (const char *env = std::getenv("DMDC_TRACE"))
            seeded->parse(env);
        // Pre-trace-facility spelling, kept working.
        if (std::getenv("DMDC_DEBUG_VIOLATIONS"))
            seeded->channels.push_back("violations");
        return seeded;
    }();
    return *config;
}

} // namespace

namespace detail
{

void
logMessage(LogLevel level, const char *fmt, ...)
{
    messageCounts[static_cast<unsigned>(level)].fetch_add(
        1, std::memory_order_relaxed);

    char stack_buf[512];
    std::va_list ap;
    va_start(ap, fmt);
    std::va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, ap);
    va_end(ap);

    std::string heap_buf;
    const char *msg = stack_buf;
    if (n >= static_cast<int>(sizeof(stack_buf))) {
        heap_buf.resize(static_cast<std::size_t>(n) + 1);
        std::vsnprintf(heap_buf.data(), heap_buf.size(), fmt, ap2);
        msg = heap_buf.c_str();
    }
    va_end(ap2);

    std::fprintf(stderr, "%s: %s\n", levelPrefix(level),
                 n < 0 ? fmt : msg);

    if (level == LogLevel::Panic)
        std::abort();
    if (level == LogLevel::Fatal)
        std::exit(1);
}

void
traceMessage(const char *channel, const char *fmt, ...)
{
    messageCounts[static_cast<unsigned>(LogLevel::Trace)].fetch_add(
        1, std::memory_order_relaxed);

    char stack_buf[512];
    std::va_list ap;
    va_start(ap, fmt);
    std::va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, ap);
    va_end(ap);

    std::string heap_buf;
    const char *msg = stack_buf;
    if (n >= static_cast<int>(sizeof(stack_buf))) {
        heap_buf.resize(static_cast<std::size_t>(n) + 1);
        std::vsnprintf(heap_buf.data(), heap_buf.size(), fmt, ap2);
        msg = heap_buf.c_str();
    }
    va_end(ap2);

    std::fprintf(stderr, "trace(%s): %s\n", channel,
                 n < 0 ? fmt : msg);
}

} // namespace detail

bool
traceEnabled(const char *channel)
{
    warnDeprecatedTraceEnvOnce();
    if (const TraceConfig *config =
            activeTraceConfig.load(std::memory_order_acquire)) {
        return config->enabled(channel);
    }
    return envTraceConfig().enabled(channel);
}

void
warnIfDeprecatedTraceEnv()
{
    warnDeprecatedTraceEnvOnce();
}

void
setTraceChannels(const std::string &spec)
{
    warnDeprecatedTraceEnvOnce();
    auto *config = new TraceConfig;
    config->parse(spec);
    activeTraceConfig.store(config, std::memory_order_release);
}

std::uint64_t
loggedMessageCount(LogLevel level)
{
    return messageCounts[static_cast<unsigned>(level)].load(
        std::memory_order_relaxed);
}

} // namespace dmdc
