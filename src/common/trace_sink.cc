/**
 * @file
 * Implementation of the lock-free trace sink and Chrome exporter.
 *
 * Seqlock discipline (Boehm, "Can seqlocks get along with programming
 * language memory models?"): the writer stamps a slot odd, fences
 * release, stores the payload words relaxed, then publishes the even
 * stamp with release; a reader loads the stamp with acquire, reads
 * the payload relaxed, fences acquire, and re-reads the stamp — any
 * mismatch or odd value means the slot was torn mid-copy and is
 * skipped. Payload words are themselves atomics, so even a discarded
 * read is well-defined (and TSan-clean).
 */

#include "common/trace_sink.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include <unistd.h>

#include "common/atomic_file.hh"
#include "common/logging.hh"

namespace dmdc
{

namespace
{

constexpr std::size_t kTraceMaxCategories = 256;
constexpr std::uint64_t kMinRingRecords = 16;
constexpr std::uint64_t kMaxRingRecords = 1u << 20;

/** Round up to a power of two within [kMin, kMax]. */
std::uint64_t
roundCapacity(std::uint64_t requested)
{
    std::uint64_t cap = kMinRingRecords;
    while (cap < requested && cap < kMaxRingRecords)
        cap <<= 1;
    return cap;
}

/** One ring slot: seqlock stamp + three packed payload words. */
struct Slot
{
    /** 0 = never written; 2*seq+1 = writer mid-copy; 2*seq+2 = valid. */
    std::atomic<std::uint64_t> stamp{0};
    std::atomic<std::uint64_t> tsNs{0};
    std::atomic<std::uint64_t> arg{0};
    /** category | name<<16 | kind<<32 | hasArg<<40. */
    std::atomic<std::uint64_t> meta{0};
};

std::uint64_t
packMeta(std::uint16_t category, std::uint16_t name, TraceEventKind kind,
         bool hasArg)
{
    return static_cast<std::uint64_t>(category) |
           (static_cast<std::uint64_t>(name) << 16) |
           (static_cast<std::uint64_t>(kind) << 32) |
           (static_cast<std::uint64_t>(hasArg ? 1 : 0) << 40);
}

void
unpackMeta(std::uint64_t meta, TraceRecord &rec)
{
    rec.category = static_cast<std::uint16_t>(meta & 0xffff);
    rec.name = static_cast<std::uint16_t>((meta >> 16) & 0xffff);
    rec.kind = static_cast<TraceEventKind>((meta >> 32) & 0xff);
    rec.hasArg = ((meta >> 40) & 1) != 0;
}

} // namespace

/**
 * Fixed-capacity single-writer ring. The owning thread writes through
 * its thread_local handle; the exporter snapshots from any thread.
 */
class TraceRing
{
  public:
    TraceRing(std::uint64_t capacity, unsigned tid)
        : slots_(new Slot[capacity]), mask_(capacity - 1), tid_(tid)
    {}

    unsigned tid() const { return tid_; }

    void
    setName(const std::string &name)
    {
        std::lock_guard<std::mutex> lock(nameMutex_);
        name_ = name;
    }

    std::string
    name() const
    {
        std::lock_guard<std::mutex> lock(nameMutex_);
        return name_;
    }

    /** Writer thread only. */
    void
    write(std::uint64_t tsNs, std::uint64_t arg, std::uint64_t meta)
    {
        Slot &slot = slots_[next_ & mask_];
        const std::uint64_t seq = next_++;
        slot.stamp.store(2 * seq + 1, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_release);
        slot.tsNs.store(tsNs, std::memory_order_relaxed);
        slot.arg.store(arg, std::memory_order_relaxed);
        slot.meta.store(meta, std::memory_order_relaxed);
        slot.stamp.store(2 * seq + 2, std::memory_order_release);
    }

    /** Any thread; skips torn / mid-overwrite slots. */
    std::vector<TraceRecord>
    snapshot() const
    {
        std::vector<TraceRecord> out;
        out.reserve(mask_ + 1);
        for (std::uint64_t i = 0; i <= mask_; ++i) {
            const Slot &slot = slots_[i];
            const std::uint64_t st1 =
                slot.stamp.load(std::memory_order_acquire);
            if (st1 == 0 || (st1 & 1))
                continue;
            TraceRecord rec;
            rec.tsNs = slot.tsNs.load(std::memory_order_relaxed);
            rec.arg = slot.arg.load(std::memory_order_relaxed);
            const std::uint64_t meta =
                slot.meta.load(std::memory_order_relaxed);
            std::atomic_thread_fence(std::memory_order_acquire);
            const std::uint64_t st2 =
                slot.stamp.load(std::memory_order_relaxed);
            if (st1 != st2)
                continue;
            rec.seq = st1 / 2 - 1;
            unpackMeta(meta, rec);
            out.push_back(rec);
        }
        std::sort(out.begin(), out.end(),
                  [](const TraceRecord &a, const TraceRecord &b) {
                      return a.seq < b.seq;
                  });
        return out;
    }

  private:
    std::unique_ptr<Slot[]> slots_;
    std::uint64_t mask_;
    std::uint64_t next_ = 0; ///< writer-local record count
    unsigned tid_;
    mutable std::mutex nameMutex_;
    std::string name_;
};

/** Process-wide sink state: ring registry, interning, configuration. */
class TraceSink
{
  public:
    static TraceSink &
    instance()
    {
        static TraceSink sink;
        return sink;
    }

    TraceCategory &
    category(const char *name)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = categoryIndex_.find(name);
        if (it != categoryIndex_.end())
            return *it->second;
        if (categories_.size() >= kTraceMaxCategories)
            return *categories_.front(); // the shared "overflow" one
        categories_.push_back(std::unique_ptr<TraceCategory>(
            new TraceCategory(name,
                static_cast<std::uint16_t>(categories_.size()))));
        TraceCategory &cat = *categories_.back();
        categoryIndex_.emplace(cat.name(), &cat);
        cat.enabled_.store(channelOnLocked(cat.name()),
                           std::memory_order_relaxed);
        return cat;
    }

    std::uint16_t
    nameId(const std::string &name)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = nameIndex_.find(name);
        if (it != nameIndex_.end())
            return it->second;
        if (names_.size() >= kTraceMaxNames)
            return 0; // "<overflow>"
        const std::uint16_t id = static_cast<std::uint16_t>(names_.size());
        names_.push_back(name);
        nameIndex_.emplace(name, id);
        return id;
    }

    void
    configure(const TraceOptions &options)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        options_ = options;
        options_.bufferRecords = roundCapacity(options.bufferRecords);
        if (options_.outPath.empty())
            options_.outPath = "trace.json";
        parseChannelsLocked(options_.channels);
        captureActive_.store(options_.enabled(),
                             std::memory_order_relaxed);
        for (auto &cat : categories_) {
            cat->enabled_.store(channelOnLocked(cat->name()),
                                std::memory_order_relaxed);
        }
        if (options_.bufferRecords != activeCapacity_) {
            activeCapacity_ = options_.bufferRecords;
            // Retire existing rings: threads re-register on their
            // next event and the old rings stay exportable.
            generation_.fetch_add(1, std::memory_order_relaxed);
        }
        if (options_.enabled() && !atexitArmed_) {
            atexitArmed_ = true;
            std::atexit(+[] { traceFlush(); });
        }
    }

    bool
    captureActive() const
    {
        return captureActive_.load(std::memory_order_relaxed);
    }

    TraceOptions
    currentOptions()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return options_;
    }

    std::uint64_t
    generation() const
    {
        return generation_.load(std::memory_order_relaxed);
    }

    /** Register (or re-register) the calling thread's ring. */
    std::shared_ptr<TraceRing>
    registerThread(const std::string &pendingName)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto ring = std::make_shared<TraceRing>(
            activeCapacity_, nextTid_++);
        if (!pendingName.empty())
            ring->setName(pendingName);
        rings_.push_back(ring);
        return ring;
    }

    std::vector<std::shared_ptr<TraceRing>>
    rings()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return rings_;
    }

    void
    reset()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        rings_.clear();
        nextTid_ = 1;
        generation_.fetch_add(1, std::memory_order_relaxed);
    }

    std::string
    nameText(std::uint16_t id)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return id < names_.size() ? names_[id] : "<overflow>";
    }

    std::string
    categoryText(std::uint16_t id)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return id < categories_.size() ? categories_[id]->name()
                                       : "overflow";
    }

    std::atomic<std::uint64_t> published{0};

  private:
    TraceSink()
    {
        names_.push_back("<overflow>");
        nameIndex_.emplace("<overflow>", 0);
        categories_.push_back(std::unique_ptr<TraceCategory>(
            new TraceCategory("overflow", 0)));
        categoryIndex_.emplace("overflow", categories_.front().get());
    }

    void
    parseChannelsLocked(const std::string &spec)
    {
        allChannels_ = false;
        channelSet_.clear();
        std::size_t start = 0;
        while (start <= spec.size()) {
            std::size_t comma = spec.find(',', start);
            if (comma == std::string::npos)
                comma = spec.size();
            std::string name = spec.substr(start, comma - start);
            if (name == "all")
                allChannels_ = true;
            else if (!name.empty())
                channelSet_.push_back(std::move(name));
            start = comma + 1;
        }
    }

    bool
    channelOnLocked(const std::string &name) const
    {
        if (!captureActive_.load(std::memory_order_relaxed))
            return false;
        if (allChannels_)
            return true;
        for (const std::string &channel : channelSet_) {
            if (channel == name)
                return true;
        }
        return false;
    }

    std::mutex mutex_;
    std::deque<std::unique_ptr<TraceCategory>> categories_;
    std::unordered_map<std::string, TraceCategory *> categoryIndex_;
    std::vector<std::string> names_;
    std::unordered_map<std::string, std::uint16_t> nameIndex_;
    std::vector<std::shared_ptr<TraceRing>> rings_;
    unsigned nextTid_ = 1;
    std::uint64_t activeCapacity_ = roundCapacity(65536);
    TraceOptions options_;
    bool allChannels_ = false;
    std::vector<std::string> channelSet_;
    bool atexitArmed_ = false;
    std::atomic<bool> captureActive_{false};
    std::atomic<std::uint64_t> generation_{0};
};

namespace
{

/** Per-thread ring handle; re-registers after a generation bump. */
struct ThreadHandle
{
    std::shared_ptr<TraceRing> ring;
    std::uint64_t generation = 0;
    std::string pendingName;
};

ThreadHandle &
threadHandle()
{
    thread_local ThreadHandle handle;
    return handle;
}

TraceRing *
currentRing()
{
    TraceSink &sink = TraceSink::instance();
    ThreadHandle &handle = threadHandle();
    const std::uint64_t gen = sink.generation();
    if (!handle.ring || handle.generation != gen) {
        handle.ring = sink.registerThread(handle.pendingName);
        handle.generation = gen;
    }
    return handle.ring.get();
}

void
emitRecord(TraceCategory &cat, std::uint16_t name, TraceEventKind kind,
           std::uint64_t tsNs, std::uint64_t arg, bool hasArg)
{
    TraceSink &sink = TraceSink::instance();
    currentRing()->write(tsNs, arg,
                         packMeta(cat.id(), name, kind, hasArg));
    sink.published.fetch_add(1, std::memory_order_relaxed);
}

/** Minimal JSON string escaper for interned names. */
void
appendJsonString(std::string &out, const std::string &text)
{
    out.push_back('"');
    for (char c : text) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

/** Microseconds with ns precision ("12.345"). */
void
appendMicros(std::string &out, std::uint64_t ns)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%llu.%03u",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned>(ns % 1000));
    out += buf;
}

} // namespace

TraceSpan::~TraceSpan()
{
    // No on() re-check: the span latched the category at construction,
    // so a mid-span reconfigure cannot silently drop the record.
    if (!cat_)
        return;
    const std::uint64_t end = traceNowNs();
    emitRecord(*cat_, name_, TraceEventKind::Complete, startNs_,
               end - startNs_, true);
}

TraceCategory &
traceCategory(const char *name)
{
    return TraceSink::instance().category(name);
}

std::uint16_t
traceNameId(const std::string &name)
{
    return TraceSink::instance().nameId(name);
}

void
traceConfigure(const TraceOptions &options)
{
    TraceSink::instance().configure(options);
    // Keep the legacy fprintf trace() channel gate in lockstep so the
    // stderr lines and the Chrome trace never disagree about what is
    // enabled.
    setTraceChannels(options.channels);
}

bool
traceCaptureActive()
{
    return TraceSink::instance().captureActive();
}

TraceOptions
traceCurrentOptions()
{
    return TraceSink::instance().currentOptions();
}

std::uint64_t
traceNowNs()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point epoch = Clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - epoch).count());
}

void
traceSetThreadName(const std::string &name)
{
    ThreadHandle &handle = threadHandle();
    handle.pendingName = name;
    if (handle.ring)
        handle.ring->setName(name);
}

void
traceInstant(TraceCategory &cat, std::uint16_t name)
{
    if (!cat.on())
        return;
    emitRecord(cat, name, TraceEventKind::Instant, traceNowNs(), 0,
               false);
}

void
traceInstantArg(TraceCategory &cat, std::uint16_t name,
                std::uint64_t arg)
{
    if (!cat.on())
        return;
    emitRecord(cat, name, TraceEventKind::Instant, traceNowNs(), arg,
               true);
}

void
traceCounter(TraceCategory &cat, std::uint16_t name,
             std::uint64_t value)
{
    if (!cat.on())
        return;
    emitRecord(cat, name, TraceEventKind::Counter, traceNowNs(), value,
               true);
}

bool
traceExportChrome(const std::string &path, std::string &err)
{
    TraceSink &sink = TraceSink::instance();
    const auto rings = sink.rings();
    const int pid = static_cast<int>(getpid());

    struct Tagged
    {
        unsigned tid;
        TraceRecord rec;
    };
    std::vector<Tagged> events;
    for (const auto &ring : rings) {
        for (const TraceRecord &rec : ring->snapshot())
            events.push_back(Tagged{ring->tid(), rec});
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const Tagged &a, const Tagged &b) {
                         if (a.rec.tsNs != b.rec.tsNs)
                             return a.rec.tsNs < b.rec.tsNs;
                         if (a.tid != b.tid)
                             return a.tid < b.tid;
                         return a.rec.seq < b.rec.seq;
                     });

    std::string out;
    out.reserve(events.size() * 120 + 4096);
    out += "{\"traceEvents\":[\n";
    bool first = true;
    auto comma = [&] {
        if (!first)
            out += ",\n";
        first = false;
    };

    char buf[64];
    std::snprintf(buf, sizeof(buf), "%d", pid);
    const std::string pidText = buf;

    comma();
    out += "{\"ph\":\"M\",\"ts\":0,\"pid\":" + pidText +
           ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":"
           "\"dmdc\"}}";
    for (const auto &ring : rings) {
        const std::string name = ring->name();
        if (name.empty())
            continue;
        comma();
        out += "{\"ph\":\"M\",\"ts\":0,\"pid\":" + pidText +
               ",\"tid\":" + std::to_string(ring->tid()) +
               ",\"name\":\"thread_name\",\"args\":{\"name\":";
        appendJsonString(out, name);
        out += "}}";
    }

    for (const Tagged &event : events) {
        const TraceRecord &rec = event.rec;
        comma();
        out += "{\"ph\":\"";
        out.push_back(static_cast<char>(rec.kind));
        out += "\",\"ts\":";
        appendMicros(out, rec.tsNs);
        out += ",\"pid\":" + pidText +
               ",\"tid\":" + std::to_string(event.tid) + ",\"cat\":";
        appendJsonString(out, sink.categoryText(rec.category));
        out += ",\"name\":";
        appendJsonString(out, sink.nameText(rec.name));
        switch (rec.kind) {
          case TraceEventKind::Complete:
            out += ",\"dur\":";
            appendMicros(out, rec.arg);
            break;
          case TraceEventKind::Instant:
            out += ",\"s\":\"t\"";
            if (rec.hasArg)
                out += ",\"args\":{\"v\":" + std::to_string(rec.arg) +
                       "}";
            break;
          case TraceEventKind::Counter:
            out += ",\"args\":{\"v\":" + std::to_string(rec.arg) + "}";
            break;
        }
        out += "}";
    }
    out += "\n],\"displayTimeUnit\":\"ms\"}\n";

    if (!writeFileAtomic(path, out)) {
        err = "cannot write " + path;
        return false;
    }
    return true;
}

void
traceFlush()
{
    TraceSink &sink = TraceSink::instance();
    if (!sink.captureActive())
        return;
    const TraceOptions options = sink.currentOptions();
    std::string err;
    if (!traceExportChrome(options.outPath, err))
        warn("trace: export to %s failed: %s", options.outPath.c_str(),
             err.c_str());
}

void
traceReset()
{
    TraceSink::instance().reset();
}

std::uint64_t
traceRecordsPublished()
{
    return TraceSink::instance().published.load(
        std::memory_order_relaxed);
}

std::string
tracePathWithTag(const std::string &path, const std::string &tag)
{
    const std::size_t slash = path.find_last_of('/');
    const std::size_t dot = path.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
        return path + tag;
    }
    return path.substr(0, dot) + tag + path.substr(dot);
}

std::string
traceShardPath(const std::string &path, unsigned index, unsigned count)
{
    if (count <= 1)
        return path;
    return tracePathWithTag(path, ".shard" + std::to_string(index) +
                                      "of" + std::to_string(count));
}

} // namespace dmdc
