#include "common/build_info.hh"

// Injected by the build (configure-time `git rev-parse`).
#ifndef DMDC_GIT_COMMIT
#define DMDC_GIT_COMMIT "unknown"
#endif

namespace dmdc
{

const char *
buildCommit()
{
    return DMDC_GIT_COMMIT;
}

} // namespace dmdc
