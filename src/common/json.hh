/**
 * @file
 * Minimal JSON value tree + strict parser.
 *
 * Grown out of the journal merger and shared with the dmdc_serve
 * protocol. Two properties matter more than generality:
 *
 *  - numbers keep their raw source token, so a parsed journal can be
 *    re-serialized byte-identically (the merge and service layers both
 *    promise bit-exact journals);
 *  - parsing is strict (no trailing content, no unknown escapes), so
 *    a torn or hand-mangled document fails loudly instead of yielding
 *    a half-read record.
 *
 * Writing stays with the callers — each emitter owns its exact byte
 * layout — but jsonEscapeString() is shared so every emitter escapes
 * control characters the same reversible way.
 */

#ifndef DMDC_COMMON_JSON_HH
#define DMDC_COMMON_JSON_HH

#include <string>
#include <utility>
#include <vector>

namespace dmdc
{

/** One JSON value; object fields keep their source order. */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    std::string text; ///< string value (unescaped) or raw number token
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> fields;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &f : fields) {
            if (f.first == key)
                return &f.second;
        }
        return nullptr;
    }
};

/** Parse @p text into @p out. False + @p err on any syntax error
 *  (including trailing content after the document). */
bool parseJson(const std::string &text, JsonValue &out,
               std::string &err);

/**
 * Escape @p s for embedding in a JSON string literal, reversibly:
 * quotes and backslashes are backslash-escaped, control characters
 * become \n/\r/\t/\u00XX. (The journal writers intentionally use a
 * lossy space-substitution instead — journal bytes are contractual —
 * so this is for protocol payloads, not journals.)
 */
std::string jsonEscapeString(const std::string &s);

} // namespace dmdc

#endif // DMDC_COMMON_JSON_HH
