/**
 * @file
 * gem5-style status/error reporting: panic(), fatal(), warn(),
 * inform(), and the channelled trace() facility.
 *
 * panic() is for simulator bugs (assert-like, aborts); fatal() is for
 * user errors such as invalid configurations (clean exit); warn() and
 * inform() print to stderr and continue. trace() emits high-volume
 * debug events gated by named channels, configured with
 * setTraceChannels() — normally from the --trace=<channels|all> flag
 * (see common/trace_sink.hh for the structured sink sharing the same
 * channel set). The DMDC_TRACE / DMDC_DEBUG_VIOLATIONS environment
 * variables remain as deprecated aliases that warn once per process.
 *
 * Thread-safety: each message is formatted into a private buffer and
 * emitted with a single stdio call, so concurrent campaign workers
 * never interleave partial lines; the message counters are atomic.
 */

#ifndef DMDC_COMMON_LOGGING_HH
#define DMDC_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <string>

namespace dmdc
{

/** Severity of a log message. */
enum class LogLevel { Inform, Warn, Fatal, Panic, Trace };

namespace detail
{
/** Format and dispatch one message; exits/aborts for Fatal/Panic. */
[[gnu::format(printf, 2, 3)]]
void logMessage(LogLevel level, const char *fmt, ...);

/** Format and emit one trace line for an already-enabled channel. */
[[gnu::format(printf, 2, 3)]]
void traceMessage(const char *channel, const char *fmt, ...);
} // namespace detail

/**
 * Whether @p channel is enabled. The channel set comes from the last
 * setTraceChannels() call; before any such call it is seeded from the
 * deprecated DMDC_TRACE / DMDC_DEBUG_VIOLATIONS environment variables
 * (which warn once when present).
 */
bool traceEnabled(const char *channel);

/**
 * Replace the active trace-channel set with @p spec (comma-separated
 * channel names, or "all"; empty disables every channel). Callable
 * any number of times from any thread — tests and the dmdc_serve
 * daemon reconfigure channels without re-exec. Overrides the
 * deprecated environment variables.
 */
void setTraceChannels(const std::string &spec);

/**
 * Warn once if the deprecated DMDC_TRACE / DMDC_DEBUG_VIOLATIONS
 * environment variables are set. The CLI layer calls this at startup
 * so the deprecation is visible even when no trace() site fires.
 */
void warnIfDeprecatedTraceEnv();

/** Report a simulator bug and abort. */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args... args)
{
    detail::logMessage(LogLevel::Panic, fmt, args...);
    __builtin_unreachable();
}

/** Report an unrecoverable user/configuration error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    detail::logMessage(LogLevel::Fatal, fmt, args...);
    __builtin_unreachable();
}

/** Report a suspicious condition and continue. */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    detail::logMessage(LogLevel::Warn, fmt, args...);
}

/** Report normal operating status. */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    detail::logMessage(LogLevel::Inform, fmt, args...);
}

/**
 * Emit a per-event trace line on @p channel when the channel is
 * enabled (see traceEnabled()); no-cost no-op otherwise. Each line is
 * written with a single stdio call, like every other message.
 */
template <typename... Args>
void
trace(const char *channel, const char *fmt, Args... args)
{
    if (!traceEnabled(channel))
        return;
    detail::traceMessage(channel, fmt, args...);
}

/**
 * Number of Warn/Fatal/Panic messages emitted so far (testing hook;
 * Fatal/Panic normally terminate but tests stub the terminate step).
 */
std::uint64_t loggedMessageCount(LogLevel level);

} // namespace dmdc

#endif // DMDC_COMMON_LOGGING_HH
