/**
 * @file
 * gem5-style status/error reporting: panic(), fatal(), warn(), inform().
 *
 * panic() is for simulator bugs (assert-like, aborts); fatal() is for
 * user errors such as invalid configurations (clean exit); warn() and
 * inform() print to stderr and continue.
 *
 * Thread-safety: each message is formatted into a private buffer and
 * emitted with a single stdio call, so concurrent campaign workers
 * never interleave partial lines; the message counters are atomic.
 */

#ifndef DMDC_COMMON_LOGGING_HH
#define DMDC_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <string>

namespace dmdc
{

/** Severity of a log message. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

namespace detail
{
/** Format and dispatch one message; exits/aborts for Fatal/Panic. */
[[gnu::format(printf, 2, 3)]]
void logMessage(LogLevel level, const char *fmt, ...);
} // namespace detail

/** Report a simulator bug and abort. */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args... args)
{
    detail::logMessage(LogLevel::Panic, fmt, args...);
    __builtin_unreachable();
}

/** Report an unrecoverable user/configuration error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    detail::logMessage(LogLevel::Fatal, fmt, args...);
    __builtin_unreachable();
}

/** Report a suspicious condition and continue. */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    detail::logMessage(LogLevel::Warn, fmt, args...);
}

/** Report normal operating status. */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    detail::logMessage(LogLevel::Inform, fmt, args...);
}

/**
 * Number of Warn/Fatal/Panic messages emitted so far (testing hook;
 * Fatal/Panic normally terminate but tests stub the terminate step).
 */
std::uint64_t loggedMessageCount(LogLevel level);

} // namespace dmdc

#endif // DMDC_COMMON_LOGGING_HH
