/**
 * @file
 * Lightweight statistics infrastructure.
 *
 * Statistics are plain counters/histograms registered with a StatGroup
 * so whole subsystems can be dumped or reset uniformly. This mirrors the
 * role of SimpleScalar's stats package at a much smaller scale.
 *
 * Thread-safety contract: there is deliberately NO global registry.
 * Every stat object and StatGroup is owned by exactly one Simulator's
 * component tree, so concurrent simulations under the campaign engine
 * never share a counter and need no locks on the simulation hot path.
 * Do not register one stat object with groups of two simulators.
 */

#ifndef DMDC_COMMON_STATS_HH
#define DMDC_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace dmdc
{

/** A named 64-bit event counter. */
class Counter
{
  public:
    Counter() = default;

    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void operator+=(std::uint64_t n) { value_ += n; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Accumulates samples; reports count / sum / mean / min / max. */
class Average
{
  public:
    void sample(double v);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    void reset();

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-bucket histogram over [0, buckets*bucketWidth), with overflow. */
class Histogram
{
  public:
    Histogram(unsigned num_buckets = 16, double bucket_width = 1.0);

    void sample(double v);

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t bucket(unsigned i) const;
    std::uint64_t overflow() const { return overflow_; }
    unsigned numBuckets() const
    {
        return static_cast<unsigned>(buckets_.size());
    }
    void reset();

  private:
    std::vector<std::uint64_t> buckets_;
    double bucketWidth_;
    std::uint64_t count_ = 0;
    std::uint64_t overflow_ = 0;
    double sum_ = 0.0;
};

/**
 * A registry of named statistics. Subsystems register their stats at
 * construction; the simulator dumps/resets them through the group.
 * Pointers must outlive the group.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "");

    void regCounter(const std::string &name, Counter *c,
                    const std::string &desc = "");
    void regAverage(const std::string &name, Average *a,
                    const std::string &desc = "");
    void regHistogram(const std::string &name, Histogram *h,
                      const std::string &desc = "");
    void addChild(StatGroup *child);

    /** Zero every registered statistic (recursively). */
    void resetAll();

    /** Human-readable dump, one stat per line, recursively. */
    void dump(std::ostream &os, const std::string &indent = "") const;

    const std::string &name() const { return name_; }

    /** Look up a registered counter by name; nullptr if absent. */
    const Counter *findCounter(const std::string &name) const;

  private:
    struct Entry
    {
        std::string desc;
        Counter *counter = nullptr;
        Average *average = nullptr;
        Histogram *histogram = nullptr;
    };

    std::string name_;
    std::map<std::string, Entry> entries_;
    std::vector<StatGroup *> children_;
};

} // namespace dmdc

#endif // DMDC_COMMON_STATS_HH
