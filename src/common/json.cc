#include "common/json.hh"

#include <cctype>
#include <cstdio>
#include <cstring>

namespace dmdc
{

namespace
{

class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string &err)
        : text_(text), err_(err)
    {
    }

    bool
    parse(JsonValue &out)
    {
        if (!value(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing content after JSON document");
        return true;
    }

  private:
    bool
    fail(const std::string &msg)
    {
        err_ = msg + " (at byte " + std::to_string(pos_) + ")";
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        const std::size_t len = std::strlen(word);
        if (text_.compare(pos_, len, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos_ += len;
        return true;
    }

    bool
    value(JsonValue &out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == '{')
            return object(out);
        if (c == '[')
            return array(out);
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return string(out.text);
        }
        if (c == 't' || c == 'f') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = (c == 't');
            return literal(c == 't' ? "true" : "false");
        }
        if (c == 'n') {
            out.kind = JsonValue::Kind::Null;
            return literal("null");
        }
        return number(out);
    }

    bool
    object(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            if (!string(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':' after object key");
            ++pos_;
            JsonValue v;
            if (!value(v))
                return false;
            out.fields.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    array(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue v;
            if (!value(v))
                return false;
            out.items.push_back(std::move(v));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    string(std::string &out)
    {
        ++pos_; // '"'
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated string escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':  out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/':  out.push_back('/'); break;
              case 'b':  out.push_back('\b'); break;
              case 'f':  out.push_back('\f'); break;
              case 'n':  out.push_back('\n'); break;
              case 'r':  out.push_back('\r'); break;
              case 't':  out.push_back('\t'); break;
              case 'u': {
                // Decode the BMP code point to UTF-8; journals never
                // emit \u escapes but protocol peers legitimately may.
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("malformed \\u escape");
                }
                if (cp < 0x80) {
                    out.push_back(static_cast<char>(cp));
                } else if (cp < 0x800) {
                    out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (cp & 0x3f)));
                } else {
                    out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
                    out.push_back(
                        static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
                    out.push_back(
                        static_cast<char>(0x80 | (cp & 0x3f)));
                }
                break;
              }
              default:
                return fail("unknown string escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    number(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool digits = false;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                digits = true;
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                ++pos_;
            } else {
                break;
            }
        }
        if (!digits)
            return fail("expected a JSON value");
        out.kind = JsonValue::Kind::Number;
        out.text = text_.substr(start, pos_ - start);
        return true;
    }

    const std::string &text_;
    std::string &err_;
    std::size_t pos_ = 0;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string &err)
{
    out = JsonValue{};
    JsonParser parser(text, err);
    return parser.parse(out);
}

std::string
jsonEscapeString(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

} // namespace dmdc
