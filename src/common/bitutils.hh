/**
 * @file
 * Small bit-manipulation helpers used by caches, predictors and hash
 * structures.
 */

#ifndef DMDC_COMMON_BITUTILS_HH
#define DMDC_COMMON_BITUTILS_HH

#include <bit>
#include <cassert>
#include <cstdint>

namespace dmdc
{

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(@p v); @p v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    assert(v != 0);
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** Ceiling of log2(@p v); @p v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return isPowerOf2(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** Extract bits [first, last] (inclusive, last >= first) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned last, unsigned first)
{
    assert(last >= first && last < 64);
    const std::uint64_t mask =
        (last - first >= 63) ? ~std::uint64_t{0}
                             : ((std::uint64_t{1} << (last - first + 1)) - 1);
    return (v >> first) & mask;
}

/** Mask with the low @p n bits set. */
constexpr std::uint64_t
mask(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/**
 * Fold (XOR) a 64-bit value down to @p width bits. This is the "H0"
 * style hashing function used by the bloom filter and checking table:
 * successive @p width-bit slices of the address are XORed together.
 */
constexpr std::uint64_t
foldXor(std::uint64_t v, unsigned width)
{
    assert(width > 0 && width < 64);
    std::uint64_t r = 0;
    while (v != 0) {
        r ^= v & mask(width);
        v >>= width;
    }
    return r;
}

} // namespace dmdc

#endif // DMDC_COMMON_BITUTILS_HH
