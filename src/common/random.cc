/**
 * @file
 * xoshiro256** generator implementation.
 */

#include "common/random.hh"

#include <cassert>
#include <cmath>

namespace dmdc
{

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
mixHash(std::uint64_t v)
{
    std::uint64_t state = v;
    return splitmix64(state);
}

std::uint64_t
hashBytes(const void *data, std::size_t len, std::uint64_t seed)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint64_t h = 0xcbf29ce484222325ull ^ seed;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= bytes[i];
        h *= 0x100000001b3ull;
    }
    return mixHash(h);
}

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t sm = seed_value;
    for (auto &word : s)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

std::uint64_t
Rng::range(std::uint64_t bound)
{
    assert(bound > 0);
    // Rejection-free multiply-shift; bias is negligible for
    // simulation-scale bounds.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
}

std::int64_t
Rng::between(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
        range(static_cast<std::uint64_t>(hi - lo) + 1));
}

double
Rng::uniform()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

unsigned
Rng::geometric(double mean)
{
    if (mean <= 1.0)
        return 1;
    const double p = 1.0 / mean;
    // Inverse-transform sampling, clamped to keep tails sane.
    const double u = uniform();
    const double v = std::log1p(-u) / std::log1p(-p);
    const double clamped = std::fmin(v + 1.0, mean * 16.0);
    return static_cast<unsigned>(clamped < 1.0 ? 1.0 : clamped);
}

} // namespace dmdc
