/**
 * @file
 * Analytic per-access energy model for RAM arrays and CAMs, in the
 * spirit of Wattch's capacitance-based array model but reduced to the
 * terms that matter for *relative* comparisons: decoder (log rows),
 * wordline (row width) and bitline (column height) for RAMs; match-line
 * and tag-line energy proportional to entries x tag width for CAMs.
 *
 * Units are arbitrary "energy units" (calibrated once, see
 * energy_model.cc); every paper result is a ratio, so only relative
 * costs matter.
 */

#ifndef DMDC_ENERGY_ARRAY_MODEL_HH
#define DMDC_ENERGY_ARRAY_MODEL_HH

namespace dmdc
{

/** Per-access energies of idealized storage structures. */
namespace array_model
{

/** Energy of reading one @p bits-wide entry of a @p rows-entry RAM. */
double ramRead(unsigned rows, unsigned bits);

/** Energy of writing one entry. */
double ramWrite(unsigned rows, unsigned bits);

/**
 * Energy of one fully-associative search: every entry's tag
 * comparators and match line switch.
 */
double camSearch(unsigned rows, unsigned tag_bits);

/** Energy of one access to a small discrete register (e.g. YLA). */
double registerAccess(unsigned bits);

} // namespace array_model

} // namespace dmdc

#endif // DMDC_ENERGY_ARRAY_MODEL_HH
