/**
 * @file
 * Processor-wide activity-based energy accounting (the Wattch-style
 * substitute documented in DESIGN.md). Consumes the pipeline's
 * activity counters after a run and produces a per-structure
 * breakdown; all paper results are ratios of these totals.
 */

#ifndef DMDC_ENERGY_ENERGY_MODEL_HH
#define DMDC_ENERGY_ENERGY_MODEL_HH

#include "core/pipeline.hh"
#include "energy/energy_breakdown.hh"

namespace dmdc
{

/** The energy model. */
class EnergyModel
{
  public:
    explicit EnergyModel(const CoreParams &params);

    /** Account a finished run's activity. */
    EnergyBreakdown compute(const Pipeline &pipe) const;

  private:
    CoreParams params_;
};

} // namespace dmdc

#endif // DMDC_ENERGY_ENERGY_MODEL_HH
