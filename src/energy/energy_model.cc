/**
 * @file
 * Energy model implementation.
 *
 * The per-event costs come from array_model; the leakage/clock
 * coefficients below were calibrated once so that, on the synthetic
 * suite, (a) associative searches account for roughly a third of the
 * conventional LQ's energy (so that filtering ~97% of searches yields
 * the paper's ~32% LQ-energy saving, Sec. 6.1) and (b) the LQ is a few
 * percent of core energy, growing with machine size (configs 1-3), as
 * the paper's 3-8% net-savings range implies.
 */

#include "energy/energy_model.hh"

#include "energy/array_model.hh"

namespace dmdc
{

namespace
{

using namespace array_model;

constexpr unsigned addrTagBits = 40;   ///< CAM tag width (phys addr)
constexpr unsigned lqEntryBits = 48;   ///< address + flags
constexpr unsigned sqEntryBits = 88;   ///< address + data + flags
constexpr unsigned seqBits = 16;       ///< YLA / age register width
constexpr unsigned checkEntryBits = 8; ///< WRT + INV bitmaps

// Static/standby cost per cell per cycle. CAM cells cost much more
// than small RAM cells: wider cells plus per-cycle match-line
// precharge even on idle cycles.
constexpr double camLeakUnit = 0.0025;
constexpr double ramLeakUnit = 0.0005;

// A FIFO needs no address decoder and drives one short wordline;
// its per-access dynamic energy is a fraction of a random-access RAM
// of the same geometry.
constexpr double fifoDynFactor = 0.35;

// Clock tree + global overhead per cycle, per tracked "cell".
constexpr double clockUnit = 0.0045;

// Flat per-op functional-unit energies.
constexpr double fuIntEnergy = 10.0;
constexpr double fuFpEnergy = 22.0;

/** Simplified cache access energy from geometry. */
double
cacheAccess(const CacheParams &c)
{
    const unsigned rows = static_cast<unsigned>(
        c.sizeBytes / c.lineBytes / c.assoc);
    // Read one way's word plus all ways' tags.
    return ramRead(rows, 128 + 24 * c.assoc);
}

} // namespace

EnergyModel::EnergyModel(const CoreParams &params) : params_(params)
{
}

EnergyBreakdown
EnergyModel::compute(const Pipeline &pipe) const
{
    EnergyBreakdown e;

    const auto &ps = pipe.stats();
    const auto &act = pipe.lsq().activity();
    const auto &mem = pipe.mem();
    const double cycles = static_cast<double>(ps.cycles.value());
    const double fetched =
        static_cast<double>(pipe.fetch().fetchedTotal.value());
    const double dispatched =
        static_cast<double>(ps.dispatched.value());
    const double issued = static_cast<double>(ps.issued.value());
    const double committed =
        static_cast<double>(ps.committedInsts.value());
    const LsqScheme scheme = pipe.lsq().params().scheme;

    // ---- front end ----
    const double l1i_acc = static_cast<double>(
        mem.l1i().hits() + mem.l1i().misses());
    e.fetch = fetched * 6.0 + l1i_acc * cacheAccess(params_.mem.l1i);
    e.bpred = fetched *
        (ramRead(params_.bp.bimodalEntries, 2) * 0.25 +
         ramRead(params_.bp.gshareEntries, 2) * 0.25 +
         ramRead(params_.bp.btbEntries / params_.bp.btbAssoc, 64) *
             0.25);

    // ---- rename / rob / issue queue / regfile ----
    e.rename = dispatched *
        (3 * ramRead(numArchRegs, 8) + ramWrite(numArchRegs, 8));
    e.rob = dispatched * ramWrite(params_.robSize, 128) +
        committed * ramRead(params_.robSize, 128);
    const unsigned iq_entries = params_.intIqSize + params_.fpIqSize;
    e.issueQueue = dispatched * ramWrite(iq_entries, 80) +
        issued * (ramRead(iq_entries, 80) +
                  camSearch(iq_entries, 8)) +   // wakeup broadcast
        cycles * ramLeakUnit * iq_entries * 80;
    e.regfile =
        static_cast<double>(pipe.regfile().intReads() +
                            pipe.regfile().fpReads()) *
            ramRead(params_.intRegs, 64) +
        static_cast<double>(pipe.regfile().intWrites() +
                            pipe.regfile().fpWrites()) *
            ramWrite(params_.intRegs, 64);

    // ---- execution & data memory ----
    e.fu = issued * fuIntEnergy +
        static_cast<double>(pipe.regfile().fpWrites()) *
            (fuFpEnergy - fuIntEnergy);
    const double l1d_acc = static_cast<double>(
        mem.l1d().hits() + mem.l1d().misses());
    const double l2_acc = static_cast<double>(
        mem.l2().hits() + mem.l2().misses());
    e.l1d = l1d_acc * cacheAccess(params_.mem.l1d);
    e.l2 = l2_acc * cacheAccess(params_.mem.l2) +
        static_cast<double>(mem.l2().misses()) * 220.0;

    // ---- store queue (identical role in every scheme) ----
    const unsigned sq_size = params_.lsq.sqSize;
    e.sq = static_cast<double>(act.sqSearches.value()) *
            camSearch(sq_size, addrTagBits) +
        static_cast<double>(act.sqInserts.value()) *
            ramWrite(sq_size, sqEntryBits) +
        cycles * camLeakUnit * sq_size * sqEntryBits * 0.5;

    // ---- load-queue functionality: the quantity under study ----
    const unsigned lq_size = params_.lsq.lqSize;
    if (scheme == LsqScheme::AgeTable) {
        // Fused age/address table (Garg et al.): one read per store
        // resolve, one write per load issue; entries hold full ages
        // (wider than DMDC's 1-bit-per-chunk checking table).
        const unsigned tbl = params_.lsq.ageTableEntries;
        const unsigned age_bits = 20;
        e.checking +=
            static_cast<double>(act.ageTableReads.value()) *
                ramRead(tbl, age_bits) +
            static_cast<double>(act.ageTableWrites.value()) *
                ramWrite(tbl, age_bits) +
            cycles * ramLeakUnit * tbl * age_bits * 0.10;
    } else if (scheme == LsqScheme::Dmdc) {
        // FIFO of hash keys replaces the CAM: narrow entries, no
        // decoder, RAM-cell standby cost only.
        const unsigned key_bits = 15;
        e.checking +=
            static_cast<double>(act.lqInserts.value()) *
                ramWrite(lq_size, key_bits) * fifoDynFactor +
            static_cast<double>(ps.committedLoads.value()) *
                ramRead(lq_size, key_bits) * fifoDynFactor +
            cycles * ramLeakUnit * lq_size * key_bits;
    } else {
        e.lqCam = static_cast<double>(act.lqSearches.value() +
                                      act.lqInvSearches.value()) *
                camSearch(lq_size, addrTagBits) +
            static_cast<double>(act.lqInserts.value()) *
                ramWrite(lq_size, lqEntryBits) +
            static_cast<double>(ps.committedLoads.value()) *
                ramRead(lq_size, lqEntryBits) +
            cycles * camLeakUnit * lq_size * lqEntryBits;
    }

    // ---- YLA registers and checking structures ----
    const unsigned yla_regs = params_.lsq.dmdc.numYlaQw +
        (params_.lsq.dmdc.coherence ? params_.lsq.dmdc.numYlaLine : 0);
    e.yla = static_cast<double>(act.ylaReads.value() +
                                act.ylaWrites.value()) *
            registerAccess(seqBits) +
        cycles * ramLeakUnit * yla_regs * seqBits;

    if (const DmdcEngine *engine = pipe.lsq().dmdc()) {
        const auto &ds = engine->stats();
        const unsigned tbl = engine->params().useQueue
            ? engine->params().queueEntries
            : engine->params().tableEntries;
        const double read_e = engine->params().useQueue
            ? camSearch(tbl, addrTagBits)
            : ramRead(tbl, checkEntryBits);
        const double write_e = engine->params().useQueue
            ? ramWrite(tbl, addrTagBits + 8)
            : ramWrite(tbl, checkEntryBits);
        // The checking table is idle outside checking mode; clock-gate
        // it (small standby factor).
        e.checking +=
            static_cast<double>(ds.tableReads.value()) * read_e +
            static_cast<double>(ds.tableWrites.value()) * write_e +
            cycles * ramLeakUnit * tbl * checkEntryBits * 0.05;
    }

    // ---- clock / global ----
    const double cells =
        params_.robSize * 128.0 + iq_entries * 80.0 +
        (params_.intRegs + params_.fpRegs) * 64.0 +
        lq_size * lqEntryBits + sq_size * sqEntryBits;
    e.clock = cycles * clockUnit * cells;

    return e;
}

} // namespace dmdc
