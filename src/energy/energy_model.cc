/**
 * @file
 * Energy model implementation.
 *
 * The per-event costs come from array_model; the leakage/clock
 * coefficients (see energy/energy_constants.hh) were calibrated once
 * so that, on the synthetic suite, (a) associative searches account
 * for roughly a third of the conventional LQ's energy (so that
 * filtering ~97% of searches yields the paper's ~32% LQ-energy saving,
 * Sec. 6.1) and (b) the LQ is a few percent of core energy, growing
 * with machine size (configs 1-3), as the paper's 3-8% net-savings
 * range implies.
 *
 * The model prices only the scheme-independent structures; everything
 * the active dependence-checking scheme uses to implement the LQ
 * function (CAM, checking table, hash FIFO, bloom array, ...) is
 * accounted by the policy itself via accountEnergy().
 */

#include "energy/energy_model.hh"

#include "energy/array_model.hh"
#include "energy/energy_constants.hh"
#include "lsq/policy/dependence_policy.hh"

namespace dmdc
{

namespace
{

using namespace array_model;
using namespace energy_constants;

/** Simplified cache access energy from geometry. */
double
cacheAccess(const CacheParams &c)
{
    const unsigned rows = static_cast<unsigned>(
        c.sizeBytes / c.lineBytes / c.assoc);
    // Read one way's word plus all ways' tags.
    return ramRead(rows, 128 + 24 * c.assoc);
}

} // namespace

EnergyModel::EnergyModel(const CoreParams &params) : params_(params)
{
}

EnergyBreakdown
EnergyModel::compute(const Pipeline &pipe) const
{
    EnergyBreakdown e;

    const auto &ps = pipe.stats();
    const auto &act = pipe.lsq().activity();
    const auto &mem = pipe.mem();
    const double cycles = static_cast<double>(ps.cycles.value());
    const double fetched =
        static_cast<double>(pipe.fetch().fetchedTotal.value());
    const double dispatched =
        static_cast<double>(ps.dispatched.value());
    const double issued = static_cast<double>(ps.issued.value());
    const double committed =
        static_cast<double>(ps.committedInsts.value());

    // ---- front end ----
    const double l1i_acc = static_cast<double>(
        mem.l1i().hits() + mem.l1i().misses());
    e.fetch = fetched * 6.0 + l1i_acc * cacheAccess(params_.mem.l1i);
    e.bpred = fetched *
        (ramRead(params_.bp.bimodalEntries, 2) * 0.25 +
         ramRead(params_.bp.gshareEntries, 2) * 0.25 +
         ramRead(params_.bp.btbEntries / params_.bp.btbAssoc, 64) *
             0.25);

    // ---- rename / rob / issue queue / regfile ----
    e.rename = dispatched *
        (3 * ramRead(numArchRegs, 8) + ramWrite(numArchRegs, 8));
    e.rob = dispatched * ramWrite(params_.robSize, 128) +
        committed * ramRead(params_.robSize, 128);
    const unsigned iq_entries = params_.intIqSize + params_.fpIqSize;
    e.issueQueue = dispatched * ramWrite(iq_entries, 80) +
        issued * (ramRead(iq_entries, 80) +
                  camSearch(iq_entries, 8)) +   // wakeup broadcast
        cycles * ramLeakUnit * iq_entries * 80;
    e.regfile =
        static_cast<double>(pipe.regfile().intReads() +
                            pipe.regfile().fpReads()) *
            ramRead(params_.intRegs, 64) +
        static_cast<double>(pipe.regfile().intWrites() +
                            pipe.regfile().fpWrites()) *
            ramWrite(params_.intRegs, 64);

    // ---- execution & data memory ----
    e.fu = issued * fuIntEnergy +
        static_cast<double>(pipe.regfile().fpWrites()) *
            (fuFpEnergy - fuIntEnergy);
    const double l1d_acc = static_cast<double>(
        mem.l1d().hits() + mem.l1d().misses());
    const double l2_acc = static_cast<double>(
        mem.l2().hits() + mem.l2().misses());
    e.l1d = l1d_acc * cacheAccess(params_.mem.l1d);
    e.l2 = l2_acc * cacheAccess(params_.mem.l2) +
        static_cast<double>(mem.l2().misses()) * 220.0;

    // ---- store queue (identical role in every scheme) ----
    const unsigned sq_size = params_.lsq.sqSize;
    e.sq = static_cast<double>(act.sqSearches.value()) *
            camSearch(sq_size, addrTagBits) +
        static_cast<double>(act.sqInserts.value()) *
            ramWrite(sq_size, sqEntryBits) +
        cycles * camLeakUnit * sq_size * sqEntryBits * 0.5;

    // ---- YLA registers (shared across filtering schemes) ----
    const unsigned yla_regs = params_.lsq.dmdc.numYlaQw +
        (params_.lsq.dmdc.coherence ? params_.lsq.dmdc.numYlaLine : 0);
    e.yla = static_cast<double>(act.ylaReads.value() +
                                act.ylaWrites.value()) *
            registerAccess(seqBits) +
        cycles * ramLeakUnit * yla_regs * seqBits;

    // ---- load-queue functionality: the quantity under study ----
    const PolicyEnergyContext ctx{
        params_, cycles,
        static_cast<double>(ps.committedLoads.value())};
    pipe.lsq().policy().accountEnergy(ctx, e);

    // ---- clock / global ----
    const unsigned lq_size = params_.lsq.lqSize;
    const double cells =
        params_.robSize * 128.0 + iq_entries * 80.0 +
        (params_.intRegs + params_.fpRegs) * 64.0 +
        lq_size * lqEntryBits + sq_size * sqEntryBits;
    e.clock = cycles * clockUnit * cells;

    return e;
}

} // namespace dmdc
