/**
 * @file
 * Analytic array energy implementation.
 */

#include "energy/array_model.hh"

#include <cmath>

namespace dmdc
{

namespace array_model
{

namespace
{

// Relative technology coefficients. The absolute scale is arbitrary;
// the ratios (CAM match cost vs. RAM bitline cost vs. register access)
// follow Wattch's published breakdowns for ~100nm-era arrays.
constexpr double decodeUnit = 0.6;    ///< per log2(rows)
constexpr double wordlineUnit = 0.12; ///< per bit of row width
constexpr double bitlineUnit = 0.018; ///< per (row x bit) column charge
constexpr double senseUnit = 0.25;    ///< per bit sensed
constexpr double matchUnit = 0.06;    ///< per (row x tag bit) CAM compare
constexpr double regUnit = 0.08;      ///< per bit of a discrete register

double
log2d(unsigned v)
{
    return v <= 1 ? 1.0 : std::log2(static_cast<double>(v));
}

} // namespace

double
ramRead(unsigned rows, unsigned bits)
{
    return decodeUnit * log2d(rows) + wordlineUnit * bits +
        bitlineUnit * rows * 0.08 * bits + senseUnit * bits;
}

double
ramWrite(unsigned rows, unsigned bits)
{
    // Writes skip sensing but drive full bitline swings.
    return decodeUnit * log2d(rows) + wordlineUnit * bits +
        bitlineUnit * rows * 0.12 * bits;
}

double
camSearch(unsigned rows, unsigned tag_bits)
{
    // Every row's tag comparators and match line participate.
    return matchUnit * rows * tag_bits + decodeUnit * log2d(rows);
}

double
registerAccess(unsigned bits)
{
    return regUnit * bits;
}

} // namespace array_model

} // namespace dmdc
