/**
 * @file
 * Calibrated coefficients shared by the core energy model and the
 * per-policy LQ-energy accounting (see energy_model.cc for the
 * calibration rationale). Keeping them in one header guarantees every
 * dependence policy prices its arrays on the same scale.
 */

#ifndef DMDC_ENERGY_ENERGY_CONSTANTS_HH
#define DMDC_ENERGY_ENERGY_CONSTANTS_HH

namespace dmdc
{
namespace energy_constants
{

constexpr unsigned addrTagBits = 40;   ///< CAM tag width (phys addr)
constexpr unsigned lqEntryBits = 48;   ///< address + flags
constexpr unsigned sqEntryBits = 88;   ///< address + data + flags
constexpr unsigned seqBits = 16;       ///< YLA / age register width
constexpr unsigned checkEntryBits = 8; ///< WRT + INV bitmaps

// Static/standby cost per cell per cycle. CAM cells cost much more
// than small RAM cells: wider cells plus per-cycle match-line
// precharge even on idle cycles.
constexpr double camLeakUnit = 0.0025;
constexpr double ramLeakUnit = 0.0005;

// A FIFO needs no address decoder and drives one short wordline;
// its per-access dynamic energy is a fraction of a random-access RAM
// of the same geometry.
constexpr double fifoDynFactor = 0.35;

// Clock tree + global overhead per cycle, per tracked "cell".
constexpr double clockUnit = 0.0045;

// Flat per-op functional-unit energies.
constexpr double fuIntEnergy = 10.0;
constexpr double fuFpEnergy = 22.0;

} // namespace energy_constants
} // namespace dmdc

#endif // DMDC_ENERGY_ENERGY_CONSTANTS_HH
