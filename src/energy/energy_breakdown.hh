/**
 * @file
 * Per-structure energy totals of one run. Split out of energy_model.hh
 * so the dependence-policy layer can account its structure energies
 * without depending on the whole pipeline-facing model.
 */

#ifndef DMDC_ENERGY_ENERGY_BREAKDOWN_HH
#define DMDC_ENERGY_ENERGY_BREAKDOWN_HH

namespace dmdc
{

/** Per-structure energy totals for one run. */
struct EnergyBreakdown
{
    double fetch = 0;      ///< fetch/decode incl. I-cache
    double bpred = 0;
    double rename = 0;
    double rob = 0;
    double issueQueue = 0; ///< insert + wakeup broadcast + select
    double regfile = 0;
    double fu = 0;
    double l1d = 0;
    double l2 = 0;
    double clock = 0;      ///< clock tree + idle overhead, per cycle

    // LQ-functionality energy: the quantity the paper's Figs. 4 and
    // Sec. 6.1 report savings on.
    double lqCam = 0;      ///< associative LQ searches + entries
    double sq = 0;         ///< SQ CAM + entries (same in all schemes)
    double yla = 0;        ///< YLA register file accesses
    double checking = 0;   ///< checking table/queue + hash-key FIFO

    /** Energy of implementing the LQ function (paper's "LQ energy"). */
    double
    lqFunction() const
    {
        return lqCam + yla + checking;
    }

    /** Whole-processor energy. */
    double
    total() const
    {
        return fetch + bpred + rename + rob + issueQueue + regfile +
            fu + l1d + l2 + clock + lqCam + sq + yla + checking;
    }
};

} // namespace dmdc

#endif // DMDC_ENERGY_ENERGY_BREAKDOWN_HH
