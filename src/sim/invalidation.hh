/**
 * @file
 * Random external-invalidation injector (paper Sec. 6.2.4
 * methodology): invalidations of random data lines arrive as a
 * Poisson-like process at a configurable rate.
 */

#ifndef DMDC_SIM_INVALIDATION_HH
#define DMDC_SIM_INVALIDATION_HH

#include "common/random.hh"
#include "core/pipeline.hh"

namespace dmdc
{

/** The injector. */
class InvalidationInjector
{
  public:
    /**
     * @param rate_per_1k_cycles average invalidations per 1000 cycles
     * @param data_base base of the workload's data footprint
     * @param data_size footprint size in bytes (power of two)
     * @param line_bytes cache line granularity
     */
    InvalidationInjector(double rate_per_1k_cycles, Addr data_base,
                         Addr data_size, unsigned line_bytes,
                         std::uint64_t seed = 12345);

    /** Call once per simulated cycle. */
    void tick(Pipeline &pipe);

    /**
     * Whether this injector can ever inject (rate > 0). An inactive
     * injector draws no random numbers, so idle cycles may be skipped
     * in bulk around it without perturbing the RNG stream.
     */
    bool active() const { return probPerCycle_ > 0.0; }

    std::uint64_t injected() const { return injected_; }

  private:
    double probPerCycle_;
    Addr base_;
    Addr sizeMask_;
    unsigned lineBytes_;
    Rng rng_;
    std::uint64_t injected_ = 0;
};

} // namespace dmdc

#endif // DMDC_SIM_INVALIDATION_HH
