#include "sim/cache_store.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/append_log.hh"
#include "common/atomic_file.hh"
#include "common/crc32.hh"
#include "common/file_lock.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "sim/fault_injector.hh"

namespace dmdc
{

namespace fs = std::filesystem;

namespace
{

/** Canonical CRC input of one index record: what the checksum must
 *  cover so a torn or spliced line cannot masquerade as valid. */
std::string
recordCrcInput(const char *op, const std::string &file,
               std::uint64_t bytes)
{
    std::ostringstream os;
    os << op << '|' << file << '|' << bytes;
    return os.str();
}

/**
 * Parse one index log line. Records are machine-written by this file
 * with a fixed field order, so a shape-strict scan is both sufficient
 * and a useful tamper detector (anything reordered or hand-edited
 * fails and is skipped).
 */
bool
parseRecord(const std::string &line, std::string &op,
            std::string &file, std::uint64_t &bytes)
{
    unsigned version = 0;
    char opBuf[8] = {0};
    char fileBuf[64] = {0};
    unsigned long long rawBytes = 0;
    char crcBuf[16] = {0};
    const int got = std::sscanf(
        line.c_str(),
        "{\"v\":%u,\"op\":\"%7[^\"]\",\"file\":\"%63[^\"]\","
        "\"bytes\":%llu,\"crc\":\"%8[^\"]\"}",
        &version, opBuf, fileBuf, &rawBytes, crcBuf);
    if (got != 5 || version != kCacheIndexVersion)
        return false;
    op = opBuf;
    file = fileBuf;
    bytes = rawBytes;
    const std::string covered = recordCrcInput(op.c_str(), file, bytes);
    const std::uint32_t expected = static_cast<std::uint32_t>(
        std::strtoul(crcBuf, nullptr, 16));
    return crc32(covered.data(), covered.size()) == expected;
}

std::string
formatRecord(const char *op, const std::string &file,
             std::uint64_t bytes)
{
    const std::string covered = recordCrcInput(op, file, bytes);
    char line[192];
    std::snprintf(line, sizeof(line),
                  "{\"v\":%u,\"op\":\"%s\",\"file\":\"%s\","
                  "\"bytes\":%llu,\"crc\":\"%08x\"}\n",
                  kCacheIndexVersion, op, file.c_str(),
                  static_cast<unsigned long long>(bytes),
                  crc32(covered.data(), covered.size()));
    return line;
}

std::string
entryFileName(const std::string &key)
{
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.json",
                  static_cast<unsigned long long>(
                      hashBytes(key.data(), key.size())));
    return name;
}

} // namespace

CacheStore::CacheStore(CacheStoreConfig config)
    : config_(std::move(config))
{
}

std::string
CacheStore::indexLogPath() const
{
    return config_.dir + "/index.log";
}

std::string
CacheStore::indexLockPath() const
{
    return config_.dir + "/index.lock";
}

std::string
CacheStore::entryPath(const std::string &key) const
{
    return config_.dir + "/" + entryFileName(key);
}

void
CacheStore::ensureLoaded()
{
    if (loaded_)
        return;
    loaded_ = true;
    std::error_code ec;
    if (!fs::exists(config_.dir, ec))
        return; // stay lazy: nothing exists until the first store
    catchUp();
    if (!entries_.empty())
        return;
    // The index knows nothing but the directory may hold entries (a
    // pre-index cache, or a deleted/ruined log). This is the one
    // place a directory scan is allowed outside an explicit rebuild.
    for (const auto &de : fs::directory_iterator(
             config_.dir, fs::directory_options::skip_permission_denied,
             ec)) {
        if (de.is_regular_file(ec) &&
            de.path().extension() == ".json") {
            rebuildIndex();
            return;
        }
    }
}

void
CacheStore::applyRecord(const std::string &op, const std::string &file,
                        std::uint64_t bytes)
{
    ++seq_;
    if (op == "del") {
        auto it = entries_.find(file);
        if (it == entries_.end())
            return;
        liveBytes_ -= std::min(liveBytes_, it->second.bytes);
        entries_.erase(it);
        return;
    }
    // "put" and "touch" both (re)assert presence; replays are
    // idempotent because the byte delta is computed off current state.
    Entry &e = entries_[file];
    if (bytes) {
        liveBytes_ += bytes;
        liveBytes_ -= std::min(liveBytes_, e.bytes);
        e.bytes = bytes;
    }
    e.lastSeq = seq_;
}

void
CacheStore::catchUp(bool haveExclusiveLock)
{
    FileLock lock;
    if (!haveExclusiveLock) {
        // Shared: appends may interleave with the read (whole records
        // thanks to O_APPEND), but a compaction cannot swap the file
        // out from between our stat and our read.
        lock = FileLock(indexLockPath(), FileLock::Mode::Shared);
    }
    struct ::stat st{};
    if (::stat(indexLogPath().c_str(), &st) != 0) {
        if (indexIno_) {
            // The log vanished under us; forget what it taught us.
            entries_.clear();
            liveBytes_ = 0;
            indexIno_ = 0;
            indexReadPos_ = 0;
        }
        return;
    }
    const auto ino = static_cast<std::uint64_t>(st.st_ino);
    const auto size = static_cast<std::uint64_t>(st.st_size);
    if (ino != indexIno_ || size < indexReadPos_) {
        // A different file (compaction/rebuild by another process) or
        // a truncation: replay from the top. seq_ keeps rising so
        // recency stays monotonic across the reload.
        entries_.clear();
        liveBytes_ = 0;
        indexReadPos_ = 0;
        indexIno_ = ino;
    }
    if (size == indexReadPos_)
        return;
    std::ifstream is(indexLogPath(), std::ios::binary);
    if (!is)
        return;
    is.seekg(static_cast<std::streamoff>(indexReadPos_));
    std::string buffer(size - indexReadPos_, '\0');
    is.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    buffer.resize(static_cast<std::size_t>(is.gcount()));

    // Consume whole lines; a record that fails its CRC (torn write
    // joined with a later append, bit rot) is skipped, never fatal —
    // entry files are the source of truth for content, the index only
    // for accounting. A trailing partial line stays unconsumed so a
    // later catch-up rereads it once complete.
    std::size_t pos = 0;
    std::size_t consumed = 0;
    while (true) {
        const std::size_t nl = buffer.find('\n', pos);
        if (nl == std::string::npos)
            break;
        std::string op, file;
        std::uint64_t bytes = 0;
        if (parseRecord(buffer.substr(pos, nl - pos), op, file, bytes))
            applyRecord(op, file, bytes);
        pos = nl + 1;
        consumed = pos;
    }
    indexReadPos_ += consumed;
}

void
CacheStore::appendRecord(const char *op, const std::string &file,
                         std::uint64_t bytes)
{
    // Shared-lock single-write append (common/append_log.hh): whole
    // records interleave, and a compaction can never rename the log
    // away between our open and our write.
    if (!appendLogLine(indexLogPath(), indexLockPath(),
                       formatRecord(op, file, bytes))) {
        warn("cache: cannot append to index '%s'",
             indexLogPath().c_str());
    }
    ++appendedSinceCompact_;
    // Apply locally too; if catch-up later rereads our own record the
    // replay is idempotent.
    applyRecord(op, file, bytes);
}

void
CacheStore::rebuildIndex()
{
    // Exclusive and blocking: rebuilds happen at open time and must
    // not race a compactor. Whoever wins may have built the index
    // for us while we waited.
    FileLock lock(indexLockPath(), FileLock::Mode::Exclusive);
    struct ::stat st{};
    if (::stat(indexLogPath().c_str(), &st) == 0 && st.st_size > 0) {
        catchUp(/*haveExclusiveLock=*/true);
        if (!entries_.empty())
            return;
    }

    struct Found
    {
        std::string file;
        std::uint64_t bytes;
        fs::file_time_type mtime;
    };
    std::vector<Found> found;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(
             config_.dir, fs::directory_options::skip_permission_denied,
             ec)) {
        if (!de.is_regular_file(ec) ||
            de.path().extension() != ".json")
            continue;
        found.push_back({de.path().filename().string(),
                         de.file_size(ec), de.last_write_time(ec)});
    }
    // Oldest first so replay order doubles as LRU order.
    std::sort(found.begin(), found.end(),
              [](const Found &a, const Found &b) {
                  return a.mtime < b.mtime;
              });

    std::string text;
    entries_.clear();
    liveBytes_ = 0;
    for (const Found &f : found) {
        text += formatRecord("put", f.file, f.bytes);
        applyRecord("put", f.file, f.bytes);
    }
    if (!writeFileAtomic(indexLogPath(), text)) {
        warn("cache: cannot rebuild index '%s'",
             indexLogPath().c_str());
        return;
    }
    if (::stat(indexLogPath().c_str(), &st) == 0) {
        indexIno_ = static_cast<std::uint64_t>(st.st_ino);
        indexReadPos_ = static_cast<std::uint64_t>(st.st_size);
    }
    appendedSinceCompact_ = 0;
    ++stats_.indexRebuilds;
}

bool
CacheStore::compactLocked()
{
    FileLock lock(indexLockPath(), FileLock::Mode::Exclusive,
                  /*block=*/false);
    if (!lock.held())
        return false; // another process is compacting; theirs counts
    catchUp(/*haveExclusiveLock=*/true);

    std::vector<std::pair<std::string, Entry>> live(entries_.begin(),
                                                    entries_.end());
    std::sort(live.begin(), live.end(),
              [](const auto &a, const auto &b) {
                  return a.second.lastSeq < b.second.lastSeq;
              });
    std::string text;
    for (const auto &[file, e] : live)
        text += formatRecord("put", file, e.bytes);
    if (!writeFileAtomic(indexLogPath(), text)) {
        warn("cache: cannot compact index '%s'",
             indexLogPath().c_str());
        return false;
    }
    struct ::stat st{};
    if (::stat(indexLogPath().c_str(), &st) == 0) {
        indexIno_ = static_cast<std::uint64_t>(st.st_ino);
        indexReadPos_ = static_cast<std::uint64_t>(st.st_size);
    }
    appendedSinceCompact_ = 0;
    ++stats_.compactions;
    return true;
}

void
CacheStore::maybeCompact()
{
    // Compact when the log carries far more records than live
    // entries: the floor keeps small caches from churning, the ratio
    // bounds replay work for late-joining processes.
    if (appendedSinceCompact_ < 256 ||
        appendedSinceCompact_ < 4 * entries_.size())
        return;
    compactLocked();
}

std::size_t
CacheStore::evictLocked()
{
    if (!config_.maxBytes || liveBytes_ <= config_.maxBytes)
        return 0;
    std::vector<std::pair<std::string, Entry>> order(entries_.begin(),
                                                     entries_.end());
    std::sort(order.begin(), order.end(),
              [](const auto &a, const auto &b) {
                  return a.second.lastSeq < b.second.lastSeq;
              });
    std::size_t evicted = 0;
    std::error_code ec;
    for (const auto &[file, e] : order) {
        if (liveBytes_ <= config_.maxBytes)
            break;
        fs::remove(fs::path(config_.dir) / file, ec);
        appendRecord("del", file, e.bytes);
        ++evicted;
        ++stats_.evicted;
    }
    return evicted;
}

CacheStore::Load
CacheStore::load(const std::string &key, std::string &payload)
{
    std::lock_guard<std::mutex> guard(mutex_);
    ensureLoaded();
    const std::string path = entryPath(key);
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        ++stats_.misses;
        return Load::Miss;
    }
    std::stringstream buf;
    buf << is.rdbuf();
    const std::string text = buf.str();

    // v3 layout: a one-line CRC header followed by the JSON payload.
    //   {"dmdc_cache":3,"crc":"xxxxxxxx","len":N}\n{...payload...}\n
    if (text.empty()) {
        quarantinePath(path, "is zero-byte");
        return Load::Corrupt;
    }
    const std::size_t nl = text.find('\n');
    if (nl == std::string::npos) {
        quarantinePath(path, "has no header line");
        return Load::Corrupt;
    }
    const std::string headerLine = text.substr(0, nl);
    unsigned version = 0;
    char crcBuf[16] = {0};
    unsigned long long expectedLen = 0;
    if (std::sscanf(headerLine.c_str(),
                    "{\"dmdc_cache\":%u,\"crc\":\"%8[^\"]\","
                    "\"len\":%llu}",
                    &version, crcBuf, &expectedLen) != 3) {
        quarantinePath(path, "has an unrecognized header (old format?)");
        return Load::Corrupt;
    }
    if (version != kCacheFormatVersion) {
        quarantinePath(path, "has a mismatched format version");
        return Load::Corrupt;
    }
    std::string body = text.substr(nl + 1);
    if (body.size() != expectedLen) {
        quarantinePath(path, "is truncated");
        return Load::Corrupt;
    }
    const std::uint32_t expectedCrc = static_cast<std::uint32_t>(
        std::strtoul(crcBuf, nullptr, 16));
    if (crc32(body.data(), body.size()) != expectedCrc) {
        quarantinePath(path, "fails its checksum");
        return Load::Corrupt;
    }
    payload = std::move(body);
    ++stats_.hits;
    if (config_.maxBytes) {
        // Touch for LRU, both in the index (recency) and on the file
        // (so a from-scratch rebuild preserves the ordering).
        std::error_code ec;
        fs::last_write_time(path, fs::file_time_type::clock::now(),
                            ec);
        appendRecord("touch", entryFileName(key), text.size());
    }
    return Load::Hit;
}

void
CacheStore::store(const std::string &key, const std::string &payloadIn)
{
    std::lock_guard<std::mutex> guard(mutex_);
    ensureLoaded();
    std::error_code ec;
    fs::create_directories(config_.dir, ec);
    if (ec) {
        warn("cannot create cache dir '%s': %s", config_.dir.c_str(),
             ec.message().c_str());
        return;
    }

    std::string payload = payloadIn;
    char header[64];
    std::snprintf(header, sizeof(header),
                  "{\"dmdc_cache\":%u,\"crc\":\"%08x\",\"len\":%llu}\n",
                  kCacheFormatVersion,
                  crc32(payload.data(), payload.size()),
                  static_cast<unsigned long long>(payload.size()));

    // Deterministic chaos: emit a truncated payload under the intact
    // header, exactly what a torn write or disk fault produces. The
    // next reader must quarantine and recompute.
    if (FaultInjector::global().injectCacheCorrupt(key))
        payload.resize(payload.size() / 2);

    const std::string path = entryPath(key);
    // Concurrent processes share the cache directory and must never
    // observe a torn file.
    if (!writeFileAtomic(path, header + payload)) {
        warn("cannot write cache file '%s'", path.c_str());
        return;
    }
    ++stats_.stored;
    appendRecord("put", entryFileName(key),
                 std::strlen(header) + payload.size());
    evictLocked();
    maybeCompact();
}

void
CacheStore::quarantineKey(const std::string &key, const char *reason)
{
    std::lock_guard<std::mutex> guard(mutex_);
    ensureLoaded();
    quarantinePath(entryPath(key), reason);
}

void
CacheStore::quarantinePath(const std::string &path, const char *reason)
{
    std::error_code ec;
    const fs::path src(path);
    const fs::path dir = fs::path(config_.dir) / "quarantine";
    fs::create_directories(dir, ec);
    fs::rename(src, dir / src.filename(), ec);
    if (ec) {
        // Rename failed (e.g. cross-device); never trust the entry —
        // drop it instead.
        fs::remove(src, ec);
    }
    warn("cache entry '%s' %s; quarantined and recomputing",
         path.c_str(), reason);
    ++stats_.quarantined;
    const std::string file = src.filename().string();
    auto it = entries_.find(file);
    if (it != entries_.end())
        appendRecord("del", file, it->second.bytes);
    enforceQuarantineCap();
}

void
CacheStore::enforceQuarantineCap()
{
    if (!config_.quarantineMaxEntries && !config_.quarantineMaxBytes)
        return;
    std::error_code ec;
    const fs::path dir = fs::path(config_.dir) / "quarantine";
    struct Found
    {
        fs::path path;
        std::uint64_t size;
        fs::file_time_type mtime;
    };
    std::vector<Found> found;
    std::uint64_t total = 0;
    for (const auto &de : fs::directory_iterator(
             dir, fs::directory_options::skip_permission_denied, ec)) {
        if (!de.is_regular_file(ec))
            continue;
        Found f{de.path(), de.file_size(ec), de.last_write_time(ec)};
        total += f.size;
        found.push_back(std::move(f));
    }
    auto over = [&](std::size_t count, std::uint64_t bytes) {
        return (config_.quarantineMaxEntries &&
                count > config_.quarantineMaxEntries) ||
               (config_.quarantineMaxBytes &&
                bytes > config_.quarantineMaxBytes);
    };
    if (!over(found.size(), total))
        return;
    // Oldest first: recent quarantines are the ones someone is likely
    // to want for a post-mortem.
    std::sort(found.begin(), found.end(),
              [](const Found &a, const Found &b) {
                  return a.mtime < b.mtime;
              });
    std::size_t count = found.size();
    for (const Found &f : found) {
        if (!over(count, total))
            break;
        if (fs::remove(f.path, ec)) {
            total -= f.size;
            --count;
            ++stats_.quarantineEvicted;
        }
    }
}

std::size_t
CacheStore::evictToCap()
{
    std::lock_guard<std::mutex> guard(mutex_);
    ensureLoaded();
    if (!config_.maxBytes)
        return 0;
    catchUp();
    return evictLocked();
}

bool
CacheStore::compact()
{
    std::lock_guard<std::mutex> guard(mutex_);
    ensureLoaded();
    return compactLocked();
}

std::uint64_t
CacheStore::liveBytes()
{
    std::lock_guard<std::mutex> guard(mutex_);
    ensureLoaded();
    catchUp();
    return liveBytes_;
}

std::size_t
CacheStore::liveEntries()
{
    std::lock_guard<std::mutex> guard(mutex_);
    ensureLoaded();
    catchUp();
    return entries_.size();
}

} // namespace dmdc
