/**
 * @file
 * Simulator driver implementation.
 */

#include "sim/simulator.hh"

#include "common/logging.hh"
#include "sim/invalidation.hh"
#include "trace/spec_suite.hh"

namespace dmdc
{

Simulator::Simulator(const SimOptions &options) : options_(options)
{
    params_ = makeMachineConfig(options_.configLevel);
    applyScheme(params_, options_.scheme, options_.coherence,
                options_.safeLoads);
    params_.lsq.dmdc.numYlaQw = options_.numYlaQw;
    if (options_.tableEntriesOverride)
        params_.lsq.dmdc.tableEntries = options_.tableEntriesOverride;
    params_.lsq.dmdc.queueEntries = options_.queueEntries;
    params_.lsq.sqFilter = options_.sqFilter;
    if (options_.tweak)
        options_.tweak(params_);

    workload_ = makeSpecWorkload(options_.benchmark);
    pipe_ = std::make_unique<Pipeline>(params_, *workload_);
    for (FilterObserver *obs : options_.observers)
        pipe_->addFilterObserver(obs);
}

Simulator::~Simulator() = default;

SimResult
Simulator::run()
{
    const WorkloadParams &wp = workload_->params();
    // Invalidations model another processor writing a shared address
    // space; sampling only this core's (small) footprint would make
    // every message evict live cache lines, which is neither the
    // paper's methodology nor how random coherence traffic behaves.
    const unsigned inv_region_log2 =
        wp.footprintLog2 > 26 ? wp.footprintLog2 : 26;
    InvalidationInjector injector(
        options_.invalidationsPer1kCycles,
        Addr{0x10000000}, Addr{1} << inv_region_log2,
        params_.mem.l1d.lineBytes,
        wp.seed ^ 0xfeedbeefull);

    auto run_phase = [&](std::uint64_t insts) {
        const std::uint64_t target = pipe_->committed() + insts;
        while (pipe_->committed() < target) {
            pipe_->tick();
            injector.tick(*pipe_);
        }
    };

    run_phase(options_.warmupInsts);
    pipe_->resetStats();
    run_phase(options_.runInsts);

    // ---- collect ----
    SimResult r;
    r.benchmark = options_.benchmark;
    r.fp = workload_->isFpBenchmark();
    r.configLevel = options_.configLevel;
    // Canonical name, even when the option carried an alias.
    r.scheme = params_.lsq.policy;

    const PipelineStats &ps = pipe_->stats();
    r.instructions = ps.committedInsts.value();
    r.cycles = ps.cycles.value();
    r.ipc = pipe_->ipc();

    const auto &act = pipe_->lsq().activity();
    r.lqSearches = act.lqSearches.value();
    r.lqSearchesFiltered = act.lqSearchesFiltered.value();
    r.sqSearches = act.sqSearches.value();
    r.sqSearchesFiltered = act.sqSearchesFiltered.value();
    r.ageTableReplays = ps.ageTableReplays.value();
    r.loadsOlderThanAllStores = act.loadsOlderThanAllStores.value();
    r.committedLoads = ps.committedLoads.value();
    r.committedStores = ps.committedStores.value();
    r.baselineReplays = ps.baselineReplays.value();
    r.dmdcReplays = ps.dmdcReplays.value();
    r.trueViolations = act.trueViolationsDetected.value();

    if (const DmdcEngine *engine = pipe_->lsq().dmdc()) {
        const auto &ds = engine->stats();
        const double stores = static_cast<double>(
            ds.safeStores.value() + ds.unsafeStores.value());
        r.safeStoreFrac = stores
            ? static_cast<double>(ds.safeStores.value()) / stores : 0.0;
        const double loads =
            static_cast<double>(ps.committedLoads.value());
        r.safeLoadFrac = loads
            ? static_cast<double>(ds.safeLoadsMarked.value()) / loads
            : 0.0;
        r.checkingCycleFrac = r.cycles
            ? static_cast<double>(ds.checkingCycles.value()) /
                static_cast<double>(r.cycles)
            : 0.0;
        r.windowInstrs = ds.windowInstrs.mean();
        r.windowLoads = ds.windowLoads.mean();
        r.windowSafeLoads = ds.windowSafeLoads.mean();
        r.windowMarkedEntries = ds.windowMarkedEntries.mean();
        const double windows =
            static_cast<double>(ds.windows.value());
        r.windowSingleStoreFrac = windows
            ? static_cast<double>(ds.windowsSingleStore.value()) /
                windows
            : 0.0;
        r.trueReplays = ds.trueReplays.value();
        r.falseAddrX = ds.falseAddrX.value();
        r.falseAddrY = ds.falseAddrY.value();
        r.falseHashBefore = ds.falseHashBefore.value();
        r.falseHashX = ds.falseHashX.value();
        r.falseHashY = ds.falseHashY.value();
        r.falseOverflow = ds.falseOverflow.value();
    }

    EnergyModel energy_model(params_);
    r.energy = energy_model.compute(*pipe_);
    return r;
}

SimResult
runSimulation(const SimOptions &options)
{
    Simulator sim(options);
    return sim.run();
}

} // namespace dmdc
