/**
 * @file
 * Simulator driver implementation.
 */

#include "sim/simulator.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "lsq/policy/registry.hh"
#include "sim/fault_injector.hh"
#include "sim/invalidation.hh"
#include "sim/run_error.hh"
#include "trace/spec_suite.hh"
#include "verify/coherence_agent.hh"
#include "verify/ordering_oracle.hh"

namespace dmdc
{

namespace
{

[[noreturn]] void
configError(const std::string &message)
{
    throw RunError(RunErrorCategory::Config, message);
}

/** Interned-once trace identities for the kernel layer. */
struct KernelTrace
{
    TraceCategory &cat = traceCategory("kernel");
    std::uint16_t warmup = traceNameId("warmup");
    std::uint16_t measure = traceNameId("measure");
    std::uint16_t idleSkip = traceNameId("idle-skip");
    std::uint16_t cycles = traceNameId("cycles");
    std::uint16_t instructions = traceNameId("instructions");
    std::uint16_t dmdcReplays = traceNameId("replays.dmdc");
    std::uint16_t baselineReplays = traceNameId("replays.baseline");
    std::uint16_t ageReplays = traceNameId("replays.age-table");
    std::uint16_t checkingCycles = traceNameId("checking-cycles");
};

KernelTrace &
kernelTrace()
{
    static KernelTrace ids;
    return ids;
}

} // namespace

void
validateSimOptions(const SimOptions &opt)
{
    if (opt.configLevel < 1 || opt.configLevel > 3)
        configError("machine configuration level must be 1-3, got " +
                    std::to_string(opt.configLevel));
    const std::vector<std::string> &names = specAllNames();
    if (std::find(names.begin(), names.end(), opt.benchmark) ==
        names.end())
        configError("unknown benchmark '" + opt.benchmark +
                    "' (see --list)");
    if (!DependencePolicyRegistry::instance().find(opt.scheme))
        configError("unknown dependence-checking scheme '" +
                    opt.scheme + "' (see --list-schemes)");
    if (opt.runInsts == 0)
        configError("measured instruction count must be > 0");
    if (opt.warmupInsts > (std::uint64_t{1} << 40) ||
        opt.runInsts > (std::uint64_t{1} << 40))
        configError("instruction budget is implausibly large "
                    "(> 2^40)");
    if (opt.numYlaQw == 0 || opt.numYlaQw > 4096 ||
        !isPowerOf2(opt.numYlaQw))
        configError("YLA register count must be a power of two in "
                    "[1, 4096], got " + std::to_string(opt.numYlaQw));
    if (opt.tableEntriesOverride != 0 &&
        (!isPowerOf2(opt.tableEntriesOverride) ||
         opt.tableEntriesOverride > (1u << 24)))
        configError("checking-table entries must be a power of two "
                    "<= 2^24, got " +
                    std::to_string(opt.tableEntriesOverride));
    if (opt.queueEntries == 0 || opt.queueEntries > (1u << 20))
        configError("checking-queue entries must be in [1, 2^20], "
                    "got " + std::to_string(opt.queueEntries));
    if (!std::isfinite(opt.invalidationsPer1kCycles) ||
        opt.invalidationsPer1kCycles < 0.0)
        configError("invalidation rate must be finite and >= 0");
    if (!std::isfinite(opt.timeoutMs) || opt.timeoutMs < 0.0)
        configError("run timeout must be finite and >= 0");
    if (!opt.coherenceAgent.empty()) {
        std::string err;
        if (!CoherenceAgent::validateSpec(opt.coherenceAgent, &err))
            configError("bad coherence-agent spec '" +
                        opt.coherenceAgent + "': " + err);
    }
}

Simulator::Simulator(const SimOptions &options) : options_(options)
{
    validateSimOptions(options_);
    // Library embedding hook: first configurer wins, so a SimOptions
    // with tracing set behaves like the --trace flag unless a harness
    // already configured the process-wide sink.
    if (options_.trace.enabled() && !traceCaptureActive())
        traceConfigure(options_.trace);
    params_ = makeMachineConfig(options_.configLevel);
    applyScheme(params_, options_.scheme, options_.coherence,
                options_.safeLoads);
    params_.lsq.dmdc.numYlaQw = options_.numYlaQw;
    if (options_.tableEntriesOverride)
        params_.lsq.dmdc.tableEntries = options_.tableEntriesOverride;
    params_.lsq.dmdc.queueEntries = options_.queueEntries;
    params_.lsq.sqFilter = options_.sqFilter;
    if (options_.tweak)
        options_.tweak(params_);

    workload_ = makeSpecWorkload(options_.benchmark);
    pipe_ = std::make_unique<Pipeline>(params_, *workload_);
    for (FilterObserver *obs : options_.observers)
        pipe_->addFilterObserver(obs);

    // --check=litmus means oracle + scripted coherence traffic; the
    // mixed rotation is the default when no family was named.
    if (options_.check == CheckMode::Litmus &&
        options_.coherenceAgent.empty())
        options_.coherenceAgent = "mixed";
    if (options_.check != CheckMode::Off) {
        OrderingOracle::Params op;
        op.lineBytes = params_.mem.l1d.lineBytes;
        oracle_ = std::make_unique<OrderingOracle>(op);
        // attachOracle -> LsqUnit::setOracle fills in the policy
        // contract (enforceExternal / exemptSafeLoads).
        pipe_->attachOracle(oracle_.get());
    }

    // Deterministic chaos: silently weaken the policy's checking so
    // CI can prove the oracle catches real miscompares. Same
    // fingerprint shape as the run-hang site.
    std::ostringstream corrupt_fp;
    corrupt_fp << options_.benchmark << '|' << params_.lsq.policy
               << '|' << options_.configLevel;
    if (FaultInjector::global().injectLsqCorrupt(corrupt_fp.str()))
        pipe_->lsq().corruptChecking();
}

Simulator::~Simulator() = default;

SimResult
Simulator::run()
{
    KernelTrace &kt = kernelTrace();
    const WorkloadParams &wp = workload_->params();
    // Invalidations model another processor writing a shared address
    // space; sampling only this core's (small) footprint would make
    // every message evict live cache lines, which is neither the
    // paper's methodology nor how random coherence traffic behaves.
    const unsigned inv_region_log2 =
        wp.footprintLog2 > 26 ? wp.footprintLog2 : 26;
    InvalidationInjector injector(
        options_.invalidationsPer1kCycles,
        Addr{0x10000000}, Addr{1} << inv_region_log2,
        params_.mem.l1d.lineBytes,
        wp.seed ^ 0xfeedbeefull);

    // A scripted coherence agent (litmus runs) replaces the random
    // injector outright: its traffic targets the workload's actual
    // footprint so deliveries collide with in-flight loads.
    std::unique_ptr<CoherenceAgent> agent;
    if (!options_.coherenceAgent.empty())
        agent = std::make_unique<CoherenceAgent>(
            options_.coherenceAgent, Addr{0x10000000},
            Addr{1} << wp.footprintLog2, params_.mem.l1d.lineBytes,
            wp.seed ^ 0x5ca1ab1eull);
    auto ext_tick = [&] {
        if (agent)
            agent->tick(*pipe_);
        else
            injector.tick(*pipe_);
    };
    auto ext_injected = [&] {
        return agent ? agent->injected() : injector.injected();
    };
    auto ext_active = [&] {
        return agent ? agent->active() : injector.active();
    };

    // ---- watchdogs ----
    //
    // Two independent guards turn a wedged simulation into a
    // structured RunError(Timeout) instead of a hung worker: a
    // cycle-budget watchdog (no commit progress for stallCycleLimit
    // consecutive cycles — deterministic, catches pipeline deadlock)
    // and an optional wall-clock deadline, checked once every
    // wallCheckIntervalTicks loop iterations to keep the hot loop
    // free of clock syscalls. The interval counts loop iterations,
    // not simulated cycles: a bulk idle skip advances many cycles in
    // one iteration, and the deadline guards wall time, which scales
    // with iterations.
    constexpr std::uint64_t wallCheckIntervalTicks = 4096;
    static_assert((wallCheckIntervalTicks &
                   (wallCheckIntervalTicks - 1)) == 0,
                  "wall-check interval must be a power of two");
    using WallClock = std::chrono::steady_clock;
    const WallClock::time_point wall_deadline = WallClock::now() +
        std::chrono::duration_cast<WallClock::duration>(
            std::chrono::duration<double, std::milli>(
                options_.timeoutMs));
    const bool wall_limited = options_.timeoutMs > 0.0;

    // Deterministic chaos: a run-hang fault wedges this run — cycles
    // elapse, commits don't — which must surface via the watchdog.
    std::ostringstream fp_os;
    fp_os << options_.benchmark << '|' << params_.lsq.policy << '|'
          << options_.configLevel;
    const bool hang_injected =
        FaultInjector::global().injectRunHang(fp_os.str());
    // An injected wedge must never outlive the watchdog, even when
    // the caller disabled the stall guard.
    const std::uint64_t stall_limit = options_.stallCycleLimit
        ? options_.stallCycleLimit
        : (hang_injected ? 100000 : 0);

    std::uint64_t ticks = 0;
    auto run_phase = [&](std::uint64_t insts) {
        const std::uint64_t target = pipe_->committed() + insts;
        std::uint64_t last_committed = pipe_->committed();
        std::uint64_t stall_cycles = 0;
        while (pipe_->committed() < target || hang_injected) {
            unsigned progress = 0;
            const std::uint64_t injected_before = ext_injected();
            if (!hang_injected) {
                progress = pipe_->tick();
                ext_tick();
            }
            if (hang_injected || pipe_->committed() == last_committed) {
                if (stall_limit && ++stall_cycles > stall_limit)
                    throw RunError(
                        RunErrorCategory::Timeout,
                        "no commit progress in " +
                            std::to_string(stall_limit) +
                            " cycles (" +
                            (hang_injected
                                 ? std::string("injected run-hang")
                                 : "wedged pipeline") +
                            ", benchmark " + options_.benchmark + ")");
            } else {
                stall_cycles = 0;
                last_committed = pipe_->committed();
            }
            // Event-driven idle skip: after an empty tick with no
            // injection, jump to just before the next pipeline event.
            if (!hang_injected && progress == 0 &&
                ext_injected() == injected_before &&
                pipe_->committed() < target) {
                const Cycle wake = pipe_->nextEventCycle();
                Cycle n = wake > pipe_->now() + 1
                    ? wake - pipe_->now() - 1 : 0;
                // Each skipped cycle is a commit-free cycle; cap the
                // jump so the stall watchdog above still throws at
                // the exact cycle it would have without skipping.
                if (stall_limit && n > stall_limit - stall_cycles)
                    n = stall_limit - stall_cycles;
                if (n > 0) {
                    if (ext_active()) {
                        // Bulk skipping would perturb the source's
                        // per-cycle state (RNG stream or script
                        // phase): replay it cycle by cycle, and stop
                        // skipping the moment it injects (the
                        // pipeline is no longer idle).
                        Cycle skipped = 0;
                        while (skipped < n) {
                            pipe_->skipIdleCycles(1);
                            ++skipped;
                            ext_tick();
                            if (ext_injected() != injected_before)
                                break;
                        }
                        stall_cycles += skipped;
                        traceInstantArg(kt.cat, kt.idleSkip, skipped);
                    } else {
                        pipe_->skipIdleCycles(n);
                        stall_cycles += n;
                        traceInstantArg(kt.cat, kt.idleSkip, n);
                    }
                }
            }
            if (wall_limited &&
                (++ticks & (wallCheckIntervalTicks - 1)) == 0 &&
                WallClock::now() > wall_deadline)
                throw RunError(
                    RunErrorCategory::Timeout,
                    "wall-clock timeout after " +
                        std::to_string(options_.timeoutMs) +
                        " ms (benchmark " + options_.benchmark + ")");
        }
    };

    {
        TraceSpan span(kt.cat, kt.warmup);
        run_phase(options_.warmupInsts);
    }
    pipe_->resetStats();
    {
        TraceSpan span(kt.cat, kt.measure);
        run_phase(options_.runInsts);
    }

    // ---- collect ----
    SimResult r;
    r.benchmark = options_.benchmark;
    r.fp = workload_->isFpBenchmark();
    r.configLevel = options_.configLevel;
    // Canonical name, even when the option carried an alias.
    r.scheme = params_.lsq.policy;

    const PipelineStats &ps = pipe_->stats();
    r.instructions = ps.committedInsts.value();
    r.cycles = ps.cycles.value();
    r.ipc = pipe_->ipc();

    const auto &act = pipe_->lsq().activity();
    r.lqSearches = act.lqSearches.value();
    r.lqSearchesFiltered = act.lqSearchesFiltered.value();
    r.sqSearches = act.sqSearches.value();
    r.sqSearchesFiltered = act.sqSearchesFiltered.value();
    r.ageTableReplays = ps.ageTableReplays.value();
    r.loadsOlderThanAllStores = act.loadsOlderThanAllStores.value();
    r.committedLoads = ps.committedLoads.value();
    r.committedStores = ps.committedStores.value();
    r.baselineReplays = ps.baselineReplays.value();
    r.dmdcReplays = ps.dmdcReplays.value();
    r.trueViolations = act.trueViolationsDetected.value();

    if (const DmdcEngine *engine = pipe_->lsq().dmdc()) {
        const auto &ds = engine->stats();
        const double stores = static_cast<double>(
            ds.safeStores.value() + ds.unsafeStores.value());
        r.safeStoreFrac = stores
            ? static_cast<double>(ds.safeStores.value()) / stores : 0.0;
        const double loads =
            static_cast<double>(ps.committedLoads.value());
        r.safeLoadFrac = loads
            ? static_cast<double>(ds.safeLoadsMarked.value()) / loads
            : 0.0;
        r.checkingCycleFrac = r.cycles
            ? static_cast<double>(ds.checkingCycles.value()) /
                static_cast<double>(r.cycles)
            : 0.0;
        r.windowInstrs = ds.windowInstrs.mean();
        r.windowLoads = ds.windowLoads.mean();
        r.windowSafeLoads = ds.windowSafeLoads.mean();
        r.windowMarkedEntries = ds.windowMarkedEntries.mean();
        const double windows =
            static_cast<double>(ds.windows.value());
        r.windowSingleStoreFrac = windows
            ? static_cast<double>(ds.windowsSingleStore.value()) /
                windows
            : 0.0;
        r.trueReplays = ds.trueReplays.value();
        r.falseAddrX = ds.falseAddrX.value();
        r.falseAddrY = ds.falseAddrY.value();
        r.falseHashBefore = ds.falseHashBefore.value();
        r.falseHashX = ds.falseHashX.value();
        r.falseHashY = ds.falseHashY.value();
        r.falseOverflow = ds.falseOverflow.value();
    }

    if (kt.cat.on()) {
        // Per-policy end-of-run counters: one sample each, so a
        // merged campaign trace shows the policy mix at a glance.
        traceCounter(kt.cat, kt.cycles, r.cycles);
        traceCounter(kt.cat, kt.instructions, r.instructions);
        traceCounter(kt.cat, kt.dmdcReplays, r.dmdcReplays);
        traceCounter(kt.cat, kt.baselineReplays, r.baselineReplays);
        traceCounter(kt.cat, kt.ageReplays, r.ageTableReplays);
        if (const DmdcEngine *engine = pipe_->lsq().dmdc()) {
            traceCounter(kt.cat, kt.checkingCycles,
                         engine->stats().checkingCycles.value());
        }
    }

    EnergyModel energy_model(params_);
    r.energy = energy_model.compute(*pipe_);

    // ---- verdict ----
    r.checkMode = checkModeName(options_.check);
    if (agent)
        r.agentInvalidations = agent->injected();
    if (oracle_) {
        const OracleCounters &oc = oracle_->counters();
        r.oracleLoadsChecked = oc.loadsChecked;
        r.oracleStaleCommits = oc.staleCommits;
        r.oracleForbidden = oc.forbidden();
        // A forbidden outcome is a simulator-invariant failure: the
        // run produced results, but they are untrustworthy.
        if (oracle_->failed())
            throw RunError(RunErrorCategory::SimInvariant,
                           "ordering oracle: " + oracle_->firstFailure() +
                               " (benchmark " + options_.benchmark +
                               ", scheme " + params_.lsq.policy + ")");
    }
    return r;
}

SimResult
runSimulation(const SimOptions &options)
{
    Simulator sim(options);
    return sim.run();
}

} // namespace dmdc
