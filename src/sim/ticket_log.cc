/**
 * @file
 * Durable ticket log implementation (see ticket_log.hh for the
 * record grammar and recovery semantics).
 */

#include "sim/ticket_log.hh"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include <sys/stat.h>

#include "common/append_log.hh"
#include "common/atomic_file.hh"
#include "common/crc32.hh"
#include "common/file_lock.hh"
#include "common/json.hh"
#include "common/logging.hh"

namespace dmdc
{

namespace
{

/**
 * The CRC covers a canonical field join, not the serialized line, so
 * the checksum is stable against formatting changes and the escaped
 * spec round-trips through the JSON layer before being re-covered.
 */
std::string
recordCrcInput(const std::string &op, const std::string &key,
               const std::string &spec, const std::string &status)
{
    std::string covered = op;
    covered += '|';
    covered += key;
    if (op == "submit") {
        covered += '|';
        covered += spec;
    } else if (op == "finish") {
        covered += '|';
        covered += status;
    }
    return covered;
}

std::string
formatTicketRecord(const std::string &op, const std::string &key,
                   const std::string &spec, const std::string &status)
{
    const std::string covered = recordCrcInput(op, key, spec, status);
    char crcBuf[16];
    std::snprintf(crcBuf, sizeof(crcBuf), "%08x",
                  crc32(covered.data(), covered.size()));
    std::string line = "{\"v\":";
    line += std::to_string(kTicketLogVersion);
    line += ",\"op\":\"";
    line += op;
    line += "\",\"key\":\"";
    line += jsonEscapeString(key);
    line += '"';
    if (op == "submit") {
        line += ",\"spec\":\"";
        line += jsonEscapeString(spec);
        line += '"';
    } else if (op == "finish") {
        line += ",\"status\":\"";
        line += jsonEscapeString(status);
        line += '"';
    }
    line += ",\"crc\":\"";
    line += crcBuf;
    line += "\"}\n";
    return line;
}

/**
 * Parse + CRC-check one log line. Unlike the cache index, ticket
 * records embed a nested JSON document (the run spec), so they go
 * through the real parser rather than a shape-strict sscanf.
 */
bool
parseTicketRecord(const std::string &line, std::string &op,
                  std::string &key, std::string &spec,
                  std::string &status)
{
    JsonValue doc;
    std::string err;
    if (!parseJson(line, doc, err) ||
        doc.kind != JsonValue::Kind::Object)
        return false;
    const JsonValue *v = doc.find("v");
    const JsonValue *opv = doc.find("op");
    const JsonValue *keyv = doc.find("key");
    const JsonValue *crcv = doc.find("crc");
    if (!v || v->kind != JsonValue::Kind::Number ||
        v->text != std::to_string(kTicketLogVersion) ||
        !opv || opv->kind != JsonValue::Kind::String ||
        !keyv || keyv->kind != JsonValue::Kind::String ||
        !crcv || crcv->kind != JsonValue::Kind::String)
        return false;
    op = opv->text;
    key = keyv->text;
    spec.clear();
    status.clear();
    if (op == "submit") {
        const JsonValue *specv = doc.find("spec");
        if (!specv || specv->kind != JsonValue::Kind::String)
            return false;
        spec = specv->text;
    } else if (op == "finish") {
        const JsonValue *statusv = doc.find("status");
        if (!statusv || statusv->kind != JsonValue::Kind::String)
            return false;
        status = statusv->text;
    } else if (op != "start") {
        return false;
    }
    const std::string covered = recordCrcInput(op, key, spec, status);
    const std::uint32_t expected = static_cast<std::uint32_t>(
        std::strtoul(crcv->text.c_str(), nullptr, 16));
    return crc32(covered.data(), covered.size()) == expected;
}

} // namespace

TicketLog::TicketLog(std::string dir) : dir_(std::move(dir)) {}

std::string
TicketLog::logPath() const
{
    return dir_ + "/tickets.log";
}

std::string
TicketLog::lockPath() const
{
    return dir_ + "/tickets.lock";
}

void
TicketLog::append(const char *op, const std::string &key,
                  const std::string &spec, const std::string &status)
{
    if (!enabled())
        return;
    // The cache directory may not exist yet when the first submit
    // arrives before the first cache write; mirror CacheStore's lazy
    // creation so the log never races it.
    ::mkdir(dir_.c_str(), 0755);
    if (!appendLogLine(logPath(), lockPath(),
                       formatTicketRecord(op, key, spec, status))) {
        warn("ticket log: failed to append %s record for %s", op,
             key.c_str());
    }
}

void
TicketLog::appendSubmit(const std::string &key, const std::string &spec)
{
    append("submit", key, spec, "");
}

void
TicketLog::appendStart(const std::string &key)
{
    append("start", key, "", "");
}

void
TicketLog::appendFinish(const std::string &key,
                        const std::string &status)
{
    append("finish", key, "", status);
}

TicketLogReplay
TicketLog::replay() const
{
    TicketLogReplay result;
    if (!enabled())
        return result;
    std::ifstream in(logPath());
    if (!in.is_open())
        return result;
    // Pending tickets keep first-submit order so a recovered queue
    // re-runs in roughly the order clients asked for it.
    std::unordered_map<std::string, std::size_t> index;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::string op, key, spec, status;
        if (!parseTicketRecord(line, op, key, spec, status)) {
            ++result.corrupt;
            continue;
        }
        auto it = index.find(key);
        if (op == "submit") {
            if (it == index.end()) {
                index.emplace(key, result.pending.size());
                result.pending.push_back({key, spec, false});
            } else {
                // Re-submit after a finish (or a duplicate submit):
                // the latest spec wins and the ticket is pending
                // again.
                PendingTicket &t = result.pending[it->second];
                if (t.key.empty())
                    ++result.finished;
                t = {key, spec, false};
            }
        } else if (it != index.end() &&
                   !result.pending[it->second].key.empty()) {
            if (op == "start") {
                result.pending[it->second].started = true;
            } else { // finish
                result.pending[it->second] = PendingTicket{};
            }
        }
        // start/finish for an unknown key: compaction dropped its
        // submit or the line was torn; nothing to recover.
    }
    std::vector<PendingTicket> pending;
    for (auto &t : result.pending) {
        if (t.key.empty())
            ++result.finished;
        else
            pending.push_back(std::move(t));
    }
    result.pending = std::move(pending);
    return result;
}

bool
TicketLog::compact(const std::vector<PendingTicket> &pending)
{
    if (!enabled())
        return false;
    ::mkdir(dir_.c_str(), 0755);
    FileLock lock(lockPath(), FileLock::Mode::Exclusive,
                  /*block=*/false);
    if (!lock.held())
        return false;
    std::ostringstream body;
    for (const auto &t : pending) {
        body << formatTicketRecord("submit", t.key, t.spec, "");
        if (t.started)
            body << formatTicketRecord("start", t.key, "", "");
    }
    return writeFileAtomic(logPath(), body.str());
}

bool
TicketLog::shouldCompact(std::uint64_t appendedSinceCompact,
                         std::size_t pendingCount) const
{
    if (!enabled())
        return false;
    // Same shape as the cache index policy: don't bother until a few
    // hundred records have accumulated, and only when the log is
    // dominated by finished history rather than live work.
    if (appendedSinceCompact < 256)
        return false;
    return appendedSinceCompact > 4 * (pendingCount + 1);
}

} // namespace dmdc
