/**
 * @file
 * The `.dmdc_cache/` storage engine.
 *
 * Before this layer the on-disk run cache was a flat directory that
 * every lookup trusted blindly and every eviction pass re-scanned in
 * full. CacheStore keeps the crash-safe per-entry layout (one
 * CRC-framed JSON file per key, published with an atomic rename,
 * quarantined when damaged) and adds a real index on top:
 *
 *  - an append-only log (`index.log`) of self-validating records
 *    ({"v":1,"op":"put|touch|del","file":...,"bytes":...,"crc":...})
 *    written under a shared flock so concurrent processes interleave
 *    whole records, never bytes;
 *  - in-memory running totals (live entries, live bytes, LRU order by
 *    record sequence) replayed from the log once at open — `--cache-
 *    max-mb` eviction is an O(live) walk of the in-memory state with
 *    zero directory iteration; the directory is scanned only when the
 *    index is missing or damaged (rebuild);
 *  - lock-file-coordinated compaction: when the log accumulates many
 *    dead records, the holder of the exclusive lock rewrites it as one
 *    `put` per live entry and renames it into place. Readers detect
 *    the swap by inode change and replay the fresh log; appenders are
 *    excluded by the lock for the (sub-millisecond) rewrite, so no
 *    record is ever lost to a renamed-away file.
 *
 * Content reads never trust the index: load() always opens the entry
 * file and verifies its CRC frame, so a process can share the
 * directory with writers it has never synchronized with (the index
 * self-heals by appending the records it was missing). That is what
 * makes one warm cache safely shareable by shard workers, bench
 * binaries, and the dmdc_serve daemon at the same time.
 */

#ifndef DMDC_SIM_CACHE_STORE_HH
#define DMDC_SIM_CACHE_STORE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace dmdc
{

/**
 * On-disk run-cache format version. Bump when the key schema or the
 * entry JSON layout changes; mismatched entries quarantine and
 * recompute. v3: entries carry a CRC32 header line.
 */
constexpr unsigned kCacheFormatVersion = 3;

/** Index log record schema version (independent of the entry format:
 *  an index rebuild is cheap, a cache flush is not). */
constexpr unsigned kCacheIndexVersion = 1;

/** Knobs of one CacheStore (a strict subset of CampaignConfig). */
struct CacheStoreConfig
{
    /** Directory holding entries, index.log, and quarantine/. Nothing
     *  is created until the first store or quarantine. */
    std::string dir = ".dmdc_cache";

    /** Live-entry byte cap; LRU entries are evicted past it.
     *  0 = unlimited (and hits skip the recency bookkeeping). */
    std::uint64_t maxBytes = 0;

    /** Caps on quarantine/ (oldest files age out first; 0 = none). */
    std::size_t quarantineMaxEntries = 32;
    std::uint64_t quarantineMaxBytes = 8ull * 1024 * 1024;
};

/** Monotonic operation counters (lifetime of this store instance). */
struct CacheStoreStats
{
    std::size_t hits = 0;        ///< frame-verified entry reads
    std::size_t misses = 0;      ///< absent entries
    std::size_t stored = 0;      ///< entries published
    std::size_t quarantined = 0; ///< damaged entries set aside
    std::size_t evicted = 0;     ///< entries removed by the byte cap
    std::size_t quarantineEvicted = 0; ///< quarantine files aged out
    std::size_t indexRebuilds = 0;     ///< full directory scans
    std::size_t compactions = 0;       ///< index log rewrites
};

/**
 * One shared-directory cache store. Thread-safe: campaign workers
 * store concurrently, and any number of processes may point a store
 * at the same directory.
 */
class CacheStore
{
  public:
    explicit CacheStore(CacheStoreConfig config);

    /** Outcome of a load() probe. */
    enum class Load
    {
        Hit,    ///< @p payload holds the verified entry body
        Miss,   ///< no entry on disk
        Corrupt ///< entry was damaged; quarantined and forgotten
    };

    /**
     * Probe @p key. On Hit, @p payload receives the entry body (the
     * bytes that were stored), already CRC- and length-verified.
     * Callers still own payload-level validation (key match, schema);
     * use quarantineKey() when that deeper check fails.
     */
    Load load(const std::string &key, std::string &payload);

    /**
     * Publish @p payload under @p key: CRC-framed, written atomically,
     * recorded in the index. Evicts LRU entries when the byte cap is
     * exceeded and compacts the index log when it has grown stale.
     */
    void store(const std::string &key, const std::string &payload);

    /** Quarantine the entry of @p key (payload-level corruption found
     *  by the caller after a frame-valid load). */
    void quarantineKey(const std::string &key, const char *reason);

    /**
     * Evict least-recently-used entries until live bytes fit the cap.
     * Pure in-memory walk over the index (after catching up on other
     * processes' appends); never iterates the directory. Returns the
     * number of entries removed.
     */
    std::size_t evictToCap();

    /** Force an index compaction (normally automatic). False when
     *  another process holds the compaction lock. */
    bool compact();

    /** Running totals from the index (catching up first). */
    std::uint64_t liveBytes();
    std::size_t liveEntries();

    const CacheStoreStats &stats() const { return stats_; }
    const CacheStoreConfig &config() const { return config_; }

    /** Entry file path of @p key (hash-named inside dir). */
    std::string entryPath(const std::string &key) const;

  private:
    struct Entry
    {
        std::uint64_t bytes = 0;
        std::uint64_t lastSeq = 0; ///< recency: larger = more recent
    };

    // All private helpers assume mutex_ is held.
    void ensureLoaded();
    void replayIndex();
    void applyRecord(const std::string &op, const std::string &file,
                     std::uint64_t bytes);
    void appendRecord(const char *op, const std::string &file,
                      std::uint64_t bytes);
    void catchUp(bool haveExclusiveLock = false);
    void rebuildIndex();
    bool compactLocked();
    void maybeCompact();
    std::size_t evictLocked();
    void quarantinePath(const std::string &path, const char *reason);
    void enforceQuarantineCap();
    std::string indexLogPath() const;
    std::string indexLockPath() const;

    CacheStoreConfig config_;
    CacheStoreStats stats_;

    std::mutex mutex_;
    bool loaded_ = false;
    std::unordered_map<std::string, Entry> entries_; ///< by file name
    std::uint64_t liveBytes_ = 0;
    std::uint64_t seq_ = 0;          ///< records applied so far
    std::uint64_t appendedSinceCompact_ = 0;
    std::uint64_t indexReadPos_ = 0; ///< bytes of index.log consumed
    std::uint64_t indexIno_ = 0;     ///< inode of the replayed log
};

} // namespace dmdc

#endif // DMDC_SIM_CACHE_STORE_HH
