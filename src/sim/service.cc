#include "sim/service.hh"

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/build_info.hh"
#include "common/logging.hh"
#include "sim/fault_injector.hh"
#include "sim/heartbeat.hh"
#include "sim/run_error.hh"
#include "common/trace_sink.hh"
#include "sim/ticket_log.hh"

namespace dmdc
{

namespace
{

/** Interned ids for the daemon's ticket lifecycle: submit/start/
 *  finish instants plus the drain transition, all on the "service"
 *  category. */
struct ServiceTrace
{
    TraceCategory &cat = traceCategory("service");
    std::uint16_t submit = traceNameId("ticket-submit");
    std::uint16_t start = traceNameId("ticket-start");
    std::uint16_t finish = traceNameId("ticket-finish");
    std::uint16_t revive = traceNameId("ticket-revive");
    std::uint16_t drain = traceNameId("drain");
};

ServiceTrace &
serviceTrace()
{
    static ServiceTrace ids;
    return ids;
}

/** Same "%.17g" token the journal writer uses (campaign_runner.cc):
 *  the daemon re-derives journal bytes, so the spelling must match. */
std::string
journalDoubleToken(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

// ---- deadline-aware socket I/O ---------------------------------------

/** An absolute I/O deadline; disabled when built from timeoutMs <= 0. */
struct Deadline
{
    bool enabled = false;
    std::chrono::steady_clock::time_point at{};

    static Deadline
    in(int timeoutMs)
    {
        Deadline d;
        if (timeoutMs > 0) {
            d.enabled = true;
            d.at = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(timeoutMs);
        }
        return d;
    }

    bool
    expired() const
    {
        return enabled && std::chrono::steady_clock::now() >= at;
    }

    /** Remaining time as a poll() timeout: -1 = wait forever. */
    int
    pollMs() const
    {
        if (!enabled)
            return -1;
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                at - std::chrono::steady_clock::now())
                .count();
        if (left <= 0)
            return 0;
        return left > 60000 ? 60000 : static_cast<int>(left);
    }
};

/** Park until @p fd is ready for @p events or the deadline passes.
 *  EINTR restarts the wait against the same absolute deadline, so a
 *  signal storm cannot extend it. */
bool
waitReady(int fd, short events, const Deadline &dl, std::string &err)
{
    for (;;) {
        if (dl.expired()) {
            err = "timed out";
            return false;
        }
        pollfd pfd{fd, events, 0};
        const int rc = ::poll(&pfd, 1, dl.pollMs());
        if (rc > 0)
            return true; // ready (or HUP/ERR: let read/write report)
        if (rc == 0) {
            if (!dl.enabled)
                continue;
            err = "timed out";
            return false;
        }
        if (errno == EINTR)
            continue;
        err = std::string("poll failed: ") + std::strerror(errno);
        return false;
    }
}

/**
 * Read exactly @p len bytes before the deadline. Non-blocking recv
 * rounds with poll in between keep this EINTR-proof and immune to a
 * peer that trickles bytes: the deadline is absolute, not per-call.
 */
bool
readExact(int fd, void *buf, std::size_t len, const Deadline &dl,
          bool &eofAtStart, std::string &err)
{
    auto *p = static_cast<unsigned char *>(buf);
    std::size_t got = 0;
    eofAtStart = false;
    while (got < len) {
        const ssize_t n = ::recv(fd, p + got, len - got, MSG_DONTWAIT);
        if (n > 0) {
            got += static_cast<std::size_t>(n);
            continue;
        }
        if (n == 0) {
            eofAtStart = (got == 0);
            err = eofAtStart ? "" : "connection closed mid-frame";
            return false;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            if (!waitReady(fd, POLLIN, dl, err)) {
                if (err == "timed out")
                    err = "read timed out";
                return false;
            }
            continue;
        }
        err = std::string("read failed: ") + std::strerror(errno);
        return false;
    }
    return true;
}

/**
 * Write exactly @p len bytes before the deadline. MSG_NOSIGNAL turns
 * a vanished peer into EPIPE instead of killing the process — the
 * daemon must outlive any client's death mid-reply.
 */
bool
writeExact(int fd, const void *buf, std::size_t len, const Deadline &dl,
           std::string &err)
{
    const auto *p = static_cast<const unsigned char *>(buf);
    std::size_t put = 0;
    while (put < len) {
        const ssize_t n = ::send(fd, p + put, len - put,
                                 MSG_DONTWAIT | MSG_NOSIGNAL);
        if (n > 0) {
            put += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            if (!waitReady(fd, POLLOUT, dl, err)) {
                if (err == "timed out")
                    err = "write timed out";
                return false;
            }
            continue;
        }
        err = std::string("write failed: ") + std::strerror(errno);
        return false;
    }
    return true;
}

void
encodeFrameHeader(std::uint32_t len, unsigned char hdr[4])
{
    hdr[0] = static_cast<unsigned char>(len >> 24);
    hdr[1] = static_cast<unsigned char>(len >> 16);
    hdr[2] = static_cast<unsigned char>(len >> 8);
    hdr[3] = static_cast<unsigned char>(len);
}

// ---- reply/JSON helpers ----------------------------------------------

std::string
errorReply(const std::string &message)
{
    return "{\"ok\":false,\"error\":\"" + jsonEscapeString(message) +
           "\"}";
}

/** An error reply with a machine-readable code and retry contract. */
std::string
errorReplyCode(const char *code, const std::string &message,
               bool retryable, int retryAfterMs)
{
    std::ostringstream os;
    os << "{\"ok\":false,\"error\":\"" << jsonEscapeString(message)
       << "\",\"code\":\"" << code
       << "\",\"retryable\":" << (retryable ? "true" : "false");
    if (retryAfterMs > 0)
        os << ",\"retry_after_ms\":" << retryAfterMs;
    os << '}';
    return os.str();
}

bool
fieldString(const JsonValue &obj, const char *key, std::string &out)
{
    const JsonValue *v = obj.find(key);
    if (!v || v->kind != JsonValue::Kind::String)
        return false;
    out = v->text;
    return true;
}

bool
fieldU64(const JsonValue &obj, const char *key, std::uint64_t &out)
{
    const JsonValue *v = obj.find(key);
    if (!v || v->kind != JsonValue::Kind::Number)
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long n =
        std::strtoull(v->text.c_str(), &end, 10);
    if (errno == ERANGE || end != v->text.c_str() + v->text.size())
        return false;
    out = n;
    return true;
}

bool
fieldDouble(const JsonValue &obj, const char *key, double &out)
{
    const JsonValue *v = obj.find(key);
    if (!v || v->kind != JsonValue::Kind::Number)
        return false;
    errno = 0;
    char *end = nullptr;
    const double d = std::strtod(v->text.c_str(), &end);
    if (errno == ERANGE || end != v->text.c_str() + v->text.size())
        return false;
    out = d;
    return true;
}

bool
fieldBool(const JsonValue &obj, const char *key, bool &out)
{
    const JsonValue *v = obj.find(key);
    if (!v || v->kind != JsonValue::Kind::Bool)
        return false;
    out = v->boolean;
    return true;
}

int
connectUnixSocket(const std::string &path, std::string &err)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        err = "socket path too long: " + path;
        return -1;
    }
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        err = "cannot connect to '" + path + "': " +
              std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

std::int64_t
steadyNowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

// ---- frame I/O -------------------------------------------------------

bool
writeFrameTimed(int fd, const std::string &payload, int timeoutMs,
                std::string &err)
{
    if (payload.size() > kServiceMaxFrame) {
        err = "frame payload too large";
        return false;
    }
    unsigned char hdr[4];
    encodeFrameHeader(static_cast<std::uint32_t>(payload.size()), hdr);
    const Deadline dl = Deadline::in(timeoutMs);
    return writeExact(fd, hdr, sizeof(hdr), dl, err) &&
           writeExact(fd, payload.data(), payload.size(), dl, err);
}

bool
writeFrame(int fd, const std::string &payload, std::string &err)
{
    return writeFrameTimed(fd, payload, 0, err);
}

bool
readFrameTimed(int fd, std::string &out, int headerTimeoutMs,
               int bodyTimeoutMs, std::string &err)
{
    // The first byte may be a long wait (an idle peer between
    // requests); everything after it belongs to a frame the peer
    // already committed to and must arrive promptly.
    unsigned char hdr[4];
    bool eof = false;
    if (!readExact(fd, hdr, 1, Deadline::in(headerTimeoutMs), eof,
                   err))
        return false;
    const Deadline body = Deadline::in(bodyTimeoutMs);
    if (!readExact(fd, hdr + 1, sizeof(hdr) - 1, body, eof, err)) {
        if (err.empty())
            err = "connection closed mid-frame";
        return false;
    }
    const std::uint32_t len =
        (static_cast<std::uint32_t>(hdr[0]) << 24) |
        (static_cast<std::uint32_t>(hdr[1]) << 16) |
        (static_cast<std::uint32_t>(hdr[2]) << 8) |
        static_cast<std::uint32_t>(hdr[3]);
    if (len > kServiceMaxFrame) {
        err = "frame length " + std::to_string(len) +
              " exceeds the protocol maximum";
        return false;
    }
    out.resize(len);
    if (len == 0)
        return true;
    if (!readExact(fd, &out[0], len, body, eof, err)) {
        if (err.empty())
            err = "connection closed mid-frame";
        return false;
    }
    return true;
}

bool
readFrame(int fd, std::string &out, std::string &err)
{
    return readFrameTimed(fd, out, 0, 0, err);
}

// ---- handshake -------------------------------------------------------

ServiceIdentity
localServiceIdentity()
{
    ServiceIdentity id;
    id.commit = buildCommit();
    id.cacheFormat = kCacheFormatVersion;
    id.policyRevision = policySourceFingerprint();
    return id;
}

// ---- run spec --------------------------------------------------------

std::string
serviceRunSpecJson(const SimOptions &opt)
{
    std::ostringstream os;
    os << "{\"benchmark\":\"" << jsonEscapeString(opt.benchmark)
       << "\",\"scheme\":\"" << jsonEscapeString(opt.scheme)
       << "\",\"config\":" << opt.configLevel
       << ",\"warmup\":" << opt.warmupInsts
       << ",\"insts\":" << opt.runInsts
       << ",\"inv\":"
       << journalDoubleToken(opt.invalidationsPer1kCycles)
       << ",\"coherence\":" << (opt.coherence ? "true" : "false")
       << ",\"safe_loads\":" << (opt.safeLoads ? "true" : "false")
       << ",\"sq_filter\":" << (opt.sqFilter ? "true" : "false")
       << ",\"yla\":" << opt.numYlaQw
       << ",\"table\":" << opt.tableEntriesOverride
       << ",\"queue\":" << opt.queueEntries
       << ",\"stall_limit\":" << opt.stallCycleLimit << '}';
    return os.str();
}

bool
parseServiceRunSpec(const JsonValue &spec, SimOptions &out,
                    std::string &err)
{
    if (spec.kind != JsonValue::Kind::Object) {
        err = "run spec is not a JSON object";
        return false;
    }
    out = SimOptions{};
    if (!fieldString(spec, "benchmark", out.benchmark) ||
        !fieldString(spec, "scheme", out.scheme)) {
        err = "run spec needs string 'benchmark' and 'scheme' fields";
        return false;
    }
    std::uint64_t u = 0;
    if (fieldU64(spec, "config", u))
        out.configLevel = static_cast<unsigned>(u);
    if (fieldU64(spec, "warmup", u))
        out.warmupInsts = u;
    if (fieldU64(spec, "insts", u))
        out.runInsts = u;
    if (fieldU64(spec, "yla", u))
        out.numYlaQw = static_cast<unsigned>(u);
    if (fieldU64(spec, "table", u))
        out.tableEntriesOverride = static_cast<unsigned>(u);
    if (fieldU64(spec, "queue", u))
        out.queueEntries = static_cast<unsigned>(u);
    if (fieldU64(spec, "stall_limit", u))
        out.stallCycleLimit = u;
    double d = 0.0;
    if (fieldDouble(spec, "inv", d))
        out.invalidationsPer1kCycles = d;
    bool b = false;
    if (fieldBool(spec, "coherence", b))
        out.coherence = b;
    if (fieldBool(spec, "safe_loads", b))
        out.safeLoads = b;
    if (fieldBool(spec, "sq_filter", b))
        out.sqFilter = b;
    return true;
}

// ---- daemon ----------------------------------------------------------

/**
 * All mutable daemon state lives here, behind one mutex. Simulation
 * happens outside the lock; everything else (ticket dedup, campaign
 * bookkeeping, journal assembly, ticket-log appends) is cheap and
 * stays inside it.
 */
struct ServiceDaemon::Impl
{
    /** One deduplicated unit of work: every campaign that submits a
     *  run with this cache key shares this ticket. */
    struct Ticket
    {
        SimOptions opt;
        std::string key;      ///< cacheKey(opt)
        std::string spec;     ///< serviceRunSpecJson(opt)
        std::string identity; ///< journal identity (co-location key)
        int activeRefs = 0;   ///< references from live campaigns
        bool done = false;
        bool ran = false;     ///< executed (vs. skipped/cancelled)
        bool startedRun = false;
        bool finishLogged = false;
        SimResult result;
        RunOutcome outcome;
    };

    struct Campaign
    {
        std::vector<std::size_t> runTickets; ///< per submitted run
        bool cancelled = false;
        unsigned holders = 0;        ///< connections holding this id
        std::int64_t detachedAtMs = 0; ///< when holders last hit 0
    };

    /** One accepted connection: its socket, its thread, and the
     *  campaign ids it holds (touched by its thread only). */
    struct Conn
    {
        int fd = -1;
        unsigned ordinal = 0; ///< accept order (fault-site attempt)
        std::thread thread;
        std::atomic<bool> finished{false};
        std::unordered_set<std::string> held;
    };

    explicit Impl(ServiceDaemon &owner) : daemon(owner) {}

    ServiceDaemon &daemon;

    std::mutex m;
    std::condition_variable workCv; ///< workers: new ticket queued
    std::condition_variable doneCv; ///< waiters: a ticket completed

    std::vector<std::unique_ptr<Ticket>> tickets;
    std::unordered_map<std::string, std::size_t> ticketByKey;
    std::unordered_map<std::string, Campaign> campaigns;
    unsigned nextCampaignId = 1;
    std::size_t queued = 0; ///< tickets submitted, not yet claimed
    bool draining = false;  ///< stop accepted; skip queued tickets

    std::unique_ptr<RunScheduler> sched;
    std::vector<std::thread> workers;
    std::vector<std::unique_ptr<Conn>> connections;
    std::unordered_set<int> liveFds; ///< open connection sockets
    int listenFd = -1;
    unsigned acceptCounter = 0;

    TicketLog ticketLog{""};
    std::uint64_t ticketAppends = 0;

    ServiceStats stats;
    std::uint64_t beatCounter = 0;

    // ---- heartbeat (same layer the shard supervisor watches) ----

    void
    publishHeartbeatLocked(HeartbeatPhase phase)
    {
        if (daemon.options_.heartbeatPath.empty())
            return;
        HeartbeatRecord rec;
        rec.counter = ++beatCounter;
        rec.completed = stats.executed;
        rec.runsTotal = stats.unique;
        rec.pid = static_cast<int>(::getpid());
        rec.phase = phase;
        writeHeartbeat(daemon.options_.heartbeatPath, rec);
    }

    // ---- durable tickets ----

    std::vector<PendingTicket>
    unfinishedTicketsLocked() const
    {
        std::vector<PendingTicket> pending;
        for (const auto &t : tickets) {
            if (!t->finishLogged)
                pending.push_back({t->key, t->spec, t->startedRun});
        }
        return pending;
    }

    /** Count one log append and fold the log when finished history
     *  dominates live work. */
    void
    noteTicketAppendLocked()
    {
        ++ticketAppends;
        std::size_t live = 0;
        for (const auto &t : tickets) {
            if (!t->finishLogged)
                ++live;
        }
        if (ticketLog.shouldCompact(ticketAppends, live) &&
            ticketLog.compact(unfinishedTicketsLocked()))
            ticketAppends = 0;
    }

    // ---- campaign holders / orphan reaping ----

    void
    attachCampaignLocked(Conn &conn, const std::string &id)
    {
        if (!conn.held.insert(id).second)
            return;
        auto it = campaigns.find(id);
        if (it != campaigns.end())
            ++it->second.holders;
    }

    void
    detachCampaignsLocked(Conn &conn)
    {
        for (const std::string &id : conn.held) {
            auto it = campaigns.find(id);
            if (it == campaigns.end())
                continue;
            if (it->second.holders > 0 &&
                --it->second.holders == 0)
                it->second.detachedAtMs = steadyNowMs();
        }
        conn.held.clear();
    }

    /**
     * Cancel incomplete campaigns no connection has held for the
     * grace period (their tickets would otherwise occupy workers for
     * a client that is gone), and forget completed ones (their
     * results live in the cache; the id is not a durable name).
     */
    void
    reapOrphansLocked()
    {
        const int grace = daemon.options_.orphanGraceMs;
        if (grace <= 0)
            return;
        const std::int64_t now = steadyNowMs();
        bool cancelledAny = false;
        for (auto it = campaigns.begin(); it != campaigns.end();) {
            Campaign &c = it->second;
            if (c.holders > 0 || now - c.detachedAtMs < grace) {
                ++it;
                continue;
            }
            const bool complete = c.cancelled ||
                completedLocked(c) == c.runTickets.size();
            if (!complete) {
                c.cancelled = true;
                for (std::size_t idx : c.runTickets) {
                    if (tickets[idx]->activeRefs > 0)
                        --tickets[idx]->activeRefs;
                }
                ++stats.orphaned;
                cancelledAny = true;
                // Keep the cancelled record queryable for one more
                // grace period before forgetting the id.
                c.detachedAtMs = now;
                if (daemon.options_.verbose)
                    inform("serve: orphaned campaign %s cancelled",
                           it->first.c_str());
                ++it;
            } else {
                it = campaigns.erase(it);
            }
        }
        if (cancelledAny)
            doneCv.notify_all();
    }

    // ---- worker pool ----

    void
    workerLoop(unsigned w)
    {
        // Each worker owns a single-threaded CampaignRunner over the
        // shared cache directory: CacheStore instances coordinate via
        // the index lock exactly as separate processes would, and
        // cross-campaign dedup is the ticket map's job, not the
        // runner's memo cache's.
        CampaignConfig wc = daemon.options_.campaign;
        wc.jobs = 1;
        wc.scheduler = SchedulerKind::StaticLpt;
        wc.shard = ShardSpec{};
        wc.statePath.clear();
        wc.resume = false;
        wc.heartbeatPath.clear();
        wc.failFast = false;
        CampaignRunner runner(wc);
        traceSetThreadName("serve-worker-" + std::to_string(w));

        for (;;) {
            ScheduledRun item;
            {
                std::unique_lock<std::mutex> lock(m);
                workCv.wait(lock, [&] {
                    return queued > 0 || daemon.stopRequested_.load();
                });
                if (queued == 0)
                    return; // stopping and drained
                --queued;
            }
            if (!sched->next(w, item)) {
                // A stale size hint made the claim miss; put it back
                // and retry (the mutex round-trip resynchronizes).
                std::lock_guard<std::mutex> lock(m);
                ++queued;
                continue;
            }
            executeTicket(runner, item.index);
        }
    }

    void
    executeTicket(CampaignRunner &runner, std::size_t idx)
    {
        Ticket *t = nullptr;
        bool skip = false;
        bool cancelled = false;
        {
            std::lock_guard<std::mutex> lock(m);
            t = tickets[idx].get();
            cancelled = (t->activeRefs == 0);
            skip = cancelled || draining;
            if (!skip && !t->startedRun) {
                t->startedRun = true;
                ticketLog.appendStart(t->key);
                noteTicketAppendLocked();
                traceInstantArg(serviceTrace().cat,
                                serviceTrace().start, idx);
            }
        }
        SimResult result;
        RunOutcome outcome;
        if (skip) {
            outcome.status = RunStatus::Skipped;
            outcome.category = RunErrorCategory::SimInvariant;
            outcome.error = cancelled ? "campaign cancelled"
                                      : "daemon shutting down";
        } else {
            const CampaignResult cr = runner.runChecked({t->opt});
            result = cr.results.front();
            outcome = cr.outcomes.front();
        }
        bool crashAfter = false;
        {
            std::lock_guard<std::mutex> lock(m);
            if (skip && cancelled && !draining && t->activeRefs > 0) {
                // The cancelled claim raced a fresh submit that wants
                // this ticket after all: requeue it rather than
                // publishing a skip nobody asked for.
                ScheduledRun item;
                item.index = idx;
                item.identity = t->identity;
                item.cost = static_cast<double>(
                    t->opt.warmupInsts + t->opt.runInsts);
                sched->submit(std::move(item));
                ++queued;
                workCv.notify_one();
                return;
            }
            t->result = std::move(result);
            t->outcome = std::move(outcome);
            t->ran = !skip;
            t->done = true;
            if (!skip) {
                ++stats.executed;
                if (!t->outcome.cached)
                    ++stats.simulated;
                // The finish record lands *after* the cache entry
                // (runChecked already returned): a crash between the
                // two replays the run, which the cache absorbs.
                t->finishLogged = true;
                ticketLog.appendFinish(t->key,
                                       runStatusName(t->outcome.status));
                noteTicketAppendLocked();
                traceInstantArg(serviceTrace().cat,
                                serviceTrace().finish, idx);
                // The serve-crash chaos site follows the worker-*
                // progress rule: only after a freshly simulated run
                // is durably cached and its finish logged, so a
                // restart loop converges.
                if (!t->outcome.cached && t->outcome.ok() &&
                    FaultInjector::global().injectServeCrash(t->key))
                    crashAfter = true;
            } else if (cancelled) {
                // A cancelled ticket is terminal: log it so a restart
                // does not resurrect work nobody wants.
                t->finishLogged = true;
                ticketLog.appendFinish(t->key, "cancelled");
                noteTicketAppendLocked();
                traceInstantArg(serviceTrace().cat,
                                serviceTrace().finish, idx);
            }
            // Drain-skip: no finish record. The ticket stays pending
            // in the log and the next daemon completes it.
            publishHeartbeatLocked(draining ? HeartbeatPhase::Draining
                                            : HeartbeatPhase::Running);
            if (daemon.options_.verbose) {
                inform("serve: %s -> %s%s", t->identity.c_str(),
                       runStatusName(t->outcome.status),
                       t->outcome.cached ? " (cached)" : "");
            }
        }
        doneCv.notify_all();
        if (crashAfter) {
            warn("serve: injected serve-crash after %s",
                 t->identity.c_str());
            std::raise(SIGKILL);
        }
    }

    /** Create (or dedup onto) the ticket for @p opt. Caller holds m
     *  and has validated the spec. */
    std::size_t
    internTicketLocked(SimOptions &&opt, bool &fresh)
    {
        const std::string key = cacheKey(opt);
        auto it = ticketByKey.find(key);
        if (it != ticketByKey.end()) {
            fresh = false;
            Ticket &t = *tickets[it->second];
            if (t.done && !t.ran) {
                // The ticket terminated as cancelled/skipped without
                // ever running. A new campaign wants it for real:
                // revive and requeue instead of serving the stale
                // skip.
                t.done = false;
                t.startedRun = false;
                t.finishLogged = false;
                t.outcome = RunOutcome{};
                ticketLog.appendSubmit(t.key, t.spec);
                noteTicketAppendLocked();
                traceInstantArg(serviceTrace().cat,
                                serviceTrace().revive, it->second);
                ScheduledRun item;
                item.index = it->second;
                item.identity = t.identity;
                item.cost = static_cast<double>(
                    t.opt.warmupInsts + t.opt.runInsts);
                sched->submit(std::move(item));
                ++queued;
                workCv.notify_one();
            }
            return it->second;
        }
        fresh = true;
        const std::size_t idx = tickets.size();
        auto t = std::make_unique<Ticket>();
        t->identity = journalIdentity(opt.benchmark, opt.scheme,
                                      opt.configLevel);
        t->key = key;
        t->spec = serviceRunSpecJson(opt);
        t->opt = std::move(opt);
        tickets.push_back(std::move(t));
        ticketByKey.emplace(key, idx);
        ++stats.unique;
        ticketLog.appendSubmit(key, tickets[idx]->spec);
        noteTicketAppendLocked();
        traceInstantArg(serviceTrace().cat, serviceTrace().submit, idx);
        ScheduledRun item;
        item.index = idx;
        item.identity = tickets[idx]->identity;
        item.cost = static_cast<double>(
            tickets[idx]->opt.warmupInsts + tickets[idx]->opt.runInsts);
        sched->submit(std::move(item));
        ++queued;
        workCv.notify_one();
        return idx;
    }

    // ---- op handlers (all return a serialized reply) ----

    std::string
    helloReply() const
    {
        const ServiceIdentity id = localServiceIdentity();
        std::ostringstream os;
        os << "{\"ok\":true,\"server\":\"dmdc_serve\",\"protocol\":"
           << kServiceProtocolVersion
           << ",\"commit\":\"" << jsonEscapeString(id.commit)
           << "\",\"cache_format\":" << id.cacheFormat
           << ",\"policy_revision\":\""
           << jsonEscapeString(id.policyRevision)
           << "\",\"pid\":" << static_cast<int>(::getpid()) << '}';
        return os.str();
    }

    std::string
    handleSubmit(const JsonValue &req, Conn &conn)
    {
        const JsonValue *runs = req.find("runs");
        if (!runs || runs->kind != JsonValue::Kind::Array ||
            runs->items.empty())
            return errorReply("submit needs a non-empty 'runs' array");

        // Validate every spec before touching shared state, so a bad
        // campaign is rejected whole.
        std::vector<SimOptions> opts;
        opts.reserve(runs->items.size());
        for (const JsonValue &item : runs->items) {
            SimOptions opt;
            std::string err;
            if (!parseServiceRunSpec(item, opt, err))
                return errorReply(err);
            try {
                validateSimOptions(opt);
            } catch (const RunError &e) {
                return errorReply(std::string("invalid run: ") +
                                  e.what());
            }
            opts.push_back(std::move(opt));
        }

        std::string id;
        {
            std::lock_guard<std::mutex> lock(m);
            if (draining)
                return errorReplyCode("draining",
                                      "daemon is shutting down",
                                      /*retryable=*/true, 1000);
            const std::size_t cap = daemon.options_.maxQueuedTickets;
            if (cap != 0 && queued + opts.size() > cap) {
                ++stats.overloaded;
                return errorReplyCode(
                    "overloaded",
                    "submit queue is full (" +
                        std::to_string(queued) + " queued, cap " +
                        std::to_string(cap) + ")",
                    /*retryable=*/true, 1000);
            }
            id = "c" + std::to_string(nextCampaignId++);
            Campaign &c = campaigns[id];
            for (SimOptions &opt : opts) {
                ++stats.submitted;
                bool fresh = false;
                const std::size_t idx =
                    internTicketLocked(std::move(opt), fresh);
                if (!fresh)
                    ++stats.dedupHits;
                ++tickets[idx]->activeRefs;
                c.runTickets.push_back(idx);
            }
            ++stats.campaigns;
            c.holders = 1;
            conn.held.insert(id);
        }
        return "{\"ok\":true,\"campaign\":\"" + id + "\",\"runs\":" +
               std::to_string(opts.size()) + "}";
    }

    /** Campaign lookup; fills an error @p reply when unknown. The
     *  looked-up campaign is attached to @p conn: as long as the
     *  connection lives, the orphan reaper keeps its hands off. */
    Campaign *
    findCampaignLocked(const JsonValue &req, Conn &conn,
                       std::string &reply)
    {
        std::string id;
        if (!fieldString(req, "campaign", id)) {
            reply = errorReply("missing 'campaign' field");
            return nullptr;
        }
        auto it = campaigns.find(id);
        if (it == campaigns.end()) {
            reply = errorReply("unknown campaign '" + id + "'");
            return nullptr;
        }
        if (conn.held.insert(id).second)
            ++it->second.holders;
        return &it->second;
    }

    std::size_t
    completedLocked(const Campaign &c) const
    {
        std::size_t n = 0;
        for (std::size_t idx : c.runTickets) {
            if (tickets[idx]->done)
                ++n;
        }
        return n;
    }

    std::string
    handleStatus(const JsonValue &req, Conn &conn)
    {
        std::lock_guard<std::mutex> lock(m);
        std::string reply;
        const Campaign *c = findCampaignLocked(req, conn, reply);
        if (!c)
            return reply;
        const std::size_t done = completedLocked(*c);
        const char *state = c->cancelled ? "cancelled"
            : done == c->runTickets.size() ? "done" : "running";
        return std::string("{\"ok\":true,\"state\":\"") + state +
               "\",\"completed\":" + std::to_string(done) +
               ",\"total\":" + std::to_string(c->runTickets.size()) +
               "}";
    }

    std::string
    buildJournalLocked(const Campaign &c) const
    {
        // One entry per *submitted* run: a campaign that lists the
        // same triple twice journals it twice (sharing one ticket's
        // result), exactly as a serial campaign's memo cache would.
        ShardJournal j;
        j.version = kJournalFormatVersion;
        j.commit = buildCommit();
        j.entries.reserve(c.runTickets.size());
        for (std::size_t idx : c.runTickets) {
            const Ticket &t = *tickets[idx];
            JournalEntry e;
            e.benchmark = t.opt.benchmark;
            e.scheme = t.opt.scheme;
            e.config = t.opt.configLevel;
            e.status = t.outcome.status;
            if (t.outcome.ok()) {
                e.ipcToken = journalDoubleToken(t.result.ipc);
                e.cyclesToken = std::to_string(t.result.cycles);
            } else {
                e.category = runErrorCategoryName(t.outcome.category);
                e.error = t.outcome.error;
            }
            j.entries.push_back(std::move(e));
        }
        std::ostringstream os;
        writeMergedJournal(os, j);
        return os.str();
    }

    std::string
    handleResults(const JsonValue &req, Conn &conn)
    {
        bool wait = false;
        fieldBool(req, "wait", wait);
        std::unique_lock<std::mutex> lock(m);
        std::string reply;
        Campaign *c = findCampaignLocked(req, conn, reply);
        if (!c)
            return reply;
        if (wait) {
            doneCv.wait(lock, [&] {
                return c->cancelled || draining ||
                       completedLocked(*c) == c->runTickets.size();
            });
        }
        if (c->cancelled)
            return errorReply("campaign was cancelled");
        const std::size_t done = completedLocked(*c);
        if (done != c->runTickets.size()) {
            if (draining)
                return errorReplyCode("draining",
                                      "daemon is shutting down",
                                      /*retryable=*/true, 1000);
            return "{\"ok\":true,\"state\":\"running\","
                   "\"completed\":" + std::to_string(done) +
                   ",\"total\":" +
                   std::to_string(c->runTickets.size()) + "}";
        }
        return "{\"ok\":true,\"state\":\"done\",\"journal\":\"" +
               jsonEscapeString(buildJournalLocked(*c)) + "\"}";
    }

    std::string
    handleCancel(const JsonValue &req, Conn &conn)
    {
        std::lock_guard<std::mutex> lock(m);
        std::string reply;
        Campaign *c = findCampaignLocked(req, conn, reply);
        if (!c)
            return reply;
        if (!c->cancelled) {
            c->cancelled = true;
            for (std::size_t idx : c->runTickets) {
                if (tickets[idx]->activeRefs > 0)
                    --tickets[idx]->activeRefs;
            }
        }
        doneCv.notify_all();
        return "{\"ok\":true,\"cancelled\":true}";
    }

    std::string
    handleStats()
    {
        std::lock_guard<std::mutex> lock(m);
        std::ostringstream os;
        os << "{\"ok\":true,\"campaigns\":" << stats.campaigns
           << ",\"submitted\":" << stats.submitted
           << ",\"unique\":" << stats.unique
           << ",\"dedup_hits\":" << stats.dedupHits
           << ",\"executed\":" << stats.executed
           << ",\"simulated\":" << stats.simulated
           << ",\"recovered\":" << stats.recovered
           << ",\"overloaded\":" << stats.overloaded
           << ",\"orphaned\":" << stats.orphaned
           << ",\"io_timeouts\":" << stats.ioTimeouts
           << ",\"protocol_errors\":" << stats.protocolErrors << '}';
        return os.str();
    }

    void
    bumpStatLocked(std::uint64_t ServiceStats::*field)
    {
        std::lock_guard<std::mutex> lock(m);
        ++(stats.*field);
    }

    std::string
    dispatch(const std::string &text, Conn &conn)
    {
        JsonValue req;
        std::string err;
        if (!parseJson(text, req, err)) {
            bumpStatLocked(&ServiceStats::protocolErrors);
            return errorReplyCode("protocol",
                                  "malformed request: " + err,
                                  /*retryable=*/false, 0);
        }
        std::string op;
        if (!fieldString(req, "op", op)) {
            bumpStatLocked(&ServiceStats::protocolErrors);
            return errorReplyCode("protocol",
                                  "request has no 'op' field",
                                  /*retryable=*/false, 0);
        }
        if (op == "hello")
            return helloReply();
        if (op == "submit")
            return handleSubmit(req, conn);
        if (op == "status")
            return handleStatus(req, conn);
        if (op == "results")
            return handleResults(req, conn);
        if (op == "cancel")
            return handleCancel(req, conn);
        if (op == "stats")
            return handleStats();
        if (op == "shutdown") {
            daemon.requestStop();
            {
                std::lock_guard<std::mutex> lock(m);
                draining = true;
            }
            traceInstant(serviceTrace().cat, serviceTrace().drain);
            workCv.notify_all();
            doneCv.notify_all();
            return "{\"ok\":true,\"stopping\":true}";
        }
        bumpStatLocked(&ServiceStats::protocolErrors);
        return errorReplyCode("protocol", "unknown op '" + op + "'",
                              /*retryable=*/false, 0);
    }

    void
    connectionLoop(Conn &conn)
    {
        const int fd = conn.fd;
        const int ioMs = daemon.options_.ioTimeoutMs;
        for (;;) {
            std::string text;
            std::string err;
            // The header wait is unbounded — an idle client between
            // requests is healthy and drain's shutdown(fd) wakes the
            // read — but a started frame must finish within the I/O
            // deadline.
            if (!readFrameTimed(fd, text, /*headerTimeoutMs=*/0, ioMs,
                                err)) {
                if (err.empty())
                    break; // clean disconnect
                const bool timedOut =
                    err.find("timed out") != std::string::npos;
                const bool framing =
                    err.find("protocol maximum") != std::string::npos ||
                    err.find("mid-frame") != std::string::npos;
                if (timedOut)
                    bumpStatLocked(&ServiceStats::ioTimeouts);
                else if (framing)
                    bumpStatLocked(&ServiceStats::protocolErrors);
                if (daemon.options_.verbose)
                    warn("serve: %s", err.c_str());
                // An oversize length prefix is diagnosable: tell the
                // peer before hanging up (the stream cannot be
                // resynchronized, so the connection must die).
                if (err.find("protocol maximum") != std::string::npos) {
                    std::string werr;
                    writeFrameTimed(
                        fd,
                        errorReplyCode("protocol", err,
                                       /*retryable=*/false, 0),
                        2000, werr);
                }
                break;
            }
            const std::string reply = dispatch(text, conn);
            if (FaultInjector::global().injectFrameTruncate(
                    text, conn.ordinal)) {
                // Chaos: emit a torn reply — full header, half the
                // payload — then sever, exercising the client's
                // mid-frame EOF path.
                warn("serve: injected frame-truncate on connection %u",
                     conn.ordinal);
                unsigned char hdr[4];
                encodeFrameHeader(
                    static_cast<std::uint32_t>(reply.size()), hdr);
                const Deadline dl = Deadline::in(ioMs);
                std::string werr;
                if (writeExact(fd, hdr, sizeof(hdr), dl, werr))
                    writeExact(fd, reply.data(), reply.size() / 2, dl,
                               werr);
                break;
            }
            if (!writeFrameTimed(fd, reply, ioMs, err)) {
                if (err.find("timed out") != std::string::npos)
                    bumpStatLocked(&ServiceStats::ioTimeouts);
                if (daemon.options_.verbose)
                    warn("serve: %s", err.c_str());
                break;
            }
        }
        {
            std::lock_guard<std::mutex> lock(m);
            detachCampaignsLocked(conn);
            liveFds.erase(fd);
        }
        ::close(fd);
        conn.finished.store(true);
    }
};

ServiceDaemon::ServiceDaemon(ServiceOptions options)
    : options_(std::move(options)), impl_(new Impl(*this))
{
}

ServiceDaemon::~ServiceDaemon()
{
    delete impl_;
}

ServiceStats
ServiceDaemon::statsSnapshot() const
{
    std::lock_guard<std::mutex> lock(impl_->m);
    return impl_->stats;
}

bool
ServiceDaemon::start(std::string &err)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socketPath.size() >= sizeof(addr.sun_path)) {
        err = "socket path too long: " + options_.socketPath;
        return false;
    }
    std::strncpy(addr.sun_path, options_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    // Probe an existing socket file before reclaiming it: a crashed
    // daemon leaves a dead socket (connect fails) that is safe to
    // unlink, but blindly unlinking would silently hijack a *live*
    // daemon's path and split clients across two daemons.
    struct stat st{};
    if (::lstat(options_.socketPath.c_str(), &st) == 0) {
        if (!S_ISSOCK(st.st_mode)) {
            err = "'" + options_.socketPath +
                  "' exists and is not a socket; refusing to replace "
                  "it";
            return false;
        }
        std::string probeErr;
        const int probe =
            connectUnixSocket(options_.socketPath, probeErr);
        if (probe >= 0) {
            ::close(probe);
            err = "socket '" + options_.socketPath +
                  "' is already served by a live daemon";
            return false;
        }
        if (options_.verbose)
            inform("serve: reclaiming stale socket %s",
                   options_.socketPath.c_str());
        ::unlink(options_.socketPath.c_str());
    }

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 16) != 0) {
        err = "cannot listen on '" + options_.socketPath + "': " +
              std::strerror(errno);
        ::close(fd);
        return false;
    }
    impl_->listenFd = fd;

    unsigned n = options_.workers
        ? options_.workers : std::thread::hardware_concurrency();
    if (n == 0)
        n = 2;
    impl_->sched = makeRunScheduler(SchedulerKind::WorkStealing);
    impl_->sched->seed({}, n);

    // Replay the durable ticket log before the workers spawn: every
    // submit without a finish is work a previous daemon accepted but
    // never completed, and a client may reconnect expecting it.
    if (options_.durableTickets && options_.campaign.useCache &&
        !options_.campaign.cacheDir.empty()) {
        impl_->ticketLog = TicketLog(options_.campaign.cacheDir);
        const TicketLogReplay rep = impl_->ticketLog.replay();
        if (rep.corrupt > 0)
            warn("serve: ticket log: skipped %zu damaged record(s)",
                 rep.corrupt);
        for (const PendingTicket &p : rep.pending) {
            JsonValue spec;
            SimOptions opt;
            std::string perr;
            if (!parseJson(p.spec, spec, perr) ||
                !parseServiceRunSpec(spec, opt, perr)) {
                warn("serve: ticket log: unreadable spec for %s: %s",
                     p.key.c_str(), perr.c_str());
                continue;
            }
            try {
                validateSimOptions(opt);
            } catch (const RunError &e) {
                warn("serve: ticket log: invalid spec for %s: %s",
                     p.key.c_str(), e.what());
                continue;
            }
            std::lock_guard<std::mutex> lock(impl_->m);
            bool fresh = false;
            const std::size_t idx =
                impl_->internTicketLocked(std::move(opt), fresh);
            if (!fresh)
                continue; // duplicate log records
            // One daemon-owned reference: the recovered ticket is not
            // part of any live campaign, but it must execute rather
            // than be skipped as cancelled.
            ++impl_->tickets[idx]->activeRefs;
            impl_->tickets[idx]->startedRun = p.started;
            ++impl_->stats.recovered;
        }
        // Fold the replayed history down to just the pending records.
        {
            std::lock_guard<std::mutex> lock(impl_->m);
            if (impl_->ticketLog.compact(
                    impl_->unfinishedTicketsLocked()))
                impl_->ticketAppends = 0;
        }
        if (options_.verbose && impl_->stats.recovered > 0)
            inform("serve: recovered %llu unfinished ticket(s) from "
                   "the ticket log",
                   static_cast<unsigned long long>(
                       impl_->stats.recovered));
    }

    impl_->workers.reserve(n);
    for (unsigned w = 0; w < n; ++w)
        impl_->workers.emplace_back([this, w] {
            impl_->workerLoop(w);
        });
    {
        std::lock_guard<std::mutex> lock(impl_->m);
        impl_->publishHeartbeatLocked(HeartbeatPhase::Starting);
    }
    if (options_.verbose) {
        inform("serve: listening on %s with %u workers",
               options_.socketPath.c_str(), n);
    }
    return true;
}

int
ServiceDaemon::serve()
{
    // Poll-with-timeout accept loop so requestStop() (signal handler
    // or a client's shutdown op) is noticed promptly. Each tick also
    // reaps finished connection threads and orphaned campaigns.
    while (!stopRequested_.load()) {
        {
            std::lock_guard<std::mutex> lock(impl_->m);
            impl_->reapOrphansLocked();
        }
        for (auto it = impl_->connections.begin();
             it != impl_->connections.end();) {
            if ((*it)->finished.load()) {
                (*it)->thread.join();
                it = impl_->connections.erase(it);
            } else {
                ++it;
            }
        }

        pollfd pfd{impl_->listenFd, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, 200);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            warn("serve: poll: %s", std::strerror(errno));
            break;
        }
        if (rc == 0 || !(pfd.revents & POLLIN))
            continue;
        const int fd = ::accept(impl_->listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            warn("serve: accept: %s", std::strerror(errno));
            continue;
        }
        if (options_.sendBufBytes > 0) {
            // Test hook: a small send buffer makes reply backpressure
            // (and the write deadline behind it) reachable without
            // multi-megabyte journals.
            const int v = options_.sendBufBytes;
            ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &v, sizeof(v));
        }

        bool refuse = false;
        {
            std::lock_guard<std::mutex> lock(impl_->m);
            refuse = options_.maxConnections != 0 &&
                impl_->liveFds.size() >= options_.maxConnections;
            if (refuse)
                ++impl_->stats.overloaded;
            else
                impl_->liveFds.insert(fd);
        }
        if (refuse) {
            // One structured refusal, then hang up: the client backs
            // off and retries instead of queueing behind a full house.
            std::string werr;
            writeFrameTimed(
                fd,
                errorReplyCode("overloaded",
                               "connection limit reached",
                               /*retryable=*/true, 500),
                2000, werr);
            ::close(fd);
            continue;
        }

        auto conn = std::make_unique<Impl::Conn>();
        conn->fd = fd;
        conn->ordinal = impl_->acceptCounter++;
        Impl::Conn *raw = conn.get();
        conn->thread = std::thread([this, raw] {
            impl_->connectionLoop(*raw);
        });
        impl_->connections.push_back(std::move(conn));
    }

    // Drain: no new work is accepted, queued tickets resolve as
    // Skipped (their ticket-log records stay pending so a future
    // daemon finishes them), workers finish their in-flight run and
    // exit.
    {
        std::lock_guard<std::mutex> lock(impl_->m);
        impl_->draining = true;
        impl_->publishHeartbeatLocked(HeartbeatPhase::Draining);
        traceInstant(serviceTrace().cat, serviceTrace().drain);
        // Unblock connection threads parked in readFrame().
        for (int fd : impl_->liveFds)
            ::shutdown(fd, SHUT_RDWR);
    }
    impl_->workCv.notify_all();
    impl_->doneCv.notify_all();
    for (std::thread &t : impl_->workers)
        t.join();
    impl_->doneCv.notify_all();
    for (auto &conn : impl_->connections)
        conn->thread.join();
    impl_->connections.clear();
    ::close(impl_->listenFd);
    ::unlink(options_.socketPath.c_str());
    {
        std::lock_guard<std::mutex> lock(impl_->m);
        impl_->publishHeartbeatLocked(HeartbeatPhase::Done);
    }
    if (options_.verbose) {
        const ServiceStats s = statsSnapshot();
        inform("serve: done: %llu campaigns, %llu runs (%llu unique, "
               "%llu dedup hits), %llu executed, %llu simulated, "
               "%llu recovered",
               static_cast<unsigned long long>(s.campaigns),
               static_cast<unsigned long long>(s.submitted),
               static_cast<unsigned long long>(s.unique),
               static_cast<unsigned long long>(s.dedupHits),
               static_cast<unsigned long long>(s.executed),
               static_cast<unsigned long long>(s.simulated),
               static_cast<unsigned long long>(s.recovered));
    }
    return 0;
}

// ---- client ----------------------------------------------------------

ServiceClient::~ServiceClient()
{
    close();
}

void
ServiceClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
ServiceClient::connectRaw(const std::string &socketPath,
                          std::string &err)
{
    close();
    lastCode_.clear();
    retryAfterMs_ = 0;
    fd_ = connectUnixSocket(socketPath, err);
    if (fd_ < 0) {
        lastCode_ = "io";
        return false;
    }
    return true;
}

bool
ServiceClient::connect(const std::string &socketPath, std::string &err)
{
    if (!connectRaw(socketPath, err))
        return false;
    JsonValue reply;
    if (!request("{\"op\":\"hello\"}", reply, err)) {
        close();
        return false;
    }
    std::uint64_t protocol = 0, cacheFormat = 0;
    if (!fieldU64(reply, "protocol", protocol) ||
        !fieldU64(reply, "cache_format", cacheFormat) ||
        !fieldString(reply, "commit", daemon_.commit) ||
        !fieldString(reply, "policy_revision",
                     daemon_.policyRevision)) {
        err = "daemon hello is missing handshake fields";
        lastCode_ = "protocol";
        close();
        return false;
    }
    daemon_.cacheFormat = static_cast<unsigned>(cacheFormat);

    // Refuse a daemon whose results would not be comparable to this
    // binary's (same rule the shard journal merger enforces).
    const ServiceIdentity mine = localServiceIdentity();
    if (protocol != kServiceProtocolVersion) {
        err = "daemon speaks protocol " + std::to_string(protocol) +
              ", this client expects " +
              std::to_string(kServiceProtocolVersion);
    } else if (daemon_.commit != mine.commit) {
        err = "daemon runs commit " + daemon_.commit +
              ", this client is " + mine.commit;
    } else if (daemon_.cacheFormat != mine.cacheFormat) {
        err = "daemon cache format " +
              std::to_string(daemon_.cacheFormat) + " != client " +
              std::to_string(mine.cacheFormat);
    } else if (daemon_.policyRevision != mine.policyRevision) {
        err = "daemon policy registry revision differs (" +
              daemon_.policyRevision + " vs " + mine.policyRevision +
              ")";
    } else {
        return true;
    }
    lastCode_ = "mismatch";
    close();
    return false;
}

bool
ServiceClient::connectWithRetry(const std::string &socketPath,
                                unsigned attempts, int baseDelayMs,
                                std::string &err)
{
    if (attempts == 0)
        attempts = 1;
    int delay = baseDelayMs > 0 ? baseDelayMs : 100;
    for (unsigned tried = 1; ; ++tried) {
        if (connect(socketPath, err))
            return true;
        // An identity mismatch is permanent: the daemon at this path
        // will never become this binary. Everything else (refused
        // connection while a daemon restarts, a daemon still binding,
        // an overloaded/draining refusal) deserves the backoff.
        if (lastCode_ == "mismatch" || tried >= attempts)
            return false;
        int sleepMs = delay;
        if (retryAfterMs_ > sleepMs)
            sleepMs = retryAfterMs_;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(sleepMs));
        delay = delay >= 5000 ? 5000 : delay * 2;
    }
}

bool
ServiceClient::request(const std::string &request, JsonValue &reply,
                       std::string &err)
{
    lastCode_.clear();
    retryAfterMs_ = 0;
    if (fd_ < 0) {
        err = "not connected";
        lastCode_ = "io";
        return false;
    }
    if (!writeFrame(fd_, request, err)) {
        lastCode_ = "io";
        close();
        return false;
    }
    if (FaultInjector::global().injectClientStall(request)) {
        // Chaos: model a consumer that goes quiet after asking — the
        // daemon's reply write must tolerate (or deadline out of) it.
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }
    std::string text;
    if (!readFrame(fd_, text, err)) {
        if (err.empty())
            err = "daemon closed the connection";
        lastCode_ = "io";
        close();
        return false;
    }
    if (!parseJson(text, reply, err)) {
        err = "malformed daemon reply: " + err;
        lastCode_ = "protocol";
        close();
        return false;
    }
    bool ok = false;
    if (!fieldBool(reply, "ok", ok)) {
        err = "daemon reply has no 'ok' field";
        lastCode_ = "protocol";
        close();
        return false;
    }
    if (!ok) {
        // A protocol-level refusal; the connection stays usable.
        if (!fieldString(reply, "error", err))
            err = "daemon refused the request";
        fieldString(reply, "code", lastCode_);
        std::uint64_t after = 0;
        if (fieldU64(reply, "retry_after_ms", after))
            retryAfterMs_ = static_cast<int>(after);
        return false;
    }
    return true;
}

} // namespace dmdc
