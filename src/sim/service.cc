#include "sim/service.hh"

#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/build_info.hh"
#include "common/logging.hh"
#include "sim/heartbeat.hh"
#include "sim/run_error.hh"

namespace dmdc
{

namespace
{

/** Same "%.17g" token the journal writer uses (campaign_runner.cc):
 *  the daemon re-derives journal bytes, so the spelling must match. */
std::string
journalDoubleToken(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

bool
readExact(int fd, void *buf, std::size_t len, bool &eofAtStart,
          std::string &err)
{
    auto *p = static_cast<unsigned char *>(buf);
    std::size_t got = 0;
    eofAtStart = false;
    while (got < len) {
        const ssize_t n = ::read(fd, p + got, len - got);
        if (n > 0) {
            got += static_cast<std::size_t>(n);
            continue;
        }
        if (n == 0) {
            eofAtStart = (got == 0);
            err = eofAtStart ? "" : "connection closed mid-frame";
            return false;
        }
        if (errno == EINTR)
            continue;
        err = std::string("read failed: ") + std::strerror(errno);
        return false;
    }
    return true;
}

bool
writeExact(int fd, const void *buf, std::size_t len, std::string &err)
{
    const auto *p = static_cast<const unsigned char *>(buf);
    std::size_t put = 0;
    while (put < len) {
        const ssize_t n = ::write(fd, p + put, len - put);
        if (n > 0) {
            put += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        err = std::string("write failed: ") + std::strerror(errno);
        return false;
    }
    return true;
}

// ---- reply/JSON helpers ----------------------------------------------

std::string
errorReply(const std::string &message)
{
    return "{\"ok\":false,\"error\":\"" + jsonEscapeString(message) +
           "\"}";
}

bool
fieldString(const JsonValue &obj, const char *key, std::string &out)
{
    const JsonValue *v = obj.find(key);
    if (!v || v->kind != JsonValue::Kind::String)
        return false;
    out = v->text;
    return true;
}

bool
fieldU64(const JsonValue &obj, const char *key, std::uint64_t &out)
{
    const JsonValue *v = obj.find(key);
    if (!v || v->kind != JsonValue::Kind::Number)
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long n =
        std::strtoull(v->text.c_str(), &end, 10);
    if (errno == ERANGE || end != v->text.c_str() + v->text.size())
        return false;
    out = n;
    return true;
}

bool
fieldDouble(const JsonValue &obj, const char *key, double &out)
{
    const JsonValue *v = obj.find(key);
    if (!v || v->kind != JsonValue::Kind::Number)
        return false;
    errno = 0;
    char *end = nullptr;
    const double d = std::strtod(v->text.c_str(), &end);
    if (errno == ERANGE || end != v->text.c_str() + v->text.size())
        return false;
    out = d;
    return true;
}

bool
fieldBool(const JsonValue &obj, const char *key, bool &out)
{
    const JsonValue *v = obj.find(key);
    if (!v || v->kind != JsonValue::Kind::Bool)
        return false;
    out = v->boolean;
    return true;
}

int
connectUnixSocket(const std::string &path, std::string &err)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        err = "socket path too long: " + path;
        return -1;
    }
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        err = "cannot connect to '" + path + "': " +
              std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

} // namespace

// ---- frame I/O -------------------------------------------------------

bool
writeFrame(int fd, const std::string &payload, std::string &err)
{
    if (payload.size() > kServiceMaxFrame) {
        err = "frame payload too large";
        return false;
    }
    const std::uint32_t len =
        static_cast<std::uint32_t>(payload.size());
    unsigned char hdr[4] = {
        static_cast<unsigned char>(len >> 24),
        static_cast<unsigned char>(len >> 16),
        static_cast<unsigned char>(len >> 8),
        static_cast<unsigned char>(len),
    };
    return writeExact(fd, hdr, sizeof(hdr), err) &&
           writeExact(fd, payload.data(), payload.size(), err);
}

bool
readFrame(int fd, std::string &out, std::string &err)
{
    unsigned char hdr[4];
    bool eof = false;
    if (!readExact(fd, hdr, sizeof(hdr), eof, err))
        return false;
    const std::uint32_t len =
        (static_cast<std::uint32_t>(hdr[0]) << 24) |
        (static_cast<std::uint32_t>(hdr[1]) << 16) |
        (static_cast<std::uint32_t>(hdr[2]) << 8) |
        static_cast<std::uint32_t>(hdr[3]);
    if (len > kServiceMaxFrame) {
        err = "frame length " + std::to_string(len) +
              " exceeds the protocol maximum";
        return false;
    }
    out.resize(len);
    if (len == 0)
        return true;
    return readExact(fd, &out[0], len, eof, err);
}

// ---- handshake -------------------------------------------------------

ServiceIdentity
localServiceIdentity()
{
    ServiceIdentity id;
    id.commit = buildCommit();
    id.cacheFormat = kCacheFormatVersion;
    id.policyRevision = policySourceFingerprint();
    return id;
}

// ---- run spec --------------------------------------------------------

std::string
serviceRunSpecJson(const SimOptions &opt)
{
    std::ostringstream os;
    os << "{\"benchmark\":\"" << jsonEscapeString(opt.benchmark)
       << "\",\"scheme\":\"" << jsonEscapeString(opt.scheme)
       << "\",\"config\":" << opt.configLevel
       << ",\"warmup\":" << opt.warmupInsts
       << ",\"insts\":" << opt.runInsts
       << ",\"inv\":"
       << journalDoubleToken(opt.invalidationsPer1kCycles)
       << ",\"coherence\":" << (opt.coherence ? "true" : "false")
       << ",\"safe_loads\":" << (opt.safeLoads ? "true" : "false")
       << ",\"sq_filter\":" << (opt.sqFilter ? "true" : "false")
       << ",\"yla\":" << opt.numYlaQw
       << ",\"table\":" << opt.tableEntriesOverride
       << ",\"queue\":" << opt.queueEntries
       << ",\"stall_limit\":" << opt.stallCycleLimit << '}';
    return os.str();
}

bool
parseServiceRunSpec(const JsonValue &spec, SimOptions &out,
                    std::string &err)
{
    if (spec.kind != JsonValue::Kind::Object) {
        err = "run spec is not a JSON object";
        return false;
    }
    out = SimOptions{};
    if (!fieldString(spec, "benchmark", out.benchmark) ||
        !fieldString(spec, "scheme", out.scheme)) {
        err = "run spec needs string 'benchmark' and 'scheme' fields";
        return false;
    }
    std::uint64_t u = 0;
    if (fieldU64(spec, "config", u))
        out.configLevel = static_cast<unsigned>(u);
    if (fieldU64(spec, "warmup", u))
        out.warmupInsts = u;
    if (fieldU64(spec, "insts", u))
        out.runInsts = u;
    if (fieldU64(spec, "yla", u))
        out.numYlaQw = static_cast<unsigned>(u);
    if (fieldU64(spec, "table", u))
        out.tableEntriesOverride = static_cast<unsigned>(u);
    if (fieldU64(spec, "queue", u))
        out.queueEntries = static_cast<unsigned>(u);
    if (fieldU64(spec, "stall_limit", u))
        out.stallCycleLimit = u;
    double d = 0.0;
    if (fieldDouble(spec, "inv", d))
        out.invalidationsPer1kCycles = d;
    bool b = false;
    if (fieldBool(spec, "coherence", b))
        out.coherence = b;
    if (fieldBool(spec, "safe_loads", b))
        out.safeLoads = b;
    if (fieldBool(spec, "sq_filter", b))
        out.sqFilter = b;
    return true;
}

// ---- daemon ----------------------------------------------------------

/**
 * All mutable daemon state lives here, behind one mutex. Simulation
 * happens outside the lock; everything else (ticket dedup, campaign
 * bookkeeping, journal assembly) is cheap and stays inside it.
 */
struct ServiceDaemon::Impl
{
    /** One deduplicated unit of work: every campaign that submits a
     *  run with this cache key shares this ticket. */
    struct Ticket
    {
        SimOptions opt;
        std::string identity; ///< journal identity (co-location key)
        int activeRefs = 0;   ///< references from live campaigns
        bool done = false;
        bool ran = false;     ///< executed (vs. skipped/cancelled)
        SimResult result;
        RunOutcome outcome;
    };

    struct Campaign
    {
        std::vector<std::size_t> runTickets; ///< per submitted run
        bool cancelled = false;
    };

    explicit Impl(ServiceDaemon &owner) : daemon(owner) {}

    ServiceDaemon &daemon;

    std::mutex m;
    std::condition_variable workCv; ///< workers: new ticket queued
    std::condition_variable doneCv; ///< waiters: a ticket completed

    std::vector<std::unique_ptr<Ticket>> tickets;
    std::unordered_map<std::string, std::size_t> ticketByKey;
    std::unordered_map<std::string, Campaign> campaigns;
    unsigned nextCampaignId = 1;
    std::size_t queued = 0; ///< tickets submitted, not yet claimed
    bool draining = false;  ///< stop accepted; skip queued tickets

    std::unique_ptr<RunScheduler> sched;
    std::vector<std::thread> workers;
    std::vector<std::thread> connections;
    std::unordered_set<int> liveFds; ///< open connection sockets
    int listenFd = -1;

    ServiceStats stats;
    std::uint64_t beatCounter = 0;

    // ---- heartbeat (same layer the shard supervisor watches) ----

    void
    publishHeartbeatLocked(HeartbeatPhase phase)
    {
        if (daemon.options_.heartbeatPath.empty())
            return;
        HeartbeatRecord rec;
        rec.counter = ++beatCounter;
        rec.completed = stats.executed;
        rec.runsTotal = stats.unique;
        rec.pid = static_cast<int>(::getpid());
        rec.phase = phase;
        writeHeartbeat(daemon.options_.heartbeatPath, rec);
    }

    // ---- worker pool ----

    void
    workerLoop(unsigned w)
    {
        // Each worker owns a single-threaded CampaignRunner over the
        // shared cache directory: CacheStore instances coordinate via
        // the index lock exactly as separate processes would, and
        // cross-campaign dedup is the ticket map's job, not the
        // runner's memo cache's.
        CampaignConfig wc = daemon.options_.campaign;
        wc.jobs = 1;
        wc.scheduler = SchedulerKind::StaticLpt;
        wc.shard = ShardSpec{};
        wc.statePath.clear();
        wc.resume = false;
        wc.heartbeatPath.clear();
        wc.failFast = false;
        CampaignRunner runner(wc);

        for (;;) {
            ScheduledRun item;
            {
                std::unique_lock<std::mutex> lock(m);
                workCv.wait(lock, [&] {
                    return queued > 0 || daemon.stopRequested_.load();
                });
                if (queued == 0)
                    return; // stopping and drained
                --queued;
            }
            if (!sched->next(w, item)) {
                // A stale size hint made the claim miss; put it back
                // and retry (the mutex round-trip resynchronizes).
                std::lock_guard<std::mutex> lock(m);
                ++queued;
                continue;
            }
            executeTicket(runner, item.index);
        }
    }

    void
    executeTicket(CampaignRunner &runner, std::size_t idx)
    {
        Ticket *t = nullptr;
        bool skip = false;
        {
            std::lock_guard<std::mutex> lock(m);
            t = tickets[idx].get();
            skip = (t->activeRefs == 0) || draining;
        }
        SimResult result;
        RunOutcome outcome;
        if (skip) {
            outcome.status = RunStatus::Skipped;
            outcome.category = RunErrorCategory::SimInvariant;
            outcome.error = draining ? "daemon shutting down"
                                     : "campaign cancelled";
        } else {
            const CampaignResult cr = runner.runChecked({t->opt});
            result = cr.results.front();
            outcome = cr.outcomes.front();
        }
        {
            std::lock_guard<std::mutex> lock(m);
            t->result = std::move(result);
            t->outcome = std::move(outcome);
            t->ran = !skip;
            t->done = true;
            if (!skip) {
                ++stats.executed;
                if (!t->outcome.cached)
                    ++stats.simulated;
            }
            publishHeartbeatLocked(HeartbeatPhase::Running);
            if (daemon.options_.verbose) {
                inform("serve: %s -> %s%s", t->identity.c_str(),
                       runStatusName(t->outcome.status),
                       t->outcome.cached ? " (cached)" : "");
            }
        }
        doneCv.notify_all();
    }

    // ---- op handlers (all return a serialized reply) ----

    std::string
    helloReply() const
    {
        const ServiceIdentity id = localServiceIdentity();
        std::ostringstream os;
        os << "{\"ok\":true,\"server\":\"dmdc_serve\",\"protocol\":"
           << kServiceProtocolVersion
           << ",\"commit\":\"" << jsonEscapeString(id.commit)
           << "\",\"cache_format\":" << id.cacheFormat
           << ",\"policy_revision\":\""
           << jsonEscapeString(id.policyRevision)
           << "\",\"pid\":" << static_cast<int>(::getpid()) << '}';
        return os.str();
    }

    std::string
    handleSubmit(const JsonValue &req)
    {
        const JsonValue *runs = req.find("runs");
        if (!runs || runs->kind != JsonValue::Kind::Array ||
            runs->items.empty())
            return errorReply("submit needs a non-empty 'runs' array");

        // Validate every spec before touching shared state, so a bad
        // campaign is rejected whole.
        std::vector<SimOptions> opts;
        opts.reserve(runs->items.size());
        for (const JsonValue &item : runs->items) {
            SimOptions opt;
            std::string err;
            if (!parseServiceRunSpec(item, opt, err))
                return errorReply(err);
            try {
                validateSimOptions(opt);
            } catch (const RunError &e) {
                return errorReply(std::string("invalid run: ") +
                                  e.what());
            }
            opts.push_back(std::move(opt));
        }

        std::string id;
        {
            std::lock_guard<std::mutex> lock(m);
            if (draining)
                return errorReply("daemon is shutting down");
            id = "c" + std::to_string(nextCampaignId++);
            Campaign &c = campaigns[id];
            for (SimOptions &opt : opts) {
                const std::string key = cacheKey(opt);
                ++stats.submitted;
                auto it = ticketByKey.find(key);
                std::size_t idx;
                if (it != ticketByKey.end()) {
                    idx = it->second;
                    ++stats.dedupHits;
                } else {
                    idx = tickets.size();
                    auto t = std::make_unique<Ticket>();
                    t->identity = journalIdentity(
                        opt.benchmark, opt.scheme, opt.configLevel);
                    t->opt = std::move(opt);
                    tickets.push_back(std::move(t));
                    ticketByKey.emplace(key, idx);
                    ++stats.unique;
                    ScheduledRun item;
                    item.index = idx;
                    item.identity = tickets[idx]->identity;
                    item.cost = static_cast<double>(
                        tickets[idx]->opt.warmupInsts +
                        tickets[idx]->opt.runInsts);
                    sched->submit(std::move(item));
                    ++queued;
                    workCv.notify_one();
                }
                ++tickets[idx]->activeRefs;
                c.runTickets.push_back(idx);
            }
            ++stats.campaigns;
        }
        return "{\"ok\":true,\"campaign\":\"" + id + "\",\"runs\":" +
               std::to_string(opts.size()) + "}";
    }

    /** Campaign lookup; fills an error @p reply when unknown. */
    Campaign *
    findCampaignLocked(const JsonValue &req, std::string &reply)
    {
        std::string id;
        if (!fieldString(req, "campaign", id)) {
            reply = errorReply("missing 'campaign' field");
            return nullptr;
        }
        auto it = campaigns.find(id);
        if (it == campaigns.end()) {
            reply = errorReply("unknown campaign '" + id + "'");
            return nullptr;
        }
        return &it->second;
    }

    std::size_t
    completedLocked(const Campaign &c) const
    {
        std::size_t n = 0;
        for (std::size_t idx : c.runTickets) {
            if (tickets[idx]->done)
                ++n;
        }
        return n;
    }

    std::string
    handleStatus(const JsonValue &req)
    {
        std::lock_guard<std::mutex> lock(m);
        std::string reply;
        const Campaign *c = findCampaignLocked(req, reply);
        if (!c)
            return reply;
        const std::size_t done = completedLocked(*c);
        const char *state = c->cancelled ? "cancelled"
            : done == c->runTickets.size() ? "done" : "running";
        return std::string("{\"ok\":true,\"state\":\"") + state +
               "\",\"completed\":" + std::to_string(done) +
               ",\"total\":" + std::to_string(c->runTickets.size()) +
               "}";
    }

    std::string
    buildJournalLocked(const Campaign &c) const
    {
        // One entry per *submitted* run: a campaign that lists the
        // same triple twice journals it twice (sharing one ticket's
        // result), exactly as a serial campaign's memo cache would.
        ShardJournal j;
        j.version = kJournalFormatVersion;
        j.commit = buildCommit();
        j.entries.reserve(c.runTickets.size());
        for (std::size_t idx : c.runTickets) {
            const Ticket &t = *tickets[idx];
            JournalEntry e;
            e.benchmark = t.opt.benchmark;
            e.scheme = t.opt.scheme;
            e.config = t.opt.configLevel;
            e.status = t.outcome.status;
            if (t.outcome.ok()) {
                e.ipcToken = journalDoubleToken(t.result.ipc);
                e.cyclesToken = std::to_string(t.result.cycles);
            } else {
                e.category = runErrorCategoryName(t.outcome.category);
                e.error = t.outcome.error;
            }
            j.entries.push_back(std::move(e));
        }
        std::ostringstream os;
        writeMergedJournal(os, j);
        return os.str();
    }

    std::string
    handleResults(const JsonValue &req)
    {
        bool wait = false;
        fieldBool(req, "wait", wait);
        std::unique_lock<std::mutex> lock(m);
        std::string reply;
        Campaign *c = findCampaignLocked(req, reply);
        if (!c)
            return reply;
        if (wait) {
            doneCv.wait(lock, [&] {
                return c->cancelled || draining ||
                       completedLocked(*c) == c->runTickets.size();
            });
        }
        if (c->cancelled)
            return errorReply("campaign was cancelled");
        const std::size_t done = completedLocked(*c);
        if (done != c->runTickets.size()) {
            if (draining)
                return errorReply("daemon is shutting down");
            return "{\"ok\":true,\"state\":\"running\","
                   "\"completed\":" + std::to_string(done) +
                   ",\"total\":" +
                   std::to_string(c->runTickets.size()) + "}";
        }
        return "{\"ok\":true,\"state\":\"done\",\"journal\":\"" +
               jsonEscapeString(buildJournalLocked(*c)) + "\"}";
    }

    std::string
    handleCancel(const JsonValue &req)
    {
        std::lock_guard<std::mutex> lock(m);
        std::string reply;
        Campaign *c = findCampaignLocked(req, reply);
        if (!c)
            return reply;
        if (!c->cancelled) {
            c->cancelled = true;
            for (std::size_t idx : c->runTickets) {
                if (tickets[idx]->activeRefs > 0)
                    --tickets[idx]->activeRefs;
            }
        }
        doneCv.notify_all();
        return "{\"ok\":true,\"cancelled\":true}";
    }

    std::string
    handleStats()
    {
        std::lock_guard<std::mutex> lock(m);
        std::ostringstream os;
        os << "{\"ok\":true,\"campaigns\":" << stats.campaigns
           << ",\"submitted\":" << stats.submitted
           << ",\"unique\":" << stats.unique
           << ",\"dedup_hits\":" << stats.dedupHits
           << ",\"executed\":" << stats.executed
           << ",\"simulated\":" << stats.simulated << '}';
        return os.str();
    }

    std::string
    dispatch(const std::string &text)
    {
        JsonValue req;
        std::string err;
        if (!parseJson(text, req, err))
            return errorReply("malformed request: " + err);
        std::string op;
        if (!fieldString(req, "op", op))
            return errorReply("request has no 'op' field");
        if (op == "hello")
            return helloReply();
        if (op == "submit")
            return handleSubmit(req);
        if (op == "status")
            return handleStatus(req);
        if (op == "results")
            return handleResults(req);
        if (op == "cancel")
            return handleCancel(req);
        if (op == "stats")
            return handleStats();
        if (op == "shutdown") {
            daemon.requestStop();
            {
                std::lock_guard<std::mutex> lock(m);
                draining = true;
            }
            workCv.notify_all();
            doneCv.notify_all();
            return "{\"ok\":true,\"stopping\":true}";
        }
        return errorReply("unknown op '" + op + "'");
    }

    void
    connectionLoop(int fd)
    {
        for (;;) {
            std::string text;
            std::string err;
            if (!readFrame(fd, text, err)) {
                if (!err.empty() && daemon.options_.verbose)
                    warn("serve: %s", err.c_str());
                break;
            }
            const std::string reply = dispatch(text);
            if (!writeFrame(fd, reply, err)) {
                if (daemon.options_.verbose)
                    warn("serve: %s", err.c_str());
                break;
            }
        }
        {
            std::lock_guard<std::mutex> lock(m);
            liveFds.erase(fd);
        }
        ::close(fd);
    }
};

ServiceDaemon::ServiceDaemon(ServiceOptions options)
    : options_(std::move(options)), impl_(new Impl(*this))
{
}

ServiceDaemon::~ServiceDaemon()
{
    delete impl_;
}

ServiceStats
ServiceDaemon::statsSnapshot() const
{
    std::lock_guard<std::mutex> lock(impl_->m);
    return impl_->stats;
}

bool
ServiceDaemon::start(std::string &err)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socketPath.size() >= sizeof(addr.sun_path)) {
        err = "socket path too long: " + options_.socketPath;
        return false;
    }
    std::strncpy(addr.sun_path, options_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    // The daemon owns its socket path: a leftover file from a
    // crashed instance would make bind() fail forever.
    ::unlink(options_.socketPath.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 16) != 0) {
        err = "cannot listen on '" + options_.socketPath + "': " +
              std::strerror(errno);
        ::close(fd);
        return false;
    }
    impl_->listenFd = fd;

    unsigned n = options_.workers
        ? options_.workers : std::thread::hardware_concurrency();
    if (n == 0)
        n = 2;
    impl_->sched = makeRunScheduler(SchedulerKind::WorkStealing);
    impl_->sched->seed({}, n);
    impl_->workers.reserve(n);
    for (unsigned w = 0; w < n; ++w)
        impl_->workers.emplace_back([this, w] {
            impl_->workerLoop(w);
        });
    {
        std::lock_guard<std::mutex> lock(impl_->m);
        impl_->publishHeartbeatLocked(HeartbeatPhase::Starting);
    }
    if (options_.verbose) {
        inform("serve: listening on %s with %u workers",
               options_.socketPath.c_str(), n);
    }
    return true;
}

int
ServiceDaemon::serve()
{
    // Poll-with-timeout accept loop so requestStop() (signal handler
    // or a client's shutdown op) is noticed promptly.
    while (!stopRequested_.load()) {
        pollfd pfd{impl_->listenFd, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, 200);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            warn("serve: poll: %s", std::strerror(errno));
            break;
        }
        if (rc == 0 || !(pfd.revents & POLLIN))
            continue;
        const int fd = ::accept(impl_->listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            warn("serve: accept: %s", std::strerror(errno));
            continue;
        }
        {
            std::lock_guard<std::mutex> lock(impl_->m);
            impl_->liveFds.insert(fd);
        }
        impl_->connections.emplace_back([this, fd] {
            impl_->connectionLoop(fd);
        });
    }

    // Drain: no new work is accepted, queued tickets resolve as
    // Skipped, workers finish their in-flight run and exit.
    {
        std::lock_guard<std::mutex> lock(impl_->m);
        impl_->draining = true;
        // Unblock connection threads parked in readFrame().
        for (int fd : impl_->liveFds)
            ::shutdown(fd, SHUT_RDWR);
    }
    impl_->workCv.notify_all();
    impl_->doneCv.notify_all();
    for (std::thread &t : impl_->workers)
        t.join();
    impl_->doneCv.notify_all();
    for (std::thread &t : impl_->connections)
        t.join();
    ::close(impl_->listenFd);
    ::unlink(options_.socketPath.c_str());
    {
        std::lock_guard<std::mutex> lock(impl_->m);
        impl_->publishHeartbeatLocked(HeartbeatPhase::Done);
    }
    if (options_.verbose) {
        const ServiceStats s = statsSnapshot();
        inform("serve: done: %llu campaigns, %llu runs (%llu unique, "
               "%llu dedup hits), %llu executed, %llu simulated",
               static_cast<unsigned long long>(s.campaigns),
               static_cast<unsigned long long>(s.submitted),
               static_cast<unsigned long long>(s.unique),
               static_cast<unsigned long long>(s.dedupHits),
               static_cast<unsigned long long>(s.executed),
               static_cast<unsigned long long>(s.simulated));
    }
    return 0;
}

// ---- client ----------------------------------------------------------

ServiceClient::~ServiceClient()
{
    close();
}

void
ServiceClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
ServiceClient::connectRaw(const std::string &socketPath,
                          std::string &err)
{
    close();
    fd_ = connectUnixSocket(socketPath, err);
    return fd_ >= 0;
}

bool
ServiceClient::connect(const std::string &socketPath, std::string &err)
{
    if (!connectRaw(socketPath, err))
        return false;
    JsonValue reply;
    if (!request("{\"op\":\"hello\"}", reply, err)) {
        close();
        return false;
    }
    std::uint64_t protocol = 0, cacheFormat = 0;
    if (!fieldU64(reply, "protocol", protocol) ||
        !fieldU64(reply, "cache_format", cacheFormat) ||
        !fieldString(reply, "commit", daemon_.commit) ||
        !fieldString(reply, "policy_revision",
                     daemon_.policyRevision)) {
        err = "daemon hello is missing handshake fields";
        close();
        return false;
    }
    daemon_.cacheFormat = static_cast<unsigned>(cacheFormat);

    // Refuse a daemon whose results would not be comparable to this
    // binary's (same rule the shard journal merger enforces).
    const ServiceIdentity mine = localServiceIdentity();
    if (protocol != kServiceProtocolVersion) {
        err = "daemon speaks protocol " + std::to_string(protocol) +
              ", this client expects " +
              std::to_string(kServiceProtocolVersion);
    } else if (daemon_.commit != mine.commit) {
        err = "daemon runs commit " + daemon_.commit +
              ", this client is " + mine.commit;
    } else if (daemon_.cacheFormat != mine.cacheFormat) {
        err = "daemon cache format " +
              std::to_string(daemon_.cacheFormat) + " != client " +
              std::to_string(mine.cacheFormat);
    } else if (daemon_.policyRevision != mine.policyRevision) {
        err = "daemon policy registry revision differs (" +
              daemon_.policyRevision + " vs " + mine.policyRevision +
              ")";
    } else {
        return true;
    }
    close();
    return false;
}

bool
ServiceClient::request(const std::string &request, JsonValue &reply,
                       std::string &err)
{
    if (fd_ < 0) {
        err = "not connected";
        return false;
    }
    if (!writeFrame(fd_, request, err)) {
        close();
        return false;
    }
    std::string text;
    if (!readFrame(fd_, text, err)) {
        if (err.empty())
            err = "daemon closed the connection";
        close();
        return false;
    }
    if (!parseJson(text, reply, err)) {
        err = "malformed daemon reply: " + err;
        close();
        return false;
    }
    bool ok = false;
    if (!fieldBool(reply, "ok", ok)) {
        err = "daemon reply has no 'ok' field";
        close();
        return false;
    }
    if (!ok) {
        // A protocol-level refusal; the connection stays usable.
        if (!fieldString(reply, "error", err))
            err = "daemon refused the request";
        return false;
    }
    return true;
}

} // namespace dmdc
