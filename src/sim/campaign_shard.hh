/**
 * @file
 * Campaign sharding and journal merging.
 *
 * One campaign — the fingerprinted ordered work list that PR 3's
 * checkpoint manifest already captures — can be executed by N
 * cooperating processes. Each process is handed a ShardSpec (`--shard
 * =i/N`), deterministically derives its slice of the work list with
 * shardAssignment(), runs it through the ordinary runChecked()
 * machinery against the shared concurrent-writer-safe `.dmdc_cache/`,
 * and flushes a per-shard deterministic journal. mergeShardJournals()
 * then validates that the shard journals belong together (same
 * campaign fingerprint, same registry commit, disjoint-and-complete
 * run sets) and re-serializes them in canonical order — the merged
 * file is bit-identical to the journal an uninterrupted single-process
 * run would have written.
 *
 * The partition function groups runs by journal identity
 * (benchmark|scheme|config), estimates each group's cost from its
 * instruction budget, and assigns groups to shards greedily
 * (longest-processing-time first, ties broken by a stable hash of the
 * identity). Grouping by journal identity — not full run identity —
 * guarantees the merger's disjointness invariant even when a harness
 * runs the same (benchmark, scheme, config) triple under different
 * hidden knobs.
 */

#ifndef DMDC_SIM_CAMPAIGN_SHARD_HH
#define DMDC_SIM_CAMPAIGN_SHARD_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/run_error.hh"
#include "sim/simulator.hh"

namespace dmdc
{

/** Journal file format version (header "version" field). */
constexpr unsigned kJournalFormatVersion = 3;

/** Which slice of a campaign this process executes. */
struct ShardSpec
{
    unsigned index = 0; ///< 0-based shard id
    unsigned count = 1; ///< total cooperating shard processes

    /** True when the campaign is actually split (count > 1). */
    bool active() const { return count > 1; }
};

/**
 * Parse "i/N" (e.g. "0/2") into @p out. Requires N >= 1 and i < N.
 * On failure returns false and describes the problem in @p err.
 */
bool parseShardSpec(const std::string &text, ShardSpec &out,
                    std::string &err);

/** "i/N" spelling of @p spec. */
std::string shardSpecName(const ShardSpec &spec);

/**
 * Derive the per-shard checkpoint manifest path from the campaign's
 * base @p statePath: "dir/state.json" -> "dir/state.shard0of2.json"
 * (suffix precedes the last extension; appended when there is none).
 * Shard processes must not share one manifest file; the campaign
 * fingerprint inside each manifest still covers the *full* work list,
 * so a resumed shard verifies it belongs to the same campaign.
 */
std::string shardStatePath(const std::string &statePath,
                           const ShardSpec &spec);

/**
 * Deterministically assign each run in @p runs to one of
 * @p shardCount shards. Returns a vector parallel to @p runs holding
 * the shard index of each run.
 *
 * Properties:
 *  - pure function of (run list, shardCount): every shard process
 *    computes the same assignment independently;
 *  - runs with equal journal identity (benchmark|scheme|config)
 *    land on the same shard;
 *  - balanced by estimated cost (warmup + measured instructions)
 *    using LPT greedy assignment, so shard wall-clocks are within one
 *    group of each other.
 */
std::vector<unsigned> shardAssignment(const std::vector<SimOptions> &runs,
                                      unsigned shardCount);

/**
 * Journal identity of one run ("benchmark|scheme|config"): the
 * co-location key shared by the shard partitioner, the run
 * schedulers, and the dmdc_serve dedup map.
 */
std::string journalIdentity(const std::string &benchmark,
                            const std::string &scheme, unsigned config);

// ---- journal model (shared by the runner's writer and the merger) ----

/**
 * One "results" record of a deterministic journal, with numeric
 * fields kept as raw JSON tokens so re-serialization is byte-exact.
 */
struct JournalEntry
{
    std::string benchmark;
    std::string scheme;
    unsigned config = 2;
    RunStatus status = RunStatus::Ok;
    std::string ipcToken = "0";    ///< raw JSON number (ok records)
    std::string cyclesToken = "0"; ///< raw JSON number (ok records)
    std::string category;          ///< failure records only
    std::string error;             ///< failure records only, unescaped
};

/** Canonical journal order (matches the runner's deterministic sort). */
bool journalEntryLess(const JournalEntry &a, const JournalEntry &b);

/** Serialize one record in deterministic-journal form ("\n  {...}"). */
void writeJournalEntry(std::ostream &os, const JournalEntry &e);

/** A parsed journal file (per-shard or merged/serial). */
struct ShardJournal
{
    unsigned version = 0;
    std::string commit;

    // Shard header fields; present only in per-shard journals.
    bool sharded = false;
    std::string campaign;        ///< campaign fingerprint (hex)
    unsigned shardIndex = 0;
    unsigned shardCount = 1;
    std::uint64_t runsTotal = 0; ///< full-campaign run count

    std::vector<JournalEntry> entries;
};

/** Parse journal JSON text; false + @p err on malformed input. */
bool parseShardJournal(const std::string &text, ShardJournal &out,
                       std::string &err);

/** Read and parse the journal file at @p path. */
bool loadShardJournal(const std::string &path, ShardJournal &out,
                      std::string &err);

/**
 * Validate that @p shards are the complete, disjoint shard set of one
 * campaign and merge them into @p out (canonical order, no shard
 * header). Rejects: non-shard journals, mixed version/commit/
 * fingerprint/shard-count, duplicate or missing shard indices,
 * overlapping journal identities across shards, and record counts
 * that don't sum to the campaign's run total.
 */
bool mergeShardJournals(const std::vector<ShardJournal> &shards,
                        ShardJournal &out, std::string &err);

/**
 * Serialize @p journal exactly as flushCampaignJournal() writes a
 * deterministic single-process journal (records sorted canonically).
 */
void writeMergedJournal(std::ostream &os, const ShardJournal &journal);

} // namespace dmdc

#endif // DMDC_SIM_CAMPAIGN_SHARD_HH
