/**
 * @file
 * Top-level public API: configure and run one simulation and collect a
 * SimResult. This is the entry point examples, tests and benches use.
 */

#ifndef DMDC_SIM_SIMULATOR_HH
#define DMDC_SIM_SIMULATOR_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/trace_sink.hh"
#include "lsq/lsq_unit.hh"
#include "sim/results.hh"
#include "trace/synthetic.hh"
#include "verify/check_mode.hh"

namespace dmdc
{

/** Options of one simulation run. */
struct SimOptions
{
    /** SPEC stand-in benchmark name (see specAllNames()). */
    std::string benchmark = "gzip";
    /** Paper Table 1 configuration level, 1-3. */
    unsigned configLevel = 2;
    /** Scheme registry name or alias (see --list-schemes). */
    std::string scheme = "baseline";

    std::uint64_t warmupInsts = 100000;
    std::uint64_t runInsts = 1000000;

    /** External invalidation rate (paper Table 6 sweep). */
    double invalidationsPer1kCycles = 0.0;
    /** Coherence extension (second YLA set + INV bits). */
    bool coherence = false;
    /** Safe-load detection (Sec. 4.2 optimization; ablation knob). */
    bool safeLoads = true;
    /** SQ-side age filter (Sec. 3 extension; default off, as in the
     *  paper's evaluation). */
    bool sqFilter = false;

    /** Override the quad-word YLA register count (default 8). */
    unsigned numYlaQw = 8;
    /** Override the checking-table entry count (0 = config default). */
    unsigned tableEntriesOverride = 0;
    /** Checking-queue entries for the dmdc-queue scheme. */
    unsigned queueEntries = 16;

    /** Shadow filters to attach (not owned; Figs. 2/3). */
    std::vector<FilterObserver *> observers;

    /** Override any core parameter after preset construction. */
    std::function<void(CoreParams &)> tweak;

    // ---- watchdog limits (never part of the run-cache key: they
    // bound execution, they don't change results) ----

    /**
     * Wall-clock budget per run in milliseconds; the run throws
     * RunError(Timeout) when exceeded. 0 disables the deadline.
     */
    double timeoutMs = 0.0;

    /**
     * Cycle-budget watchdog: a RunError(Timeout) after this many
     * consecutive cycles without a single committed instruction (a
     * wedged pipeline). 0 disables; the default trips on deadlock
     * long before any real workload comes close.
     */
    std::uint64_t stallCycleLimit = 100000;

    // ---- diagnostics (never part of the run-cache key: tracing
    // observes a run, it doesn't change results) ----

    /**
     * Tracing configuration for library users (the CLI harnesses
     * configure the process-wide sink from --trace/--trace-out before
     * any run starts). When set and the sink is still unconfigured,
     * Simulator's constructor applies it — first configurer wins, so
     * embedding code can trace one run without touching globals.
     */
    TraceOptions trace;

    // ---- verification (never part of the run-cache key: checked
    // runs bypass the cache entirely, and --check=off journals must
    // stay byte-identical to pre-oracle runs) ----

    /**
     * Commit-time verification. Oracle attaches the ordering oracle;
     * Litmus additionally swaps the random invalidation injector for
     * a scripted coherence agent (coherenceAgent, default "mixed").
     * A forbidden outcome makes run() throw RunError(SimInvariant).
     */
    CheckMode check = CheckMode::Off;

    /**
     * Scripted coherence-agent spec ("producer-consumer",
     * "lock-handoff", "false-sharing", "mixed", each optionally
     * ":period=<cycles>"). Empty = random injector (or none).
     */
    std::string coherenceAgent;
};

/**
 * Validate every SimOptions field up front; throws RunError(Config)
 * with a precise message on out-of-range sizes, non-power-of-two
 * table/YLA geometries, or unknown benchmark/scheme/config names.
 * Simulator's constructor calls this, so library users get a
 * structured error instead of a fatal() deep inside construction.
 */
void validateSimOptions(const SimOptions &options);

class OrderingOracle;

/** One fully-owned simulation instance. */
class Simulator
{
  public:
    explicit Simulator(const SimOptions &options);
    ~Simulator();

    /** Run warm-up + measured phase; returns the collected result. */
    SimResult run();

    /** Access the live pipeline (tests and examples). */
    Pipeline &pipeline() { return *pipe_; }
    SyntheticWorkload &workload() { return *workload_; }
    const CoreParams &coreParams() const { return params_; }

    /** The attached ordering oracle (nullptr with --check=off). */
    const OrderingOracle *oracle() const { return oracle_.get(); }

  private:
    SimOptions options_;
    CoreParams params_;
    std::unique_ptr<SyntheticWorkload> workload_;
    std::unique_ptr<Pipeline> pipe_;
    std::unique_ptr<OrderingOracle> oracle_;
};

/** Convenience wrapper: construct, run, return. */
SimResult runSimulation(const SimOptions &options);

} // namespace dmdc

#endif // DMDC_SIM_SIMULATOR_HH
