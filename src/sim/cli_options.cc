#include "sim/cli_options.hh"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>

#include "common/logging.hh"
#include "verify/check_mode.hh"
#include "verify/coherence_agent.hh"

namespace dmdc
{

// ---- strict number parsing -------------------------------------------

bool
parseCliU64(const std::string &text, std::uint64_t &out)
{
    if (text.empty() || text.size() > 20)
        return false;
    for (char c : text) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno == ERANGE || end != text.c_str() + text.size())
        return false;
    out = v;
    return true;
}

bool
parseCliUnsigned(const std::string &text, unsigned &out)
{
    std::uint64_t v = 0;
    if (!parseCliU64(text, v) ||
        v > std::numeric_limits<unsigned>::max())
        return false;
    out = static_cast<unsigned>(v);
    return true;
}

bool
parseCliDouble(const std::string &text, double &out)
{
    if (text.empty() || text.size() > 64)
        return false;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (errno == ERANGE || end != text.c_str() + text.size())
        return false;
    if (!(v == v) || v > std::numeric_limits<double>::max() ||
        v < -std::numeric_limits<double>::max())
        return false;
    out = v;
    return true;
}

// ---- CliParser -------------------------------------------------------

CliParser::CliParser(std::string program, std::string synopsis)
    : program_(std::move(program)), synopsis_(std::move(synopsis))
{
}

void
CliParser::flag(const std::string &name, bool *out,
                const std::string &help)
{
    options_.push_back({name, Kind::Flag, out, {}, {}, help});
}

void
CliParser::action(const std::string &name, std::function<void()> fn,
                  const std::string &help)
{
    options_.push_back(
        {name, Kind::Action, nullptr, std::move(fn), {}, help});
}

void
CliParser::value(const std::string &name, std::uint64_t *out,
                 const std::string &help)
{
    options_.push_back({name, Kind::U64, out, {}, {}, help});
}

void
CliParser::value(const std::string &name, unsigned *out,
                 const std::string &help)
{
    options_.push_back({name, Kind::Unsigned, out, {}, {}, help});
}

void
CliParser::value(const std::string &name, double *out,
                 const std::string &help)
{
    options_.push_back({name, Kind::Double, out, {}, {}, help});
}

void
CliParser::value(const std::string &name, std::string *out,
                 const std::string &help)
{
    options_.push_back({name, Kind::String, out, {}, {}, help});
}

void
CliParser::list(const std::string &name,
                std::vector<std::string> *out, const std::string &help)
{
    options_.push_back({name, Kind::List, out, {}, {}, help});
}

void
CliParser::valueAction(
    const std::string &name,
    std::function<bool(const std::string &, std::string &)> fn,
    const std::string &help)
{
    options_.push_back(
        {name, Kind::Custom, nullptr, {}, std::move(fn), help});
}

void
CliParser::positional(std::vector<std::string> *out,
                      const std::string &label)
{
    positional_ = out;
    positionalLabel_ = label;
}

void
CliParser::passthrough(std::vector<std::string> *out)
{
    passthrough_ = out;
}

const CliParser::Option *
CliParser::findOption(const std::string &name) const
{
    for (const Option &opt : options_) {
        if (opt.name == name)
            return &opt;
    }
    return nullptr;
}

bool
CliParser::applyValue(const Option &opt, const std::string &value,
                      std::string &err)
{
    switch (opt.kind) {
      case Kind::U64:
        if (!parseCliU64(value, *static_cast<std::uint64_t *>(opt.out))) {
            err = "--" + opt.name + " expects an unsigned integer, got '"
                + value + "'";
            return false;
        }
        return true;
      case Kind::Unsigned:
        if (!parseCliUnsigned(value,
                              *static_cast<unsigned *>(opt.out))) {
            err = "--" + opt.name + " expects an unsigned integer, got '"
                + value + "'";
            return false;
        }
        return true;
      case Kind::Double:
        if (!parseCliDouble(value, *static_cast<double *>(opt.out))) {
            err = "--" + opt.name + " expects a finite number, got '" +
                  value + "'";
            return false;
        }
        return true;
      case Kind::String:
        *static_cast<std::string *>(opt.out) = value;
        return true;
      case Kind::List: {
        auto *out = static_cast<std::vector<std::string> *>(opt.out);
        out->clear();
        std::stringstream ss(value);
        std::string item;
        while (std::getline(ss, item, ',')) {
            if (!item.empty())
                out->push_back(item);
        }
        if (out->empty()) {
            err = "--" + opt.name + " expects a comma-separated list";
            return false;
        }
        return true;
      }
      case Kind::Custom:
        if (!opt.custom(value, err)) {
            if (err.empty())
                err = "invalid value for --" + opt.name;
            return false;
        }
        return true;
      case Kind::Flag:
      case Kind::Action:
        break;
    }
    err = "--" + opt.name + " does not take a value";
    return false;
}

bool
CliParser::parse(int argc, char **argv, std::string &err)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            if (positional_) {
                positional_->push_back(arg);
                continue;
            }
            if (passthrough_) {
                passthrough_->push_back(arg);
                continue;
            }
            err = "unexpected argument '" + arg + "'";
            return false;
        }
        const std::size_t eq = arg.find('=');
        const std::string name = arg.substr(2, eq == std::string::npos
                                                   ? std::string::npos
                                                   : eq - 2);
        const Option *opt = findOption(name);
        if (!opt) {
            if (passthrough_) {
                passthrough_->push_back(arg);
                continue;
            }
            err = "unknown option '--" + name + "'";
            return false;
        }
        std::string value;
        if (eq != std::string::npos) {
            if (!opt->takesValue()) {
                err = "--" + name + " does not take a value";
                return false;
            }
            value = arg.substr(eq + 1);
        } else if (opt->takesValue()) {
            if (i + 1 >= argc) {
                err = "--" + name + " requires a value";
                return false;
            }
            value = argv[++i];
        }
        if (opt->kind == Kind::Flag) {
            *static_cast<bool *>(opt->out) = true;
        } else if (opt->kind == Kind::Action) {
            opt->fn();
        } else if (!applyValue(*opt, value, err)) {
            return false;
        }
    }
    return true;
}

void
CliParser::parseOrExit(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0) {
            std::fputs(usage().c_str(), stdout);
            std::exit(kExitOk);
        }
    }
    std::string err;
    if (!parse(argc, argv, err))
        failUsage(err);
}

void
CliParser::failUsage(const std::string &err) const
{
    std::fprintf(stderr, "%s: %s\n\n%s", program_.c_str(), err.c_str(),
                 usage().c_str());
    std::exit(kExitUsage);
}

std::string
CliParser::usage() const
{
    std::ostringstream os;
    os << "usage: " << program_;
    if (!options_.empty())
        os << " [options]";
    if (positional_)
        os << ' ' << positionalLabel_;
    os << '\n';
    if (!synopsis_.empty())
        os << '\n' << synopsis_ << '\n';
    if (!options_.empty())
        os << "\noptions:\n";
    for (const Option &opt : options_) {
        std::string left = "  --" + opt.name;
        if (opt.takesValue())
            left += "=<v>";
        os << left;
        for (std::size_t pad = left.size(); pad < 26; ++pad)
            os << ' ';
        os << opt.help << '\n';
    }
    return os.str();
}

// ---- campaign flag bundle --------------------------------------------

void
CampaignCliOptions::addTo(CliParser &parser)
{
    parser.value("jobs", &config.jobs,
                 "worker threads (0 = all cores)");
    parser.flag("no-cache", &noCache, "disable the run cache");
    parser.value("cache-dir", &config.cacheDir,
                 "on-disk run cache directory");
    parser.value("cache-max-mb", &cacheMaxMb,
                 "evict LRU cache entries over this size");
    parser.value("timeout", &config.timeoutMs,
                 "per-run wall-clock budget, ms (0 = none)");
    parser.value("max-retries", &config.maxRetries,
                 "retries for transient run failures");
    parser.flag("fail-fast", &config.failFast,
                "stop launching runs after the first failure");
    parser.value("state", &config.statePath,
                 "checkpoint manifest path");
    parser.flag("resume", &config.resume,
                "resume from the checkpoint manifest");
    parser.value("shard", &shardText,
                 "run slice i of N of the campaign (i/N)");
    parser.value("json", &jsonPath, "write the campaign journal here");
    parser.flag("json-deterministic", &jsonDeterministic,
                "strip nondeterministic journal fields + sort");
    parser.value("heartbeat", &config.heartbeatPath,
                 "publish per-run heartbeats at this base path");
    parser.value("scheduler", &schedulerText,
                 "run placement: work-stealing (default) or static-lpt");
    parser.value("trace", &trace.channels,
                 "trace channels (comma list or 'all'); captures a "
                 "Chrome trace");
    parser.value("trace-out", &traceOutText,
                 "Chrome trace-event JSON path (default trace.json)");
    parser.value("trace-buffer", &trace.bufferRecords,
                 "per-thread trace ring capacity, records");
    parser.value("check", &checkText,
                 "commit-time verification: off (default), oracle, "
                 "or litmus (oracle + scripted coherence agent)");
    parser.value("agent", &agentText,
                 "coherence-agent spec for checked runs "
                 "(producer-consumer|lock-handoff|false-sharing|mixed"
                 "[:period=N])");
}

bool
CampaignCliOptions::finalize(std::string &err)
{
    config.useCache = !noCache;
    if (!shardText.empty() &&
        !parseShardSpec(shardText, config.shard, err))
        return false;
    if (config.resume && config.statePath.empty()) {
        err = "--resume requires --state=<path>";
        return false;
    }
    if (!schedulerText.empty() &&
        !parseSchedulerKind(schedulerText, config.scheduler, err))
        return false;
    config.cacheMaxBytes = cacheMaxMb * 1024ull * 1024ull;
    workerMode = !config.heartbeatPath.empty();
    if (!traceOutText.empty() && trace.channels.empty()) {
        err = "--trace-out requires --trace=<channels|all>";
        return false;
    }
    if (!traceOutText.empty())
        trace.outPath = traceOutText;
    if (!checkText.empty() &&
        !parseCheckMode(checkText, config.checkMode)) {
        err = "--check expects off, oracle or litmus, got '" +
              checkText + "'";
        return false;
    }
    if (!agentText.empty()) {
        std::string agent_err;
        if (!CoherenceAgent::validateSpec(agentText, &agent_err)) {
            err = "--agent: " + agent_err;
            return false;
        }
        config.coherenceAgent = agentText;
        // A scripted agent only runs under the oracle's eye.
        if (config.checkMode == CheckMode::Off)
            config.checkMode = CheckMode::Litmus;
    }
    return true;
}

void
CampaignCliOptions::apply() const
{
    warnIfDeprecatedTraceEnv();
    CampaignRunner::configureGlobal(config);
    if (!jsonPath.empty())
        setCampaignJournal(jsonPath, jsonDeterministic);
    if (trace.enabled()) {
        TraceOptions resolved = trace;
        resolved.outPath = traceShardPath(
            resolved.outPath, config.shard.index, config.shard.count);
        traceConfigure(resolved);
        traceSetThreadName("main");
    }
}

// ---- supervisor flag bundle ------------------------------------------

void
SupervisorCliOptions::addTo(CliParser &parser)
{
    parser.value("procs", &options.procs,
                 "shard worker processes to launch");
    parser.value("heartbeat-interval", &options.pollIntervalMs,
                 "supervisor poll cadence, ms");
    parser.value("hang-deadline", &options.hangDeadlineMs,
                 "heartbeat staleness before a kill, ms (0 = off)");
    parser.value("shard-retries", &options.shardRetries,
                 "restarts allowed per shard");
    parser.value("launch-dir", &options.launchDir,
                 "scratch dir for state/heartbeats/journals/logs");
    parser.value("worker", &options.workerBinary,
                 "worker binary (default: dmdc_sim next to launcher)");
    parser.value("out", &options.journalPath,
                 "merged journal path (default <launch-dir>/merged.json)");
    parser.flag("resume", &options.resume,
                "resume an interrupted launch");
    parser.flag("verbose", &options.verbose,
                "log every supervision event");
    parser.value("trace", &trace.channels,
                 "trace channels for launcher + workers (comma list "
                 "or 'all')");
    parser.value("trace-out", &traceOutText,
                 "Chrome trace-event JSON base path (workers derive "
                 "per-shard files)");
    parser.value("trace-buffer", &trace.bufferRecords,
                 "per-thread trace ring capacity, records");
    parser.passthrough(&options.workerArgs);
}

bool
SupervisorCliOptions::finalize(const std::string &argv0,
                               std::string &err)
{
    if (options.procs == 0) {
        err = "--procs must be at least 1";
        return false;
    }
    if (options.workerBinary.empty()) {
        const std::size_t slash = argv0.find_last_of('/');
        const std::string dir = slash == std::string::npos
            ? std::string(".") : argv0.substr(0, slash);
        options.workerBinary = dir + "/dmdc_sim";
    }
    // The supervisor owns the sharding, journaling, and checkpoint
    // topology; a forwarded flag in that namespace would silently
    // fight it.
    static const char *const kReserved[] = {
        "--shard", "--json", "--json-deterministic", "--state",
        "--heartbeat", "--resume",
    };
    for (const std::string &arg : options.workerArgs) {
        for (const char *r : kReserved) {
            if (arg == r || arg.rfind(std::string(r) + "=", 0) == 0) {
                err = "'" + arg + "' is managed by the launcher and "
                      "cannot be forwarded to workers";
                return false;
            }
        }
    }
    if (!traceOutText.empty() && trace.channels.empty()) {
        err = "--trace-out requires --trace=<channels|all>";
        return false;
    }
    if (!traceOutText.empty())
        trace.outPath = traceOutText;
    // Forward the tracing flags verbatim: every worker re-derives its
    // own per-shard output path from the same base, so one launch
    // yields one trace file per process for tools/trace_merge.
    if (trace.enabled()) {
        options.workerArgs.push_back("--trace=" + trace.channels);
        options.workerArgs.push_back("--trace-out=" + trace.outPath);
        options.workerArgs.push_back(
            "--trace-buffer=" + std::to_string(trace.bufferRecords));
    }
    return true;
}

void
SupervisorCliOptions::applyTracing() const
{
    warnIfDeprecatedTraceEnv();
    if (!trace.enabled())
        return;
    TraceOptions resolved = trace;
    resolved.outPath = tracePathWithTag(trace.outPath, ".supervisor");
    traceConfigure(resolved);
    traceSetThreadName("supervisor");
}

} // namespace dmdc
