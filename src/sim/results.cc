/**
 * @file
 * Result aggregation helpers.
 */

#include "sim/results.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dmdc
{

Range
makeRange(const std::vector<double> &values)
{
    Range r;
    r.n = values.size();
    if (values.empty())
        return r;
    r.min = *std::min_element(values.begin(), values.end());
    r.max = *std::max_element(values.begin(), values.end());
    double sum = 0;
    for (double v : values)
        sum += v;
    r.mean = sum / static_cast<double>(values.size());
    return r;
}

const SimResult &
findResult(const std::vector<SimResult> &results,
           const std::string &benchmark)
{
    for (const SimResult &r : results) {
        if (r.benchmark == benchmark)
            return r;
    }
    fatal("no result recorded for benchmark '%s'", benchmark.c_str());
}

} // namespace dmdc
