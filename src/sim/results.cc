/**
 * @file
 * Result aggregation helpers.
 */

#include "sim/results.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dmdc
{

Range
makeRange(const std::vector<double> &values)
{
    Range r;
    r.n = values.size();
    if (values.empty())
        return r;
    r.min = *std::min_element(values.begin(), values.end());
    r.max = *std::max_element(values.begin(), values.end());
    double sum = 0;
    for (double v : values)
        sum += v;
    r.mean = sum / static_cast<double>(values.size());
    return r;
}

const SimResult &
findResult(const std::vector<SimResult> &results,
           const std::string &benchmark)
{
    for (const SimResult &r : results) {
        if (r.valid && r.benchmark == benchmark)
            return r;
    }
    fatal("no result recorded for benchmark '%s'", benchmark.c_str());
}

ResultLookup::ResultLookup(const std::vector<SimResult> &results)
    : results_(results)
{
    if (results.size() <= kIndexThreshold)
        return;
    index_.reserve(results.size());
    for (const SimResult &r : results) {
        if (r.valid)
            index_.emplace(r.benchmark, &r);
    }
}

const SimResult *
ResultLookup::find(const std::string &benchmark) const
{
    if (index_.empty()) {
        for (const SimResult &r : results_) {
            if (r.valid && r.benchmark == benchmark)
                return &r;
        }
        // Linear scan covers the small-campaign case where no index
        // was built; absent and invalid look the same to the caller.
        return nullptr;
    }
    auto it = index_.find(benchmark);
    return it == index_.end() ? nullptr : it->second;
}

const SimResult &
ResultLookup::at(const std::string &benchmark) const
{
    const SimResult *r = find(benchmark);
    if (!r)
        fatal("no result recorded for benchmark '%s'",
              benchmark.c_str());
    return *r;
}

} // namespace dmdc
