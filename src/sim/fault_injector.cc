/**
 * @file
 * Fault-injection spec parsing and deterministic decisions.
 */

#include "sim/fault_injector.hh"

#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "common/random.hh"
#include "sim/run_error.hh"

namespace dmdc
{

namespace
{

/** One "site:p=0.1" item; returns false if @p item is not site-shaped. */
bool
applyItem(FaultSpec &spec, const std::string &item, std::string &err)
{
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos) {
        // Allow a bare "seed=<n>" item.
        if (item.rfind("seed=", 0) == 0) {
            char *end = nullptr;
            spec.seed = std::strtoull(item.c_str() + 5, &end, 0);
            if (*end != '\0') {
                err = "bad seed value in '" + item + "'";
                return false;
            }
            return true;
        }
        err = "expected '<site>:p=<prob>' or 'seed=<n>', got '" +
            item + "'";
        return false;
    }
    const std::string site = item.substr(0, colon);
    const std::string param = item.substr(colon + 1);
    if (param.rfind("p=", 0) != 0) {
        err = "expected 'p=<prob>' after '" + site + ":'";
        return false;
    }
    char *end = nullptr;
    const double p = std::strtod(param.c_str() + 2, &end);
    if (*end != '\0' || !std::isfinite(p) || p < 0.0 || p > 1.0) {
        err = "probability in '" + item + "' must be in [0, 1]";
        return false;
    }
    if (site == "cache-corrupt")
        spec.cacheCorruptP = p;
    else if (site == "run-throw")
        spec.runThrowP = p;
    else if (site == "run-hang")
        spec.runHangP = p;
    else if (site == "worker-crash")
        spec.workerCrashP = p;
    else if (site == "worker-hang")
        spec.workerHangP = p;
    else if (site == "serve-crash")
        spec.serveCrashP = p;
    else if (site == "frame-truncate")
        spec.frameTruncateP = p;
    else if (site == "client-stall")
        spec.clientStallP = p;
    else if (site == "lsq-corrupt")
        spec.lsqCorruptP = p;
    else {
        err = "unknown fault site '" + site +
            "' (sites: cache-corrupt, run-throw, run-hang, "
            "worker-crash, worker-hang, serve-crash, frame-truncate, "
            "client-stall, lsq-corrupt)";
        return false;
    }
    return true;
}

} // namespace

FaultSpec
parseFaultSpec(const std::string &text)
{
    FaultSpec spec;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t comma = text.find(',', start);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string item = text.substr(start, comma - start);
        if (!item.empty()) {
            std::string err;
            if (!applyItem(spec, item, err))
                throw RunError(RunErrorCategory::Config,
                               "DMDC_FAULT: " + err);
        }
        start = comma + 1;
    }
    return spec;
}

FaultInjector &
FaultInjector::global()
{
    static FaultInjector injector = [] {
        FaultInjector inj;
        if (const char *env = std::getenv("DMDC_FAULT")) {
            try {
                inj.configure(parseFaultSpec(env));
            } catch (const RunError &e) {
                fatal("%s", e.what());
            }
            if (inj.enabled()) {
                warn("fault injection active: DMDC_FAULT=%s", env);
            }
        }
        return inj;
    }();
    return injector;
}

bool
FaultInjector::decide(const char *site, const std::string &key,
                      unsigned attempt, double p) const
{
    if (p <= 0.0)
        return false;
    // A fresh Rng per decision, seeded from (seed, site, key,
    // attempt): deterministic regardless of worker scheduling, and
    // distinct attempts of one run draw independent outcomes so a
    // retry can clear an injected transient fault.
    std::uint64_t h = hashBytes(key.data(), key.size(), spec_.seed);
    h = hashBytes(site, std::char_traits<char>::length(site), h);
    Rng rng(h + 0x9e3779b97f4a7c15ull * (attempt + 1));
    return rng.chance(p);
}

bool
FaultInjector::injectRunThrow(const std::string &key,
                              unsigned attempt) const
{
    return decide("run-throw", key, attempt, spec_.runThrowP);
}

bool
FaultInjector::injectRunHang(const std::string &key) const
{
    return decide("run-hang", key, 0, spec_.runHangP);
}

bool
FaultInjector::injectCacheCorrupt(const std::string &key) const
{
    return decide("cache-corrupt", key, 0, spec_.cacheCorruptP);
}

bool
FaultInjector::injectWorkerCrash(const std::string &key,
                                 unsigned attempt) const
{
    return decide("worker-crash", key, attempt, spec_.workerCrashP);
}

bool
FaultInjector::injectWorkerHang(const std::string &key,
                                unsigned attempt) const
{
    return decide("worker-hang", key, attempt, spec_.workerHangP);
}

bool
FaultInjector::injectServeCrash(const std::string &key) const
{
    return decide("serve-crash", key, 0, spec_.serveCrashP);
}

bool
FaultInjector::injectFrameTruncate(const std::string &identity,
                                   unsigned attempt) const
{
    return decide("frame-truncate", identity, attempt,
                  spec_.frameTruncateP);
}

bool
FaultInjector::injectClientStall(const std::string &identity) const
{
    return decide("client-stall", identity, 0, spec_.clientStallP);
}

bool
FaultInjector::injectLsqCorrupt(const std::string &key) const
{
    return decide("lsq-corrupt", key, 0, spec_.lsqCorruptP);
}

} // namespace dmdc
