/**
 * @file
 * Checkpoint manifest serialization.
 */

#include "sim/campaign_state.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/atomic_file.hh"
#include "common/logging.hh"
#include "common/random.hh"

namespace dmdc
{

namespace
{

constexpr unsigned kStateFormatVersion = 1;

/** Escape for embedding in a JSON string literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out.push_back(' ');
        } else {
            out.push_back(c);
        }
    }
    return out;
}

// Minimal parser for the manifest grammar this file writes: one
// object holding scalars plus a "runs" array of flat objects. Strings
// understand the \" and \\ escapes jsonEscape() emits.
class StateParser
{
  public:
    explicit StateParser(const std::string &text) : text_(text) {}

    bool
    parse(CampaignState &out, std::string &err)
    {
        skipWs();
        if (!consume('{'))
            return fail(err, "expected '{'");
        skipWs();
        if (consume('}'))
            return true;
        for (;;) {
            std::string key;
            if (!quoted(key) || (skipWs(), !consume(':')))
                return fail(err, "malformed key");
            skipWs();
            if (key == "runs") {
                if (!runsArray(out, err))
                    return false;
            } else {
                std::string value;
                if (!scalarOrString(value))
                    return fail(err, "malformed value");
                if (key == "version" &&
                    std::strtoul(value.c_str(), nullptr, 10) !=
                        kStateFormatVersion)
                    return fail(err, "format version mismatch");
                if (key == "fingerprint")
                    out.fingerprint = value;
            }
            skipWs();
            if (consume(',')) {
                skipWs();
                continue;
            }
            if (!consume('}'))
                return fail(err, "expected '}'");
            return true;
        }
    }

  private:
    bool
    runsArray(CampaignState &out, std::string &err)
    {
        if (!consume('['))
            return fail(err, "expected '['");
        skipWs();
        if (consume(']'))
            return true;
        for (;;) {
            CampaignStateEntry e;
            if (!runObject(e, err))
                return false;
            out.entries.push_back(std::move(e));
            skipWs();
            if (consume(',')) {
                skipWs();
                continue;
            }
            if (!consume(']'))
                return fail(err, "expected ']'");
            return true;
        }
    }

    bool
    runObject(CampaignStateEntry &e, std::string &err)
    {
        if (!consume('{'))
            return fail(err, "expected run object");
        skipWs();
        for (;;) {
            std::string key, value;
            if (!quoted(key) || (skipWs(), !consume(':')))
                return fail(err, "malformed run key");
            skipWs();
            if (!scalarOrString(value))
                return fail(err, "malformed run value");
            if (key == "benchmark")
                e.benchmark = value;
            else if (key == "scheme")
                e.scheme = value;
            else if (key == "config")
                e.configLevel = static_cast<unsigned>(
                    std::strtoul(value.c_str(), nullptr, 10));
            else if (key == "status") {
                if (!parseRunStatus(value, e.status))
                    return fail(err, "unknown run status");
            } else if (key == "category")
                e.category = value;
            else if (key == "error")
                e.error = value;
            else if (key == "attempts")
                e.attempts = static_cast<unsigned>(
                    std::strtoul(value.c_str(), nullptr, 10));
            skipWs();
            if (consume(',')) {
                skipWs();
                continue;
            }
            if (!consume('}'))
                return fail(err, "expected end of run object");
            return true;
        }
    }

    bool
    scalarOrString(std::string &out)
    {
        if (peek() == '"')
            return quoted(out);
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == ',' || c == '}' || c == ']' ||
                std::isspace(static_cast<unsigned char>(c)))
                break;
            out.push_back(c);
            ++pos_;
        }
        return !out.empty();
    }

    bool
    quoted(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\' && pos_ + 1 < text_.size())
                ++pos_;
            out.push_back(text_[pos_++]);
        }
        return consume('"');
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : 0; }

    bool
    consume(char c)
    {
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    static bool
    fail(std::string &err, const char *what)
    {
        err = what;
        return false;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

std::string
runIdentity(const SimOptions &opt)
{
    std::ostringstream os;
    os << opt.benchmark << '|' << opt.scheme << '|' << opt.configLevel
       << '|' << opt.warmupInsts << '|' << opt.runInsts << '|'
       << opt.invalidationsPer1kCycles << '|' << opt.coherence << '|'
       << opt.safeLoads << '|' << opt.sqFilter << '|' << opt.numYlaQw
       << '|' << opt.tableEntriesOverride << '|' << opt.queueEntries
       << '|' << (opt.observers.empty() && !opt.tweak ? 0 : 1);
    return os.str();
}

std::string
campaignFingerprint(const std::vector<SimOptions> &runs)
{
    std::uint64_t h = 0;
    for (const SimOptions &opt : runs) {
        const std::string id = runIdentity(opt);
        h = hashBytes(id.data(), id.size(), h);
    }
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

bool
loadCampaignState(const std::string &path, CampaignState &out,
                  std::string &err)
{
    std::ifstream is(path);
    if (!is) {
        err = "cannot open '" + path + "'";
        return false;
    }
    std::stringstream buf;
    buf << is.rdbuf();
    const std::string text = buf.str();
    CampaignState state;
    StateParser parser(text);
    if (!parser.parse(state, err))
        return false;
    out = std::move(state);
    return true;
}

bool
saveCampaignState(const std::string &path, const CampaignState &state)
{
    std::ostringstream os;
    os << "{\"version\":" << kStateFormatVersion
       << ",\"fingerprint\":\"" << state.fingerprint
       << "\",\"runs\":[";
    bool first = true;
    for (const CampaignStateEntry &e : state.entries) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "  {\"benchmark\":\"" << jsonEscape(e.benchmark)
           << "\",\"scheme\":\"" << jsonEscape(e.scheme)
           << "\",\"config\":" << e.configLevel
           << ",\"status\":\"" << runStatusName(e.status)
           << "\",\"attempts\":" << e.attempts;
        if (!e.category.empty())
            os << ",\"category\":\"" << jsonEscape(e.category) << '"';
        if (!e.error.empty())
            os << ",\"error\":\"" << jsonEscape(e.error) << '"';
        os << '}';
    }
    os << "\n]}\n";

    if (!writeFileAtomic(path, os.str())) {
        warn("cannot publish campaign state '%s'", path.c_str());
        return false;
    }
    return true;
}

} // namespace dmdc
