/**
 * @file
 * Machine configuration presets.
 */

#include "sim/machine_config.hh"

#include "common/logging.hh"
#include "lsq/policy/registry.hh"
#include "sim/run_error.hh"

namespace dmdc
{

CoreParams
makeMachineConfig(unsigned level)
{
    CoreParams p;
    // Common Table 1 parameters: 8-wide core, combined predictor,
    // 7-cycle misprediction penalty, memory hierarchy defaults already
    // match (64KB/32KB/1MB, 2/2/15/120 cycles).
    switch (level) {
      case 1:
        p.intIqSize = 32;
        p.fpIqSize = 32;
        p.robSize = 128;
        p.lsq.lqSize = 48;
        p.lsq.sqSize = 32;
        p.intRegs = 100;
        p.fpRegs = 100;
        p.lsq.dmdc.tableEntries = 1024;
        break;
      case 2:
        p.intIqSize = 48;
        p.fpIqSize = 48;
        p.robSize = 256;
        p.lsq.lqSize = 96;
        p.lsq.sqSize = 48;
        p.intRegs = 200;
        p.fpRegs = 200;
        p.lsq.dmdc.tableEntries = 2048;
        break;
      case 3:
        p.intIqSize = 64;
        p.fpIqSize = 64;
        p.robSize = 512;
        p.lsq.lqSize = 192;
        p.lsq.sqSize = 64;
        p.intRegs = 400;
        p.fpRegs = 400;
        p.lsq.dmdc.tableEntries = 4096;
        break;
      default:
        // Structured (catchable) rather than fatal(): campaign
        // workers degrade a bad config into one failed run instead of
        // taking the whole process down.
        throw RunError(RunErrorCategory::Config,
                       "unknown machine configuration level " +
                           std::to_string(level) + " (use 1-3)");
    }
    return p;
}

void
applyScheme(CoreParams &params, const std::string &scheme,
            bool coherence, bool safe_loads)
{
    DmdcParams &d = params.lsq.dmdc;
    d.coherence = coherence;
    d.safeLoads = safe_loads;
    d.lineBytes = params.mem.l1d.lineBytes;

    const SchemeInfo &info =
        DependencePolicyRegistry::instance().lookup(scheme);
    params.lsq.policy = info.name;
    if (info.configure)
        info.configure(params);
}

} // namespace dmdc
