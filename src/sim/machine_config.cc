/**
 * @file
 * Machine configuration presets.
 */

#include "sim/machine_config.hh"

#include "common/logging.hh"

namespace dmdc
{

const char *
schemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Baseline:   return "baseline";
      case Scheme::YlaOnly:    return "yla";
      case Scheme::DmdcGlobal: return "dmdc-global";
      case Scheme::DmdcLocal:  return "dmdc-local";
      case Scheme::DmdcQueue:  return "dmdc-queue";
      case Scheme::AgeTable:   return "age-table";
    }
    return "?";
}

CoreParams
makeMachineConfig(unsigned level)
{
    CoreParams p;
    // Common Table 1 parameters: 8-wide core, combined predictor,
    // 7-cycle misprediction penalty, memory hierarchy defaults already
    // match (64KB/32KB/1MB, 2/2/15/120 cycles).
    switch (level) {
      case 1:
        p.intIqSize = 32;
        p.fpIqSize = 32;
        p.robSize = 128;
        p.lsq.lqSize = 48;
        p.lsq.sqSize = 32;
        p.intRegs = 100;
        p.fpRegs = 100;
        p.lsq.dmdc.tableEntries = 1024;
        break;
      case 2:
        p.intIqSize = 48;
        p.fpIqSize = 48;
        p.robSize = 256;
        p.lsq.lqSize = 96;
        p.lsq.sqSize = 48;
        p.intRegs = 200;
        p.fpRegs = 200;
        p.lsq.dmdc.tableEntries = 2048;
        break;
      case 3:
        p.intIqSize = 64;
        p.fpIqSize = 64;
        p.robSize = 512;
        p.lsq.lqSize = 192;
        p.lsq.sqSize = 64;
        p.intRegs = 400;
        p.fpRegs = 400;
        p.lsq.dmdc.tableEntries = 4096;
        break;
      default:
        fatal("unknown machine configuration level %u (use 1-3)",
              level);
    }
    return p;
}

void
applyScheme(CoreParams &params, Scheme scheme, bool coherence,
            bool safe_loads)
{
    DmdcParams &d = params.lsq.dmdc;
    d.coherence = coherence;
    d.safeLoads = safe_loads;
    d.lineBytes = params.mem.l1d.lineBytes;

    switch (scheme) {
      case Scheme::Baseline:
        params.lsq.scheme = LsqScheme::Conventional;
        break;
      case Scheme::YlaOnly:
        params.lsq.scheme = LsqScheme::YlaFiltered;
        break;
      case Scheme::DmdcGlobal:
        params.lsq.scheme = LsqScheme::Dmdc;
        d.variant = DmdcVariant::Global;
        d.useQueue = false;
        break;
      case Scheme::DmdcLocal:
        params.lsq.scheme = LsqScheme::Dmdc;
        d.variant = DmdcVariant::Local;
        d.useQueue = false;
        break;
      case Scheme::DmdcQueue:
        params.lsq.scheme = LsqScheme::Dmdc;
        d.variant = DmdcVariant::Global;
        d.useQueue = true;
        break;
      case Scheme::AgeTable:
        params.lsq.scheme = LsqScheme::AgeTable;
        params.lsq.ageTableEntries = d.tableEntries;
        break;
    }
}

} // namespace dmdc
