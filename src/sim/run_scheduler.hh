/**
 * @file
 * Pluggable placement of campaign runs onto worker threads.
 *
 * Two policies share one grouping rule — runs with equal journal
 * identity (benchmark, scheme, config) always co-locate, because
 * splitting a repeated triple across executors breaks the journal
 * merger's disjointness invariant and wastes duplicate simulations:
 *
 *  - StaticLpt: the shard partitioner's longest-processing-time
 *    greedy, applied to threads instead of processes. Deterministic
 *    placement, zero coordination after seeding; a worker that drains
 *    its bin stops. This is the same pure function `--shard` uses, so
 *    a thread-level and a process-level split of one campaign agree
 *    about who owns what.
 *
 *  - WorkStealing: the same LPT seeding, but a worker that drains its
 *    own deque steals the back half of the fullest victim's. Cost
 *    estimates (instruction budgets) are only estimates — timeouts,
 *    retries, and cache hits skew real run times — and stealing
 *    absorbs the skew without giving up the locality of the seed.
 *    Queues also accept runs submitted after workers have started,
 *    which is what lets the dmdc_serve daemon multiplex late-arriving
 *    campaigns onto one shared pool.
 *
 * The scheduler only decides *placement and order*; execution,
 * isolation, and caching stay in CampaignRunner.
 */

#ifndef DMDC_SIM_RUN_SCHEDULER_HH
#define DMDC_SIM_RUN_SCHEDULER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace dmdc
{

/** One schedulable unit: an opaque caller index plus what placement
 *  needs to know (co-location key and a cost estimate). */
struct ScheduledRun
{
    std::size_t index = 0;  ///< caller's handle (e.g. pending slot)
    std::string identity;   ///< journal identity; equal ids co-locate
    double cost = 0.0;      ///< estimated work (instruction budget)
};

/** A group of runs sharing one journal identity. */
struct RunGroup
{
    std::string key;
    std::uint64_t hash = 0; ///< deterministic tie-breaker
    double cost = 0.0;      ///< summed member cost
    std::vector<std::size_t> members; ///< indices into the run list
};

/** Group @p runs by journal identity, accumulating instruction-budget
 *  cost per group. Order of first appearance. */
std::vector<RunGroup> groupRunsByIdentity(
    const std::vector<SimOptions> &runs);

/**
 * Longest-processing-time greedy: big groups first, each placed on
 * the least-loaded of @p bins. Returns one bin per group. The (hash,
 * key) tie-breakers make the result a pure function of the input —
 * shardAssignment() and StaticLpt are both built on this.
 */
std::vector<unsigned> lptAssignGroups(const std::vector<RunGroup> &groups,
                                      unsigned bins);

/** Placement policies selectable via --scheduler. */
enum class SchedulerKind
{
    WorkStealing, ///< LPT-seeded deques + steal-half (default)
    StaticLpt,    ///< pure LPT partition, no rebalancing
};

const char *schedulerKindName(SchedulerKind kind);
bool parseSchedulerKind(const std::string &name, SchedulerKind &out,
                        std::string &err);

/**
 * Distributes ScheduledRuns across a fixed number of worker slots.
 * Thread-safe: each worker calls next() from its own thread, and
 * submit() may race with running workers (work-stealing only grows
 * queues; claimed runs never reappear).
 */
class RunScheduler
{
  public:
    virtual ~RunScheduler() = default;

    /** Place @p items across @p workers queues. Call once, before the
     *  workers start; later additions go through submit(). */
    virtual void seed(std::vector<ScheduledRun> items,
                      unsigned workers) = 0;

    /** Enqueue one more run after seeding (co-located by identity). */
    virtual void submit(ScheduledRun item) = 0;

    /**
     * Claim the next run for worker @p worker. Returns false when no
     * unclaimed run remains anywhere (for StaticLpt: in this worker's
     * bin). Each seeded/submitted run is returned exactly once across
     * all workers.
     */
    virtual bool next(unsigned worker, ScheduledRun &out) = 0;
};

std::unique_ptr<RunScheduler> makeRunScheduler(SchedulerKind kind);

} // namespace dmdc

#endif // DMDC_SIM_RUN_SCHEDULER_HH
