/**
 * @file
 * Campaign helpers: run a SimOptions template across the benchmark
 * suite and compare schemes, plus small table-formatting utilities
 * shared by the bench harnesses.
 */

#ifndef DMDC_SIM_CAMPAIGN_HH
#define DMDC_SIM_CAMPAIGN_HH

#include <cstddef>
#include <string>
#include <vector>

#include "sim/campaign_runner.hh"
#include "sim/simulator.hh"

namespace dmdc
{

/**
 * Run @p base once per benchmark in @p benchmarks (the template's
 * .benchmark field is overwritten). Progress is reported via inform().
 * Runs execute on CampaignRunner::global() — parallel across
 * benchmarks and memoized — with results in suite order, element-wise
 * identical to a serial loop over runSimulation().
 *
 * Failure tolerance: a failed / timed-out / out-of-shard run yields
 * an *invalid* result slot (SimResult::valid == false, identity
 * fields filled in) instead of killing the process; the aggregation
 * helpers skip invalid slots and the harness exits with
 * harnessExitCode() so degradation is visible to scripts.
 */
std::vector<SimResult> runSuite(const SimOptions &base,
                                const std::vector<std::string> &names,
                                bool verbose = true);

/**
 * Run an explicit campaign on the global runner, marking degraded
 * result slots invalid and feeding the process-wide degradation
 * counter behind harnessExitCode(). The bench harnesses call this
 * instead of touching the runner directly.
 */
CampaignResult runCampaignChecked(const std::vector<SimOptions> &runs,
                                  bool verbose = false);

/**
 * In-shard runs that degraded (failed / timed out / skipped) across
 * every runSuite() / runCampaignChecked() call so far.
 */
std::size_t harnessDegradedRuns();

/**
 * kExitOk when every run so far succeeded, kExitDegraded otherwise.
 * Every bench main() returns this: a figure with "n/a" cells still
 * prints, but scripts can tell it was degraded.
 */
int harnessExitCode();

/**
 * Per-benchmark slowdown (%) of @p test versus @p baseline, aggregated
 * over one group. Negative values are speedups.
 */
Range slowdownRange(const std::vector<SimResult> &baseline,
                    const std::vector<SimResult> &test, bool fp_group);

/**
 * Per-benchmark relative saving (%) of a metric between baseline and
 * test, aggregated over one group.
 */
template <typename Fn>
Range
savingRange(const std::vector<SimResult> &baseline,
            const std::vector<SimResult> &test, bool fp_group, Fn &&fn)
{
    const ResultLookup lookup(test);
    std::vector<double> v;
    v.reserve(baseline.size());
    for (const SimResult &b : baseline) {
        if (!b.valid || b.fp != fp_group)
            continue;
        const SimResult *t = lookup.find(b.benchmark);
        if (!t)
            continue; // degraded pair: drop from the aggregate
        const double base_val = fn(b);
        const double test_val = fn(*t);
        if (base_val > 0)
            v.push_back((base_val - test_val) / base_val * 100.0);
    }
    return makeRange(v);
}

// ---- formatting helpers ----

/** Print a bench banner. */
void printBanner(const std::string &title, const std::string &paper_ref);

/** "12.3" with fixed precision. */
std::string fmt(double v, int precision = 1);

/** "12.3%" from a fraction. */
std::string pct(double frac, int precision = 1);

/** "mean [min, max]" summary of a Range; "n/a" for an empty sample
 *  (every contributing run degraded). */
std::string rangeStr(const Range &r, int precision = 1);

/** Table cell for one result's metric: fmt(v) or "n/a" when the slot
 *  is invalid (degraded run). */
std::string cell(const SimResult &r, double v, int precision = 1);

} // namespace dmdc

#endif // DMDC_SIM_CAMPAIGN_HH
