/**
 * @file
 * Per-run result record and aggregation helpers (group means, ranges,
 * normalization) used by the benchmark harnesses.
 */

#ifndef DMDC_SIM_RESULTS_HH
#define DMDC_SIM_RESULTS_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "energy/energy_model.hh"
#include "sim/machine_config.hh"

namespace dmdc
{

/** Everything a bench needs from one (benchmark, config, scheme) run. */
struct SimResult
{
    std::string benchmark;
    bool fp = false;
    unsigned configLevel = 2;
    /** Canonical registry name of the scheme that produced the run. */
    std::string scheme = "baseline";

    /**
     * False for a degraded slot: the run failed, timed out, was
     * skipped, or belongs to another shard. Identity fields above are
     * filled in; every metric below is meaningless. Aggregations
     * (rangeOver, ResultLookup) skip invalid slots so a harness
     * renders "n/a" cells instead of poisoning group means.
     */
    bool valid = true;

    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    double ipc = 0;

    // Store-side filtering (YLA / baseline searches).
    std::uint64_t lqSearches = 0;
    std::uint64_t lqSearchesFiltered = 0;
    std::uint64_t sqSearches = 0;
    std::uint64_t sqSearchesFiltered = 0;
    std::uint64_t ageTableReplays = 0;
    std::uint64_t loadsOlderThanAllStores = 0;
    std::uint64_t committedLoads = 0;
    std::uint64_t committedStores = 0;

    // DMDC statistics (zero for non-DMDC schemes).
    double safeStoreFrac = 0;
    double safeLoadFrac = 0;
    double checkingCycleFrac = 0;
    double windowInstrs = 0;
    double windowLoads = 0;
    double windowSafeLoads = 0;
    double windowSingleStoreFrac = 0;
    double windowMarkedEntries = 0;

    // Replays, absolute counts.
    std::uint64_t dmdcReplays = 0;
    std::uint64_t baselineReplays = 0;
    std::uint64_t trueViolations = 0;
    std::uint64_t trueReplays = 0;
    std::uint64_t falseAddrX = 0;
    std::uint64_t falseAddrY = 0;
    std::uint64_t falseHashBefore = 0;
    std::uint64_t falseHashX = 0;
    std::uint64_t falseHashY = 0;
    std::uint64_t falseOverflow = 0;

    EnergyBreakdown energy;

    // Ordering-oracle verdict (all zero unless the run had --check).
    /** checkModeName() of the mode the run executed under. */
    std::string checkMode = "off";
    std::uint64_t oracleLoadsChecked = 0;
    std::uint64_t oracleStaleCommits = 0;
    /** Local + external + bogus-claim forbidden outcomes. */
    std::uint64_t oracleForbidden = 0;
    /** Invalidations delivered by the scripted coherence agent. */
    std::uint64_t agentInvalidations = 0;

    /** Events per million committed instructions. */
    double
    perMInst(double count) const
    {
        return instructions
            ? count * 1e6 / static_cast<double>(instructions) : 0.0;
    }

    double
    falseReplays() const
    {
        return static_cast<double>(falseAddrX + falseAddrY +
                                   falseHashBefore + falseHashX +
                                   falseHashY + falseOverflow);
    }
};

/** min / mean / max of a sample set. */
struct Range
{
    double min = 0;
    double mean = 0;
    double max = 0;
    std::size_t n = 0;
};

/** Compute a Range over @p values (empty input yields zeros). */
Range makeRange(const std::vector<double> &values);

/**
 * Pick a per-result metric over @p results, optionally restricted to
 * one group (fp / int), and aggregate.
 */
template <typename Fn>
Range
rangeOver(const std::vector<SimResult> &results, bool fp_group, Fn &&fn)
{
    std::vector<double> v;
    for (const SimResult &r : results) {
        if (r.valid && r.fp == fp_group)
            v.push_back(fn(r));
    }
    return makeRange(v);
}

/** Find the result for @p benchmark; fatal() if absent or invalid. */
const SimResult &findResult(const std::vector<SimResult> &results,
                            const std::string &benchmark);

/**
 * Repeated-lookup view over a result vector. Small campaigns keep the
 * linear scan (cheaper than building a map); past
 * kIndexThreshold results a name index is built once, turning the
 * per-benchmark comparison loops from O(n^2) into O(n).
 * The referenced vector must outlive the lookup and not be resized.
 */
class ResultLookup
{
  public:
    static constexpr std::size_t kIndexThreshold = 16;

    explicit ResultLookup(const std::vector<SimResult> &results);

    /** The result for @p benchmark; fatal() if absent or invalid. */
    const SimResult &at(const std::string &benchmark) const;

    /**
     * Degradation-tolerant lookup: nullptr when @p benchmark is
     * absent or its slot is invalid (failed / out-of-shard run).
     */
    const SimResult *find(const std::string &benchmark) const;

  private:
    const std::vector<SimResult> &results_;
    std::unordered_map<std::string, const SimResult *> index_;
};

} // namespace dmdc

#endif // DMDC_SIM_RESULTS_HH
