/**
 * @file
 * Campaign checkpoint manifest (campaign_state.json).
 *
 * A campaign's work list is an ordered vector of runs; the state file
 * records one entry per run with its terminal status so an
 * interrupted campaign can resume where it left off (completed runs
 * are then served from the run cache, pending/failed ones execute).
 * The manifest doubles as the work-list half of the ROADMAP's sharded
 * multi-process campaigns: a sharder can partition entries across
 * processes and merge the per-shard journals.
 *
 * The file is written atomically (write-to-temp + rename) after every
 * run completes, so a kill at any instant leaves a loadable manifest.
 * A fingerprint over the full run list guards against resuming a
 * manifest that belongs to a different campaign.
 */

#ifndef DMDC_SIM_CAMPAIGN_STATE_HH
#define DMDC_SIM_CAMPAIGN_STATE_HH

#include <string>
#include <vector>

#include "sim/run_error.hh"
#include "sim/simulator.hh"

namespace dmdc
{

/** One work item of the campaign manifest. */
struct CampaignStateEntry
{
    std::string benchmark;
    std::string scheme;
    unsigned configLevel = 2;
    RunStatus status = RunStatus::Pending;
    /** runErrorCategoryName() of the last failure; empty when ok. */
    std::string category;
    std::string error;
    unsigned attempts = 0;
};

/** The whole manifest. */
struct CampaignState
{
    std::string fingerprint;
    std::vector<CampaignStateEntry> entries;
};

/**
 * Stable identity of one run: every behavior-affecting SimOptions
 * field (attached observers / tweaks are flagged, not hashed). Feeds
 * campaignFingerprint(); unlike the cache key it does not include the
 * policy-registry source fingerprint, so a manifest survives rebuilds.
 */
std::string runIdentity(const SimOptions &opt);

/** Order-sensitive fingerprint over a campaign's full run list. */
std::string campaignFingerprint(const std::vector<SimOptions> &runs);

/**
 * Load @p path into @p out. Returns false with a reason in @p err
 * when the file is absent, unparsable, or a wrong format version —
 * callers treat all three as "start fresh".
 */
bool loadCampaignState(const std::string &path, CampaignState &out,
                       std::string &err);

/**
 * Atomically write @p state to @p path (write-to-temp + rename).
 * Returns false (after a warn()) when the file cannot be written;
 * checkpointing is best-effort and never takes a campaign down.
 */
bool saveCampaignState(const std::string &path,
                       const CampaignState &state);

} // namespace dmdc

#endif // DMDC_SIM_CAMPAIGN_STATE_HH
