/**
 * @file
 * Structured run failures.
 *
 * Library paths under src/sim report problems by throwing RunError
 * instead of calling fatal() (which exits the whole process and takes
 * an entire campaign down with it). panic() remains reserved for true
 * simulator-invariant violations — states that indicate a bug, not a
 * bad input or a flaky environment.
 *
 * The campaign engine catches RunError per run, converts it into a
 * RunOutcome, retries transient failures with backoff, and keeps the
 * rest of the campaign alive.
 */

#ifndef DMDC_SIM_RUN_ERROR_HH
#define DMDC_SIM_RUN_ERROR_HH

#include <stdexcept>
#include <string>

namespace dmdc
{

/** What kind of failure a RunError reports. */
enum class RunErrorCategory
{
    Config,       ///< invalid SimOptions / machine configuration
    SimInvariant, ///< the simulation itself misbehaved
    Cache,        ///< run-cache I/O problem (read race, bad entry)
    Timeout,      ///< watchdog: wall-clock or cycle budget exhausted
};

/** Stable lower-case name, as recorded in journals and manifests. */
inline const char *
runErrorCategoryName(RunErrorCategory c)
{
    switch (c) {
      case RunErrorCategory::Config:       return "config";
      case RunErrorCategory::SimInvariant: return "sim-invariant";
      case RunErrorCategory::Cache:        return "cache";
      case RunErrorCategory::Timeout:      return "timeout";
    }
    return "?";
}

/**
 * A categorized, catchable run failure. @p transient marks failures
 * that a bounded retry may clear (cache read races, injected chaos);
 * config errors and timeouts are permanent by construction.
 */
class RunError : public std::runtime_error
{
  public:
    RunError(RunErrorCategory category, const std::string &message,
             bool transient = false)
        : std::runtime_error(message), category_(category),
          transient_(transient ||
                     category == RunErrorCategory::Cache)
    {
    }

    RunErrorCategory category() const { return category_; }
    bool transient() const { return transient_; }

  private:
    RunErrorCategory category_;
    bool transient_;
};

/** Terminal state of one campaign run (or manifest work item). */
enum class RunStatus
{
    Pending,  ///< not yet executed (checkpoint manifests only)
    Ok,       ///< completed, result valid
    Failed,   ///< threw; result slot is default-constructed
    TimedOut, ///< watchdog fired; result slot is default-constructed
    Skipped,  ///< not executed (fail-fast abort or failed leader)
    /** Assigned to a different shard process (--shard=i/N); not
     *  executed here and never journaled here. */
    OutOfShard,
};

/** Stable lower-case name, as recorded in journals and manifests. */
inline const char *
runStatusName(RunStatus s)
{
    switch (s) {
      case RunStatus::Pending:  return "pending";
      case RunStatus::Ok:       return "ok";
      case RunStatus::Failed:   return "failed";
      case RunStatus::TimedOut: return "timed-out";
      case RunStatus::Skipped:  return "skipped";
      case RunStatus::OutOfShard: return "out-of-shard";
    }
    return "?";
}

/** Parse a runStatusName() spelling; false when unrecognized. */
inline bool
parseRunStatus(const std::string &text, RunStatus &out)
{
    for (RunStatus s : {RunStatus::Pending, RunStatus::Ok,
                        RunStatus::Failed, RunStatus::TimedOut,
                        RunStatus::Skipped, RunStatus::OutOfShard}) {
        if (text == runStatusName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

/** Per-run execution record the campaign engine fills in. */
struct RunOutcome
{
    RunStatus status = RunStatus::Ok;
    /** Meaningful only when !ok(). */
    RunErrorCategory category = RunErrorCategory::SimInvariant;
    /** Human-readable failure message; empty when ok(). */
    std::string error;
    /** Execution attempts (> 1 means the run was retried). */
    unsigned attempts = 1;
    /** Served from the memo/disk cache (or copied from a leader). */
    bool cached = false;
    double wallMs = 0.0;
    /** Shard this run was assigned to (always 0 unless sharded). */
    unsigned shard = 0;

    bool ok() const { return status == RunStatus::Ok; }

    /** This process's responsibility: false only for OutOfShard. */
    bool inShard() const { return status != RunStatus::OutOfShard; }
};

} // namespace dmdc

#endif // DMDC_SIM_RUN_ERROR_HH
