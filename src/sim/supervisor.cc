/**
 * @file
 * Shard-worker process supervision: spawn, heartbeat-watch, restart,
 * signal propagation, and in-process journal merging.
 */

#include "sim/supervisor.hh"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/atomic_file.hh"
#include "common/logging.hh"
#include "common/trace_sink.hh"
#include "sim/campaign_runner.hh"
#include "sim/campaign_shard.hh"
#include "sim/cli_options.hh"

namespace dmdc
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Interned-once trace identities for the supervision layer. */
struct SupervisorTrace
{
    TraceCategory &cat = traceCategory("supervisor");
    std::uint16_t launch = traceNameId("launch");
    std::uint16_t spawn = traceNameId("spawn");
    std::uint16_t done = traceNameId("worker-done");
    std::uint16_t restart = traceNameId("worker-restart");
    std::uint16_t failed = traceNameId("worker-failed");
    std::uint16_t drain = traceNameId("drain");
    std::uint16_t hungKill = traceNameId("hung-kill");
    std::uint16_t merge = traceNameId("merge");
};

SupervisorTrace &
supervisorTrace()
{
    static SupervisorTrace ids;
    return ids;
}

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
        Clock::now().time_since_epoch()).count();
}

// ---- worker-side signal protocol -------------------------------------

volatile std::sig_atomic_t g_workerSignals = 0;

extern "C" void
workerSignalHandler(int sig)
{
    // Second signal: the user wants out *now*; skip all cleanup.
    if (++g_workerSignals >= 2)
        _exit(128 + sig);
    requestCampaignInterrupt();
}

// ---- supervisor-side signal latch ------------------------------------

volatile std::sig_atomic_t g_supervisorSignals = 0;

extern "C" void
supervisorSignalHandler(int)
{
    ++g_supervisorSignals;
}

void
installSupervisorSignalHandlers()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = supervisorSignalHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

/** Read a whole file; empty optional semantics via bool return. */
bool
slurpFile(const std::string &path, std::string &out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::ostringstream ss;
    ss << is.rdbuf();
    out = ss.str();
    return true;
}

} // namespace

void
installWorkerSignalHandlers()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = workerSignalHandler;
    sigemptyset(&sa.sa_mask);
    // No SA_RESTART: a worker blocked in a long read should see EINTR
    // and fall into the interrupt path instead of finishing the call.
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

// ---- ShardSupervisor -------------------------------------------------

ShardSupervisor::ShardSupervisor(SupervisorOptions options)
    : opts_(std::move(options)), monitor_(opts_.hangDeadlineMs)
{
    if (opts_.procs == 0)
        opts_.procs = 1;
    workers_.resize(opts_.procs);
    for (unsigned i = 0; i < opts_.procs; ++i)
        workers_[i].shard = i;
}

std::string
ShardSupervisor::heartbeatPathFor(unsigned shard) const
{
    // Must mirror the worker: the runner derives its per-shard
    // heartbeat file from the base path with shardStatePath().
    return shardStatePath(opts_.launchDir + "/heartbeat.json",
                          ShardSpec{shard, opts_.procs});
}

std::string
ShardSupervisor::journalPathFor(unsigned shard) const
{
    if (opts_.procs == 1)
        return opts_.launchDir + "/journal.json";
    return opts_.launchDir + "/journal.shard" + std::to_string(shard) +
           "of" + std::to_string(opts_.procs) + ".json";
}

bool
ShardSupervisor::spawn(Worker &w)
{
    std::vector<std::string> args;
    args.push_back(opts_.workerBinary);
    for (const std::string &a : opts_.workerArgs)
        args.push_back(a);
    if (opts_.procs > 1) {
        args.push_back("--shard=" + std::to_string(w.shard) + "/" +
                       std::to_string(opts_.procs));
    }
    args.push_back("--state=" + opts_.launchDir + "/state.json");
    args.push_back("--heartbeat=" + opts_.launchDir +
                   "/heartbeat.json");
    args.push_back("--json=" + journalPathFor(w.shard));
    args.push_back("--json-deterministic");
    // Restarts always resume: completed runs are in the manifest/run
    // cache and must not re-simulate.
    if (opts_.resume || w.attempt > 0)
        args.push_back("--resume");

    std::vector<char *> argv;
    argv.reserve(args.size() + 1);
    for (std::string &a : args)
        argv.push_back(a.data());
    argv.push_back(nullptr);

    const std::string log_path = opts_.launchDir + "/shard" +
        std::to_string(w.shard) + ".log";
    const std::string attempt_env = std::to_string(w.attempt);

    const int pid = fork();
    if (pid < 0) {
        warn("supervisor: fork failed for shard %u: %s", w.shard,
             std::strerror(errno));
        return false;
    }
    if (pid == 0) {
        // Child: workers restore default signal dispositions (they
        // install their own handlers) and log to a per-shard file so
        // N campaign tables don't interleave on the launcher tty.
        signal(SIGINT, SIG_DFL);
        signal(SIGTERM, SIG_DFL);
        setenv("DMDC_SHARD_ATTEMPT", attempt_env.c_str(), 1);
        const int fd = open(log_path.c_str(),
                            O_WRONLY | O_CREAT | O_APPEND, 0644);
        if (fd >= 0) {
            dup2(fd, STDOUT_FILENO);
            dup2(fd, STDERR_FILENO);
            if (fd > STDERR_FILENO)
                close(fd);
        }
        execv(argv[0], argv.data());
        _exit(127);
    }

    w.pid = pid;
    w.state = WorkerState::Running;
    monitor_.track(w.shard, nowMs());
    traceInstantArg(supervisorTrace().cat, supervisorTrace().spawn,
                    w.shard);
    if (opts_.verbose) {
        inform("supervisor: shard %u/%u -> pid %d (attempt %u%s)",
               w.shard, opts_.procs, pid, w.attempt,
               (opts_.resume || w.attempt > 0) ? ", resuming" : "");
    }
    return true;
}

void
ShardSupervisor::handleExit(Worker &w, int waitStatus)
{
    monitor_.forget(w.shard);
    w.pid = -1;

    int code = -1;
    int sig = 0;
    if (WIFEXITED(waitStatus))
        code = WEXITSTATUS(waitStatus);
    else if (WIFSIGNALED(waitStatus))
        sig = WTERMSIG(waitStatus);

    if (stopping_) {
        // Whatever the worker's last word was, the launch is winding
        // down; it either drained cleanly (kExitInterrupted / 0 / 4)
        // or died under escalation. Both end its story here.
        w.state = (code == kExitOk || code == kExitDegraded ||
                   code == kExitInterrupted)
            ? WorkerState::Done : WorkerState::Failed;
        if (code == kExitDegraded)
            w.degraded = true;
        if (opts_.verbose)
            inform("supervisor: shard %u drained (exit %d)", w.shard,
                   code);
        return;
    }

    if (code == kExitOk || code == kExitDegraded) {
        w.state = WorkerState::Done;
        if (code == kExitDegraded)
            w.degraded = true;
        traceInstantArg(supervisorTrace().cat, supervisorTrace().done,
                        w.shard);
        if (opts_.verbose)
            inform("supervisor: shard %u done (exit %d)", w.shard,
                   code);
        return;
    }

    if (code == kExitUsage || code == 127) {
        // Bad argv or unexecutable binary: every restart would fail
        // the same way.
        warn("supervisor: shard %u exited %d (bad worker command "
             "line?); not restarting — see %s/shard%u.log",
             w.shard, code, opts_.launchDir.c_str(), w.shard);
        w.state = WorkerState::Failed;
        return;
    }

    // Crash (signal), unexpected interrupt, or failure: restart with
    // bounded retries. The restarted worker resumes from the shard's
    // checkpoint manifest, so completed runs never re-simulate.
    if (w.attempt < opts_.shardRetries) {
        ++w.attempt;
        traceInstantArg(supervisorTrace().cat,
                        supervisorTrace().restart, w.shard);
        if (sig) {
            warn("supervisor: shard %u killed by signal %d; "
                 "restarting (attempt %u of %u)",
                 w.shard, sig, w.attempt, opts_.shardRetries);
        } else {
            warn("supervisor: shard %u exited %d; restarting "
                 "(attempt %u of %u)",
                 w.shard, code, w.attempt, opts_.shardRetries);
        }
        w.state = WorkerState::Idle;
        if (!spawn(w))
            w.state = WorkerState::Failed;
        return;
    }

    warn("supervisor: shard %u failed after %u restart(s); giving up "
         "(manifest and journal kept in %s)",
         w.shard, w.attempt, opts_.launchDir.c_str());
    traceInstantArg(supervisorTrace().cat, supervisorTrace().failed,
                    w.shard);
    w.state = WorkerState::Failed;
}

void
ShardSupervisor::requestStop(int sig)
{
    stopping_ = true;
    traceInstant(supervisorTrace().cat, supervisorTrace().drain);
    inform("supervisor: signal received; asking workers to finish "
           "their in-flight run and checkpoint (signal again to "
           "force-kill)");
    for (Worker &w : workers_) {
        if (w.state == WorkerState::Running && w.pid > 0) {
            kill(w.pid, sig);
            w.state = WorkerState::Stopping;
            // Restart the staleness window: draining can legitimately
            // take one full in-flight run.
            monitor_.track(w.shard, nowMs());
        }
    }
}

void
ShardSupervisor::forceStop()
{
    warn("supervisor: second signal; force-killing workers");
    for (Worker &w : workers_) {
        if ((w.state == WorkerState::Running ||
             w.state == WorkerState::Stopping) && w.pid > 0)
            kill(w.pid, SIGKILL);
    }
}

int
ShardSupervisor::run()
{
    SupervisorTrace &st = supervisorTrace();
    TraceSpan launch_span(st.cat, st.launch);
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(opts_.launchDir, ec);
    if (ec) {
        warn("supervisor: cannot create launch dir '%s': %s",
             opts_.launchDir.c_str(), ec.message().c_str());
        return kExitFailure;
    }
    if (!opts_.resume) {
        // A fresh launch must not inherit a previous campaign's
        // manifests or journals. Remove only files this launcher
        // writes; the directory may be shared with user files.
        for (const auto &de : fs::directory_iterator(
                 opts_.launchDir,
                 fs::directory_options::skip_permission_denied, ec)) {
            const std::string name = de.path().filename().string();
            const bool ours = name.rfind("state.", 0) == 0 ||
                name.rfind("heartbeat.", 0) == 0 ||
                name.rfind("journal.", 0) == 0 ||
                name.rfind("shard", 0) == 0 || name == "merged.json";
            if (ours)
                fs::remove(de.path(), ec);
        }
    }

    installSupervisorSignalHandlers();
    for (Worker &w : workers_) {
        if (!spawn(w))
            w.state = WorkerState::Failed;
    }

    int seen_signals = 0;
    bool force_killed = false;
    for (;;) {
        bool alive = false;
        for (Worker &w : workers_) {
            if (w.state != WorkerState::Running &&
                w.state != WorkerState::Stopping)
                continue;
            alive = true;

            int status = 0;
            const int r = waitpid(w.pid, &status, WNOHANG);
            if (r == w.pid) {
                handleExit(w, status);
                continue;
            }

            // Feed the staleness monitor from the shard's heartbeat.
            HeartbeatRecord hb;
            std::string err;
            const bool haveBeat =
                readHeartbeat(heartbeatPathFor(w.shard), hb, err);
            if (haveBeat)
                monitor_.observe(w.shard, hb.counter, nowMs());
            if (monitor_.hung(w.shard, nowMs())) {
                // The last published phase tells the operator *what*
                // wedged: a worker silent in "draining" hung during
                // shutdown, not mid-simulation.
                warn("supervisor: shard %u heartbeat silent for "
                     "%.0f ms (deadline %.0f, last phase %s); "
                     "killing pid %d",
                     w.shard, monitor_.silentMs(w.shard, nowMs()),
                     monitor_.deadlineMs(),
                     haveBeat ? heartbeatPhaseName(hb.phase) : "unknown",
                     w.pid);
                kill(w.pid, SIGKILL);
                traceInstantArg(supervisorTrace().cat,
                                supervisorTrace().hungKill, w.shard);
                // Reaped (and restarted, if eligible) on the next
                // poll iteration.
                monitor_.track(w.shard, nowMs());
            }
        }
        if (!alive)
            break;

        const int signals = g_supervisorSignals;
        if (signals > seen_signals) {
            seen_signals = signals;
            if (!stopping_)
                requestStop(SIGTERM);
            else if (!force_killed) {
                forceStop();
                force_killed = true;
            }
        }

        std::this_thread::sleep_for(std::chrono::duration<double,
                                    std::milli>(opts_.pollIntervalMs));
    }

    if (stopping_) {
        inform("supervisor: interrupted; resume with the same command "
               "plus --resume (completed runs will not re-simulate)");
        return kExitInterrupted;
    }
    for (const Worker &w : workers_) {
        if (w.state == WorkerState::Failed)
            return kExitFailure;
    }

    const int merge_rc = mergeAndVerify();
    if (merge_rc != kExitOk)
        return merge_rc;
    for (const Worker &w : workers_) {
        if (w.degraded)
            return kExitDegraded;
    }
    return kExitOk;
}

int
ShardSupervisor::mergeAndVerify()
{
    TraceSpan merge_span(supervisorTrace().cat,
                         supervisorTrace().merge);
    const std::string out_path = opts_.journalPath.empty()
        ? opts_.launchDir + "/merged.json" : opts_.journalPath;

    std::string merged_text;
    if (opts_.procs == 1) {
        // A lone worker writes an unsharded deterministic journal —
        // already in canonical form; publishing is a copy, not a merge.
        if (!slurpFile(journalPathFor(0), merged_text)) {
            warn("supervisor: worker journal '%s' is missing",
                 journalPathFor(0).c_str());
            return kExitFailure;
        }
    } else {
        std::vector<ShardJournal> shards(opts_.procs);
        for (unsigned i = 0; i < opts_.procs; ++i) {
            std::string err;
            if (!loadShardJournal(journalPathFor(i), shards[i], err)) {
                warn("supervisor: %s", err.c_str());
                return kExitFailure;
            }
        }
        ShardJournal merged;
        std::string err;
        if (!mergeShardJournals(shards, merged, err)) {
            warn("supervisor: journal merge failed: %s", err.c_str());
            return kExitFailure;
        }
        std::ostringstream os;
        writeMergedJournal(os, merged);
        merged_text = os.str();
    }

    if (!writeFileAtomic(out_path, merged_text)) {
        warn("supervisor: cannot write merged journal '%s'",
             out_path.c_str());
        return kExitFailure;
    }

    // Round-trip verification: re-read the published file, re-parse,
    // re-serialize, and demand byte identity with what a serial
    // --json-deterministic run would produce. Any drift here means
    // the canonical-form contract broke.
    std::string published;
    ShardJournal check;
    std::string err;
    if (!slurpFile(out_path, published) ||
        !parseShardJournal(published, check, err)) {
        warn("supervisor: merged journal '%s' fails verification: %s",
             out_path.c_str(), err.c_str());
        return kExitFailure;
    }
    std::ostringstream canon;
    writeMergedJournal(canon, check);
    if (canon.str() != published) {
        warn("supervisor: merged journal '%s' is not in canonical "
             "serial form", out_path.c_str());
        return kExitFailure;
    }
    inform("supervisor: merged journal -> %s (%zu records, verified "
           "canonical)", out_path.c_str(), check.entries.size());
    return kExitOk;
}

} // namespace dmdc
