/**
 * @file
 * Invalidation injector implementation.
 */

#include "sim/invalidation.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace dmdc
{

InvalidationInjector::InvalidationInjector(double rate_per_1k_cycles,
                                           Addr data_base,
                                           Addr data_size,
                                           unsigned line_bytes,
                                           std::uint64_t seed)
    : probPerCycle_(rate_per_1k_cycles / 1000.0), base_(data_base),
      sizeMask_(data_size - 1), lineBytes_(line_bytes), rng_(seed)
{
    if (!isPowerOf2(data_size))
        fatal("invalidation region size must be a power of two");
}

void
InvalidationInjector::tick(Pipeline &pipe)
{
    if (probPerCycle_ <= 0.0)
        return;
    // Support rates above one per cycle by splitting into whole and
    // fractional parts.
    double budget = probPerCycle_;
    while (budget >= 1.0 || (budget > 0.0 && rng_.chance(budget))) {
        const Addr line = (base_ + (rng_.next() & sizeMask_)) &
            ~Addr{lineBytes_ - 1};
        pipe.externalInvalidation(line);
        ++injected_;
        budget -= 1.0;
    }
}

} // namespace dmdc
