/**
 * @file
 * Campaign service mode: the dmdc_serve daemon and its client.
 *
 * A daemon binds a Unix-domain socket and multiplexes campaigns from
 * any number of concurrent clients onto one shared work-stealing
 * worker pool. Every submitted run is deduplicated by its cache key
 * into a RunTicket: when two clients submit overlapping (benchmark,
 * scheme, config) work, the overlap is simulated exactly once and
 * both campaigns share the result. Per-campaign journals are
 * assembled through the same canonical serializer the shard merger
 * uses, so a journal retrieved over the socket is byte-identical to
 * the one a serial `dmdc_sim --json-deterministic` run writes.
 *
 * Wire protocol (version kServiceProtocolVersion): length-prefixed
 * JSON frames — a 4-byte big-endian payload length followed by one
 * JSON object. Requests carry an "op" field; replies carry "ok"
 * (bool) plus op-specific fields, or "error" when ok is false.
 *
 *   hello     -> {server, protocol, commit, cache_format,
 *                 policy_revision, pid}
 *   submit    {runs:[{benchmark,scheme,config,warmup,insts,...}]}
 *             -> {campaign, runs}
 *   status    {campaign} -> {state, completed, total}
 *   results   {campaign, wait?} -> {state, journal}
 *   cancel    {campaign} -> {cancelled}
 *   stats     -> {campaigns, submitted, unique, dedup_hits,
 *                 executed, simulated}
 *   shutdown  -> {stopping}
 *
 * The hello reply doubles as the version handshake: a client refuses
 * to talk to a daemon whose commit, cache format version, or policy
 * registry revision differ from its own, because results crossing
 * such a boundary are not comparable (same rule the shard journal
 * merger enforces).
 */

#ifndef DMDC_SIM_SERVICE_HH
#define DMDC_SIM_SERVICE_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"
#include "sim/campaign_runner.hh"

namespace dmdc
{

/** Wire protocol version; bumped on any incompatible frame change. */
constexpr unsigned kServiceProtocolVersion = 1;

/** Upper bound on one frame's payload (a journal easily fits). */
constexpr std::uint32_t kServiceMaxFrame = 64u * 1024 * 1024;

// ---- frame I/O -------------------------------------------------------

/** Write one length-prefixed frame to @p fd. False + @p err on any
 *  short write or I/O error. */
bool writeFrame(int fd, const std::string &payload, std::string &err);

/**
 * Read one frame from @p fd into @p out. False + empty @p err on
 * clean EOF before the length prefix (peer hung up); false + message
 * on torn frames, oversized lengths, or I/O errors.
 */
bool readFrame(int fd, std::string &out, std::string &err);

// ---- handshake -------------------------------------------------------

/** The identity triple both ends of the handshake compare. */
struct ServiceIdentity
{
    std::string commit;         ///< buildCommit()
    unsigned cacheFormat = 0;   ///< kCacheFormatVersion
    std::string policyRevision; ///< policySourceFingerprint()
};

/** This process's identity (what dmdc_sim --version prints). */
ServiceIdentity localServiceIdentity();

// ---- daemon ----------------------------------------------------------

struct ServiceOptions
{
    /** Socket path; an existing file there is replaced on start(). */
    std::string socketPath = "dmdc_serve.sock";
    /** Simulation worker threads (0 = all cores). */
    unsigned workers = 0;
    /** Campaign engine knobs shared by every worker (cache dir, cap,
     *  timeouts, retries). Scheduler/shard/journal fields are owned
     *  by the daemon and ignored. */
    CampaignConfig campaign;
    /** Heartbeat file (see heartbeat.hh); empty disables. The daemon
     *  publishes progress-based beats exactly like a shard worker, so
     *  the same supervisor machinery can watch it. */
    std::string heartbeatPath;
    bool verbose = false;
};

/** Daemon-lifetime accounting (the `stats` op). */
struct ServiceStats
{
    std::uint64_t campaigns = 0;  ///< campaigns accepted
    std::uint64_t submitted = 0;  ///< run specs received
    std::uint64_t unique = 0;     ///< distinct cache keys (tickets)
    std::uint64_t dedupHits = 0;  ///< submits folded into a ticket
    std::uint64_t executed = 0;   ///< tickets run to completion
    std::uint64_t simulated = 0;  ///< executed minus cache hits
};

/**
 * The dmdc_serve daemon. start() binds and spawns the worker pool,
 * serve() accepts connections until requestStop() (or a client
 * shutdown op), then drains: in-flight runs finish, still-queued
 * tickets complete as Skipped.
 */
class ServiceDaemon
{
  public:
    explicit ServiceDaemon(ServiceOptions options);
    ~ServiceDaemon();

    ServiceDaemon(const ServiceDaemon &) = delete;
    ServiceDaemon &operator=(const ServiceDaemon &) = delete;

    /** Bind the socket and start the worker pool. */
    bool start(std::string &err);

    /** Accept/dispatch until stopped. Returns a process exit code. */
    int serve();

    /** Ask serve() to wind down (async-signal-safe: sets a flag the
     *  accept loop polls). */
    void requestStop() { stopRequested_.store(true); }

    const ServiceOptions &options() const { return options_; }
    ServiceStats statsSnapshot() const;

  private:
    struct Impl;
    ServiceOptions options_;
    std::atomic<bool> stopRequested_{false};
    Impl *impl_; ///< raw: Impl is defined only in service.cc

    friend struct Impl;
};

// ---- client ----------------------------------------------------------

/**
 * One connection to a dmdc_serve daemon. Methods are synchronous
 * request/reply; any transport or protocol error closes the
 * connection and is reported through @p err.
 */
class ServiceClient
{
  public:
    ServiceClient() = default;
    ~ServiceClient();

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /**
     * Connect and run the version handshake: false (with a message
     * naming the mismatched field) when the daemon's commit, cache
     * format, or policy revision differ from this binary's.
     */
    bool connect(const std::string &socketPath, std::string &err);

    /** Skip-handshake connect (tests; the shutdown-only path). */
    bool connectRaw(const std::string &socketPath, std::string &err);

    /** Send @p request, parse the reply. False + @p err on transport
     *  failure, malformed JSON, or an ok:false reply. */
    bool request(const std::string &request, JsonValue &reply,
                 std::string &err);

    /** The daemon's hello (valid after connect()). */
    const ServiceIdentity &daemonIdentity() const { return daemon_; }

    bool connected() const { return fd_ >= 0; }
    void close();

  private:
    int fd_ = -1;
    ServiceIdentity daemon_;
};

/**
 * Serialize one campaign run for the submit op. Only cacheable
 * SimOptions fields cross the wire (observers/tweak cannot); the
 * daemon validates with validateSimOptions() before accepting.
 */
std::string serviceRunSpecJson(const SimOptions &opt);

/** Parse a submit run spec into @p out. False + @p err on missing or
 *  ill-typed fields. */
bool parseServiceRunSpec(const JsonValue &spec, SimOptions &out,
                         std::string &err);

} // namespace dmdc

#endif // DMDC_SIM_SERVICE_HH
