/**
 * @file
 * Campaign service mode: the dmdc_serve daemon and its client.
 *
 * A daemon binds a Unix-domain socket and multiplexes campaigns from
 * any number of concurrent clients onto one shared work-stealing
 * worker pool. Every submitted run is deduplicated by its cache key
 * into a RunTicket: when two clients submit overlapping (benchmark,
 * scheme, config) work, the overlap is simulated exactly once and
 * both campaigns share the result. Per-campaign journals are
 * assembled through the same canonical serializer the shard merger
 * uses, so a journal retrieved over the socket is byte-identical to
 * the one a serial `dmdc_sim --json-deterministic` run writes.
 *
 * Wire protocol (version kServiceProtocolVersion): length-prefixed
 * JSON frames — a 4-byte big-endian payload length followed by one
 * JSON object. Requests carry an "op" field; replies carry "ok"
 * (bool) plus op-specific fields, or "error" when ok is false.
 *
 *   hello     -> {server, protocol, commit, cache_format,
 *                 policy_revision, pid}
 *   submit    {runs:[{benchmark,scheme,config,warmup,insts,...}]}
 *             -> {campaign, runs}
 *   status    {campaign} -> {state, completed, total}
 *   results   {campaign, wait?} -> {state, journal}
 *   cancel    {campaign} -> {cancelled}
 *   stats     -> {campaigns, submitted, unique, dedup_hits,
 *                 executed, simulated, recovered, overloaded,
 *                 orphaned, io_timeouts, protocol_errors}
 *   shutdown  -> {stopping}
 *
 * Error replies may carry a machine-readable "code" plus
 * "retryable" (bool) and "retry_after_ms" fields. Codes:
 *
 *   overloaded  admission control refused the connection or submit;
 *               retryable — back off retry_after_ms and resubmit
 *   draining    the daemon is shutting down; retryable against a
 *               restarted daemon
 *   protocol    the request frame or JSON was malformed; permanent
 *
 * The hello reply doubles as the version handshake: a client refuses
 * to talk to a daemon whose commit, cache format version, or policy
 * registry revision differ from its own, because results crossing
 * such a boundary are not comparable (same rule the shard journal
 * merger enforces).
 *
 * Crash safety: with durable tickets enabled (the default when a
 * cache directory is configured) every ticket's submit/start/finish
 * is journaled to `<cache-dir>/tickets.log` (sim/ticket_log.hh). A
 * daemon restarted over the same cache directory replays unfinished
 * tickets into its queue before accepting connections, so work
 * submitted before a SIGKILL completes after a restart and is never
 * simulated more than once beyond what was in flight at the kill.
 * Campaign ids are *not* durable — a client that loses its daemon
 * resubmits and the cache/ticket dedup makes the resubmission free.
 */

#ifndef DMDC_SIM_SERVICE_HH
#define DMDC_SIM_SERVICE_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"
#include "sim/campaign_runner.hh"

namespace dmdc
{

/** Wire protocol version; bumped on any incompatible frame change.
 *  v2 added structured error codes and overload admission frames. */
constexpr unsigned kServiceProtocolVersion = 2;

/** Upper bound on one frame's payload (a journal easily fits). */
constexpr std::uint32_t kServiceMaxFrame = 64u * 1024 * 1024;

// ---- frame I/O -------------------------------------------------------

/** Write one length-prefixed frame to @p fd. False + @p err on any
 *  short write or I/O error. Signal-safe: EINTR and partial writes
 *  are retried, and SIGPIPE is suppressed (MSG_NOSIGNAL) so a
 *  vanished peer surfaces as EPIPE, not process death. */
bool writeFrame(int fd, const std::string &payload, std::string &err);

/**
 * Read one frame from @p fd into @p out. False + empty @p err on
 * clean EOF before the length prefix (peer hung up); false + message
 * on torn frames, oversized lengths, or I/O errors. Signal-safe:
 * EINTR and partial reads are retried.
 */
bool readFrame(int fd, std::string &out, std::string &err);

/**
 * writeFrame with a deadline: the whole frame must be written within
 * @p timeoutMs (<= 0 means no deadline). Progress is made with
 * non-blocking poll+send rounds, so a peer that stops reading cannot
 * park this thread past the deadline; on expiry @p err contains
 * "timed out".
 */
bool writeFrameTimed(int fd, const std::string &payload, int timeoutMs,
                     std::string &err);

/**
 * readFrame with deadlines: @p headerTimeoutMs bounds the wait for
 * the first length byte (an idle, connected peer), @p bodyTimeoutMs
 * bounds the rest of the frame once the header arrived (a peer that
 * started a frame must finish it promptly). <= 0 disables either
 * deadline; on expiry @p err contains "timed out".
 */
bool readFrameTimed(int fd, std::string &out, int headerTimeoutMs,
                    int bodyTimeoutMs, std::string &err);

// ---- handshake -------------------------------------------------------

/** The identity triple both ends of the handshake compare. */
struct ServiceIdentity
{
    std::string commit;         ///< buildCommit()
    unsigned cacheFormat = 0;   ///< kCacheFormatVersion
    std::string policyRevision; ///< policySourceFingerprint()
};

/** This process's identity (what dmdc_sim --version prints). */
ServiceIdentity localServiceIdentity();

// ---- daemon ----------------------------------------------------------

struct ServiceOptions
{
    /** Socket path. start() probes an existing file there: a dead
     *  owner's socket is reclaimed, a live daemon's is refused. */
    std::string socketPath = "dmdc_serve.sock";
    /** Simulation worker threads (0 = all cores). */
    unsigned workers = 0;
    /** Campaign engine knobs shared by every worker (cache dir, cap,
     *  timeouts, retries). Scheduler/shard/journal fields are owned
     *  by the daemon and ignored. */
    CampaignConfig campaign;
    /** Heartbeat file (see heartbeat.hh); empty disables. The daemon
     *  publishes progress-based beats exactly like a shard worker, so
     *  the same supervisor machinery can watch it. */
    std::string heartbeatPath;
    bool verbose = false;

    // ---- robustness knobs ----

    /** Admission cap on concurrent connections (0 = unlimited). An
     *  over-cap accept gets one `overloaded` frame and is closed. */
    unsigned maxConnections = 64;
    /** Admission cap on queued-not-yet-claimed tickets (0 =
     *  unlimited). A submit that would exceed it is refused whole
     *  with a retryable `overloaded` error. */
    std::size_t maxQueuedTickets = 4096;
    /** Deadline for reading a started frame's body and for writing a
     *  reply (<= 0 disables). A stalled client trips it and loses its
     *  connection; workers and other clients are unaffected. */
    int ioTimeoutMs = 30000;
    /** Grace period before a campaign no connection holds is
     *  orphan-cancelled (incomplete) or garbage-collected (done).
     *  Covers the documented submit-then-exit / fetch-later workflow
     *  (<= 0 disables reaping). */
    int orphanGraceMs = 600000;
    /** Journal tickets to <cache-dir>/tickets.log and replay
     *  unfinished work on start (no-op without a cache dir). */
    bool durableTickets = true;
    /** Test hook: shrink accepted sockets' SO_SNDBUF so reply
     *  backpressure triggers quickly (0 = kernel default). */
    int sendBufBytes = 0;
};

/** Daemon-lifetime accounting (the `stats` op). */
struct ServiceStats
{
    std::uint64_t campaigns = 0;  ///< campaigns accepted
    std::uint64_t submitted = 0;  ///< run specs received
    std::uint64_t unique = 0;     ///< distinct cache keys (tickets)
    std::uint64_t dedupHits = 0;  ///< submits folded into a ticket
    std::uint64_t executed = 0;   ///< tickets run to completion
    std::uint64_t simulated = 0;  ///< executed minus cache hits
    std::uint64_t recovered = 0;  ///< tickets replayed from the log
    std::uint64_t overloaded = 0; ///< connections/submits refused
    std::uint64_t orphaned = 0;   ///< campaigns orphan-cancelled
    std::uint64_t ioTimeouts = 0; ///< connections dropped on deadline
    std::uint64_t protocolErrors = 0; ///< malformed frames/requests
};

/**
 * The dmdc_serve daemon. start() binds and spawns the worker pool,
 * serve() accepts connections until requestStop() (or a client
 * shutdown op), then drains: in-flight runs finish, still-queued
 * tickets complete as Skipped.
 */
class ServiceDaemon
{
  public:
    explicit ServiceDaemon(ServiceOptions options);
    ~ServiceDaemon();

    ServiceDaemon(const ServiceDaemon &) = delete;
    ServiceDaemon &operator=(const ServiceDaemon &) = delete;

    /** Bind the socket and start the worker pool. */
    bool start(std::string &err);

    /** Accept/dispatch until stopped. Returns a process exit code. */
    int serve();

    /** Ask serve() to wind down (async-signal-safe: sets a flag the
     *  accept loop polls). */
    void requestStop() { stopRequested_.store(true); }

    const ServiceOptions &options() const { return options_; }
    ServiceStats statsSnapshot() const;

  private:
    struct Impl;
    ServiceOptions options_;
    std::atomic<bool> stopRequested_{false};
    Impl *impl_; ///< raw: Impl is defined only in service.cc

    friend struct Impl;
};

// ---- client ----------------------------------------------------------

/**
 * One connection to a dmdc_serve daemon. Methods are synchronous
 * request/reply; any transport or protocol error closes the
 * connection and is reported through @p err.
 */
class ServiceClient
{
  public:
    ServiceClient() = default;
    ~ServiceClient();

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /**
     * Connect and run the version handshake: false (with a message
     * naming the mismatched field) when the daemon's commit, cache
     * format, or policy revision differ from this binary's.
     */
    bool connect(const std::string &socketPath, std::string &err);

    /** Skip-handshake connect (tests; the shutdown-only path). */
    bool connectRaw(const std::string &socketPath, std::string &err);

    /**
     * connect() with bounded exponential backoff: up to @p attempts
     * tries, sleeping baseDelayMs, 2*baseDelayMs, ... (capped at 5 s)
     * between them. Retries transport failures (daemon restarting,
     * socket not yet bound, connection refused) and retryable daemon
     * refusals; a handshake identity mismatch fails immediately —
     * waiting cannot make an incompatible daemon compatible.
     */
    bool connectWithRetry(const std::string &socketPath,
                          unsigned attempts, int baseDelayMs,
                          std::string &err);

    /** Send @p request, parse the reply. False + @p err on transport
     *  failure, malformed JSON, or an ok:false reply. */
    bool request(const std::string &request, JsonValue &reply,
                 std::string &err);

    /**
     * Machine-readable classification of the last request() failure:
     * the reply's "code" field when the daemon sent one, else "io"
     * (transport died), "protocol" (unparseable reply), "mismatch"
     * (handshake refusal), or "" after success. `io`, `overloaded`
     * and `draining` are worth retrying; the rest are permanent.
     */
    const std::string &lastErrorCode() const { return lastCode_; }

    /** retry_after_ms from the last refusal (0 when absent). */
    int retryAfterMs() const { return retryAfterMs_; }

    /** The daemon's hello (valid after connect()). */
    const ServiceIdentity &daemonIdentity() const { return daemon_; }

    bool connected() const { return fd_ >= 0; }
    void close();

  private:
    int fd_ = -1;
    ServiceIdentity daemon_;
    std::string lastCode_;
    int retryAfterMs_ = 0;
};

/**
 * Serialize one campaign run for the submit op. Only cacheable
 * SimOptions fields cross the wire (observers/tweak cannot); the
 * daemon validates with validateSimOptions() before accepting.
 */
std::string serviceRunSpecJson(const SimOptions &opt);

/** Parse a submit run spec into @p out. False + @p err on missing or
 *  ill-typed fields. */
bool parseServiceRunSpec(const JsonValue &spec, SimOptions &out,
                         std::string &err);

} // namespace dmdc

#endif // DMDC_SIM_SERVICE_HH
