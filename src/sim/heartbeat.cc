/**
 * @file
 * Heartbeat serialization and the supervisor-side staleness monitor.
 */

#include "sim/heartbeat.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/atomic_file.hh"

namespace dmdc
{

namespace
{

constexpr unsigned kHeartbeatFormatVersion = 1;

} // namespace

const char *
heartbeatPhaseName(HeartbeatPhase phase)
{
    switch (phase) {
      case HeartbeatPhase::Starting:    return "starting";
      case HeartbeatPhase::Running:     return "running";
      case HeartbeatPhase::Interrupted: return "interrupted";
      case HeartbeatPhase::Draining:    return "draining";
      case HeartbeatPhase::Done:        return "done";
    }
    return "?";
}

bool
parseHeartbeatPhase(const std::string &text, HeartbeatPhase &out)
{
    for (HeartbeatPhase p :
         {HeartbeatPhase::Starting, HeartbeatPhase::Running,
          HeartbeatPhase::Interrupted, HeartbeatPhase::Draining,
          HeartbeatPhase::Done}) {
        if (text == heartbeatPhaseName(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

bool
writeHeartbeat(const std::string &path, const HeartbeatRecord &record)
{
    std::ostringstream os;
    os << "{\"version\":" << kHeartbeatFormatVersion
       << ",\"pid\":" << record.pid
       << ",\"counter\":" << record.counter
       << ",\"completed\":" << record.completed
       << ",\"runs_total\":" << record.runsTotal
       << ",\"phase\":\"" << heartbeatPhaseName(record.phase)
       << "\"}\n";
    return writeFileAtomic(path, os.str());
}

bool
readHeartbeat(const std::string &path, HeartbeatRecord &out,
              std::string &err)
{
    std::ifstream is(path);
    if (!is) {
        err = "cannot open heartbeat '" + path + "'";
        return false;
    }
    std::stringstream buf;
    buf << is.rdbuf();
    const std::string text = buf.str();

    // Flat single-object grammar, exactly what writeHeartbeat() emits.
    HeartbeatRecord rec;
    std::size_t pos = 0;
    auto skipWs = [&] {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    };
    auto consume = [&](char c) {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    };
    auto quoted = [&](std::string &s) {
        if (!consume('"'))
            return false;
        s.clear();
        while (pos < text.size() && text[pos] != '"')
            s.push_back(text[pos++]);
        return consume('"');
    };
    auto scalar = [&](std::string &s) {
        if (text[pos] == '"')
            return quoted(s);
        s.clear();
        while (pos < text.size() && text[pos] != ',' &&
               text[pos] != '}' &&
               !std::isspace(static_cast<unsigned char>(text[pos])))
            s.push_back(text[pos++]);
        return !s.empty();
    };

    skipWs();
    if (!consume('{')) {
        err = "heartbeat '" + path + "' is not a JSON object";
        return false;
    }
    skipWs();
    bool version_ok = false;
    while (!consume('}')) {
        std::string key, value;
        if (!quoted(key) || (skipWs(), !consume(':')) ||
            (skipWs(), !scalar(value))) {
            err = "heartbeat '" + path + "' is malformed";
            return false;
        }
        if (key == "version") {
            version_ok = std::strtoul(value.c_str(), nullptr, 10) ==
                kHeartbeatFormatVersion;
        } else if (key == "pid") {
            rec.pid = static_cast<int>(
                std::strtol(value.c_str(), nullptr, 10));
        } else if (key == "counter") {
            rec.counter = std::strtoull(value.c_str(), nullptr, 10);
        } else if (key == "completed") {
            rec.completed = std::strtoull(value.c_str(), nullptr, 10);
        } else if (key == "runs_total") {
            rec.runsTotal = std::strtoull(value.c_str(), nullptr, 10);
        } else if (key == "phase") {
            if (!parseHeartbeatPhase(value, rec.phase)) {
                err = "heartbeat '" + path + "' has unknown phase '" +
                      value + "'";
                return false;
            }
        }
        skipWs();
        if (consume(','))
            skipWs();
    }
    if (!version_ok) {
        err = "heartbeat '" + path + "' has a foreign format version";
        return false;
    }
    out = rec;
    return true;
}

// ---- HeartbeatMonitor ------------------------------------------------

void
HeartbeatMonitor::track(unsigned shard, double nowMs)
{
    State s;
    s.lastChangeMs = nowMs;
    shards_[shard] = s;
}

void
HeartbeatMonitor::observe(unsigned shard, std::uint64_t counter,
                          double nowMs)
{
    auto it = shards_.find(shard);
    if (it == shards_.end())
        return;
    State &s = it->second;
    if (!s.observed || s.counter != counter) {
        s.observed = true;
        s.counter = counter;
        s.lastChangeMs = nowMs;
    }
}

void
HeartbeatMonitor::forget(unsigned shard)
{
    shards_.erase(shard);
}

double
HeartbeatMonitor::silentMs(unsigned shard, double nowMs) const
{
    auto it = shards_.find(shard);
    if (it == shards_.end())
        return 0.0;
    return nowMs - it->second.lastChangeMs;
}

bool
HeartbeatMonitor::hung(unsigned shard, double nowMs) const
{
    if (deadlineMs_ <= 0.0 || !shards_.count(shard))
        return false;
    return silentMs(shard, nowMs) > deadlineMs_;
}

} // namespace dmdc
