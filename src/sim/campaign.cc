/**
 * @file
 * Campaign helper implementation.
 */

#include "sim/campaign.hh"

#include <cstdio>

#include "common/logging.hh"
#include "sim/campaign_runner.hh"

namespace dmdc
{

std::vector<SimResult>
runSuite(const SimOptions &base, const std::vector<std::string> &names,
         bool verbose)
{
    std::vector<SimOptions> runs;
    runs.reserve(names.size());
    for (const std::string &name : names) {
        SimOptions opt = base;
        opt.benchmark = name;
        runs.push_back(std::move(opt));
    }
    return CampaignRunner::global().run(runs, verbose);
}

Range
slowdownRange(const std::vector<SimResult> &baseline,
              const std::vector<SimResult> &test, bool fp_group)
{
    const ResultLookup lookup(test);
    std::vector<double> v;
    v.reserve(baseline.size());
    for (const SimResult &b : baseline) {
        if (b.fp != fp_group)
            continue;
        const SimResult &t = lookup.at(b.benchmark);
        // Compare cycles per instruction; runs commit the same
        // instruction budget.
        const double base_cpi = static_cast<double>(b.cycles) /
            static_cast<double>(b.instructions);
        const double test_cpi = static_cast<double>(t.cycles) /
            static_cast<double>(t.instructions);
        v.push_back((test_cpi - base_cpi) / base_cpi * 100.0);
    }
    return makeRange(v);
}

void
printBanner(const std::string &title, const std::string &paper_ref)
{
    std::printf("\n");
    std::printf("==========================================================="
                "=====================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces: %s\n", paper_ref.c_str());
    std::printf("==========================================================="
                "=====================\n");
}

std::string
fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
pct(double frac, int precision)
{
    return fmt(frac * 100.0, precision) + "%";
}

std::string
rangeStr(const Range &r, int precision)
{
    return fmt(r.mean, precision) + " [" + fmt(r.min, precision) +
        ", " + fmt(r.max, precision) + "]";
}

} // namespace dmdc
