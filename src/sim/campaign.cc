/**
 * @file
 * Campaign helper implementation.
 */

#include "sim/campaign.hh"

#include <atomic>
#include <cstdio>

#include "common/logging.hh"
#include "sim/campaign_runner.hh"
#include "sim/cli_options.hh"
#include "trace/spec_suite.hh"

namespace dmdc
{

namespace
{

/** Degraded in-shard runs across the process lifetime. */
std::atomic<std::size_t> g_degraded{0};

/** spec_suite group of @p name; tolerant of unknown names (a run may
 *  have failed precisely because its benchmark doesn't exist). */
bool
isFpBenchmark(const std::string &name)
{
    for (const std::string &fp : specFpNames()) {
        if (fp == name)
            return true;
    }
    return false;
}

} // namespace

CampaignResult
runCampaignChecked(const std::vector<SimOptions> &runs, bool verbose)
{
    CampaignResult cr =
        CampaignRunner::global().runChecked(runs, verbose);
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const RunOutcome &oc = cr.outcomes[i];
        if (oc.ok())
            continue;
        if (oc.inShard())
            g_degraded.fetch_add(1, std::memory_order_relaxed);
        // Give the degraded slot its identity so tables can still
        // label the row; valid=false keeps it out of aggregates.
        SimResult &r = cr.results[i];
        r.benchmark = runs[i].benchmark;
        r.scheme = runs[i].scheme;
        r.configLevel = runs[i].configLevel;
        r.fp = isFpBenchmark(runs[i].benchmark);
        r.valid = false;
    }
    return cr;
}

std::size_t
harnessDegradedRuns()
{
    return g_degraded.load(std::memory_order_relaxed);
}

int
harnessExitCode()
{
    return harnessDegradedRuns() ? kExitDegraded : kExitOk;
}

std::vector<SimResult>
runSuite(const SimOptions &base, const std::vector<std::string> &names,
         bool verbose)
{
    std::vector<SimOptions> runs;
    runs.reserve(names.size());
    for (const std::string &name : names) {
        SimOptions opt = base;
        opt.benchmark = name;
        runs.push_back(std::move(opt));
    }
    return std::move(runCampaignChecked(runs, verbose).results);
}

Range
slowdownRange(const std::vector<SimResult> &baseline,
              const std::vector<SimResult> &test, bool fp_group)
{
    const ResultLookup lookup(test);
    std::vector<double> v;
    v.reserve(baseline.size());
    for (const SimResult &b : baseline) {
        if (!b.valid || b.fp != fp_group)
            continue;
        const SimResult *t = lookup.find(b.benchmark);
        if (!t)
            continue; // degraded pair: drop from the aggregate
        // Compare cycles per instruction; runs commit the same
        // instruction budget.
        const double base_cpi = static_cast<double>(b.cycles) /
            static_cast<double>(b.instructions);
        const double test_cpi = static_cast<double>(t->cycles) /
            static_cast<double>(t->instructions);
        v.push_back((test_cpi - base_cpi) / base_cpi * 100.0);
    }
    return makeRange(v);
}

void
printBanner(const std::string &title, const std::string &paper_ref)
{
    std::printf("\n");
    std::printf("==========================================================="
                "=====================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces: %s\n", paper_ref.c_str());
    std::printf("==========================================================="
                "=====================\n");
}

std::string
fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
pct(double frac, int precision)
{
    return fmt(frac * 100.0, precision) + "%";
}

std::string
rangeStr(const Range &r, int precision)
{
    if (r.n == 0)
        return "n/a";
    return fmt(r.mean, precision) + " [" + fmt(r.min, precision) +
        ", " + fmt(r.max, precision) + "]";
}

std::string
cell(const SimResult &r, double v, int precision)
{
    return r.valid ? fmt(v, precision) : "n/a";
}

} // namespace dmdc
