/**
 * @file
 * Deterministic fault injection for the campaign engine.
 *
 * The injector decides, per (site, run identity, attempt), whether to
 * inject a fault. Decisions are pure functions of the configured seed
 * and the identity string — independent of thread schedule, wall
 * clock, and execution order — so a faulty campaign replays exactly
 * and tests can predict which runs fail.
 *
 * Configuration comes from the DMDC_FAULT environment variable (read
 * once per process) or programmatically via configure():
 *
 *   DMDC_FAULT=cache-corrupt:p=0.1,run-throw:p=0.05,run-hang:p=0.01
 *
 * optionally with a trailing ",seed=<n>". Sites:
 *   run-throw     throw a transient RunError before simulating
 *   run-hang      wedge the run (caught by the simulator watchdog)
 *   cache-corrupt write a deliberately corrupt .dmdc_cache/ entry
 *   worker-crash  SIGKILL the whole worker process right after a
 *                 freshly simulated run checkpoints (supervisor chaos)
 *   worker-hang   stop the worker's heartbeat after a freshly
 *                 simulated run and wedge (supervisor chaos)
 *   serve-crash   SIGKILL the dmdc_serve daemon right after a freshly
 *                 simulated ticket's finish record reaches the
 *                 durable ticket log (service chaos)
 *   frame-truncate  the daemon writes only half of a reply frame and
 *                 drops the connection (torn-frame chaos for clients)
 *   client-stall  the client pauses between sending a request and
 *                 reading the reply, modelling a slow consumer
 *   lsq-corrupt   silently weaken the LSQ's dependence checking for
 *                 the run (drop detected violations and commit-time
 *                 replays): the --check ordering oracle must report
 *                 the resulting forbidden outcomes, proving it would
 *                 catch a real checking bug
 *
 * The serve-crash site follows the worker-* progress rule: it fires
 * only after a freshly simulated run has been cached and its finish
 * record logged, so every daemon death strictly follows progress and
 * a restart-loop converges in at most one crash per unique run.
 *
 * The worker-* sites model process-level failures for the shard
 * supervisor. They fire only after a *freshly simulated* run has been
 * checkpointed and cached, so every crash/hang strictly follows
 * progress: a restarted worker resumes from the cache and a campaign
 * with R runs can suffer at most R injected worker faults per shard.
 * Decisions additionally mix in the worker's restart attempt (the
 * DMDC_SHARD_ATTEMPT environment variable the supervisor sets), so a
 * restart re-rolls rather than replaying its predecessor's fate.
 */

#ifndef DMDC_SIM_FAULT_INJECTOR_HH
#define DMDC_SIM_FAULT_INJECTOR_HH

#include <cstdint>
#include <string>

namespace dmdc
{

/** Per-site injection probabilities plus the decision seed. */
struct FaultSpec
{
    double cacheCorruptP = 0.0;
    double runThrowP = 0.0;
    double runHangP = 0.0;
    double workerCrashP = 0.0;
    double workerHangP = 0.0;
    double serveCrashP = 0.0;
    double frameTruncateP = 0.0;
    double clientStallP = 0.0;
    double lsqCorruptP = 0.0;
    std::uint64_t seed = 0;

    bool
    any() const
    {
        return cacheCorruptP > 0.0 || runThrowP > 0.0 ||
            runHangP > 0.0 || workerCrashP > 0.0 ||
            workerHangP > 0.0 || serveCrashP > 0.0 ||
            frameTruncateP > 0.0 || clientStallP > 0.0 ||
            lsqCorruptP > 0.0;
    }
};

/**
 * Parse a DMDC_FAULT specification string; throws RunError(Config)
 * on unknown site names, bad probabilities, or malformed syntax.
 * The empty string parses to an all-zero (disabled) spec.
 */
FaultSpec parseFaultSpec(const std::string &text);

/** The process-wide fault decision oracle. */
class FaultInjector
{
  public:
    /**
     * The global instance. On first access the DMDC_FAULT environment
     * variable is parsed; a malformed value is a fatal() (the user
     * asked for chaos they didn't specify correctly).
     */
    static FaultInjector &global();

    /** Replace the configuration (test hook; not thread-safe against
     *  concurrently executing campaigns). */
    void configure(const FaultSpec &spec) { spec_ = spec; }

    const FaultSpec &spec() const { return spec_; }
    bool enabled() const { return spec_.any(); }

    /** Throw a transient RunError before attempt @p attempt of the
     *  run identified by @p key? */
    bool injectRunThrow(const std::string &key,
                        unsigned attempt) const;

    /** Wedge the run identified by @p key? (Per-run, not per-attempt:
     *  real deadlocks reproduce on retry.) */
    bool injectRunHang(const std::string &key) const;

    /** Corrupt the cache entry being written for @p key? */
    bool injectCacheCorrupt(const std::string &key) const;

    /** Kill the worker process after the freshly simulated run
     *  identified by @p key checkpoints? @p attempt is the worker's
     *  restart count (DMDC_SHARD_ATTEMPT), so each respawn re-rolls. */
    bool injectWorkerCrash(const std::string &key,
                           unsigned attempt) const;

    /** Silence the worker's heartbeat and wedge after the freshly
     *  simulated run identified by @p key? */
    bool injectWorkerHang(const std::string &key,
                          unsigned attempt) const;

    /** SIGKILL the dmdc_serve daemon after the freshly simulated
     *  ticket identified by @p key logs its finish record? */
    bool injectServeCrash(const std::string &key) const;

    /** Truncate the reply frame identified by @p identity (the
     *  request payload) on connection number @p attempt and drop the
     *  connection? Mixing in the daemon's accepted-connection ordinal
     *  lets a reconnecting client re-roll deterministically. */
    bool injectFrameTruncate(const std::string &identity,
                             unsigned attempt) const;

    /** Stall the client between sending the request identified by
     *  @p identity and reading its reply? */
    bool injectClientStall(const std::string &identity) const;

    /** Silently weaken the LSQ checking of the run identified by
     *  @p key? (Per-run: the corruption, like a real checking bug,
     *  reproduces on retry.) */
    bool injectLsqCorrupt(const std::string &key) const;

  private:
    bool decide(const char *site, const std::string &key,
                unsigned attempt, double p) const;

    FaultSpec spec_;
};

} // namespace dmdc

#endif // DMDC_SIM_FAULT_INJECTOR_HH
