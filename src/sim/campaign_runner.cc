/**
 * @file
 * Parallel campaign engine implementation: fingerprinting, the
 * in-process/on-disk run cache, the fan-out loop and the bench
 * journal.
 */

#include "sim/campaign_runner.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "common/logging.hh"
#include "common/random.hh"
#include "lsq/policy/registry.hh"
#include "sim/thread_pool.hh"

// Injected by the build (configure-time `git rev-parse`); journals
// record which sources produced them.
#ifndef DMDC_GIT_COMMIT
#define DMDC_GIT_COMMIT "unknown"
#endif

namespace dmdc
{

namespace
{

/**
 * Bump when the key schema or the JSON layout changes. v2: schemes are
 * recorded by registry name instead of enum ordinal, and the cache key
 * carries the registry source fingerprint.
 */
constexpr unsigned kCacheFormatVersion = 2;

using Clock = std::chrono::steady_clock;

double
elapsedMs(Clock::time_point since)
{
    return std::chrono::duration<double, std::milli>(
        Clock::now() - since).count();
}

/** Shortest decimal form that round-trips an IEEE double exactly. */
std::string
doubleToken(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/**
 * Fingerprint of the simulator behaviour surface: the policy
 * registry's version string (API version + every scheme@revision),
 * hashed. Any registered-scheme change or declared behaviour revision
 * self-invalidates every stale cache entry.
 */
const std::string &
sourceFingerprint()
{
    static const std::string fp = [] {
        const std::string v =
            DependencePolicyRegistry::instance().versionString();
        char buf[20];
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(
                          hashBytes(v.data(), v.size())));
        return std::string(buf);
    }();
    return fp;
}

/** Current wall-clock time as an ISO-8601 UTC string. */
std::string
utcTimestamp()
{
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

// ---- JSON writing ----------------------------------------------------

/**
 * Flat object writer; benchmark names are [a-z0-9_.-] so no string
 * escaping is required beyond quoting.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    void open(const char *key = nullptr)
    {
        comma();
        if (key)
            os_ << '"' << key << "\":";
        os_ << '{';
        first_ = true;
    }

    void close()
    {
        os_ << '}';
        first_ = false;
    }

    void field(const char *key, const std::string &v)
    {
        comma();
        os_ << '"' << key << "\":\"" << v << '"';
    }

    void field(const char *key, bool v)
    {
        comma();
        os_ << '"' << key << "\":" << (v ? "true" : "false");
    }

    void field(const char *key, std::uint64_t v)
    {
        comma();
        os_ << '"' << key << "\":" << v;
    }

    void field(const char *key, unsigned v)
    {
        field(key, static_cast<std::uint64_t>(v));
    }

    void field(const char *key, double v)
    {
        comma();
        os_ << '"' << key << "\":" << doubleToken(v);
    }

  private:
    void comma()
    {
        if (!first_)
            os_ << ',';
        first_ = false;
    }

    std::ostream &os_;
    bool first_ = true;
};

// ---- JSON reading ----------------------------------------------------

/**
 * Minimal parser for the subset this file writes: objects of string /
 * number / bool values and nested objects. Numbers are kept as raw
 * tokens so integer fields never take a detour through double.
 */
class JsonReader
{
  public:
    /** Flattened "outer.inner" key -> raw value token (unquoted). */
    using Map = std::unordered_map<std::string, std::string>;

    static bool
    parse(const std::string &text, Map &out)
    {
        JsonReader r(text);
        r.skipWs();
        if (!r.object("", out))
            return false;
        r.skipWs();
        return r.pos_ == text.size();
    }

  private:
    explicit JsonReader(const std::string &text) : text_(text) {}

    bool
    object(const std::string &prefix, Map &out)
    {
        if (!consume('{'))
            return false;
        skipWs();
        if (consume('}'))
            return true;
        for (;;) {
            std::string key;
            if (!quoted(key))
                return false;
            skipWs();
            if (!consume(':'))
                return false;
            skipWs();
            const std::string path =
                prefix.empty() ? key : prefix + "." + key;
            if (peek() == '{') {
                if (!object(path, out))
                    return false;
            } else {
                std::string value;
                if (peek() == '"') {
                    if (!quoted(value))
                        return false;
                } else if (!scalar(value)) {
                    return false;
                }
                out[path] = value;
            }
            skipWs();
            if (consume(',')) {
                skipWs();
                continue;
            }
            return consume('}');
        }
    }

    bool
    quoted(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos_ < text_.size() && text_[pos_] != '"')
            out.push_back(text_[pos_++]);
        return consume('"');
    }

    bool
    scalar(std::string &out)
    {
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == ',' || c == '}' || c == ']' ||
                std::isspace(static_cast<unsigned char>(c))) {
                break;
            }
            out.push_back(c);
            ++pos_;
        }
        return !out.empty();
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : 0; }

    bool
    consume(char c)
    {
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

// ---- SimResult <-> JSON ---------------------------------------------

void
writeResult(JsonWriter &w, const SimResult &r)
{
    w.open("result");
    w.field("benchmark", r.benchmark);
    w.field("fp", r.fp);
    w.field("config_level", r.configLevel);
    w.field("scheme", r.scheme);
    w.field("instructions", r.instructions);
    w.field("cycles", r.cycles);
    w.field("ipc", r.ipc);
    w.field("lq_searches", r.lqSearches);
    w.field("lq_searches_filtered", r.lqSearchesFiltered);
    w.field("sq_searches", r.sqSearches);
    w.field("sq_searches_filtered", r.sqSearchesFiltered);
    w.field("age_table_replays", r.ageTableReplays);
    w.field("loads_older_than_all_stores", r.loadsOlderThanAllStores);
    w.field("committed_loads", r.committedLoads);
    w.field("committed_stores", r.committedStores);
    w.field("safe_store_frac", r.safeStoreFrac);
    w.field("safe_load_frac", r.safeLoadFrac);
    w.field("checking_cycle_frac", r.checkingCycleFrac);
    w.field("window_instrs", r.windowInstrs);
    w.field("window_loads", r.windowLoads);
    w.field("window_safe_loads", r.windowSafeLoads);
    w.field("window_single_store_frac", r.windowSingleStoreFrac);
    w.field("window_marked_entries", r.windowMarkedEntries);
    w.field("dmdc_replays", r.dmdcReplays);
    w.field("baseline_replays", r.baselineReplays);
    w.field("true_violations", r.trueViolations);
    w.field("true_replays", r.trueReplays);
    w.field("false_addr_x", r.falseAddrX);
    w.field("false_addr_y", r.falseAddrY);
    w.field("false_hash_before", r.falseHashBefore);
    w.field("false_hash_x", r.falseHashX);
    w.field("false_hash_y", r.falseHashY);
    w.field("false_overflow", r.falseOverflow);
    w.open("energy");
    w.field("fetch", r.energy.fetch);
    w.field("bpred", r.energy.bpred);
    w.field("rename", r.energy.rename);
    w.field("rob", r.energy.rob);
    w.field("issue_queue", r.energy.issueQueue);
    w.field("regfile", r.energy.regfile);
    w.field("fu", r.energy.fu);
    w.field("l1d", r.energy.l1d);
    w.field("l2", r.energy.l2);
    w.field("clock", r.energy.clock);
    w.field("lq_cam", r.energy.lqCam);
    w.field("sq", r.energy.sq);
    w.field("yla", r.energy.yla);
    w.field("checking", r.energy.checking);
    w.close();
    w.close();
}

bool
readResult(const JsonReader::Map &m, SimResult &r)
{
    bool ok = true;
    auto raw = [&](const char *name) -> const std::string & {
        static const std::string empty;
        auto it = m.find(std::string("result.") + name);
        if (it == m.end()) {
            ok = false;
            return empty;
        }
        return it->second;
    };
    auto u64 = [&](const char *name) -> std::uint64_t {
        const std::string &t = raw(name);
        return t.empty() ? 0 : std::strtoull(t.c_str(), nullptr, 10);
    };
    auto f64 = [&](const char *name) -> double {
        const std::string &t = raw(name);
        return t.empty() ? 0.0 : std::strtod(t.c_str(), nullptr);
    };

    r.benchmark = raw("benchmark");
    r.fp = raw("fp") == "true";
    r.configLevel = static_cast<unsigned>(u64("config_level"));
    r.scheme = raw("scheme");
    r.instructions = u64("instructions");
    r.cycles = u64("cycles");
    r.ipc = f64("ipc");
    r.lqSearches = u64("lq_searches");
    r.lqSearchesFiltered = u64("lq_searches_filtered");
    r.sqSearches = u64("sq_searches");
    r.sqSearchesFiltered = u64("sq_searches_filtered");
    r.ageTableReplays = u64("age_table_replays");
    r.loadsOlderThanAllStores = u64("loads_older_than_all_stores");
    r.committedLoads = u64("committed_loads");
    r.committedStores = u64("committed_stores");
    r.safeStoreFrac = f64("safe_store_frac");
    r.safeLoadFrac = f64("safe_load_frac");
    r.checkingCycleFrac = f64("checking_cycle_frac");
    r.windowInstrs = f64("window_instrs");
    r.windowLoads = f64("window_loads");
    r.windowSafeLoads = f64("window_safe_loads");
    r.windowSingleStoreFrac = f64("window_single_store_frac");
    r.windowMarkedEntries = f64("window_marked_entries");
    r.dmdcReplays = u64("dmdc_replays");
    r.baselineReplays = u64("baseline_replays");
    r.trueViolations = u64("true_violations");
    r.trueReplays = u64("true_replays");
    r.falseAddrX = u64("false_addr_x");
    r.falseAddrY = u64("false_addr_y");
    r.falseHashBefore = u64("false_hash_before");
    r.falseHashX = u64("false_hash_x");
    r.falseHashY = u64("false_hash_y");
    r.falseOverflow = u64("false_overflow");
    r.energy.fetch = f64("energy.fetch");
    r.energy.bpred = f64("energy.bpred");
    r.energy.rename = f64("energy.rename");
    r.energy.rob = f64("energy.rob");
    r.energy.issueQueue = f64("energy.issue_queue");
    r.energy.regfile = f64("energy.regfile");
    r.energy.fu = f64("energy.fu");
    r.energy.l1d = f64("energy.l1d");
    r.energy.l2 = f64("energy.l2");
    r.energy.clock = f64("energy.clock");
    r.energy.lqCam = f64("energy.lq_cam");
    r.energy.sq = f64("energy.sq");
    r.energy.yla = f64("energy.yla");
    r.energy.checking = f64("energy.checking");
    return ok;
}

// ---- bench journal ---------------------------------------------------

struct JournalRecord
{
    std::string benchmark;
    std::string scheme;
    unsigned configLevel;
    double ipc;
    std::uint64_t cycles;
    double wallMs;
    bool cached;
};

struct Journal
{
    std::mutex mutex;
    std::string path;
    std::vector<JournalRecord> records;
};

Journal &
journal()
{
    static Journal j;
    return j;
}

void
appendJournal(const SimResult &r, double wall_ms, bool cached)
{
    Journal &j = journal();
    std::lock_guard<std::mutex> lock(j.mutex);
    if (j.path.empty())
        return;
    j.records.push_back({r.benchmark, r.scheme, r.configLevel, r.ipc,
                         r.cycles, wall_ms, cached});
}

} // namespace

void
setCampaignJournal(const std::string &path)
{
    Journal &j = journal();
    {
        std::lock_guard<std::mutex> lock(j.mutex);
        j.path = path;
    }
    // Benches exit through main()'s return; flush without requiring
    // every harness to remember a call.
    static const bool registered = [] {
        std::atexit(flushCampaignJournal);
        return true;
    }();
    (void)registered;
}

void
flushCampaignJournal()
{
    Journal &j = journal();
    std::lock_guard<std::mutex> lock(j.mutex);
    if (j.path.empty())
        return;
    std::ofstream os(j.path);
    if (!os) {
        warn("cannot write bench journal '%s'", j.path.c_str());
        return;
    }
    os << "{\"version\":" << kCacheFormatVersion
       << ",\"commit\":\"" << DMDC_GIT_COMMIT
       << "\",\"generated_utc\":\"" << utcTimestamp()
       << "\",\"results\":[";
    bool first = true;
    for (const JournalRecord &rec : j.records) {
        if (!first)
            os << ',';
        first = false;
        os << "\n  {\"benchmark\":\"" << rec.benchmark
           << "\",\"scheme\":\"" << rec.scheme
           << "\",\"config\":" << rec.configLevel
           << ",\"ipc\":" << doubleToken(rec.ipc)
           << ",\"cycles\":" << rec.cycles
           << ",\"wall_ms\":" << doubleToken(rec.wallMs)
           << ",\"cached\":" << (rec.cached ? "true" : "false") << '}';
    }
    os << "\n]}\n";
    j.records.clear();
}

// ---- fingerprinting --------------------------------------------------

bool
cacheableOptions(const SimOptions &opt)
{
    return opt.observers.empty() && !opt.tweak;
}

std::string
cacheKey(const SimOptions &opt)
{
    if (!cacheableOptions(opt))
        panic("cacheKey() on options with observers/tweak attached");
    std::ostringstream os;
    os << "dmdc-cache-v" << kCacheFormatVersion
       << "|src=" << sourceFingerprint()
       << "|bench=" << opt.benchmark
       << "|config=" << opt.configLevel
       << "|scheme=" << opt.scheme
       << "|warmup=" << opt.warmupInsts
       << "|insts=" << opt.runInsts
       << "|inv=" << doubleToken(opt.invalidationsPer1kCycles)
       << "|coherence=" << opt.coherence
       << "|safe_loads=" << opt.safeLoads
       << "|sq_filter=" << opt.sqFilter
       << "|yla_qw=" << opt.numYlaQw
       << "|table=" << opt.tableEntriesOverride
       << "|queue=" << opt.queueEntries;
    return os.str();
}

// ---- CampaignRunner --------------------------------------------------

CampaignRunner::CampaignRunner(CampaignConfig config)
    : config_(std::move(config))
{
}

std::string
CampaignRunner::diskPath(const std::string &key) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.json",
                  static_cast<unsigned long long>(
                      hashBytes(key.data(), key.size())));
    return config_.cacheDir + "/" + name;
}

bool
CampaignRunner::loadFromDisk(const std::string &key,
                             SimResult &out) const
{
    std::ifstream is(diskPath(key));
    if (!is)
        return false;
    std::stringstream buf;
    buf << is.rdbuf();
    JsonReader::Map m;
    if (!JsonReader::parse(buf.str(), m))
        return false;
    // A hash collision or a schema change surfaces as a key mismatch;
    // treat either as a miss and let the fresh result overwrite it.
    auto it = m.find("key");
    if (it == m.end() || it->second != key)
        return false;
    return readResult(m, out);
}

void
CampaignRunner::storeToDisk(const std::string &key,
                            const SimResult &r) const
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(config_.cacheDir, ec);
    if (ec) {
        warn("cannot create cache dir '%s': %s",
             config_.cacheDir.c_str(), ec.message().c_str());
        return;
    }
    const std::string path = diskPath(key);
    // Write-to-temp + rename so concurrent bench binaries sharing the
    // cache directory never observe a torn file.
    std::ostringstream tmp_name;
    tmp_name << path << ".tmp." << std::this_thread::get_id();
    const std::string tmp = tmp_name.str();
    {
        std::ofstream os(tmp);
        if (!os) {
            warn("cannot write cache file '%s'", tmp.c_str());
            return;
        }
        JsonWriter w(os);
        w.open();
        w.field("version",
                static_cast<std::uint64_t>(kCacheFormatVersion));
        w.field("key", key);
        writeResult(w, r);
        w.close();
        os << '\n';
    }
    fs::rename(tmp, path, ec);
    if (ec)
        fs::remove(tmp, ec);
}

std::vector<SimResult>
CampaignRunner::run(const std::vector<SimOptions> &runs, bool verbose)
{
    const auto t0 = Clock::now();
    CampaignStats stats;
    stats.runs = runs.size();

    std::vector<SimResult> results(runs.size());

    struct Pending
    {
        std::size_t index;
        std::string key;        ///< empty for uncacheable runs
    };
    std::vector<Pending> pending;
    pending.reserve(runs.size());
    // key -> index of the run that will simulate it; duplicate keys
    // within one campaign simulate once and copy.
    std::unordered_map<std::string, std::size_t> leaders;
    std::vector<std::pair<std::size_t, std::size_t>> followers;

    for (std::size_t i = 0; i < runs.size(); ++i) {
        const SimOptions &opt = runs[i];
        if (!cacheableOptions(opt)) {
            ++stats.uncacheable;
            pending.push_back({i, ""});
            continue;
        }
        const std::string key = cacheKey(opt);
        if (config_.useCache) {
            {
                std::lock_guard<std::mutex> lock(memMutex_);
                auto it = memCache_.find(key);
                if (it != memCache_.end()) {
                    results[i] = it->second;
                    ++stats.memoryHits;
                    appendJournal(results[i], 0.0, true);
                    continue;
                }
            }
            if (loadFromDisk(key, results[i])) {
                ++stats.diskHits;
                std::lock_guard<std::mutex> lock(memMutex_);
                memCache_.emplace(key, results[i]);
                appendJournal(results[i], 0.0, true);
                continue;
            }
        }
        auto [it, fresh] = leaders.try_emplace(key, i);
        if (!fresh) {
            followers.emplace_back(i, it->second);
            continue;
        }
        pending.push_back({i, key});
    }

    stats.simulated = pending.size();
    if (!pending.empty()) {
        unsigned jobs = config_.jobs
            ? config_.jobs : ThreadPool::defaultConcurrency();
        jobs = std::min<std::size_t>(jobs, pending.size());
        ThreadPool pool(jobs);
        for (const Pending &p : pending) {
            pool.submit([this, &runs, &results, &p, verbose] {
                const auto run_t0 = Clock::now();
                results[p.index] = runSimulation(runs[p.index]);
                const double run_ms = elapsedMs(run_t0);
                const SimResult &r = results[p.index];
                if (!p.key.empty() && config_.useCache) {
                    {
                        std::lock_guard<std::mutex> lock(memMutex_);
                        memCache_.emplace(p.key, r);
                    }
                    storeToDisk(p.key, r);
                }
                appendJournal(r, run_ms, false);
                if (verbose) {
                    inform("  %-10s %-12s config%u  ipc=%.2f"
                           "  (%.0f ms)",
                           r.benchmark.c_str(), r.scheme.c_str(),
                           r.configLevel, r.ipc, run_ms);
                }
            });
        }
        pool.wait();
    }
    for (const auto &[dst, src] : followers) {
        results[dst] = results[src];
        appendJournal(results[dst], 0.0, true);
    }

    stats.wallMs = elapsedMs(t0);
    totalSimulated_ += stats.simulated;
    lastStats_ = stats;

    if (verbose || runs.size() > 1) {
        inform("campaign: %zu runs in %.2fs (%.1f sims/s; "
               "%zu simulated, %zu mem hits, %zu disk hits, "
               "%zu uncacheable)",
               stats.runs, stats.wallMs / 1000.0, stats.simsPerSec(),
               stats.simulated, stats.memoryHits, stats.diskHits,
               stats.uncacheable);
    }
    return results;
}

SimResult
CampaignRunner::runOne(const SimOptions &options, bool verbose)
{
    return run(std::vector<SimOptions>{options}, verbose).front();
}

namespace
{

struct GlobalRunner
{
    std::mutex mutex;
    CampaignConfig config;
    std::unique_ptr<CampaignRunner> runner;
};

GlobalRunner &
globalRunner()
{
    static GlobalRunner g;
    return g;
}

} // namespace

CampaignRunner &
CampaignRunner::global()
{
    GlobalRunner &g = globalRunner();
    std::lock_guard<std::mutex> lock(g.mutex);
    if (!g.runner)
        g.runner = std::make_unique<CampaignRunner>(g.config);
    return *g.runner;
}

void
CampaignRunner::configureGlobal(const CampaignConfig &config)
{
    GlobalRunner &g = globalRunner();
    std::lock_guard<std::mutex> lock(g.mutex);
    g.config = config;
    g.runner.reset();
}

} // namespace dmdc
