/**
 * @file
 * Parallel campaign engine implementation: fingerprinting, the
 * CRC-protected in-process/on-disk run cache, the fault-isolated
 * fan-out loop, checkpoint/resume, and the bench journal (which
 * doubles as the campaign failure manifest).
 */

#include "sim/campaign_runner.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <tuple>

#include <csignal>
#include <unistd.h>

#include "common/atomic_file.hh"
#include "common/build_info.hh"
#include "common/crc32.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/trace_sink.hh"
#include "lsq/policy/registry.hh"
#include "sim/campaign_state.hh"
#include "sim/fault_injector.hh"
#include "sim/heartbeat.hh"
#include "sim/thread_pool.hh"

namespace dmdc
{

namespace
{

using Clock = std::chrono::steady_clock;

double
elapsedMs(Clock::time_point since)
{
    return std::chrono::duration<double, std::milli>(
        Clock::now() - since).count();
}

/** Interned-once trace identities for the campaign runner layer. */
struct RunnerTrace
{
    TraceCategory &cat = traceCategory("runner");
    std::uint16_t campaign = traceNameId("campaign");
    std::uint16_t memHit = traceNameId("cache-mem-hit");
    std::uint16_t diskHit = traceNameId("cache-disk-hit");
    std::uint16_t quarantine = traceNameId("cache-quarantine");
    std::uint16_t retry = traceNameId("retry");
};

RunnerTrace &
runnerTrace()
{
    static RunnerTrace ids;
    return ids;
}

/** Shortest decimal form that round-trips an IEEE double exactly. */
std::string
doubleToken(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Escape @p s for embedding in a JSON string literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out.push_back(' ');
        } else {
            out.push_back(c);
        }
    }
    return out;
}

/**
 * Fingerprint of the simulator behaviour surface: the policy
 * registry's version string (API version + every scheme@revision),
 * hashed. Any registered-scheme change or declared behaviour revision
 * self-invalidates every stale cache entry.
 */
const std::string &
sourceFingerprint()
{
    static const std::string fp = [] {
        const std::string v =
            DependencePolicyRegistry::instance().versionString();
        char buf[20];
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(
                          hashBytes(v.data(), v.size())));
        return std::string(buf);
    }();
    return fp;
}

/** Current wall-clock time as an ISO-8601 UTC string. */
std::string
utcTimestamp()
{
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

// ---- JSON writing ----------------------------------------------------

/**
 * Flat object writer; benchmark names are [a-z0-9_.-] so no string
 * escaping is required beyond quoting.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    void open(const char *key = nullptr)
    {
        comma();
        if (key)
            os_ << '"' << key << "\":";
        os_ << '{';
        first_ = true;
    }

    void close()
    {
        os_ << '}';
        first_ = false;
    }

    void field(const char *key, const std::string &v)
    {
        comma();
        os_ << '"' << key << "\":\"" << v << '"';
    }

    void field(const char *key, bool v)
    {
        comma();
        os_ << '"' << key << "\":" << (v ? "true" : "false");
    }

    void field(const char *key, std::uint64_t v)
    {
        comma();
        os_ << '"' << key << "\":" << v;
    }

    void field(const char *key, unsigned v)
    {
        field(key, static_cast<std::uint64_t>(v));
    }

    void field(const char *key, double v)
    {
        comma();
        os_ << '"' << key << "\":" << doubleToken(v);
    }

  private:
    void comma()
    {
        if (!first_)
            os_ << ',';
        first_ = false;
    }

    std::ostream &os_;
    bool first_ = true;
};

// ---- JSON reading ----------------------------------------------------

/**
 * Minimal parser for the subset this file writes: objects of string /
 * number / bool values and nested objects. Numbers are kept as raw
 * tokens so integer fields never take a detour through double.
 */
class JsonReader
{
  public:
    /** Flattened "outer.inner" key -> raw value token (unquoted). */
    using Map = std::unordered_map<std::string, std::string>;

    static bool
    parse(const std::string &text, Map &out)
    {
        JsonReader r(text);
        r.skipWs();
        if (!r.object("", out))
            return false;
        r.skipWs();
        return r.pos_ == text.size();
    }

  private:
    explicit JsonReader(const std::string &text) : text_(text) {}

    bool
    object(const std::string &prefix, Map &out)
    {
        if (!consume('{'))
            return false;
        skipWs();
        if (consume('}'))
            return true;
        for (;;) {
            std::string key;
            if (!quoted(key))
                return false;
            skipWs();
            if (!consume(':'))
                return false;
            skipWs();
            const std::string path =
                prefix.empty() ? key : prefix + "." + key;
            if (peek() == '{') {
                if (!object(path, out))
                    return false;
            } else {
                std::string value;
                if (peek() == '"') {
                    if (!quoted(value))
                        return false;
                } else if (!scalar(value)) {
                    return false;
                }
                out[path] = value;
            }
            skipWs();
            if (consume(',')) {
                skipWs();
                continue;
            }
            return consume('}');
        }
    }

    bool
    quoted(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos_ < text_.size() && text_[pos_] != '"')
            out.push_back(text_[pos_++]);
        return consume('"');
    }

    bool
    scalar(std::string &out)
    {
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == ',' || c == '}' || c == ']' ||
                std::isspace(static_cast<unsigned char>(c))) {
                break;
            }
            out.push_back(c);
            ++pos_;
        }
        return !out.empty();
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : 0; }

    bool
    consume(char c)
    {
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

// ---- SimResult <-> JSON ---------------------------------------------

void
writeResult(JsonWriter &w, const SimResult &r)
{
    w.open("result");
    w.field("benchmark", r.benchmark);
    w.field("fp", r.fp);
    w.field("config_level", r.configLevel);
    w.field("scheme", r.scheme);
    w.field("instructions", r.instructions);
    w.field("cycles", r.cycles);
    w.field("ipc", r.ipc);
    w.field("lq_searches", r.lqSearches);
    w.field("lq_searches_filtered", r.lqSearchesFiltered);
    w.field("sq_searches", r.sqSearches);
    w.field("sq_searches_filtered", r.sqSearchesFiltered);
    w.field("age_table_replays", r.ageTableReplays);
    w.field("loads_older_than_all_stores", r.loadsOlderThanAllStores);
    w.field("committed_loads", r.committedLoads);
    w.field("committed_stores", r.committedStores);
    w.field("safe_store_frac", r.safeStoreFrac);
    w.field("safe_load_frac", r.safeLoadFrac);
    w.field("checking_cycle_frac", r.checkingCycleFrac);
    w.field("window_instrs", r.windowInstrs);
    w.field("window_loads", r.windowLoads);
    w.field("window_safe_loads", r.windowSafeLoads);
    w.field("window_single_store_frac", r.windowSingleStoreFrac);
    w.field("window_marked_entries", r.windowMarkedEntries);
    w.field("dmdc_replays", r.dmdcReplays);
    w.field("baseline_replays", r.baselineReplays);
    w.field("true_violations", r.trueViolations);
    w.field("true_replays", r.trueReplays);
    w.field("false_addr_x", r.falseAddrX);
    w.field("false_addr_y", r.falseAddrY);
    w.field("false_hash_before", r.falseHashBefore);
    w.field("false_hash_x", r.falseHashX);
    w.field("false_hash_y", r.falseHashY);
    w.field("false_overflow", r.falseOverflow);
    w.open("energy");
    w.field("fetch", r.energy.fetch);
    w.field("bpred", r.energy.bpred);
    w.field("rename", r.energy.rename);
    w.field("rob", r.energy.rob);
    w.field("issue_queue", r.energy.issueQueue);
    w.field("regfile", r.energy.regfile);
    w.field("fu", r.energy.fu);
    w.field("l1d", r.energy.l1d);
    w.field("l2", r.energy.l2);
    w.field("clock", r.energy.clock);
    w.field("lq_cam", r.energy.lqCam);
    w.field("sq", r.energy.sq);
    w.field("yla", r.energy.yla);
    w.field("checking", r.energy.checking);
    w.close();
    w.close();
}

bool
readResult(const JsonReader::Map &m, SimResult &r)
{
    bool ok = true;
    auto raw = [&](const char *name) -> const std::string & {
        static const std::string empty;
        auto it = m.find(std::string("result.") + name);
        if (it == m.end()) {
            ok = false;
            return empty;
        }
        return it->second;
    };
    auto u64 = [&](const char *name) -> std::uint64_t {
        const std::string &t = raw(name);
        return t.empty() ? 0 : std::strtoull(t.c_str(), nullptr, 10);
    };
    auto f64 = [&](const char *name) -> double {
        const std::string &t = raw(name);
        return t.empty() ? 0.0 : std::strtod(t.c_str(), nullptr);
    };

    r.benchmark = raw("benchmark");
    r.fp = raw("fp") == "true";
    r.configLevel = static_cast<unsigned>(u64("config_level"));
    r.scheme = raw("scheme");
    r.instructions = u64("instructions");
    r.cycles = u64("cycles");
    r.ipc = f64("ipc");
    r.lqSearches = u64("lq_searches");
    r.lqSearchesFiltered = u64("lq_searches_filtered");
    r.sqSearches = u64("sq_searches");
    r.sqSearchesFiltered = u64("sq_searches_filtered");
    r.ageTableReplays = u64("age_table_replays");
    r.loadsOlderThanAllStores = u64("loads_older_than_all_stores");
    r.committedLoads = u64("committed_loads");
    r.committedStores = u64("committed_stores");
    r.safeStoreFrac = f64("safe_store_frac");
    r.safeLoadFrac = f64("safe_load_frac");
    r.checkingCycleFrac = f64("checking_cycle_frac");
    r.windowInstrs = f64("window_instrs");
    r.windowLoads = f64("window_loads");
    r.windowSafeLoads = f64("window_safe_loads");
    r.windowSingleStoreFrac = f64("window_single_store_frac");
    r.windowMarkedEntries = f64("window_marked_entries");
    r.dmdcReplays = u64("dmdc_replays");
    r.baselineReplays = u64("baseline_replays");
    r.trueViolations = u64("true_violations");
    r.trueReplays = u64("true_replays");
    r.falseAddrX = u64("false_addr_x");
    r.falseAddrY = u64("false_addr_y");
    r.falseHashBefore = u64("false_hash_before");
    r.falseHashX = u64("false_hash_x");
    r.falseHashY = u64("false_hash_y");
    r.falseOverflow = u64("false_overflow");
    r.energy.fetch = f64("energy.fetch");
    r.energy.bpred = f64("energy.bpred");
    r.energy.rename = f64("energy.rename");
    r.energy.rob = f64("energy.rob");
    r.energy.issueQueue = f64("energy.issue_queue");
    r.energy.regfile = f64("energy.regfile");
    r.energy.fu = f64("energy.fu");
    r.energy.l1d = f64("energy.l1d");
    r.energy.l2 = f64("energy.l2");
    r.energy.clock = f64("energy.clock");
    r.energy.lqCam = f64("energy.lq_cam");
    r.energy.sq = f64("energy.sq");
    r.energy.yla = f64("energy.yla");
    r.energy.checking = f64("energy.checking");
    return ok;
}

// ---- bench journal / failure manifest --------------------------------

struct JournalRecord
{
    std::string benchmark;
    std::string scheme;
    unsigned configLevel;
    double ipc;
    std::uint64_t cycles;
    double wallMs;
    double simKhz;  ///< simulated kilocycles per wall second; 0 cached
    bool cached;
    RunStatus status;
    std::string category; ///< empty when ok
    std::string error;    ///< empty when ok
    unsigned attempts;
    unsigned shard;

    // Oracle verdict of a checked run ("off" otherwise). Emitted only
    // in the non-deterministic journal: --check=off journals must stay
    // byte-identical to pre-oracle ones, and checked runs are excluded
    // from the deterministic format by construction (uncacheable).
    std::string checkMode = "off";
    std::uint64_t oracleLoads = 0;
    std::uint64_t oracleStale = 0;
    std::uint64_t oracleForbidden = 0;
};

struct Journal
{
    std::mutex mutex;
    std::string path;
    bool deterministic = false;
    std::vector<JournalRecord> records;

    // Shard header state, accumulated across runChecked() calls: a
    // harness may run several campaigns into one journal, so the
    // campaign fingerprint chains and the run totals add up.
    bool sharded = false;
    unsigned shardIndex = 0;
    unsigned shardCount = 1;
    std::uint64_t runsTotal = 0;
    std::uint64_t campaignHash = 0;
};

Journal &
journal()
{
    static Journal j;
    return j;
}

void
appendJournal(const SimResult &r, const RunOutcome &oc)
{
    Journal &j = journal();
    std::lock_guard<std::mutex> lock(j.mutex);
    if (j.path.empty())
        return;
    // cycles per wall millisecond == simulated kilocycles per second.
    // A cached result cost no simulation time; record 0 rather than a
    // nonsense rate derived from the cache-lookup latency.
    const double sim_khz = (!oc.cached && oc.wallMs > 0.0)
        ? static_cast<double>(r.cycles) / oc.wallMs : 0.0;
    j.records.push_back({r.benchmark, r.scheme, r.configLevel, r.ipc,
                         r.cycles, oc.wallMs, sim_khz, oc.cached,
                         oc.status, "", "", oc.attempts, oc.shard,
                         r.checkMode, r.oracleLoadsChecked,
                         r.oracleStaleCommits, r.oracleForbidden});
}

void
appendJournalFailure(const SimOptions &opt, const RunOutcome &oc)
{
    Journal &j = journal();
    std::lock_guard<std::mutex> lock(j.mutex);
    if (j.path.empty())
        return;
    j.records.push_back({opt.benchmark, opt.scheme, opt.configLevel,
                         0.0, 0, oc.wallMs, 0.0, false, oc.status,
                         runErrorCategoryName(oc.category), oc.error,
                         oc.attempts, oc.shard,
                         checkModeName(opt.check), 0, 0, 0});
}

/**
 * Stamp the journal as one shard's slice of a campaign. Called once
 * per runChecked() campaign in sharded mode; fingerprints chain so a
 * multi-campaign harness still yields one comparable campaign id.
 */
void
journalNoteShardSlice(const std::string &fingerprint,
                      std::size_t campaignRuns, const ShardSpec &spec)
{
    Journal &j = journal();
    std::lock_guard<std::mutex> lock(j.mutex);
    if (j.path.empty())
        return;
    j.sharded = true;
    j.shardIndex = spec.index;
    j.shardCount = spec.count;
    j.runsTotal += campaignRuns;
    j.campaignHash = hashBytes(fingerprint.data(), fingerprint.size(),
                               j.campaignHash);
}

} // namespace

void
setCampaignJournal(const std::string &path, bool deterministic)
{
    Journal &j = journal();
    {
        std::lock_guard<std::mutex> lock(j.mutex);
        // Retargeting starts a fresh journal; the records of the
        // previous target belong to its file (already flushed or
        // about to be dropped), not to the new one.
        if (path != j.path) {
            j.records.clear();
            j.sharded = false;
            j.shardIndex = 0;
            j.shardCount = 1;
            j.runsTotal = 0;
            j.campaignHash = 0;
        }
        j.path = path;
        j.deterministic = deterministic;
    }
    // Benches exit through main()'s return; flush without requiring
    // every harness to remember a call.
    static const bool registered = [] {
        std::atexit(flushCampaignJournal);
        return true;
    }();
    (void)registered;
}

void
flushCampaignJournal()
{
    Journal &j = journal();
    std::lock_guard<std::mutex> lock(j.mutex);
    if (j.path.empty())
        return;
    // Serialize to memory and publish atomically: the journal is the
    // campaign's failure manifest, and a worker killed mid-flush must
    // leave either the previous complete journal or the new one on
    // disk — never a torn file.
    std::ostringstream os;
    os << "{\"version\":" << kCacheFormatVersion
       << ",\"commit\":\"" << buildCommit() << '"';
    if (!j.deterministic)
        os << ",\"generated_utc\":\"" << utcTimestamp() << '"';
    if (j.sharded) {
        // Shard journals carry what the merger needs to validate that
        // a journal set belongs together: the (chained) campaign
        // fingerprint, this slice's coordinates, and the full
        // campaign's run count.
        char fp[20];
        std::snprintf(fp, sizeof(fp), "%016llx",
                      static_cast<unsigned long long>(j.campaignHash));
        os << ",\"campaign\":\"" << fp
           << "\",\"shard_index\":" << j.shardIndex
           << ",\"shard_count\":" << j.shardCount
           << ",\"runs_total\":" << j.runsTotal;
    }
    os << ",\"results\":[";
    if (j.deterministic) {
        // Workers append in completion order; canonicalize through
        // the shared serializer so shard journals merge into a file
        // byte-identical to a single-process one (campaign_shard.hh).
        std::vector<JournalEntry> entries;
        entries.reserve(j.records.size());
        for (const JournalRecord &rec : j.records) {
            JournalEntry e;
            e.benchmark = rec.benchmark;
            e.scheme = rec.scheme;
            e.config = rec.configLevel;
            e.status = rec.status;
            if (rec.status == RunStatus::Ok) {
                e.ipcToken = doubleToken(rec.ipc);
                e.cyclesToken = std::to_string(rec.cycles);
            } else {
                e.category = rec.category;
                e.error = rec.error;
            }
            entries.push_back(std::move(e));
        }
        std::sort(entries.begin(), entries.end(), journalEntryLess);
        bool first = true;
        for (const JournalEntry &e : entries) {
            if (!first)
                os << ',';
            first = false;
            writeJournalEntry(os, e);
        }
    } else {
        bool first = true;
        for (const JournalRecord &rec : j.records) {
            if (!first)
                os << ',';
            first = false;
            os << "\n  {\"benchmark\":\"" << rec.benchmark
               << "\",\"scheme\":\"" << rec.scheme
               << "\",\"config\":" << rec.configLevel
               << ",\"status\":\"" << runStatusName(rec.status) << '"';
            if (rec.status == RunStatus::Ok) {
                os << ",\"ipc\":" << doubleToken(rec.ipc)
                   << ",\"cycles\":" << rec.cycles;
            } else {
                os << ",\"category\":\"" << jsonEscape(rec.category)
                   << "\",\"error\":\"" << jsonEscape(rec.error) << '"';
            }
            os << ",\"attempts\":" << rec.attempts
               << ",\"wall_ms\":" << doubleToken(rec.wallMs)
               << ",\"sim_khz\":" << doubleToken(rec.simKhz)
               << ",\"cached\":" << (rec.cached ? "true" : "false");
            if (rec.checkMode != "off") {
                os << ",\"check\":\"" << rec.checkMode
                   << "\",\"oracle_loads\":" << rec.oracleLoads
                   << ",\"oracle_stale\":" << rec.oracleStale
                   << ",\"oracle_forbidden\":" << rec.oracleForbidden;
            }
            if (j.sharded)
                os << ",\"shard\":" << rec.shard;
            os << '}';
        }
    }
    os << "\n]}\n";
    if (!writeFileAtomic(j.path, os.str()))
        warn("cannot write bench journal '%s'", j.path.c_str());
    // Records stay buffered: flush is idempotent, so an explicit
    // flush followed by the atexit flush rewrites the same content
    // instead of truncating the journal to an empty one.
}

// ---- cooperative interruption & supervised-worker chaos --------------

namespace
{

std::atomic<bool> g_interruptRequested{false};

/** Set once a worker-hang fault fires: heartbeats stop advancing so
 *  the supervisor's staleness detector has something to detect. */
std::atomic<bool> g_heartbeatSilenced{false};

/** This worker's restart ordinal, set by the supervisor. Mixing it
 *  into worker-crash/hang decisions lets a respawned worker re-roll
 *  instead of replaying its predecessor's fate. */
unsigned
shardAttempt()
{
    static const unsigned attempt = [] {
        const char *env = std::getenv("DMDC_SHARD_ATTEMPT");
        return env ? static_cast<unsigned>(
                         std::strtoul(env, nullptr, 10)) : 0u;
    }();
    return attempt;
}

} // namespace

void
requestCampaignInterrupt()
{
    // Async-signal-safe: a lock-free store is all a handler may do.
    g_interruptRequested.store(true, std::memory_order_relaxed);
}

bool
campaignInterruptRequested()
{
    return g_interruptRequested.load(std::memory_order_relaxed);
}

// ---- fingerprinting --------------------------------------------------

bool
cacheableOptions(const SimOptions &opt)
{
    // Checked runs are deliberately uncacheable in both directions: a
    // cache hit would skip the simulation the oracle exists to verify,
    // and a checked result must never masquerade as a plain one.
    return opt.observers.empty() && !opt.tweak &&
        opt.check == CheckMode::Off && opt.coherenceAgent.empty();
}

const std::string &
policySourceFingerprint()
{
    return sourceFingerprint();
}

std::string
cacheKey(const SimOptions &opt)
{
    if (!cacheableOptions(opt))
        panic("cacheKey() on options with observers/tweak attached");
    std::ostringstream os;
    os << "dmdc-cache-v" << kCacheFormatVersion
       << "|src=" << sourceFingerprint()
       << "|bench=" << opt.benchmark
       << "|config=" << opt.configLevel
       << "|scheme=" << opt.scheme
       << "|warmup=" << opt.warmupInsts
       << "|insts=" << opt.runInsts
       << "|inv=" << doubleToken(opt.invalidationsPer1kCycles)
       << "|coherence=" << opt.coherence
       << "|safe_loads=" << opt.safeLoads
       << "|sq_filter=" << opt.sqFilter
       << "|yla_qw=" << opt.numYlaQw
       << "|table=" << opt.tableEntriesOverride
       << "|queue=" << opt.queueEntries;
    return os.str();
}

// ---- CampaignRunner --------------------------------------------------

CampaignRunner::CampaignRunner(CampaignConfig config)
    : config_(std::move(config))
{
    CacheStoreConfig sc;
    sc.dir = config_.cacheDir;
    sc.maxBytes = config_.cacheMaxBytes;
    sc.quarantineMaxEntries = config_.quarantineMaxEntries;
    sc.quarantineMaxBytes = config_.quarantineMaxBytes;
    diskStore_ = std::make_unique<CacheStore>(sc);
}

CampaignRunner::CacheLoad
CampaignRunner::loadFromDisk(const std::string &key, SimResult &out)
{
    // The store owns the framing (CRC header, truncation, version);
    // the runner owns the payload schema on top of it.
    std::string payload;
    switch (diskStore_->load(key, payload)) {
      case CacheStore::Load::Miss:
        return CacheLoad::Miss;
      case CacheStore::Load::Corrupt:
        return CacheLoad::Corrupt;
      case CacheStore::Load::Hit:
        break;
    }
    JsonReader::Map m;
    if (!JsonReader::parse(payload, m)) {
        diskStore_->quarantineKey(key, "has an unparsable payload");
        return CacheLoad::Corrupt;
    }
    // A hash collision surfaces as a key mismatch; that is a plain
    // miss (the fresh result overwrites the entry), not corruption.
    auto it = m.find("key");
    if (it == m.end() || it->second != key)
        return CacheLoad::Miss;
    if (!readResult(m, out)) {
        diskStore_->quarantineKey(key, "is missing result fields");
        return CacheLoad::Corrupt;
    }
    return CacheLoad::Hit;
}

void
CampaignRunner::storeToDisk(const std::string &key, const SimResult &r)
{
    std::ostringstream payload_os;
    {
        JsonWriter w(payload_os);
        w.open();
        w.field("version",
                static_cast<std::uint64_t>(kCacheFormatVersion));
        w.field("key", key);
        writeResult(w, r);
        w.close();
        payload_os << '\n';
    }
    diskStore_->store(key, payload_os.str());
}

CampaignResult
CampaignRunner::runChecked(const std::vector<SimOptions> &runs_in,
                           bool verbose)
{
    // Materialize the campaign-wide --check/--agent override before
    // anything looks at the options: classification, fingerprints,
    // checkpoints and journaling must all see the checked options.
    std::vector<SimOptions> checked_runs;
    const std::vector<SimOptions> *run_list = &runs_in;
    if (config_.checkMode != CheckMode::Off ||
        !config_.coherenceAgent.empty()) {
        checked_runs = runs_in;
        for (SimOptions &o : checked_runs) {
            if (o.check == CheckMode::Off)
                o.check = config_.checkMode;
            if (o.coherenceAgent.empty())
                o.coherenceAgent = config_.coherenceAgent;
        }
        run_list = &checked_runs;
    }
    const std::vector<SimOptions> &runs = *run_list;

    RunnerTrace &rt = runnerTrace();
    TraceSpan campaign_span(rt.cat, rt.campaign);
    const auto t0 = Clock::now();
    CampaignStats stats;
    stats.runs = runs.size();
    const std::size_t quarantine_evicted_before =
        diskStore_->stats().quarantineEvicted;
    const std::size_t evicted_before = diskStore_->stats().evicted;

    CampaignResult cr;
    cr.results.resize(runs.size());
    cr.outcomes.resize(runs.size());

    // ---- shard partition ---------------------------------------------
    // Every shard process computes the same assignment from the same
    // run list; this process executes only its slice. Other slices
    // complete instantly as OutOfShard and are never journaled here.
    const ShardSpec shard = config_.shard;
    std::vector<unsigned> owner;
    if (shard.active()) {
        owner = shardAssignment(runs, shard.count);
        journalNoteShardSlice(campaignFingerprint(runs), runs.size(),
                              shard);
    }

    // ---- checkpoint manifest -----------------------------------------
    // Sharded processes checkpoint to their own derived manifest (two
    // writers must not share one file); its fingerprint still covers
    // the full campaign work list.
    const std::string statePath =
        shardStatePath(config_.statePath, shard);
    const bool checkpointing = !statePath.empty();
    CampaignState state;
    std::mutex state_mutex;
    if (checkpointing) {
        const std::string fp = campaignFingerprint(runs);
        bool resumed = false;
        if (config_.resume) {
            CampaignState prior;
            std::string err;
            if (!loadCampaignState(statePath, prior, err)) {
                warn("campaign: cannot resume from '%s' (%s); "
                     "starting fresh",
                     statePath.c_str(), err.c_str());
            } else if (prior.fingerprint != fp ||
                       prior.entries.size() != runs.size()) {
                warn("campaign: state in '%s' belongs to a different "
                     "campaign; starting fresh",
                     statePath.c_str());
            } else {
                state = std::move(prior);
                resumed = true;
                std::size_t done = 0;
                for (const CampaignStateEntry &e : state.entries) {
                    if (e.status == RunStatus::Ok)
                        ++done;
                }
                inform("campaign: resuming '%s' (%zu of %zu runs "
                       "previously ok)",
                       statePath.c_str(), done, runs.size());
            }
        }
        state.fingerprint = fp;
        if (!resumed) {
            state.entries.assign(runs.size(), {});
            for (std::size_t i = 0; i < runs.size(); ++i) {
                state.entries[i].benchmark = runs[i].benchmark;
                state.entries[i].scheme = runs[i].scheme;
                state.entries[i].configLevel = runs[i].configLevel;
                state.entries[i].status = RunStatus::Pending;
            }
        }
        saveCampaignState(statePath, state);
    }

    auto record_state = [&](std::size_t index, const RunOutcome &oc) {
        if (!checkpointing)
            return;
        std::lock_guard<std::mutex> lock(state_mutex);
        CampaignStateEntry &e = state.entries[index];
        e.status = oc.status;
        e.attempts = oc.attempts;
        if (oc.ok()) {
            e.category.clear();
            e.error.clear();
        } else {
            e.category = runErrorCategoryName(oc.category);
            e.error = oc.error;
        }
        saveCampaignState(statePath, state);
    };

    // ---- heartbeat ---------------------------------------------------
    // One atomic heartbeat file per shard process, advanced after
    // every run that reaches a terminal status. Progress-based on
    // purpose: a timer would keep beating while the simulation
    // threads are wedged, which is exactly what a supervisor needs to
    // detect (see heartbeat.hh).
    const std::string heartbeatPath =
        shardStatePath(config_.heartbeatPath, shard);
    std::mutex hb_mutex;
    HeartbeatRecord hb;
    hb.pid = static_cast<int>(::getpid());
    hb.runsTotal = runs.size();
    auto beat = [&](HeartbeatPhase phase) {
        if (heartbeatPath.empty() ||
            g_heartbeatSilenced.load(std::memory_order_relaxed))
            return;
        std::lock_guard<std::mutex> lock(hb_mutex);
        ++hb.counter;
        hb.phase = phase;
        writeHeartbeat(heartbeatPath, hb);
    };
    auto beat_progress = [&](const RunOutcome &oc) {
        if (heartbeatPath.empty())
            return;
        {
            std::lock_guard<std::mutex> lock(hb_mutex);
            if (oc.inShard())
                ++hb.completed;
        }
        beat(HeartbeatPhase::Running);
    };
    beat(HeartbeatPhase::Starting);

    // ---- classify: cache hits, leaders, followers --------------------
    struct Pending
    {
        std::size_t index;
        std::string key;        ///< empty for uncacheable runs
    };
    std::vector<Pending> pending;
    pending.reserve(runs.size());
    // key -> index of the run that will simulate it; duplicate keys
    // within one campaign simulate once and copy.
    std::unordered_map<std::string, std::size_t> leaders;
    std::vector<std::pair<std::size_t, std::size_t>> followers;

    for (std::size_t i = 0; i < runs.size(); ++i) {
        const SimOptions &opt = runs[i];
        if (shard.active()) {
            cr.outcomes[i].shard = owner[i];
            if (owner[i] != shard.index) {
                RunOutcome &oc = cr.outcomes[i];
                oc.status = RunStatus::OutOfShard;
                oc.category = RunErrorCategory::Config;
                oc.error = "assigned to shard " +
                           std::to_string(owner[i]) + " of " +
                           std::to_string(shard.count);
                oc.attempts = 0;
                ++stats.outOfShard;
                record_state(i, oc);
                beat_progress(oc);
                continue;
            }
        }
        if (!cacheableOptions(opt)) {
            ++stats.uncacheable;
            pending.push_back({i, ""});
            continue;
        }
        const std::string key = cacheKey(opt);
        if (config_.useCache) {
            {
                std::lock_guard<std::mutex> lock(memMutex_);
                auto it = memCache_.find(key);
                if (it != memCache_.end()) {
                    cr.results[i] = it->second;
                    ++stats.memoryHits;
                    traceInstant(rt.cat, rt.memHit);
                    cr.outcomes[i].cached = true;
                    cr.outcomes[i].attempts = 0;
                    appendJournal(cr.results[i], cr.outcomes[i]);
                    record_state(i, cr.outcomes[i]);
                    beat_progress(cr.outcomes[i]);
                    continue;
                }
            }
            const CacheLoad load = loadFromDisk(key, cr.results[i]);
            if (load == CacheLoad::Corrupt) {
                ++stats.quarantined;
                traceInstant(rt.cat, rt.quarantine);
            }
            if (load == CacheLoad::Hit) {
                ++stats.diskHits;
                traceInstant(rt.cat, rt.diskHit);
                std::lock_guard<std::mutex> lock(memMutex_);
                memCache_.emplace(key, cr.results[i]);
                cr.outcomes[i].cached = true;
                cr.outcomes[i].attempts = 0;
                appendJournal(cr.results[i], cr.outcomes[i]);
                record_state(i, cr.outcomes[i]);
                beat_progress(cr.outcomes[i]);
                continue;
            }
        }
        auto [it, fresh] = leaders.try_emplace(key, i);
        if (!fresh) {
            followers.emplace_back(i, it->second);
            continue;
        }
        pending.push_back({i, key});
    }

    // ---- fan out, isolating each run ---------------------------------
    stats.simulated = pending.size();
    std::atomic<bool> abort_flag{false};
    if (!pending.empty()) {
        unsigned jobs = config_.jobs
            ? config_.jobs : ThreadPool::defaultConcurrency();
        jobs = std::min<std::size_t>(jobs, pending.size());

        auto execute_run =
            [this, &runs, &cr, verbose, &abort_flag, &record_state,
             &beat_progress, &rt](const Pending &p) {
                const auto run_t0 = Clock::now();
                RunOutcome oc;
                oc.shard = config_.shard.index;
                std::string id;
                const bool interrupted = campaignInterruptRequested();
                if (abort_flag.load(std::memory_order_relaxed) ||
                    interrupted) {
                    oc.status = RunStatus::Skipped;
                    oc.category = RunErrorCategory::SimInvariant;
                    oc.error = interrupted
                        ? "interrupted by signal"
                        : "skipped after earlier failure (fail-fast)";
                    oc.attempts = 0;
                } else {
                    SimOptions opt = runs[p.index];
                    if (opt.timeoutMs == 0.0)
                        opt.timeoutMs = config_.timeoutMs;
                    id = runIdentity(opt);
                    // Run lifecycle span, labeled with the run
                    // identity (one interned name per distinct triple)
                    // and covering every retry attempt.
                    TraceSpan run_span(
                        rt.cat, rt.cat.on() ? traceNameId(id) : 0);
                    for (unsigned attempt = 0;; ++attempt) {
                        oc.attempts = attempt + 1;
                        try {
                            if (FaultInjector::global().injectRunThrow(
                                    id, attempt)) {
                                throw RunError(
                                    RunErrorCategory::SimInvariant,
                                    "injected fault: run-throw",
                                    /*transient=*/true);
                            }
                            cr.results[p.index] = runSimulation(opt);
                            oc.status = RunStatus::Ok;
                            oc.error.clear();
                            break;
                        } catch (const RunError &e) {
                            oc.status = e.category() ==
                                    RunErrorCategory::Timeout
                                ? RunStatus::TimedOut
                                : RunStatus::Failed;
                            oc.category = e.category();
                            oc.error = e.what();
                            if (e.transient() &&
                                attempt < config_.maxRetries) {
                                traceInstant(rt.cat, rt.retry);
                                // Exponential backoff, capped: long
                                // enough to let a racing writer
                                // finish, short enough to not stall
                                // the pool.
                                std::this_thread::sleep_for(
                                    std::chrono::milliseconds(
                                        1u << std::min(attempt, 5u)));
                                continue;
                            }
                            break;
                        } catch (const std::exception &e) {
                            oc.status = RunStatus::Failed;
                            oc.category =
                                RunErrorCategory::SimInvariant;
                            oc.error = e.what();
                            break;
                        } catch (...) {
                            oc.status = RunStatus::Failed;
                            oc.category =
                                RunErrorCategory::SimInvariant;
                            oc.error = "unknown exception";
                            break;
                        }
                    }
                }
                oc.wallMs = elapsedMs(run_t0);
                if (oc.ok()) {
                    const SimResult &r = cr.results[p.index];
                    if (!p.key.empty() && config_.useCache) {
                        {
                            std::lock_guard<std::mutex> lock(
                                memMutex_);
                            memCache_.emplace(p.key, r);
                        }
                        storeToDisk(p.key, r);
                    }
                    appendJournal(r, oc);
                    if (verbose) {
                        inform("  %-10s %-12s config%u  ipc=%.2f"
                               "  (%.0f ms%s)",
                               r.benchmark.c_str(), r.scheme.c_str(),
                               r.configLevel, r.ipc, oc.wallMs,
                               oc.attempts > 1 ? ", retried" : "");
                    }
                } else {
                    if (config_.failFast &&
                        oc.status != RunStatus::Skipped) {
                        abort_flag.store(true,
                                         std::memory_order_relaxed);
                    }
                    appendJournalFailure(runs[p.index], oc);
                    if (oc.status != RunStatus::Skipped) {
                        warn("  %s/%s config%u %s after %u "
                             "attempt(s): %s",
                             runs[p.index].benchmark.c_str(),
                             runs[p.index].scheme.c_str(),
                             runs[p.index].configLevel,
                             runStatusName(oc.status), oc.attempts,
                             oc.error.c_str());
                    }
                }
                cr.outcomes[p.index] = oc;
                record_state(p.index, oc);
                beat_progress(oc);

                // Process-level chaos for the supervisor. Fires only
                // after a *freshly simulated* run has been
                // checkpointed and cached, so every injected crash
                // strictly follows progress: the restarted worker
                // resumes past this run and a shard with R runs can
                // absorb at most R crashes before finishing.
                if (oc.ok() && !id.empty()) {
                    FaultInjector &fi = FaultInjector::global();
                    if (fi.injectWorkerCrash(id, shardAttempt())) {
                        warn("injected fault: worker-crash after %s",
                             id.c_str());
                        std::raise(SIGKILL);
                    }
                    if (fi.injectWorkerHang(id, shardAttempt())) {
                        warn("injected fault: worker-hang after %s "
                             "(heartbeat silenced)", id.c_str());
                        g_heartbeatSilenced.store(
                            true, std::memory_order_relaxed);
                        // Wedge far past any hang deadline; the
                        // supervisor is expected to SIGKILL us first.
                        for (int t = 0; t < 6000; ++t) {
                            std::this_thread::sleep_for(
                                std::chrono::milliseconds(100));
                        }
                        std::_Exit(3);
                    }
                }
            };

        // The scheduler decides placement (see run_scheduler.hh):
        // runs land on per-worker queues keyed by journal identity,
        // and each worker drains its queue — stealing from the others
        // under the default work-stealing policy — until no unclaimed
        // run remains.
        std::vector<ScheduledRun> items;
        items.reserve(pending.size());
        for (std::size_t s = 0; s < pending.size(); ++s) {
            const SimOptions &opt = runs[pending[s].index];
            items.push_back(
                {s,
                 journalIdentity(opt.benchmark, opt.scheme,
                                 opt.configLevel),
                 static_cast<double>(opt.warmupInsts) +
                     static_cast<double>(opt.runInsts)});
        }
        std::unique_ptr<RunScheduler> scheduler =
            makeRunScheduler(config_.scheduler);
        scheduler->seed(std::move(items), jobs);
        std::vector<std::thread> workers;
        workers.reserve(jobs);
        for (unsigned w = 0; w < jobs; ++w) {
            workers.emplace_back([&, w] {
                traceSetThreadName("worker-" + std::to_string(w));
                ScheduledRun item;
                while (scheduler->next(w, item))
                    execute_run(pending[item.index]);
            });
        }
        for (std::thread &t : workers)
            t.join();
    }

    // ---- duplicate runs copy their leader ----------------------------
    for (const auto &[dst, src] : followers) {
        const RunOutcome &leader = cr.outcomes[src];
        RunOutcome oc;
        oc.shard = config_.shard.index;
        if (leader.ok()) {
            cr.results[dst] = cr.results[src];
            oc.cached = true;
            oc.attempts = 0;
            appendJournal(cr.results[dst], oc);
        } else {
            oc.status = RunStatus::Skipped;
            oc.category = leader.category;
            oc.error = "duplicate of a failed run";
            oc.attempts = 0;
            appendJournalFailure(runs[dst], oc);
        }
        cr.outcomes[dst] = oc;
        record_state(dst, oc);
        beat_progress(oc);
    }

    // ---- accounting + cache hygiene ----------------------------------
    for (const RunOutcome &oc : cr.outcomes) {
        switch (oc.status) {
          case RunStatus::Failed:   ++stats.failed;   break;
          case RunStatus::TimedOut: ++stats.timedOut; break;
          case RunStatus::Skipped:  ++stats.skipped;  break;
          case RunStatus::OutOfShard: break; // counted in classify
          default: break;
        }
        if (oc.attempts > 1)
            ++stats.retried;
    }
    if (config_.useCache) {
        diskStore_->evictToCap();
        stats.evicted = diskStore_->stats().evicted - evicted_before;
    }
    stats.quarantineEvicted =
        diskStore_->stats().quarantineEvicted -
        quarantine_evicted_before;

    beat(campaignInterruptRequested() ? HeartbeatPhase::Interrupted
                                      : HeartbeatPhase::Done);

    stats.wallMs = elapsedMs(t0);
    totalSimulated_ += stats.simulated;
    lastStats_ = stats;

    if (verbose || runs.size() > 1) {
        if (shard.active()) {
            inform("campaign shard %u/%u: %zu of %zu runs in this "
                   "slice",
                   shard.index, shard.count,
                   stats.runs - stats.outOfShard, stats.runs);
        }
        inform("campaign: %zu runs in %.2fs (%.1f sims/s; "
               "%zu simulated, %zu mem hits, %zu disk hits, "
               "%zu uncacheable)",
               stats.runs, stats.wallMs / 1000.0, stats.simsPerSec(),
               stats.simulated, stats.memoryHits, stats.diskHits,
               stats.uncacheable);
        if (stats.failed || stats.timedOut || stats.skipped ||
            stats.retried || stats.quarantined || stats.evicted ||
            stats.quarantineEvicted) {
            inform("campaign health: %zu failed, %zu timed out, "
                   "%zu skipped, %zu retried, %zu cache entries "
                   "quarantined, %zu evicted, %zu quarantine files "
                   "aged out",
                   stats.failed, stats.timedOut, stats.skipped,
                   stats.retried, stats.quarantined, stats.evicted,
                   stats.quarantineEvicted);
        }
    }
    return cr;
}

SimResult
CampaignRunner::runOne(const SimOptions &options, bool verbose)
{
    CampaignResult cr =
        runChecked(std::vector<SimOptions>{options}, verbose);
    const RunOutcome &oc = cr.outcomes.front();
    if (!oc.ok() && oc.inShard()) {
        flushCampaignJournal();
        fatal("run %s/%s config%u %s (%s: %s)",
              options.benchmark.c_str(), options.scheme.c_str(),
              options.configLevel, runStatusName(oc.status),
              runErrorCategoryName(oc.category), oc.error.c_str());
    }
    return std::move(cr.results.front());
}

namespace
{

struct GlobalRunner
{
    std::mutex mutex;
    CampaignConfig config;
    std::unique_ptr<CampaignRunner> runner;
};

GlobalRunner &
globalRunner()
{
    static GlobalRunner g;
    return g;
}

} // namespace

CampaignRunner &
CampaignRunner::global()
{
    GlobalRunner &g = globalRunner();
    std::lock_guard<std::mutex> lock(g.mutex);
    if (!g.runner)
        g.runner = std::make_unique<CampaignRunner>(g.config);
    return *g.runner;
}

void
CampaignRunner::configureGlobal(const CampaignConfig &config)
{
    GlobalRunner &g = globalRunner();
    std::lock_guard<std::mutex> lock(g.mutex);
    g.config = config;
    g.runner.reset();
}

} // namespace dmdc
