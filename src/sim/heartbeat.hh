/**
 * @file
 * Worker heartbeats for supervised shard campaigns.
 *
 * A shard worker publishes a tiny JSON heartbeat file after every run
 * it completes (write-to-temp + rename, one file per shard, derived
 * from the base path with shardStatePath()). The record carries a
 * monotonic counter plus progress coordinates; the supervisor polls
 * the file and declares the worker hung when the counter stops
 * advancing for longer than the hang deadline.
 *
 * The heartbeat is deliberately progress-based, not timer-based: a
 * background "I'm alive" timer would keep beating from a process whose
 * simulation threads are wedged, which is exactly the failure the
 * supervisor exists to catch. Per-run watchdogs (stall-cycle limit,
 * wall-clock deadline) bound how long a single run can stay silent, so
 * any staleness beyond `max run time + slack` means the worker is
 * stuck outside the watchdogs' reach.
 *
 * HeartbeatMonitor holds the supervisor-side staleness logic as a pure
 * function of observed (counter, now) pairs so tests can drive it with
 * a fake clock.
 */

#ifndef DMDC_SIM_HEARTBEAT_HH
#define DMDC_SIM_HEARTBEAT_HH

#include <cstdint>
#include <string>
#include <unordered_map>

namespace dmdc
{

/** Worker liveness phases, as spelled in the heartbeat file. */
enum class HeartbeatPhase
{
    Starting,    ///< process up, campaign not yet classifying runs
    Running,     ///< executing its slice
    Interrupted, ///< saw SIGINT/SIGTERM, flushing state before exit
    Draining,    ///< service daemon winding down: no new work, the
                 ///< in-flight runs are finishing
    Done,        ///< slice complete (possibly with degraded runs)
};

const char *heartbeatPhaseName(HeartbeatPhase phase);
bool parseHeartbeatPhase(const std::string &text, HeartbeatPhase &out);

/** One published heartbeat. */
struct HeartbeatRecord
{
    /** Strictly increasing within one worker process; restarts reset
     *  it, which the monitor treats as a change (progress). */
    std::uint64_t counter = 0;
    /** In-shard runs that reached a terminal status so far. */
    std::uint64_t completed = 0;
    /** Full campaign run count (all shards). */
    std::uint64_t runsTotal = 0;
    int pid = 0;
    HeartbeatPhase phase = HeartbeatPhase::Starting;
};

/** Atomically publish @p record at @p path. Best-effort: returns
 *  false (no throw) when the file cannot be written. */
bool writeHeartbeat(const std::string &path,
                    const HeartbeatRecord &record);

/** Load @p path. False + @p err when absent or unparsable. */
bool readHeartbeat(const std::string &path, HeartbeatRecord &out,
                   std::string &err);

/**
 * Supervisor-side staleness detector. Time is an opaque
 * milliseconds-since-whenever double supplied by the caller, so the
 * logic is clock-agnostic (tests use a fake clock, the supervisor a
 * steady_clock).
 */
class HeartbeatMonitor
{
  public:
    explicit HeartbeatMonitor(double hangDeadlineMs)
        : deadlineMs_(hangDeadlineMs)
    {
    }

    /**
     * (Re)arm tracking for @p shard as of @p nowMs: the staleness
     * window restarts from here. Call at every (re)spawn so a worker
     * isn't judged by its predecessor's heartbeat.
     */
    void track(unsigned shard, double nowMs);

    /**
     * Feed one observation of the shard's heartbeat counter. Any
     * counter change — including a reset to a smaller value after a
     * restart — counts as progress.
     */
    void observe(unsigned shard, std::uint64_t counter, double nowMs);

    /** Stop tracking @p shard (it exited). */
    void forget(unsigned shard);

    /** Milliseconds since the last observed change (or track()). */
    double silentMs(unsigned shard, double nowMs) const;

    /** True when the shard has been silent beyond the hang deadline.
     *  Never true for untracked shards or a non-positive deadline. */
    bool hung(unsigned shard, double nowMs) const;

    double deadlineMs() const { return deadlineMs_; }

  private:
    struct State
    {
        std::uint64_t counter = 0;
        bool observed = false;   ///< a counter value has been seen
        double lastChangeMs = 0; ///< time of track() or last change
    };

    double deadlineMs_;
    std::unordered_map<unsigned, State> shards_;
};

} // namespace dmdc

#endif // DMDC_SIM_HEARTBEAT_HH
