/**
 * @file
 * Process supervision for sharded campaigns.
 *
 * ShardSupervisor is the engine behind tools/campaign_launch: it
 * fork/execs one dmdc_sim shard worker per slice, watches their
 * heartbeats and exit statuses, SIGKILLs hung workers, restarts
 * crashed ones with bounded per-shard retries (restarts resume from
 * the checkpoint manifest + run cache, so only unfinished runs
 * re-simulate), propagates SIGINT/SIGTERM for a graceful shutdown,
 * and — once every shard succeeds — merges the per-shard journals
 * in-process into a file byte-identical to a serial
 * --json-deterministic run.
 *
 * Worker-side counterparts live here too: installWorkerSignalHandlers()
 * arms the two-stage SIGINT/SIGTERM protocol inside dmdc_sim (first
 * signal: finish the in-flight run, flush checkpoint + journal, exit
 * kExitInterrupted; second signal: _exit immediately).
 */

#ifndef DMDC_SIM_SUPERVISOR_HH
#define DMDC_SIM_SUPERVISOR_HH

#include <string>
#include <vector>

#include "sim/heartbeat.hh"

namespace dmdc
{

/** Knobs of a supervised campaign launch (tools/campaign_launch). */
struct SupervisorOptions
{
    /** Shard worker processes to spawn (the N of --shard=i/N). */
    unsigned procs = 2;
    /** Supervisor poll cadence: how often heartbeats are re-read and
     *  children reaped, in milliseconds. */
    double pollIntervalMs = 200.0;
    /** Heartbeat staleness beyond which a worker counts as hung and
     *  is SIGKILLed (then restarted). 0 disables hang detection. */
    double hangDeadlineMs = 30000.0;
    /** Restarts allowed per shard beyond its first launch. */
    unsigned shardRetries = 3;
    /** Worker binary (dmdc_sim) to exec. */
    std::string workerBinary;
    /** Campaign arguments forwarded verbatim to every worker
     *  (--bench/--scheme/--config/--insts/...). */
    std::vector<std::string> workerArgs;
    /** Scratch directory for per-shard state, heartbeat, journal and
     *  log files. Created on demand; wiped unless resuming. */
    std::string launchDir = ".dmdc_launch";
    /** Merged journal target; empty selects launchDir + "/merged.json". */
    std::string journalPath;
    /** Resume a previously interrupted launch: per-shard manifests are
     *  kept and workers start with --resume. */
    bool resume = false;
    /** Print per-event supervision log lines. */
    bool verbose = false;
};

/**
 * Spawns, monitors, restarts, and harvests the shard workers of one
 * campaign. Single-threaded; run() blocks until the launch reaches a
 * terminal state and returns the process exit code (kExitOk,
 * kExitDegraded, kExitFailure, or kExitInterrupted).
 */
class ShardSupervisor
{
  public:
    explicit ShardSupervisor(SupervisorOptions options);

    /** Execute the supervised launch. */
    int run();

  private:
    enum class WorkerState
    {
        Idle,     ///< not spawned yet (or awaiting restart)
        Running,  ///< alive, making progress
        Stopping, ///< SIGTERM delivered, draining its in-flight run
        Done,     ///< exited 0 or kExitDegraded
        Failed,   ///< retries exhausted or unrecoverable exit
    };

    struct Worker
    {
        int pid = -1;
        unsigned shard = 0;
        unsigned attempt = 0; ///< restarts so far (DMDC_SHARD_ATTEMPT)
        WorkerState state = WorkerState::Idle;
        bool degraded = false; ///< exited kExitDegraded at least once
    };

    bool spawn(Worker &w);
    void handleExit(Worker &w, int waitStatus);
    void requestStop(int sig);
    void forceStop();
    int mergeAndVerify();

    std::string heartbeatPathFor(unsigned shard) const;
    std::string journalPathFor(unsigned shard) const;

    SupervisorOptions opts_;
    std::vector<Worker> workers_;
    HeartbeatMonitor monitor_;
    bool stopping_ = false;
};

/**
 * Arm the worker-side two-stage SIGINT/SIGTERM protocol: the first
 * signal requests a campaign interrupt (pending runs skip, the
 * in-flight run finishes, checkpoint manifest and journal flush, the
 * process exits kExitInterrupted); a second signal _exits immediately
 * with the conventional 128+sig status.
 */
void installWorkerSignalHandlers();

} // namespace dmdc

#endif // DMDC_SIM_SUPERVISOR_HH
