/**
 * @file
 * The paper's three machine configurations (Table 1) and scheme
 * selection helpers.
 */

#ifndef DMDC_SIM_MACHINE_CONFIG_HH
#define DMDC_SIM_MACHINE_CONFIG_HH

#include <string>

#include "core/pipeline.hh"

namespace dmdc
{

/** Mechanism under evaluation for one run. */
enum class Scheme : std::uint8_t
{
    Baseline,    ///< conventional associative LQ
    YlaOnly,     ///< associative LQ + YLA filtering (Sec. 3)
    DmdcGlobal,  ///< DMDC, global end-check register (Sec. 4)
    DmdcLocal,   ///< DMDC, local windows (Sec. 4.4)
    DmdcQueue,   ///< DMDC with the associative checking queue
    AgeTable,    ///< related work: Garg et al. fused age table
};

/** Printable scheme name. */
const char *schemeName(Scheme scheme);

/**
 * Core parameters of paper Table 1 config @p level (1, 2 or 3):
 * issue queues 32/48/64, ROB 128/256/512, LQ/SQ 48/32, 96/48, 192/64,
 * registers 100/200/400, checking table 1K/2K/4K.
 */
CoreParams makeMachineConfig(unsigned level);

/**
 * Configure @p params for @p scheme.
 * @param coherence enable the coherence extension (second YLA set,
 *        INV bits)
 * @param safe_loads enable safe-load detection (ablation knob)
 */
void applyScheme(CoreParams &params, Scheme scheme,
                 bool coherence = false, bool safe_loads = true);

} // namespace dmdc

#endif // DMDC_SIM_MACHINE_CONFIG_HH
