/**
 * @file
 * The paper's three machine configurations (Table 1) and scheme
 * selection helpers. Schemes are identified by registry name (see
 * DependencePolicyRegistry); the former Scheme/LsqScheme enum pair is
 * gone.
 */

#ifndef DMDC_SIM_MACHINE_CONFIG_HH
#define DMDC_SIM_MACHINE_CONFIG_HH

#include <string>

#include "core/pipeline.hh"

namespace dmdc
{

/**
 * Core parameters of paper Table 1 config @p level (1, 2 or 3):
 * issue queues 32/48/64, ROB 128/256/512, LQ/SQ 48/32, 96/48, 192/64,
 * registers 100/200/400, checking table 1K/2K/4K.
 */
CoreParams makeMachineConfig(unsigned level);

/**
 * Configure @p params for the scheme registered under @p scheme
 * (canonical name or alias); fatal() with the list of available
 * schemes when unknown. Stores the canonical name into
 * params.lsq.policy and runs the scheme's registered configure hook.
 * @param coherence enable the coherence extension (second YLA set,
 *        INV bits)
 * @param safe_loads enable safe-load detection (ablation knob)
 */
void applyScheme(CoreParams &params, const std::string &scheme,
                 bool coherence = false, bool safe_loads = true);

} // namespace dmdc

#endif // DMDC_SIM_MACHINE_CONFIG_HH
