/**
 * @file
 * Durable ticket log for the dmdc_serve daemon.
 *
 * Service-mode tickets (one per deduplicated run) used to live only
 * in daemon memory: a SIGKILL forgot every queued and in-flight run.
 * The ticket log persists each ticket's lifecycle next to the cache
 * index (`<cache-dir>/tickets.log`) using the same crash-safety
 * idiom (`common/append_log.hh`): newline-terminated, CRC-framed
 * JSON records appended under a shared flock, compaction under the
 * exclusive flock.
 *
 * Records (one JSON object per line):
 *
 *   {"v":1,"op":"submit","key":K,"spec":S,"crc":C}   ticket created;
 *       S is the serviceRunSpecJson() of the run, embedded as an
 *       escaped string so a restarted daemon can re-queue it
 *   {"v":1,"op":"start","key":K,"crc":C}             execution began
 *   {"v":1,"op":"finish","key":K,"status":T,"crc":C} terminal state
 *
 * Replay classifies every key by its latest record: a submit without
 * a finish is *pending* — a restarted daemon re-queues it (the run
 * cache already holds the results of finished tickets, so replaying
 * pending work is exactly what makes exactly-once dedup survive
 * SIGKILL: finished runs are served from the cache, unfinished runs
 * re-simulate once). A torn final line (crash mid-append) fails its
 * CRC and is skipped; the worst case is one in-flight run replayed.
 *
 * The log is compacted at daemon start (finished history is dropped;
 * the cache is the durable result store) and whenever finish records
 * dominate pending ones, so a long-running daemon's log stays
 * proportional to its in-flight work, not its lifetime.
 *
 * Several daemons may share one cache directory: appends interleave
 * whole records and compaction is exclusive, so the log never
 * corrupts; a daemon restarting over a shared log simply adopts its
 * siblings' pending tickets too, which is harmless (results land in
 * the shared cache either way).
 */

#ifndef DMDC_SIM_TICKET_LOG_HH
#define DMDC_SIM_TICKET_LOG_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dmdc
{

/** Ticket log record schema version. */
constexpr unsigned kTicketLogVersion = 1;

/** One unfinished ticket reconstructed by replay(). */
struct PendingTicket
{
    std::string key;  ///< cacheKey() of the run
    std::string spec; ///< serviceRunSpecJson() payload
    bool started = false;
};

/** Aggregate of one replay() pass. */
struct TicketLogReplay
{
    std::vector<PendingTicket> pending; ///< submit without finish
    std::size_t finished = 0;           ///< tickets with a finish
    std::size_t corrupt = 0;            ///< CRC-failed lines skipped
};

/**
 * The daemon-side handle. All methods are crash-safe but not
 * thread-safe: the daemon serializes access behind its state mutex.
 */
class TicketLog
{
  public:
    /** A log rooted at @p dir (empty disables every operation). */
    explicit TicketLog(std::string dir);

    bool enabled() const { return !dir_.empty(); }
    std::string logPath() const;
    std::string lockPath() const;

    /** Append one lifecycle record (creates the directory and log on
     *  demand). Best-effort: a failed append costs recovery coverage
     *  for that ticket, never correctness. */
    void appendSubmit(const std::string &key, const std::string &spec);
    void appendStart(const std::string &key);
    void appendFinish(const std::string &key, const std::string &status);

    /** Scan the whole log, CRC-checking every record. Unparsable or
     *  damaged lines are counted and skipped. */
    TicketLogReplay replay() const;

    /**
     * Rewrite the log to exactly one submit (plus start, when the
     * ticket had begun) per pending ticket, under the exclusive
     * flock. Drops finished history. False when the lock is
     * contended or the rewrite fails.
     */
    bool compact(const std::vector<PendingTicket> &pending);

    /**
     * Compact when finish records have accumulated well past the
     * pending population (same shape as the cache index's policy).
     * @p appendedSinceCompact is maintained by the caller.
     */
    bool shouldCompact(std::uint64_t appendedSinceCompact,
                       std::size_t pendingCount) const;

  private:
    void append(const char *op, const std::string &key,
                const std::string &spec, const std::string &status);

    std::string dir_;
};

} // namespace dmdc

#endif // DMDC_SIM_TICKET_LOG_HH
