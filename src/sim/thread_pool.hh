/**
 * @file
 * A minimal fixed-size thread pool for fanning independent simulation
 * runs out across cores.
 *
 * Deliberately simple: a shared FIFO of std::function tasks drained by
 * N workers, plus wait() as a completion barrier. No work stealing, no
 * futures — campaign runs are coarse-grained (milliseconds to seconds
 * each), so queue contention is irrelevant and determinism concerns
 * stay with the caller (tasks must not share mutable state).
 */

#ifndef DMDC_SIM_THREAD_POOL_HH
#define DMDC_SIM_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dmdc
{

/** Fixed set of worker threads draining a shared task queue. */
class ThreadPool
{
  public:
    /**
     * Spawn @p num_threads workers (0 selects defaultConcurrency()).
     * With one worker the pool degenerates to deferred serial
     * execution, which keeps the jobs=1 path on the exact same code
     * path as parallel runs.
     */
    explicit ThreadPool(unsigned num_threads = 0);

    /** Joins all workers; pending tasks are drained first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task. Safe from any thread, including workers. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished executing. */
    void wait();

    unsigned numThreads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** hardware_concurrency(), clamped to at least 1. */
    static unsigned defaultConcurrency();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable allIdle_;
    unsigned running_ = 0;     ///< tasks currently executing
    bool stopping_ = false;
};

} // namespace dmdc

#endif // DMDC_SIM_THREAD_POOL_HH
