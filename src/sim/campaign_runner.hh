/**
 * @file
 * Parallel campaign engine with a memoizing run cache and per-run
 * fault isolation.
 *
 * A campaign is an ordered list of independent (benchmark, config,
 * scheme) simulation runs. CampaignRunner fans the list out across a
 * ThreadPool while preserving the serial result ordering and
 * bit-identical SimResults (each Simulator owns all of its state, so
 * runs are deterministic functions of their SimOptions).
 *
 * Runs whose SimOptions are canonically fingerprintable (no attached
 * observers, no tweak callback) are additionally memoized in an
 * in-process map and an on-disk JSON cache (.dmdc_cache/), so the
 * Baseline campaigns that nearly every bench binary re-simulates are
 * near-free after the first binary computes them.
 *
 * Fault tolerance: each run executes inside an isolation boundary
 * that converts exceptions (structured RunErrors, watchdog timeouts,
 * injected chaos) into a RunOutcome instead of aborting the process.
 * Transient failures retry with bounded backoff; the campaign
 * completes every surviving run and reports a failure manifest in the
 * JSON journal. On-disk cache entries carry a CRC32 and are
 * quarantined (never trusted) when corrupt, and an optional
 * checkpoint manifest (campaign_state.json) makes interrupted
 * campaigns resumable.
 */

#ifndef DMDC_SIM_CAMPAIGN_RUNNER_HH
#define DMDC_SIM_CAMPAIGN_RUNNER_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/cache_store.hh"
#include "sim/campaign_shard.hh"
#include "sim/run_error.hh"
#include "sim/run_scheduler.hh"
#include "sim/simulator.hh"

namespace dmdc
{

/** Knobs of a CampaignRunner (see also bench --jobs / --no-cache). */
struct CampaignConfig
{
    /** Worker threads; 0 selects ThreadPool::defaultConcurrency(). */
    unsigned jobs = 0;
    /**
     * How runs are placed on worker threads (--scheduler). Both
     * policies seed per-worker queues with the same LPT partition
     * --shard uses; WorkStealing additionally rebalances when cost
     * estimates miss (see run_scheduler.hh).
     */
    SchedulerKind scheduler = SchedulerKind::WorkStealing;
    /** Enable the in-process + on-disk run cache. */
    bool useCache = true;
    /** On-disk cache directory (created on demand). */
    std::string cacheDir = ".dmdc_cache";

    /**
     * Per-run wall-clock budget in milliseconds, applied to runs that
     * don't set their own SimOptions::timeoutMs. 0 = no deadline.
     */
    double timeoutMs = 0.0;
    /** Retries (beyond the first attempt) for transient failures. */
    unsigned maxRetries = 2;
    /** Stop launching new runs after the first failure. */
    bool failFast = false;

    /**
     * Checkpoint manifest path; empty disables checkpointing. The
     * manifest is rewritten atomically after every completed run.
     */
    std::string statePath;
    /**
     * Resume from an existing manifest at statePath: previously
     * completed runs are served from the run cache, everything else
     * executes. A fingerprint mismatch falls back to a fresh start.
     */
    bool resume = false;

    /**
     * On-disk cache size cap in bytes; least-recently-used entries
     * are evicted after each campaign to stay under it. 0 = unlimited.
     */
    std::uint64_t cacheMaxBytes = 0;

    /**
     * Which slice of each campaign this process executes
     * (--shard=i/N). The work list is partitioned deterministically
     * (see shardAssignment()); runs owned by other shards complete
     * immediately with RunStatus::OutOfShard and are not journaled.
     * With a statePath set, each shard checkpoints to its own derived
     * manifest (shardStatePath()). Default 0/1 = the whole campaign.
     */
    ShardSpec shard;

    /**
     * Heartbeat file base path (--heartbeat); empty disables.
     * Sharded processes derive their own file with shardStatePath(),
     * exactly like the checkpoint manifest. A heartbeat is published
     * atomically after every run that reaches a terminal status, so a
     * supervisor can distinguish a slow worker from a hung one.
     */
    std::string heartbeatPath;

    /**
     * Caps on .dmdc_cache/quarantine/: corrupt cache entries are set
     * aside there for post-mortems, but chaos campaigns would grow it
     * without bound. Oldest entries are evicted first once either cap
     * is exceeded. 0 = unlimited.
     */
    std::size_t quarantineMaxEntries = 32;
    std::uint64_t quarantineMaxBytes = 8ull * 1024 * 1024;

    /**
     * Campaign-wide verification override (--check): materialized
     * into every run's SimOptions (that doesn't already ask for
     * checking itself) before classification. Checked runs always
     * simulate — they bypass the run cache in both directions — so
     * the oracle actually re-executes every pipeline.
     */
    CheckMode checkMode = CheckMode::Off;
    /** Campaign-wide coherence-agent spec (--agent), same contract. */
    std::string coherenceAgent;
};

/** Execution accounting of the most recent campaign. */
struct CampaignStats
{
    std::size_t runs = 0;        ///< total runs requested
    std::size_t simulated = 0;   ///< actually executed simulations
    std::size_t memoryHits = 0;  ///< served from the in-process map
    std::size_t diskHits = 0;    ///< served from .dmdc_cache/ JSON
    std::size_t uncacheable = 0; ///< observers/tweak runs (always run)
    std::size_t failed = 0;      ///< terminal non-timeout failures
    std::size_t timedOut = 0;    ///< watchdog-terminated runs
    std::size_t skipped = 0;     ///< not executed (fail-fast)
    std::size_t outOfShard = 0;  ///< owned by another shard process
    std::size_t retried = 0;     ///< runs that needed > 1 attempt
    std::size_t quarantined = 0; ///< corrupt cache entries set aside
    std::size_t evicted = 0;     ///< cache entries removed by the cap
    std::size_t quarantineEvicted = 0; ///< quarantined files aged out
    double wallMs = 0.0;         ///< campaign wall-clock, milliseconds

    double
    simsPerSec() const
    {
        return wallMs > 0.0
            ? static_cast<double>(runs) / (wallMs / 1000.0) : 0.0;
    }
};

/** Results plus the per-run execution record of one campaign. */
struct CampaignResult
{
    /** Same order as the requested runs; failed slots are
     *  default-constructed. */
    std::vector<SimResult> results;
    /** Parallel to results. */
    std::vector<RunOutcome> outcomes;

    /**
     * Every run this process is responsible for succeeded.
     * OutOfShard runs belong to a sibling shard process and don't
     * count against this campaign.
     */
    bool
    allOk() const
    {
        for (const RunOutcome &o : outcomes) {
            if (!o.ok() && o.inShard())
                return false;
        }
        return true;
    }

    /** In-shard runs that failed, timed out, or were skipped. */
    std::size_t
    degradedRuns() const
    {
        std::size_t n = 0;
        for (const RunOutcome &o : outcomes) {
            if (!o.ok() && o.inShard())
                ++n;
        }
        return n;
    }
};

/**
 * Runs campaigns. Instances are independent (each has its own
 * in-process memo map); the process-wide instance behind runSuite()
 * is reachable via global().
 */
class CampaignRunner
{
  public:
    explicit CampaignRunner(CampaignConfig config = {});

    /**
     * Execute every run in @p runs and report results plus per-run
     * RunOutcomes in the same order. Identical to running
     * runSimulation() serially per element, but parallel and
     * memoized; the caller decides what a failed run means. (The
     * former run() entry point, which fatal()ed on any failure, is
     * gone — every harness renders degraded cells from the
     * RunOutcomes instead of dying.)
     */
    CampaignResult runChecked(const std::vector<SimOptions> &runs,
                              bool verbose = false);

    /** Single-run convenience wrapper (still cache-aware). */
    SimResult runOne(const SimOptions &options, bool verbose = false);

    const CampaignConfig &config() const { return config_; }

    /** Accounting of the most recent run() call. */
    const CampaignStats &lastStats() const { return lastStats_; }

    /** Simulations actually executed over this runner's lifetime. */
    std::uint64_t totalSimulated() const { return totalSimulated_; }

    /** The process-wide runner used by runSuite(). */
    static CampaignRunner &global();

    /**
     * Replace the process-wide runner's configuration. Call before
     * the first runSuite() (benches do this while parsing argv).
     */
    static void configureGlobal(const CampaignConfig &config);

    /** The on-disk half of the run cache (see cache_store.hh). */
    CacheStore &diskStore() { return *diskStore_; }

  private:
    /** Disk-cache probe result. */
    enum class CacheLoad { Hit, Miss, Corrupt };

    CacheLoad loadFromDisk(const std::string &key, SimResult &out);
    void storeToDisk(const std::string &key, const SimResult &r);

    CampaignConfig config_;
    CampaignStats lastStats_;
    std::uint64_t totalSimulated_ = 0;

    /** Owns the on-disk layout: CRC framing, quarantine, the index
     *  log, LRU eviction. The runner keeps the SimResult <-> JSON
     *  translation and key validation. */
    std::unique_ptr<CacheStore> diskStore_;

    std::mutex memMutex_;
    std::unordered_map<std::string, SimResult> memCache_;
};

/**
 * True if @p opt can be fingerprinted: runs carrying observers or a
 * tweak callback have effects/inputs outside SimOptions and are never
 * cached.
 */
bool cacheableOptions(const SimOptions &opt);

/**
 * Canonical fingerprint of every behavior-affecting SimOptions field
 * (plus a cache format version). Two runs with equal keys produce
 * bit-identical SimResults. Precondition: cacheableOptions(opt).
 */
std::string cacheKey(const SimOptions &opt);

/**
 * Hash of the policy registry's version string (API version + every
 * scheme@revision): the simulator-behavior half of every cache key,
 * and the revision the dmdc_serve handshake compares so a client
 * never trusts results from a daemon with different policies.
 */
const std::string &policySourceFingerprint();

// ---- machine-readable campaign journal (bench --json) ----

/**
 * Record every subsequent campaign run into an in-process journal
 * flushed to @p path (JSON) at flushCampaignJournal() / process exit.
 * Failed runs appear with their status, error category and attempt
 * count — the journal is the campaign's failure manifest.
 *
 * @p deterministic strips every nondeterministic field (timestamps,
 * wall-clock, cache provenance, attempt counts) and sorts records
 * canonically, so two campaigns over the same run list — interrupted
 * + resumed vs. uninterrupted — produce bit-identical files.
 */
void setCampaignJournal(const std::string &path,
                        bool deterministic = false);

/** Write the journal now (no-op when no path is set). */
void flushCampaignJournal();

// ---- cooperative interruption (worker side of the supervisor) --------

/**
 * Request a graceful campaign interruption (async-signal-safe; called
 * from the worker's SIGINT/SIGTERM handler). Runs not yet started
 * complete as Skipped("interrupted by signal"), in-flight runs finish
 * and are checkpointed/cached normally, and the campaign returns with
 * its manifest and journal consistent — a --resume re-simulates only
 * what the interrupt skipped.
 */
void requestCampaignInterrupt();

/** Has requestCampaignInterrupt() been called in this process? */
bool campaignInterruptRequested();

} // namespace dmdc

#endif // DMDC_SIM_CAMPAIGN_RUNNER_HH
