/**
 * @file
 * Parallel campaign engine with a memoizing run cache.
 *
 * A campaign is an ordered list of independent (benchmark, config,
 * scheme) simulation runs. CampaignRunner fans the list out across a
 * ThreadPool while preserving the serial result ordering and
 * bit-identical SimResults (each Simulator owns all of its state, so
 * runs are deterministic functions of their SimOptions).
 *
 * Runs whose SimOptions are canonically fingerprintable (no attached
 * observers, no tweak callback) are additionally memoized in an
 * in-process map and an on-disk JSON cache (.dmdc_cache/), so the
 * Baseline campaigns that nearly every bench binary re-simulates are
 * near-free after the first binary computes them.
 */

#ifndef DMDC_SIM_CAMPAIGN_RUNNER_HH
#define DMDC_SIM_CAMPAIGN_RUNNER_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hh"

namespace dmdc
{

/** Knobs of a CampaignRunner (see also bench --jobs / --no-cache). */
struct CampaignConfig
{
    /** Worker threads; 0 selects ThreadPool::defaultConcurrency(). */
    unsigned jobs = 0;
    /** Enable the in-process + on-disk run cache. */
    bool useCache = true;
    /** On-disk cache directory (created on demand). */
    std::string cacheDir = ".dmdc_cache";
};

/** Execution accounting of the most recent campaign. */
struct CampaignStats
{
    std::size_t runs = 0;        ///< total runs requested
    std::size_t simulated = 0;   ///< actually executed simulations
    std::size_t memoryHits = 0;  ///< served from the in-process map
    std::size_t diskHits = 0;    ///< served from .dmdc_cache/ JSON
    std::size_t uncacheable = 0; ///< observers/tweak runs (always run)
    double wallMs = 0.0;         ///< campaign wall-clock, milliseconds

    double
    simsPerSec() const
    {
        return wallMs > 0.0
            ? static_cast<double>(runs) / (wallMs / 1000.0) : 0.0;
    }
};

/**
 * Runs campaigns. Instances are independent (each has its own
 * in-process memo map); the process-wide instance behind runSuite()
 * is reachable via global().
 */
class CampaignRunner
{
  public:
    explicit CampaignRunner(CampaignConfig config = {});

    /**
     * Execute every run in @p runs and return results in the same
     * order. Identical to running runSimulation() serially per
     * element, but parallel and memoized. @p verbose prints one
     * inform() line per completed run plus a campaign summary line.
     */
    std::vector<SimResult> run(const std::vector<SimOptions> &runs,
                               bool verbose = false);

    /** Single-run convenience wrapper (still cache-aware). */
    SimResult runOne(const SimOptions &options, bool verbose = false);

    const CampaignConfig &config() const { return config_; }

    /** Accounting of the most recent run() call. */
    const CampaignStats &lastStats() const { return lastStats_; }

    /** Simulations actually executed over this runner's lifetime. */
    std::uint64_t totalSimulated() const { return totalSimulated_; }

    /** The process-wide runner used by runSuite(). */
    static CampaignRunner &global();

    /**
     * Replace the process-wide runner's configuration. Call before
     * the first runSuite() (benches do this while parsing argv).
     */
    static void configureGlobal(const CampaignConfig &config);

  private:
    bool loadFromDisk(const std::string &key, SimResult &out) const;
    void storeToDisk(const std::string &key, const SimResult &r) const;
    std::string diskPath(const std::string &key) const;

    CampaignConfig config_;
    CampaignStats lastStats_;
    std::uint64_t totalSimulated_ = 0;

    std::mutex memMutex_;
    std::unordered_map<std::string, SimResult> memCache_;
};

/**
 * True if @p opt can be fingerprinted: runs carrying observers or a
 * tweak callback have effects/inputs outside SimOptions and are never
 * cached.
 */
bool cacheableOptions(const SimOptions &opt);

/**
 * Canonical fingerprint of every behavior-affecting SimOptions field
 * (plus a cache format version). Two runs with equal keys produce
 * bit-identical SimResults. Precondition: cacheableOptions(opt).
 */
std::string cacheKey(const SimOptions &opt);

// ---- machine-readable campaign journal (bench --json) ----

/**
 * Record every subsequent campaign run into an in-process journal
 * flushed to @p path (JSON) at flushCampaignJournal() / process exit.
 */
void setCampaignJournal(const std::string &path);

/** Write the journal now (no-op when no path is set). */
void flushCampaignJournal();

} // namespace dmdc

#endif // DMDC_SIM_CAMPAIGN_RUNNER_HH
