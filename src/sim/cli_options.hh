/**
 * @file
 * Shared command-line option layer for every harness.
 *
 * Before this layer, bench/bench_common.hh and tools/dmdc_sim.cc each
 * hand-rolled an argv loop: flags parsed in one binary but not the
 * other, `--insts=abc` died with an uncaught std::invalid_argument,
 * and `--bench=` took a list in dmdc_sim but a single name in the
 * benches. CliParser is a small declarative flag table — register
 * options, then parse — with strict number validation (malformed or
 * out-of-range values produce a clean usage message and exit code
 * kExitUsage). CampaignCliOptions bundles the campaign-engine flags
 * (--jobs/--no-cache/--json/--timeout/--max-retries/--state/--resume/
 * --shard/...) so they spell and behave identically everywhere.
 */

#ifndef DMDC_SIM_CLI_OPTIONS_HH
#define DMDC_SIM_CLI_OPTIONS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/trace_sink.hh"
#include "sim/campaign_runner.hh"
#include "sim/campaign_shard.hh"
#include "sim/supervisor.hh"

namespace dmdc
{

// Process exit codes shared by every harness.
constexpr int kExitOk = 0;       ///< success
constexpr int kExitFailure = 1;  ///< operation failed (all runs, merge)
constexpr int kExitUsage = 2;    ///< bad command line / bad config
constexpr int kExitDegraded = 4; ///< finished, but some runs degraded
/** Interrupted by SIGINT/SIGTERM after a graceful drain: checkpoint
 *  manifest and journal are flushed and --resume will converge.
 *  Distinct from kExitFailure so a supervisor can tell "stop
 *  requested" from "worker broke". */
constexpr int kExitInterrupted = 5;

/**
 * Strict unsigned decimal parse: the whole token must be digits and
 * fit @p out. Unlike std::stoull this never throws and never accepts
 * trailing garbage ("12x"), signs, or whitespace.
 */
bool parseCliU64(const std::string &text, std::uint64_t &out);
bool parseCliUnsigned(const std::string &text, unsigned &out);
/** Strict double parse (full-token, finite). */
bool parseCliDouble(const std::string &text, double &out);

/**
 * Declarative argv parser. Options register a name ("jobs" matches
 * --jobs) plus a destination; values accept both `--name=value` and
 * `--name value`. Unknown options and malformed values fail with a
 * message naming the offending argument.
 */
class CliParser
{
  public:
    explicit CliParser(std::string program, std::string synopsis = "");

    /** `--name` sets *out = true. */
    void flag(const std::string &name, bool *out,
              const std::string &help);
    /** `--name` invokes fn (e.g. --quick presets, --list actions). */
    void action(const std::string &name, std::function<void()> fn,
                const std::string &help);
    /** `--name=value` with strict numeric validation. */
    void value(const std::string &name, std::uint64_t *out,
               const std::string &help);
    void value(const std::string &name, unsigned *out,
               const std::string &help);
    void value(const std::string &name, double *out,
               const std::string &help);
    void value(const std::string &name, std::string *out,
               const std::string &help);
    /** `--name=a,b,c` replaces *out with the comma-split list. */
    void list(const std::string &name, std::vector<std::string> *out,
              const std::string &help);
    /**
     * `--name=value` routed through a custom validator; return false
     * (after filling @p err) to reject the value.
     */
    void valueAction(
        const std::string &name,
        std::function<bool(const std::string &, std::string &)> fn,
        const std::string &help);
    /** Collect bare (non --option) arguments; error when absent. */
    void positional(std::vector<std::string> *out,
                    const std::string &label);
    /**
     * Collect *unrecognized* arguments instead of rejecting them:
     * unknown `--name[=value]` tokens (and, without a positional sink,
     * bare arguments) are appended to @p out verbatim, in order. This
     * is how the launcher forwards campaign flags it doesn't know to
     * its workers. Forwarded options must use the `--name=value`
     * one-token spelling — a detached value after an unknown option
     * is indistinguishable from a bare argument.
     */
    void passthrough(std::vector<std::string> *out);

    /** Parse argv; false + @p err on any problem (nothing printed). */
    bool parse(int argc, char **argv, std::string &err);
    /** Parse argv; on error print message + usage and exit(kExitUsage).
     *  Also handles --help (prints usage, exits 0). */
    void parseOrExit(int argc, char **argv);
    /** Print @p err + usage to stderr and exit(kExitUsage). */
    [[noreturn]] void failUsage(const std::string &err) const;

    std::string usage() const;

  private:
    enum class Kind
    {
        Flag, Action, U64, Unsigned, Double, String, List, Custom
    };

    struct Option
    {
        std::string name;
        Kind kind;
        void *out = nullptr;
        std::function<void()> fn;
        std::function<bool(const std::string &, std::string &)> custom;
        std::string help;

        bool
        takesValue() const
        {
            return kind != Kind::Flag && kind != Kind::Action;
        }
    };

    const Option *findOption(const std::string &name) const;
    bool applyValue(const Option &opt, const std::string &value,
                    std::string &err);

    std::string program_;
    std::string synopsis_;
    std::vector<Option> options_;
    std::vector<std::string> *positional_ = nullptr;
    std::string positionalLabel_;
    std::vector<std::string> *passthrough_ = nullptr;
};

/**
 * The campaign-engine flag bundle every campaign-running binary
 * shares. Usage: addTo(parser); parse; finalize(); apply().
 */
struct CampaignCliOptions
{
    CampaignConfig config;        ///< assembled runner configuration
    std::string jsonPath;         ///< --json journal target
    bool jsonDeterministic = false;
    bool workerMode = false;      ///< --heartbeat given (supervised)
    std::uint64_t cacheMaxMb = 0; ///< --cache-max-mb (0 = unlimited)
    std::string shardText;        ///< raw --shard=i/N value
    std::string schedulerText;    ///< raw --scheduler value
    bool noCache = false;         ///< --no-cache
    TraceOptions trace;           ///< --trace / --trace-out / --trace-buffer
    std::string traceOutText;     ///< raw --trace-out value
    std::string checkText;        ///< raw --check value
    std::string agentText;        ///< raw --agent value

    /** Register the shared flags on @p parser. */
    void addTo(CliParser &parser);

    /**
     * Cross-validate and derive: parse --shard, require --state with
     * --resume, require --trace with --trace-out, translate the
     * cache cap. False + @p err on conflict.
     */
    bool finalize(std::string &err);

    /**
     * Configure the process-wide runner, journal, and trace sink from
     * this. Shard workers derive a per-shard trace path so
     * cooperating processes never collide on one file.
     */
    void apply() const;
};

/**
 * The supervisor flag bundle of tools/campaign_launch. Everything the
 * launcher's own parser doesn't recognize is forwarded to the workers
 * via CliParser::passthrough().
 */
struct SupervisorCliOptions
{
    SupervisorOptions options;
    TraceOptions trace;       ///< --trace / --trace-out / --trace-buffer
    std::string traceOutText; ///< raw --trace-out value

    /** Register --procs/--heartbeat-interval/--hang-deadline/
     *  --shard-retries/--launch-dir/--worker/--out/--resume/--verbose
     *  (plus the tracing flags) on @p parser and hook the passthrough
     *  sink. */
    void addTo(CliParser &parser);

    /**
     * Cross-validate: procs >= 1, a usable worker binary (defaulted
     * from @p argv0's directory when --worker is absent), and no
     * forwarded flag that the supervisor itself owns (--shard, --json,
     * --state, --heartbeat, --resume, ...). Re-appends the tracing
     * flags to the forwarded worker args so workers trace too (each
     * deriving its own per-shard output path). False + @p err on
     * conflict.
     */
    bool finalize(const std::string &argv0, std::string &err);

    /**
     * Configure the launcher's own trace sink (supervisor-category
     * spans), writing to a ".supervisor"-tagged sibling of the trace
     * path so it never collides with worker output.
     */
    void applyTracing() const;
};

} // namespace dmdc

#endif // DMDC_SIM_CLI_OPTIONS_HH
