#include "sim/run_scheduler.hh"

#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <tuple>
#include <unordered_map>

#include "common/random.hh"
#include "common/trace_sink.hh"
#include "sim/campaign_shard.hh"

namespace dmdc
{

std::vector<RunGroup>
groupRunsByIdentity(const std::vector<SimOptions> &runs)
{
    std::vector<RunGroup> groups;
    std::unordered_map<std::string, std::size_t> byKey;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const SimOptions &opt = runs[i];
        const std::string key = journalIdentity(
            opt.benchmark, opt.scheme, opt.configLevel);
        auto it = byKey.find(key);
        if (it == byKey.end()) {
            it = byKey.emplace(key, groups.size()).first;
            groups.push_back(
                {key, hashBytes(key.data(), key.size()), 0.0, {}});
        }
        RunGroup &g = groups[it->second];
        // Simulation cost is linear in the instruction budget; the
        // budget is the best machine-independent estimate available
        // before running.
        g.cost += static_cast<double>(opt.warmupInsts) +
                  static_cast<double>(opt.runInsts);
        g.members.push_back(i);
    }
    return groups;
}

std::vector<unsigned>
lptAssignGroups(const std::vector<RunGroup> &groups, unsigned bins)
{
    std::vector<unsigned> assignment(groups.size(), 0);
    if (bins <= 1 || groups.empty())
        return assignment;

    // Longest-processing-time greedy: place big groups first, each on
    // the currently least-loaded bin. The (hash, key) tie-breakers
    // make the order — and therefore the whole assignment — a pure
    // function of the group list.
    std::vector<std::size_t> order(groups.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  const RunGroup &ga = groups[a];
                  const RunGroup &gb = groups[b];
                  return std::tie(gb.cost, ga.hash, ga.key) <
                         std::tie(ga.cost, gb.hash, gb.key);
              });
    std::vector<double> load(bins, 0.0);
    for (std::size_t idx : order) {
        std::size_t target = 0;
        for (std::size_t s = 1; s < load.size(); ++s) {
            if (load[s] < load[target])
                target = s;
        }
        load[target] += groups[idx].cost;
        assignment[idx] = static_cast<unsigned>(target);
    }
    return assignment;
}

const char *
schedulerKindName(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::WorkStealing: return "work-stealing";
      case SchedulerKind::StaticLpt:    return "static-lpt";
    }
    return "?";
}

bool
parseSchedulerKind(const std::string &name, SchedulerKind &out,
                   std::string &err)
{
    if (name == "work-stealing") {
        out = SchedulerKind::WorkStealing;
        return true;
    }
    if (name == "static-lpt") {
        out = SchedulerKind::StaticLpt;
        return true;
    }
    err = "unknown scheduler '" + name +
          "' (expected work-stealing or static-lpt)";
    return false;
}

namespace
{

/** Group a flat item list by identity (items sharing an identity form
 *  one RunGroup whose members index the item vector). */
std::vector<RunGroup>
groupItems(const std::vector<ScheduledRun> &items)
{
    std::vector<RunGroup> groups;
    std::unordered_map<std::string, std::size_t> byKey;
    for (std::size_t i = 0; i < items.size(); ++i) {
        const ScheduledRun &r = items[i];
        auto it = byKey.find(r.identity);
        if (it == byKey.end()) {
            it = byKey.emplace(r.identity, groups.size()).first;
            groups.push_back({r.identity,
                              hashBytes(r.identity.data(),
                                        r.identity.size()),
                              0.0, {}});
        }
        RunGroup &g = groups[it->second];
        g.cost += r.cost;
        g.members.push_back(i);
    }
    return groups;
}

/**
 * Shared base: per-worker deques seeded by the LPT partition. The
 * seed places whole identity groups, biggest first, so each deque
 * starts with a balanced, co-located slice.
 */
class DequeSchedulerBase : public RunScheduler
{
  public:
    void
    seed(std::vector<ScheduledRun> items, unsigned workers) override
    {
        workers_ = std::max(1u, workers);
        deques_.clear();
        for (unsigned w = 0; w < workers_; ++w)
            deques_.push_back(std::make_unique<Deque>());
        const std::vector<RunGroup> groups = groupItems(items);
        const std::vector<unsigned> bins =
            lptAssignGroups(groups, workers_);
        for (std::size_t g = 0; g < groups.size(); ++g) {
            Deque &d = *deques_[bins[g]];
            for (std::size_t member : groups[g].members)
                d.q.push_back(std::move(items[member]));
        }
        for (const auto &d : deques_)
            d->size.store(d->q.size(), std::memory_order_relaxed);
    }

    void
    submit(ScheduledRun item) override
    {
        // Co-locate by identity so a daemon submitting the same
        // triple twice lands both on one worker's deque.
        const unsigned w = static_cast<unsigned>(
            hashBytes(item.identity.data(), item.identity.size()) %
            workers_);
        Deque &d = *deques_[w];
        std::lock_guard<std::mutex> lock(d.m);
        d.q.push_back(std::move(item));
        d.size.fetch_add(1, std::memory_order_relaxed);
    }

  protected:
    struct Deque
    {
        std::mutex m;
        std::deque<ScheduledRun> q;
        std::atomic<std::size_t> size{0};
    };

    bool
    popOwn(unsigned worker, ScheduledRun &out)
    {
        Deque &d = *deques_[worker];
        std::lock_guard<std::mutex> lock(d.m);
        if (d.q.empty())
            return false;
        out = std::move(d.q.front());
        d.q.pop_front();
        d.size.fetch_sub(1, std::memory_order_relaxed);
        return true;
    }

    unsigned workers_ = 1;
    std::vector<std::unique_ptr<Deque>> deques_;
};

/** Pure static partition: a worker owns its bin and nothing else. */
class StaticLptScheduler final : public DequeSchedulerBase
{
  public:
    bool
    next(unsigned worker, ScheduledRun &out) override
    {
        return popOwn(worker % workers_, out);
    }
};

/** LPT-seeded deques plus steal-half rebalancing. */
class WorkStealingScheduler final : public DequeSchedulerBase
{
  public:
    bool
    next(unsigned worker, ScheduledRun &out) override
    {
        const unsigned w = worker % workers_;
        for (;;) {
            if (popOwn(w, out))
                return true;
            // Pick the victim with the most unclaimed work (sizes are
            // racy hints; the steal itself revalidates under lock).
            unsigned victim = w;
            std::size_t most = 0;
            for (unsigned v = 0; v < workers_; ++v) {
                if (v == w)
                    continue;
                const std::size_t sz =
                    deques_[v]->size.load(std::memory_order_relaxed);
                if (sz > most) {
                    most = sz;
                    victim = v;
                }
            }
            if (most == 0)
                return false; // nothing unclaimed anywhere
            stealHalf(victim, w);
            // Retry even if the steal raced empty: another thief may
            // have taken it, but then its deque drains toward the
            // `most == 0` exit.
        }
    }

  private:
    void
    stealHalf(unsigned victim, unsigned thief)
    {
        Deque &v = *deques_[victim];
        Deque &t = *deques_[thief];
        // Deadlock-free: every thief locks in index order.
        Deque &first = victim < thief ? v : t;
        Deque &second = victim < thief ? t : v;
        std::lock_guard<std::mutex> l1(first.m);
        std::lock_guard<std::mutex> l2(second.m);
        // Take the *back* half: the owner works from the front, so
        // the steal touches the work it would reach last.
        const std::size_t n = (v.q.size() + 1) / 2;
        for (std::size_t i = 0; i < n; ++i) {
            t.q.push_back(std::move(v.q.back()));
            v.q.pop_back();
        }
        v.size.fetch_sub(n, std::memory_order_relaxed);
        t.size.fetch_add(n, std::memory_order_relaxed);
        static TraceCategory &cat = traceCategory("runner");
        static const std::uint16_t steal = traceNameId("steal");
        traceInstantArg(cat, steal, n);
    }
};

} // namespace

std::unique_ptr<RunScheduler>
makeRunScheduler(SchedulerKind kind)
{
    if (kind == SchedulerKind::StaticLpt)
        return std::make_unique<StaticLptScheduler>();
    return std::make_unique<WorkStealingScheduler>();
}

} // namespace dmdc
