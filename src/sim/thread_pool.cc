/**
 * @file
 * Thread pool implementation.
 */

#include "sim/thread_pool.hh"

namespace dmdc
{

unsigned
ThreadPool::defaultConcurrency()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned num_threads)
{
    if (num_threads == 0)
        num_threads = defaultConcurrency();
    workers_.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workReady_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    workReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allIdle_.wait(lock,
                  [this] { return queue_.empty() && running_ == 0; });
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        workReady_.wait(lock,
                        [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty())
            return;  // stopping_ and drained
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        ++running_;
        lock.unlock();
        task();
        lock.lock();
        --running_;
        if (queue_.empty() && running_ == 0)
            allIdle_.notify_all();
    }
}

} // namespace dmdc
