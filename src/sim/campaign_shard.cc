#include "sim/campaign_shard.hh"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "common/json.hh"
#include "common/random.hh"
#include "sim/run_scheduler.hh"

namespace dmdc
{

std::string
journalIdentity(const std::string &benchmark, const std::string &scheme,
                unsigned config)
{
    std::string id = benchmark;
    id += '|';
    id += scheme;
    id += '|';
    id += std::to_string(config);
    return id;
}

namespace
{

/** Same escaping the journal writer applies to string fields. */
std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out.push_back(' ');
        } else {
            out.push_back(c);
        }
    }
    return out;
}

} // namespace

// ---- shard spec ------------------------------------------------------

bool
parseShardSpec(const std::string &text, ShardSpec &out, std::string &err)
{
    const std::size_t slash = text.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= text.size()) {
        err = "expected --shard=i/N (e.g. 0/2), got '" + text + "'";
        return false;
    }
    const std::string idx = text.substr(0, slash);
    const std::string cnt = text.substr(slash + 1);
    for (const std::string &part : {idx, cnt}) {
        if (part.empty() ||
            !std::all_of(part.begin(), part.end(), [](unsigned char c) {
                return std::isdigit(c) != 0;
            })) {
            err = "shard spec '" + text + "' is not of the form i/N";
            return false;
        }
        if (part.size() > 6) {
            err = "shard spec '" + text + "' is out of range";
            return false;
        }
    }
    const unsigned long i = std::stoul(idx);
    const unsigned long n = std::stoul(cnt);
    if (n == 0) {
        err = "shard count must be >= 1";
        return false;
    }
    if (i >= n) {
        err = "shard index " + idx + " out of range for " + cnt +
              " shards (indices are 0-based)";
        return false;
    }
    out.index = static_cast<unsigned>(i);
    out.count = static_cast<unsigned>(n);
    return true;
}

std::string
shardSpecName(const ShardSpec &spec)
{
    return std::to_string(spec.index) + '/' + std::to_string(spec.count);
}

std::string
shardStatePath(const std::string &statePath, const ShardSpec &spec)
{
    if (statePath.empty() || !spec.active())
        return statePath;
    const std::string suffix = ".shard" + std::to_string(spec.index) +
                               "of" + std::to_string(spec.count);
    const std::size_t slash = statePath.find_last_of('/');
    const std::size_t dot = statePath.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
        return statePath + suffix;
    }
    return statePath.substr(0, dot) + suffix + statePath.substr(dot);
}

// ---- partition -------------------------------------------------------

std::vector<unsigned>
shardAssignment(const std::vector<SimOptions> &runs, unsigned shardCount)
{
    std::vector<unsigned> assignment(runs.size(), 0);
    if (shardCount <= 1 || runs.empty())
        return assignment;

    // Group by journal identity so repeated (benchmark, scheme,
    // config) triples — legal within one campaign — can never be split
    // across shards, which would break the merger's disjointness
    // invariant. The grouping + LPT greedy live in run_scheduler.cc
    // now, shared with the thread-level schedulers; the assignment is
    // still byte-for-byte the one earlier releases computed.
    const std::vector<RunGroup> groups = groupRunsByIdentity(runs);
    const std::vector<unsigned> bins =
        lptAssignGroups(groups, shardCount);
    for (std::size_t g = 0; g < groups.size(); ++g) {
        for (std::size_t member : groups[g].members)
            assignment[member] = bins[g];
    }
    return assignment;
}

// ---- journal model ---------------------------------------------------

bool
journalEntryLess(const JournalEntry &a, const JournalEntry &b)
{
    return std::tie(a.benchmark, a.scheme, a.config, a.status, a.error) <
           std::tie(b.benchmark, b.scheme, b.config, b.status, b.error);
}

void
writeJournalEntry(std::ostream &os, const JournalEntry &e)
{
    os << "\n  {\"benchmark\":\"" << e.benchmark
       << "\",\"scheme\":\"" << e.scheme
       << "\",\"config\":" << e.config
       << ",\"status\":\"" << runStatusName(e.status) << '"';
    if (e.status == RunStatus::Ok) {
        os << ",\"ipc\":" << e.ipcToken
           << ",\"cycles\":" << e.cyclesToken;
    } else {
        os << ",\"category\":\"" << escapeJson(e.category)
           << "\",\"error\":\"" << escapeJson(e.error) << '"';
    }
    os << '}';
}

// ---- JSON parsing ----------------------------------------------------

namespace
{

bool
numberField(const JsonValue &obj, const char *key, std::uint64_t &out,
            std::string &err)
{
    const JsonValue *v = obj.find(key);
    if (!v || v->kind != JsonValue::Kind::Number) {
        err = std::string("journal header missing numeric '") + key +
              "' field";
        return false;
    }
    try {
        out = std::stoull(v->text);
    } catch (const std::exception &) {
        err = std::string("journal '") + key + "' is not an integer";
        return false;
    }
    return true;
}

} // namespace

bool
parseShardJournal(const std::string &text, ShardJournal &out,
                  std::string &err)
{
    out = ShardJournal{};
    JsonValue root;
    if (!parseJson(text, root, err))
        return false;
    if (root.kind != JsonValue::Kind::Object) {
        err = "journal is not a JSON object";
        return false;
    }

    std::uint64_t version = 0;
    if (!numberField(root, "version", version, err))
        return false;
    out.version = static_cast<unsigned>(version);
    const JsonValue *commit = root.find("commit");
    if (!commit || commit->kind != JsonValue::Kind::String) {
        err = "journal header missing 'commit' field";
        return false;
    }
    out.commit = commit->text;

    const JsonValue *campaign = root.find("campaign");
    const bool hasIndex = root.find("shard_index") != nullptr;
    const bool hasCount = root.find("shard_count") != nullptr;
    const bool hasTotal = root.find("runs_total") != nullptr;
    if (campaign || hasIndex || hasCount || hasTotal) {
        if (!campaign || campaign->kind != JsonValue::Kind::String ||
            !hasIndex || !hasCount || !hasTotal) {
            err = "journal has a partial shard header (need campaign, "
                  "shard_index, shard_count, runs_total)";
            return false;
        }
        std::uint64_t index = 0, count = 0;
        if (!numberField(root, "shard_index", index, err) ||
            !numberField(root, "shard_count", count, err) ||
            !numberField(root, "runs_total", out.runsTotal, err))
            return false;
        if (count == 0 || index >= count) {
            err = "journal shard_index/shard_count out of range";
            return false;
        }
        out.sharded = true;
        out.campaign = campaign->text;
        out.shardIndex = static_cast<unsigned>(index);
        out.shardCount = static_cast<unsigned>(count);
    }

    const JsonValue *results = root.find("results");
    if (!results || results->kind != JsonValue::Kind::Array) {
        err = "journal has no 'results' array";
        return false;
    }
    out.entries.reserve(results->items.size());
    for (const JsonValue &item : results->items) {
        if (item.kind != JsonValue::Kind::Object) {
            err = "journal 'results' element is not an object";
            return false;
        }
        JournalEntry e;
        const JsonValue *benchmark = item.find("benchmark");
        const JsonValue *scheme = item.find("scheme");
        const JsonValue *config = item.find("config");
        const JsonValue *status = item.find("status");
        if (!benchmark || benchmark->kind != JsonValue::Kind::String ||
            !scheme || scheme->kind != JsonValue::Kind::String ||
            !config || config->kind != JsonValue::Kind::Number ||
            !status || status->kind != JsonValue::Kind::String) {
            err = "journal record missing benchmark/scheme/config/"
                  "status";
            return false;
        }
        e.benchmark = benchmark->text;
        e.scheme = scheme->text;
        std::uint64_t cfg = 0;
        if (!numberField(item, "config", cfg, err))
            return false;
        e.config = static_cast<unsigned>(cfg);
        if (!parseRunStatus(status->text, e.status)) {
            err = "journal record has unknown status '" + status->text +
                  "'";
            return false;
        }
        if (e.status == RunStatus::Ok) {
            const JsonValue *ipc = item.find("ipc");
            const JsonValue *cycles = item.find("cycles");
            if (!ipc || ipc->kind != JsonValue::Kind::Number ||
                !cycles || cycles->kind != JsonValue::Kind::Number) {
                err = "ok journal record missing ipc/cycles";
                return false;
            }
            e.ipcToken = ipc->text;
            e.cyclesToken = cycles->text;
        } else {
            const JsonValue *category = item.find("category");
            const JsonValue *error = item.find("error");
            if (!category ||
                category->kind != JsonValue::Kind::String || !error ||
                error->kind != JsonValue::Kind::String) {
                err = "failure journal record missing category/error";
                return false;
            }
            e.category = category->text;
            e.error = error->text;
        }
        out.entries.push_back(std::move(e));
    }
    return true;
}

bool
loadShardJournal(const std::string &path, ShardJournal &out,
                 std::string &err)
{
    std::ifstream is(path);
    if (!is) {
        err = "cannot open journal '" + path + "'";
        return false;
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    if (!parseShardJournal(ss.str(), out, err)) {
        err = path + ": " + err;
        return false;
    }
    return true;
}

// ---- merging ---------------------------------------------------------

bool
mergeShardJournals(const std::vector<ShardJournal> &shards,
                   ShardJournal &out, std::string &err)
{
    out = ShardJournal{};
    if (shards.empty()) {
        err = "no shard journals to merge";
        return false;
    }
    const ShardJournal &first = shards.front();
    if (!first.sharded) {
        err = "journal 0 has no shard header (not a --shard journal)";
        return false;
    }
    for (std::size_t i = 0; i < shards.size(); ++i) {
        const ShardJournal &s = shards[i];
        if (!s.sharded) {
            err = "journal " + std::to_string(i) +
                  " has no shard header (not a --shard journal)";
            return false;
        }
        if (s.version != first.version) {
            err = "journal " + std::to_string(i) +
                  " has a different format version";
            return false;
        }
        if (s.commit != first.commit) {
            err = "journal " + std::to_string(i) +
                  " was produced by a different build (commit '" +
                  s.commit + "' vs '" + first.commit + "')";
            return false;
        }
        if (s.campaign != first.campaign) {
            err = "journal " + std::to_string(i) +
                  " belongs to a foreign campaign (fingerprint '" +
                  s.campaign + "' vs '" + first.campaign + "')";
            return false;
        }
        if (s.shardCount != first.shardCount ||
            s.runsTotal != first.runsTotal) {
            err = "journal " + std::to_string(i) +
                  " disagrees on shard count or campaign run total";
            return false;
        }
    }
    // Name the offender: "have 2 of 3 journals" sends the user
    // hunting; "missing shard 1/3" tells them which worker's output
    // to look for.
    std::vector<bool> seen(first.shardCount, false);
    for (std::size_t i = 0; i < shards.size(); ++i) {
        const ShardJournal &s = shards[i];
        if (seen[s.shardIndex]) {
            err = "duplicate journal for shard " +
                  std::to_string(s.shardIndex) + "/" +
                  std::to_string(first.shardCount) +
                  " (journal " + std::to_string(i) +
                  " repeats an earlier slice)";
            return false;
        }
        seen[s.shardIndex] = true;
    }
    if (shards.size() != first.shardCount) {
        std::string missing;
        for (unsigned i = 0; i < first.shardCount; ++i) {
            if (!seen[i]) {
                if (!missing.empty())
                    missing += ", ";
                missing += std::to_string(i) + "/" +
                           std::to_string(first.shardCount);
            }
        }
        err = "incomplete shard set: have " +
              std::to_string(shards.size()) + " of " +
              std::to_string(first.shardCount) +
              " journals; missing shard " + missing;
        return false;
    }

    // Journal identities must be disjoint across shards: the
    // partitioner co-locates equal (benchmark, scheme, config)
    // triples, so any cross-shard repeat means the inputs mix
    // different campaigns or a shard ran the wrong slice.
    std::unordered_map<std::string, unsigned> owner;
    std::size_t records = 0;
    for (const ShardJournal &s : shards) {
        records += s.entries.size();
        for (const JournalEntry &e : s.entries) {
            const std::string id =
                journalIdentity(e.benchmark, e.scheme, e.config);
            auto it = owner.find(id);
            if (it != owner.end() && it->second != s.shardIndex) {
                err = "run " + id + " appears in both shard " +
                      std::to_string(it->second) + " and shard " +
                      std::to_string(s.shardIndex) +
                      " (overlapping slices)";
                return false;
            }
            owner.emplace(id, s.shardIndex);
        }
    }
    if (records != first.runsTotal) {
        // Per-shard breakdown so the short slice is identifiable at a
        // glance (a crashed worker's partial journal shows up here).
        std::string breakdown;
        for (const ShardJournal &s : shards) {
            if (!breakdown.empty())
                breakdown += ", ";
            breakdown += "shard " + std::to_string(s.shardIndex) +
                         ": " + std::to_string(s.entries.size());
        }
        err = "shard journals hold " + std::to_string(records) +
              " records, campaign expects " +
              std::to_string(first.runsTotal) +
              " (incomplete or over-complete slice union; " +
              breakdown + ")";
        return false;
    }

    out.version = first.version;
    out.commit = first.commit;
    for (const ShardJournal &s : shards) {
        out.entries.insert(out.entries.end(), s.entries.begin(),
                           s.entries.end());
    }
    std::sort(out.entries.begin(), out.entries.end(), journalEntryLess);
    return true;
}

void
writeMergedJournal(std::ostream &os, const ShardJournal &journal)
{
    std::vector<JournalEntry> entries = journal.entries;
    std::sort(entries.begin(), entries.end(), journalEntryLess);
    os << "{\"version\":" << journal.version
       << ",\"commit\":\"" << journal.commit << '"'
       << ",\"results\":[";
    bool first = true;
    for (const JournalEntry &e : entries) {
        if (!first)
            os << ',';
        first = false;
        writeJournalEntry(os, e);
    }
    os << "\n]}\n";
}

} // namespace dmdc
