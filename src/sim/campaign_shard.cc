#include "sim/campaign_shard.hh"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "common/random.hh"

namespace dmdc
{

namespace
{

/** Journal identity of one run: the fields a journal record carries. */
std::string
journalIdentity(const std::string &benchmark, const std::string &scheme,
                unsigned config)
{
    std::string id = benchmark;
    id += '|';
    id += scheme;
    id += '|';
    id += std::to_string(config);
    return id;
}

/** Same escaping the journal writer applies to string fields. */
std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out.push_back(' ');
        } else {
            out.push_back(c);
        }
    }
    return out;
}

} // namespace

// ---- shard spec ------------------------------------------------------

bool
parseShardSpec(const std::string &text, ShardSpec &out, std::string &err)
{
    const std::size_t slash = text.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= text.size()) {
        err = "expected --shard=i/N (e.g. 0/2), got '" + text + "'";
        return false;
    }
    const std::string idx = text.substr(0, slash);
    const std::string cnt = text.substr(slash + 1);
    for (const std::string &part : {idx, cnt}) {
        if (part.empty() ||
            !std::all_of(part.begin(), part.end(), [](unsigned char c) {
                return std::isdigit(c) != 0;
            })) {
            err = "shard spec '" + text + "' is not of the form i/N";
            return false;
        }
        if (part.size() > 6) {
            err = "shard spec '" + text + "' is out of range";
            return false;
        }
    }
    const unsigned long i = std::stoul(idx);
    const unsigned long n = std::stoul(cnt);
    if (n == 0) {
        err = "shard count must be >= 1";
        return false;
    }
    if (i >= n) {
        err = "shard index " + idx + " out of range for " + cnt +
              " shards (indices are 0-based)";
        return false;
    }
    out.index = static_cast<unsigned>(i);
    out.count = static_cast<unsigned>(n);
    return true;
}

std::string
shardSpecName(const ShardSpec &spec)
{
    return std::to_string(spec.index) + '/' + std::to_string(spec.count);
}

std::string
shardStatePath(const std::string &statePath, const ShardSpec &spec)
{
    if (statePath.empty() || !spec.active())
        return statePath;
    const std::string suffix = ".shard" + std::to_string(spec.index) +
                               "of" + std::to_string(spec.count);
    const std::size_t slash = statePath.find_last_of('/');
    const std::size_t dot = statePath.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
        return statePath + suffix;
    }
    return statePath.substr(0, dot) + suffix + statePath.substr(dot);
}

// ---- partition -------------------------------------------------------

std::vector<unsigned>
shardAssignment(const std::vector<SimOptions> &runs, unsigned shardCount)
{
    std::vector<unsigned> assignment(runs.size(), 0);
    if (shardCount <= 1 || runs.empty())
        return assignment;

    // Group by journal identity so repeated (benchmark, scheme,
    // config) triples — legal within one campaign — can never be split
    // across shards, which would break the merger's disjointness
    // invariant.
    struct Group
    {
        std::string key;
        std::uint64_t hash = 0;
        double cost = 0.0;
        std::vector<std::size_t> members;
    };
    std::vector<Group> groups;
    std::unordered_map<std::string, std::size_t> byKey;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const SimOptions &opt = runs[i];
        const std::string key = journalIdentity(
            opt.benchmark, opt.scheme, opt.configLevel);
        auto it = byKey.find(key);
        if (it == byKey.end()) {
            it = byKey.emplace(key, groups.size()).first;
            groups.push_back(
                {key, hashBytes(key.data(), key.size()), 0.0, {}});
        }
        Group &g = groups[it->second];
        // Simulation cost is linear in the instruction budget; the
        // budget is the best machine-independent estimate available
        // before running.
        g.cost += static_cast<double>(opt.warmupInsts) +
                  static_cast<double>(opt.runInsts);
        g.members.push_back(i);
    }

    // Longest-processing-time greedy: place big groups first, each on
    // the currently least-loaded shard. The (hash, key) tie-breakers
    // make the order — and therefore the whole assignment — a pure
    // function of the run list.
    std::sort(groups.begin(), groups.end(),
              [](const Group &a, const Group &b) {
                  return std::tie(b.cost, a.hash, a.key) <
                         std::tie(a.cost, b.hash, b.key);
              });
    std::vector<double> load(shardCount, 0.0);
    for (const Group &g : groups) {
        std::size_t target = 0;
        for (std::size_t s = 1; s < load.size(); ++s) {
            if (load[s] < load[target])
                target = s;
        }
        load[target] += g.cost;
        for (std::size_t member : g.members)
            assignment[member] = static_cast<unsigned>(target);
    }
    return assignment;
}

// ---- journal model ---------------------------------------------------

bool
journalEntryLess(const JournalEntry &a, const JournalEntry &b)
{
    return std::tie(a.benchmark, a.scheme, a.config, a.status, a.error) <
           std::tie(b.benchmark, b.scheme, b.config, b.status, b.error);
}

void
writeJournalEntry(std::ostream &os, const JournalEntry &e)
{
    os << "\n  {\"benchmark\":\"" << e.benchmark
       << "\",\"scheme\":\"" << e.scheme
       << "\",\"config\":" << e.config
       << ",\"status\":\"" << runStatusName(e.status) << '"';
    if (e.status == RunStatus::Ok) {
        os << ",\"ipc\":" << e.ipcToken
           << ",\"cycles\":" << e.cyclesToken;
    } else {
        os << ",\"category\":\"" << escapeJson(e.category)
           << "\",\"error\":\"" << escapeJson(e.error) << '"';
    }
    os << '}';
}

// ---- JSON parsing ----------------------------------------------------

namespace
{

/**
 * Minimal JSON value tree. Numbers keep their raw source token so a
 * parsed journal can be re-serialized byte-identically.
 */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    std::string text; ///< string value (unescaped) or raw number token
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> fields;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &f : fields) {
            if (f.first == key)
                return &f.second;
        }
        return nullptr;
    }
};

class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string &err)
        : text_(text), err_(err)
    {
    }

    bool
    parse(JsonValue &out)
    {
        if (!value(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing content after JSON document");
        return true;
    }

  private:
    bool
    fail(const std::string &msg)
    {
        err_ = msg + " (at byte " + std::to_string(pos_) + ")";
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        const std::size_t len = std::strlen(word);
        if (text_.compare(pos_, len, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos_ += len;
        return true;
    }

    bool
    value(JsonValue &out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == '{')
            return object(out);
        if (c == '[')
            return array(out);
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return string(out.text);
        }
        if (c == 't' || c == 'f') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = (c == 't');
            return literal(c == 't' ? "true" : "false");
        }
        if (c == 'n') {
            out.kind = JsonValue::Kind::Null;
            return literal("null");
        }
        return number(out);
    }

    bool
    object(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            if (!string(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':' after object key");
            ++pos_;
            JsonValue v;
            if (!value(v))
                return false;
            out.fields.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    array(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue v;
            if (!value(v))
                return false;
            out.items.push_back(std::move(v));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    string(std::string &out)
    {
        ++pos_; // '"'
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated string escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':  out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/':  out.push_back('/'); break;
              case 'b':  out.push_back('\b'); break;
              case 'f':  out.push_back('\f'); break;
              case 'n':  out.push_back('\n'); break;
              case 'r':  out.push_back('\r'); break;
              case 't':  out.push_back('\t'); break;
              case 'u':
                // Journals never emit \u escapes; tolerate them as a
                // placeholder rather than decoding UTF-16 here.
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                pos_ += 4;
                out.push_back('?');
                break;
              default:
                return fail("unknown string escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    number(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool digits = false;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                digits = true;
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                ++pos_;
            } else {
                break;
            }
        }
        if (!digits)
            return fail("expected a JSON value");
        out.kind = JsonValue::Kind::Number;
        out.text = text_.substr(start, pos_ - start);
        return true;
    }

    const std::string &text_;
    std::string &err_;
    std::size_t pos_ = 0;
};

bool
numberField(const JsonValue &obj, const char *key, std::uint64_t &out,
            std::string &err)
{
    const JsonValue *v = obj.find(key);
    if (!v || v->kind != JsonValue::Kind::Number) {
        err = std::string("journal header missing numeric '") + key +
              "' field";
        return false;
    }
    try {
        out = std::stoull(v->text);
    } catch (const std::exception &) {
        err = std::string("journal '") + key + "' is not an integer";
        return false;
    }
    return true;
}

} // namespace

bool
parseShardJournal(const std::string &text, ShardJournal &out,
                  std::string &err)
{
    out = ShardJournal{};
    JsonValue root;
    JsonParser parser(text, err);
    if (!parser.parse(root))
        return false;
    if (root.kind != JsonValue::Kind::Object) {
        err = "journal is not a JSON object";
        return false;
    }

    std::uint64_t version = 0;
    if (!numberField(root, "version", version, err))
        return false;
    out.version = static_cast<unsigned>(version);
    const JsonValue *commit = root.find("commit");
    if (!commit || commit->kind != JsonValue::Kind::String) {
        err = "journal header missing 'commit' field";
        return false;
    }
    out.commit = commit->text;

    const JsonValue *campaign = root.find("campaign");
    const bool hasIndex = root.find("shard_index") != nullptr;
    const bool hasCount = root.find("shard_count") != nullptr;
    const bool hasTotal = root.find("runs_total") != nullptr;
    if (campaign || hasIndex || hasCount || hasTotal) {
        if (!campaign || campaign->kind != JsonValue::Kind::String ||
            !hasIndex || !hasCount || !hasTotal) {
            err = "journal has a partial shard header (need campaign, "
                  "shard_index, shard_count, runs_total)";
            return false;
        }
        std::uint64_t index = 0, count = 0;
        if (!numberField(root, "shard_index", index, err) ||
            !numberField(root, "shard_count", count, err) ||
            !numberField(root, "runs_total", out.runsTotal, err))
            return false;
        if (count == 0 || index >= count) {
            err = "journal shard_index/shard_count out of range";
            return false;
        }
        out.sharded = true;
        out.campaign = campaign->text;
        out.shardIndex = static_cast<unsigned>(index);
        out.shardCount = static_cast<unsigned>(count);
    }

    const JsonValue *results = root.find("results");
    if (!results || results->kind != JsonValue::Kind::Array) {
        err = "journal has no 'results' array";
        return false;
    }
    out.entries.reserve(results->items.size());
    for (const JsonValue &item : results->items) {
        if (item.kind != JsonValue::Kind::Object) {
            err = "journal 'results' element is not an object";
            return false;
        }
        JournalEntry e;
        const JsonValue *benchmark = item.find("benchmark");
        const JsonValue *scheme = item.find("scheme");
        const JsonValue *config = item.find("config");
        const JsonValue *status = item.find("status");
        if (!benchmark || benchmark->kind != JsonValue::Kind::String ||
            !scheme || scheme->kind != JsonValue::Kind::String ||
            !config || config->kind != JsonValue::Kind::Number ||
            !status || status->kind != JsonValue::Kind::String) {
            err = "journal record missing benchmark/scheme/config/"
                  "status";
            return false;
        }
        e.benchmark = benchmark->text;
        e.scheme = scheme->text;
        std::uint64_t cfg = 0;
        if (!numberField(item, "config", cfg, err))
            return false;
        e.config = static_cast<unsigned>(cfg);
        if (!parseRunStatus(status->text, e.status)) {
            err = "journal record has unknown status '" + status->text +
                  "'";
            return false;
        }
        if (e.status == RunStatus::Ok) {
            const JsonValue *ipc = item.find("ipc");
            const JsonValue *cycles = item.find("cycles");
            if (!ipc || ipc->kind != JsonValue::Kind::Number ||
                !cycles || cycles->kind != JsonValue::Kind::Number) {
                err = "ok journal record missing ipc/cycles";
                return false;
            }
            e.ipcToken = ipc->text;
            e.cyclesToken = cycles->text;
        } else {
            const JsonValue *category = item.find("category");
            const JsonValue *error = item.find("error");
            if (!category ||
                category->kind != JsonValue::Kind::String || !error ||
                error->kind != JsonValue::Kind::String) {
                err = "failure journal record missing category/error";
                return false;
            }
            e.category = category->text;
            e.error = error->text;
        }
        out.entries.push_back(std::move(e));
    }
    return true;
}

bool
loadShardJournal(const std::string &path, ShardJournal &out,
                 std::string &err)
{
    std::ifstream is(path);
    if (!is) {
        err = "cannot open journal '" + path + "'";
        return false;
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    if (!parseShardJournal(ss.str(), out, err)) {
        err = path + ": " + err;
        return false;
    }
    return true;
}

// ---- merging ---------------------------------------------------------

bool
mergeShardJournals(const std::vector<ShardJournal> &shards,
                   ShardJournal &out, std::string &err)
{
    out = ShardJournal{};
    if (shards.empty()) {
        err = "no shard journals to merge";
        return false;
    }
    const ShardJournal &first = shards.front();
    if (!first.sharded) {
        err = "journal 0 has no shard header (not a --shard journal)";
        return false;
    }
    for (std::size_t i = 0; i < shards.size(); ++i) {
        const ShardJournal &s = shards[i];
        if (!s.sharded) {
            err = "journal " + std::to_string(i) +
                  " has no shard header (not a --shard journal)";
            return false;
        }
        if (s.version != first.version) {
            err = "journal " + std::to_string(i) +
                  " has a different format version";
            return false;
        }
        if (s.commit != first.commit) {
            err = "journal " + std::to_string(i) +
                  " was produced by a different build (commit '" +
                  s.commit + "' vs '" + first.commit + "')";
            return false;
        }
        if (s.campaign != first.campaign) {
            err = "journal " + std::to_string(i) +
                  " belongs to a foreign campaign (fingerprint '" +
                  s.campaign + "' vs '" + first.campaign + "')";
            return false;
        }
        if (s.shardCount != first.shardCount ||
            s.runsTotal != first.runsTotal) {
            err = "journal " + std::to_string(i) +
                  " disagrees on shard count or campaign run total";
            return false;
        }
    }
    // Name the offender: "have 2 of 3 journals" sends the user
    // hunting; "missing shard 1/3" tells them which worker's output
    // to look for.
    std::vector<bool> seen(first.shardCount, false);
    for (std::size_t i = 0; i < shards.size(); ++i) {
        const ShardJournal &s = shards[i];
        if (seen[s.shardIndex]) {
            err = "duplicate journal for shard " +
                  std::to_string(s.shardIndex) + "/" +
                  std::to_string(first.shardCount) +
                  " (journal " + std::to_string(i) +
                  " repeats an earlier slice)";
            return false;
        }
        seen[s.shardIndex] = true;
    }
    if (shards.size() != first.shardCount) {
        std::string missing;
        for (unsigned i = 0; i < first.shardCount; ++i) {
            if (!seen[i]) {
                if (!missing.empty())
                    missing += ", ";
                missing += std::to_string(i) + "/" +
                           std::to_string(first.shardCount);
            }
        }
        err = "incomplete shard set: have " +
              std::to_string(shards.size()) + " of " +
              std::to_string(first.shardCount) +
              " journals; missing shard " + missing;
        return false;
    }

    // Journal identities must be disjoint across shards: the
    // partitioner co-locates equal (benchmark, scheme, config)
    // triples, so any cross-shard repeat means the inputs mix
    // different campaigns or a shard ran the wrong slice.
    std::unordered_map<std::string, unsigned> owner;
    std::size_t records = 0;
    for (const ShardJournal &s : shards) {
        records += s.entries.size();
        for (const JournalEntry &e : s.entries) {
            const std::string id =
                journalIdentity(e.benchmark, e.scheme, e.config);
            auto it = owner.find(id);
            if (it != owner.end() && it->second != s.shardIndex) {
                err = "run " + id + " appears in both shard " +
                      std::to_string(it->second) + " and shard " +
                      std::to_string(s.shardIndex) +
                      " (overlapping slices)";
                return false;
            }
            owner.emplace(id, s.shardIndex);
        }
    }
    if (records != first.runsTotal) {
        // Per-shard breakdown so the short slice is identifiable at a
        // glance (a crashed worker's partial journal shows up here).
        std::string breakdown;
        for (const ShardJournal &s : shards) {
            if (!breakdown.empty())
                breakdown += ", ";
            breakdown += "shard " + std::to_string(s.shardIndex) +
                         ": " + std::to_string(s.entries.size());
        }
        err = "shard journals hold " + std::to_string(records) +
              " records, campaign expects " +
              std::to_string(first.runsTotal) +
              " (incomplete or over-complete slice union; " +
              breakdown + ")";
        return false;
    }

    out.version = first.version;
    out.commit = first.commit;
    for (const ShardJournal &s : shards) {
        out.entries.insert(out.entries.end(), s.entries.begin(),
                           s.entries.end());
    }
    std::sort(out.entries.begin(), out.entries.end(), journalEntryLess);
    return true;
}

void
writeMergedJournal(std::ostream &os, const ShardJournal &journal)
{
    std::vector<JournalEntry> entries = journal.entries;
    std::sort(entries.begin(), entries.end(), journalEntryLess);
    os << "{\"version\":" << journal.version
       << ",\"commit\":\"" << journal.commit << '"'
       << ",\"results\":[";
    bool first = true;
    for (const JournalEntry &e : entries) {
        if (!first)
            os << ',';
        first = false;
        writeJournalEntry(os, e);
    }
    os << "\n]}\n";
}

} // namespace dmdc
