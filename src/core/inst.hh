/**
 * @file
 * DynInst — one in-flight dynamic instruction and all per-instruction
 * pipeline, memory and mechanism state.
 */

#ifndef DMDC_CORE_INST_HH
#define DMDC_CORE_INST_HH

#include <cstdint>

#include "branch/predictor.hh"
#include "common/types.hh"
#include "trace/microop.hh"

namespace dmdc
{

/** Progress of an instruction through the pipeline. */
enum class InstStage : std::uint8_t
{
    Fetched,      ///< in the fetch/decode queue
    Dispatched,   ///< in ROB (+IQ/LSQ), waiting for operands
    Issued,       ///< executing on a functional unit / memory
    Done,         ///< completed, waiting to commit
    Committed,
    Squashed,
};

/** An in-flight dynamic instruction. */
struct DynInst
{
    MicroOp op;
    SeqNum seq = invalidSeqNum;   ///< global age, never recycled
    std::uint64_t traceIndex = ~std::uint64_t{0};  ///< correct-path index
    bool wrongPath = false;

    InstStage stage = InstStage::Fetched;
    Cycle fetchReadyCycle = 0;    ///< earliest dispatch cycle
    Cycle issueCycle = 0;
    Cycle doneCycle = 0;

    /**
     * Source operand producers; nullptr when the value was already
     * architectural at rename. The paired seq lets readiness checks
     * avoid dereferencing producers that have already committed (and
     * been freed): a producer with seq below the ROB head is done.
     */
    DynInst *src1Producer = nullptr;
    DynInst *src2Producer = nullptr;
    DynInst *src3Producer = nullptr;
    SeqNum src1ProducerSeq = invalidSeqNum;
    SeqNum src2ProducerSeq = invalidSeqNum;
    SeqNum src3ProducerSeq = invalidSeqNum;
    DynInst *renamePrev = nullptr;  ///< previous mapping of op.dst
    SeqNum renamePrevSeq = invalidSeqNum;
    bool inIssueQueue = false;

    // ---- branch state ----
    BranchPrediction pred;
    bool predictionMade = false;
    bool mispredicted = false;

    // ---- memory state ----
    bool sqAddrReady = false;     ///< store address resolved
    bool sqDataReady = false;     ///< store data ready
    bool loadIssued = false;      ///< load has obtained its value
    Cycle memIssueCycle = 0;      ///< when the load accessed memory
    SeqNum forwardedFrom = invalidSeqNum; ///< store that forwarded data
    bool rejected = false;        ///< load rejected by SQ this attempt
    Cycle retryCycle = 0;         ///< when a rejected load retries

    // ---- mechanism state (YLA / DMDC) ----
    bool safeLoad = false;        ///< all older stores resolved at issue
    bool safeStore = false;       ///< YLA filtered the LQ check
    bool unsafeStoreChecked = false; ///< DMDC classification done
    SeqNum capturedWindowEnd = invalidSeqNum; ///< YLA value at resolve

    // ---- ground truth (simulator-only ghost state) ----
    bool ghostViolation = false;  ///< true premature load
    SeqNum ghostViolatingStore = invalidSeqNum;

    bool isLoad() const { return op.isLoad(); }
    bool isStore() const { return op.isStore(); }
    bool isBranch() const { return op.isBranch(); }
    bool completed() const
    {
        return stage == InstStage::Done || stage == InstStage::Committed;
    }
};

} // namespace dmdc

#endif // DMDC_CORE_INST_HH
