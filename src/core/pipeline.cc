/**
 * @file
 * Out-of-order pipeline implementation.
 */

#include "core/pipeline.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/trace_sink.hh"

namespace dmdc
{

namespace
{

/**
 * Interned-once trace identities for pipeline events. Replay instants
 * live on the coarse "kernel" category; the per-cycle fetch/issue/
 * commit phase spans get their own "kernel-phases" channel because
 * they emit several records per simulated cycle — enable them
 * explicitly (or via --trace=all) when that granularity is worth the
 * slowdown.
 */
struct PipelineTrace
{
    TraceCategory &cat = traceCategory("kernel");
    TraceCategory &phases = traceCategory("kernel-phases");
    std::uint16_t fetch = traceNameId("fetch");
    std::uint16_t issue = traceNameId("issue");
    std::uint16_t commit = traceNameId("commit");
    std::uint16_t complete = traceNameId("complete");
    std::uint16_t dmdcReplay = traceNameId("dmdc-replay");
    std::uint16_t baselineReplay = traceNameId("baseline-replay");
    std::uint16_t ageReplay = traceNameId("age-table-replay");
};

PipelineTrace &
pipelineTrace()
{
    static PipelineTrace ids;
    return ids;
}

} // namespace

namespace
{

/** Cycles with no commit after which the simulator declares deadlock. */
constexpr Cycle deadlockThreshold = 200000;

} // namespace

Pipeline::Pipeline(const CoreParams &params, Workload &workload)
    : params_(params), workload_(workload),
      // Live instructions are bounded by ROB + fetch queue occupancy;
      // one slab of that size makes the pool allocation-free at
      // steady state.
      pool_(params.robSize + params.fetchQueueSize),
      mem_(params.mem),
      predictor_(params.bp),
      fetch_(params.fetchParams(), workload, predictor_, mem_, pool_),
      rob_(params.robSize, pool_),
      rename_(params.intRegs, params.fpRegs),
      intIq_(params.intIqSize),
      fpIq_(params.fpIqSize),
      fuPool_(params.fu),
      lsq_(params.lsq),
      fetchQueue_(params.fetchQueueSize),
      root_("sim")
{
    issueScratch_.reserve(params.issueWidth);
    regStats(root_);
}

Pipeline::~Pipeline() = default;

void
Pipeline::regStats(StatGroup &parent)
{
    pipeStats_.regCounter("cycles", &stats_.cycles);
    pipeStats_.regCounter("committed_insts", &stats_.committedInsts);
    pipeStats_.regCounter("committed_loads", &stats_.committedLoads);
    pipeStats_.regCounter("committed_stores", &stats_.committedStores);
    pipeStats_.regCounter("committed_branches",
                          &stats_.committedBranches);
    pipeStats_.regCounter("dispatched", &stats_.dispatched);
    pipeStats_.regCounter("issued", &stats_.issued);
    pipeStats_.regCounter("branch_mispredicts",
                          &stats_.branchMispredicts);
    pipeStats_.regCounter("mispred_cond", &stats_.mispredCond);
    pipeStats_.regCounter("mispred_btb_miss", &stats_.mispredBtbMiss);
    pipeStats_.regCounter("mispred_target", &stats_.mispredTarget);
    pipeStats_.regCounter("mispred_return", &stats_.mispredReturn);
    pipeStats_.regCounter("baseline_replays", &stats_.baselineReplays);
    pipeStats_.regCounter("dmdc_replays", &stats_.dmdcReplays);
    pipeStats_.regCounter("age_table_replays",
                          &stats_.ageTableReplays);
    pipeStats_.regCounter("load_rejections", &stats_.loadRejections);
    pipeStats_.regCounter("load_forwards", &stats_.loadForwards);
    pipeStats_.regCounter("speculative_loads",
                          &stats_.speculativeLoads);
    parent.addChild(&pipeStats_);

    fetch_.regStats(parent);
    mem_.regStats(parent);
    regfile_.regStats(parent);
    lsq_.regStats(parent);
}

void
Pipeline::resetStats()
{
    root_.resetAll();
    lastCommitCycle_ = now_;
}

bool
Pipeline::producerDone(const DynInst *producer, SeqNum pseq) const
{
    if (!producer)
        return true;
    const DynInst *head = rob_.head();
    if (!head || pseq < head->seq)
        return true;   // producer already committed
    return producer->completed();
}

bool
Pipeline::operandsReady(const DynInst *inst) const
{
    if (!producerDone(inst->src1Producer, inst->src1ProducerSeq))
        return false;
    if (!producerDone(inst->src2Producer, inst->src2ProducerSeq))
        return false;
    // Store data (src3) is tracked separately; it does not gate
    // address generation.
    if (!inst->isStore() &&
        !producerDone(inst->src3Producer, inst->src3ProducerSeq)) {
        return false;
    }
    return true;
}

void
Pipeline::scheduleCompletion(DynInst *inst, Cycle when)
{
    completions_.push_back(Event{when, inst->seq, inst});
    std::push_heap(completions_.begin(), completions_.end(),
                   [](const Event &a, const Event &b) {
                       return a.when > b.when ||
                           (a.when == b.when && a.seq > b.seq);
                   });
}

unsigned
Pipeline::tick()
{
    ++now_;
    ++stats_.cycles;
    dcachePortsUsed_ = 0;
    fuPool_.tick(now_);

    // Per-cycle phase spans cost two clock reads per stage; a single
    // relaxed load guards the whole block when the channel is off.
    PipelineTrace &pt = pipelineTrace();
    const bool trace_phases = pt.phases.on();
    const auto timed = [&](std::uint16_t name, auto &&stage) {
        if (!trace_phases)
            return stage();
        TraceSpan span(pt.phases, name);
        return stage();
    };

    unsigned progress = 0;
    progress += timed(pt.complete, [&] { return doCompletions(); });
    progress += scanStoreData();
    progress += timed(pt.commit, [&] { return doCommit(); });
    progress += timed(pt.issue, [&] { return doIssue(); });
    if (pendingReplay_ && pendingAgeReplay_) {
        // Keep whichever squash reaches further back; the other's
        // range is contained in it.
        if (pendingReplay_->seq <= pendingAgeReplay_->seq)
            pendingAgeReplay_ = nullptr;
        else
            pendingReplay_ = nullptr;
    }
    if (pendingReplay_) {
        DynInst *victim = pendingReplay_;
        pendingReplay_ = nullptr;
        replayFrom(victim);
        ++progress;
    }
    if (pendingAgeReplay_) {
        DynInst *store = pendingAgeReplay_;
        pendingAgeReplay_ = nullptr;
        ++stats_.ageTableReplays;
        traceInstantArg(pt.cat, pt.ageReplay, store->seq);
        const bool wrong_path = store->wrongPath;
        const std::uint64_t trace_index = store->traceIndex;
        const Addr pc = store->op.pc;
        squashFrom(store->seq + 1);
        if (wrong_path)
            fetch_.redirectWrongPath(pc + 4,
                                     now_ + params_.redirectPenalty);
        else
            fetch_.redirectToTrace(trace_index + 1,
                                   now_ + params_.redirectPenalty);
        ++progress;
    }
    progress += timed(pt.fetch, [&] {
        return doDispatch() + doFetch();
    });
    lsq_.tick();
    return progress;
}

Cycle
Pipeline::nextEventCycle() const
{
    Cycle wake = 0;
    const auto consider = [&](Cycle c) {
        if (c > now_ && (wake == 0 || c < wake))
            wake = c;
    };
    if (!completions_.empty())
        consider(completions_.front().when);
    if (!fetchQueue_.empty())
        consider(fetchQueue_.front()->fetchReadyCycle);
    consider(fetch_.stallUntil());
    for (const DynInst *load : retryLoads_)
        consider(load->retryCycle);
    consider(fuPool_.intDivBusyUntil());
    consider(fuPool_.fpDivBusyUntil());
    return wake;
}

void
Pipeline::skipIdleCycles(Cycle n)
{
    if (n == 0)
        return;
    now_ += n;
    stats_.cycles += n;
    // An empty tick has exactly two conditional per-cycle side
    // effects beyond the counters above. First: when the fetch queue
    // has space, fetch must have been stalled on an I-cache miss
    // (otherwise it would have made progress), and each skipped cycle
    // would have counted an icache_stall_cycle. The skip never
    // crosses stallUntil_, so the condition holds for every skipped
    // cycle.
    if (fetchQueue_.size() < params_.fetchQueueSize)
        fetch_.noteIdleStallCycles(n);
    // Second: the dependence policy's per-cycle bookkeeping (DMDC
    // checking-mode cycle counting).
    lsq_.idleTicks(n);
}

void
Pipeline::run(std::uint64_t num_insts)
{
    const std::uint64_t target = committed() + num_insts;
    while (committed() < target) {
        const unsigned progress = tick();
        if (now_ - lastCommitCycle_ > deadlockThreshold)
            panic("pipeline deadlock: no commit since cycle %llu "
                  "(now %llu, workload '%s')",
                  static_cast<unsigned long long>(lastCommitCycle_),
                  static_cast<unsigned long long>(now_),
                  workload_.name().c_str());
        if (progress == 0 && committed() < target) {
            // Event-driven idle skip: jump to just before the next
            // wake event, capped so the deadlock panic above still
            // fires at the exact cycle it would have without skipping.
            const Cycle wake = nextEventCycle();
            if (wake > now_ + 1) {
                Cycle n = wake - now_ - 1;
                const Cycle panic_at =
                    lastCommitCycle_ + deadlockThreshold;
                if (now_ + n > panic_at)
                    n = panic_at > now_ ? panic_at - now_ : 0;
                skipIdleCycles(n);
            }
        }
    }
}

// --------------------------------------------------------------------
// Fetch and dispatch
// --------------------------------------------------------------------

unsigned
Pipeline::doFetch()
{
    if (fetchQueue_.size() >= params_.fetchQueueSize)
        return 0;
    // An unstalled fetch with queue space always makes progress: it
    // either produces instructions or performs the I-cache access
    // that starts a new stall. A stalled fetch only counts its stall
    // cycle (reproduced by skipIdleCycles).
    const bool was_stalled = fetch_.stalled(now_);
    fetch_.tick(now_, fetchQueue_,
                params_.fetchQueueSize - fetchQueue_.size());
    return was_stalled ? 0 : 1;
}

unsigned
Pipeline::doDispatch()
{
    unsigned dispatched = 0;
    for (unsigned n = 0; n < params_.decodeWidth; ++n) {
        if (fetchQueue_.empty())
            break;
        DynInst *inst = fetchQueue_.front();
        if (inst->fetchReadyCycle > now_)
            break;
        if (rob_.full() || !rename_.canRename(inst->op))
            break;
        IssueQueue &iq = inst->op.isFp() ? fpIq_ : intIq_;
        if (iq.full())
            break;
        if (inst->isLoad() && !lsq_.canDispatchLoad())
            break;
        if (inst->isStore() && !lsq_.canDispatchStore())
            break;

        rename_.rename(inst);
        DynInst *owned = rob_.allocate(inst);
        fetchQueue_.pop_front();
        iq.insert(owned);
        if (owned->isLoad())
            lsq_.dispatchLoad(owned);
        if (owned->isStore())
            lsq_.dispatchStore(owned);
        owned->stage = InstStage::Dispatched;
        ++dispatched;
    }
    if (dispatched)
        stats_.dispatched += dispatched;
    return dispatched;
}

// --------------------------------------------------------------------
// Issue and execute
// --------------------------------------------------------------------

void
Pipeline::issueLoad(DynInst *inst)
{
    SqCheckResult check = lsq_.loadIssue(inst, now_);
    switch (check.outcome) {
      case SqCheck::Reject:
        ++stats_.loadRejections;
        inst->retryCycle = now_ + params_.loadRetryDelay;
        retryLoads_.push_back(inst);
        return;
      case SqCheck::Forward:
        ++stats_.loadForwards;
        lsq_.loadComplete(inst, now_, check.producer->seq);
        scheduleCompletion(inst, now_ + 1 + mem_.l1d().latency());
        return;
      case SqCheck::NoMatch: {
        if (check.sawUnresolvedOlder)
            ++stats_.speculativeLoads;
        ++dcachePortsUsed_;
        const unsigned lat =
            mem_.accessData(inst->op.effAddr, false);
        lsq_.loadComplete(inst, now_, invalidSeqNum);
        scheduleCompletion(inst, now_ + 1 + lat);
        return;
      }
    }
}

unsigned
Pipeline::doIssue()
{
    unsigned progress = 0;

    // Rejected loads retry ahead of new issues (they are older).
    // Every attempt — even a re-rejection — changes state (search
    // counters, retry cycle) and therefore counts as progress.
    for (auto it = retryLoads_.begin(); it != retryLoads_.end();) {
        DynInst *load = *it;
        if (load->retryCycle > now_ ||
            dcachePortsUsed_ >= params_.l1dPorts) {
            ++it;
            continue;
        }
        ++progress;
        SqCheckResult check = lsq_.loadIssue(load, now_);
        if (check.outcome == SqCheck::Reject) {
            ++stats_.loadRejections;
            load->retryCycle = now_ + params_.loadRetryDelay;
            ++it;
            continue;
        }
        if (check.outcome == SqCheck::Forward) {
            ++stats_.loadForwards;
            lsq_.loadComplete(load, now_, check.producer->seq);
            scheduleCompletion(load, now_ + 1 + mem_.l1d().latency());
        } else {
            if (check.sawUnresolvedOlder)
                ++stats_.speculativeLoads;
            ++dcachePortsUsed_;
            const unsigned lat =
                mem_.accessData(load->op.effAddr, false);
            lsq_.loadComplete(load, now_, invalidSeqNum);
            scheduleCompletion(load, now_ + 1 + lat);
        }
        it = retryLoads_.erase(it);
    }

    // Merge the two issue queues oldest-first.
    unsigned issued = 0;
    std::size_t ii = 0;
    std::size_t fi = 0;
    const auto &iv = intIq_.entries();
    const auto &fv = fpIq_.entries();
    std::vector<DynInst *> &picked = issueScratch_;
    picked.clear();

    while (issued + static_cast<unsigned>(picked.size()) <
               params_.issueWidth &&
           (ii < iv.size() || fi < fv.size())) {
        DynInst *inst;
        if (fi >= fv.size() ||
            (ii < iv.size() && iv[ii]->seq < fv[fi]->seq)) {
            inst = iv[ii++];
        } else {
            inst = fv[fi++];
        }
        if (!operandsReady(inst))
            continue;
        if (inst->isLoad() && dcachePortsUsed_ >= params_.l1dPorts)
            continue;
        unsigned latency = 0;
        if (!fuPool_.tryIssue(inst->op.cls, latency))
            continue;

        inst->stage = InstStage::Issued;
        inst->issueCycle = now_;
        regfile_.noteIssueReads(inst);
        picked.push_back(inst);

        if (inst->isLoad()) {
            issueLoad(inst);
        } else if (inst->isStore()) {
            // Stores resolve (and search/filter the LQ) at issue time,
            // the same point at which loads update the YLA registers;
            // the ROB-visible completion follows after address
            // generation.
            inst->doneCycle = now_;
            resolveStore(inst);
            scheduleCompletion(inst, now_ + latency);
        } else {
            // Branches resolve at completion; ALU ops simply finish.
            scheduleCompletion(inst, now_ + latency);
        }
    }

    for (DynInst *inst : picked) {
        if (inst->op.isFp())
            fpIq_.remove(inst);
        else
            intIq_.remove(inst);
    }
    if (!picked.empty())
        stats_.issued += picked.size();
    progress += static_cast<unsigned>(picked.size());
    return progress;
}

// --------------------------------------------------------------------
// Completion, branch resolution, store resolution
// --------------------------------------------------------------------

unsigned
Pipeline::doCompletions()
{
    auto cmp = [](const Event &a, const Event &b) {
        return a.when > b.when || (a.when == b.when && a.seq > b.seq);
    };
    unsigned completed = 0;
    while (!completions_.empty() && completions_.front().when <= now_) {
        std::pop_heap(completions_.begin(), completions_.end(), cmp);
        Event ev = completions_.back();
        completions_.pop_back();
        completeInst(ev.inst);
        ++completed;
    }
    return completed;
}

void
Pipeline::completeInst(DynInst *inst)
{
    inst->stage = InstStage::Done;
    inst->doneCycle = now_;
    regfile_.noteWriteback(inst);

    if (inst->isBranch())
        resolveBranch(inst);
}

void
Pipeline::resolveStore(DynInst *inst)
{
    StoreResolveResult result = lsq_.storeResolve(inst, now_);
    if (result.violatingLoad) {
        // Deferred: squashing mid-issue would invalidate the issue
        // loop's view of the queues. Keep the oldest victim.
        if (!pendingReplay_ ||
            result.violatingLoad->seq < pendingReplay_->seq) {
            pendingReplay_ = result.violatingLoad;
        }
    }
    if (result.replayAllYounger) {
        if (!pendingAgeReplay_ ||
            inst->seq < pendingAgeReplay_->seq) {
            pendingAgeReplay_ = inst;
        }
    }
}

void
Pipeline::resolveBranch(DynInst *inst)
{
    if (inst->wrongPath)
        return;   // resolution of a wrong-path branch never redirects

    const MicroOp &op = inst->op;
    const bool mispredict = inst->pred.taken != op.taken ||
        (op.taken && inst->pred.target != op.targetPc);
    if (!mispredict)
        return;

    inst->mispredicted = true;
    ++stats_.branchMispredicts;
    if (op.branch == BranchKind::Return) {
        ++stats_.mispredReturn;
    } else if (inst->pred.taken != op.taken) {
        if (op.taken && !inst->pred.btbHit &&
            op.branch == BranchKind::Cond) {
            ++stats_.mispredBtbMiss;
        } else {
            ++stats_.mispredCond;
        }
    } else {
        ++stats_.mispredTarget;
    }
    predictor_.recover(op.pc, op.branch, inst->pred, op.taken,
                       op.pc + 4);
    squashFrom(inst->seq + 1);
    lsq_.branchRecovery(inst->seq);
    fetch_.redirectToTrace(inst->traceIndex + 1,
                           now_ + params_.redirectPenalty);
}

unsigned
Pipeline::scanStoreData()
{
    unsigned became_ready = 0;
    lsq_.storeQueue().forEach([this, &became_ready](DynInst *store) {
        if (!store->sqDataReady &&
            producerDone(store->src3Producer, store->src3ProducerSeq)) {
            lsq_.storeDataReady(store);
            ++became_ready;
        }
    });
    return became_ready;
}

// --------------------------------------------------------------------
// Commit
// --------------------------------------------------------------------

unsigned
Pipeline::doCommit()
{
    unsigned progress = 0;
    unsigned committed = 0;
    unsigned loads = 0;
    unsigned stores = 0;
    unsigned branches = 0;
    for (unsigned n = 0; n < params_.commitWidth; ++n) {
        DynInst *head = rob_.head();
        if (!head || head->stage != InstStage::Done)
            break;
        if (head->wrongPath)
            panic("wrong-path instruction reached the ROB head");
        if (head->isStore()) {
            if (!head->sqDataReady)
                break;
            if (dcachePortsUsed_ >= params_.l1dPorts)
                break;
        }

        // A load that was already replayed once re-executed with no
        // older in-flight store (the whole window drained before the
        // refetch), so its data is provably correct; never replay the
        // same dynamic load twice. This matters when safe-load
        // detection is disabled (ablation), where the re-execution
        // would otherwise hit the still-marked table entry forever.
        const bool replay_guard =
            head->isLoad() && head->traceIndex == lastDmdcReplayIndex_;

        ReplayClass rc = lsq_.commit(head, now_, replay_guard);

        // Safety property (all schemes): a load that truly read stale
        // data can never commit without having been replayed. The
        // ghost checker marks such loads independently of the
        // mechanism under test.
        if (head->isLoad() && head->ghostViolation && !rc.replay &&
            !replay_guard) {
            panic("true memory-order violation escaped replay "
                  "(load seq %llu, store seq %llu, scheme %s)",
                  static_cast<unsigned long long>(head->seq),
                  static_cast<unsigned long long>(
                      head->ghostViolatingStore),
                  lsq_.params().policy.c_str());
        }

        if (rc.replay) {
            ++stats_.dmdcReplays;
            {
                PipelineTrace &pt = pipelineTrace();
                traceInstantArg(pt.cat, pt.dmdcReplay, head->seq);
            }
            const std::uint64_t trace_index = head->traceIndex;
            lastDmdcReplayIndex_ = trace_index;
            squashFrom(head->seq);
            fetch_.redirectToTrace(trace_index,
                                   now_ + params_.redirectPenalty);
            ++progress;
            break;
        }

        if (head->isStore()) {
            mem_.accessData(head->op.effAddr, true);
            ++dcachePortsUsed_;
            ++stores;
        } else if (head->isLoad()) {
            ++loads;
        } else if (head->isBranch()) {
            ++branches;
            predictor_.update(head->op.pc, head->op.branch, head->pred,
                              head->op.taken, head->op.targetPc);
        }

        rename_.release(head);
        workload_.discardBefore(head->traceIndex);
        ++committed;
        lastCommitCycle_ = now_;
        rob_.retireHead();
    }
    // Flush the batched commit counters once per tick instead of
    // touching four Counter objects per committed instruction.
    if (committed) {
        stats_.committedInsts += committed;
        if (loads)
            stats_.committedLoads += loads;
        if (stores)
            stats_.committedStores += stores;
        if (branches)
            stats_.committedBranches += branches;
        progress += committed;
    }
    return progress;
}

// --------------------------------------------------------------------
// Squash machinery
// --------------------------------------------------------------------

void
Pipeline::squashFrom(SeqNum from_seq)
{
    // Structures holding raw pointers are purged before the ROB frees
    // the instructions.
    std::erase_if(completions_, [from_seq](const Event &ev) {
        return ev.seq >= from_seq;
    });
    std::make_heap(completions_.begin(), completions_.end(),
                   [](const Event &a, const Event &b) {
                       return a.when > b.when ||
                           (a.when == b.when && a.seq > b.seq);
                   });
    std::erase_if(retryLoads_, [from_seq](const DynInst *inst) {
        return inst->seq >= from_seq;
    });
    intIq_.squashFrom(from_seq);
    fpIq_.squashFrom(from_seq);
    lsq_.squashFrom(from_seq);

    while (!fetchQueue_.empty() &&
           fetchQueue_.back()->seq >= from_seq) {
        pool_.release(fetchQueue_.back());
        fetchQueue_.pop_back();
    }

    const SeqNum oldest_active =
        rob_.empty() ? invalidSeqNum : rob_.head()->seq;
    rob_.squashFrom(from_seq, [this, oldest_active](DynInst *inst) {
        rename_.squash(inst, oldest_active);
    });
}

void
Pipeline::replayFrom(DynInst *load)
{
    ++stats_.baselineReplays;
    {
        PipelineTrace &pt = pipelineTrace();
        traceInstantArg(pt.cat, pt.baselineReplay, load->seq);
    }
    const bool wrong_path = load->wrongPath;
    const std::uint64_t trace_index = load->traceIndex;
    const Addr pc = load->op.pc;

    squashFrom(load->seq);
    if (wrong_path)
        fetch_.redirectWrongPath(pc, now_ + params_.redirectPenalty);
    else
        fetch_.redirectToTrace(trace_index,
                               now_ + params_.redirectPenalty);
}

// --------------------------------------------------------------------
// External events
// --------------------------------------------------------------------

void
Pipeline::externalInvalidation(Addr addr)
{
    mem_.invalidateLine(addr);
    const DynInst *head = rob_.head();
    const SeqNum oldest_active =
        head ? head->seq : fetch_.lastSeq() + 1;
    lsq_.invalidationArrived(addr, now_, oldest_active);
}

} // namespace dmdc
