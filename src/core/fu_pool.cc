/**
 * @file
 * FU pool implementation.
 */

#include "core/fu_pool.hh"

#include "common/logging.hh"

namespace dmdc
{

FuPool::FuPool(const FuPoolParams &params) : params_(params)
{
    capacity_[FamIntAlu] = params.intAlu;
    capacity_[FamIntMulDiv] = params.intMulDiv;
    capacity_[FamFpAlu] = params.fpAlu;
    capacity_[FamFpMulDiv] = params.fpMulDiv;
}

void
FuPool::tick(Cycle now)
{
    now_ = now;
    usedThisCycle_.fill(0);
}

FuPool::Family
FuPool::familyOf(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu:
      case OpClass::Branch:
      case OpClass::Load:
      case OpClass::Store:
      case OpClass::Nop:
        return FamIntAlu;   // address generation / simple ALU
      case OpClass::IntMult:
      case OpClass::IntDiv:
        return FamIntMulDiv;
      case OpClass::FpAdd:
        return FamFpAlu;
      case OpClass::FpMult:
      case OpClass::FpDiv:
        return FamFpMulDiv;
    }
    return FamIntAlu;
}

bool
FuPool::tryIssue(OpClass cls, unsigned &latency_out)
{
    const Family fam = familyOf(cls);
    if (usedThisCycle_[fam] >= capacity_[fam])
        return false;

    switch (cls) {
      case OpClass::IntAlu:
      case OpClass::Branch:
      case OpClass::Load:       // address generation; memory follows
      case OpClass::Store:
      case OpClass::Nop:
        latency_out = params_.intAluLat;
        break;
      case OpClass::IntMult:
        latency_out = params_.intMultLat;
        break;
      case OpClass::IntDiv:
        if (intDivBusyUntil_ > now_)
            return false;
        intDivBusyUntil_ = now_ + params_.intDivLat;
        latency_out = params_.intDivLat;
        break;
      case OpClass::FpAdd:
        latency_out = params_.fpAddLat;
        break;
      case OpClass::FpMult:
        latency_out = params_.fpMultLat;
        break;
      case OpClass::FpDiv:
        if (fpDivBusyUntil_ > now_)
            return false;
        fpDivBusyUntil_ = now_ + params_.fpDivLat;
        latency_out = params_.fpDivLat;
        break;
    }
    ++usedThisCycle_[fam];
    return true;
}

} // namespace dmdc
