/**
 * @file
 * Register-file port activity model. The physical register *capacity*
 * is enforced by RenameState; this class accounts read/write port
 * traffic for the energy model.
 */

#ifndef DMDC_CORE_REGFILE_HH
#define DMDC_CORE_REGFILE_HH

#include "common/stats.hh"
#include "core/inst.hh"

namespace dmdc
{

/** Read/write activity of the INT and FP register files. */
class RegFileActivity
{
  public:
    /** Account operand reads performed when @p inst issues. */
    void noteIssueReads(const DynInst *inst);

    /** Account the result write when @p inst completes. */
    void noteWriteback(const DynInst *inst);

    std::uint64_t intReads() const { return intReads_.value(); }
    std::uint64_t intWrites() const { return intWrites_.value(); }
    std::uint64_t fpReads() const { return fpReads_.value(); }
    std::uint64_t fpWrites() const { return fpWrites_.value(); }

    void regStats(StatGroup &parent);

  private:
    void noteRead(RegIndex r);

    Counter intReads_;
    Counter intWrites_;
    Counter fpReads_;
    Counter fpWrites_;
    StatGroup stats_{"regfile"};
};

} // namespace dmdc

#endif // DMDC_CORE_REGFILE_HH
