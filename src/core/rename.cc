/**
 * @file
 * Rename state implementation.
 */

#include "core/rename.hh"

#include "common/logging.hh"

namespace dmdc
{

RenameState::RenameState(unsigned int_regs, unsigned fp_regs)
{
    if (int_regs < 32 || fp_regs < 32)
        fatal("physical register files must cover the architectural "
              "state (>= 32 each)");
    // Architectural state consumes 32 registers of each file.
    freeInt_ = int_regs - 32;
    freeFp_ = fp_regs - 32;
    map_.fill(nullptr);
}

bool
RenameState::canRename(const MicroOp &op) const
{
    if (op.dst == noReg)
        return true;
    return isFpReg(op.dst) ? freeFp_ > 0 : freeInt_ > 0;
}

void
RenameState::rename(DynInst *inst)
{
    auto bind = [this](RegIndex r, DynInst *&producer, SeqNum &pseq) {
        if (r == noReg) {
            producer = nullptr;
            return;
        }
        producer = map_[r];
        pseq = producer ? producer->seq : invalidSeqNum;
    };
    bind(inst->op.src1, inst->src1Producer, inst->src1ProducerSeq);
    bind(inst->op.src2, inst->src2Producer, inst->src2ProducerSeq);
    bind(inst->op.src3, inst->src3Producer, inst->src3ProducerSeq);

    if (inst->op.dst != noReg) {
        if (isFpReg(inst->op.dst)) {
            if (freeFp_ == 0)
                panic("rename without a free FP register");
            --freeFp_;
        } else {
            if (freeInt_ == 0)
                panic("rename without a free INT register");
            --freeInt_;
        }
        inst->renamePrev = map_[inst->op.dst];
        inst->renamePrevSeq = inst->renamePrev ? inst->renamePrev->seq
                                               : invalidSeqNum;
        map_[inst->op.dst] = inst;
    }
}

void
RenameState::release(DynInst *inst)
{
    if (inst->op.dst == noReg)
        return;
    if (isFpReg(inst->op.dst))
        ++freeFp_;
    else
        ++freeInt_;
    // The architectural map only tracks in-flight producers; once the
    // youngest producer of a register commits, the register reads as
    // architectural.
    if (map_[inst->op.dst] == inst)
        map_[inst->op.dst] = nullptr;
}

void
RenameState::squash(DynInst *inst, SeqNum oldest_active)
{
    if (inst->op.dst == noReg)
        return;
    if (isFpReg(inst->op.dst))
        ++freeFp_;
    else
        ++freeInt_;
    if (map_[inst->op.dst] == inst) {
        const bool prev_alive = inst->renamePrev &&
            inst->renamePrevSeq >= oldest_active;
        map_[inst->op.dst] = prev_alive ? inst->renamePrev : nullptr;
    }
}

} // namespace dmdc
