/**
 * @file
 * Issue queue (scheduler window): age-ordered list of dispatched
 * instructions waiting for operands and a functional unit.
 */

#ifndef DMDC_CORE_ISSUE_QUEUE_HH
#define DMDC_CORE_ISSUE_QUEUE_HH

#include <vector>

#include "core/inst.hh"

namespace dmdc
{

/**
 * One issue queue (the paper's machine has separate INT and FP
 * queues). Entries are kept in age order; selection is oldest-first
 * among ready instructions, which the pipeline drives.
 */
class IssueQueue
{
  public:
    explicit IssueQueue(unsigned capacity);

    bool full() const { return entries_.size() >= capacity_; }
    std::size_t size() const { return entries_.size(); }
    unsigned capacity() const { return capacity_; }

    /** Insert at dispatch (program order). */
    void insert(DynInst *inst);

    /** Remove @p inst after it issues. */
    void remove(DynInst *inst);

    /** Remove every entry with seq >= @p from_seq. */
    void squashFrom(SeqNum from_seq);

    /** Iterate oldest to youngest (selection order). */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (DynInst *inst : entries_)
            fn(inst);
    }

    /** Oldest-first snapshot for selection loops that mutate the IQ. */
    const std::vector<DynInst *> &entries() const { return entries_; }

  private:
    std::vector<DynInst *> entries_;
    unsigned capacity_;
};

} // namespace dmdc

#endif // DMDC_CORE_ISSUE_QUEUE_HH
