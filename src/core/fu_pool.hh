/**
 * @file
 * Functional-unit pool: per-class unit counts, latencies and pipelining
 * (divides are unpipelined), following the paper's Table 1 core.
 */

#ifndef DMDC_CORE_FU_POOL_HH
#define DMDC_CORE_FU_POOL_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "trace/microop.hh"

namespace dmdc
{

/** FU pool configuration. */
struct FuPoolParams
{
    unsigned intAlu = 8;        ///< also executes branches, mem addr gen
    unsigned intMulDiv = 2;
    unsigned fpAlu = 8;
    unsigned fpMulDiv = 2;

    unsigned intAluLat = 1;
    unsigned intMultLat = 3;
    unsigned intDivLat = 20;    ///< unpipelined
    unsigned fpAddLat = 2;
    unsigned fpMultLat = 4;
    unsigned fpDivLat = 12;     ///< unpipelined
};

/**
 * Tracks per-cycle issue bandwidth of each unit family and the busy
 * time of unpipelined dividers.
 */
class FuPool
{
  public:
    explicit FuPool(const FuPoolParams &params);

    /** Reset per-cycle issue counters; call once per cycle. */
    void tick(Cycle now);

    /**
     * Try to claim a unit for @p cls this cycle.
     * @param latency_out filled with the operation latency on success
     * @return true if a unit was available
     */
    bool tryIssue(OpClass cls, unsigned &latency_out);

    const FuPoolParams &params() const { return params_; }

    /** Unpipelined-divider busy horizons (idle-skip wake events). */
    Cycle intDivBusyUntil() const { return intDivBusyUntil_; }
    Cycle fpDivBusyUntil() const { return fpDivBusyUntil_; }

  private:
    enum Family : unsigned
    {
        FamIntAlu,
        FamIntMulDiv,
        FamFpAlu,
        FamFpMulDiv,
        NumFamilies,
    };

    static Family familyOf(OpClass cls);

    FuPoolParams params_;
    std::array<unsigned, NumFamilies> capacity_;
    std::array<unsigned, NumFamilies> usedThisCycle_{};
    // Unpipelined dividers: next cycle each unit family frees up.
    Cycle intDivBusyUntil_ = 0;
    Cycle fpDivBusyUntil_ = 0;
    Cycle now_ = 0;
};

} // namespace dmdc

#endif // DMDC_CORE_FU_POOL_HH
