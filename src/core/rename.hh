/**
 * @file
 * Register rename stage state: architectural-to-producer mapping and
 * physical register accounting.
 */

#ifndef DMDC_CORE_RENAME_HH
#define DMDC_CORE_RENAME_HH

#include <array>

#include "core/inst.hh"

namespace dmdc
{

/**
 * Rename map from architectural registers to their in-flight producers,
 * plus free-physical-register accounting. A destination holds a
 * physical register from dispatch until commit (a simplification of
 * previous-mapping release that preserves the occupancy-driven stalls
 * the paper's configurations impose).
 */
class RenameState
{
  public:
    RenameState(unsigned int_regs, unsigned fp_regs);

    /** True if a physical destination register is available for @p op. */
    bool canRename(const MicroOp &op) const;

    /**
     * Rename @p inst: bind source producers (nullptr if the value is
     * architectural) and claim a destination register if any.
     */
    void rename(DynInst *inst);

    /** Release @p inst's destination register at commit. */
    void release(DynInst *inst);

    /**
     * Undo @p inst's rename effects during a squash (youngest-first
     * order is required). Restores the previous mapping unless that
     * producer has itself already committed (seq below
     * @p oldest_active), in which case the register reads as
     * architectural.
     */
    void squash(DynInst *inst, SeqNum oldest_active);

    unsigned freeIntRegs() const { return freeInt_; }
    unsigned freeFpRegs() const { return freeFp_; }

  private:
    std::array<DynInst *, numArchRegs> map_{};
    unsigned freeInt_;
    unsigned freeFp_;
};

} // namespace dmdc

#endif // DMDC_CORE_RENAME_HH
