/**
 * @file
 * Fetch stage: walks the workload's correct path following branch
 * predictions, diverges onto synthesized wrong paths after a
 * misprediction, and models I-cache latency.
 */

#ifndef DMDC_CORE_FETCH_HH
#define DMDC_CORE_FETCH_HH

#include "branch/predictor.hh"
#include "common/object_pool.hh"
#include "common/stats.hh"
#include "core/inst.hh"
#include "mem/hierarchy.hh"
#include "trace/workload.hh"

namespace dmdc
{

/** Fetch configuration. */
struct FetchParams
{
    unsigned fetchWidth = 8;
    unsigned fetchToDispatch = 3;  ///< front-end depth in cycles
};

/** The fetch stage. */
class FetchStage
{
  public:
    FetchStage(const FetchParams &params, Workload &workload,
               BranchPredictor &predictor, MemoryHierarchy &mem,
               ObjectPool<DynInst> &pool);

    /**
     * Fetch up to min(fetchWidth, @p max_count) micro-ops this cycle,
     * appending pool-allocated DynInsts to @p out. Fetch stops at a
     * predicted-taken branch and on I-cache misses.
     */
    void tick(Cycle now, RingBuffer<DynInst *> &out,
              std::size_t max_count);

    /** Redirect to correct-path index @p trace_index at @p resume. */
    void redirectToTrace(std::uint64_t trace_index, Cycle resume);

    /**
     * Redirect to a wrong-path PC (used when a replay victim is itself
     * a wrong-path load; the eventual branch resolution will recover).
     */
    void redirectWrongPath(Addr pc, Cycle resume);

    bool onWrongPath() const { return wrongPathMode_; }
    SeqNum lastSeq() const { return seqCounter_; }

    /** True when an I-cache miss is stalling fetch at @p now. */
    bool stalled(Cycle now) const { return now < stallUntil_; }
    /** Cycle the current I-cache stall ends (idle-skip wake event). */
    Cycle stallUntil() const { return stallUntil_; }

    /**
     * Account @p n skipped idle cycles that would each have ticked a
     * stalled fetch stage (see Pipeline::skipIdleCycles).
     */
    void noteIdleStallCycles(Cycle n) { icacheStallCycles += n; }

    void regStats(StatGroup &parent);

    Counter fetchedTotal;
    Counter fetchedWrongPath;
    Counter icacheStallCycles;

  private:
    DynInst *makeInst(const MicroOp &op, bool wrong_path, Cycle now);

    FetchParams params_;
    Workload &workload_;
    BranchPredictor &predictor_;
    MemoryHierarchy &mem_;
    ObjectPool<DynInst> &pool_;

    Addr fetchPc_;
    std::uint64_t nextTraceIndex_ = 0;
    bool wrongPathMode_ = false;
    std::uint64_t wrongPathSalt_ = 0;
    Cycle stallUntil_ = 0;
    Addr lastFetchLine_ = invalidAddr;
    SeqNum seqCounter_ = 0;

    StatGroup stats_{"fetch"};
};

} // namespace dmdc

#endif // DMDC_CORE_FETCH_HH
