/**
 * @file
 * Reorder buffer: age-ordered window of in-flight instructions. Owns
 * the DynInst objects for the whole pipeline.
 */

#ifndef DMDC_CORE_ROB_HH
#define DMDC_CORE_ROB_HH

#include <deque>
#include <functional>
#include <memory>

#include "core/inst.hh"

namespace dmdc
{

/**
 * The ROB owns every in-flight instruction; other structures (issue
 * queues, LSQ) hold non-owning pointers that must be dropped when the
 * ROB squashes.
 */
class Rob
{
  public:
    explicit Rob(unsigned capacity);

    bool full() const { return insts_.size() >= capacity_; }
    bool empty() const { return insts_.empty(); }
    std::size_t size() const { return insts_.size(); }
    unsigned capacity() const { return capacity_; }

    /** Append at the tail (program order). The ROB takes ownership. */
    DynInst *allocate(std::unique_ptr<DynInst> inst);

    /** Oldest instruction, or nullptr when empty. */
    DynInst *head() { return insts_.empty() ? nullptr
                                            : insts_.front().get(); }
    const DynInst *
    head() const
    {
        return insts_.empty() ? nullptr : insts_.front().get();
    }

    /** Youngest instruction, or nullptr when empty. */
    DynInst *tail() { return insts_.empty() ? nullptr
                                            : insts_.back().get(); }

    /** Retire the head instruction (must exist). */
    void retireHead();

    /**
     * Remove all instructions with seq >= @p from_seq (inclusive
     * squash), invoking @p on_squash on each before destruction,
     * youngest first.
     */
    void squashFrom(SeqNum from_seq,
                    const std::function<void(DynInst *)> &on_squash);

    /** Iterate oldest to youngest. */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (auto &inst : insts_)
            fn(inst.get());
    }

  private:
    std::deque<std::unique_ptr<DynInst>> insts_;
    unsigned capacity_;
};

} // namespace dmdc

#endif // DMDC_CORE_ROB_HH
