/**
 * @file
 * Reorder buffer: age-ordered window of in-flight instructions. Owns
 * the DynInst objects for the whole pipeline — entries come from the
 * pipeline's DynInstPool and are recycled to it on retire/squash.
 */

#ifndef DMDC_CORE_ROB_HH
#define DMDC_CORE_ROB_HH

#include <functional>

#include "common/object_pool.hh"
#include "core/inst.hh"

namespace dmdc
{

/** Pool all in-flight DynInsts are drawn from. */
using DynInstPool = ObjectPool<DynInst>;

/**
 * Commit-order hook: notified for every retiring instruction, just
 * before its entry is recycled to the pool. Null on normal runs
 * (--check=off); the ordering oracle attaches one through
 * Pipeline::attachOracle().
 */
struct RetireObserver
{
    virtual ~RetireObserver() = default;
    virtual void retired(const DynInst &inst) = 0;
};

/**
 * The ROB owns every in-flight instruction; other structures (issue
 * queues, LSQ) hold non-owning pointers that must be dropped when the
 * ROB squashes. "Owns" means: retiring or squashing an entry returns
 * it to the pool, after which any surviving pointer is dangling and
 * must only be dereferenced behind a sequence-number guard.
 */
class Rob
{
  public:
    Rob(unsigned capacity, DynInstPool &pool);

    bool full() const { return insts_.full(); }
    bool empty() const { return insts_.empty(); }
    std::size_t size() const { return insts_.size(); }
    unsigned capacity() const
    {
        return static_cast<unsigned>(insts_.capacity());
    }

    /** Append at the tail (program order). The ROB takes ownership. */
    DynInst *allocate(DynInst *inst);

    /** Oldest instruction, or nullptr when empty. */
    DynInst *head() { return insts_.empty() ? nullptr
                                            : insts_.front(); }
    const DynInst *
    head() const
    {
        return insts_.empty() ? nullptr : insts_.front();
    }

    /** Youngest instruction, or nullptr when empty. */
    DynInst *tail() { return insts_.empty() ? nullptr
                                            : insts_.back(); }

    /** Retire the head instruction (must exist); recycles it. */
    void retireHead();

    /** Attach (or detach with nullptr) the retire hook. */
    void setRetireObserver(RetireObserver *obs)
    {
        retireObserver_ = obs;
    }

    /**
     * Remove all instructions with seq >= @p from_seq (inclusive
     * squash), invoking @p on_squash on each before recycling,
     * youngest first.
     */
    void squashFrom(SeqNum from_seq,
                    const std::function<void(DynInst *)> &on_squash);

    /** Iterate oldest to youngest. */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (std::size_t i = 0; i < insts_.size(); ++i)
            fn(insts_[i]);
    }

  private:
    RingBuffer<DynInst *> insts_;
    DynInstPool &pool_;
    RetireObserver *retireObserver_ = nullptr;
};

} // namespace dmdc

#endif // DMDC_CORE_ROB_HH
