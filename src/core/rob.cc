/**
 * @file
 * ROB implementation.
 */

#include "core/rob.hh"

#include "common/logging.hh"

namespace dmdc
{

Rob::Rob(unsigned capacity) : capacity_(capacity)
{
    if (capacity == 0)
        fatal("ROB capacity must be non-zero");
}

DynInst *
Rob::allocate(std::unique_ptr<DynInst> inst)
{
    if (full())
        panic("ROB allocate on full ROB");
    if (!insts_.empty() && inst->seq <= insts_.back()->seq)
        panic("ROB allocation out of age order");
    insts_.push_back(std::move(inst));
    return insts_.back().get();
}

void
Rob::retireHead()
{
    if (insts_.empty())
        panic("ROB retire on empty ROB");
    insts_.pop_front();
}

void
Rob::squashFrom(SeqNum from_seq,
                const std::function<void(DynInst *)> &on_squash)
{
    while (!insts_.empty() && insts_.back()->seq >= from_seq) {
        DynInst *inst = insts_.back().get();
        inst->stage = InstStage::Squashed;
        on_squash(inst);
        insts_.pop_back();
    }
}

} // namespace dmdc
