/**
 * @file
 * ROB implementation.
 */

#include "core/rob.hh"

#include "common/logging.hh"

namespace dmdc
{

Rob::Rob(unsigned capacity, DynInstPool &pool)
    : insts_(capacity), pool_(pool)
{
    if (capacity == 0)
        fatal("ROB capacity must be non-zero");
}

DynInst *
Rob::allocate(DynInst *inst)
{
    if (full())
        panic("ROB allocate on full ROB");
    if (!insts_.empty() && inst->seq <= insts_.back()->seq)
        panic("ROB allocation out of age order");
    insts_.push_back(inst);
    return inst;
}

void
Rob::retireHead()
{
    if (insts_.empty())
        panic("ROB retire on empty ROB");
    DynInst *inst = insts_.front();
    insts_.pop_front();
    if (retireObserver_)
        retireObserver_->retired(*inst);
    pool_.release(inst);
}

void
Rob::squashFrom(SeqNum from_seq,
                const std::function<void(DynInst *)> &on_squash)
{
    while (!insts_.empty() && insts_.back()->seq >= from_seq) {
        DynInst *inst = insts_.back();
        inst->stage = InstStage::Squashed;
        on_squash(inst);
        insts_.pop_back();
        pool_.release(inst);
    }
}

} // namespace dmdc
