/**
 * @file
 * Fetch stage implementation.
 */

#include "core/fetch.hh"

#include <algorithm>

namespace dmdc
{

FetchStage::FetchStage(const FetchParams &params, Workload &workload,
                       BranchPredictor &predictor, MemoryHierarchy &mem,
                       ObjectPool<DynInst> &pool)
    : params_(params), workload_(workload), predictor_(predictor),
      mem_(mem), pool_(pool)
{
    fetchPc_ = workload_.op(0).pc;
}

void
FetchStage::regStats(StatGroup &parent)
{
    stats_.regCounter("fetched_total", &fetchedTotal);
    stats_.regCounter("fetched_wrong_path", &fetchedWrongPath);
    stats_.regCounter("icache_stall_cycles", &icacheStallCycles);
    parent.addChild(&stats_);
}

DynInst *
FetchStage::makeInst(const MicroOp &op, bool wrong_path, Cycle now)
{
    DynInst *inst = pool_.acquire();
    inst->op = op;
    inst->seq = ++seqCounter_;
    inst->wrongPath = wrong_path;
    inst->traceIndex = wrong_path ? ~std::uint64_t{0} : nextTraceIndex_;
    inst->fetchReadyCycle = now + params_.fetchToDispatch;
    return inst;
}

void
FetchStage::tick(Cycle now, RingBuffer<DynInst *> &out,
                 std::size_t max_count)
{
    if (now < stallUntil_) {
        ++icacheStallCycles;
        return;
    }

    const std::size_t budget =
        std::min<std::size_t>(params_.fetchWidth, max_count);
    const unsigned line_bytes = mem_.l1i().lineBytes();

    for (std::size_t n = 0; n < budget; ++n) {
        // One I-cache access per line crossing.
        const Addr line = fetchPc_ / line_bytes;
        if (line != lastFetchLine_) {
            const unsigned lat = mem_.accessInst(fetchPc_);
            lastFetchLine_ = line;
            if (lat > mem_.l1i().latency()) {
                stallUntil_ = now + lat;
                return;
            }
        }

        MicroOp op;
        const bool wrong_path = wrongPathMode_;
        if (!wrongPathMode_)
            op = workload_.op(nextTraceIndex_);
        else
            op = workload_.wrongPathOp(fetchPc_, wrongPathSalt_++);

        DynInst *inst = makeInst(op, wrong_path, now);
        ++fetchedTotal;
        if (wrong_path)
            ++fetchedWrongPath;

        Addr next_pc = fetchPc_ + 4;
        bool taken = false;
        if (op.isBranch()) {
            inst->pred = predictor_.predict(op.pc, op.branch,
                                            op.pc + 4);
            inst->predictionMade = true;
            taken = inst->pred.taken;
            if (taken)
                next_pc = inst->pred.target;
            if (!wrong_path) {
                ++nextTraceIndex_;
                if (next_pc != op.nextPc)
                    wrongPathMode_ = true;
            }
        } else if (!wrong_path) {
            ++nextTraceIndex_;
        }

        fetchPc_ = next_pc;
        out.push_back(inst);

        // Fetch does not continue past a predicted-taken branch in the
        // same cycle.
        if (taken)
            break;
    }
}

void
FetchStage::redirectToTrace(std::uint64_t trace_index, Cycle resume)
{
    wrongPathMode_ = false;
    nextTraceIndex_ = trace_index;
    fetchPc_ = workload_.op(trace_index).pc;
    stallUntil_ = resume;
    lastFetchLine_ = invalidAddr;
}

void
FetchStage::redirectWrongPath(Addr pc, Cycle resume)
{
    wrongPathMode_ = true;
    fetchPc_ = pc;
    stallUntil_ = resume;
    lastFetchLine_ = invalidAddr;
}

} // namespace dmdc
