/**
 * @file
 * Issue queue implementation.
 */

#include "core/issue_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dmdc
{

IssueQueue::IssueQueue(unsigned capacity) : capacity_(capacity)
{
    if (capacity == 0)
        fatal("issue queue capacity must be non-zero");
    entries_.reserve(capacity);
}

void
IssueQueue::insert(DynInst *inst)
{
    if (full())
        panic("issue queue insert on full queue");
    if (!entries_.empty() && inst->seq <= entries_.back()->seq)
        panic("issue queue insertion out of age order");
    entries_.push_back(inst);
    inst->inIssueQueue = true;
}

void
IssueQueue::remove(DynInst *inst)
{
    auto it = std::find(entries_.begin(), entries_.end(), inst);
    if (it == entries_.end())
        panic("issue queue remove of an absent instruction");
    entries_.erase(it);
    inst->inIssueQueue = false;
}

void
IssueQueue::squashFrom(SeqNum from_seq)
{
    while (!entries_.empty() && entries_.back()->seq >= from_seq) {
        entries_.back()->inIssueQueue = false;
        entries_.pop_back();
    }
}

} // namespace dmdc
