/**
 * @file
 * Register-file activity implementation.
 */

#include "core/regfile.hh"

namespace dmdc
{

void
RegFileActivity::noteRead(RegIndex r)
{
    if (r == noReg)
        return;
    if (isFpReg(r))
        ++fpReads_;
    else
        ++intReads_;
}

void
RegFileActivity::noteIssueReads(const DynInst *inst)
{
    noteRead(inst->op.src1);
    noteRead(inst->op.src2);
    noteRead(inst->op.src3);
}

void
RegFileActivity::noteWriteback(const DynInst *inst)
{
    if (inst->op.dst == noReg)
        return;
    if (isFpReg(inst->op.dst))
        ++fpWrites_;
    else
        ++intWrites_;
}

void
RegFileActivity::regStats(StatGroup &parent)
{
    stats_.regCounter("int_reads", &intReads_);
    stats_.regCounter("int_writes", &intWrites_);
    stats_.regCounter("fp_reads", &fpReads_);
    stats_.regCounter("fp_writes", &fpWrites_);
    parent.addChild(&stats_);
}

} // namespace dmdc
