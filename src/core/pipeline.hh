/**
 * @file
 * The out-of-order pipeline: the SimpleScalar sim-outorder equivalent
 * this reproduction is built on. Glues fetch, rename/dispatch, issue,
 * execute, writeback and commit around the ROB, issue queues and the
 * LSQ unit, with full wrong-path execution and squash recovery.
 */

#ifndef DMDC_CORE_PIPELINE_HH
#define DMDC_CORE_PIPELINE_HH

#include <vector>

#include "branch/predictor.hh"
#include "common/object_pool.hh"
#include "common/stats.hh"
#include "core/fetch.hh"
#include "core/fu_pool.hh"
#include "core/issue_queue.hh"
#include "core/regfile.hh"
#include "core/rename.hh"
#include "core/rob.hh"
#include "lsq/lsq_unit.hh"
#include "mem/hierarchy.hh"
#include "trace/workload.hh"
#include "verify/ordering_oracle.hh"

namespace dmdc
{

/** Full core configuration (see sim/machine_config for presets). */
struct CoreParams
{
    unsigned fetchWidth = 8;
    unsigned decodeWidth = 8;
    unsigned issueWidth = 8;
    unsigned commitWidth = 8;
    unsigned robSize = 256;
    unsigned intIqSize = 48;
    unsigned fpIqSize = 48;
    unsigned intRegs = 200;
    unsigned fpRegs = 200;
    unsigned fetchToDispatch = 3;
    /**
     * Extra front-end redirect stall after a misprediction/replay;
     * together with fetchToDispatch this realizes the paper's 7-cycle
     * misprediction penalty.
     */
    unsigned redirectPenalty = 4;
    unsigned l1dPorts = 2;
    unsigned loadRetryDelay = 3;   ///< rejected-load retry interval
    unsigned fetchQueueSize = 32;

    FetchParams fetchParams() const
    {
        return FetchParams{fetchWidth, fetchToDispatch};
    }

    FuPoolParams fu;
    BranchPredictorParams bp;
    HierarchyParams mem;
    LsqParams lsq;
};

/** Aggregate pipeline statistics (beyond subsystem stat groups). */
struct PipelineStats
{
    Counter cycles;
    Counter committedInsts;
    Counter committedLoads;
    Counter committedStores;
    Counter committedBranches;
    Counter dispatched;
    Counter issued;
    Counter branchMispredicts;
    Counter mispredCond;       ///< direction mispredictions
    Counter mispredBtbMiss;    ///< taken but no BTB target
    Counter mispredTarget;     ///< taken with wrong target
    Counter mispredReturn;     ///< RAS misses/corruption
    Counter baselineReplays;   ///< store-resolve-detected violations
    Counter dmdcReplays;       ///< commit-time DMDC replays
    Counter ageTableReplays;   ///< age-table squash-all-younger replays
    Counter loadRejections;    ///< SQ reject-and-retry events
    Counter loadForwards;      ///< store-to-load forwards
    Counter speculativeLoads;  ///< loads issued past unresolved stores
};

/** The pipeline. */
class Pipeline
{
  public:
    Pipeline(const CoreParams &params, Workload &workload);
    ~Pipeline();

    /**
     * Advance one cycle.
     * @return how many pipeline events made progress this cycle
     *         (fetched, dispatched, issued, completed, committed,
     *         retried, squashed, ...). A return of 0 certifies an
     *         empty tick: no stage changed any state beyond the
     *         per-cycle bookkeeping that skipIdleCycles() reproduces,
     *         so the cycle counter may be jumped to nextEventCycle()
     *         with bit-identical results.
     */
    unsigned tick();

    /**
     * The earliest future cycle at which a stage could make progress
     * again after an empty tick: the next completion event, the fetch
     * queue head's decode-ready cycle, the end of an I-cache stall,
     * the earliest load-retry cycle, or an unpipelined divider
     * freeing up. Conservative (waking early is harmless — the tick
     * is empty again and skipping resumes). @return 0 when no future
     * event exists (a wedged pipeline the watchdogs must catch).
     */
    Cycle nextEventCycle() const;

    /**
     * Account @p n skipped empty cycles in bulk: advances now_ and
     * the cycle counter, and reproduces the only two per-cycle side
     * effects an empty tick has (fetch I-cache stall accounting and
     * the policy's checking-cycle counting). Caller must have just
     * observed tick() == 0 and must not skip past nextEventCycle()-1.
     */
    void skipIdleCycles(Cycle n);

    /** Run until @p num_insts instructions have committed. */
    void run(std::uint64_t num_insts);

    /** Inject an external coherence invalidation for @p addr's line. */
    void externalInvalidation(Addr addr);

    Cycle now() const { return now_; }
    std::uint64_t committed() const
    {
        return stats_.committedInsts.value();
    }
    double
    ipc() const
    {
        const auto c = stats_.cycles.value();
        return c ? static_cast<double>(committed()) / c : 0.0;
    }

    LsqUnit &lsq() { return lsq_; }
    const LsqUnit &lsq() const { return lsq_; }
    const PipelineStats &stats() const { return stats_; }
    const MemoryHierarchy &mem() const { return mem_; }
    const FetchStage &fetch() const { return fetch_; }
    const RegFileActivity &regfile() const { return regfile_; }
    const CoreParams &params() const { return params_; }

    /** Attach a shadow filter (Figs. 2/3); not owned. */
    void addFilterObserver(FilterObserver *obs)
    {
        lsq_.addObserver(obs);
    }

    /**
     * Attach the --check ordering oracle (not owned): wires the LSQ
     * hooks, the policy cross-check, and the ROB retire observer in
     * one step. Pass nullptr to detach.
     */
    void attachOracle(OrderingOracle *oracle)
    {
        lsq_.setOracle(oracle);
        rob_.setRetireObserver(oracle);
    }

    /** Zero all statistics (end-of-warm-up). */
    void resetStats();

    void regStats(StatGroup &parent);
    StatGroup &statRoot() { return root_; }

  private:
    struct Event
    {
        Cycle when;
        SeqNum seq;
        DynInst *inst;
    };

    bool operandsReady(const DynInst *inst) const;
    bool producerDone(const DynInst *producer, SeqNum pseq) const;
    void scheduleCompletion(DynInst *inst, Cycle when);
    unsigned doFetch();
    unsigned doDispatch();
    unsigned doIssue();
    void issueLoad(DynInst *inst);
    void resolveStore(DynInst *inst);
    unsigned doCompletions();
    void completeInst(DynInst *inst);
    void resolveBranch(DynInst *inst);
    unsigned scanStoreData();
    unsigned doCommit();
    void squashFrom(SeqNum from_seq);
    void replayFrom(DynInst *load);

    CoreParams params_;
    Workload &workload_;

    DynInstPool pool_;
    MemoryHierarchy mem_;
    BranchPredictor predictor_;
    FetchStage fetch_;
    Rob rob_;
    RenameState rename_;
    IssueQueue intIq_;
    IssueQueue fpIq_;
    FuPool fuPool_;
    RegFileActivity regfile_;
    LsqUnit lsq_;

    Cycle now_ = 0;
    RingBuffer<DynInst *> fetchQueue_;
    std::vector<Event> completions_;    ///< min-heap on (when, seq)
    std::vector<DynInst *> retryLoads_; ///< rejected loads awaiting retry
    std::vector<DynInst *> issueScratch_; ///< per-tick issue pick list
    unsigned dcachePortsUsed_ = 0;
    Cycle lastCommitCycle_ = 0;
    std::uint64_t lastDmdcReplayIndex_ = ~std::uint64_t{0};
    DynInst *pendingReplay_ = nullptr;  ///< deferred violation victim
    DynInst *pendingAgeReplay_ = nullptr; ///< age-table replay store

    PipelineStats stats_;
    StatGroup root_;
    StatGroup pipeStats_{"pipeline"};
};

} // namespace dmdc

#endif // DMDC_CORE_PIPELINE_HH
