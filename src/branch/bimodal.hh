/**
 * @file
 * Bimodal (per-PC 2-bit counter) branch direction predictor.
 */

#ifndef DMDC_BRANCH_BIMODAL_HH
#define DMDC_BRANCH_BIMODAL_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace dmdc
{

/** Classic table of saturating 2-bit counters indexed by PC bits. */
class BimodalPredictor
{
  public:
    /** @param entries table size; must be a power of two. */
    explicit BimodalPredictor(unsigned entries);

    /** Predicted direction for the branch at @p pc. */
    bool lookup(Addr pc) const;

    /** Train with the resolved outcome. */
    void update(Addr pc, bool taken);

    unsigned numEntries() const
    {
        return static_cast<unsigned>(table_.size());
    }

  private:
    unsigned index(Addr pc) const;

    std::vector<std::uint8_t> table_;   ///< 2-bit counters, init 01
};

} // namespace dmdc

#endif // DMDC_BRANCH_BIMODAL_HH
