/**
 * @file
 * BTB implementation.
 */

#include "branch/btb.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace dmdc
{

Btb::Btb(unsigned entries, unsigned assoc)
    : entries_(entries), assoc_(assoc), numSets_(entries / assoc)
{
    if (!isPowerOf2(entries) || assoc == 0 || entries % assoc != 0 ||
        !isPowerOf2(numSets_)) {
        fatal("BTB geometry invalid: %u entries, %u-way", entries, assoc);
    }
}

unsigned
Btb::setIndex(Addr pc) const
{
    return static_cast<unsigned>((pc >> 2) & (numSets_ - 1));
}

bool
Btb::lookup(Addr pc, Addr &target)
{
    const unsigned base = setIndex(pc) * assoc_;
    for (unsigned w = 0; w < assoc_; ++w) {
        Entry &e = entries_[base + w];
        if (e.valid && e.tag == pc) {
            e.lru = ++lruClock_;
            target = e.target;
            return true;
        }
    }
    return false;
}

void
Btb::update(Addr pc, Addr target)
{
    const unsigned base = setIndex(pc) * assoc_;
    Entry *victim = &entries_[base];
    for (unsigned w = 0; w < assoc_; ++w) {
        Entry &e = entries_[base + w];
        if (e.valid && e.tag == pc) {
            e.target = target;
            e.lru = ++lruClock_;
            return;
        }
        if (!e.valid || e.lru < victim->lru ||
            (victim->valid && !e.valid)) {
            victim = &e;
        }
    }
    victim->valid = true;
    victim->tag = pc;
    victim->target = target;
    victim->lru = ++lruClock_;
}

} // namespace dmdc
