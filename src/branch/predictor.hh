/**
 * @file
 * Combined branch predictor facade: bimodal + gshare with a meta
 * chooser (the paper's Table 1 configuration), a set-associative BTB
 * and a return address stack.
 */

#ifndef DMDC_BRANCH_PREDICTOR_HH
#define DMDC_BRANCH_PREDICTOR_HH

#include <cstdint>

#include "branch/bimodal.hh"
#include "branch/btb.hh"
#include "branch/gshare.hh"
#include "branch/ras.hh"
#include "trace/microop.hh"

namespace dmdc
{

/** Geometry of the combined predictor. */
struct BranchPredictorParams
{
    unsigned bimodalEntries = 4096;
    unsigned gshareEntries = 8192;
    unsigned gshareHistoryBits = 13;
    unsigned metaEntries = 8192;
    unsigned btbEntries = 4096;
    unsigned btbAssoc = 4;
    unsigned rasEntries = 16;
};

/**
 * Everything the pipeline must remember about one prediction so the
 * predictor can be trained and recovered later.
 */
struct BranchPrediction
{
    bool taken = false;
    Addr target = 0;            ///< predicted target (valid if taken)
    bool btbHit = false;
    bool usedRas = false;
    bool bimodalTaken = false;
    bool gshareTaken = false;
    bool choseGshare = false;
    std::uint64_t historyBefore = 0;    ///< gshare history at predict
    ReturnAddressStack::Checkpoint rasBefore{0, 0};
};

/** The combined predictor. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const BranchPredictorParams &params);

    /**
     * Predict the branch at @p pc of kind @p kind; @p fallthrough is
     * pc+4 (pushed on calls). Updates speculative history and RAS.
     */
    BranchPrediction predict(Addr pc, BranchKind kind, Addr fallthrough);

    /**
     * Train tables with the architectural outcome. Called at branch
     * resolution for correct-path branches.
     */
    void update(Addr pc, BranchKind kind, const BranchPrediction &pred,
                bool taken, Addr target);

    /**
     * Recover speculative state after the branch at @p pc mispredicted:
     * restore the pre-branch checkpoint, then re-apply the branch's
     * actual behaviour.
     */
    void recover(Addr pc, BranchKind kind, const BranchPrediction &pred,
                 bool taken, Addr fallthrough);

  private:
    bool metaChoosesGshare(Addr pc) const;
    void trainMeta(Addr pc, bool bimodal_correct, bool gshare_correct);

    BimodalPredictor bimodal_;
    GsharePredictor gshare_;
    std::vector<std::uint8_t> meta_;
    Btb btb_;
    ReturnAddressStack ras_;
};

} // namespace dmdc

#endif // DMDC_BRANCH_PREDICTOR_HH
