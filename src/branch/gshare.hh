/**
 * @file
 * Gshare (global-history XOR PC) branch direction predictor.
 */

#ifndef DMDC_BRANCH_GSHARE_HH
#define DMDC_BRANCH_GSHARE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace dmdc
{

/**
 * Gshare predictor with a speculatively-updated global history
 * register. The pipeline snapshots the history at prediction time and
 * restores it on squash.
 */
class GsharePredictor
{
  public:
    /**
     * @param entries PHT size (power of two)
     * @param history_bits global-history length
     */
    GsharePredictor(unsigned entries, unsigned history_bits);

    /** Predicted direction, using current (speculative) history. */
    bool lookup(Addr pc) const;

    /** Push a (predicted) outcome into the speculative history. */
    void speculate(bool taken);

    /** Train the PHT with the resolved outcome under @p history. */
    void update(Addr pc, std::uint64_t history, bool taken);

    /** Current speculative history (snapshot for recovery). */
    std::uint64_t history() const { return history_; }

    /** Restore the history after a squash. */
    void restoreHistory(std::uint64_t history) { history_ = history; }

    unsigned historyBits() const { return historyBits_; }

  private:
    unsigned index(Addr pc, std::uint64_t history) const;

    std::vector<std::uint8_t> table_;
    unsigned historyBits_;
    std::uint64_t historyMask_;
    std::uint64_t history_ = 0;
};

} // namespace dmdc

#endif // DMDC_BRANCH_GSHARE_HH
