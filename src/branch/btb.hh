/**
 * @file
 * Set-associative branch target buffer.
 */

#ifndef DMDC_BRANCH_BTB_HH
#define DMDC_BRANCH_BTB_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace dmdc
{

/** BTB with true-LRU replacement within each set. */
class Btb
{
  public:
    /**
     * @param entries total entries (power of two)
     * @param assoc set associativity
     */
    Btb(unsigned entries, unsigned assoc);

    /**
     * Look up the target for @p pc.
     * @return true and fills @p target on hit.
     */
    bool lookup(Addr pc, Addr &target);

    /** Install/refresh the mapping pc -> target. */
    void update(Addr pc, Addr target);

  private:
    struct Entry
    {
        bool valid = false;
        Addr tag = 0;
        Addr target = 0;
        std::uint64_t lru = 0;
    };

    unsigned setIndex(Addr pc) const;

    std::vector<Entry> entries_;
    unsigned assoc_;
    unsigned numSets_;
    std::uint64_t lruClock_ = 0;
};

} // namespace dmdc

#endif // DMDC_BRANCH_BTB_HH
