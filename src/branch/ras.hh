/**
 * @file
 * Return address stack with checkpoint/restore for squash recovery.
 */

#ifndef DMDC_BRANCH_RAS_HH
#define DMDC_BRANCH_RAS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace dmdc
{

/**
 * Circular return-address stack. The pipeline snapshots (top, size)
 * at every prediction and restores on squash; entries themselves are
 * not checkpointed, which mirrors real RAS imprecision.
 */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned entries = 16);

    /** Push a return address (on predicted/decoded calls). */
    void push(Addr return_pc);

    /** Pop and return the predicted return target (0 if empty). */
    Addr pop();

    /** Snapshot for branch recovery. */
    struct Checkpoint { unsigned top; unsigned size; };
    Checkpoint checkpoint() const { return {top_, size_}; }
    void restore(const Checkpoint &cp);

    unsigned size() const { return size_; }

  private:
    std::vector<Addr> stack_;
    unsigned top_ = 0;
    unsigned size_ = 0;
};

} // namespace dmdc

#endif // DMDC_BRANCH_RAS_HH
