/**
 * @file
 * Gshare predictor implementation.
 */

#include "branch/gshare.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace dmdc
{

GsharePredictor::GsharePredictor(unsigned entries, unsigned history_bits)
    : table_(entries, 1), historyBits_(history_bits),
      historyMask_(mask(history_bits))
{
    if (!isPowerOf2(entries))
        fatal("gshare PHT size must be a power of two");
    if (history_bits == 0 || history_bits > 32)
        fatal("gshare history length must be in [1, 32]");
}

unsigned
GsharePredictor::index(Addr pc, std::uint64_t history) const
{
    return static_cast<unsigned>(((pc >> 2) ^ history) &
                                 (table_.size() - 1));
}

bool
GsharePredictor::lookup(Addr pc) const
{
    return table_[index(pc, history_)] >= 2;
}

void
GsharePredictor::speculate(bool taken)
{
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & historyMask_;
}

void
GsharePredictor::update(Addr pc, std::uint64_t history, bool taken)
{
    std::uint8_t &ctr = table_[index(pc, history)];
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
}

} // namespace dmdc
