/**
 * @file
 * Combined predictor implementation.
 */

#include "branch/predictor.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace dmdc
{

BranchPredictor::BranchPredictor(const BranchPredictorParams &params)
    : bimodal_(params.bimodalEntries),
      gshare_(params.gshareEntries, params.gshareHistoryBits),
      meta_(params.metaEntries, 2),
      btb_(params.btbEntries, params.btbAssoc),
      ras_(params.rasEntries)
{
    if (!isPowerOf2(params.metaEntries))
        fatal("meta predictor size must be a power of two");
}

bool
BranchPredictor::metaChoosesGshare(Addr pc) const
{
    return meta_[(pc >> 2) & (meta_.size() - 1)] >= 2;
}

void
BranchPredictor::trainMeta(Addr pc, bool bimodal_correct,
                           bool gshare_correct)
{
    if (bimodal_correct == gshare_correct)
        return;
    std::uint8_t &ctr = meta_[(pc >> 2) & (meta_.size() - 1)];
    if (gshare_correct) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
}

BranchPrediction
BranchPredictor::predict(Addr pc, BranchKind kind, Addr fallthrough)
{
    BranchPrediction pred;
    pred.historyBefore = gshare_.history();
    pred.rasBefore = ras_.checkpoint();

    switch (kind) {
      case BranchKind::Cond: {
        pred.bimodalTaken = bimodal_.lookup(pc);
        pred.gshareTaken = gshare_.lookup(pc);
        pred.choseGshare = metaChoosesGshare(pc);
        bool dir = pred.choseGshare ? pred.gshareTaken
                                    : pred.bimodalTaken;
        pred.btbHit = btb_.lookup(pc, pred.target);
        if (dir && !pred.btbHit) {
            // Predicted taken but no target known: fall through.
            dir = false;
        }
        pred.taken = dir;
        gshare_.speculate(dir);
        break;
      }
      case BranchKind::Uncond:
      case BranchKind::Call: {
        pred.btbHit = btb_.lookup(pc, pred.target);
        pred.taken = pred.btbHit;
        if (kind == BranchKind::Call)
            ras_.push(fallthrough);
        break;
      }
      case BranchKind::Return: {
        const Addr t = ras_.pop();
        pred.usedRas = t != 0;
        pred.taken = pred.usedRas;
        pred.target = t;
        break;
      }
      case BranchKind::NotABranch:
        panic("predict() called on a non-branch");
    }
    return pred;
}

void
BranchPredictor::update(Addr pc, BranchKind kind,
                        const BranchPrediction &pred, bool taken,
                        Addr target)
{
    if (kind == BranchKind::Cond) {
        bimodal_.update(pc, taken);
        gshare_.update(pc, pred.historyBefore, taken);
        trainMeta(pc, pred.bimodalTaken == taken,
                  pred.gshareTaken == taken);
    }
    if (taken && kind != BranchKind::Return)
        btb_.update(pc, target);
}

void
BranchPredictor::recover(Addr pc, BranchKind kind,
                         const BranchPrediction &pred, bool taken,
                         Addr fallthrough)
{
    gshare_.restoreHistory(pred.historyBefore);
    ras_.restore(pred.rasBefore);
    // Re-apply the branch's architectural effect on speculative state.
    if (kind == BranchKind::Cond)
        gshare_.speculate(taken);
    if (kind == BranchKind::Call)
        ras_.push(fallthrough);
    if (kind == BranchKind::Return)
        ras_.pop();
    (void)pc;
}

} // namespace dmdc
