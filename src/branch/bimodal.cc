/**
 * @file
 * Bimodal predictor implementation.
 */

#include "branch/bimodal.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace dmdc
{

BimodalPredictor::BimodalPredictor(unsigned entries)
    : table_(entries, 1)
{
    if (!isPowerOf2(entries))
        fatal("bimodal predictor size must be a power of two");
}

unsigned
BimodalPredictor::index(Addr pc) const
{
    return static_cast<unsigned>((pc >> 2) & (table_.size() - 1));
}

bool
BimodalPredictor::lookup(Addr pc) const
{
    return table_[index(pc)] >= 2;
}

void
BimodalPredictor::update(Addr pc, bool taken)
{
    std::uint8_t &ctr = table_[index(pc)];
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
}

} // namespace dmdc
