/**
 * @file
 * Return address stack implementation.
 */

#include "branch/ras.hh"

#include "common/logging.hh"

namespace dmdc
{

ReturnAddressStack::ReturnAddressStack(unsigned entries)
    : stack_(entries, 0)
{
    if (entries == 0)
        fatal("RAS needs at least one entry");
}

void
ReturnAddressStack::push(Addr return_pc)
{
    top_ = (top_ + 1) % stack_.size();
    stack_[top_] = return_pc;
    if (size_ < stack_.size())
        ++size_;
}

Addr
ReturnAddressStack::pop()
{
    if (size_ == 0)
        return 0;
    const Addr t = stack_[top_];
    top_ = (top_ + static_cast<unsigned>(stack_.size()) - 1) %
           stack_.size();
    --size_;
    return t;
}

void
ReturnAddressStack::restore(const Checkpoint &cp)
{
    top_ = cp.top % stack_.size();
    size_ = cp.size > stack_.size()
        ? static_cast<unsigned>(stack_.size()) : cp.size;
}

} // namespace dmdc
