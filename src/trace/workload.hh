/**
 * @file
 * Abstract workload interface consumed by the pipeline's fetch stage.
 *
 * A workload exposes the *architectural* (correct-path) dynamic
 * instruction stream as a random-access sequence indexed by dynamic
 * instruction number, plus a stateless generator for wrong-path
 * micro-ops. Keeping the correct path independent of squash timing
 * makes runs of different LSQ schemes consume bit-identical traces,
 * which is what the paper's relative measurements need.
 */

#ifndef DMDC_TRACE_WORKLOAD_HH
#define DMDC_TRACE_WORKLOAD_HH

#include <cstdint>
#include <string>

#include "trace/microop.hh"

namespace dmdc
{

/** Base class for instruction-stream producers. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /**
     * The @p index-th correct-path micro-op (0-based, program order).
     * Indices may be re-read after a squash, but never before
     * discardBefore() has retired them.
     */
    virtual const MicroOp &op(std::uint64_t index) = 0;

    /**
     * Synthesize the wrong-path micro-op fetched at @p pc. @p salt
     * disambiguates repeated wrong-path visits so the stream does not
     * degenerate; generation is deterministic in (pc, salt).
     */
    virtual MicroOp wrongPathOp(Addr pc, std::uint64_t salt) = 0;

    /** All indices < @p index have committed and will not be re-read. */
    virtual void discardBefore(std::uint64_t index) = 0;

    /** Benchmark name (e.g. "gzip"). */
    virtual const std::string &name() const = 0;

    /** True for the floating-point group, false for integer. */
    virtual bool isFpBenchmark() const = 0;
};

} // namespace dmdc

#endif // DMDC_TRACE_WORKLOAD_HH
