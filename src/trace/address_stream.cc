/**
 * @file
 * Address pattern generator implementations.
 */

#include "trace/address_stream.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace dmdc
{

StridedStream::StridedStream(Addr base, Addr size, Addr stride)
    : base_(base), size_(size), stride_(stride)
{
    if (!isPowerOf2(size))
        fatal("StridedStream region size must be a power of two");
    if (stride == 0 || stride >= size)
        fatal("StridedStream stride must be in (0, size)");
}

Addr
StridedStream::next()
{
    const Addr a = base_ + offset_;
    offset_ = (offset_ + stride_) & (size_ - 1);
    return a;
}

void
StridedStream::restart(Rng &rng)
{
    offset_ = rng.range(size_ / stride_) * stride_;
}

PointerChaseStream::PointerChaseStream(Addr base, Addr size,
                                       std::uint64_t seed)
    : base_(base), sizeMask_(size / 8 - 1), seed_(seed), current_(0)
{
    if (!isPowerOf2(size) || size < 64)
        fatal("PointerChaseStream region size must be a power of two "
              ">= 64");
    // Affine full-cycle permutation over the node index space: the
    // multiplier must be odd. A hash-walk would collapse into a short
    // rho-cycle (~sqrt(nodes)), destroying the big working set.
    mult_ = (mixHash(seed) | 1) & sizeMask_;
    if (mult_ < 3)
        mult_ = 3;
    inc_ = (mixHash(seed ^ 0x1234567ull) | 1) & sizeMask_;
}

Addr
PointerChaseStream::next()
{
    // 8-byte "nodes", like real pointer fields.
    current_ = (current_ * mult_ + inc_) & sizeMask_;
    return base_ + current_ * 8;
}

HotRegion::HotRegion(Addr base, Addr size) : base_(base), size_(size)
{
    if (!isPowerOf2(size))
        fatal("HotRegion size must be a power of two");
}

Addr
HotRegion::next(Rng &rng)
{
    return base_ + (rng.range(size_) & ~Addr{3});
}

RecentStoreBuffer::RecentStoreBuffer(unsigned capacity)
    : ring_(capacity)
{
    if (capacity == 0)
        fatal("RecentStoreBuffer capacity must be non-zero");
}

void
RecentStoreBuffer::push(Addr a, unsigned size)
{
    ring_[head_] = Entry{a, size};
    head_ = (head_ + 1) % ring_.size();
    if (count_ < ring_.size())
        ++count_;
}

Addr
RecentStoreBuffer::sample(Rng &rng, unsigned &size_out,
                          double mean_back) const
{
    if (count_ == 0) {
        size_out = 8;
        return invalidAddr;
    }
    // Geometric bias toward the most recent entry.
    unsigned back = rng.geometric(mean_back);
    if (back > count_)
        back = count_;
    const unsigned idx =
        (head_ + static_cast<unsigned>(ring_.size()) - back) % ring_.size();
    size_out = ring_[idx].size;
    return ring_[idx].addr;
}

} // namespace dmdc
