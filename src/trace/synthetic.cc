/**
 * @file
 * Synthetic workload generator implementation.
 */

#include "trace/synthetic.hh"

#include <array>

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace dmdc
{

namespace
{

constexpr Addr codeBaseAddr = 0x00400000;
constexpr Addr dataBaseAddr = 0x10000000;
constexpr Addr hotBaseAddr = 0x7fff0000;
constexpr unsigned instBytes = 4;

} // namespace

/** One static micro-op slot of the synthesized program. */
struct StaticSlot
{
    OpClass cls = OpClass::IntAlu;
    BranchKind bkind = BranchKind::NotABranch;
    std::uint32_t targetSlot = 0;   ///< branch target (slot index)
    std::int32_t branchId = -1;     ///< behaviour state for Cond
};

/** Static program: slots, branch behaviours and function entries. */
struct SyntheticWorkload::Static
{
    std::vector<StaticSlot> slots;
    std::vector<StaticBranchState> branchStates;
    std::vector<std::uint32_t> funcEntries;
};

/** Trace-generation (architectural-path) state. */
struct SyntheticWorkload::DynState
{
    explicit DynState(const WorkloadParams &p)
        : rng(p.seed * 0x2545f4914f6cdd1dull + 1),
          chase(dataBaseAddr, Addr{1} << p.footprintLog2,
                p.seed ^ 0xabcdefull),
          hotLoad(hotBaseAddr, (Addr{1} << p.hotLog2) / 2),
          hotStore(hotBaseAddr + (Addr{1} << p.hotLog2) / 2,
                   (Addr{1} << p.hotLog2) / 2),
          recentStores(48)
    {
        recentInt.fill(1);
        recentIntAlu.fill(1);
        recentFp.fill(firstFpReg);
        recentLoadDst.fill(1);

        const Addr footprint = Addr{1} << p.footprintLog2;
        // Mostly word/double-word strides: consecutive accesses reuse
        // cache lines, as real loop nests do.
        static constexpr std::array<Addr, 6> stride_choices{
            4, 8, 4, 8, 16, 64};
        for (unsigned i = 0; i < p.numStreams; ++i) {
            const Addr stride =
                stride_choices[rng.range(stride_choices.size())];
            StridedStream s(dataBaseAddr, footprint, stride);
            s.restart(rng);
            streams.push_back(s);
        }
    }

    Rng rng;
    std::uint32_t curSlot = 0;
    std::vector<std::uint32_t> callStack;

    std::array<RegIndex, 24> recentInt;
    std::array<RegIndex, 12> recentIntAlu;  ///< ALU results only
    std::array<RegIndex, 16> recentFp;
    unsigned intHead = 0;
    unsigned intAluHead = 0;
    unsigned fpHead = 0;
    unsigned intDstCounter = 0;
    unsigned fpDstCounter = 0;

    RegIndex chaseReg = 1;
    std::array<RegIndex, 8> recentLoadDst;
    unsigned loadDstHead = 0;

    std::vector<StridedStream> streams;
    unsigned streamRR = 0;
    PointerChaseStream chase;
    /**
     * Hot (stack/global) accesses are split into disjoint load and
     * store halves: real code's same-variable reuse flows through the
     * shared/near paths above, while unconstrained random collisions
     * here would manufacture order violations far above the
     * few-per-million rates real codes exhibit.
     */
    HotRegion hotLoad;
    HotRegion hotStore;
    RecentStoreBuffer recentStores;
};

SyntheticWorkload::SyntheticWorkload(const WorkloadParams &params)
    : params_(params),
      static_(std::make_unique<Static>()),
      dyn_(std::make_unique<DynState>(params))
{
    if (params_.numMainBlocks < 4)
        fatal("workload '%s': need at least 4 main blocks",
              params_.name.c_str());
    buildStaticProgram();
}

SyntheticWorkload::~SyntheticWorkload() = default;

Addr
SyntheticWorkload::codeBase() const
{
    return codeBaseAddr;
}

std::size_t
SyntheticWorkload::staticSize() const
{
    return static_->slots.size();
}

void
SyntheticWorkload::buildStaticProgram()
{
    Rng build_rng(params_.seed ^ 0x5deece66dull);
    auto &st = *static_;

    // ---- pass 1: block lengths and start indices ----
    struct BlockPlan { std::uint32_t start; std::uint32_t len; };
    std::vector<BlockPlan> main_blocks(params_.numMainBlocks);
    // Functions are 1-3 blocks; record per-function block plans.
    std::vector<std::vector<BlockPlan>> funcs(params_.numFunctions);

    std::uint32_t cursor = 0;
    for (auto &b : main_blocks) {
        b.start = cursor;
        b.len = 2 + build_rng.geometric(params_.blockLenMean);
        cursor += b.len;
    }
    for (auto &f : funcs) {
        const unsigned nblocks = 1 + build_rng.range(3);
        f.resize(nblocks);
        for (auto &b : f) {
            b.start = cursor;
            b.len = 2 + build_rng.geometric(params_.blockLenMean);
            cursor += b.len;
        }
        st.funcEntries.push_back(f.front().start);
    }
    st.slots.resize(cursor);

    // ---- helpers ----
    auto sample_alu_class = [&]() -> OpClass {
        if (build_rng.chance(params_.fpFrac)) {
            const double q = build_rng.uniform();
            if (q < params_.divFrac)
                return OpClass::FpDiv;
            if (q < params_.divFrac + params_.mulFrac * 4)
                return OpClass::FpMult;
            return OpClass::FpAdd;
        }
        const double q = build_rng.uniform();
        if (q < params_.divFrac)
            return OpClass::IntDiv;
        if (q < params_.divFrac + params_.mulFrac)
            return OpClass::IntMult;
        return OpClass::IntAlu;
    };

    // Stratified per-block class assignment: whichever blocks become
    // the hot loops, their mix matches the configured fractions (plain
    // per-slot sampling lets a lucky load-poor loop dominate the
    // dynamic mix).
    auto stratified_count = [&](double frac, std::uint32_t n) {
        const double want = frac * n;
        std::uint32_t whole = static_cast<std::uint32_t>(want);
        if (build_rng.chance(want - whole))
            ++whole;
        return whole;
    };

    auto make_cond_state = [&](bool loop_back) -> std::int32_t {
        BranchBehavior beh;
        if (loop_back) {
            beh = BranchBehavior::LoopBack;
        } else {
            const double r = build_rng.uniform();
            if (r < params_.biasedFrac) {
                beh = build_rng.chance(0.5) ? BranchBehavior::BiasedTaken
                                            : BranchBehavior::BiasedNotTaken;
            } else if (r < params_.biasedFrac + params_.patternedFrac) {
                beh = BranchBehavior::Patterned;
            } else {
                beh = BranchBehavior::Random;
            }
        }
        // Loop trips follow the configured mean; periodic patterns are
        // kept short enough for the 13-bit global history to learn.
        // Minimum trip of 6 keeps loop-exit mispredictions (one per
        // trip) at realistic rates; very short loops are unrolled or
        // perfectly predicted in real codes anyway.
        const unsigned trip = beh == BranchBehavior::Patterned
            ? 5 + static_cast<unsigned>(build_rng.range(4))
            : 5 + build_rng.geometric(params_.loopTripMean);
        st.branchStates.emplace_back(beh, build_rng.next(), trip,
                                     params_.takenBias);
        return static_cast<std::int32_t>(st.branchStates.size() - 1);
    };

    auto fill_body = [&](const BlockPlan &b) {
        const std::uint32_t body = b.len - 1;
        std::vector<OpClass> classes;
        classes.reserve(body);
        std::uint32_t loads = stratified_count(params_.loadFrac, body);
        std::uint32_t all_stores =
            stratified_count(params_.storeFrac, body);
        if (loads + all_stores > body) {
            loads = std::min(loads, body);
            all_stores = body - loads;
        }
        for (std::uint32_t i = 0; i < loads; ++i)
            classes.push_back(OpClass::Load);
        for (std::uint32_t i = 0; i < all_stores; ++i)
            classes.push_back(OpClass::Store);
        while (classes.size() < body)
            classes.push_back(sample_alu_class());
        // Fisher-Yates shuffle for a natural interleaving.
        for (std::size_t i = classes.size(); i > 1; --i) {
            const std::size_t j = build_rng.range(i);
            std::swap(classes[i - 1], classes[j]);
        }
        for (std::uint32_t i = 0; i < body; ++i)
            st.slots[b.start + i].cls = classes[i];
    };

    // ---- pass 2: fill main blocks ----
    for (std::size_t i = 0; i < main_blocks.size(); ++i) {
        const auto &b = main_blocks[i];
        fill_body(b);
        StaticSlot &term = st.slots[b.start + b.len - 1];
        term.cls = OpClass::Branch;

        if (i + 1 == main_blocks.size()) {
            // Outer infinite loop: jump back to the first block.
            term.bkind = BranchKind::Uncond;
            term.targetSlot = main_blocks.front().start;
            continue;
        }

        const double r = build_rng.uniform();
        if (r < params_.loopBackProb) {
            // Loop back to an earlier (or this) block start.
            const std::size_t lo = i >= 8 ? i - 8 : 0;
            const std::size_t j = lo + build_rng.range(i - lo + 1);
            term.bkind = BranchKind::Cond;
            term.targetSlot = main_blocks[j].start;
            term.branchId = make_cond_state(true);
        } else if (r < params_.loopBackProb + params_.callProb &&
                   !st.funcEntries.empty()) {
            term.bkind = BranchKind::Call;
            term.targetSlot =
                st.funcEntries[build_rng.range(st.funcEntries.size())];
        } else {
            // Forward conditional skipping 1-3 blocks.
            const std::size_t skip = 1 + build_rng.range(3);
            const std::size_t j =
                std::min(i + 1 + skip, main_blocks.size() - 1);
            term.bkind = BranchKind::Cond;
            term.targetSlot = main_blocks[j].start;
            term.branchId = make_cond_state(false);
        }
    }

    // ---- pass 3: fill function blocks ----
    for (const auto &f : funcs) {
        for (std::size_t i = 0; i < f.size(); ++i) {
            const auto &b = f[i];
            fill_body(b);
            StaticSlot &term = st.slots[b.start + b.len - 1];
            term.cls = OpClass::Branch;
            if (i + 1 == f.size()) {
                term.bkind = BranchKind::Return;
            } else {
                // Short forward conditional within the function.
                term.bkind = BranchKind::Cond;
                term.targetSlot = f.back().start;
                term.branchId = make_cond_state(false);
            }
        }
    }
}

void
SyntheticWorkload::generateNext()
{
    auto &st = *static_;
    auto &d = *dyn_;
    const StaticSlot &slot = st.slots[d.curSlot];

    MicroOp op;
    op.pc = codeBaseAddr + Addr{d.curSlot} * instBytes;
    op.cls = slot.cls;

    auto pick_int_src = [&]() -> RegIndex {
        unsigned back = d.rng.geometric(params_.depDistMean);
        if (back > d.recentInt.size())
            back = static_cast<unsigned>(d.recentInt.size());
        const unsigned idx =
            (d.intHead + static_cast<unsigned>(d.recentInt.size()) - back) %
            d.recentInt.size();
        return d.recentInt[idx];
    };
    auto pick_fp_src = [&]() -> RegIndex {
        unsigned back = d.rng.geometric(params_.depDistMean);
        if (back > d.recentFp.size())
            back = static_cast<unsigned>(d.recentFp.size());
        const unsigned idx =
            (d.fpHead + static_cast<unsigned>(d.recentFp.size()) - back) %
            d.recentFp.size();
        return d.recentFp[idx];
    };
    auto push_int_dst = [&](RegIndex r) {
        d.recentInt[d.intHead] = r;
        d.intHead = (d.intHead + 1) % d.recentInt.size();
    };
    auto push_fp_dst = [&](RegIndex r) {
        d.recentFp[d.fpHead] = r;
        d.fpHead = (d.fpHead + 1) % d.recentFp.size();
    };
    auto pick_alu_src = [&]() -> RegIndex {
        // Short index-arithmetic chains: recent ALU results only.
        unsigned back = d.rng.geometric(2.0);
        if (back > d.recentIntAlu.size())
            back = static_cast<unsigned>(d.recentIntAlu.size());
        const unsigned idx = (d.intAluHead +
            static_cast<unsigned>(d.recentIntAlu.size()) - back) %
            d.recentIntAlu.size();
        return d.recentIntAlu[idx];
    };
    auto new_int_dst = [&](bool alu_result) -> RegIndex {
        // Avoid reg 0; cycle through a window of the int file.
        const RegIndex r =
            static_cast<RegIndex>(1 + (d.intDstCounter++ % 30));
        push_int_dst(r);
        if (alu_result) {
            d.recentIntAlu[d.intAluHead] = r;
            d.intAluHead = (d.intAluHead + 1) %
                d.recentIntAlu.size();
        }
        return r;
    };
    auto new_fp_dst = [&]() -> RegIndex {
        const RegIndex r = static_cast<RegIndex>(
            firstFpReg + (d.fpDstCounter++ % 30));
        push_fp_dst(r);
        return r;
    };
    auto pick_size = [&](bool fp_dst) -> unsigned {
        if (d.rng.chance(params_.smallSizeFrac))
            return d.rng.chance(0.5) ? 1 : 2;
        if (fp_dst)
            return 8;
        return d.rng.chance(0.4) ? 8 : 4;
    };

    switch (slot.cls) {
      case OpClass::Load: {
        const bool chase_load = d.rng.chance(params_.chaseFrac);
        const bool shared = !chase_load &&
            !d.recentStores.empty() && d.rng.chance(params_.shareProb);
        const bool near_store = !chase_load && !shared &&
            !d.recentStores.empty() &&
            d.rng.chance(params_.nearStoreFrac);
        bool fp_dst = false;

        if (chase_load) {
            op.src1 = d.chaseReg;
            op.effAddr = d.chase.next();
            op.memSize = 8;
            op.dst = new_int_dst(false);
            d.chaseReg = op.dst;
        } else if (shared) {
            unsigned ssize = 8;
            const Addr a = d.recentStores.sample(d.rng, ssize);
            op.src1 = pick_int_src();
            fp_dst = params_.fp && d.rng.chance(0.7);
            op.memSize = d.rng.chance(0.8)
                ? ssize : pick_size(fp_dst);
            op.effAddr = a & ~Addr{op.memSize - 1u};
            op.dst = fp_dst ? new_fp_dst() : new_int_dst(false);
        } else if (near_store) {
            // Same cache line as a very recent (often still in-flight)
            // store, different quad word.
            unsigned ssize = 8;
            const Addr store_addr =
                d.recentStores.sample(d.rng, ssize, 1.5);
            fp_dst = params_.fp && d.rng.chance(0.7);
            op.src1 = pick_alu_src();
            op.memSize = fp_dst ? 8 : (d.rng.chance(0.5) ? 8 : 4);
            const Addr line = store_addr & ~Addr{63};
            const Addr store_qw = (store_addr >> 3) & 7;
            const Addr other_qw = (store_qw + 1 +
                                   d.rng.range(7)) & 7;
            op.effAddr = (line | (other_qw << 3)) &
                ~Addr{op.memSize - 1u};
            op.dst = fp_dst ? new_fp_dst() : new_int_dst(false);
        } else {
            op.src1 = pick_int_src();
            fp_dst = params_.fp && d.rng.chance(0.7);
            op.memSize = static_cast<std::uint8_t>(pick_size(fp_dst));
            Addr a;
            if (d.rng.chance(params_.strideFrac) && !d.streams.empty()) {
                a = d.streams[d.streamRR].next();
                d.streamRR = (d.streamRR + 1) % d.streams.size();
            } else {
                a = d.hotLoad.next(d.rng);
            }
            op.effAddr = a & ~Addr{op.memSize - 1u};
            op.dst = fp_dst ? new_fp_dst() : new_int_dst(false);
        }
        if (!isFpReg(op.dst)) {
            d.recentLoadDst[d.loadDstHead] = op.dst;
            d.loadDstHead = (d.loadDstHead + 1) % d.recentLoadDst.size();
        }
        break;
      }
      case OpClass::Store: {
        bool late_resolving = false;
        if (d.rng.chance(params_.storeAddrFromLoadFrac)) {
            // Address depends on a recent load result: resolves late.
            op.src1 = d.recentLoadDst[
                d.rng.range(d.recentLoadDst.size())];
            late_resolving = true;
        } else if (d.rng.chance(params_.storeAddrReadyFrac)) {
            // Stable base pointer: no in-flight producer, the store
            // resolves as soon as it issues (the common case).
            op.src1 = noReg;
        } else {
            // Recent index arithmetic: typically a short wait.
            op.src1 = pick_alu_src();
        }
        const bool fp_data = params_.fp && d.rng.chance(0.6);
        op.src3 = fp_data ? pick_fp_src() : pick_int_src();
        op.memSize = static_cast<std::uint8_t>(pick_size(fp_data));
        Addr a;
        if (d.rng.chance(params_.strideFrac) && !d.streams.empty()) {
            a = d.streams[d.streamRR].next();
            d.streamRR = (d.streamRR + 1) % d.streams.size();
        } else {
            a = d.hotStore.next(d.rng);
        }
        op.effAddr = a & ~Addr{op.memSize - 1u};
        // Loads that re-read stored locations (shareProb) sample this
        // buffer. Real consumers compute the address the same way the
        // store did, so they practically never issue before a
        // promptly-resolving store; late-resolving (load-fed) stores
        // are therefore rarely entered, keeping true order violations
        // at the paper's few-per-million rate while still exercising
        // forwarding, rejection and the occasional real violation.
        // Only stores whose address is ready at rename (they resolve
        // before any younger load can issue) enter the share buffer,
        // plus a trickle of slow ones so genuine violations remain
        // possible at the paper's few-per-million rate.
        (void)late_resolving;
        if (op.src1 == noReg || d.rng.chance(0.03))
            d.recentStores.push(op.effAddr, op.memSize);
        break;
      }
      case OpClass::IntAlu:
      case OpClass::IntMult:
      case OpClass::IntDiv:
        // Half the sources come from pure arithmetic chains; this
        // bounds how deeply index computation transitively depends on
        // outstanding loads.
        op.src1 = d.rng.chance(0.5) ? pick_alu_src() : pick_int_src();
        if (d.rng.chance(0.7))
            op.src2 = pick_int_src();
        op.dst = new_int_dst(true);
        break;
      case OpClass::FpAdd:
      case OpClass::FpMult:
      case OpClass::FpDiv:
        op.src1 = pick_fp_src();
        if (d.rng.chance(0.8))
            op.src2 = pick_fp_src();
        op.dst = new_fp_dst();
        break;
      case OpClass::Branch: {
        op.branch = slot.bkind;
        op.targetPc = codeBaseAddr + Addr{slot.targetSlot} * instBytes;
        switch (slot.bkind) {
          case BranchKind::Cond:
            op.src1 = pick_int_src();
            op.taken = st.branchStates[slot.branchId].nextOutcome();
            break;
          case BranchKind::Uncond:
            op.taken = true;
            break;
          case BranchKind::Call:
            op.taken = true;
            break;
          case BranchKind::Return: {
            op.taken = true;
            std::uint32_t ret_slot = 0;
            if (!d.callStack.empty()) {
                ret_slot = d.callStack.back();
            } else {
                warn("workload '%s': return with empty call stack",
                     params_.name.c_str());
            }
            op.targetPc = codeBaseAddr + Addr{ret_slot} * instBytes;
            break;
          }
          case BranchKind::NotABranch:
            panic("branch slot without branch kind");
        }
        break;
      }
      case OpClass::Nop:
        break;
    }

    op.nextPc = (op.isBranch() && op.taken) ? op.targetPc
                                            : op.pc + instBytes;

    // Advance the architectural control flow.
    if (op.isBranch() && op.taken) {
        if (op.branch == BranchKind::Call)
            d.callStack.push_back(d.curSlot + 1);
        if (op.branch == BranchKind::Return && !d.callStack.empty())
            d.callStack.pop_back();
        d.curSlot = static_cast<std::uint32_t>(
            (op.targetPc - codeBaseAddr) / instBytes);
    } else {
        ++d.curSlot;
    }
    if (d.curSlot >= st.slots.size())
        d.curSlot = 0;

    window_.push_back(op);
}

const MicroOp &
SyntheticWorkload::op(std::uint64_t index)
{
    if (index < windowBase_)
        panic("workload '%s': index %llu already discarded (base %llu)",
              params_.name.c_str(),
              static_cast<unsigned long long>(index),
              static_cast<unsigned long long>(windowBase_));
    while (windowBase_ + window_.size() <= index)
        generateNext();
    return window_[index - windowBase_];
}

MicroOp
SyntheticWorkload::wrongPathOp(Addr pc, std::uint64_t salt)
{
    const auto &st = *static_;
    const std::uint64_t slot_idx =
        ((pc - codeBaseAddr) / instBytes) % st.slots.size();
    const StaticSlot &slot = st.slots[slot_idx];
    std::uint64_t h = mixHash(pc ^ (salt * 0x9e3779b97f4a7c15ull));

    MicroOp op;
    op.pc = codeBaseAddr + slot_idx * instBytes;
    op.cls = slot.cls;

    auto next_h = [&]() { return h = mixHash(h); };
    auto rand_int_reg = [&]() {
        return static_cast<RegIndex>(1 + next_h() % 31);
    };
    auto rand_fp_reg = [&]() {
        return static_cast<RegIndex>(firstFpReg + next_h() % 32);
    };

    // Wrong-path memory operations target regions disjoint from the
    // architectural footprint (and from each other): real wrong-path
    // code computes addresses from stale but structured state and
    // essentially never aliases in-flight correct-path data at
    // quad-word granularity, whereas uniformly random in-footprint
    // addresses would manufacture hundreds of spurious order
    // violations per million instructions. The load region is kept
    // cache-sized so wrong-path loads mostly hit, as real ones do.
    const Addr footprint = Addr{1} << params_.footprintLog2;
    const Addr wp_load_base = dataBaseAddr + footprint;
    const Addr wp_load_mask = (Addr{1} << 17) - 1;
    const Addr wp_store_base = wp_load_base + (Addr{1} << 17);
    const Addr wp_store_mask = (Addr{1} << 22) - 1;

    switch (slot.cls) {
      case OpClass::Load:
        op.src1 = rand_int_reg();
        op.memSize = (next_h() & 1) ? 8 : 4;
        op.effAddr = wp_load_base +
            ((next_h() & wp_load_mask) & ~Addr{op.memSize - 1u});
        op.dst = (params_.fp && (next_h() & 1)) ? rand_fp_reg()
                                                : rand_int_reg();
        break;
      case OpClass::Store:
        op.src1 = rand_int_reg();
        op.src3 = rand_int_reg();
        op.memSize = (next_h() & 1) ? 8 : 4;
        op.effAddr = wp_store_base +
            ((next_h() & wp_store_mask) & ~Addr{op.memSize - 1u});
        break;
      case OpClass::IntAlu:
      case OpClass::IntMult:
      case OpClass::IntDiv:
        op.src1 = rand_int_reg();
        op.src2 = rand_int_reg();
        op.dst = rand_int_reg();
        break;
      case OpClass::FpAdd:
      case OpClass::FpMult:
      case OpClass::FpDiv:
        op.src1 = rand_fp_reg();
        op.src2 = rand_fp_reg();
        op.dst = rand_fp_reg();
        break;
      case OpClass::Branch:
        op.branch = slot.bkind;
        op.targetPc = codeBaseAddr + Addr{slot.targetSlot} * instBytes;
        if (slot.bkind == BranchKind::Cond) {
            op.src1 = rand_int_reg();
            op.taken = next_h() & 1;
        } else {
            op.taken = true;
            if (slot.bkind == BranchKind::Return) {
                // Unknown return target on a wrong path; land somewhere
                // plausible in the main region.
                op.targetPc = codeBaseAddr +
                    (next_h() % st.slots.size()) * instBytes;
            }
        }
        break;
      case OpClass::Nop:
        break;
    }

    op.nextPc = (op.isBranch() && op.taken) ? op.targetPc
                                            : op.pc + instBytes;
    return op;
}

void
SyntheticWorkload::discardBefore(std::uint64_t index)
{
    while (windowBase_ < index && !window_.empty()) {
        window_.pop_front();
        ++windowBase_;
    }
}

} // namespace dmdc
