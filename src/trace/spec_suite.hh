/**
 * @file
 * The 26-benchmark synthetic suite standing in for SPEC CPU2000.
 *
 * Each entry is a WorkloadParams instance whose knobs are set from the
 * qualitative, widely reported character of the corresponding SPEC
 * benchmark (footprint, branchiness, pointer chasing, FP loop nests).
 * The absolute parameter values were then calibrated so the group-level
 * aggregates match the paper's reported ranges (see DESIGN.md Sec. 3).
 */

#ifndef DMDC_TRACE_SPEC_SUITE_HH
#define DMDC_TRACE_SPEC_SUITE_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/synthetic.hh"

namespace dmdc
{

/** Names of the 12 integer benchmarks. */
const std::vector<std::string> &specIntNames();

/** Names of the 14 floating-point benchmarks. */
const std::vector<std::string> &specFpNames();

/** All 26 names, INT first. */
const std::vector<std::string> &specAllNames();

/** True if @p name belongs to the FP group. */
bool specIsFp(const std::string &name);

/** Parameter set for @p name; fatal() on unknown names. */
WorkloadParams specParams(const std::string &name);

/** Construct a fresh workload instance for benchmark @p name. */
std::unique_ptr<SyntheticWorkload> makeSpecWorkload(
    const std::string &name);

} // namespace dmdc

#endif // DMDC_TRACE_SPEC_SUITE_HH
