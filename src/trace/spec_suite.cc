/**
 * @file
 * Parameter sets of the 26 synthetic SPEC CPU2000 stand-ins.
 */

#include "trace/spec_suite.hh"

#include <map>

#include "common/logging.hh"

namespace dmdc
{

namespace
{

/** Common INT-group defaults; entries below override per benchmark. */
WorkloadParams
intBase(const std::string &name, std::uint64_t seed)
{
    WorkloadParams p;
    p.name = name;
    p.fp = false;
    p.seed = seed;
    p.numMainBlocks = 384;
    p.numFunctions = 12;
    p.blockLenMean = 5.0;
    p.loopBackProb = 0.22;
    p.callProb = 0.06;
    p.loopTripMean = 10.0;
    p.biasedFrac = 0.74;
    p.patternedFrac = 0.20;
    p.takenBias = 0.95;
    p.loadFrac = 0.26;
    p.storeFrac = 0.11;
    p.fpFrac = 0.02;
    p.mulFrac = 0.03;
    p.divFrac = 0.006;
    p.depDistMean = 3.5;
    p.chaseFrac = 0.12;
    p.strideFrac = 0.40;
    p.storeAddrFromLoadFrac = 0.04;
    p.storeAddrReadyFrac = 0.62;
    p.nearStoreFrac = 0.16;
    p.shareProb = 0.08;
    p.smallSizeFrac = 0.15;
    p.footprintLog2 = 19;
    p.hotLog2 = 12;
    p.numStreams = 3;
    return p;
}

/** Common FP-group defaults. */
WorkloadParams
fpBase(const std::string &name, std::uint64_t seed)
{
    WorkloadParams p;
    p.name = name;
    p.fp = true;
    p.seed = seed;
    p.numMainBlocks = 192;
    p.numFunctions = 6;
    p.blockLenMean = 10.0;
    p.loopBackProb = 0.35;
    p.callProb = 0.03;
    p.loopTripMean = 24.0;
    p.biasedFrac = 0.86;
    p.patternedFrac = 0.11;
    p.takenBias = 0.98;
    p.loadFrac = 0.28;
    p.storeFrac = 0.10;
    p.fpFrac = 0.55;
    p.mulFrac = 0.05;
    p.divFrac = 0.008;
    p.depDistMean = 5.0;
    p.chaseFrac = 0.02;
    p.strideFrac = 0.80;
    p.storeAddrFromLoadFrac = 0.008;
    p.storeAddrReadyFrac = 0.79;
    p.nearStoreFrac = 0.24;
    p.shareProb = 0.05;
    p.smallSizeFrac = 0.03;
    p.footprintLog2 = 21;
    p.hotLog2 = 12;
    p.numStreams = 6;
    return p;
}

std::map<std::string, WorkloadParams>
buildSuite()
{
    std::map<std::string, WorkloadParams> m;
    auto add = [&m](WorkloadParams p) { m[p.name] = std::move(p); };

    // ------------------------ integer group ------------------------
    {   // gzip: compression, tight loops, modest footprint.
        auto p = intBase("gzip", 101);
        p.footprintLog2 = 18;
        p.strideFrac = 0.55;
        p.chaseFrac = 0.05;
        p.loopTripMean = 20.0;
        p.biasedFrac = 0.70;
        add(p);
    }
    {   // vpr: place & route, pointer heavy, branchy.
        auto p = intBase("vpr", 102);
        p.chaseFrac = 0.18;
        p.patternedFrac = 0.24;
        p.biasedFrac = 0.64;
        p.footprintLog2 = 20;
        add(p);
    }
    {   // gcc: huge code footprint, very branchy, short blocks.
        auto p = intBase("gcc", 103);
        p.numMainBlocks = 1024;
        p.numFunctions = 48;
        p.blockLenMean = 4.0;
        p.callProb = 0.10;
        p.biasedFrac = 0.68;
        p.patternedFrac = 0.22;
        p.shareProb = 0.12;
        p.storeFrac = 0.14;
        add(p);
    }
    {   // mcf: pointer chasing over a working set far beyond L2.
        auto p = intBase("mcf", 104);
        p.chaseFrac = 0.45;
        p.strideFrac = 0.15;
        p.footprintLog2 = 25;
        p.loadFrac = 0.30;
        p.storeFrac = 0.07;
        p.storeAddrFromLoadFrac = 0.20;
        p.storeAddrReadyFrac = 0.40;
        add(p);
    }
    {   // crafty: chess, branch intensive, small working set.
        auto p = intBase("crafty", 105);
        p.footprintLog2 = 16;
        p.biasedFrac = 0.64;
        p.patternedFrac = 0.24;
        p.loopTripMean = 6.0;
        p.mulFrac = 0.05;
        add(p);
    }
    {   // parser: dictionary lookups, pointer chasing, many calls.
        auto p = intBase("parser", 106);
        p.chaseFrac = 0.25;
        p.callProb = 0.09;
        p.footprintLog2 = 21;
        p.shareProb = 0.10;
        add(p);
    }
    {   // eon: C++ ray tracer, call heavy, some FP.
        auto p = intBase("eon", 107);
        p.callProb = 0.14;
        p.numFunctions = 32;
        p.fpFrac = 0.20;
        p.footprintLog2 = 17;
        p.biasedFrac = 0.74;
        add(p);
    }
    {   // perlbmk: interpreter loop, indirect-ish control, branchy.
        auto p = intBase("perlbmk", 108);
        p.numMainBlocks = 768;
        p.callProb = 0.11;
        p.biasedFrac = 0.66;
        p.shareProb = 0.11;
        p.storeFrac = 0.13;
        add(p);
    }
    {   // gap: group theory, computation heavy, large lists.
        auto p = intBase("gap", 109);
        p.chaseFrac = 0.15;
        p.footprintLog2 = 22;
        p.mulFrac = 0.06;
        p.loopTripMean = 16.0;
        add(p);
    }
    {   // vortex: OO database, calls + stores heavy.
        auto p = intBase("vortex", 110);
        p.callProb = 0.12;
        p.numFunctions = 40;
        p.storeFrac = 0.16;
        p.shareProb = 0.12;
        p.footprintLog2 = 21;
        add(p);
    }
    {   // bzip2: compression, strided over mid-size buffers.
        auto p = intBase("bzip2", 111);
        p.strideFrac = 0.60;
        p.chaseFrac = 0.04;
        p.footprintLog2 = 20;
        p.loopTripMean = 28.0;
        p.biasedFrac = 0.72;
        add(p);
    }
    {   // twolf: placement, pointer structures, random control.
        auto p = intBase("twolf", 112);
        p.chaseFrac = 0.20;
        p.biasedFrac = 0.62;
        p.patternedFrac = 0.26;
        p.footprintLog2 = 19;
        p.storeAddrFromLoadFrac = 0.10;
        p.storeAddrReadyFrac = 0.50;
        add(p);
    }

    // --------------------- floating-point group ---------------------
    {   // wupwise: lattice QCD, dense linear algebra.
        auto p = fpBase("wupwise", 201);
        p.footprintLog2 = 22;
        p.loopTripMean = 32.0;
        add(p);
    }
    {   // swim: shallow water stencils, long unit-stride streams.
        auto p = fpBase("swim", 202);
        p.footprintLog2 = 24;
        p.numStreams = 8;
        p.strideFrac = 0.9;
        p.blockLenMean = 14.0;
        p.loopTripMean = 48.0;
        add(p);
    }
    {   // mgrid: multigrid, nested loops, strided.
        auto p = fpBase("mgrid", 203);
        p.footprintLog2 = 23;
        p.strideFrac = 0.88;
        p.loopTripMean = 40.0;
        p.blockLenMean = 12.0;
        add(p);
    }
    {   // applu: PDE solver, large footprint.
        auto p = fpBase("applu", 204);
        p.footprintLog2 = 23;
        p.loopTripMean = 36.0;
        p.storeFrac = 0.12;
        add(p);
    }
    {   // mesa: software rendering; most integer-like of the FP set.
        auto p = fpBase("mesa", 205);
        p.fpFrac = 0.35;
        p.footprintLog2 = 19;
        p.biasedFrac = 0.72;
        p.blockLenMean = 7.0;
        p.callProb = 0.08;
        p.chaseFrac = 0.05;
        p.smallSizeFrac = 0.08;
        add(p);
    }
    {   // galgel: fluid dynamics, blocked linear algebra.
        auto p = fpBase("galgel", 206);
        p.footprintLog2 = 21;
        p.loopTripMean = 28.0;
        p.numStreams = 5;
        add(p);
    }
    {   // art: neural net over image, tiny kernel, misses badly.
        auto p = fpBase("art", 207);
        p.footprintLog2 = 24;
        p.numMainBlocks = 96;
        p.strideFrac = 0.92;
        p.blockLenMean = 9.0;
        p.loopTripMean = 64.0;
        add(p);
    }
    {   // equake: sparse matrix-vector, indirect accesses.
        auto p = fpBase("equake", 208);
        p.chaseFrac = 0.12;
        p.strideFrac = 0.6;
        p.footprintLog2 = 23;
        p.storeAddrFromLoadFrac = 0.08;
        p.storeAddrReadyFrac = 0.65;
        add(p);
    }
    {   // facerec: image correlation, strided, moderate set.
        auto p = fpBase("facerec", 209);
        p.footprintLog2 = 21;
        p.loopTripMean = 30.0;
        add(p);
    }
    {   // ammp: molecular dynamics, neighbour lists.
        auto p = fpBase("ammp", 210);
        p.chaseFrac = 0.15;
        p.strideFrac = 0.5;
        p.footprintLog2 = 22;
        p.storeAddrFromLoadFrac = 0.06;
        p.storeAddrReadyFrac = 0.70;
        p.divFrac = 0.02;
        add(p);
    }
    {   // lucas: FFT-based primality, power-of-two strides.
        auto p = fpBase("lucas", 211);
        p.footprintLog2 = 23;
        p.numStreams = 8;
        p.loopTripMean = 44.0;
        add(p);
    }
    {   // fma3d: finite elements, mixed access, call heavy for FP.
        auto p = fpBase("fma3d", 212);
        p.callProb = 0.07;
        p.numFunctions = 24;
        p.footprintLog2 = 22;
        p.strideFrac = 0.65;
        add(p);
    }
    {   // sixtrack: particle tracking, small hot kernel.
        auto p = fpBase("sixtrack", 213);
        p.footprintLog2 = 18;
        p.loopTripMean = 52.0;
        p.blockLenMean = 16.0;
        p.mulFrac = 0.08;
        add(p);
    }
    {   // apsi: meteorology, mixed stencils.
        auto p = fpBase("apsi", 214);
        p.footprintLog2 = 22;
        p.strideFrac = 0.75;
        p.loopTripMean = 26.0;
        add(p);
    }

    return m;
}

const std::map<std::string, WorkloadParams> &
suite()
{
    static const std::map<std::string, WorkloadParams> s = buildSuite();
    return s;
}

std::vector<std::string>
namesInGroup(bool fp)
{
    std::vector<std::string> v;
    for (const auto &[name, p] : suite()) {
        if (p.fp == fp)
            v.push_back(name);
    }
    return v;
}

} // namespace

const std::vector<std::string> &
specIntNames()
{
    static const std::vector<std::string> v = namesInGroup(false);
    return v;
}

const std::vector<std::string> &
specFpNames()
{
    static const std::vector<std::string> v = namesInGroup(true);
    return v;
}

const std::vector<std::string> &
specAllNames()
{
    static const std::vector<std::string> v = [] {
        std::vector<std::string> all = specIntNames();
        const auto &fp = specFpNames();
        all.insert(all.end(), fp.begin(), fp.end());
        return all;
    }();
    return v;
}

bool
specIsFp(const std::string &name)
{
    return specParams(name).fp;
}

WorkloadParams
specParams(const std::string &name)
{
    auto it = suite().find(name);
    if (it == suite().end())
        fatal("unknown SPEC stand-in benchmark '%s'", name.c_str());
    return it->second;
}

std::unique_ptr<SyntheticWorkload>
makeSpecWorkload(const std::string &name)
{
    return std::make_unique<SyntheticWorkload>(specParams(name));
}

} // namespace dmdc
